package mvmaint_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	mvmaint "repro"
	"repro/internal/delta"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// sortedRows orders rows by their rendered form for order-insensitive
// comparison across pipelines.
func sortedRows(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v x%d", r.Tuple, r.Count)
	}
	sort.Strings(out)
	return out
}

func sumRowCounts(rows []storage.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.Count
	}
	return n
}

// TestBuildShardedMatchesSerial drives the root facade: the sharded
// system built from a deterministic DB factory must agree with the
// unsharded System on view contents and assertion verdicts after every
// window, at every shard count — including windows that create and then
// clear violations.
func TestBuildShardedMatchesSerial(t *testing.T) {
	const departments, empsPerDept = 12, 4
	factory := func() (*mvmaint.DB, error) {
		return paperDB(t, departments, empsPerDept), nil
	}
	cfg := mvmaint.Config{
		Workload: paperWorkload(),
		Method:   mvmaint.Exhaustive,
	}
	serialDB := paperDB(t, departments, empsPerDept)
	serial, err := serialDB.Build([]string{"DeptConstraint"}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	type variant struct {
		n   int
		sys *mvmaint.ShardedSystem
	}
	var variants []variant
	for _, n := range []int{1, 2, 4} {
		scfg := cfg
		scfg.Shards = n
		scfg.Parallelism = 2
		sys, err := mvmaint.BuildSharded(factory, []string{"DeptConstraint"}, scfg)
		if err != nil {
			t.Fatalf("BuildSharded(%d): %v", n, err)
		}
		if sys.ViewSet.Key() != serial.ViewSet.Key() {
			t.Fatalf("shards=%d chose view set %s, serial chose %s",
				n, sys.ViewSet.Key(), serial.ViewSet.Key())
		}
		desc := sys.Describe()
		if !strings.Contains(desc, fmt.Sprintf("%d shards", n)) {
			t.Fatalf("shards=%d Describe = %q", n, desc)
		}
		t.Logf("shards=%d: %s", n, desc)
		variants = append(variants, variant{n, sys})
	}

	empDef := serialDB.Catalog.MustGet("Emp")
	empRel, ok := serialDB.Store.Get("Emp")
	if !ok {
		t.Fatal("no Emp relation")
	}
	mkWindow := func(kind txn.Kind, d *delta.Delta) []txn.Transaction {
		ty := &txn.Type{Name: ">Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: kind, Size: float64(d.Size()), Cols: []string{"Salary"}}}}
		return []txn.Transaction{{Type: ty, Updates: map[string]*delta.Delta{"Emp": d}}}
	}
	// Windows are generated lazily against the serial DB's evolving base
	// state; the same value-based deltas apply on every shard because the
	// factory rebuilds the identical database.
	windows := []func() []txn.Transaction{
		func() []txn.Transaction { // benign raises across all departments
			d := delta.New(empDef.Schema)
			for i, row := range empRel.ScanFree() {
				if i%3 != 0 {
					continue
				}
				nt := row.Tuple.Clone()
				nt[2] = value.NewInt(nt[2].I + 10)
				d.Modify(row.Tuple, nt, row.Count)
			}
			return mkWindow(txn.Modify, d)
		},
		func() []txn.Transaction { // absurd raise: dept d000 now violates
			d := delta.New(empDef.Schema)
			for _, row := range empRel.ScanFree() {
				if row.Tuple[0].S != "e000_00" {
					continue
				}
				nt := row.Tuple.Clone()
				nt[2] = value.NewInt(1000000)
				d.Modify(row.Tuple, nt, row.Count)
			}
			return mkWindow(txn.Modify, d)
		},
		func() []txn.Transaction { // fire the violator: constraint clears
			d := delta.New(empDef.Schema)
			for _, row := range empRel.ScanFree() {
				if row.Tuple[0].S != "e000_00" {
					continue
				}
				d.Delete(row.Tuple, row.Count)
			}
			return mkWindow(txn.Delete, d)
		},
	}
	wantViolations := []int64{0, 1, 0}

	for w, gen := range windows {
		window := gen()
		// Bypass the serial checker (which would roll the violation back):
		// the sharded pipeline applies unconditionally, so both sides must
		// see the violating state to stay comparable.
		if _, err := serial.M.ApplyBatch(window); err != nil {
			t.Fatalf("window %d serial: %v", w, err)
		}
		serialRows, err := serial.ViewRows("DeptConstraint")
		if err != nil {
			t.Fatal(err)
		}
		if got := sumRowCounts(serialRows); got != wantViolations[w] {
			t.Fatalf("window %d: serial violations = %d, want %d", w, got, wantViolations[w])
		}
		for _, v := range variants {
			if _, err := v.sys.ExecuteWindow(window); err != nil {
				t.Fatalf("window %d shards=%d: %v", w, v.n, err)
			}
			rows, err := v.sys.ViewRows("DeptConstraint")
			if err != nil {
				t.Fatal(err)
			}
			got, want := sortedRows(rows), sortedRows(serialRows)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("window %d shards=%d: view diverged\nsharded: %v\nserial:  %v",
					w, v.n, got, want)
			}
			viol, err := v.sys.Violations("DeptConstraint")
			if err != nil {
				t.Fatal(err)
			}
			if viol != wantViolations[w] {
				t.Fatalf("window %d shards=%d: violations = %d, want %d",
					w, v.n, viol, wantViolations[w])
			}
		}
	}
}

// TestBuildShardedErrors covers the facade's argument validation and the
// single-shard fallback when the partition column cannot carry the view
// set.
func TestBuildShardedErrors(t *testing.T) {
	factory := func() (*mvmaint.DB, error) { return paperDB(t, 4, 2), nil }
	cfg := mvmaint.Config{Workload: paperWorkload(), Shards: 2}

	if _, err := mvmaint.BuildSharded(factory, nil, cfg); err == nil {
		t.Error("no names: want error")
	}
	if _, err := mvmaint.BuildSharded(factory, []string{"Nope"}, cfg); err == nil {
		t.Error("unknown name: want error")
	}
	zero := cfg
	zero.Shards = 0
	if _, err := mvmaint.BuildSharded(factory, []string{"DeptConstraint"}, zero); err == nil {
		t.Error("Shards=0: want error")
	}
	noWork := cfg
	noWork.Workload = nil
	if _, err := mvmaint.BuildSharded(factory, []string{"DeptConstraint"}, noWork); err == nil {
		t.Error("no workload: want error")
	}

	// Budget lives on Dept and appears in no join/group key, so the view
	// set cannot be partitioned on it: the build must fall back to one
	// shard and say why.
	fb := cfg
	fb.PartitionBy = "Budget"
	sys, err := mvmaint.BuildSharded(factory, []string{"DeptConstraint"}, fb)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.S.NumShards(); got != 1 {
		t.Fatalf("fallback NumShards = %d, want 1", got)
	}
	if sys.S.Part.Reason == "" {
		t.Error("fallback recorded no reason")
	}
	t.Logf("fallback: %s", sys.Describe())
}
