-- The paper's corporate schema (Example 1.1), reduced scale.
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);

INSERT INTO Dept VALUES ('d0', 'm0', 1500), ('d1', 'm1', 1500), ('d2', 'm2', 1500);
INSERT INTO Emp VALUES
  ('e00', 'd0', 100), ('e01', 'd0', 100), ('e02', 'd0', 100),
  ('e10', 'd1', 100), ('e11', 'd1', 100), ('e12', 'd1', 100),
  ('e20', 'd2', 100), ('e21', 'd2', 100), ('e22', 'd2', 100);

CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;

CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept));
