package mvmaint_test

import (
	"fmt"
	"strings"
	"testing"

	mvmaint "repro"
	"repro/internal/txn"
	"repro/internal/wal"
)

// durableSchemaDDL is the schema-only DDL (no data) persisted in the
// checkpoint metadata: recovery re-executes it on a fresh DB to rebuild
// the catalog, then the checkpoint restores the relation contents.
const durableSchemaDDL = `
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname ON Emp (DName);
CREATE INDEX emp_ename ON Emp (EName);

CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;

CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept));
`

func durableData(departments, empsPerDept int) string {
	var b strings.Builder
	for i := 0; i < departments; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%03d', 'm%03d', %d);\n",
			i, i, empsPerDept*100+500)
		for j := 0; j < empsPerDept; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%03d_%02d', 'd%03d', 100);\n", i, j, i)
		}
	}
	return b.String()
}

// TestDurableSystemRecover drives durability through the public SQL
// surface: attach a WAL to a built system, run maintained DML including
// a rejected violation (which must not advance the durability point),
// checkpoint, crash-free close, then recover onto a fresh DB rebuilt
// from the checkpoint's persisted DDL and verify views were loaded (not
// recomputed), state matches, and the recovered system keeps enforcing.
func TestDurableSystemRecover(t *testing.T) {
	db := mvmaint.Open()
	db.MustExec(durableSchemaDDL)
	db.MustExec(durableData(12, 5))
	cfg := mvmaint.Config{
		Workload: append(paperWorkload(),
			&txn.Type{Name: "+Emp", Weight: 1, Updates: []txn.RelUpdate{
				{Rel: "Emp", Kind: txn.Insert, Size: 1}}}),
		Method: mvmaint.Exhaustive,
	}
	sys, err := db.Build([]string{"DeptConstraint"}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := wal.Options{Meta: map[string]string{"ddl": durableSchemaDDL}}
	mgr, err := sys.AttachDurability(wal.OSFS{}, dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// A benign raise commits at LSN 1.
	out, err := sys.Execute(`UPDATE Emp SET Salary = 120 WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() || out.Report.LSN != 1 || mgr.LastLSN() != 1 {
		t.Fatalf("benign raise: ok=%v lsn=%d last=%d", out.OK(), out.Report.LSN, mgr.LastLSN())
	}

	// A violating raise is rejected and rolled back — and must never
	// reach the log: its apply and rollback annihilate before commit.
	out, err = sys.Execute(`UPDATE Emp SET Salary = 1000000 WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() || !out.RolledBack {
		t.Fatalf("violation not rejected: %+v", out)
	}
	if mgr.LastLSN() != 1 {
		t.Fatalf("rejected transaction advanced the log to %d", mgr.LastLSN())
	}
	if out.Report.LSN != 1 {
		t.Fatalf("rejected transaction's durability point = %d, want 1 (the covering LSN)", out.Report.LSN)
	}

	// Hire and checkpoint; then fire after the checkpoint so recovery has
	// a log tail to replay incrementally.
	if _, err := sys.Execute(`INSERT INTO Emp VALUES ('fresh', 'd002', 90)`); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(`DELETE FROM Emp WHERE EName = 'e001_00'`); err != nil {
		t.Fatal(err)
	}
	closedAt := mgr.LastLSN()
	if closedAt != 3 {
		t.Fatalf("LastLSN = %d, want 3", closedAt)
	}
	viewBefore, err := sys.ViewRows("DeptConstraint")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover onto a fresh DB whose catalog is rebuilt from the DDL the
	// checkpoint carries.
	meta, err := wal.ReadMeta(wal.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta["ddl"] == "" {
		t.Fatal("checkpoint lost the ddl metadata")
	}
	db2 := mvmaint.Open()
	db2.MustExec(meta["ddl"])
	sys2, mgr2, err := mvmaint.Recover(db2, []string{"DeptConstraint"}, cfg, wal.OSFS{}, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()

	if mgr2.RecomputedViews != 0 {
		t.Fatalf("recovery recomputed %d views; the checkpointed view set is current", mgr2.RecomputedViews)
	}
	if mgr2.RecoveredLSN != closedAt {
		t.Fatalf("recovered LSN %d, want %d", mgr2.RecoveredLSN, closedAt)
	}
	if mgr2.ReplayedWindows != 1 {
		t.Fatalf("replayed %d windows, want 1 (only the post-checkpoint delete)", mgr2.ReplayedWindows)
	}

	// Recovered state matches: the raise survived, the hire survived, the
	// fire survived, and the maintained view agrees.
	res, err := db2.Query(`SELECT Salary FROM Emp WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 1 || res.Rows[0].Tuple[0].AsInt() != 120 {
		t.Fatalf("salary after recovery = %v", res.Rows)
	}
	if res, err = db2.Query(`SELECT EName FROM Emp WHERE EName = 'fresh'`); err != nil || res.Card() != 1 {
		t.Fatalf("hire lost in recovery: %v %v", res, err)
	}
	if res, err = db2.Query(`SELECT EName FROM Emp WHERE EName = 'e001_00'`); err != nil || res.Card() != 0 {
		t.Fatalf("fire lost in recovery: %v %v", res, err)
	}
	viewAfter, err := sys2.ViewRows("DeptConstraint")
	if err != nil {
		t.Fatal(err)
	}
	if len(viewAfter) != len(viewBefore) {
		t.Fatalf("DeptConstraint view has %d rows after recovery, want %d", len(viewAfter), len(viewBefore))
	}

	// The recovered system still enforces and still logs.
	out, err = sys2.Execute(`UPDATE Emp SET Salary = 1000000 WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() || !out.RolledBack || mgr2.LastLSN() != closedAt {
		t.Fatalf("post-recovery violation mishandled: %+v last=%d", out, mgr2.LastLSN())
	}
	out, err = sys2.Execute(`UPDATE Emp SET Salary = 130 WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() || out.Report.LSN != closedAt+1 {
		t.Fatalf("post-recovery commit: ok=%v lsn=%d", out.OK(), out.Report.LSN)
	}

	// Attaching to a directory that already holds durable state is an
	// error — Recover is the only correct way in.
	if _, err := sys2.AttachDurability(wal.OSFS{}, dir, opts); err == nil {
		t.Fatal("AttachDurability over existing state should fail")
	}
}
