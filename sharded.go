package mvmaint

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// ShardedSystem is the multi-core sibling of System: the same declared
// views and assertions, maintained by N shard-local pipelines behind a
// hash partitioning of the base relations. The view-set optimizer runs
// once on the template DAG; every shard materializes the pinned winner
// over its own partition segment.
//
// The SQL DML front-end is not available here — TxnFromSQL derives
// deltas by consulting base-relation state, and no single shard holds
// all of it. Callers push pre-built transaction windows through
// ExecuteWindow, exactly like the batched maintenance pipeline.
type ShardedSystem struct {
	// Catalog is the template shard's catalog (schemas are identical on
	// every shard; use it to build deltas).
	Catalog *catalog.Catalog
	DAG     *dag.DAG
	// Decision is the optimizer's verdict, computed once and pinned on
	// every shard.
	Decision *core.Result
	ViewSet  tracks.ViewSet
	S        *maintain.Sharded

	names map[int]string // root eq ID -> declared name
}

// BuildSharded builds a sharded maintained system. factory must return
// a freshly populated, identical DB (same DDL, same rows, same declared
// views) on every call — one call per shard; determinism is verified.
// names select the views/assertions to maintain, as in Build. cfg's
// optimizer fields are honored once on the template; cfg.Shards and
// cfg.PartitionBy control the partitioning (PartitionBy empty picks the
// column automatically; an unshardable view set falls back to one shard
// with the reason recorded in S.Part).
func BuildSharded(factory func() (*DB, error), names []string, cfg Config) (*ShardedSystem, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("mvmaint: BuildSharded requires at least one view or assertion")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("mvmaint: BuildSharded requires Shards >= 1, got %d", cfg.Shards)
	}

	// Template build: expand the DAG once and run the view-set optimizer
	// on the full (unpartitioned) statistics.
	db, err := factory()
	if err != nil {
		return nil, fmt.Errorf("mvmaint: shard factory: %w", err)
	}
	if len(cfg.Workload) == 0 {
		return nil, fmt.Errorf("mvmaint: BuildSharded requires a workload")
	}
	model := cfg.Model
	if model == nil {
		model = cost.PageIO{}
	}
	rs := cfg.Rules
	if rs == nil {
		rs = rules.Default()
	}
	maxOps := cfg.MaxOps
	if maxOps == 0 {
		maxOps = 512
	}
	trees, err := resolveTrees(db, names)
	if err != nil {
		return nil, err
	}
	d, err := dag.FromTrees(trees...)
	if err != nil {
		return nil, err
	}
	if _, err := d.Expand(rs, maxOps); err != nil {
		return nil, err
	}
	db.RefreshStats()
	opt := core.New(d, model, cfg.Workload)
	opt.Parallelism = cfg.Parallelism
	opt.Seed = cfg.Seed
	res, err := runOptimizer(opt, cfg.Method)
	if err != nil {
		return nil, err
	}

	// Shard factory: rebuild the identical DB and DAG per shard.
	// NewSharded partitions each store and verifies DAG determinism.
	setupFactory := func() (*maintain.ShardSetup, error) {
		sdb, err := factory()
		if err != nil {
			return nil, err
		}
		strees, err := resolveTrees(sdb, names)
		if err != nil {
			return nil, err
		}
		sd, err := dag.FromTrees(strees...)
		if err != nil {
			return nil, err
		}
		if _, err := sd.Expand(rs, maxOps); err != nil {
			return nil, err
		}
		sdb.RefreshStats()
		return &maintain.ShardSetup{D: sd, Cat: sdb.Catalog, Store: sdb.Store}, nil
	}
	s, err := maintain.NewSharded(setupFactory, maintain.ShardedConfig{
		Shards:      cfg.Shards,
		PartitionBy: cfg.PartitionBy,
		VS:          res.Best.Set,
		Model:       model,
		Workers:     cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	sys := &ShardedSystem{
		Catalog:  db.Catalog,
		DAG:      s.D,
		Decision: res,
		ViewSet:  res.Best.Set,
		S:        s,
		names:    map[int]string{},
	}
	for i, n := range names {
		eq := d.FindEq(trees[i])
		if eq == nil {
			return nil, fmt.Errorf("mvmaint: lost root for %q", n)
		}
		sys.names[eq.ID] = n
	}
	return sys, nil
}

// resolveTrees maps declared view/assertion names to their trees.
func resolveTrees(db *DB, names []string) ([]algebra.Node, error) {
	trees := make([]algebra.Node, len(names))
	for i, n := range names {
		tree, ok := db.View(n)
		if !ok {
			return nil, fmt.Errorf("mvmaint: unknown view or assertion %q", n)
		}
		trees[i] = tree
	}
	return trees, nil
}

// runOptimizer dispatches one view-set optimization by method; the
// single switch behind Build, Reoptimize and BuildSharded.
func runOptimizer(opt *core.Optimizer, method Method) (*core.Result, error) {
	switch method {
	case Exhaustive:
		return opt.Exhaustive()
	case Parallel:
		return opt.Parallel()
	case Shielded:
		return opt.Shielded()
	case Greedy:
		return opt.Greedy(), nil
	case SingleTree:
		return opt.SingleTree()
	case HeuristicMarking:
		return opt.HeuristicMarking(), nil
	case NoAdditional:
		ev := opt.Evaluate()
		return &core.Result{Method: "no-additional", Best: ev, All: []core.Evaluated{ev}, Explored: 1}, nil
	default:
		return nil, fmt.Errorf("mvmaint: unknown method %v", method)
	}
}

// ExecuteWindow maintains one window of transactions across all shards
// and returns the sharded batch report.
func (s *ShardedSystem) ExecuteWindow(txns []txn.Transaction) (*maintain.ShardedReport, error) {
	return s.S.ApplyBatch(txns)
}

// ViewRows returns the maintained, cross-shard contents of a declared
// view (merged for spanning aggregates, bag union otherwise).
func (s *ShardedSystem) ViewRows(name string) ([]storage.Row, error) {
	for id, n := range s.names {
		if n != name {
			continue
		}
		for _, e := range s.DAG.Roots {
			if e.ID == id {
				return s.S.Contents(e), nil
			}
		}
	}
	return nil, fmt.Errorf("mvmaint: %q is not a maintained view", name)
}

// Violations returns the total multiplicity of a declared assertion's
// violation view across all shards (0 means the constraint holds).
func (s *ShardedSystem) Violations(name string) (int64, error) {
	for id, n := range s.names {
		if n != name {
			continue
		}
		for _, e := range s.DAG.Roots {
			if e.ID == id {
				return s.S.Violations(e), nil
			}
		}
	}
	return 0, fmt.Errorf("mvmaint: %q is not a maintained view", name)
}

// Describe reports the partitioning decision, including any fallback.
func (s *ShardedSystem) Describe() string {
	return fmt.Sprintf("%d shards, %s", s.S.NumShards(), s.S.Part.Describe())
}
