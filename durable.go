package mvmaint

import (
	"fmt"

	"repro/internal/wal"
)

// AttachDurability starts write-ahead logging for a built system: every
// maintained window is group-committed to dir with one fsync, and an
// initial checkpoint makes the current state the recovery base. The
// directory must not already hold durable state — reopen one with
// Recover instead.
func (s *System) AttachDurability(fsys wal.FS, dir string, opts wal.Options) (*wal.Manager, error) {
	return wal.Attach(s.M, s.DB.Catalog, fsys, dir, opts)
}

// Recover rebuilds a durable system from dir: it restores base
// relations from the newest checkpoint into db (whose catalog must
// already hold the same base tables, typically re-created from DDL),
// builds the system with views seeded from the checkpoint where their
// expression fingerprints still match, replays the committed log tail
// through the incremental maintenance pipeline, and re-arms durability.
// Views are only recomputed when the checkpoint predates a view-set
// change (Manager.RecomputedViews counts them).
func Recover(db *DB, names []string, cfg Config, fsys wal.FS, dir string, opts wal.Options) (*System, *wal.Manager, error) {
	rec, err := wal.BeginRecovery(db.Catalog, db.Store, fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	ro := rec.RestoreOptions()
	cfg.Restore = &ro
	sys, err := db.Build(names, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("mvmaint: recovery build: %w", err)
	}
	mgr, err := rec.Resume(sys.M, opts)
	if err != nil {
		return nil, nil, err
	}
	return sys, mgr, nil
}
