package mvmaint_test

import (
	"fmt"
	"strings"
	"testing"

	mvmaint "repro"
	"repro/internal/txn"
)

// paperDB builds the paper's corporate database through the SQL front
// end, at a reduced scale for fast tests.
func paperDB(t testing.TB, departments, empsPerDept int) *mvmaint.DB {
	t.Helper()
	db := mvmaint.Open()
	db.MustExec(`
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname ON Emp (DName);
CREATE INDEX emp_ename ON Emp (EName);
`)
	var b strings.Builder
	for i := 0; i < departments; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%03d', 'm%03d', %d);\n",
			i, i, empsPerDept*100+500)
		for j := 0; j < empsPerDept; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%03d_%02d', 'd%03d', 100);\n", i, j, i)
		}
	}
	db.MustExec(b.String())
	db.MustExec(`
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;

CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept));
`)
	return db
}

func paperWorkload() []*txn.Type {
	return []*txn.Type{
		{Name: ">Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}},
		{Name: ">Dept", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}},
	}
}

// TestEndToEndSQLWorkflow drives the whole pipeline from SQL: the
// optimizer must pick the SumOfSals-shaped auxiliary view, transactions
// must maintain it, and the assertion must fire and roll back violators.
func TestEndToEndSQLWorkflow(t *testing.T) {
	db := paperDB(t, 20, 5)
	sys, err := db.Build([]string{"DeptConstraint"}, mvmaint.Config{
		Workload: paperWorkload(),
		Method:   mvmaint.Exhaustive,
	})
	if err != nil {
		t.Fatal(err)
	}
	views := sys.AdditionalViews()
	if len(views) != 1 || !strings.Contains(views[0], "Aggregate") || !strings.Contains(views[0], "(Emp)") {
		t.Fatalf("chosen additional views = %v, want the aggregate over Emp", views)
	}

	// A benign raise passes.
	out, err := sys.Execute(`UPDATE Emp SET Salary = 120 WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("benign raise flagged: %+v", out.Violations)
	}

	// An absurd raise violates and is rolled back.
	out, err = sys.Execute(`UPDATE Emp SET Salary = 1000000 WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() || !out.RolledBack {
		t.Fatalf("violation not rejected: %+v", out)
	}

	// The salary is back to 120 after rollback.
	res, err := db.Query(`SELECT Salary FROM Emp WHERE EName = 'e003_01'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 1 || res.Rows[0].Tuple[0].AsInt() != 120 {
		t.Errorf("salary after rollback = %v", res.Rows)
	}

	// Budget cuts that cause violations are also rejected.
	out, err = sys.Execute(`UPDATE Dept SET Budget = 1 WHERE DName = 'd007'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() || !out.RolledBack {
		t.Fatalf("budget-cut violation not rejected: %+v", out)
	}

	// Explain is presentable.
	ex := sys.Explain()
	for _, want := range []string{"method: exhaustive", "chosen view set", ">Emp", ">Dept"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
}

// TestMethodsAgreeOnPaperExample: every optimization method lands on a
// set at least as good as the baseline, and exhaustive/shielded/greedy
// agree here.
func TestMethodsAgreeOnPaperExample(t *testing.T) {
	methods := []mvmaint.Method{
		mvmaint.Exhaustive, mvmaint.Shielded, mvmaint.Greedy,
		mvmaint.SingleTree, mvmaint.HeuristicMarking, mvmaint.NoAdditional,
	}
	costs := map[mvmaint.Method]float64{}
	for _, method := range methods {
		db := paperDB(t, 10, 4)
		sys, err := db.Build([]string{"ProblemDept"}, mvmaint.Config{
			Workload: paperWorkload(),
			Method:   method,
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		costs[method] = sys.Decision.Best.Weighted
	}
	base := costs[mvmaint.NoAdditional]
	for _, method := range methods[:5] {
		if costs[method] > base+1e-9 {
			t.Errorf("%v cost %g worse than baseline %g", method, costs[method], base)
		}
	}
	if costs[mvmaint.Shielded] != costs[mvmaint.Exhaustive] ||
		costs[mvmaint.Greedy] != costs[mvmaint.Exhaustive] {
		t.Errorf("methods disagree: %v", costs)
	}
}

// TestInsertsAndDeletesThroughSystem exercises hire/fire DML with
// maintenance.
func TestInsertsAndDeletesThroughSystem(t *testing.T) {
	db := paperDB(t, 5, 2)
	sys, err := db.Build([]string{"ProblemDept"}, mvmaint.Config{
		Workload: append(paperWorkload(),
			&txn.Type{Name: "+Emp", Weight: 1, Updates: []txn.RelUpdate{
				{Rel: "Emp", Kind: txn.Insert, Size: 1}}},
		),
		Method: mvmaint.Exhaustive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(`INSERT INTO Emp VALUES ('fresh', 'd002', 90)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(`DELETE FROM Emp WHERE EName = 'e001_00'`); err != nil {
		t.Fatal(err)
	}
	// The maintained ProblemDept agrees with recomputation.
	rows, err := sys.ViewRows("ProblemDept")
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := db.Query(`SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != recomputed.Card() {
		t.Errorf("maintained %d rows, recomputed %d", len(rows), recomputed.Card())
	}
}

func TestBuildErrors(t *testing.T) {
	db := paperDB(t, 2, 2)
	if _, err := db.Build(nil, mvmaint.Config{Workload: paperWorkload()}); err == nil {
		t.Error("Build with no views should fail")
	}
	if _, err := db.Build([]string{"ProblemDept"}, mvmaint.Config{}); err == nil {
		t.Error("Build with no workload should fail")
	}
	if _, err := db.Build([]string{"Nope"}, mvmaint.Config{Workload: paperWorkload()}); err == nil {
		t.Error("Build with unknown view should fail")
	}
}

func TestQueryFacade(t *testing.T) {
	db := paperDB(t, 3, 2)
	res, err := db.Query(`SELECT DName, SUM(Salary) AS s FROM Emp GROUP BY DName`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 3 {
		t.Errorf("groups = %d", res.Card())
	}
	if _, err := db.Query(`UPDATE Emp SET Salary = 1`); err == nil {
		t.Error("Query should reject DML")
	}
}

// TestReoptimizeAfterDrift: shrinking every department to one employee
// removes the SumOfSals advantage; Reoptimize detects it and drops the
// auxiliary view.
func TestReoptimizeAfterDrift(t *testing.T) {
	db := paperDB(t, 12, 6)
	cfg := mvmaint.Config{Workload: paperWorkload(), Method: mvmaint.Exhaustive}
	sys, err := db.Build([]string{"ProblemDept"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.AdditionalViews()) != 1 {
		t.Fatalf("expected SumOfSals initially, got %v", sys.AdditionalViews())
	}

	// Fire everyone but one employee per department: fan-out drops to 1,
	// where materializing the aggregate no longer pays (ablation A1).
	for i := 0; i < 12; i++ {
		for j := 1; j < 6; j++ {
			db.MustExec(fmt.Sprintf(`DELETE FROM Emp WHERE EName = 'e%03d_%02d'`, i, j))
		}
	}
	changed, err := sys.Reoptimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("reoptimization should change the view set; still %v", sys.AdditionalViews())
	}
	if len(sys.AdditionalViews()) != 0 {
		t.Errorf("at fan-out 1 no additional view should be kept: %v", sys.AdditionalViews())
	}
	// The system still maintains correctly after the swap.
	out, err := sys.Execute(`UPDATE Emp SET Salary = 140 WHERE EName = 'e004_00'`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Errorf("post-reoptimize transaction flagged: %+v", out.Violations)
	}
	rows, err := sys.ViewRows("ProblemDept")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("ProblemDept should be empty, has %d rows", len(rows))
	}

	// Reoptimizing again with unchanged data is a no-op.
	changed, err = sys.Reoptimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("second reoptimization should be stable")
	}
}
