package mvmaint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/ic"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// Method selects the view-set optimization strategy of Config.
type Method int

// Optimization methods.
const (
	// Exhaustive is Algorithm OptimalViewSet (Figure 4).
	Exhaustive Method = iota
	// Shielded applies the Shielding Principle at articulation nodes
	// (Theorem 4.1) before searching.
	Shielded
	// Greedy hill-climbs one view at a time (Section 5, approximate
	// costing).
	Greedy
	// SingleTree restricts the search to the query-optimal expression
	// tree (Section 5).
	SingleTree
	// HeuristicMarking marks parents of joins/aggregations on the
	// query-optimal tree (Section 5).
	HeuristicMarking
	// NoAdditional materializes only the top-level views (the baseline).
	NoAdditional
	// Parallel is Algorithm OptimalViewSet run as a parallel
	// branch-and-bound search — the same optimum as Exhaustive, found by
	// Config.Parallelism workers with lower-bound pruning.
	Parallel
)

// String returns the method name used in reports and CLI flags.
func (m Method) String() string {
	switch m {
	case Exhaustive:
		return "exhaustive"
	case Shielded:
		return "shielded"
	case Greedy:
		return "greedy"
	case SingleTree:
		return "single-tree"
	case HeuristicMarking:
		return "heuristic-marking"
	case NoAdditional:
		return "no-additional"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config controls Build.
type Config struct {
	// Workload is the set of weighted transaction types the view set is
	// optimized for. Required.
	Workload []*txn.Type
	// Method picks the optimizer (default Exhaustive).
	Method Method
	// Model is the cost model (default the paper's page-I/O model).
	Model cost.Model
	// Rules is the equivalence rule set (default rules.Default()).
	Rules []dag.Rule
	// MaxOps caps DAG expansion (default 512 operation nodes).
	MaxOps int
	// RejectViolations rolls back transactions that violate assertions
	// (default true when any assertion is included).
	RejectViolations bool
	// Parallelism is the worker count for the Parallel method
	// (0 = GOMAXPROCS). The chosen view set is identical at any setting.
	Parallelism int
	// Seed shuffles the order parallel workers claim search chunks. It
	// perturbs timing only; the result is the same for every seed.
	Seed int64
	// Restore, when set, seeds materialized views from checkpointed
	// state instead of recomputing them (crash recovery).
	Restore *maintain.RestoreOptions
	// Shards is the shard count for BuildSharded (ignored by Build).
	// The effective count can fall back to 1 when the chosen view set
	// cannot be partitioned; the reason is recorded on the result.
	Shards int
	// PartitionBy names the base-relation column to hash-partition on
	// for BuildSharded ("" picks the column that keeps the most views
	// shard-local).
	PartitionBy string
}

// System is a maintained configuration: an expression DAG over the chosen
// views/assertions, the optimizer's decision, a live maintenance engine
// and an assertion checker.
type System struct {
	DB       *DB
	DAG      *dag.DAG
	Decision *core.Result
	ViewSet  tracks.ViewSet
	M        *maintain.Maintainer
	Checker  *ic.Checker

	names map[int]string // root eq ID -> declared name
}

// Build grows the DAG for the named views/assertions, optimizes the view
// set for the workload and materializes it. Names must have been declared
// via CREATE VIEW / CREATE ASSERTION on the DB.
func (db *DB) Build(names []string, cfg Config) (*System, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("mvmaint: Build requires at least one view or assertion")
	}
	if len(cfg.Workload) == 0 {
		return nil, fmt.Errorf("mvmaint: Build requires a workload")
	}
	if cfg.Model == nil {
		cfg.Model = cost.PageIO{}
	}
	if cfg.Rules == nil {
		cfg.Rules = rules.Default()
	}
	if cfg.MaxOps == 0 {
		cfg.MaxOps = 512
	}
	trees := make([]algebra.Node, len(names))
	hasAssertion := false
	for i, n := range names {
		tree, ok := db.View(n)
		if !ok {
			return nil, fmt.Errorf("mvmaint: unknown view or assertion %q", n)
		}
		trees[i] = tree
		if db.IsAssertion(n) {
			hasAssertion = true
		}
	}
	d, err := dag.FromTrees(trees...)
	if err != nil {
		return nil, err
	}
	if _, err := d.Expand(cfg.Rules, cfg.MaxOps); err != nil {
		return nil, err
	}
	db.RefreshStats()

	opt := core.New(d, cfg.Model, cfg.Workload)
	opt.Parallelism = cfg.Parallelism
	opt.Seed = cfg.Seed
	res, err := runOptimizer(opt, cfg.Method)
	if err != nil {
		return nil, err
	}

	var m *maintain.Maintainer
	if cfg.Restore != nil {
		m, err = maintain.NewRestored(d, db.Store, cfg.Model, res.Best.Set, *cfg.Restore)
	} else {
		m, err = maintain.New(d, db.Store, cfg.Model, res.Best.Set)
	}
	if err != nil {
		return nil, err
	}
	sys := &System{DB: db, DAG: d, Decision: res, ViewSet: res.Best.Set, M: m,
		names: map[int]string{}}
	var assertions []ic.Assertion
	for i, n := range names {
		eq := d.FindEq(trees[i])
		if eq == nil {
			return nil, fmt.Errorf("mvmaint: lost root for %q", n)
		}
		sys.names[eq.ID] = n
		if db.IsAssertion(n) {
			assertions = append(assertions, ic.Assertion{Name: n, View: eq})
		}
	}
	mode := ic.Report
	if cfg.RejectViolations || hasAssertion {
		mode = ic.Reject
	}
	if !cfg.RejectViolations && !hasAssertion {
		mode = ic.Report
	}
	checker, err := ic.New(m, mode, assertions...)
	if err != nil {
		return nil, err
	}
	sys.Checker = checker
	return sys, nil
}

// Execute runs one DML statement under maintenance and assertion
// checking.
func (s *System) Execute(sql string) (*ic.Outcome, error) {
	ty, updates, err := s.DB.TxnFromSQL(sql)
	if err != nil {
		return nil, err
	}
	return s.Checker.Execute(ty, updates)
}

// ExecuteTxn runs a pre-built transaction under maintenance and checking.
func (s *System) ExecuteTxn(t *txn.Type, updates map[string]*delta.Delta) (*ic.Outcome, error) {
	return s.Checker.Execute(t, updates)
}

// ViewRows returns the maintained contents of a declared view.
func (s *System) ViewRows(name string) ([]storage.Row, error) {
	for id, n := range s.names {
		if n != name {
			continue
		}
		for _, e := range s.DAG.Roots {
			if e.ID == id {
				return s.M.Contents(e), nil
			}
		}
	}
	return nil, fmt.Errorf("mvmaint: %q is not a maintained view", name)
}

// AdditionalViews describes the extra views the optimizer materialized,
// one canonical expression label per view.
func (s *System) AdditionalViews() []string {
	var out []string
	for _, e := range s.Decision.AdditionalViews(s.DAG) {
		out = append(out, fmt.Sprintf("%s = %s", e, s.DAG.RepTree(e).Label()))
	}
	return out
}

// Explain renders the optimizer's decision: the DAG, the chosen view set
// and the per-transaction costs of the best few candidates.
func (s *System) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "method: %s (%d view sets costed)\n", s.Decision.Method, s.Decision.Explored)
	fmt.Fprintf(&b, "expression DAG:\n%s", indent(s.DAG.Render(), "  "))
	fmt.Fprintf(&b, "chosen view set: %s (weighted cost %.4g)\n",
		s.Decision.Best.Set.Key(), s.Decision.Best.Weighted)
	for _, v := range s.AdditionalViews() {
		fmt.Fprintf(&b, "  additional: %s\n", v)
	}
	txns := make([]string, 0, len(s.Decision.Best.PerTxn))
	for name := range s.Decision.Best.PerTxn {
		txns = append(txns, name)
	}
	sort.Strings(txns)
	for _, name := range txns {
		tc := s.Decision.Best.PerTxn[name]
		fmt.Fprintf(&b, "  %s: query %.4g + update %.4g = %.4g\n",
			name, tc.QueryCost, tc.UpdateCost, tc.Total())
	}
	top := s.Decision.All
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Fprintf(&b, "ranking (best %d):\n", len(top))
	for i, ev := range top {
		fmt.Fprintf(&b, "  %d. %s = %.4g\n", i+1, ev.Set.Key(), ev.Weighted)
	}
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// IO returns the store's cumulative I/O counter.
func (s *System) IO() *storage.IOCounter { return s.DB.Store.IO }

// Reoptimize refreshes base-relation statistics, re-runs the view-set
// optimizer and — if a different view set wins — re-materializes it,
// dropping the backing stores of views no longer chosen. The paper notes
// optimization "does not have to be performed very often"; this is the
// hook for when data drift makes it worthwhile. It reports whether the
// view set changed.
func (s *System) Reoptimize(cfg Config) (changed bool, err error) {
	if cfg.Model == nil {
		cfg.Model = cost.PageIO{}
	}
	if len(cfg.Workload) == 0 {
		return false, fmt.Errorf("mvmaint: Reoptimize requires a workload")
	}
	s.DB.RefreshStats()
	opt := core.New(s.DAG, cfg.Model, cfg.Workload)
	opt.Parallelism = cfg.Parallelism
	opt.Seed = cfg.Seed
	res, err := runOptimizer(opt, cfg.Method)
	if err != nil {
		return false, err
	}
	if res.Best.Set.Key() == s.ViewSet.Key() {
		s.Decision = res
		return false, nil
	}
	// Drop the old views' backing stores and materialize the new set.
	for _, e := range s.DAG.NonLeafEqs() {
		if s.ViewSet[e.ID] {
			s.DB.Store.Drop(maintain.ViewName(e))
		}
	}
	m, err := maintain.New(s.DAG, s.DB.Store, cfg.Model, res.Best.Set)
	if err != nil {
		return false, err
	}
	var assertions []ic.Assertion
	for id, name := range s.names {
		if !s.DB.IsAssertion(name) {
			continue
		}
		for _, e := range s.DAG.Roots {
			if e.ID == id {
				assertions = append(assertions, ic.Assertion{Name: name, View: e})
			}
		}
	}
	checker, err := ic.New(m, s.Checker.Mode, assertions...)
	if err != nil {
		return false, err
	}
	s.Decision = res
	s.ViewSet = res.Best.Set
	s.M = m
	s.Checker = checker
	return true, nil
}
