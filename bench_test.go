// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 3.6, Figures 1–5, Example 3.1) plus the ablation
// sweeps of EXPERIMENTS.md. Each benchmark prints its artifact once (on
// the first iteration) and then times regeneration; custom metrics report
// the quantities the paper reports — page I/Os per transaction — so that
// `go test -bench . -benchmem` reproduces the evaluation end to end.
package mvmaint_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	mvmaint "repro"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/paper"
	"repro/internal/wal"
)

// printOnce gates artifact printing so -bench output stays readable
// across benchmark iterations.
var printOnce sync.Map

func emitOnce(b *testing.B, key, artifact string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", artifact)
	}
}

func fixture(b *testing.B) *paper.Fixture {
	b.Helper()
	f, err := paper.NewFixture(corpus.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkTable1QueryCosts regenerates the §3.6 per-query cost table.
func BenchmarkTable1QueryCosts(b *testing.B) {
	f := fixture(b)
	emitOnce(b, "t1", f.Table1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Table1()
	}
}

// BenchmarkTable2MaintCosts regenerates the §3.6 view-maintenance table.
func BenchmarkTable2MaintCosts(b *testing.B) {
	f := fixture(b)
	emitOnce(b, "t2", f.Table2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Table2()
	}
}

// BenchmarkTable3TrackCosts regenerates the §3.6 per-track cost table.
func BenchmarkTable3TrackCosts(b *testing.B) {
	f := fixture(b)
	emitOnce(b, "t3", f.Table3())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Table3()
	}
}

// BenchmarkTable4Combined regenerates the §3.6 combined table and reports
// the paper's headline numbers as metrics.
func BenchmarkTable4Combined(b *testing.B) {
	f := fixture(b)
	emitOnce(b, "t4", f.Table4())
	wEmpty, _ := f.Cost.WeightedCost(f.Empty, f.Types)
	wN3, _ := f.Cost.WeightedCost(f.SetN3, f.Types)
	wN4, _ := f.Cost.WeightedCost(f.SetN4, f.Types)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Table4()
	}
	// ReportMetric must follow ResetTimer, which clears reported metrics.
	b.ReportMetric(wEmpty, "IO/txn(empty)")
	b.ReportMetric(wN3, "IO/txn(N3)")
	b.ReportMetric(wN4, "IO/txn(N4)")
}

// BenchmarkFigure1Trees regenerates the two expression trees of Figure 1.
func BenchmarkFigure1Trees(b *testing.B) {
	f := fixture(b)
	emitOnce(b, "f1", f.Figure1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Figure1()
	}
}

// BenchmarkFigure2DAG regenerates the expression DAG of Figure 2,
// timing full DAG construction + rule expansion.
func BenchmarkFigure2DAG(b *testing.B) {
	f := fixture(b)
	emitOnce(b, "f2", f.Figure2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paper.NewFixture(corpus.Config{Departments: 10, EmpsPerDept: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ADeptsStatus regenerates Example 3.1/Figure 3: the
// maintenance-optimal plan diverges from the query-optimal one.
func BenchmarkFigure3ADeptsStatus(b *testing.B) {
	out, err := paper.Figure3(corpus.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "f3", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paper.Figure3(corpus.Config{Departments: 50, EmpsPerDept: 5, ADeptsEveryN: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Shielding regenerates the articulation-node experiment
// of Figure 5/§4.2 and reports the search-space reduction.
func BenchmarkFigure5Shielding(b *testing.B) {
	rep, out, err := paper.Figure5(corpus.DefaultFigure5Config())
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "f5", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := paper.Figure5(corpus.Figure5Config{Items: 20, RPerItem: 2, SPerItem: 2}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.ExhaustiveExplored), "sets(exhaustive)")
	b.ReportMetric(float64(rep.ShieldedExplored), "sets(shielded)")
}

// BenchmarkAlgorithmOptimalViewSet times Algorithm OptimalViewSet
// (Figure 4) on the paper instance.
func BenchmarkAlgorithmOptimalViewSet(b *testing.B) {
	f := fixture(b)
	res, err := f.Optimum()
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "f4", fmt.Sprintf(
		"Algorithm OptimalViewSet (Figure 4): chose %s at %.4g I/Os per txn, %d sets explored\n",
		res.Best.Set.Key(), res.Best.Weighted, res.Explored))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Optimum(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelOptimalViewSet compares the parallel branch-and-bound
// search against sequential Exhaustive on the Figure 5 corpus DAG. Both
// paths build a fresh Costing per iteration, so the shared track-cost
// cache inside one search is measured but nothing leaks across
// iterations or between the two strategies. Metrics report the view sets
// pruned by the update-cost bound and the cache hit rate of one parallel
// search; the chosen view set must match the exhaustive optimum exactly.
func BenchmarkParallelOptimalViewSet(b *testing.B) {
	base, err := paper.Figure5Optimizer(corpus.DefaultFigure5Config())
	if err != nil {
		b.Fatal(err)
	}
	seq, err := base.Exhaustive()
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "pbb", fmt.Sprintf(
		"Parallel branch-and-bound (Figure 5 DAG): exhaustive costs %d sets; the bound-pruned search matches its optimum %s = %.4g\n",
		seq.Explored, seq.Best.Set.Key(), seq.Best.Weighted))

	fresh := func() *core.Optimizer { return core.New(base.D, cost.PageIO{}, base.Types) }

	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fresh().Exhaustive(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, j := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallel-j%d", j), func(b *testing.B) {
			var res *core.Result
			var hits, misses uint64
			for i := 0; i < b.N; i++ {
				opt := fresh()
				opt.Parallelism = j
				r, err := opt.Parallel()
				if err != nil {
					b.Fatal(err)
				}
				res = r
				hits, misses = opt.Cost.CacheStats()
			}
			if res.Best.Set.Key() != seq.Best.Set.Key() || res.Best.Weighted != seq.Best.Weighted {
				b.Fatalf("parallel chose %s = %g, exhaustive %s = %g",
					res.Best.Set.Key(), res.Best.Weighted, seq.Best.Set.Key(), seq.Best.Weighted)
			}
			b.ReportMetric(float64(res.Pruned), "sets-pruned")
			if hits+misses > 0 {
				b.ReportMetric(float64(hits)/float64(hits+misses), "cache-hit-rate")
			}
		})
	}
}

// BenchmarkMeasuredParity runs the live engine next to the estimates
// (experiment E1): measured page I/O per strategy and transaction type.
func BenchmarkMeasuredParity(b *testing.B) {
	_, out, err := paper.MeasuredParity(corpus.PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "e1", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := paper.MeasuredParity(corpus.Config{Departments: 50, EmpsPerDept: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintainedTransaction measures engine throughput on the paper
// metric: maintained transactions over the {N3} strategy, reporting
// page I/Os per transaction.
func BenchmarkMaintainedTransaction(b *testing.B) {
	cfg := corpus.Config{Departments: 100, EmpsPerDept: 10}
	total, err := paper.MeasuredWorkload(cfg, true, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paper.MeasuredWorkload(cfg, true, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total)/100, "pageIO/txn")
}

// BenchmarkMaintainThroughput measures the batched maintenance pipeline
// on the Figure 5 hot-item workload: transactions per second and page
// I/Os per transaction across batch sizes 1 (the per-transaction Apply
// baseline), 16 and 64, with 1 and 4 view-application workers, plus
// durable (write-ahead-logged) rows at batch 1 and 64 with their fsync
// p99 and recovery replay rate. The grid is written to
// BENCH_maintain.json so CI records the perf trajectory. Final view
// contents are oracle-verified on every run.
func BenchmarkMaintainThroughput(b *testing.B) {
	cfg := corpus.DefaultFigure5Config()
	const txnsPerOp = 256
	var results []paper.ThroughputRow
	// The framework may invoke a sub-benchmark several times while
	// calibrating b.N; keep only the final (largest-N, least noisy)
	// measurement per grid cell.
	record := func(row paper.ThroughputRow) {
		for i := range results {
			if results[i].Batch == row.Batch && results[i].Workers == row.Workers &&
				results[i].Txns == row.Txns &&
				results[i].Durable == row.Durable && results[i].Shards == row.Shards &&
				results[i].ReadClients == row.ReadClients &&
				(results[i].ObsOverheadPct != 0) == (row.ObsOverheadPct != 0) {
				results[i] = row
				return
			}
		}
		results = append(results, row)
	}
	for _, batch := range []int{1, 16, 64} {
		for _, workers := range []int{1, 4} {
			batch, workers := batch, workers
			b.Run(fmt.Sprintf("batch%d/workers%d", batch, workers), func(b *testing.B) {
				var last paper.ThroughputRow
				for i := 0; i < b.N; i++ {
					row, err := paper.MeasureThroughput(cfg, txnsPerOp, batch, workers)
					if err != nil {
						b.Fatal(err)
					}
					last = row
				}
				b.ReportMetric(last.TxnsPerSec, "txns/sec")
				b.ReportMetric(last.IOPerTxn, "pageIO/txn")
				b.ReportMetric(last.AllocsPerTxn, "allocs/txn")
				record(last)
			})
		}
	}
	// Long-stream steady-state row (schema v7): batch 64 over an
	// 8192-txn stream (128 windows). The short grid rows above mostly
	// measure warm-up — arenas, slabs and delta buffers growing toward
	// the workload's joint fan-out — while this row is where cross-window
	// recycling either holds bytes/txn and GC cycles flat or doesn't.
	// cmd/benchdiff's -bytes-ceiling gate reads this cell.
	b.Run("longstream/batch64/workers1", func(b *testing.B) {
		var last paper.ThroughputRow
		for i := 0; i < b.N; i++ {
			row, err := paper.MeasureThroughput(cfg, 8192, 64, 1)
			if err != nil {
				b.Fatal(err)
			}
			last = row
		}
		b.ReportMetric(last.TxnsPerSec, "txns/sec")
		b.ReportMetric(last.BytesPerTxn, "bytes/txn")
		b.ReportMetric(last.AllocsPerTxn, "allocs/txn")
		b.ReportMetric(last.GCCyclesPer10kTxns, "gc/10k-txns")
		record(last)
	})
	// Durable rows: the same workload with a WAL attached — deferred-
	// fence group commit, one pipelined fsync per window — then a timed
	// recovery. The batch-64 row runs a longer stream (32 windows) so
	// the commit chain's fill and drain amortize away; each durable row
	// carries its own same-run, same-n in-memory baseline (the workload
	// is non-stationary, so the grid rows above are not comparable).
	// Each iteration needs a fresh directory because Attach refuses to
	// reuse existing durable state.
	for _, batch := range []int{1, 64} {
		batch := batch
		n := txnsPerOp
		if batch == 64 {
			n = 2048
		}
		b.Run(fmt.Sprintf("durable/batch%d/workers1", batch), func(b *testing.B) {
			var last paper.ThroughputRow
			for i := 0; i < b.N; i++ {
				dir, err := os.MkdirTemp(b.TempDir(), "wal-*")
				if err != nil {
					b.Fatal(err)
				}
				row, err := paper.MeasureThroughputDurable(cfg, n, batch, 1, wal.OSFS{}, dir)
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(last.TxnsPerSec, "txns/sec")
			b.ReportMetric(float64(last.FsyncP99Ns), "fsyncP99-ns")
			b.ReportMetric(last.RecoveryReplayTxnsSec, "replay-txns/sec")
			if last.MemBaselineTxnsPerSec > 0 {
				b.ReportMetric(100*last.TxnsPerSec/last.MemBaselineTxnsPerSec, "%of-mem")
			}
			record(last)
		})
	}
	// Obs-overhead row (schema v6): batch 64 measured with the span
	// tracer and flight recorder toggled off vs on, interleaved trials.
	// The instrumentation is always on in production use, so this row is
	// the evidence it stays within the 5% budget cmd/benchdiff enforces.
	// A 2048-txn stream (32 windows) keeps per-run setup noise from
	// swamping the few-percent signal; txnsPerOp would give only 4.
	b.Run("obs-overhead/batch64", func(b *testing.B) {
		var last paper.ThroughputRow
		for i := 0; i < b.N; i++ {
			row, err := paper.MeasureObsOverhead(cfg, 2048, 64, 1, 3)
			if err != nil {
				b.Fatal(err)
			}
			last = row
		}
		b.ReportMetric(last.ObsOverheadPct, "obs-overhead-%")
		b.ReportMetric(last.TxnsPerSec, "txns/sec")
		record(last)
	})
	// Client-swarm serving row (schema v8): a paced batch-64 writer while
	// 1000 readers poll epoch-pinned snapshots and 5% hold SSE
	// changefeeds, over the in-memory listener. CI-scale — the 10k-client
	// acceptance run is `mvbench -swarm`; this row keeps the serving
	// gates in cmd/benchdiff armed (swarm floor within-file, read p99 vs
	// committed) on every bench regeneration.
	b.Run("swarm/batch64/clients1000", func(b *testing.B) {
		var last paper.ThroughputRow
		for i := 0; i < b.N; i++ {
			row, err := paper.MeasureServing(cfg, paper.SwarmOptions{
				Txns: 2048, Batch: 64, Workers: 1,
				Clients: 1000, WindowRate: 40, PollInterval: time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = row
		}
		b.ReportMetric(last.TxnsPerSec, "txns/sec")
		b.ReportMetric(float64(last.ReadP99Ns), "readP99-ns")
		if last.NoReaderTxnsPerSec > 0 {
			b.ReportMetric(100*last.TxnsPerSec/last.NoReaderTxnsPerSec, "%of-no-reader")
		}
		record(last)
	})
	// Sharded rows (schema v4): batch-64 windows split across N
	// shard-local pipelines by the Item router. shards=1 is the sharded
	// path minus parallelism — the overhead baseline the scaling floor
	// in cmd/benchdiff divides against.
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("sharded/batch64/shards%d", shards), func(b *testing.B) {
			var last paper.ThroughputRow
			for i := 0; i < b.N; i++ {
				row, err := paper.MeasureThroughputSharded(cfg, txnsPerOp, 64, shards, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(last.TxnsPerSec, "txns/sec")
			b.ReportMetric(last.IOPerTxn, "pageIO/txn")
			record(last)
		})
	}
	if data, err := json.MarshalIndent(struct {
		Workload string                `json:"workload"`
		Rows     []paper.ThroughputRow `json:"rows"`
	}{Workload: "figure5 hot-item 80% >T / 20% +S", Rows: results}, "", "  "); err == nil {
		if err := os.WriteFile("BENCH_maintain.json", append(data, '\n'), 0o644); err != nil {
			b.Logf("BENCH_maintain.json: %v", err)
		}
	}
	var base, top *paper.ThroughputRow
	for i := range results {
		r := &results[i]
		if r.Durable {
			continue
		}
		if r.Batch == 1 && r.Workers == 1 {
			base = r
		}
		if r.Batch == 64 {
			top = r
		}
	}
	if base != nil && top != nil {
		emitOnce(b, "thr", fmt.Sprintf(
			"Maintain throughput: %.0f txns/sec per-transaction → %.0f txns/sec at batch 64 (%.1fx), pageIO/txn %.1f → %.1f\n",
			base.TxnsPerSec, top.TxnsPerSec, top.TxnsPerSec/base.TxnsPerSec, base.IOPerTxn, top.IOPerTxn))
	}
}

// BenchmarkSweepFanout is ablation A1: where the SumOfSals advantage goes
// as employees-per-department varies.
func BenchmarkSweepFanout(b *testing.B) {
	rows, out, err := paper.SweepFanout(1000, []int{1, 2, 5, 10, 20, 50, 100})
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "a1", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := paper.SweepFanout(100, []int{1, 10}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Ratio, "ratio(d=100)")
}

// BenchmarkSweepWeights is ablation A2: sensitivity of the chosen view
// set to the transaction weights.
func BenchmarkSweepWeights(b *testing.B) {
	_, out, err := paper.SweepWeights(corpus.PaperConfig(), []float64{0.01, 0.1, 1, 10, 100})
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "a2", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := paper.SweepWeights(corpus.Config{Departments: 50, EmpsPerDept: 5}, []float64{0.1, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepOptimizers is ablation A3: exhaustive vs shielded vs the
// Section 5 heuristics on growing join chains.
func BenchmarkSweepOptimizers(b *testing.B) {
	_, out, err := paper.SweepOptimizers([]int{2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "a3", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := paper.SweepOptimizers([]int{3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBuffer is ablation A5: LRU residency vs the cold-cache
// cost model on a skewed stream.
func BenchmarkSweepBuffer(b *testing.B) {
	_, out, err := paper.SweepBuffer(corpus.Config{Departments: 200, EmpsPerDept: 10}, []int{0, 64, 1024, 16384}, 400)
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "a5", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := paper.SweepBuffer(corpus.Config{Departments: 30, EmpsPerDept: 5}, []int{0, 256}, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBatch is ablation A6: batching amortization of index
// pages, generalizing the paper's 10-tuple batch arithmetic.
func BenchmarkSweepBatch(b *testing.B) {
	_, out, err := paper.SweepBatch(corpus.Config{Departments: 500, EmpsPerDept: 200}, []int{1, 2, 10, 50, 200})
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "a6", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := paper.SweepBatch(corpus.Config{Departments: 50, EmpsPerDept: 10}, []int{1, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiViewMaintenance is experiment A4 (Section 6): maintaining
// a set of views and an assertion through one multi-rooted DAG.
func BenchmarkMultiViewMaintenance(b *testing.B) {
	db := paperDB(b, 30, 5)
	db.MustExec(`
CREATE VIEW DeptPayroll (DName, Total) AS
SELECT Dept.DName, SUM(Salary) FROM Emp, Dept
WHERE Dept.DName = Emp.DName GROUP BY Dept.DName, Budget;
`)
	sys, err := db.Build([]string{"DeptPayroll", "DeptConstraint"}, mvmaint.Config{
		Workload: paperWorkload(),
		Method:   mvmaint.Greedy,
	})
	if err != nil {
		b.Fatal(err)
	}
	emitOnce(b, "a4", "Section 6 multi-view system:\n"+sys.Explain())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf(`UPDATE Emp SET Salary = %d WHERE EName = 'e%03d_%02d'`,
			100+i%50, i%30, i%5)
		if _, err := sys.Execute(sql); err != nil {
			b.Fatal(err)
		}
	}
}
