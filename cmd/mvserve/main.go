// Command mvserve is the single-binary network server over the
// maintenance engine: it loads a SQL script (schema, data, views),
// builds a maintained system, and serves
//
//	GET  /views              the served views and their current epochs
//	GET  /view/{name}        epoch-pinned snapshot reads (scan or key=)
//	GET  /feed/{name}        live per-view changefeed over SSE, with
//	                         Last-Event-ID resume from the feed journal
//	POST /txn                maintained transaction batches
//	GET  /status             hub statistics
//	     /metrics /spans ... the obs handlers (JSON + Prometheus)
//
// With -waldir the system is durable: a fresh directory gets a WAL and
// checkpoint attached, an existing one is recovered (catalog from the
// -ddl script, state from the log) before serving. The changefeed
// journal defaults to <waldir>/feed so SSE resume works across
// restarts; without -waldir it lives in memory for the process only.
//
// Run: go run ./cmd/mvserve -addr :7070
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	mvmaint "repro"
	"repro/internal/txn"
	"repro/internal/wal"
)

// demoDDL is the served-out-of-the-box corpus: the paper's corporate
// schema with the Example 1.1 ProblemDept view.
const demoDDL = `
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);
CREATE INDEX emp_ename  ON Emp (EName);
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;
`

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":7070", "listen address")
	ddlPath := flag.String("ddl", "", "SQL script (schema, data, views); default: built-in demo corpus")
	build := flag.String("build", "", "comma-separated views/assertions to maintain (default: all declared)")
	waldir := flag.String("waldir", "", "durable state directory (attach or recover a WAL)")
	feeddir := flag.String("feeddir", "", "changefeed journal directory (default <waldir>/feed, or in-memory)")
	retain := flag.Int("retain", 64, "epochs retained per view for pinned reads")
	subbuf := flag.Int("subbuf", 256, "per-subscriber event ring size")
	flag.Parse()

	ddl := demoDDL
	demo := *ddlPath == ""
	if !demo {
		data, err := os.ReadFile(*ddlPath)
		if err != nil {
			log.Fatal(err)
		}
		ddl = string(data)
	}

	db := mvmaint.Open()
	if err := db.Exec(ddl); err != nil {
		log.Fatalf("ddl: %v", err)
	}
	if demo {
		db.MustExec(demoData())
	}

	names := db.ViewNames()
	if *build != "" {
		names = strings.Split(*build, ",")
	}
	if len(names) == 0 {
		log.Fatal("no views declared; add CREATE VIEW statements to -ddl or pass -build")
	}
	cfg := mvmaint.Config{Workload: defaultWorkload(db), Method: mvmaint.Exhaustive}

	var (
		sys *mvmaint.System
		mgr *wal.Manager
		err error
	)
	if *waldir != "" {
		has, herr := wal.HasState(wal.OSFS{}, *waldir)
		if herr != nil {
			log.Fatal(herr)
		}
		if has {
			sys, mgr, err = mvmaint.Recover(db, names, cfg, wal.OSFS{}, *waldir, wal.Options{})
			if err != nil {
				log.Fatalf("recover: %v", err)
			}
			log.Printf("recovered from %s: LSN %d, %d windows (%d txns) replayed",
				*waldir, mgr.RecoveredLSN, mgr.ReplayedWindows, mgr.ReplayedTxns)
		} else {
			sys, err = db.Build(names, cfg)
			if err != nil {
				log.Fatalf("build: %v", err)
			}
			mgr, err = sys.AttachDurability(wal.OSFS{}, *waldir, wal.Options{})
			if err != nil {
				log.Fatalf("wal attach: %v", err)
			}
			log.Printf("durability attached: WAL in %s, checkpoint at LSN %d", *waldir, mgr.LastLSN())
		}
		defer mgr.Close()
	} else {
		sys, err = db.Build(names, cfg)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
	}

	fd := *feeddir
	if fd == "" && *waldir != "" {
		fd = *waldir + "/feed"
	}
	sv, err := sys.NewServing(mvmaint.ServeOptions{
		FeedDir:          fd,
		Retain:           *retain,
		SubscriberBuffer: *subbuf,
	})
	if err != nil {
		log.Fatalf("serving: %v", err)
	}
	defer sv.Close()

	log.Printf("maintained views: %s", strings.Join(names, ", "))
	err = sv.Server.Serve(*addr, func(bound string) {
		log.Printf("mvserve listening on %s", bound)
	})
	log.Fatal(err)
}

// demoData populates the demo corpus: 100 departments x 10 employees.
func demoData() string {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%03d', 'mgr%03d', 1500);\n", i, i)
		for j := 0; j < 10; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%03d_%02d', 'd%03d', 100);\n", i, j, i)
		}
	}
	return b.String()
}

// defaultWorkload synthesizes one modify type per base relation (equal
// weights) — enough signal for the optimizer when the operator has not
// scripted a real workload.
func defaultWorkload(db *mvmaint.DB) []*txn.Type {
	var out []*txn.Type
	for _, name := range db.Store.Names() {
		def, ok := db.Catalog.Get(name)
		if !ok || def.Schema.Len() == 0 {
			continue
		}
		last := def.Schema.Cols[def.Schema.Len()-1].Name
		out = append(out, &txn.Type{
			Name: ">" + name, Weight: 1,
			Updates: []txn.RelUpdate{{Rel: name, Kind: txn.Modify, Size: 1, Cols: []string{last}}},
		})
	}
	return out
}
