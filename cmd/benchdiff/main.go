// Command benchdiff gates maintenance-throughput regressions: it
// compares a freshly generated BENCH_maintain.json against the
// committed one and exits non-zero when the batched pipeline slowed
// down beyond a threshold.
//
// Usage:
//
//	benchdiff -old /tmp/bench_committed.json -new BENCH_maintain.json
//
// Raw txns/sec is machine-dependent (the committed file records the
// author's machine; CI runs on whatever runner it gets), so the gate
// compares each file's *speedup*: batch-N txns/sec normalized by that
// same file's batch-1/workers-1 baseline. The batching advantage is a
// property of the pipeline, not the host, so a shrinking speedup is a
// real regression no matter how fast the runner is. The gate checks
// every (batch, workers) row with batch == -batch (default 64) present
// in both files and fails when the fresh speedup falls more than
// -threshold (default 0.20) below the committed one.
//
// When the fresh file carries durable rows (schema v3), a second gate
// compares durable against in-memory throughput *within the fresh
// file* — both sides ran on the same host, so the ratio is
// host-independent. Schema v5 durable rows embed a same-run, same-n
// in-memory baseline (the deferred-fence rows run a longer stream, and
// the workload is non-stationary, so the grid row is not a fair
// denominator); older rows fall back to the in-memory grid row at the
// same (batch, workers). The gate fails when durable batch-64 drops
// below -durable-floor (default 0.75) of the in-memory rate;
// -durable-floor 0 disables the gate.
//
// When the fresh file carries sharded rows (schema v4), a third gate
// checks multi-core scaling within the fresh file: batch-64 txns/sec
// at shards=8 must reach -scaling-floor (default 2.5) times shards=1.
// The gate is machine-aware — it skips with a message when the fresh
// rows report fewer than 8 CPUs, because shard parallelism cannot
// exceed the cores that exist. -scaling-floor 0 disables the gate.
//
// When BOTH files carry allocation columns (schema v5), a fourth gate
// compares heap allocations per transaction at -batch. Allocs/txn is a
// property of the code path, not the host (the same window performs
// the same allocations on any machine), so it is compared directly:
// the gate fails when fresh in-memory batch-64 allocs/txn exceed the
// committed value by more than -alloc-ceiling (default 0.20), and
// skips with a message when the committed file predates v5.
// -alloc-ceiling 0 disables the gate.
//
// When the fresh file carries an obs-overhead row (schema v6: batch-64
// throughput measured with the span tracer and flight recorder toggled
// off vs on, within one process), a fifth gate fails when the always-on
// instrumentation costs more than -obs-overhead-ceiling percent
// (default 5). Like the durable gate it is a within-file ratio, so no
// committed counterpart is required; it skips when the fresh file
// predates v6. -obs-overhead-ceiling 0 disables the gate. Riding the
// same smoke, gc_pause_p99_ns on the long-stream row must not grow past
// -gc-pause-ceiling times the committed value (default 4 — two
// power-of-two histogram bucket steps); it skips when either side
// completed no GC cycle inside its timed window.
//
// When BOTH files carry a long-stream steady-state row (schema v7: the
// in-memory batch-64/workers-1 cell measured over the longest stream in
// the file), a sixth gate compares heap bytes per transaction on that
// row. Like allocs/txn, bytes/txn is a property of the code path, not
// the host, so it is compared directly: the gate fails when the fresh
// long-stream bytes/txn exceed the committed value by more than
// -bytes-ceiling (default 0.20). It skips with a message — and so arms
// itself on the first v7 bench commit — when the committed file
// predates v7 or the two files measured different stream lengths (the
// workload is non-stationary, so bytes/txn at different n are not
// comparable). -bytes-ceiling 0 disables the gate.
//
// When the fresh file carries a client-swarm serving row (schema v8:
// read_clients > 0), two serving gates run. The swarm floor is a
// within-file ratio — the paced writer's throughput under readers must
// keep at least -swarm-floor (default 0.90) of its own no-reader
// baseline, both measured in the same process on the same host. The
// read-latency gate compares the client-side read p99 against the
// committed swarm row and fails past -read-p99-ceiling times it
// (default 4 — read latency is host-dependent, so only a large factor
// is meaningful); it skips with a message — and so arms itself on the
// first v8 bench commit — when the committed file predates v8 or the
// swarm compositions differ. 0 disables either gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/paper"
)

type benchFile struct {
	Workload string                `json:"workload"`
	Rows     []paper.ThroughputRow `json:"rows"`
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return &f, nil
}

// baseline returns the in-memory batch-1/workers-1 txns/sec of f.
func baseline(f *benchFile) (float64, error) {
	for _, r := range f.Rows {
		if r.Batch == 1 && r.Workers == 1 && !r.Durable && r.Shards == 0 {
			if r.TxnsPerSec <= 0 {
				return 0, fmt.Errorf("non-positive batch-1 baseline")
			}
			return r.TxnsPerSec, nil
		}
	}
	return 0, fmt.Errorf("no batch-1/workers-1 baseline row")
}

func main() {
	log.SetFlags(0)
	oldPath := flag.String("old", "", "committed BENCH_maintain.json (e.g. from git show HEAD:...)")
	newPath := flag.String("new", "BENCH_maintain.json", "freshly generated BENCH_maintain.json")
	batch := flag.Int("batch", 64, "batch size to gate on")
	threshold := flag.Float64("threshold", 0.20, "maximum allowed relative speedup regression")
	durableFloor := flag.Float64("durable-floor", 0.75, "minimum durable/in-memory throughput ratio at -batch (0 disables)")
	scalingFloor := flag.Float64("scaling-floor", 2.5, "minimum shards=8 / shards=1 throughput ratio at -batch (0 disables; skipped under 8 CPUs)")
	allocCeiling := flag.Float64("alloc-ceiling", 0.20, "maximum allowed relative allocs/txn growth at -batch (0 disables; skipped when -old predates schema v5)")
	obsCeiling := flag.Float64("obs-overhead-ceiling", 5, "maximum observability overhead percent at -batch (0 disables; skipped when the fresh file predates schema v6)")
	bytesCeiling := flag.Float64("bytes-ceiling", 0.20, "maximum allowed relative bytes/txn growth on the long-stream row at -batch (0 disables; skipped when -old predates schema v7)")
	gcPauseCeiling := flag.Float64("gc-pause-ceiling", 4, "maximum gc_pause_p99_ns growth factor on the long-stream row (0 disables; skipped when either file lacks a GC cycle in its window; only checked when the obs gate runs)")
	swarmFloor := flag.Float64("swarm-floor", 0.90, "minimum writer-under-readers / no-reader throughput ratio on the fresh swarm row (0 disables; skipped when the fresh file has no swarm row)")
	readP99Ceiling := flag.Float64("read-p99-ceiling", 4, "maximum read_p99_ns growth factor over the committed swarm row (0 disables; skipped when -old predates schema v8 or swarm compositions differ)")
	flag.Parse()
	if *oldPath == "" {
		log.Fatal("benchdiff: -old is required")
	}
	oldF, err := load(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newF, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	oldBase, err := baseline(oldF)
	if err != nil {
		log.Fatalf("benchdiff: %s: %v", *oldPath, err)
	}
	newBase, err := baseline(newF)
	if err != nil {
		log.Fatalf("benchdiff: %s: %v", *newPath, err)
	}

	// Keep the last row per workers count — older files may carry
	// duplicate calibration rows.
	gateRows := func(f *benchFile, durable bool) map[int]paper.ThroughputRow {
		out := map[int]paper.ThroughputRow{} // workers → row at *batch
		for _, r := range f.Rows {
			// Obs-overhead rows (ObsOverheadPct set) are a separate
			// measurement protocol (best-of-trials); they feed only the
			// obs gate, never the speedup/alloc comparisons.
			if r.Batch == *batch && r.Durable == durable && r.Shards == 0 && r.ObsOverheadPct == 0 {
				// Schema v7 adds a long-stream steady-state row at the same
				// (batch, workers) as a grid cell. The speedup and alloc
				// gates compare grid rows (shortest stream); the long-stream
				// row feeds only the bytes gate below.
				if prev, ok := out[r.Workers]; ok && r.Txns > prev.Txns {
					continue
				}
				out[r.Workers] = r
			}
		}
		return out
	}
	oldGate, newGate := gateRows(oldF, false), gateRows(newF, false)
	checked := 0
	failed := false
	for workers, row := range newGate {
		oldRow, ok := oldGate[workers]
		if !ok {
			continue
		}
		checked++
		was, got := oldRow.TxnsPerSec/oldBase, row.TxnsPerSec/newBase
		rel := got/was - 1
		status := "ok"
		if got < was*(1-*threshold) {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("batch %d workers %d: speedup %.2fx → %.2fx (%+.1f%%) %s\n",
			*batch, workers, was, got, 100*rel, status)
	}
	if checked == 0 {
		log.Fatalf("benchdiff: no common batch-%d rows between %s and %s", *batch, *oldPath, *newPath)
	}
	if failed {
		log.Fatalf("benchdiff: batch-%d speedup regressed more than %.0f%%", *batch, 100**threshold)
	}
	fmt.Printf("benchdiff: %d row(s) within %.0f%% of committed speedup\n", checked, 100**threshold)

	// Durable gate: within the fresh file, the WAL'd pipeline must keep
	// at least -durable-floor of the in-memory rate at the gated batch.
	if *durableFloor > 0 {
		durGate := gateRows(newF, true)
		if len(durGate) == 0 {
			fmt.Printf("benchdiff: no durable batch-%d rows in %s; durability gate skipped\n", *batch, *newPath)
		} else {
			durFailed := false
			durChecked := 0
			for workers, drow := range durGate {
				// Schema v5 durable rows embed a same-run, same-n in-memory
				// baseline (the workload is non-stationary, so the grid row —
				// possibly measured at a different stream length — is not a
				// fair denominator). Fall back to the grid row for older files.
				mtps := drow.MemBaselineTxnsPerSec
				if mtps <= 0 {
					mrow, ok := newGate[workers]
					if !ok || mrow.TxnsPerSec <= 0 {
						continue
					}
					mtps = mrow.TxnsPerSec
				}
				durChecked++
				dtps := drow.TxnsPerSec
				ratio := dtps / mtps
				status := "ok"
				if ratio < *durableFloor {
					status = "TOO SLOW"
					durFailed = true
				}
				fmt.Printf("durable batch %d workers %d: %.0f vs %.0f in-memory txns/sec (%.0f%%) %s\n",
					*batch, workers, dtps, mtps, 100*ratio, status)
			}
			if durChecked == 0 {
				log.Fatalf("benchdiff: durable batch-%d rows lack in-memory counterparts in %s", *batch, *newPath)
			}
			if durFailed {
				log.Fatalf("benchdiff: durable batch-%d throughput below %.0f%% of in-memory", *batch, 100**durableFloor)
			}
		}
	}

	// Scaling gate: within the fresh file, the 8-shard pipeline must beat
	// the 1-shard (routing overhead, no parallelism) pipeline by the
	// floor — but only on a machine with the cores to show it.
	if *scalingFloor > 0 {
		var one, eight *paper.ThroughputRow
		for i := range newF.Rows {
			r := &newF.Rows[i]
			if r.Batch != *batch || r.Durable {
				continue
			}
			switch r.Shards {
			case 1:
				one = r
			case 8:
				eight = r
			}
		}
		switch {
		case one == nil || eight == nil:
			fmt.Printf("benchdiff: no sharded batch-%d rows in %s; scaling gate skipped\n", *batch, *newPath)
		case eight.CPUs < 8:
			fmt.Printf("benchdiff: fresh rows ran on %d CPUs; 8-shard scaling gate skipped (needs >= 8)\n", eight.CPUs)
		case one.TxnsPerSec <= 0:
			log.Fatalf("benchdiff: non-positive shards=1 throughput in %s", *newPath)
		default:
			ratio := eight.TxnsPerSec / one.TxnsPerSec
			status := "ok"
			if ratio < *scalingFloor {
				status = "TOO FLAT"
			}
			fmt.Printf("sharded batch %d: shards=8 %.0f vs shards=1 %.0f txns/sec (%.2fx, floor %.2fx, %d CPUs) %s\n",
				*batch, eight.TxnsPerSec, one.TxnsPerSec, ratio, *scalingFloor, eight.CPUs, status)
			if ratio < *scalingFloor {
				log.Fatalf("benchdiff: batch-%d shard scaling below %.2fx floor", *batch, *scalingFloor)
			}
		}
	}

	// Allocation gate: in-memory batch-N allocs/txn must not grow more
	// than -alloc-ceiling over the committed file. Requires v5 data on
	// both sides; older committed files skip with a message so the gate
	// arms itself on the first commit that regenerates the bench file.
	if *allocCeiling > 0 {
		allocChecked := 0
		allocSkipped := 0
		allocFailed := false
		for workers, row := range newGate {
			oldRow, ok := oldGate[workers]
			if !ok {
				continue
			}
			if oldRow.SchemaVersion < 5 || oldRow.AllocsPerTxn <= 0 || row.AllocsPerTxn <= 0 {
				allocSkipped++
				continue
			}
			allocChecked++
			rel := row.AllocsPerTxn/oldRow.AllocsPerTxn - 1
			status := "ok"
			if rel > *allocCeiling {
				status = "TOO MANY"
				allocFailed = true
			}
			fmt.Printf("alloc batch %d workers %d: %.1f → %.1f allocs/txn (%+.1f%%) %s\n",
				*batch, workers, oldRow.AllocsPerTxn, row.AllocsPerTxn, 100*rel, status)
		}
		if allocChecked == 0 {
			fmt.Printf("benchdiff: committed file lacks schema-v5 allocation data (%d row(s) skipped); alloc gate skipped\n", allocSkipped)
		} else if allocFailed {
			log.Fatalf("benchdiff: batch-%d allocs/txn grew more than %.0f%% over committed", *batch, 100**allocCeiling)
		} else {
			fmt.Printf("benchdiff: %d row(s) within %.0f%% of committed allocs/txn\n", allocChecked, 100**allocCeiling)
		}
	}

	// Bytes gate: steady-state heap bytes per transaction on the
	// long-stream batch-N row must not grow more than -bytes-ceiling
	// over the committed file. The long-stream cell (largest Txns) is
	// where cross-window recycling shows up — short grid rows mostly
	// measure warm-up growth toward the workload's fan-out. Requires v7
	// data on both sides at the same stream length; older committed
	// files skip with a message so the gate arms itself on the first
	// commit that regenerates the bench file.
	// longStream picks a file's steady-state cell: the in-memory
	// batch-N/workers-1 row measured over the longest stream (schema v7
	// adds the n=8192 row; older files resolve to their grid row).
	longStream := func(f *benchFile) *paper.ThroughputRow {
		var best *paper.ThroughputRow
		for i := range f.Rows {
			r := &f.Rows[i]
			if r.Batch == *batch && r.Workers == 1 && !r.Durable && r.Shards == 0 && r.ObsOverheadPct == 0 {
				if best == nil || r.Txns >= best.Txns {
					best = r
				}
			}
		}
		return best
	}
	if *bytesCeiling > 0 {
		oldLS, newLS := longStream(oldF), longStream(newF)
		switch {
		case newLS == nil || newLS.SchemaVersion < 7 || newLS.BytesPerTxn <= 0:
			fmt.Printf("benchdiff: no schema-v7 long-stream row at batch %d in %s; bytes gate skipped\n", *batch, *newPath)
		case oldLS == nil || oldLS.SchemaVersion < 7 || oldLS.BytesPerTxn <= 0:
			fmt.Printf("benchdiff: committed file lacks schema-v7 long-stream data; bytes gate skipped (arms on the next bench commit)\n")
		case oldLS.Txns != newLS.Txns:
			fmt.Printf("benchdiff: long-stream lengths differ (n=%d committed vs n=%d fresh); bytes gate skipped — bytes/txn is stream-length-dependent\n",
				oldLS.Txns, newLS.Txns)
		default:
			rel := newLS.BytesPerTxn/oldLS.BytesPerTxn - 1
			status := "ok"
			if rel > *bytesCeiling {
				status = "TOO FAT"
			}
			fmt.Printf("bytes batch %d (n=%d): %.0f → %.0f bytes/txn (%+.1f%%) %s\n",
				*batch, newLS.Txns, oldLS.BytesPerTxn, newLS.BytesPerTxn, 100*rel, status)
			if rel > *bytesCeiling {
				log.Fatalf("benchdiff: long-stream batch-%d bytes/txn grew more than %.0f%% over committed", *batch, 100**bytesCeiling)
			}
		}
	}

	// Serving gates (schema v8). swarmRow picks a file's client-swarm
	// row at the gated batch: the one with the most read clients, so a
	// file carrying both a CI-scale and a full-scale run gates on the
	// full-scale one.
	swarmRow := func(f *benchFile) *paper.ThroughputRow {
		var best *paper.ThroughputRow
		for i := range f.Rows {
			r := &f.Rows[i]
			if r.Batch == *batch && r.ReadClients > 0 {
				if best == nil || r.ReadClients > best.ReadClients {
					best = r
				}
			}
		}
		return best
	}
	if *swarmFloor > 0 || *readP99Ceiling > 0 {
		newSwarm := swarmRow(newF)
		if newSwarm == nil {
			fmt.Printf("benchdiff: no schema-v8 swarm row at batch %d in %s; serving gates skipped\n", *batch, *newPath)
		} else {
			// Swarm floor: within the fresh file, the writer under readers
			// against its own no-reader baseline — same host, same process,
			// so the ratio is host-independent.
			if *swarmFloor > 0 {
				if newSwarm.NoReaderTxnsPerSec <= 0 {
					log.Fatalf("benchdiff: swarm row lacks a no-reader baseline in %s", *newPath)
				}
				ratio := newSwarm.TxnsPerSec / newSwarm.NoReaderTxnsPerSec
				status := "ok"
				if ratio < *swarmFloor {
					status = "TOO SLOW"
				}
				fmt.Printf("swarm batch %d (%d pollers + %d sse): writer %.0f vs %.0f no-reader txns/sec (%.0f%%, floor %.0f%%) %s\n",
					*batch, newSwarm.ReadClients, newSwarm.SSEClients,
					newSwarm.TxnsPerSec, newSwarm.NoReaderTxnsPerSec, 100*ratio, 100**swarmFloor, status)
				if ratio < *swarmFloor {
					log.Fatalf("benchdiff: writer throughput under readers below %.0f%% of no-reader baseline", 100**swarmFloor)
				}
			}
			// Read-latency gate: client-side p99 against the committed
			// swarm row. Latency is host-dependent, so only a large growth
			// factor is meaningful; differing swarm compositions make the
			// comparison apples-to-oranges and skip it.
			if *readP99Ceiling > 0 {
				oldSwarm := swarmRow(oldF)
				switch {
				case oldSwarm == nil || oldSwarm.SchemaVersion < 8 || oldSwarm.ReadP99Ns == 0:
					fmt.Printf("benchdiff: committed file lacks schema-v8 swarm data; read-p99 gate skipped (arms on the next bench commit)\n")
				case oldSwarm.ReadClients != newSwarm.ReadClients || oldSwarm.SSEClients != newSwarm.SSEClients:
					fmt.Printf("benchdiff: swarm compositions differ (%d+%d committed vs %d+%d fresh); read-p99 gate skipped\n",
						oldSwarm.ReadClients, oldSwarm.SSEClients, newSwarm.ReadClients, newSwarm.SSEClients)
				case newSwarm.ReadP99Ns == 0:
					fmt.Printf("benchdiff: fresh swarm row recorded no reads; read-p99 gate skipped\n")
				default:
					ratio := float64(newSwarm.ReadP99Ns) / float64(oldSwarm.ReadP99Ns)
					status := "ok"
					if ratio > *readP99Ceiling {
						status = "TOO LONG"
					}
					fmt.Printf("read p99 batch %d: %dns → %dns (%.2fx, ceiling %.1fx) %s\n",
						*batch, oldSwarm.ReadP99Ns, newSwarm.ReadP99Ns, ratio, *readP99Ceiling, status)
					if ratio > *readP99Ceiling {
						log.Fatalf("benchdiff: swarm read p99 grew more than %.1fx over committed", *readP99Ceiling)
					}
				}
			}
		}
	}

	// Observability gate: the always-on tracer + flight recorder must
	// cost at most -obs-overhead-ceiling percent of batch-N throughput.
	// The overhead is a within-file enabled/disabled comparison on one
	// host, so no committed counterpart is needed; the gate skips when
	// the fresh rows predate schema v6 (no obs-overhead measurement ran).
	if *obsCeiling > 0 {
		var obsRow *paper.ThroughputRow
		for i := range newF.Rows {
			r := &newF.Rows[i]
			if r.Batch == *batch && !r.Durable && r.Shards == 0 && r.ObsOverheadPct != 0 {
				obsRow = r
			}
		}
		if obsRow == nil {
			fmt.Printf("benchdiff: no schema-v6 obs-overhead row at batch %d in %s; obs gate skipped\n", *batch, *newPath)
		} else {
			status := "ok"
			if obsRow.ObsOverheadPct > *obsCeiling {
				status = "TOO COSTLY"
			}
			fmt.Printf("obs overhead batch %d: %.1f%% (ceiling %.1f%%) %s\n",
				*batch, obsRow.ObsOverheadPct, *obsCeiling, status)
			if obsRow.ObsOverheadPct > *obsCeiling {
				log.Fatalf("benchdiff: observability overhead above %.1f%% at batch %d", *obsCeiling, *batch)
			}
		}
		// GC-pause regression rides the same smoke: the stop-the-world
		// p99 on the long-stream row must not grow past
		// -gc-pause-ceiling × the committed value. The histogram's
		// power-of-two buckets quantize the tail, so the default factor
		// (4 = two bucket steps) only trips on a real collector-pressure
		// regression, not bucket jitter. Skips when either side lacks a
		// completed GC cycle inside its timed window.
		if *gcPauseCeiling > 0 {
			oldLS, newLS := longStream(oldF), longStream(newF)
			if oldLS == nil || newLS == nil || oldLS.GCPauseP99Ns == 0 || newLS.GCPauseP99Ns == 0 {
				fmt.Printf("benchdiff: gc_pause_p99_ns missing on a long-stream row; GC-pause gate skipped\n")
			} else {
				ratio := float64(newLS.GCPauseP99Ns) / float64(oldLS.GCPauseP99Ns)
				status := "ok"
				if ratio > *gcPauseCeiling {
					status = "TOO LONG"
				}
				fmt.Printf("gc pause p99 batch %d: %dns → %dns (%.2fx, ceiling %.1fx) %s\n",
					*batch, oldLS.GCPauseP99Ns, newLS.GCPauseP99Ns, ratio, *gcPauseCeiling, status)
				if ratio > *gcPauseCeiling {
					log.Fatalf("benchdiff: batch-%d gc_pause_p99_ns grew more than %.1fx over committed", *batch, *gcPauseCeiling)
				}
			}
		}
	}
}
