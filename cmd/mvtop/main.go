// Command mvtop is a live terminal dashboard for a running mvbench
// -http process: it polls /metrics (JSON form), diffs consecutive
// snapshots, and renders per-interval rates — txns/sec, page IO per
// txn, heap bytes per txn, GC cycles/sec, fsync and GC pause p99,
// slab slot recycling, shard balance, arena reuse. Stdlib only; point
// it at any process serving the obs handler.
//
// Usage:
//
//	mvtop -addr localhost:8080            # live, repaints every interval
//	mvtop -addr localhost:8080 -once      # one frame, plain text, exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "host:port (or full URL) of a process serving /metrics")
	interval := flag.Duration("interval", 1*time.Second, "poll interval")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	flag.Parse()
	log.SetFlags(0)

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics?format=json"

	prev, err := fetchSnapshot(url)
	if err != nil {
		log.Fatalf("mvtop: %v", err)
	}
	prevAt := time.Now()
	for {
		time.Sleep(*interval)
		cur, err := fetchSnapshot(url)
		now := time.Now()
		if err != nil {
			log.Fatalf("mvtop: %v", err)
		}
		frame := renderFrame(prev, cur, now.Sub(prevAt))
		if *once {
			fmt.Print(frame)
			return
		}
		// Home + clear-to-end repaints in place without flicker.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		prev, prevAt = cur, now
	}
}

func fetchSnapshot(url string) (obs.Snapshot, error) {
	var s obs.Snapshot
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, fmt.Errorf("decode %s: %w", url, err)
	}
	return s, nil
}

// renderFrame formats one dashboard frame from two snapshots dt apart.
// Pure so the frame logic is unit-testable without a server.
func renderFrame(prev, cur obs.Snapshot, dt time.Duration) string {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	dc := func(name string) int64 { return cur.Counters[name] - prev.Counters[name] }
	dh := func(name string) obs.HistogramSnapshot {
		return cur.Histograms[name].Sub(prev.Histograms[name])
	}

	txns := dc("maintain.txns")
	pageIO := dc("storage.io.page_reads") + dc("storage.io.page_writes") +
		dc("storage.io.index_reads") + dc("storage.io.index_writes")
	fsync := dh("wal.fsync.ns")
	gc := dh("runtime.gc.pause.ns")

	var b strings.Builder
	fmt.Fprintf(&b, "mvtop  interval %s\n\n", dt.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-22s %12.0f /s\n", "txns", float64(txns)/secs)
	fmt.Fprintf(&b, "%-22s %12s\n", "page IO / txn", perTxn(pageIO, txns))
	fmt.Fprintf(&b, "%-22s %12s   (n=%d)\n", "fsync p99",
		nsStr(fsync.Quantile(0.99)), fsync.Count)
	fmt.Fprintf(&b, "%-22s %12s   (cycles=%d)\n", "GC pause p99",
		nsStr(gc.Quantile(0.99)), gc.Count)
	// The GC-ceiling panels (DESIGN.md §14): live bytes/txn and GC
	// cycles/sec are the dashboard view of the schema-v7 long-stream
	// bench columns, and the slab line shows recycling absorbing the
	// rewrite churn that would otherwise grow them.
	dg := func(name string) float64 { return cur.Gauges[name] - prev.Gauges[name] }
	if alloc := dg("runtime.heap.allocs.bytes"); txns > 0 {
		fmt.Fprintf(&b, "%-22s %12s\n", "heap bytes / txn", byteStr(uint64(alloc/float64(txns))))
	} else {
		fmt.Fprintf(&b, "%-22s %12s\n", "heap bytes / txn", "-")
	}
	fmt.Fprintf(&b, "%-22s %12.2f /s\n", "GC cycles", dg("runtime.gc.cycles")/secs)
	if recycled, grownB := dc("storage.slab.slots_recycled"), dc("storage.slab.bytes_allocated"); recycled > 0 || grownB > 0 {
		fmt.Fprintf(&b, "%-22s %12.0f /s   (slab grew %s)\n", "slab slots recycled",
			float64(recycled)/secs, byteStr(uint64(grownB)))
	}
	fmt.Fprintf(&b, "%-22s %12s\n", "arena reuse", arenaReuse(prev, cur))
	if g, ok := cur.Gauges["runtime.goroutines"]; ok {
		fmt.Fprintf(&b, "%-22s %12.0f\n", "goroutines", g)
	}
	if g, ok := cur.Gauges["runtime.heap.bytes"]; ok {
		fmt.Fprintf(&b, "%-22s %12s\n", "heap", byteStr(uint64(g)))
	}
	if bal := shardBalance(prev, cur); bal != "" {
		fmt.Fprintf(&b, "\nshard balance (routed units this interval)\n%s", bal)
	}
	return b.String()
}

func perTxn(n, txns int64) string {
	if txns == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(n)/float64(txns))
}

func nsStr(ns uint64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

func byteStr(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := uint64(unit), 0
	for u := n / unit; u >= unit; u /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// arenaReuse reports what fraction of arena bytes this interval were
// served from reuse rather than fresh growth.
func arenaReuse(prev, cur obs.Snapshot) string {
	reused := cur.Counters["maintain.arena.reused_bytes"] - prev.Counters["maintain.arena.reused_bytes"]
	grown := cur.Counters["maintain.arena.grown_bytes"] - prev.Counters["maintain.arena.grown_bytes"]
	if reused+grown == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(reused)/float64(reused+grown))
}

// shardBalance renders one bar per maintain.shardNN.routed_units
// counter, scaled to the busiest shard, with the max/mean skew ratio.
func shardBalance(prev, cur obs.Snapshot) string {
	type row struct {
		name  string
		units int64
	}
	var rows []row
	var max, sum int64
	for name, v := range cur.Counters {
		if !strings.HasPrefix(name, "maintain.shard") || !strings.HasSuffix(name, ".routed_units") {
			continue
		}
		d := v - prev.Counters[name]
		rows = append(rows, row{name, d})
		sum += d
		if d > max {
			max = d
		}
	}
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var b strings.Builder
	for _, r := range rows {
		width := 0
		if max > 0 {
			width = int(r.units * 40 / max)
		}
		fmt.Fprintf(&b, "  %-28s %10d %s\n", r.name, r.units, strings.Repeat("#", width))
	}
	if len(rows) > 1 && sum > 0 {
		mean := float64(sum) / float64(len(rows))
		fmt.Fprintf(&b, "  skew (max/mean) %.2f\n", float64(max)/mean)
	}
	return b.String()
}
