package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func snapPair() (obs.Snapshot, obs.Snapshot) {
	reg := obs.NewRegistry()
	reg.Counter("maintain.txns").Add(100)
	reg.Counter("storage.io.page_reads").Add(50)
	reg.Counter("storage.io.page_writes").Add(30)
	reg.Counter("maintain.arena.reused_bytes").Add(900)
	reg.Counter("maintain.arena.grown_bytes").Add(100)
	reg.Counter("maintain.shard00.routed_units").Add(10)
	reg.Counter("maintain.shard01.routed_units").Add(40)
	h := reg.Histogram("wal.fsync.ns")
	h.Observe(1000)
	prev := reg.Snapshot()

	reg.Counter("maintain.txns").Add(200)
	reg.Counter("storage.io.page_reads").Add(100)
	reg.Counter("storage.io.page_writes").Add(60)
	reg.Counter("maintain.arena.reused_bytes").Add(300)
	reg.Counter("maintain.arena.grown_bytes").Add(100)
	reg.Counter("maintain.shard00.routed_units").Add(20)
	reg.Counter("maintain.shard01.routed_units").Add(60)
	reg.Counter("storage.slab.slots_recycled").Add(300)
	reg.Counter("storage.slab.bytes_allocated").Add(2048)
	for i := 0; i < 98; i++ {
		h.Observe(1000)
	}
	h.Observe(5_000_000) // the window's p99 tail
	h.Observe(5_000_000)
	reg.Gauge("runtime.goroutines").Set(12)
	reg.Gauge("runtime.heap.allocs.bytes").Set(1_000_000)
	reg.Gauge("runtime.gc.cycles").Set(4)
	cur := reg.Snapshot()
	return prev, cur
}

func TestRenderFrame(t *testing.T) {
	prev, cur := snapPair()
	frame := renderFrame(prev, cur, 2*time.Second)

	for _, want := range []string{
		"txns", "100 /s", // 200 txns over 2s
		"page IO / txn", "0.80", // 160 page IO / 200 txns
		"fsync p99",
		"heap bytes / txn", "4.9 KiB", // 1e6 alloc bytes / 200 txns
		"GC cycles", "2.00 /s", // 4 cycles over 2s
		"slab slots recycled", "150 /s", // 300 over 2s
		"slab grew 2.0 KiB",
		"arena reuse", "75.0%", // 300 reused vs 100 grown
		"goroutines", "12",
		"shard balance",
		"maintain.shard00.routed_units", "20",
		"maintain.shard01.routed_units", "60",
		"skew (max/mean) 1.50",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// The 5ms outliers dominate the window's fsync p99 (power-of-two
	// buckets: 5e6 rounds up to <= 2^23-1 ns ≈ 8.4ms).
	if !strings.Contains(frame, "8.389ms") {
		t.Fatalf("fsync p99 not from the window delta:\n%s", frame)
	}
}

func TestRenderFrameEmptyDelta(t *testing.T) {
	prev, _ := snapPair()
	frame := renderFrame(prev, prev, time.Second)
	for _, want := range []string{"0 /s", "page IO / txn", "-"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("idle frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "skew") {
		t.Fatalf("idle frame reports skew:\n%s", frame)
	}
}
