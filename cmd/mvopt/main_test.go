package main

import (
	"testing"

	"repro/internal/txn"
)

func TestParseTxn(t *testing.T) {
	ty, err := parseTxn("modify:Emp:Salary:1:2")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Weight != 2 || len(ty.Updates) != 1 {
		t.Fatalf("parsed = %+v", ty)
	}
	u := ty.Updates[0]
	if u.Rel != "Emp" || u.Kind != txn.Modify || u.Size != 1 ||
		len(u.Cols) != 1 || u.Cols[0] != "Salary" {
		t.Errorf("update = %+v", u)
	}

	ty, err = parseTxn("modify:Emp:Salary+DName:2:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(ty.Updates[0].Cols) != 2 || ty.Updates[0].Size != 2 || ty.Weight != 0.5 {
		t.Errorf("multi-col parse = %+v", ty.Updates[0])
	}

	ty, err = parseTxn("insert:ADepts:1:3")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Updates[0].Kind != txn.Insert || ty.Updates[0].Size != 1 || ty.Weight != 3 {
		t.Errorf("insert parse = %+v", ty)
	}

	ty, err = parseTxn("delete:Emp:5:1")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Updates[0].Kind != txn.Delete || ty.Updates[0].Size != 5 {
		t.Errorf("delete parse = %+v", ty)
	}
}

func TestParseTxnErrors(t *testing.T) {
	bad := []string{
		"",
		"modify:Emp",            // too short
		"modify:Emp:1:1",        // missing cols for modify
		"upsert:Emp:1:1",        // unknown kind
		"insert:Emp:abc:1",      // bad size
		"insert:Emp:1:xyz",      // bad weight
	}
	for _, spec := range bad {
		if _, err := parseTxn(spec); err == nil {
			t.Errorf("no error for %q", spec)
		}
	}
}
