// Command mvopt selects the optimal set of additional views to
// materialize for a SQL-defined view or assertion under a workload
// specification — the paper's core question as a command-line tool.
//
// Usage:
//
//	mvopt -schema schema.sql -view ProblemDept \
//	      -txn 'modify:Emp:Salary:1:1' -txn 'modify:Dept:Budget:1:1' \
//	      [-method exhaustive|parallel|shielded|greedy|single-tree|heuristic-marking]
//	      [-j workers] [-seed n]
//
// Each -txn flag is kind:relation[:cols]:size:weight, where kind is
// insert, delete or modify and cols is a +-separated column list for
// modifications (e.g. 'modify:Emp:Salary+DName:1:2').
//
// The schema file holds CREATE TABLE / CREATE INDEX / INSERT statements
// plus the CREATE VIEW / CREATE ASSERTION definitions.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	mvmaint "repro"
	"repro/internal/obs"
	"repro/internal/txn"
)

type txnFlags []string

// String implements flag.Value.
func (t *txnFlags) String() string { return strings.Join(*t, ",") }
// Set implements flag.Value.
func (t *txnFlags) Set(s string) error {
	*t = append(*t, s)
	return nil
}

func parseTxn(spec string) (*txn.Type, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 4 {
		return nil, fmt.Errorf("txn spec %q: want kind:rel[:cols]:size:weight", spec)
	}
	var kind txn.Kind
	switch parts[0] {
	case "insert":
		kind = txn.Insert
	case "delete":
		kind = txn.Delete
	case "modify":
		kind = txn.Modify
	default:
		return nil, fmt.Errorf("txn spec %q: unknown kind %q", spec, parts[0])
	}
	rel := parts[1]
	var cols []string
	sizeIdx := 2
	if kind == txn.Modify {
		if len(parts) < 5 {
			return nil, fmt.Errorf("txn spec %q: modify needs cols", spec)
		}
		cols = strings.Split(parts[2], "+")
		sizeIdx = 3
	}
	size, err := strconv.ParseFloat(parts[sizeIdx], 64)
	if err != nil {
		return nil, fmt.Errorf("txn spec %q: size: %v", spec, err)
	}
	weight, err := strconv.ParseFloat(parts[sizeIdx+1], 64)
	if err != nil {
		return nil, fmt.Errorf("txn spec %q: weight: %v", spec, err)
	}
	return &txn.Type{
		Name:    spec,
		Weight:  weight,
		Updates: []txn.RelUpdate{{Rel: rel, Kind: kind, Size: size, Cols: cols}},
	}, nil
}

func main() {
	log.SetFlags(0)
	schema := flag.String("schema", "", "SQL file with schema, data, views and assertions")
	view := flag.String("view", "", "view or assertion to optimize (repeatable via comma)")
	method := flag.String("method", "exhaustive", "exhaustive|parallel|shielded|greedy|single-tree|heuristic-marking|no-additional")
	var workers int
	flag.IntVar(&workers, "j", 0, "worker count for -method parallel (0 = all CPUs)")
	flag.IntVar(&workers, "workers", 0, "alias for -j")
	seed := flag.Int64("seed", 0, "chunk-order seed for -method parallel (result is seed-independent)")
	var txns txnFlags
	flag.Var(&txns, "txn", "transaction type kind:rel[:cols]:size:weight (repeatable)")
	metrics := flag.Bool("metrics", false, "dump the metrics snapshot as JSON to stderr on exit")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot JSON to this file on exit (implies -metrics)")
	httpAddr := flag.String("http", "", "serve /metrics, /spans and /debug/pprof on this address (e.g. :8080) and block after the run")
	flag.Parse()

	if *schema == "" || *view == "" || len(txns) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *httpAddr != "" {
		addr, err := obs.Serve(*httpAddr, obs.Default, obs.Trace)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("metrics: serving http://%s/metrics (also /spans, /spans/summary, /debug/pprof)", addr)
	}
	defer func() {
		if *metrics || *metricsOut != "" {
			data := obs.SnapshotJSON(obs.Default)
			if *metricsOut == "" {
				fmt.Fprintln(os.Stderr, string(data))
				fmt.Fprint(os.Stderr, obs.Trace.SummaryTable())
			} else if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
				log.Printf("metrics: %v", err)
			} else {
				log.Printf("metrics: snapshot written to %s", *metricsOut)
			}
		}
		if *httpAddr != "" {
			log.Printf("metrics: run complete; endpoints stay up until interrupted")
			select {}
		}
	}()
	sql, err := os.ReadFile(*schema)
	if err != nil {
		log.Fatal(err)
	}
	db := mvmaint.Open()
	if err := db.Exec(string(sql)); err != nil {
		log.Fatalf("schema: %v", err)
	}

	var workload []*txn.Type
	for _, spec := range txns {
		t, err := parseTxn(spec)
		if err != nil {
			log.Fatal(err)
		}
		workload = append(workload, t)
	}

	methods := map[string]mvmaint.Method{
		"exhaustive":        mvmaint.Exhaustive,
		"parallel":          mvmaint.Parallel,
		"shielded":          mvmaint.Shielded,
		"greedy":            mvmaint.Greedy,
		"single-tree":       mvmaint.SingleTree,
		"heuristic-marking": mvmaint.HeuristicMarking,
		"no-additional":     mvmaint.NoAdditional,
	}
	m, ok := methods[*method]
	if !ok {
		log.Fatalf("unknown method %q", *method)
	}

	sys, err := db.Build(strings.Split(*view, ","), mvmaint.Config{
		Workload:    workload,
		Method:      m,
		Parallelism: workers,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Explain())
}
