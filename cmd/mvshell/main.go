// Command mvshell is a tiny interactive shell over the library: type SQL
// statements terminated by ';', declare views and assertions, then
// '.build view1,view2' to start maintained execution. Subsequent DML runs
// through the maintenance engine with live page-I/O reporting and
// assertion checking.
//
// Meta commands:
//
//	.build names     optimize + materialize for the named views/assertions
//	.explain         show the optimizer's decision
//	.view name       print a maintained view's rows
//	.io              print cumulative page I/O counters
//	.stats           print the metrics registry and span self-time summary
//	.quit            exit
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	mvmaint "repro"
	"repro/internal/obs"
	"repro/internal/txn"
)

func main() {
	log.SetFlags(0)
	db := mvmaint.Open()
	var sys *mvmaint.System

	fmt.Println("mvmaint shell — SQL statements end with ';', meta commands start with '.'")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("mv> ")
		} else {
			fmt.Print("..> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (strings.HasPrefix(trimmed, ".") || strings.HasPrefix(trimmed, "\\")) {
			if !meta(db, &sys, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			runSQL(db, sys, sql)
		}
		prompt()
	}
}

// meta handles dot-commands; returns false to quit.
func meta(db *mvmaint.DB, sys **mvmaint.System, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".build":
		if len(fields) < 2 {
			fmt.Println("usage: .build view1,view2")
			return true
		}
		names := strings.Split(fields[1], ",")
		s, err := db.Build(names, mvmaint.Config{
			Workload: defaultWorkload(db),
			Method:   mvmaint.Exhaustive,
		})
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		*sys = s
		fmt.Print(s.Explain())
	case ".explain":
		if *sys == nil {
			fmt.Println("no system built yet (.build first)")
			return true
		}
		fmt.Print((*sys).Explain())
	case ".view":
		if *sys == nil || len(fields) < 2 {
			fmt.Println("usage (after .build): .view name")
			return true
		}
		rows, err := (*sys).ViewRows(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, r := range rows {
			fmt.Printf("  %s ×%d\n", r.Tuple, r.Count)
		}
		fmt.Printf("  (%d rows)\n", len(rows))
	case ".io":
		fmt.Println(" ", db.Store.IO.String())
	case ".stats", "\\stats":
		printStats()
	default:
		fmt.Println("unknown meta command:", fields[0])
	}
	return true
}

// printStats renders the global metrics registry (non-zero counters,
// gauges and histogram quantiles, sorted by name) plus the span
// self-time summary.
func printStats() {
	s := obs.Default.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for n, v := range s.Counters {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-44s %d\n", n, s.Counters[n])
	}
	gnames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Printf("  %-44s %g\n", n, s.Gauges[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n, h := range s.Histograms {
		if h.Count != 0 {
			hnames = append(hnames, n)
		}
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		fmt.Printf("  %-44s count=%d sum=%d p50<=%d p99<=%d\n",
			n, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.99))
	}
	if out := obs.Trace.SummaryTable(); out != "" {
		fmt.Print(out)
	}
}

// defaultWorkload synthesizes one modify type per base relation (equal
// weights) when the user has not scripted anything fancier.
func defaultWorkload(db *mvmaint.DB) []*txn.Type {
	var out []*txn.Type
	for _, name := range db.Store.Names() {
		def, ok := db.Catalog.Get(name)
		if !ok || def.Schema.Len() == 0 {
			continue
		}
		last := def.Schema.Cols[def.Schema.Len()-1].Name
		out = append(out, &txn.Type{
			Name: ">" + name, Weight: 1,
			Updates: []txn.RelUpdate{{Rel: name, Kind: txn.Modify, Size: 1, Cols: []string{last}}},
		})
	}
	return out
}

func runSQL(db *mvmaint.DB, sys *mvmaint.System, sql string) {
	trimmed := strings.ToUpper(strings.TrimSpace(sql))
	switch {
	case strings.HasPrefix(trimmed, "SELECT"):
		res, err := db.Query(sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(" ", res.Schema)
		for _, r := range res.Sorted() {
			fmt.Printf("  %s ×%d\n", r.Tuple, r.Count)
		}
		fmt.Printf("  (%d rows)\n", res.Card())
	case sys != nil && (strings.HasPrefix(trimmed, "INSERT") ||
		strings.HasPrefix(trimmed, "DELETE") || strings.HasPrefix(trimmed, "UPDATE")):
		out, err := sys.Execute(sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rep := out.Report
		fmt.Printf("  maintained: query I/O %d, view I/O %d (paper metric %d)\n",
			rep.QueryIO.Total(), rep.ViewIO.Total(), rep.PaperTotal())
		for _, v := range out.Violations {
			fmt.Println(" ", v)
		}
		if out.RolledBack {
			fmt.Println("  transaction ROLLED BACK")
		}
	default:
		if err := db.Exec(sql); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("  ok")
	}
}
