// Command mvshell is a tiny interactive shell over the library: type SQL
// statements terminated by ';', declare views and assertions, then
// '.build view1,view2' to start maintained execution. Subsequent DML runs
// through the maintenance engine with live page-I/O reporting and
// assertion checking.
//
// With -waldir DIR the shell is durable: .build attaches a write-ahead
// log in DIR (one fsync per maintained statement) and records the
// session's DDL in the checkpoint metadata, so a later mvshell -waldir
// DIR session can '.recover' the whole system — catalog, base
// relations, materialized views and log tail — without re-running the
// setup script.
//
// Meta commands ('\' works in place of '.'):
//
//	.build names     optimize + materialize for the named views/assertions
//	.explain         show the optimizer's decision
//	.view name       print a maintained view's rows
//	.checkpoint      write a durable checkpoint (after .build, with -waldir)
//	.recover         rebuild the system from -waldir's durable state
//	.io              print cumulative page I/O counters
//	.stats           print the metrics registry and span self-time summary
//	.flight [path]   print the flight-recorder tail, or dump it to path
//	.serve [addr]    start the mvserve HTTP surface over this session (default :7070)
//	.subscribe v [n] print the next n changefeed events for view v (default 10)
//	.quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	mvmaint "repro"
	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/wal"
)

// shell is the mutable session state the meta commands operate on.
type shell struct {
	db     *mvmaint.DB
	sys    *mvmaint.System
	mgr    *wal.Manager
	sv     *mvmaint.Serving
	waldir string
	ddl    []string // CREATE statements run this session, persisted at checkpoint
	names  []string // view/assertion names passed to .build
}

func main() {
	log.SetFlags(0)
	waldir := flag.String("waldir", "", "directory for durable state (enables .checkpoint/.recover)")
	flag.Parse()

	sh := &shell{db: mvmaint.Open(), waldir: *waldir}
	defer func() {
		if sh.mgr != nil {
			if err := sh.mgr.Close(); err != nil {
				fmt.Println("wal close:", err)
			}
		}
	}()

	fmt.Println("mvmaint shell — SQL statements end with ';', meta commands start with '.'")
	if sh.waldir != "" {
		fmt.Printf("durable mode: WAL directory %s\n", sh.waldir)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("mv> ")
		} else {
			fmt.Print("..> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (strings.HasPrefix(trimmed, ".") || strings.HasPrefix(trimmed, "\\")) {
			if !sh.meta(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := buf.String()
			buf.Reset()
			sh.runSQL(sql)
		}
		prompt()
	}
}

// meta handles dot-commands; returns false to quit.
func (sh *shell) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	name := strings.TrimLeft(fields[0], ".\\")
	switch name {
	case "quit", "exit":
		return false
	case "build":
		if len(fields) < 2 {
			fmt.Println("usage: .build view1,view2")
			return true
		}
		names := strings.Split(fields[1], ",")
		s, err := sh.db.Build(names, mvmaint.Config{
			Workload: defaultWorkload(sh.db),
			Method:   mvmaint.Exhaustive,
		})
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		sh.sys, sh.names = s, names
		fmt.Print(s.Explain())
		sh.attach()
	case "checkpoint":
		if sh.mgr == nil {
			fmt.Println("no durable system (start with -waldir, then .build)")
			return true
		}
		if err := sh.mgr.Checkpoint(nil); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("  checkpoint written at LSN %d\n", sh.mgr.LastLSN())
	case "recover":
		sh.recover()
	case "explain":
		if sh.sys == nil {
			fmt.Println("no system built yet (.build first)")
			return true
		}
		fmt.Print(sh.sys.Explain())
	case "view":
		if sh.sys == nil || len(fields) < 2 {
			fmt.Println("usage (after .build): .view name")
			return true
		}
		rows, err := sh.sys.ViewRows(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, r := range rows {
			fmt.Printf("  %s ×%d\n", r.Tuple, r.Count)
		}
		fmt.Printf("  (%d rows)\n", len(rows))
	case "serve":
		sh.serve(fields[1:])
	case "subscribe":
		sh.subscribe(fields[1:])
	case "io":
		fmt.Println(" ", sh.db.Store.IO.String())
	case "stats":
		printStats()
	case "flight":
		printFlight(fields[1:])
	default:
		fmt.Println("unknown meta command:", fields[0])
	}
	return true
}

// serve starts the mvserve HTTP surface — snapshot reads, changefeeds,
// POST /txn, obs endpoints — over the session's built system. The
// listener runs in a goroutine; the shell stays interactive and shell
// SQL keeps flowing through the same maintained pipeline the server
// uses, so HTTP subscribers see shell-driven windows too.
func (sh *shell) serve(args []string) {
	if sh.sys == nil {
		fmt.Println("no system built yet (.build first)")
		return
	}
	if sh.sv != nil {
		fmt.Println("already serving (one listener per session)")
		return
	}
	addr := ":7070"
	if len(args) > 0 {
		addr = args[0]
	}
	feedDir := ""
	if sh.waldir != "" {
		feedDir = sh.waldir + "/feed"
	}
	sv, err := sh.sys.NewServing(mvmaint.ServeOptions{FeedDir: feedDir})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sh.sv = sv
	go func() {
		if err := sv.Server.Serve(addr, func(bound string) {
			fmt.Printf("\n  serving on %s (views, feeds, /txn, /metrics)\nmv> ", bound)
		}); err != nil {
			fmt.Printf("\n  serve: %v\nmv> ", err)
		}
	}()
}

// subscribe prints the next n changefeed events (default 10) for a view
// from the in-process hub — the same stream SSE clients get — then
// detaches. It gives up after 30 seconds without an event.
func (sh *shell) subscribe(args []string) {
	if sh.sv == nil {
		fmt.Println("not serving (.serve first)")
		return
	}
	if len(args) < 1 {
		fmt.Println("usage: .subscribe view [n]")
		return
	}
	n := 10
	if len(args) > 1 {
		if _, err := fmt.Sscanf(args[1], "%d", &n); err != nil || n < 1 {
			fmt.Println("usage: .subscribe view [n]")
			return
		}
	}
	sub, err := sh.sv.Hub.Subscribe(args[0], 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer sub.Close()
	fmt.Printf("  waiting for %d events on %s (30s timeout; shell is blocked)\n", n, args[0])
	timeout := time.After(30 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				fmt.Println("  subscription reset (buffer overflow)")
				return
			}
			fmt.Printf("  %s\n", ev.Data)
		case <-timeout:
			fmt.Printf("  timed out after %d of %d events\n", i, n)
			return
		}
	}
}

// attach arms durability after .build when -waldir was given. The DDL
// recorded so far and the build names travel in the checkpoint metadata
// so .recover can rebuild the catalog and system without the script.
func (sh *shell) attach() {
	if sh.waldir == "" || sh.sys == nil {
		return
	}
	if has, err := wal.HasState(wal.OSFS{}, sh.waldir); err != nil {
		fmt.Println("wal:", err)
		return
	} else if has {
		fmt.Printf("  %s already holds durable state — use .recover to reopen it\n", sh.waldir)
		return
	}
	mgr, err := sh.sys.AttachDurability(wal.OSFS{}, sh.waldir, wal.Options{
		Meta: map[string]string{
			"ddl":   strings.Join(sh.ddl, "\n"),
			"build": strings.Join(sh.names, ","),
		},
	})
	if err != nil {
		fmt.Println("wal:", err)
		return
	}
	sh.mgr = mgr
	fmt.Printf("  durability attached: WAL in %s, checkpoint at LSN %d\n", sh.waldir, mgr.LastLSN())
}

// recover replaces the session's DB and system with the durable state
// in -waldir: DDL from the checkpoint metadata rebuilds the catalog on
// a fresh DB, the checkpoint restores relations and views, and the
// committed log tail replays through incremental maintenance.
func (sh *shell) recover() {
	if sh.waldir == "" {
		fmt.Println("no WAL directory (restart with -waldir DIR)")
		return
	}
	meta, err := wal.ReadMeta(wal.OSFS{}, sh.waldir)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if meta["ddl"] == "" || meta["build"] == "" {
		fmt.Println("checkpoint carries no ddl/build metadata; recover manually with the original script")
		return
	}
	db := mvmaint.Open()
	if err := db.Exec(meta["ddl"]); err != nil {
		fmt.Println("ddl replay:", err)
		return
	}
	names := strings.Split(meta["build"], ",")
	sys, mgr, err := mvmaint.Recover(db, names, mvmaint.Config{
		Workload: defaultWorkload(db),
		Method:   mvmaint.Exhaustive,
	}, wal.OSFS{}, sh.waldir, wal.Options{Meta: meta})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if sh.mgr != nil {
		sh.mgr.Close()
	}
	sh.db, sh.sys, sh.mgr = db, sys, mgr
	sh.names = names
	sh.ddl = strings.Split(meta["ddl"], "\n")
	fmt.Printf("  recovered to LSN %d: %d windows (%d txns) replayed, %d views recomputed\n",
		mgr.RecoveredLSN, mgr.ReplayedWindows, mgr.ReplayedTxns, mgr.RecomputedViews)
}

// printStats renders the global metrics registry (non-zero counters,
// gauges and histogram quantiles, sorted by name) plus the span
// self-time summary.
func printStats() {
	s := obs.Default.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for n, v := range s.Counters {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-44s %d\n", n, s.Counters[n])
	}
	gnames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Printf("  %-44s %g\n", n, s.Gauges[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n, h := range s.Histograms {
		if h.Count != 0 {
			hnames = append(hnames, n)
		}
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		fmt.Printf("  %-44s count=%d sum=%d p50<=%d p99<=%d\n",
			n, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.99))
	}
	if out := obs.Trace.SummaryTable(); out != "" {
		fmt.Print(out)
	}
}

// printFlight shows the flight recorder's newest events, or with a path
// argument writes the full binary image for offline decoding.
func printFlight(args []string) {
	f := obs.Flight()
	if len(args) > 0 {
		if err := f.DumpToFile(args[0]); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("  flight image (%d events recorded) written to %s\n", f.Total(), args[0])
		return
	}
	evs := f.Events()
	if len(evs) == 0 {
		fmt.Println("  flight recorder empty")
		return
	}
	const tail = 32
	if len(evs) > tail {
		fmt.Printf("  ... %d older event(s) retained; showing newest %d of %d recorded\n",
			len(evs)-tail, tail, f.Total())
		evs = evs[len(evs)-tail:]
	}
	fmt.Print(obs.FormatEvents(evs, 0))
}

// defaultWorkload synthesizes one modify type per base relation (equal
// weights) when the user has not scripted anything fancier.
func defaultWorkload(db *mvmaint.DB) []*txn.Type {
	var out []*txn.Type
	for _, name := range db.Store.Names() {
		def, ok := db.Catalog.Get(name)
		if !ok || def.Schema.Len() == 0 {
			continue
		}
		last := def.Schema.Cols[def.Schema.Len()-1].Name
		out = append(out, &txn.Type{
			Name: ">" + name, Weight: 1,
			Updates: []txn.RelUpdate{{Rel: name, Kind: txn.Modify, Size: 1, Cols: []string{last}}},
		})
	}
	return out
}

// stripComments drops '--' line comments so statement classification
// (and DDL recording) sees the first real token, not a header comment.
func stripComments(sql string) string {
	lines := strings.Split(sql, "\n")
	out := lines[:0]
	for _, l := range lines {
		if t := strings.TrimSpace(l); t == "" || strings.HasPrefix(t, "--") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

func (sh *shell) runSQL(sql string) {
	sql = stripComments(sql)
	trimmed := strings.ToUpper(strings.TrimSpace(sql))
	switch {
	case strings.HasPrefix(trimmed, "SELECT"):
		res, err := sh.db.Query(sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(" ", res.Schema)
		for _, r := range res.Sorted() {
			fmt.Printf("  %s ×%d\n", r.Tuple, r.Count)
		}
		fmt.Printf("  (%d rows)\n", res.Card())
	case sh.sys != nil && (strings.HasPrefix(trimmed, "INSERT") ||
		strings.HasPrefix(trimmed, "DELETE") || strings.HasPrefix(trimmed, "UPDATE")):
		out, err := sh.sys.Execute(sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rep := out.Report
		fmt.Printf("  maintained: query I/O %d, view I/O %d (paper metric %d)\n",
			rep.QueryIO.Total(), rep.ViewIO.Total(), rep.PaperTotal())
		if sh.mgr != nil && !out.RolledBack {
			fmt.Printf("  durable at LSN %d\n", rep.LSN)
		}
		for _, v := range out.Violations {
			fmt.Println(" ", v)
		}
		if out.RolledBack {
			fmt.Println("  transaction ROLLED BACK")
		}
	default:
		if err := sh.db.Exec(sql); err != nil {
			fmt.Println("error:", err)
			return
		}
		if strings.HasPrefix(trimmed, "CREATE") {
			sh.ddl = append(sh.ddl, strings.TrimSpace(sql))
		}
		fmt.Println("  ok")
	}
}
