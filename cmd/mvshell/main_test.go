package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	mvmaint "repro"
)

// captureStdout runs f with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

func shellDB(t *testing.T) *mvmaint.DB {
	t.Helper()
	db := mvmaint.Open()
	db.MustExec(`
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);
INSERT INTO Dept VALUES ('d0', 'm0', 900), ('d1', 'm1', 900);
INSERT INTO Emp VALUES ('a', 'd0', 100), ('b', 'd0', 100), ('c', 'd1', 100);
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;
`)
	return db
}

func TestShellSelectAndDDL(t *testing.T) {
	db := shellDB(t)
	out := captureStdout(t, func() {
		runSQL(db, nil, `SELECT DName, SUM(Salary) AS s FROM Emp GROUP BY DName;`)
	})
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("select output:\n%s", out)
	}
	out = captureStdout(t, func() {
		runSQL(db, nil, `INSERT INTO Emp VALUES ('d', 'd1', 50);`)
	})
	if !strings.Contains(out, "ok") {
		t.Errorf("ddl output:\n%s", out)
	}
	out = captureStdout(t, func() {
		runSQL(db, nil, `SELECT nonsense FROM Nowhere;`)
	})
	if !strings.Contains(out, "error") {
		t.Errorf("bad select should report an error:\n%s", out)
	}
}

func TestShellBuildAndMaintainedDML(t *testing.T) {
	db := shellDB(t)
	var sys *mvmaint.System
	out := captureStdout(t, func() {
		meta(db, &sys, ".build ProblemDept")
	})
	if sys == nil || !strings.Contains(out, "chosen view set") {
		t.Fatalf("build output:\n%s", out)
	}
	out = captureStdout(t, func() {
		runSQL(db, sys, `UPDATE Emp SET Salary = 2000 WHERE EName = 'a';`)
	})
	if !strings.Contains(out, "maintained") {
		t.Errorf("maintained DML output:\n%s", out)
	}
	out = captureStdout(t, func() {
		meta(db, &sys, ".view ProblemDept")
	})
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("view output should show the violation:\n%s", out)
	}
	out = captureStdout(t, func() {
		meta(db, &sys, ".io")
	})
	if !strings.Contains(out, "total=") {
		t.Errorf("io output:\n%s", out)
	}
}

func TestShellMetaEdgeCases(t *testing.T) {
	db := shellDB(t)
	var sys *mvmaint.System
	if !meta(db, &sys, ".explain") { // no system yet: message, keep running
		t.Error(".explain should not quit")
	}
	if !meta(db, &sys, ".unknown") {
		t.Error("unknown meta should not quit")
	}
	if meta(db, &sys, ".quit") {
		t.Error(".quit should return false")
	}
	if !meta(db, &sys, ".build") { // missing args: usage, keep running
		t.Error(".build usage should not quit")
	}
}
