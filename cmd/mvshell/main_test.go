package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	mvmaint "repro"
)

// captureStdout runs f with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

const shellDDL = `
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;
`

func shellSession(t *testing.T, waldir string) *shell {
	t.Helper()
	sh := &shell{db: mvmaint.Open(), waldir: waldir}
	sh.runSQL(shellDDL)
	sh.db.MustExec(`
INSERT INTO Dept VALUES ('d0', 'm0', 900), ('d1', 'm1', 900);
INSERT INTO Emp VALUES ('a', 'd0', 100), ('b', 'd0', 100), ('c', 'd1', 100);
`)
	return sh
}

func TestShellSelectAndDDL(t *testing.T) {
	sh := shellSession(t, "")
	out := captureStdout(t, func() {
		sh.runSQL(`SELECT DName, SUM(Salary) AS s FROM Emp GROUP BY DName;`)
	})
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("select output:\n%s", out)
	}
	out = captureStdout(t, func() {
		sh.runSQL(`INSERT INTO Emp VALUES ('d', 'd1', 50);`)
	})
	if !strings.Contains(out, "ok") {
		t.Errorf("ddl output:\n%s", out)
	}
	out = captureStdout(t, func() {
		sh.runSQL(`SELECT nonsense FROM Nowhere;`)
	})
	if !strings.Contains(out, "error") {
		t.Errorf("bad select should report an error:\n%s", out)
	}
}

func TestShellBuildAndMaintainedDML(t *testing.T) {
	sh := shellSession(t, "")
	out := captureStdout(t, func() {
		sh.meta(".build ProblemDept")
	})
	if sh.sys == nil || !strings.Contains(out, "chosen view set") {
		t.Fatalf("build output:\n%s", out)
	}
	out = captureStdout(t, func() {
		sh.runSQL(`UPDATE Emp SET Salary = 2000 WHERE EName = 'a';`)
	})
	if !strings.Contains(out, "maintained") {
		t.Errorf("maintained DML output:\n%s", out)
	}
	out = captureStdout(t, func() {
		sh.meta(".view ProblemDept")
	})
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("view output should show the violation:\n%s", out)
	}
	out = captureStdout(t, func() {
		sh.meta(".io")
	})
	if !strings.Contains(out, "total=") {
		t.Errorf("io output:\n%s", out)
	}
}

func TestShellMetaEdgeCases(t *testing.T) {
	sh := shellSession(t, "")
	if !sh.meta(".explain") { // no system yet: message, keep running
		t.Error(".explain should not quit")
	}
	if !sh.meta(".unknown") {
		t.Error("unknown meta should not quit")
	}
	if sh.meta(".quit") {
		t.Error(".quit should return false")
	}
	if !sh.meta(".build") { // missing args: usage, keep running
		t.Error(".build usage should not quit")
	}
	if !sh.meta("\\checkpoint") { // not durable: message, keep running
		t.Error(".checkpoint should not quit")
	}
	out := captureStdout(t, func() { sh.meta(".recover") })
	if !strings.Contains(out, "no WAL directory") {
		t.Errorf(".recover without -waldir:\n%s", out)
	}
}

// TestShellDurableSession drives the durable shell round trip: .build
// attaches the WAL, maintained DML reports its LSN, \checkpoint
// persists, and a second session .recovers the full system (catalog
// from the recorded DDL, state from the checkpoint + log tail).
func TestShellDurableSession(t *testing.T) {
	dir := t.TempDir()
	sh := shellSession(t, dir)
	out := captureStdout(t, func() { sh.meta(".build ProblemDept") })
	if sh.mgr == nil || !strings.Contains(out, "durability attached") {
		t.Fatalf("durable build output:\n%s", out)
	}
	out = captureStdout(t, func() {
		sh.runSQL(`UPDATE Emp SET Salary = 150 WHERE EName = 'a';`)
	})
	if !strings.Contains(out, "durable at LSN 1") {
		t.Fatalf("maintained DML should report its LSN:\n%s", out)
	}
	out = captureStdout(t, func() { sh.meta("\\checkpoint") })
	if !strings.Contains(out, "checkpoint written at LSN 1") {
		t.Fatalf("checkpoint output:\n%s", out)
	}
	sh.runSQL(`INSERT INTO Emp VALUES ('d', 'd1', 50);`) // log tail past the checkpoint
	if err := sh.mgr.Close(); err != nil {
		t.Fatal(err)
	}

	sh2 := &shell{db: mvmaint.Open(), waldir: dir}
	out = captureStdout(t, func() { sh2.meta(".recover") })
	if !strings.Contains(out, "recovered to LSN 2") || !strings.Contains(out, "0 views recomputed") {
		t.Fatalf("recover output:\n%s", out)
	}
	defer sh2.mgr.Close()
	out = captureStdout(t, func() {
		sh2.runSQL(`SELECT Salary FROM Emp WHERE EName = 'a';`)
	})
	if !strings.Contains(out, "150") {
		t.Fatalf("recovered state lost the update:\n%s", out)
	}
	// A rebuilt session pointed at the same directory must refuse to
	// attach over the existing state.
	sh3 := shellSession(t, dir)
	out = captureStdout(t, func() { sh3.meta(".build ProblemDept") })
	if !strings.Contains(out, "already holds durable state") {
		t.Fatalf("attach over existing state should be refused:\n%s", out)
	}
	if sh3.mgr != nil {
		t.Fatal("attach should not have armed a manager")
	}
}
