// Command mvbench regenerates the paper's tables and figures as text.
//
// Usage:
//
//	mvbench            # everything
//	mvbench -table 4   # one §3.6 table (1..4)
//	mvbench -figure 3  # one figure (1, 2, 3, 5)
//	mvbench -measured    # estimated-vs-measured parity run
//	mvbench -sweeps      # the ablation sweeps recorded in EXPERIMENTS.md
//	mvbench -parallel    # parallel branch-and-bound vs exhaustive search
//	                     # (tune with -j workers and -seed n)
//	mvbench -throughput  # batched maintenance throughput grid, with
//	                     # apply-latency p50/p99 from the maintain.apply.ns
//	                     # histogram (-j pins the worker count; default
//	                     # measures 1 and 4)
//	mvbench -shards      # sharded maintenance scaling sweep at batch 64
//	                     # (shard counts 1, 2, 4, 8; -j pins per-shard
//	                     # workers)
//	mvbench -durable     # durable (write-ahead-logged) throughput next to
//	                     # the in-memory baseline, plus recovery timings;
//	                     # -waldir picks the log directory (default: a
//	                     # temporary directory, removed afterwards)
//	mvbench -swarm       # client-swarm serving benchmark: a paced writer
//	                     # (batch 64, -rate windows/s for -duration) while
//	                     # -clients readers poll snapshots every -poll and
//	                     # -sse of them hold SSE changefeeds; reports the
//	                     # writer's throughput against its own no-reader
//	                     # baseline and the client-side read p99
//
// -j sets worker counts everywhere (alias: -workers). -cpuprofile and
// -memprofile write pprof profiles of whatever modes were run.
//
// Observability: -metrics dumps the global metrics snapshot as JSON to
// stderr when the run finishes (-metrics-out FILE writes it to a file
// instead), and -http ADDR serves /metrics, /spans, /spans/summary and
// /debug/pprof while the process runs, then blocks so the endpoints stay
// inspectable (Ctrl-C to exit).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/paper"
)

func main() {
	log.SetFlags(0)
	table := flag.Int("table", 0, "print one §3.6 table (1..4)")
	figure := flag.Int("figure", 0, "print one figure (1, 2, 3, 5)")
	measured := flag.Bool("measured", false, "run the measured-parity experiment")
	sweeps := flag.Bool("sweeps", false, "run the ablation sweeps")
	parallel := flag.Bool("parallel", false, "compare parallel branch-and-bound vs exhaustive")
	throughput := flag.Bool("throughput", false, "measure batched maintenance throughput")
	shards := flag.Bool("shards", false, "measure sharded maintenance scaling (shard counts 1, 2, 4, 8)")
	durable := flag.Bool("durable", false, "measure WAL-attached throughput and recovery")
	waldir := flag.String("waldir", "", "directory for -durable WAL state; must not hold prior state (default: fresh temp dir)")
	swarm := flag.Bool("swarm", false, "client-swarm serving benchmark: paced writer under concurrent snapshot readers and SSE subscribers")
	clients := flag.Int("clients", 10000, "concurrent read clients for -swarm")
	sseFrac := flag.Float64("sse", 0.05, "fraction of -swarm clients holding SSE changefeeds")
	rate := flag.Float64("rate", 15, "offered writer load for -swarm, windows/second (the Figure 5 workload gets costlier per window as the stream grows — pick a rate the host sustains at end-of-stream, or the ratio measures saturation, not serving overhead)")
	poll := flag.Duration("poll", 5*time.Second, "mean poll interval per -swarm read client (jittered)")
	duration := flag.Duration("duration", 15*time.Second, "target writer runtime for -swarm (sets the transaction count)")
	var workers int
	flag.IntVar(&workers, "j", 0, "worker count for -parallel and -throughput (0 = default)")
	flag.IntVar(&workers, "workers", 0, "alias for -j")
	seed := flag.Int64("seed", 0, "chunk-order seed for -parallel (result is seed-independent)")
	dot := flag.Bool("dot", false, "emit the ProblemDept expression DAG as Graphviz DOT")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	metrics := flag.Bool("metrics", false, "dump the metrics snapshot as JSON to stderr on exit")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot JSON to this file on exit (implies -metrics)")
	httpAddr := flag.String("http", "", "serve /metrics, /spans and /debug/pprof on this address (e.g. :8080) and block after the run")
	flag.Parse()

	if *httpAddr != "" {
		addr, err := obs.Serve(*httpAddr, obs.Default, obs.Trace)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("metrics: serving http://%s/metrics (also /spans, /spans/summary, /debug/pprof)", addr)
	}
	defer func() {
		if *metrics || *metricsOut != "" {
			dumpMetrics(*metricsOut)
		}
		if *httpAddr != "" {
			log.Printf("metrics: run complete; endpoints stay up until interrupted")
			select {}
		}
	}()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	all := *table == 0 && *figure == 0 && !*measured && !*sweeps && !*parallel && !*throughput && !*shards && !*durable && !*swarm && !*dot

	var f *paper.Fixture
	needFixture := all || *table > 0 || *figure == 1 || *figure == 2 || *dot
	if needFixture {
		var err error
		f, err = paper.NewFixture(corpus.PaperConfig())
		if err != nil {
			log.Fatal(err)
		}
	}

	emit := func(s string) { fmt.Println(s) }

	if all || *table == 1 {
		emit(f.Table1())
	}
	if all || *table == 2 {
		emit(f.Table2())
	}
	if all || *table == 3 {
		emit(f.Table3())
	}
	if all || *table == 4 {
		emit(f.Table4())
	}
	if *dot {
		fmt.Print(f.D.RenderDOT(map[int]bool{f.D.Root.ID: true, f.N3.ID: true}))
	}
	if all || *figure == 1 {
		emit(f.Figure1())
	}
	if all || *figure == 2 {
		emit(f.Figure2())
	}
	if all || *figure == 3 {
		out, err := paper.Figure3(corpus.PaperConfig())
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if all || *figure == 5 {
		_, out, err := paper.Figure5(corpus.DefaultFigure5Config())
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if all {
		res, err := f.Optimum()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Algorithm OptimalViewSet: chose %s at %.4g page I/Os per transaction (explored %d sets)\n\n",
			res.Best.Set.Key(), res.Best.Weighted, res.Explored)
	}
	if all || *measured {
		_, out, err := paper.MeasuredParity(corpus.PaperConfig())
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if all || *parallel {
		out, err := paper.ParallelSearch(corpus.DefaultFigure5Config(), workers, *seed)
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if all || *throughput {
		ws := []int{1, 4}
		if workers > 0 {
			ws = []int{workers}
		}
		_, out, err := paper.ThroughputTable(corpus.DefaultFigure5Config(), 512, []int{1, 16, 64}, ws)
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if all || *shards {
		w := workers
		if w <= 0 {
			w = 1
		}
		_, out, err := paper.ShardedThroughputTable(corpus.DefaultFigure5Config(), 512, 64, w, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if all || *durable {
		dir := *waldir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "mvbench-wal-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		w := workers
		if w <= 0 {
			w = 1
		}
		_, out, err := paper.DurableThroughputTable(corpus.DefaultFigure5Config(), 512, []int{1, 16, 64}, w, dir)
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if *swarm {
		w := workers
		if w <= 0 {
			w = 1
		}
		batch := 64
		txns := int(*rate*duration.Seconds()) * batch
		_, out, err := paper.ServingTable(corpus.DefaultFigure5Config(), paper.SwarmOptions{
			Txns: txns, Batch: batch, Workers: w,
			Clients: *clients, SSEFraction: *sseFrac,
			WindowRate: *rate, PollInterval: *poll,
		})
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if all || *sweeps {
		_, out, err := paper.SweepFanout(1000, []int{1, 2, 5, 10, 20, 50, 100})
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
		_, out, err = paper.SweepWeights(corpus.PaperConfig(), []float64{0.01, 0.1, 1, 10, 100})
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
		_, out, err = paper.SweepOptimizers([]int{2, 3, 4, 5})
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
		_, out, err = paper.SweepBuffer(corpus.PaperConfig(), []int{0, 64, 512, 4096, 32768}, 400)
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
		_, out, err = paper.SweepBatch(corpus.Config{Departments: 1000, EmpsPerDept: 200}, []int{1, 2, 5, 10, 50, 200})
		if err != nil {
			log.Fatal(err)
		}
		emit(out)
	}
	if !all && *table == 0 && *figure == 0 && !*measured && !*sweeps && !*parallel && !*throughput && !*shards && !*durable && !*swarm && !*dot {
		flag.Usage()
		os.Exit(2)
	}
}

// dumpMetrics writes the global registry snapshot (and the span
// self-time summary, to stderr only) when the run finishes. An empty
// path means stderr.
func dumpMetrics(path string) {
	data := obs.SnapshotJSON(obs.Default)
	if path == "" {
		fmt.Fprintln(os.Stderr, string(data))
		fmt.Fprint(os.Stderr, obs.Trace.SummaryTable())
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Printf("metrics: %v", err)
		return
	}
	log.Printf("metrics: snapshot written to %s", path)
}
