package mvmaint

import (
	"fmt"
	"sync"

	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ServeOptions configures System.NewServing.
type ServeOptions struct {
	// FeedDir, when non-empty, persists the changefeed journal there so
	// SSE subscribers can resume across server restarts. Empty keeps
	// the feed in memory only (live subscriptions still work; resume
	// replays nothing).
	FeedDir string
	// FS overrides the feed log's filesystem (default the OS).
	FS wal.FS
	// Retain bounds each view's epoch retention ring (default 64).
	Retain int
	// SubscriberBuffer is the per-SSE-subscriber ring size (default 256).
	SubscriberBuffer int
}

// Serving is a System's network surface: the snapshot/changefeed hub
// wired to the maintainer's window hook, and the HTTP server over it.
type Serving struct {
	Hub    *server.Hub
	Server *server.Server
	sys    *System

	// execMu serializes POST /txn statements into the single-writer
	// maintenance pipeline.
	execMu sync.Mutex
}

// NewServing builds the serving stack for a System: every declared
// non-assertion view becomes a served view (snapshot epochs + SSE
// changefeed), POST /txn feeds the maintained execution path, and the
// obs handlers are mounted. It installs the maintainer's window hook;
// call Close to detach it.
//
// Call NewServing while the system is quiescent (no concurrent
// Execute): the hub seeds its epoch-0 snapshots from view storage,
// which has no read locks.
func (s *System) NewServing(opts ServeOptions) (*Serving, error) {
	var feed *wal.FeedLog
	if opts.FeedDir != "" {
		fsys := opts.FS
		if fsys == nil {
			fsys = wal.OSFS{}
		}
		var err error
		feed, err = wal.OpenFeedLog(fsys, opts.FeedDir, wal.Options{})
		if err != nil {
			return nil, err
		}
	}
	var sources []server.ViewSource
	for id, name := range s.names {
		if s.DB.IsAssertion(name) {
			continue
		}
		for _, e := range s.DAG.Roots {
			if e.ID != id {
				continue
			}
			rel, ok := s.M.ViewRel(e)
			if !ok {
				return nil, fmt.Errorf("mvmaint: view %q is not materialized", name)
			}
			sources = append(sources, server.ViewSource{
				Name:   name,
				Schema: rel.Def.Schema,
				EqID:   e.ID,
				Rel:    rel,
			})
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("mvmaint: no non-assertion views to serve")
	}
	hub, err := server.NewHub(server.HubConfig{
		Views:            sources,
		Feed:             feed,
		Retain:           opts.Retain,
		SubscriberBuffer: opts.SubscriberBuffer,
	})
	if err != nil {
		if feed != nil {
			feed.Close()
		}
		return nil, err
	}
	sv := &Serving{Hub: hub, sys: s}
	s.M.SetWindowHook(hub.OnWindow)
	sv.Server = server.New(server.Config{
		Hub:  hub,
		Exec: sv.execStatement,
		Obs:  obs.Handler(nil, nil),
	})
	return sv, nil
}

// execStatement runs one DML statement through the maintained path,
// serialized: the pipeline is single-writer, and HTTP handlers are not.
func (sv *Serving) execStatement(stmt string) (server.ExecResult, error) {
	sv.execMu.Lock()
	defer sv.execMu.Unlock()
	out, err := sv.sys.Execute(stmt)
	if err != nil {
		return server.ExecResult{}, err
	}
	res := server.ExecResult{RolledBack: out.RolledBack}
	if out.Report != nil {
		res.LSN = out.Report.LSN
	}
	for _, v := range out.Violations {
		res.Violations = append(res.Violations, v.String())
	}
	return res, nil
}

// ExecuteTxn runs a pre-built transaction through the maintained path
// under the serving lock — the programmatic sibling of POST /txn for
// in-process writers (benchmarks, the shell) that share a Serving with
// HTTP traffic.
func (sv *Serving) ExecuteTxn(t *txn.Type, updates map[string]*delta.Delta) (*maintain.Report, error) {
	sv.execMu.Lock()
	defer sv.execMu.Unlock()
	out, err := sv.sys.ExecuteTxn(t, updates)
	if err != nil {
		return nil, err
	}
	return out.Report, nil
}

// Close detaches the window hook and shuts the hub (and feed log) down.
func (sv *Serving) Close() error {
	sv.sys.M.SetWindowHook(nil)
	return sv.Hub.Close()
}
