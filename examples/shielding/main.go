// Shielding: the paper's Figure 5 and Section 4.2 through the public API.
//
// Revenue per item over R ⋈ S ⋈ T, where the aggregate multiplies columns
// from both sides of a join (so it cannot be pushed below T) and Item is
// not a key of R (so it cannot be pushed past R either). The aggregate's
// equivalence node is therefore an articulation node of the expression
// DAG, and the Shielded optimizer finds the exhaustive optimum while
// costing fewer view sets.
//
// Run: go run ./examples/shielding
package main

import (
	"fmt"
	"log"
	"strings"

	mvmaint "repro"
	"repro/internal/txn"
)

func main() {
	log.SetFlags(0)
	db := mvmaint.Open()
	db.MustExec(`
CREATE TABLE R (RName VARCHAR(20) PRIMARY KEY, Item VARCHAR(20));
CREATE TABLE S (SName VARCHAR(20) PRIMARY KEY, Item VARCHAR(20), Quantity INT);
CREATE TABLE T (Item VARCHAR(20) PRIMARY KEY, Price INT);
CREATE INDEX r_item ON R (Item);
CREATE INDEX s_item ON S (Item);
CREATE INDEX t_item ON T (Item);
`)
	var b strings.Builder
	for i := 0; i < 60; i++ {
		item := fmt.Sprintf("item%02d", i)
		fmt.Fprintf(&b, "INSERT INTO T VALUES ('%s', %d);\n", item, 10+i%7)
		for j := 0; j < 3; j++ {
			fmt.Fprintf(&b, "INSERT INTO R VALUES ('r%02d_%d', '%s');\n", i, j, item)
			fmt.Fprintf(&b, "INSERT INTO S VALUES ('s%02d_%d', '%s', %d);\n", i, j, item, 1+(i+j)%5)
		}
	}
	db.MustExec(b.String())

	// Figure 5's view, with an assertion-style threshold on top.
	db.MustExec(`
CREATE VIEW Revenue (Item, Total) AS
SELECT T.Item, SUM(Quantity * Price)
FROM R, S, T
WHERE R.Item = S.Item AND S.Item = T.Item
GROUP BY T.Item;
`)

	workload := []*txn.Type{
		{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "S", Kind: txn.Insert, Size: 1}}},
		{Name: ">R", Weight: 0.5, Updates: []txn.RelUpdate{
			{Rel: "R", Kind: txn.Modify, Size: 1, Cols: []string{"RName"}}}},
	}

	for _, method := range []mvmaint.Method{mvmaint.Exhaustive, mvmaint.Shielded} {
		sys, err := db.Build([]string{"Revenue"}, mvmaint.Config{
			Workload: workload,
			Method:   method,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s explored %3d view sets, optimum %.4g page I/Os per txn, chose %s\n",
			method, sys.Decision.Explored, sys.Decision.Best.Weighted, sys.Decision.Best.Set.Key())
		if method == mvmaint.Shielded {
			fmt.Println("\nThe aggregate's equivalence node shields its join subtree:")
			fmt.Println("its local optimum combines with the rest (Theorem 4.1), so the")
			fmt.Println("shielded search costs fewer sets and finds the same answer.")
			out, err := sys.Execute(`UPDATE T SET Price = 99 WHERE Item = 'item07'`)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nmaintained a price change in %d page I/Os\n", out.Report.PaperTotal())
		}
	}
}
