// Assertions: SQL-92 integrity constraint checking as view maintenance.
//
// The paper's DeptConstraint ("a department's expense should not exceed
// its budget") is declared with CREATE ASSERTION ... CHECK (NOT EXISTS
// ...). The system maintains the constraint's view incrementally — made
// cheap by the auxiliary SumOfSals view the optimizer picks — and rolls
// back any transaction that would violate it.
//
// Run: go run ./examples/assertions
package main

import (
	"fmt"
	"log"
	"strings"

	mvmaint "repro"
	"repro/internal/txn"
)

func main() {
	log.SetFlags(0)
	db := mvmaint.Open()
	db.MustExec(`
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);
CREATE INDEX emp_ename  ON Emp (EName);
`)
	var b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%02d', 'm%02d', 1000);\n", i, i)
		for j := 0; j < 5; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%02d_%d', 'd%02d', 100);\n", i, j, i)
		}
	}
	db.MustExec(b.String())

	// The paper's view + assertion, verbatim.
	db.MustExec(`
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;

CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept));
`)

	sys, err := db.Build([]string{"DeptConstraint"}, mvmaint.Config{
		Workload: []*txn.Type{
			{Name: ">Emp", Weight: 4, Updates: []txn.RelUpdate{
				{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}},
			{Name: ">Dept", Weight: 1, Updates: []txn.RelUpdate{
				{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}},
			{Name: "+Emp", Weight: 2, Updates: []txn.RelUpdate{
				{Rel: "Emp", Kind: txn.Insert, Size: 1}}},
		},
		Method: mvmaint.Exhaustive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== optimizer decision for the assertion ===")
	fmt.Print(sys.Explain())

	run := func(sql string) {
		out, err := sys.Execute(sql)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if !out.OK() {
			status = out.Violations[0].String()
			if out.RolledBack {
				status += " -> ROLLED BACK"
			}
		}
		fmt.Printf("%-58s %s (%d page I/Os)\n", sql, status, out.Report.PaperTotal())
	}

	fmt.Println("\n=== transactions under the constraint ===")
	run(`UPDATE Emp SET Salary = 150 WHERE EName = 'e07_2'`)   // fine
	run(`INSERT INTO Emp VALUES ('intern', 'd03', 80)`)        // fine
	run(`UPDATE Emp SET Salary = 900 WHERE EName = 'e07_2'`)   // would overspend d07
	run(`UPDATE Dept SET Budget = 400 WHERE DName = 'd11'`)    // budget cut below payroll
	run(`UPDATE Dept SET Budget = 5000 WHERE DName = 'd11'`)   // generous raise: fine
	run(`DELETE FROM Emp WHERE EName = 'e07_2'`)               // fine

	// Because of rollbacks the database still satisfies the constraint.
	res, err := db.Query(`SELECT Dept.DName FROM Emp, Dept
WHERE Dept.DName = Emp.DName GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconstraint verified by recomputation: %d violating departments\n", res.Card())
}
