// Quickstart: the paper's Example 1.1 end to end.
//
// We define the corporate schema and the ProblemDept view in SQL, let the
// optimizer decide which additional views to materialize for the >Emp and
// >Dept transaction workload, and watch the maintenance engine keep
// everything consistent while counting page I/Os.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	mvmaint "repro"
	"repro/internal/txn"
)

func main() {
	log.SetFlags(0)
	db := mvmaint.Open()

	// 1. Schema + indexes, exactly the paper's corporate database.
	db.MustExec(`
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);
CREATE INDEX emp_ename  ON Emp (EName);
`)

	// 2. Data: 100 departments × 10 employees (a 10x-reduced instance of
	//    the paper's 1000×10; the chosen plan is identical).
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%03d', 'mgr%03d', 1500);\n", i, i)
		for j := 0; j < 10; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%03d_%02d', 'd%03d', 100);\n", i, j, i)
		}
	}
	db.MustExec(b.String())

	// 3. The view to maintain (Example 1.1, verbatim SQL).
	db.MustExec(`
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;
`)

	// 4. The workload: salary changes and budget changes, equally likely.
	workload := []*txn.Type{
		{Name: ">Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}},
		{Name: ">Dept", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}},
	}

	// 5. Build: grow the expression DAG, run Algorithm OptimalViewSet,
	//    materialize the chosen views.
	sys, err := db.Build([]string{"ProblemDept"}, mvmaint.Config{
		Workload: workload,
		Method:   mvmaint.Exhaustive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== optimizer decision ===")
	fmt.Print(sys.Explain())
	fmt.Println("\nThe additional view is the paper's SumOfSals: SUM(Salary) per department.")

	// 6. Run transactions and watch the page I/Os.
	fmt.Println("\n=== maintained transactions ===")
	for _, sql := range []string{
		`UPDATE Emp SET Salary = 180 WHERE EName = 'e007_03'`,
		`UPDATE Dept SET Budget = 2500 WHERE DName = 'd042'`,
		`UPDATE Emp SET Salary = 5000 WHERE EName = 'e013_00'`, // overspends d013!
	} {
		out, err := sys.Execute(sql)
		if err != nil {
			log.Fatal(err)
		}
		rep := out.Report
		fmt.Printf("%-55s  %2d page I/Os (query %d + view %d)\n",
			sql, rep.PaperTotal(), rep.QueryIO.Total(), rep.ViewIO.Total())
	}

	rows, err := sys.ViewRows("ProblemDept")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== ProblemDept (maintained incrementally) ===")
	for _, r := range rows {
		fmt.Printf("  %s\n", r.Tuple)
	}
}
