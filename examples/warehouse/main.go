// Warehouse: the paper's Example 3.1 — the maintenance-optimal plan is
// not the query-optimal plan.
//
// ADeptsStatus aggregates salaries for the departments of type A. When
// the workload only inserts into ADepts, the optimizer materializes a V1
// view (departments joined with their salary sums) that never needs
// maintenance: each ADepts insertion becomes a single indexed lookup.
//
// Run: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"strings"

	mvmaint "repro"
	"repro/internal/txn"
)

func main() {
	log.SetFlags(0)
	db := mvmaint.Open()
	db.MustExec(`
CREATE TABLE Dept   (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp    (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE TABLE ADepts (DName VARCHAR(20) PRIMARY KEY);
CREATE INDEX dept_dname   ON Dept (DName);
CREATE INDEX emp_dname    ON Emp (DName);
CREATE INDEX adepts_dname ON ADepts (DName);
`)
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%03d', 'm%03d', 2000);\n", i, i)
		for j := 0; j < 8; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%03d_%d', 'd%03d', 100);\n", i, j, i)
		}
		if i%40 == 0 {
			fmt.Fprintf(&b, "INSERT INTO ADepts VALUES ('d%03d');\n", i)
		}
	}
	db.MustExec(b.String())

	// Example 3.1, verbatim SQL.
	db.MustExec(`
CREATE VIEW ADeptsStatus (DName, Budget, SumSal) AS
SELECT Dept.DName, Budget, SUM(Salary)
FROM Emp, Dept, ADepts
WHERE Dept.DName = Emp.DName AND Emp.DName = ADepts.DName
GROUP BY Dept.DName, Budget;
`)

	// Workload: only ADepts changes (departments get reclassified).
	workload := []*txn.Type{{
		Name: "+ADepts", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "ADepts", Kind: txn.Insert, Size: 1}},
	}}

	// Baseline: maintain ADeptsStatus with no additional views.
	base, err := db.Build([]string{"ADeptsStatus"}, mvmaint.Config{
		Workload: workload,
		Method:   mvmaint.NoAdditional,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no additional views: %.4g page I/Os per ADepts insertion\n",
		base.Decision.Best.Weighted)

	// Optimized: let the optimizer pick (it chooses the V1 shape).
	sys, err := db.Build([]string{"ADeptsStatus"}, mvmaint.Config{
		Workload: workload,
		Method:   mvmaint.Exhaustive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: %.4g page I/Os per ADepts insertion\n", sys.Decision.Best.Weighted)
	for _, v := range sys.AdditionalViews() {
		fmt.Println("  materialized:", v)
	}
	fmt.Println("\nNote: V1 is over Emp and Dept only — since those relations never")
	fmt.Println("change in this workload, V1 itself needs no maintenance (Example 3.1).")

	// Reclassify some departments and watch the maintained view grow.
	fmt.Println("\n=== reclassifications ===")
	for _, d := range []string{"d007", "d013", "d101"} {
		out, err := sys.Execute(fmt.Sprintf("INSERT INTO ADepts VALUES ('%s')", d))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reclassified %s: %d page I/Os\n", d, out.Report.PaperTotal())
	}
	rows, err := sys.ViewRows("ADeptsStatus")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nADeptsStatus now tracks %d departments:\n", len(rows))
	for i, r := range rows {
		if i >= 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", r.Tuple)
	}
}
