// Multiview: maintaining a set of views (the paper's Section 6).
//
// Two views and an assertion share subexpressions; the multi-rooted
// expression DAG represents them in one memo, the optimizer chooses one
// additional view set serving all of them, and shared deltas are computed
// once per transaction.
//
// Run: go run ./examples/multiview
package main

import (
	"fmt"
	"log"
	"strings"

	mvmaint "repro"
	"repro/internal/txn"
)

func main() {
	log.SetFlags(0)
	db := mvmaint.Open()
	db.MustExec(`
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);
CREATE INDEX emp_ename  ON Emp (EName);
`)
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%02d', 'm%02d', 1200);\n", i, i)
		for j := 0; j < 6; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%02d_%d', 'd%02d', 100);\n", i, j, i)
		}
	}
	db.MustExec(b.String())

	// Three top-level definitions over the same subexpressions:
	//   - DeptPayroll: salary totals per department (a reporting view)
	//   - BigSpenders: departments spending over 80% of budget
	//   - DeptConstraint: nobody may exceed the budget (assertion)
	db.MustExec(`
CREATE VIEW DeptPayroll (DName, Total) AS
SELECT Dept.DName, SUM(Salary)
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget;

CREATE VIEW BigSpenders (DName) AS
SELECT Dept.DName
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) * 5 > Budget * 4;

CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;

CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept));
`)

	sys, err := db.Build(
		[]string{"DeptPayroll", "BigSpenders", "DeptConstraint"},
		mvmaint.Config{
			Workload: []*txn.Type{
				{Name: ">Emp", Weight: 3, Updates: []txn.RelUpdate{
					{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}},
				{Name: ">Dept", Weight: 1, Updates: []txn.RelUpdate{
					{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}},
			},
			Method: mvmaint.Greedy, // the multi-rooted DAG is larger; greedy is instant
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== multi-view optimizer decision ===")
	fmt.Print(sys.Explain())

	fmt.Println("\n=== transactions maintaining all three top-level views at once ===")
	for _, sql := range []string{
		`UPDATE Emp SET Salary = 400 WHERE EName = 'e05_0'`, // d05 reaches 75% of budget
		`UPDATE Emp SET Salary = 200 WHERE EName = 'e05_1'`, // ... now 83%: a BigSpender
		`UPDATE Emp SET Salary = 2000 WHERE EName = 'e09_0'`, // would violate: rolled back
	} {
		out, err := sys.Execute(sql)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if out.RolledBack {
			status = "ROLLED BACK"
		}
		fmt.Printf("%-55s %s (%d page I/Os)\n", sql, status, out.Report.PaperTotal())
	}

	spenders, err := sys.ViewRows("BigSpenders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBigSpenders: %d department(s)\n", len(spenders))
	for _, r := range spenders {
		fmt.Printf("  %s\n", r.Tuple)
	}
	payroll, err := sys.ViewRows("DeptPayroll")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DeptPayroll tracks %d departments (all maintained in one pass)\n", len(payroll))
}
