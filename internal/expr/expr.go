// Package expr implements the scalar expression language used in
// selection predicates, join conditions, HAVING clauses and computed
// columns: column references, literals, arithmetic, comparisons and
// boolean connectives.
//
// Expressions are immutable trees. Canonical String() forms double as
// identity for the expression-DAG memo.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/value"
)

// Expr is a scalar expression evaluable against a tuple under a schema.
type Expr interface {
	// Eval evaluates the expression against tuple t positioned by schema s.
	Eval(s *catalog.Schema, t value.Tuple) value.Value
	// Compile resolves column positions once and returns a fast evaluator.
	Compile(s *catalog.Schema) (func(value.Tuple) value.Value, error)
	// Columns appends the qualified names of all referenced columns.
	Columns(dst []string) []string
	// String returns the canonical rendering.
	String() string
}

// Col is a column reference by (possibly qualified) name.
type Col struct{ Name string }

// C is shorthand for a column reference.
func C(name string) Col { return Col{Name: name} }

// Eval implements Expr.
func (c Col) Eval(s *catalog.Schema, t value.Tuple) value.Value {
	i, err := s.Resolve(c.Name)
	if err != nil {
		return value.NewNull()
	}
	return t[i]
}

// Compile implements Expr.
func (c Col) Compile(s *catalog.Schema) (func(value.Tuple) value.Value, error) {
	i, err := s.Resolve(c.Name)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) value.Value { return t[i] }, nil
}

// Columns implements Expr.
func (c Col) Columns(dst []string) []string { return append(dst, c.Name) }

// String implements Expr.
func (c Col) String() string { return c.Name }

// Lit is a literal constant.
type Lit struct{ V value.Value }

// IntLit returns an integer literal.
func IntLit(i int64) Lit { return Lit{V: value.NewInt(i)} }

// FloatLit returns a float literal.
func FloatLit(f float64) Lit { return Lit{V: value.NewFloat(f)} }

// StrLit returns a string literal.
func StrLit(s string) Lit { return Lit{V: value.NewString(s)} }

// Eval implements Expr.
func (l Lit) Eval(*catalog.Schema, value.Tuple) value.Value { return l.V }

// Compile implements Expr.
func (l Lit) Compile(*catalog.Schema) (func(value.Tuple) value.Value, error) {
	v := l.V
	return func(value.Tuple) value.Value { return v }, nil
}

// Columns implements Expr.
func (l Lit) Columns(dst []string) []string { return dst }

// String implements Expr.
func (l Lit) String() string { return l.V.String() }

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators.
const (
	EQ CmpOp = "="
	NE CmpOp = "<>"
	LT CmpOp = "<"
	LE CmpOp = "<="
	GT CmpOp = ">"
	GE CmpOp = ">="
)

// Cmp is a binary comparison.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Compare builds a comparison expression.
func Compare(op CmpOp, l, r Expr) Cmp { return Cmp{Op: op, L: l, R: r} }

// Eval implements Expr. Comparisons involving NULL yield NULL (which is
// falsy in predicate position).
func (c Cmp) Eval(s *catalog.Schema, t value.Tuple) value.Value {
	return cmpValues(c.Op, c.L.Eval(s, t), c.R.Eval(s, t))
}

// Compile implements Expr.
func (c Cmp) Compile(s *catalog.Schema) (func(value.Tuple) value.Value, error) {
	lf, err := c.L.Compile(s)
	if err != nil {
		return nil, err
	}
	rf, err := c.R.Compile(s)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(t value.Tuple) value.Value { return cmpValues(op, lf(t), rf(t)) }, nil
}

func cmpValues(op CmpOp, a, b value.Value) value.Value {
	if a.IsNull() || b.IsNull() {
		return value.NewNull()
	}
	r := value.Compare(a, b)
	var ok bool
	switch op {
	case EQ:
		ok = r == 0
	case NE:
		ok = r != 0
	case LT:
		ok = r < 0
	case LE:
		ok = r <= 0
	case GT:
		ok = r > 0
	case GE:
		ok = r >= 0
	}
	return value.NewBool(ok)
}

// Columns implements Expr.
func (c Cmp) Columns(dst []string) []string { return c.R.Columns(c.L.Columns(dst)) }

// String implements Expr.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// ArithOp is an arithmetic operator.
type ArithOp byte

// Arithmetic operators.
const (
	Plus  ArithOp = '+'
	Minus ArithOp = '-'
	Times ArithOp = '*'
	Over  ArithOp = '/'
)

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(s *catalog.Schema, t value.Tuple) value.Value {
	return arithValues(a.Op, a.L.Eval(s, t), a.R.Eval(s, t))
}

// Compile implements Expr.
func (a Arith) Compile(s *catalog.Schema) (func(value.Tuple) value.Value, error) {
	lf, err := a.L.Compile(s)
	if err != nil {
		return nil, err
	}
	rf, err := a.R.Compile(s)
	if err != nil {
		return nil, err
	}
	op := a.Op
	return func(t value.Tuple) value.Value { return arithValues(op, lf(t), rf(t)) }, nil
}

func arithValues(op ArithOp, l, r value.Value) value.Value {
	switch op {
	case Plus:
		return value.Add(l, r)
	case Minus:
		return value.Sub(l, r)
	case Times:
		return value.Mul(l, r)
	case Over:
		return value.Div(l, r)
	default:
		return value.NewNull()
	}
}

// Columns implements Expr.
func (a Arith) Columns(dst []string) []string { return a.R.Columns(a.L.Columns(dst)) }

// String implements Expr.
func (a Arith) String() string {
	return fmt.Sprintf("(%s %c %s)", a.L, a.Op, a.R)
}

// And is an n-ary conjunction.
type And struct{ Terms []Expr }

// AndOf builds a conjunction, flattening nested Ands; 0 terms means TRUE,
// 1 term returns the term itself.
func AndOf(terms ...Expr) Expr {
	flat := make([]Expr, 0, len(terms))
	for _, t := range terms {
		if a, ok := t.(And); ok {
			flat = append(flat, a.Terms...)
		} else if t != nil {
			flat = append(flat, t)
		}
	}
	switch len(flat) {
	case 0:
		return Lit{V: value.NewBool(true)}
	case 1:
		return flat[0]
	default:
		return And{Terms: flat}
	}
}

// Eval implements Expr.
func (a And) Eval(s *catalog.Schema, t value.Tuple) value.Value {
	for _, term := range a.Terms {
		if !term.Eval(s, t).Truth() {
			return value.NewBool(false)
		}
	}
	return value.NewBool(true)
}

// Compile implements Expr.
func (a And) Compile(s *catalog.Schema) (func(value.Tuple) value.Value, error) {
	fs := make([]func(value.Tuple) value.Value, len(a.Terms))
	for i, term := range a.Terms {
		f, err := term.Compile(s)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(t value.Tuple) value.Value {
		for _, f := range fs {
			if !f(t).Truth() {
				return value.NewBool(false)
			}
		}
		return value.NewBool(true)
	}, nil
}

// Columns implements Expr.
func (a And) Columns(dst []string) []string {
	for _, t := range a.Terms {
		dst = t.Columns(dst)
	}
	return dst
}

// String implements Expr. Terms render sorted so logically identical
// conjunctions canonicalize identically.
func (a And) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	sort.Strings(parts)
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is a binary disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o Or) Eval(s *catalog.Schema, t value.Tuple) value.Value {
	if o.L.Eval(s, t).Truth() || o.R.Eval(s, t).Truth() {
		return value.NewBool(true)
	}
	return value.NewBool(false)
}

// Compile implements Expr.
func (o Or) Compile(s *catalog.Schema) (func(value.Tuple) value.Value, error) {
	lf, err := o.L.Compile(s)
	if err != nil {
		return nil, err
	}
	rf, err := o.R.Compile(s)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) value.Value {
		return value.NewBool(lf(t).Truth() || rf(t).Truth())
	}, nil
}

// Columns implements Expr.
func (o Or) Columns(dst []string) []string { return o.R.Columns(o.L.Columns(dst)) }

// String implements Expr.
func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is logical negation.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(s *catalog.Schema, t value.Tuple) value.Value {
	return value.NewBool(!n.E.Eval(s, t).Truth())
}

// Compile implements Expr.
func (n Not) Compile(s *catalog.Schema) (func(value.Tuple) value.Value, error) {
	f, err := n.E.Compile(s)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) value.Value { return value.NewBool(!f(t).Truth()) }, nil
}

// Columns implements Expr.
func (n Not) Columns(dst []string) []string { return n.E.Columns(dst) }

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// Conjuncts splits e into its top-level AND terms.
func Conjuncts(e Expr) []Expr {
	if a, ok := e.(And); ok {
		out := make([]Expr, 0, len(a.Terms))
		for _, t := range a.Terms {
			out = append(out, Conjuncts(t)...)
		}
		return out
	}
	return []Expr{e}
}

// ColumnsOf returns the deduplicated, sorted qualified column names
// referenced by e.
func ColumnsOf(e Expr) []string {
	cols := e.Columns(nil)
	seen := map[string]bool{}
	out := cols[:0]
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// RefersOnly reports whether every column e references resolves in s.
func RefersOnly(e Expr, s *catalog.Schema) bool {
	for _, c := range e.Columns(nil) {
		if !s.Has(c) {
			return false
		}
	}
	return true
}
