package expr

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/value"
)

// Prog is an expression compiled to a flat postfix program over resolved
// column offsets. It replaces the closure chains produced by Compile on
// the maintenance hot path: one instruction array walked with a reused
// value stack, no per-node dynamic calls, no captured environments for
// the GC to scan. Short-circuit AND/OR compile to conditional jumps, so
// evaluation order and truthiness semantics match Eval/Compile exactly.
//
// A Prog reuses its evaluation stack across calls and is therefore not
// safe for concurrent use; compile one per goroutine (track plans are
// per-maintainer, which already satisfies this).
type Prog struct {
	code   []instr
	consts []value.Value
	cmps   []CmpOp
	stack  []value.Value
}

type opcode uint8

const (
	opCol      opcode = iota // push t[a]
	opConst                  // push consts[a]
	opCmp                    // pop r,l; push cmpValues(cmps[a], l, r)
	opArith                  // pop r,l; push arithValues(ArithOp(a), l, r)
	opNot                    // pop v; push !v.Truth()
	opJmpFalse               // pop v; if !v.Truth() jump to a
	opJmpTrue                // pop v; if v.Truth() jump to a
	opJmp                    // jump to a
)

type instr struct {
	op opcode
	a  int32
}

// CompileProg compiles e against schema s. It returns an error when a
// column fails to resolve or e contains a node kind it does not know;
// callers fall back to Compile's closures in the latter case.
func CompileProg(e Expr, s *catalog.Schema) (*Prog, error) {
	p := &Prog{}
	if err := p.compile(e, s); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Prog) emit(op opcode, a int32) int {
	p.code = append(p.code, instr{op: op, a: a})
	return len(p.code) - 1
}

func (p *Prog) patch(at int) { p.code[at].a = int32(len(p.code)) }

func (p *Prog) pushConst(v value.Value) {
	p.consts = append(p.consts, v)
	p.emit(opConst, int32(len(p.consts)-1))
}

func (p *Prog) compile(e Expr, s *catalog.Schema) error {
	switch v := e.(type) {
	case Col:
		i, err := s.Resolve(v.Name)
		if err != nil {
			return err
		}
		p.emit(opCol, int32(i))
	case Lit:
		p.pushConst(v.V)
	case Cmp:
		if err := p.compile(v.L, s); err != nil {
			return err
		}
		if err := p.compile(v.R, s); err != nil {
			return err
		}
		p.cmps = append(p.cmps, v.Op)
		p.emit(opCmp, int32(len(p.cmps)-1))
	case Arith:
		if err := p.compile(v.L, s); err != nil {
			return err
		}
		if err := p.compile(v.R, s); err != nil {
			return err
		}
		p.emit(opArith, int32(v.Op))
	case And:
		// term1; jmpFalse F; term2; jmpFalse F; ...; push true; jmp E;
		// F: push false; E:
		var falses []int
		for _, term := range v.Terms {
			if err := p.compile(term, s); err != nil {
				return err
			}
			falses = append(falses, p.emit(opJmpFalse, 0))
		}
		p.pushConst(value.NewBool(true))
		end := p.emit(opJmp, 0)
		for _, at := range falses {
			p.patch(at)
		}
		p.pushConst(value.NewBool(false))
		p.patch(end)
	case Or:
		// l; jmpTrue T; r; jmpTrue T; push false; jmp E; T: push true; E:
		if err := p.compile(v.L, s); err != nil {
			return err
		}
		t1 := p.emit(opJmpTrue, 0)
		if err := p.compile(v.R, s); err != nil {
			return err
		}
		t2 := p.emit(opJmpTrue, 0)
		p.pushConst(value.NewBool(false))
		end := p.emit(opJmp, 0)
		p.patch(t1)
		p.patch(t2)
		p.pushConst(value.NewBool(true))
		p.patch(end)
	case Not:
		if err := p.compile(v.E, s); err != nil {
			return err
		}
		p.emit(opNot, 0)
	default:
		return fmt.Errorf("expr: no flat compilation for %T", e)
	}
	return nil
}

// Eval runs the program against t.
func (p *Prog) Eval(t value.Tuple) value.Value {
	st := p.stack[:0]
	code := p.code
	for pc := 0; pc < len(code); pc++ {
		in := code[pc]
		switch in.op {
		case opCol:
			st = append(st, t[in.a])
		case opConst:
			st = append(st, p.consts[in.a])
		case opCmp:
			r := st[len(st)-1]
			st = st[:len(st)-1]
			st[len(st)-1] = cmpValues(p.cmps[in.a], st[len(st)-1], r)
		case opArith:
			r := st[len(st)-1]
			st = st[:len(st)-1]
			st[len(st)-1] = arithValues(ArithOp(in.a), st[len(st)-1], r)
		case opNot:
			st[len(st)-1] = value.NewBool(!st[len(st)-1].Truth())
		case opJmpFalse:
			v := st[len(st)-1]
			st = st[:len(st)-1]
			if !v.Truth() {
				pc = int(in.a) - 1
			}
		case opJmpTrue:
			v := st[len(st)-1]
			st = st[:len(st)-1]
			if v.Truth() {
				pc = int(in.a) - 1
			}
		case opJmp:
			pc = int(in.a) - 1
		}
	}
	p.stack = st
	return st[len(st)-1]
}

// Truth evaluates the program in predicate position.
func (p *Prog) Truth(t value.Tuple) bool { return p.Eval(t).Truth() }

// CompileFast resolves e to the fastest available evaluator: the flat
// program when every node kind is supported, otherwise Compile's
// closure chain. A CompileProg failure falls through to Compile, whose
// error paths are authoritative (an unresolvable column fails both
// ways, an unknown node kind only the former).
func CompileFast(e Expr, s *catalog.Schema) (func(value.Tuple) value.Value, error) {
	if p, err := CompileProg(e, s); err == nil {
		return p.Eval, nil
	}
	return e.Compile(s)
}
