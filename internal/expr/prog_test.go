package expr

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

func progSchema() *catalog.Schema {
	return &catalog.Schema{Cols: []catalog.Column{
		{Name: "A", Type: value.Int},
		{Name: "B", Type: value.Int},
		{Name: "C", Type: value.Float},
		{Name: "D", Type: value.String},
		{Name: "E", Type: value.Bool},
	}}
}

// randExpr builds a random expression over the test schema, including
// NULL-producing comparisons, nested boolean structure and arithmetic.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return C([]string{"A", "B", "C", "D", "E"}[rng.Intn(5)])
		case 1:
			return IntLit(int64(rng.Intn(7) - 3))
		case 2:
			return FloatLit(float64(rng.Intn(5)) / 2)
		default:
			return StrLit([]string{"x", "y", ""}[rng.Intn(3)])
		}
	}
	switch rng.Intn(6) {
	case 0:
		ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
		return Compare(ops[rng.Intn(len(ops))], randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 1:
		ops := []ArithOp{Plus, Minus, Times, Over}
		return Arith{Op: ops[rng.Intn(len(ops))], L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 2:
		n := 1 + rng.Intn(3)
		terms := make([]Expr, n)
		for i := range terms {
			terms[i] = randExpr(rng, depth-1)
		}
		return And{Terms: terms}
	case 3:
		return Or{L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 4:
		return Not{E: randExpr(rng, depth-1)}
	default:
		return randExpr(rng, 0)
	}
}

func randTuple(rng *rand.Rand) value.Tuple {
	pick := func() value.Value {
		switch rng.Intn(5) {
		case 0:
			return value.NewInt(int64(rng.Intn(9) - 4))
		case 1:
			return value.NewFloat(float64(rng.Intn(9)) / 2)
		case 2:
			return value.NewString([]string{"x", "y", ""}[rng.Intn(3)])
		case 3:
			return value.NewBool(rng.Intn(2) == 0)
		default:
			return value.NewNull()
		}
	}
	return value.Tuple{pick(), pick(), pick(), pick(), pick()}
}

// TestProgDifferential pits the flat program against both Eval and the
// closure Compile on random expressions and tuples — values (including
// NULL propagation and truthiness short-circuits) must agree exactly.
func TestProgDifferential(t *testing.T) {
	s := progSchema()
	rng := rand.New(rand.NewSource(0xE15A))
	exprs := 0
	for i := 0; i < 400; i++ {
		e := randExpr(rng, 1+rng.Intn(4))
		prog, err := CompileProg(e, s)
		if err != nil {
			t.Fatalf("CompileProg(%s): %v", e, err)
		}
		closure, err := e.Compile(s)
		if err != nil {
			t.Fatalf("Compile(%s): %v", e, err)
		}
		exprs++
		for j := 0; j < 50; j++ {
			tu := randTuple(rng)
			got := prog.Eval(tu)
			wantC := closure(tu)
			wantE := e.Eval(s, tu)
			if !value.Equal(got, wantC) || got.IsNull() != wantC.IsNull() {
				t.Fatalf("expr %s on %s: prog=%v closure=%v", e, tu, got, wantC)
			}
			if !value.Equal(got, wantE) || got.IsNull() != wantE.IsNull() {
				t.Fatalf("expr %s on %s: prog=%v eval=%v", e, tu, got, wantE)
			}
			if prog.Truth(tu) != wantC.Truth() {
				t.Fatalf("expr %s on %s: Truth mismatch", e, tu)
			}
		}
	}
	if exprs == 0 {
		t.Fatal("no expressions exercised")
	}
}

func TestProgShortCircuit(t *testing.T) {
	s := progSchema()
	// (A = 1 AND B = 2) with A mismatching must not evaluate B — observable
	// through division: AND short-circuits before 1/0.
	e := AndOf(
		Compare(EQ, C("A"), IntLit(99)),
		Compare(EQ, Arith{Op: Over, L: IntLit(1), R: IntLit(0)}, IntLit(1)),
	)
	prog, err := CompileProg(e, s)
	if err != nil {
		t.Fatal(err)
	}
	tu := value.Tuple{value.NewInt(1), value.NewInt(2), value.NewFloat(0), value.NewString(""), value.NewBool(false)}
	if prog.Eval(tu).Truth() {
		t.Fatal("AND with false first term evaluated true")
	}
	// Division by zero yields NULL (per value.Div), so even when reached
	// the result must mirror the closure path.
	e2 := AndOf(
		Compare(EQ, C("A"), IntLit(1)),
		Compare(EQ, Arith{Op: Over, L: IntLit(1), R: IntLit(0)}, IntLit(1)),
	)
	prog2, _ := CompileProg(e2, s)
	closure2, _ := e2.Compile(s)
	if prog2.Eval(tu).Truth() != closure2(tu).Truth() {
		t.Fatal("NULL-producing second term diverged from closure path")
	}
}

func TestCompileFastResolutionError(t *testing.T) {
	s := progSchema()
	if _, err := CompileFast(C("NoSuchCol"), s); err == nil {
		t.Fatal("CompileFast resolved a nonexistent column")
	}
	f, err := CompileFast(Compare(GT, C("A"), IntLit(0)), s)
	if err != nil {
		t.Fatal(err)
	}
	if !f(value.Tuple{value.NewInt(1)}).Truth() {
		t.Fatal("CompileFast evaluator wrong")
	}
}

func BenchmarkProgVsClosure(b *testing.B) {
	s := progSchema()
	e := AndOf(
		Compare(GT, C("A"), IntLit(0)),
		Compare(LT, C("B"), IntLit(10)),
		Compare(GE, Arith{Op: Plus, L: C("A"), R: C("B")}, IntLit(2)),
	)
	tu := value.Tuple{value.NewInt(3), value.NewInt(4), value.NewFloat(0), value.NewString("x"), value.NewBool(true)}
	b.Run("prog", func(b *testing.B) {
		p, _ := CompileProg(e, s)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Eval(tu)
		}
	})
	b.Run("closure", func(b *testing.B) {
		f, _ := e.Compile(s)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f(tu)
		}
	})
}
