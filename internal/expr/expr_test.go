package expr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/value"
)

func testSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Qualifier: "T", Name: "a", Type: value.Int},
		catalog.Column{Qualifier: "T", Name: "b", Type: value.Int},
		catalog.Column{Qualifier: "T", Name: "s", Type: value.String},
	)
}

func TestEvalBasics(t *testing.T) {
	s := testSchema()
	tup := value.Tuple{value.NewInt(3), value.NewInt(5), value.NewString("x")}
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{C("a"), value.NewInt(3)},
		{C("T.b"), value.NewInt(5)},
		{IntLit(7), value.NewInt(7)},
		{Arith{Op: Plus, L: C("a"), R: C("b")}, value.NewInt(8)},
		{Arith{Op: Times, L: C("a"), R: IntLit(2)}, value.NewInt(6)},
		{Compare(GT, C("b"), C("a")), value.NewBool(true)},
		{Compare(EQ, C("s"), StrLit("x")), value.NewBool(true)},
		{Compare(NE, C("s"), StrLit("x")), value.NewBool(false)},
		{AndOf(Compare(GT, C("b"), C("a")), Compare(EQ, C("a"), IntLit(3))), value.NewBool(true)},
		{Or{L: Compare(LT, C("b"), C("a")), R: Compare(EQ, C("a"), IntLit(3))}, value.NewBool(true)},
		{Not{E: Compare(LT, C("b"), C("a"))}, value.NewBool(true)},
	}
	for _, c := range cases {
		if got := c.e.Eval(s, tup); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestUnknownColumnIsNull(t *testing.T) {
	s := testSchema()
	tup := value.Tuple{value.NewInt(1), value.NewInt(2), value.NewString("x")}
	if got := C("missing").Eval(s, tup); !got.IsNull() {
		t.Errorf("missing column = %v, want NULL", got)
	}
	// NULL comparisons are falsy in predicate position.
	if Compare(EQ, C("missing"), IntLit(1)).Eval(s, tup).Truth() {
		t.Error("NULL = 1 should not be truthy")
	}
}

func TestCompileMatchesEval(t *testing.T) {
	s := testSchema()
	exprs := []Expr{
		C("a"),
		Arith{Op: Minus, L: C("b"), R: C("a")},
		Arith{Op: Over, L: C("b"), R: C("a")},
		Compare(LE, C("a"), C("b")),
		AndOf(Compare(GT, C("a"), IntLit(0)), Compare(LT, C("b"), IntLit(10))),
		Or{L: Compare(EQ, C("s"), StrLit("y")), R: Compare(GE, C("a"), IntLit(0))},
		Not{E: Compare(EQ, C("a"), C("b"))},
	}
	compiled := make([]func(value.Tuple) value.Value, len(exprs))
	for i, e := range exprs {
		f, err := e.Compile(s)
		if err != nil {
			t.Fatalf("Compile(%s): %v", e, err)
		}
		compiled[i] = f
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(value.Tuple{
				value.NewInt(int64(r.Intn(10))),
				value.NewInt(int64(r.Intn(10))),
				value.NewString(string(rune('x' + r.Intn(3)))),
			})
		},
	}
	prop := func(tup value.Tuple) bool {
		for i, e := range exprs {
			if e.Eval(s, tup) != compiled[i](tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompileRejectsUnknownColumns(t *testing.T) {
	s := testSchema()
	if _, err := C("nope").Compile(s); err == nil {
		t.Error("Compile of unknown column should fail")
	}
	if _, err := AndOf(Compare(EQ, C("nope"), IntLit(1))).Compile(s); err == nil {
		t.Error("Compile should propagate nested errors")
	}
}

func TestConjuncts(t *testing.T) {
	p := Compare(GT, C("a"), IntLit(0))
	q := Compare(LT, C("b"), IntLit(9))
	r := Compare(EQ, C("s"), StrLit("x"))
	e := AndOf(p, AndOf(q, r))
	got := Conjuncts(e)
	if len(got) != 3 {
		t.Fatalf("Conjuncts: got %d terms, want 3", len(got))
	}
	if len(Conjuncts(p)) != 1 {
		t.Error("single term should yield itself")
	}
}

func TestAndOfFlattensAndCanonicalizes(t *testing.T) {
	p := Compare(GT, C("a"), IntLit(0))
	q := Compare(LT, C("b"), IntLit(9))
	e1 := AndOf(p, q)
	e2 := AndOf(q, p)
	if e1.String() != e2.String() {
		t.Errorf("AND canonical form differs: %q vs %q", e1, e2)
	}
	if AndOf(p) != Expr(p) {
		t.Error("AndOf of one term should return the term")
	}
	if !AndOf().Eval(testSchema(), value.Tuple{value.NewInt(0), value.NewInt(0), value.NewString("")}).Truth() {
		t.Error("empty AND should be TRUE")
	}
}

func TestColumnsOf(t *testing.T) {
	e := AndOf(
		Compare(GT, C("T.b"), C("T.a")),
		Compare(EQ, C("T.a"), IntLit(1)),
	)
	got := ColumnsOf(e)
	want := []string{"T.a", "T.b"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ColumnsOf = %v, want %v", got, want)
	}
}

func TestRefersOnly(t *testing.T) {
	s := testSchema()
	if !RefersOnly(Compare(EQ, C("a"), C("b")), s) {
		t.Error("a=b refers only to schema columns")
	}
	if RefersOnly(Compare(EQ, C("a"), C("other")), s) {
		t.Error("a=other should not resolve")
	}
}
