package obs

import "sync/atomic"

// WindowTrace is the causal context of one maintenance window: a root
// span plus a process-unique window sequence number. It is allocated
// once per ApplyBatch window and threaded through every stage that does
// work on the window's behalf — coalesce, track propagation, per-shard
// apply, spanning-aggregate merge, and the (possibly deferred, possibly
// cross-goroutine) commit chain — so spans finished on worker or
// committer goroutines still link back to the window that caused them.
//
// The sequence number keys flight-recorder events (EvWindowOpen /
// EvWindowFence / EvShardRoute) so a binary dump can be correlated with
// the span ring without string names.
//
// All methods are safe on a nil *WindowTrace, and a WindowTrace whose
// tracer is disabled still carries a valid Seq so flight events keep
// flowing when spans are off.
type WindowTrace struct {
	root *Active
	seq  uint64
}

// windowSeq numbers windows across the whole process (sharded roots and
// shard-local sub-windows each take their own number).
var windowSeq atomic.Uint64

// StartWindow opens a window root span named name under parent (0 for a
// top-level window) and assigns the next window sequence number.
func StartWindow(name string, parent uint64) *WindowTrace {
	return &WindowTrace{
		root: Trace.Start(name, parent),
		seq:  windowSeq.Add(1),
	}
}

// RootID returns the root span's ID for parenting children (0 on nil or
// when tracing is disabled).
func (w *WindowTrace) RootID() uint64 {
	if w == nil {
		return 0
	}
	return w.root.ID()
}

// Seq returns the window's process-unique sequence number (0 on nil).
func (w *WindowTrace) Seq() uint64 {
	if w == nil {
		return 0
	}
	return w.seq
}

// Child starts a span parented to the window root. The caller finishes
// it; this is the one call every cross-goroutine stage uses.
func (w *WindowTrace) Child(name string) *Active {
	if w == nil {
		return Trace.Start(name, 0)
	}
	return Trace.Start(name, w.root.ID())
}

// Finish closes the root span. Stages that outlive the window body (a
// deferred-fence commit draining under the next window) hold the root's
// ID, not the *Active, so finishing here is safe even while they run.
func (w *WindowTrace) Finish() {
	if w != nil {
		w.root.Finish()
	}
}
