package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a tracer deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newTestTracer(capacity int) (*Tracer, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := NewTracer(capacity)
	tr.epoch = clk.t
	tr.now = clk.now
	return tr, clk
}

// TestSpanNesting checks parent/child linkage and the self-time
// arithmetic: a parent's self time excludes its recorded children.
func TestSpanNesting(t *testing.T) {
	tr, clk := newTestTracer(64)

	root := tr.Start("batch", 0)
	clk.advance(10 * time.Millisecond)
	child := tr.Start("propagate", root.ID())
	clk.advance(30 * time.Millisecond)
	grand := tr.Start("probe", child.ID())
	clk.advance(5 * time.Millisecond)
	grand.Finish() // 5ms
	clk.advance(5 * time.Millisecond)
	child.Finish() // 40ms, self 35ms
	clk.advance(10 * time.Millisecond)
	root.Finish() // 60ms, self 20ms

	spans, dropped := tr.Spans()
	if dropped != 0 || len(spans) != 3 {
		t.Fatalf("spans = %d dropped = %d, want 3/0", len(spans), dropped)
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["propagate"].Parent != byName["batch"].ID {
		t.Errorf("propagate's parent = %d, want %d", byName["propagate"].Parent, byName["batch"].ID)
	}
	if byName["probe"].Parent != byName["propagate"].ID {
		t.Errorf("probe's parent = %d, want %d", byName["probe"].Parent, byName["propagate"].ID)
	}
	if spans[0].Name != "batch" {
		t.Errorf("spans not start-ordered: first is %q", spans[0].Name)
	}

	self := map[string]int64{}
	total := map[string]int64{}
	for _, st := range tr.Summary() {
		self[st.Name], total[st.Name] = st.Self, st.Total
	}
	ms := int64(time.Millisecond)
	if total["batch"] != 60*ms || self["batch"] != 20*ms {
		t.Errorf("batch total/self = %d/%d ms, want 60/20", total["batch"]/ms, self["batch"]/ms)
	}
	if total["propagate"] != 40*ms || self["propagate"] != 35*ms {
		t.Errorf("propagate total/self = %d/%d ms, want 40/35", total["propagate"]/ms, self["propagate"]/ms)
	}
	if total["probe"] != 5*ms || self["probe"] != 5*ms {
		t.Errorf("probe total/self = %d/%d ms, want 5/5", total["probe"]/ms, self["probe"]/ms)
	}
}

func TestSpanRingEviction(t *testing.T) {
	tr, clk := newTestTracer(16)
	for i := 0; i < 40; i++ {
		sp := tr.Start("op", 0)
		clk.advance(time.Millisecond)
		sp.Finish()
	}
	spans, dropped := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	if dropped != 24 {
		t.Fatalf("dropped = %d, want 24", dropped)
	}
	// The retained spans are the most recent ones.
	for _, sp := range spans {
		if sp.ID <= 24 {
			t.Fatalf("span %d survived eviction; oldest retained should be 25", sp.ID)
		}
	}

	// Nil tracer and nil active are no-ops.
	var nt *Tracer
	sp := nt.Start("x", 0)
	sp.Finish()
	if id := sp.ID(); id != 0 {
		t.Fatalf("nil active ID = %d, want 0", id)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.test.count").Add(3)
	tr, clk := newTestTracer(16)
	sp := tr.Start("served", 0)
	clk.advance(time.Millisecond)
	sp.Finish()

	srv := httptest.NewServer(Handler(r, tr))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return b.String()
	}

	if body := get("/metrics"); !strings.Contains(body, `"http.test.count": 3`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/spans"); !strings.Contains(body, `"name": "served"`) {
		t.Errorf("/spans missing span:\n%s", body)
	}
	if body := get("/spans/summary"); !strings.Contains(body, "served") {
		t.Errorf("/spans/summary missing row:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
