// Package obs is the engine's zero-dependency observability layer: a
// metrics registry (atomic counters, gauges and sharded power-of-two
// histograms, all safe for concurrent use) plus a lightweight span
// tracer (ring-buffered start/finish events with explicit parent IDs).
//
// The paper's whole argument is a cost model — C(V, T_i) = q_i + m_i,
// priced in page I/Os — so validating a view-set choice in practice
// means *measuring* the quantities the model predicts: probe counts,
// delta sizes, cache hit rates, per-phase latency. Every hot layer
// (optimizer search, delta pipeline, storage charging) reports into the
// package-level Default registry; the counters are cheap enough
// (uncontended atomic adds next to code paths that already build page-ID
// strings) that instrumentation is always on and can never change
// results, only report them.
//
// Handles are resolved once and cached by the caller:
//
//	var probes = obs.C("maintain.probe.hits")
//	probes.Inc()
//
// All handle methods are nil-receiver safe, so optional instrumentation
// needs no guards.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value (stored as float64 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a name-keyed collection of metrics. Metrics register
// lazily on first lookup; the same name always returns the same handle,
// so process-wide totals accumulate across independent subsystem
// instances (every Costing shares the cache counters, every Store the
// I/O counters).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
	}
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time.
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Histogram returns (registering if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every registered metric at one instant. Counters
// and histogram shards are read atomically (each value is individually
// consistent; the snapshot as a whole is not a global atomic cut, which
// is fine for monitoring).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, f := range r.gaugeFuncs {
		funcs[n] = f
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, f := range funcs {
		s.Gauges[n] = f()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Default is the process-wide registry every instrumented subsystem
// reports into.
var Default = NewRegistry()

// Trace is the process-wide span tracer (ring of the most recent 4096
// finished spans).
var Trace = NewTracer(4096)

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }
