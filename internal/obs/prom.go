package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format 0.0.4, which OpenMetrics scrapers
// also accept). The registry's dotted names map to Prometheus names by
// replacing every character outside [a-zA-Z0-9_:] with '_'
// ("maintain.apply.ns" → "maintain_apply_ns"); histograms expand into
// the conventional _bucket{le=...}/_sum/_count series with this
// package's power-of-two upper bounds as the le labels.

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in Prometheus text format. Metric
// families are emitted in sorted name order so the output is
// deterministic and diffable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		hs := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, bk := range hs.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bk.Le, bk.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, hs.Count, pn, hs.Sum, pn, hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusText renders the registry's current snapshot as Prometheus
// text.
func PrometheusText(r *Registry) []byte {
	var b strings.Builder
	_ = WritePrometheus(&b, r.Snapshot())
	return []byte(b.String())
}
