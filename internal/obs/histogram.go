package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// histBuckets is the number of power-of-two buckets: bucket b counts
// observations v with bits.Len64(v) == b, i.e. bucket 0 holds v == 0 and
// bucket b >= 1 holds the half-open range [2^(b-1), 2^b). Every
// non-negative int64 lands in exactly one bucket.
const histBuckets = 64

// histShards stripes the bucket counters so concurrent observers on
// different Ps rarely contend on one cache line. Power of two.
const histShards = 8

type histShard struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	// pad keeps neighbouring shards off one cache line for the hot
	// low-bucket counters.
	_ [64]byte
}

// Histogram is a race-safe histogram with power-of-two bucket
// boundaries (0, 1, 2, 4, 8, ... 2^62), sharded for write scalability.
// The zero value is ready to use.
type Histogram struct {
	shards [histShards]histShard
}

// shardHints hands out quasi-P-local shard indices: sync.Pool keeps one
// hint per P in steady state, so goroutines running on different
// processors stripe onto different shards without any goroutine-ID
// tricks. Get/Put cost a few nanoseconds and never allocate after
// warm-up.
var shardHints = sync.Pool{New: func() any {
	h := int(hintSeq.Add(1)) & (histShards - 1)
	return &h
}}

var hintSeq atomic.Int64

// bucketOf returns the power-of-two bucket index of v (v < 0 clamps
// to 0).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	hint := shardHints.Get().(*int)
	s := &h.shards[*hint]
	shardHints.Put(hint)
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		for b := range h.shards[i].counts {
			n += h.shards[i].counts[b].Load()
		}
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		n += h.shards[i].sum.Load()
	}
	return n
}

// Bucket is one histogram bucket in a snapshot: Count observations were
// <= Le (upper bounds are cumulative, Prometheus-style).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a merged, cumulative view of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Buckets lists cumulative counts at each power-of-two upper bound,
	// trimmed to the occupied range.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot merges the shards into one cumulative bucket list.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	if h == nil {
		return out
	}
	var merged [histBuckets]int64
	for i := range h.shards {
		out.Sum += h.shards[i].sum.Load()
		for b := range h.shards[i].counts {
			merged[b] += h.shards[i].counts[b].Load()
		}
	}
	last := -1
	for b, n := range merged {
		if n != 0 {
			last = b
		}
	}
	var cum int64
	for b := 0; b <= last; b++ {
		cum += merged[b]
		// Upper bound of bucket b: largest v with bits.Len64(v) == b,
		// i.e. 2^b - 1 (bucket 0 holds only 0).
		le := uint64(0)
		if b > 0 {
			le = 1<<uint(b) - 1
		}
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: cum})
	}
	out.Count = cum
	return out
}

// Sub returns the observations recorded between o — an earlier snapshot
// of the same histogram — and s: bucket counts and sums subtract
// pairwise, and trailing empty buckets are trimmed. Benchmarks use this
// to isolate one measurement window from a process-lifetime histogram.
func (s HistogramSnapshot) Sub(o HistogramSnapshot) HistogramSnapshot {
	var cur, old [histBuckets]int64
	fill := func(dst *[histBuckets]int64, snap HistogramSnapshot) {
		prev := int64(0)
		for _, bk := range snap.Buckets {
			// Invert the Le encoding: bucket 0 has Le 0, bucket b has
			// Le 2^b - 1, so bits.Len64(Le) recovers the index.
			dst[bits.Len64(bk.Le)] = bk.Count - prev
			prev = bk.Count
		}
	}
	fill(&cur, s)
	fill(&old, o)
	out := HistogramSnapshot{Sum: s.Sum - o.Sum}
	last := -1
	for b := range cur {
		cur[b] -= old[b]
		if cur[b] != 0 {
			last = b
		}
	}
	var cum int64
	for b := 0; b <= last; b++ {
		cum += cur[b]
		le := uint64(0)
		if b > 0 {
			le = 1<<uint(b) - 1
		}
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: cum})
	}
	out.Count = cum
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the snapshot's
// buckets: the upper bound of the first bucket whose cumulative count
// reaches q of the total. Coarse (power-of-two resolution) but stable.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	for _, b := range s.Buckets {
		if b.Count >= target {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}
