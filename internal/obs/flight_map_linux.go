//go:build linux

package obs

import (
	"fmt"
	"os"
	"syscall"
	"time"
	"unsafe"
)

// OpenFlightFile returns a recorder whose ring lives in an mmap'd file:
// every atomic store lands directly in the shared mapping, so when the
// process dies — SIGKILL, panic, OOM — the file holds the ring as of
// the last completed Record call with no flush step in between. Reading
// the file afterwards (same machine; page cache) decodes with
// DecodeFlight.
//
// The file is created (or truncated) at the size implied by slots.
func OpenFlightFile(path string, slots int) (*FlightRecorder, error) {
	n := uint64(64)
	for int(n) < slots {
		n <<= 1
	}
	size := int((flightHdr + n*flightSlotLen) * 8)
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fd.Truncate(int64(size)); err != nil {
		fd.Close()
		return nil, err
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	fd.Close() // the mapping outlives the descriptor
	if err != nil {
		return nil, fmt.Errorf("flight: mmap %s: %w", path, err)
	}
	f := &FlightRecorder{
		words: unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), size/8),
		n:     n,
		epoch: time.Now(),
		path:  path,
		closer: func([]uint64) error {
			return syscall.Munmap(data)
		},
	}
	f.initHeader()
	return f, nil
}
