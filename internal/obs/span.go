package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one finished traced operation. Timestamps are nanoseconds
// since the tracer's epoch, so exported spans from one process line up
// on a common axis.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
}

// Tracer records spans into a fixed-size ring: starting a span is two
// atomic ops and a clock read; finishing takes a short mutex to publish
// into the ring. Old spans are overwritten once the ring wraps (Dropped
// reports how many), so tracing is always on without unbounded memory.
type Tracer struct {
	epoch time.Time
	now   func() time.Time // replaceable for deterministic tests

	nextID   atomic.Uint64
	disabled atomic.Bool

	mu    sync.Mutex
	ring  []Span
	total uint64 // finished spans ever recorded
}

// spansDropped mirrors ring overwrites into the Default registry so
// silent span loss shows up next to every other counter (mvshell
// \stats, /metrics) instead of only inside the /spans payload.
var spansDropped = C("obs.spans.dropped")

// NewTracer returns a tracer whose ring holds the most recent capacity
// finished spans (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{
		epoch: time.Now(),
		now:   time.Now,
		ring:  make([]Span, 0, capacity),
	}
}

// Active is an in-flight span; call Finish to record it.
type Active struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// SetEnabled turns span recording on or off. Disabled tracers return
// nil from Start, so the entire span path (two atomics + two clock
// reads + ring publish) collapses to one atomic load — this is what the
// obs-overhead bench gate toggles to price the instrumentation.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.disabled.Store(!on)
	}
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool {
	return t != nil && !t.disabled.Load()
}

// Start begins a span. parent is the ID of the enclosing span (0 for a
// root). Safe on a nil tracer (returns a no-op Active).
func (t *Tracer) Start(name string, parent uint64) *Active {
	if t == nil || t.disabled.Load() {
		return nil
	}
	return &Active{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  t.now(),
	}
}

// ID returns the span's ID for use as a child's parent (0 on nil).
func (a *Active) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.id
}

// Finish records the span into the tracer's ring.
func (a *Active) Finish() {
	if a == nil {
		return
	}
	t := a.tr
	sp := Span{
		ID:     a.id,
		Parent: a.parent,
		Name:   a.name,
		Start:  a.start.Sub(t.epoch).Nanoseconds(),
		Dur:    t.now().Sub(a.start).Nanoseconds(),
	}
	t.mu.Lock()
	overwrote := false
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.total%uint64(cap(t.ring))] = sp
		overwrote = true
	}
	t.total++
	t.mu.Unlock()
	if overwrote && t == Trace {
		spansDropped.Inc()
	}
}

// Spans returns the buffered finished spans ordered by start time, plus
// the number of spans that have been overwritten since the tracer was
// created.
func (t *Tracer) Spans() (spans []Span, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	spans = make([]Span, len(t.ring))
	copy(spans, t.ring)
	total := t.total
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	if n := uint64(len(spans)); total > n {
		dropped = total - n
	}
	return spans, dropped
}

// NameStat is one row of the self-time summary.
type NameStat struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	// Total is the summed wall time of spans with this name.
	Total int64 `json:"total_ns"`
	// Self is Total minus the time spent in buffered child spans —
	// where this operation itself did work rather than delegating.
	Self int64 `json:"self_ns"`
}

// Summary aggregates the buffered spans by name with self time (span
// duration minus the durations of its buffered children). Children
// whose parents were overwritten count as roots; a parent whose
// children were overwritten over-reports self time — the summary is a
// profile of the retained window, not an exact account of all time.
// Rows are sorted by Self descending, then name.
func (t *Tracer) Summary() []NameStat {
	spans, _ := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	childDur := map[uint64]int64{} // parent ID -> summed child duration
	for _, sp := range spans {
		if sp.Parent != 0 {
			childDur[sp.Parent] += sp.Dur
		}
	}
	byName := map[string]*NameStat{}
	for _, sp := range spans {
		st, ok := byName[sp.Name]
		if !ok {
			st = &NameStat{Name: sp.Name}
			byName[sp.Name] = st
		}
		st.Count++
		st.Total += sp.Dur
		self := sp.Dur - childDur[sp.ID]
		if self < 0 {
			self = 0
		}
		st.Self += self
	}
	out := make([]NameStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SummaryTable renders the self-time summary as an aligned text table.
// When the ring has wrapped, a trailing warning line reports how many
// spans were overwritten, so a profile of a partial window is never
// mistaken for the full run.
func (t *Tracer) SummaryTable() string {
	rows := t.Summary()
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %8s %14s %14s\n", "span", "count", "total", "self")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s %8d %14s %14s\n",
			r.Name, r.Count, time.Duration(r.Total), time.Duration(r.Self))
	}
	if _, dropped := t.Spans(); dropped > 0 {
		fmt.Fprintf(&b, "WARNING: %d span(s) dropped (ring wrapped); totals cover the retained window only\n", dropped)
	}
	return b.String()
}
