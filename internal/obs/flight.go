package obs

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// FlightRecorder is the engine's black box: a lock-free fixed-slot
// binary event ring that is always on. Producers (window open/fence,
// per-shard route cardinalities, fsync start/done, GC pauses) record
// with a handful of atomic stores — no locks, no allocations — so the
// recorder can sit on the hottest paths without moving the allocs/txn
// ceiling. When a crash test fails or a process is killed mid-run, the
// ring is what tells you what the system was doing at the moment of
// death.
//
// # Layout and ownership rule
//
// The ring is a flat []uint64: an 8-word header followed by n slots of
// 6 words each. Every word is read and written ONLY with atomic ops —
// that is the single ownership rule, and it is what lets the same
// layout back either a heap slice or an mmap'd file (OpenFlightFile on
// linux) so a SIGKILL'd process leaves a decodable image behind.
//
//	header: [magic, slotCount, epochWallNs, seq, reserved×4]
//	slot:   [ticket, tsNs, type<<48|shard<<32, a, b, c]
//
// A writer claims a ticket with one atomic add on header word 3, fills
// the slot's payload words, and stores the ticket word LAST — a reader
// that sees ticket t knows the payload words were written by ticket t's
// writer unless a full ring lap raced it, which the decoder detects by
// re-reading the ticket after the payload (torn slots are skipped, not
// mis-reported). This is a flight recorder, not an audit log: under a
// pathological lap race a slot is dropped, never invented.
type FlightRecorder struct {
	words []uint64
	n     uint64 // slot count
	epoch time.Time

	disabled atomic.Bool

	// persistPath + close hook come from the file backing (if any).
	path   string
	closer func([]uint64) error
}

const (
	flightMagic   = 0x4d56464c49544531 // "MVFLITE1"
	flightHdr     = 8                  // header words
	flightSlotLen = 6                  // words per slot

	// DefaultFlightSlots sizes the process-wide ring: 8192 events ≈
	// several hundred batch-64 windows of history in 384 KiB.
	DefaultFlightSlots = 8192
)

// Flight-recorder event types. A/B/C meanings per type:
//
//	EvWindowOpen   A=window seq  B=txns in window    C=root span ID
//	EvWindowFence  A=window seq  B=commit LSN        C=1 on error
//	EvShardRoute   A=window seq  B=routed units      Shard=shard index
//	EvFsyncStart   A=LSN         B=bytes in segment
//	EvFsyncDone    A=LSN         B=bytes in segment
//	EvGCPause      A=pause ns    B=GC cycle number
//	EvCheckpoint   A=LSN
//	EvRecovery     A=recovered LSN  B=windows replayed
const (
	EvWindowOpen uint16 = 1 + iota
	EvWindowFence
	EvShardRoute
	EvFsyncStart
	EvFsyncDone
	EvGCPause
	EvCheckpoint
	EvRecovery
)

var flightEvNames = [...]string{
	EvWindowOpen:  "window_open",
	EvWindowFence: "window_fence",
	EvShardRoute:  "shard_route",
	EvFsyncStart:  "fsync_start",
	EvFsyncDone:   "fsync_done",
	EvGCPause:     "gc_pause",
	EvCheckpoint:  "checkpoint",
	EvRecovery:    "recovery",
}

// FlightEventName returns the symbolic name of an event type.
func FlightEventName(t uint16) string {
	if int(t) < len(flightEvNames) && flightEvNames[t] != "" {
		return flightEvNames[t]
	}
	return fmt.Sprintf("ev_%d", t)
}

// NewFlight returns a heap-backed recorder with the given slot count
// (minimum 64, rounded up to a power of two so the ring index is a
// mask).
func NewFlight(slots int) *FlightRecorder {
	n := uint64(64)
	for int(n) < slots {
		n <<= 1
	}
	f := &FlightRecorder{
		words: make([]uint64, flightHdr+n*flightSlotLen),
		n:     n,
		epoch: time.Now(),
	}
	f.initHeader()
	return f
}

func (f *FlightRecorder) initHeader() {
	atomic.StoreUint64(&f.words[0], flightMagic)
	atomic.StoreUint64(&f.words[1], f.n)
	atomic.StoreUint64(&f.words[2], uint64(f.epoch.UnixNano()))
	atomic.StoreUint64(&f.words[3], 0)
}

// SetEnabled turns recording on or off (the obs-overhead gate measures
// the recorder's cost by toggling this; production leaves it on).
func (f *FlightRecorder) SetEnabled(on bool) {
	if f != nil {
		f.disabled.Store(!on)
	}
}

// Enabled reports whether Record stores events.
func (f *FlightRecorder) Enabled() bool {
	return f != nil && !f.disabled.Load()
}

// Record stores one event. Zero allocations, no locks: one atomic add
// to claim a ticket plus six atomic stores into the slot.
func (f *FlightRecorder) Record(ev uint16, shard uint16, a, b, c uint64) {
	if f == nil || f.disabled.Load() {
		return
	}
	ticket := atomic.AddUint64(&f.words[3], 1)
	base := flightHdr + ((ticket-1)&(f.n-1))*flightSlotLen
	ts := uint64(time.Since(f.epoch).Nanoseconds())
	atomic.StoreUint64(&f.words[base+1], ts)
	atomic.StoreUint64(&f.words[base+2], uint64(ev)<<48|uint64(shard)<<32)
	atomic.StoreUint64(&f.words[base+3], a)
	atomic.StoreUint64(&f.words[base+4], b)
	atomic.StoreUint64(&f.words[base+5], c)
	atomic.StoreUint64(&f.words[base+0], ticket)
}

// FlightEvent is one decoded recorder event.
type FlightEvent struct {
	Seq   uint64 `json:"seq"`
	TS    int64  `json:"ts_ns"` // ns since the recorder's epoch
	Type  uint16 `json:"type"`
	Shard uint16 `json:"shard,omitempty"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
	C     uint64 `json:"c,omitempty"`
}

// Name returns the event's symbolic type name.
func (e FlightEvent) Name() string { return FlightEventName(e.Type) }

// String renders one event as a log-style line.
func (e FlightEvent) String() string {
	return fmt.Sprintf("%10d %14dns %-13s shard=%d a=%d b=%d c=%d",
		e.Seq, e.TS, e.Name(), e.Shard, e.A, e.B, e.C)
}

// Events decodes the live ring, oldest first. Torn slots (a writer
// lapped the reader mid-slot) are skipped.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	return decodeWords(f.words)
}

// Total returns how many events have ever been recorded (the ring keeps
// the most recent min(Total, slots)).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return atomic.LoadUint64(&f.words[3])
}

func decodeWords(words []uint64) []FlightEvent {
	if len(words) < flightHdr || atomic.LoadUint64(&words[0]) != flightMagic {
		return nil
	}
	n := atomic.LoadUint64(&words[1])
	if n == 0 || uint64(len(words)) < flightHdr+n*flightSlotLen {
		return nil
	}
	out := make([]FlightEvent, 0, n)
	for s := uint64(0); s < n; s++ {
		base := flightHdr + s*flightSlotLen
		ticket := atomic.LoadUint64(&words[base])
		if ticket == 0 || (ticket-1)&(n-1) != s {
			continue
		}
		e := FlightEvent{
			Seq: ticket,
			TS:  int64(atomic.LoadUint64(&words[base+1])),
			A:   atomic.LoadUint64(&words[base+3]),
			B:   atomic.LoadUint64(&words[base+4]),
			C:   atomic.LoadUint64(&words[base+5]),
		}
		packed := atomic.LoadUint64(&words[base+2])
		e.Type = uint16(packed >> 48)
		e.Shard = uint16(packed >> 32)
		if atomic.LoadUint64(&words[base]) != ticket {
			continue // lapped mid-read
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump serializes the ring (header + slots) as little-endian bytes —
// the artifact format written into WAL_FAILURE_DIR and served by
// /debug/flight?format=bin.
func (f *FlightRecorder) Dump() []byte {
	if f == nil {
		return nil
	}
	out := make([]byte, len(f.words)*8)
	for i := range f.words {
		binary.LittleEndian.PutUint64(out[i*8:], atomic.LoadUint64(&f.words[i]))
	}
	return out
}

// DumpToFile writes Dump() to path (0644).
func (f *FlightRecorder) DumpToFile(path string) error {
	if f == nil {
		return nil
	}
	return os.WriteFile(path, f.Dump(), 0o644)
}

// DecodeFlight parses a Dump() image (or, on little-endian hosts, the
// raw bytes of an mmap-backed flight file left behind by a killed
// process) and returns its events oldest-first plus the recorder's
// epoch wall-clock time.
func DecodeFlight(data []byte) ([]FlightEvent, time.Time, error) {
	if len(data) < flightHdr*8 {
		return nil, time.Time{}, fmt.Errorf("flight: short image (%d bytes)", len(data))
	}
	words := make([]uint64, len(data)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	if words[0] != flightMagic {
		return nil, time.Time{}, fmt.Errorf("flight: bad magic %#x", words[0])
	}
	epoch := time.Unix(0, int64(words[2]))
	evs := decodeWords(words)
	return evs, epoch, nil
}

// FormatEvents renders the most recent max events (0 = all) as text,
// one line per event, newest last.
func FormatEvents(evs []FlightEvent, max int) string {
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %16s %-13s %s\n", "seq", "ts", "event", "detail")
	for _, e := range evs {
		fmt.Fprintln(&b, e.String())
	}
	return b.String()
}

// Close releases any file backing (munmap on linux). The heap-backed
// recorder's Close is a no-op.
func (f *FlightRecorder) Close() error {
	if f == nil || f.closer == nil {
		return nil
	}
	c := f.closer
	f.closer = nil
	return c(f.words)
}

// Path returns the backing file path ("" for heap-backed recorders).
func (f *FlightRecorder) Path() string {
	if f == nil {
		return ""
	}
	return f.path
}

// flightPtr holds the process-wide recorder. An atomic pointer so tests
// and file-backed startups can swap it while producers run.
var flightPtr atomic.Pointer[FlightRecorder]

func init() {
	flightPtr.Store(NewFlight(DefaultFlightSlots))
}

// Flight returns the process-wide flight recorder (always non-nil).
func Flight() *FlightRecorder { return flightPtr.Load() }

// SetFlight installs f as the process-wide recorder and returns the
// previous one. Pass the result back to restore it (tests), or Close a
// file-backed previous recorder when done.
func SetFlight(f *FlightRecorder) *FlightRecorder {
	if f == nil {
		f = NewFlight(DefaultFlightSlots)
	}
	return flightPtr.Swap(f)
}
