//go:build !linux

package obs

import (
	"os"
	"time"
)

// OpenFlightFile without mmap support falls back to a heap-backed ring
// that writes its image to path on Close. The dump then reflects a
// clean shutdown only — kill-survivability is a linux feature.
func OpenFlightFile(path string, slots int) (*FlightRecorder, error) {
	f := NewFlight(slots)
	f.path = path
	f.closer = func([]uint64) error {
		return os.WriteFile(path, f.Dump(), 0o644)
	}
	// Create eagerly so callers see the file exist either way.
	if err := os.WriteFile(path, f.Dump(), 0o644); err != nil {
		return nil, err
	}
	f.epoch = time.Now()
	f.initHeader()
	return f, nil
}
