package obs

import (
	"strings"
	"testing"
	"time"
)

// TestHistogramSnapshotSub isolates one measurement window from a
// long-lived histogram — the pattern mvtop and the bench harness use to
// report per-interval quantiles off process-lifetime counters.
func TestHistogramSnapshotSub(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 3, 3, 100} {
		h.Observe(v)
	}
	before := h.Snapshot()
	for _, v := range []int64{5, 700, 700, 700, 1 << 20} {
		h.Observe(v)
	}
	after := h.Snapshot()

	d := after.Sub(before)
	if d.Count != 5 {
		t.Fatalf("window count %d, want 5", d.Count)
	}
	if want := int64(5 + 700*3 + 1<<20); d.Sum != want {
		t.Fatalf("window sum %d, want %d", d.Sum, want)
	}
	// The window's median sits in the 700 bucket (le 1023); the lifetime
	// snapshot's does not.
	if q := d.Quantile(0.5); q != 1023 {
		t.Fatalf("window p50 le %d, want 1023", q)
	}
	if q := after.Quantile(0.5); q == 1023 {
		t.Fatal("lifetime p50 unexpectedly matches the window p50")
	}
	// p100 of the window reaches the 2^20 observation's bucket.
	if q := d.Quantile(1); q < 1<<20-1 {
		t.Fatalf("window p100 le %d, want >= %d", q, 1<<20-1)
	}

	// Subtracting a snapshot from itself leaves an empty window.
	z := after.Sub(after)
	if z.Count != 0 || z.Sum != 0 || len(z.Buckets) != 0 {
		t.Fatalf("self-subtraction not empty: %+v", z)
	}
}

// TestSpansDroppedWarning checks the ring-wrap accounting surfaces in
// both the obs.spans.dropped counter and the SummaryTable warning line.
func TestSpansDroppedWarning(t *testing.T) {
	tr, clk := newTestTracer(16)

	// Before wrapping, no warning.
	sp := tr.Start("warm", 0)
	clk.advance(time.Millisecond)
	sp.Finish()
	if tbl := tr.SummaryTable(); strings.Contains(tbl, "WARNING") {
		t.Fatalf("premature warning:\n%s", tbl)
	}

	for i := 0; i < 40; i++ {
		s := tr.Start("spin", 0)
		clk.advance(time.Millisecond)
		s.Finish()
	}
	tbl := tr.SummaryTable()
	if !strings.Contains(tbl, "WARNING: 25 span(s) dropped") {
		t.Fatalf("summary table missing drop warning:\n%s", tbl)
	}

	// Only the global tracer feeds the registry counter; a private
	// tracer wrapping must not have bumped it.
	countBefore := Default.Snapshot().Counters["obs.spans.dropped"]
	marker := Trace.Start("drop.test.marker", 0)
	marker.Finish()
	// Wrap the global ring (capacity 4096) far enough that overwrites
	// are guaranteed.
	for i := 0; i < 2*4096+16; i++ {
		s := Trace.Start("drop.test.spin", 0)
		s.Finish()
	}
	countAfter := Default.Snapshot().Counters["obs.spans.dropped"]
	if countAfter <= countBefore {
		t.Fatalf("obs.spans.dropped did not advance: %d -> %d", countBefore, countAfter)
	}
}

// TestWindowTraceNilSafety exercises the disabled-tracer path: window
// helpers must stay inert rather than panic when Start returns nil.
func TestWindowTraceNilSafety(t *testing.T) {
	Trace.SetEnabled(false)
	defer Trace.SetEnabled(true)

	wt := StartWindow("disabled.window", 0)
	if wt.RootID() != 0 {
		t.Fatalf("disabled window has root %d, want 0", wt.RootID())
	}
	if wt.Seq() == 0 {
		t.Fatal("window seq must advance even when tracing is off")
	}
	child := wt.Child("disabled.child")
	if child.ID() != 0 {
		t.Fatal("disabled child span has nonzero ID")
	}
	child.Finish()
	wt.Finish()

	var nilWT *WindowTrace
	if nilWT.RootID() != 0 || nilWT.Seq() != 0 {
		t.Fatal("nil WindowTrace not inert")
	}
	nilWT.Child("x").Finish()
	nilWT.Finish()
}
