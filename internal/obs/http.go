package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry and tracer over HTTP:
//
//	/metrics        registry snapshot as JSON (expvar-style)
//	/spans          buffered spans as JSON, oldest first
//	/spans/summary  per-name self-time table (text)
//	/debug/pprof/   the standard pprof handlers
//
// Nil registry or tracer arguments fall back to the package defaults.
func Handler(r *Registry, t *Tracer) http.Handler {
	if r == nil {
		r = Default
	}
	if t == nil {
		t = Trace
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		spans, dropped := t.Spans()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Dropped uint64 `json:"dropped"`
			Spans   []Span `json:"spans"`
		}{Dropped: dropped, Spans: spans})
	})
	mux.HandleFunc("/spans/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(t.SummaryTable()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for Handler(r, t) on addr in a background
// goroutine, returning the bound address (useful with ":0") or an error
// if the listener cannot be opened.
func Serve(addr string, r *Registry, t *Tracer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(r, t)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// SnapshotJSON renders the registry snapshot as indented JSON — what
// the -metrics CLI flags dump on exit.
func SnapshotJSON(r *Registry) []byte {
	if r == nil {
		r = Default
	}
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(data, '\n')
}
