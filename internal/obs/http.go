package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// wantsPrometheus decides the /metrics representation: explicit
// ?format=prom|prometheus|text wins, ?format=json forces JSON, and
// otherwise an Accept header naming text/plain or openmetrics-text
// (what Prometheus and its ecosystem send) selects the text format.
// With no signal the JSON snapshot is served, preserving every
// pre-existing consumer.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}

// Handler serves the registry, tracer, and flight recorder over HTTP:
//
//	/metrics        registry snapshot — JSON by default, Prometheus
//	                text under content negotiation (Accept: text/plain
//	                or ?format=prom)
//	/spans          buffered spans as JSON, oldest first
//	/spans/summary  per-name self-time table (text)
//	/debug/flight   flight-recorder events as text (newest last);
//	                ?format=bin serves the raw binary image,
//	                ?format=json the decoded events
//	/debug/pprof/   the standard pprof handlers
//
// Nil registry or tracer arguments fall back to the package defaults.
func Handler(r *Registry, t *Tracer) http.Handler {
	if r == nil {
		r = Default
	}
	if t == nil {
		t = Trace
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		f := Flight()
		switch req.URL.Query().Get("format") {
		case "bin":
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(f.Dump())
		case "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Total  uint64        `json:"total"`
				Events []FlightEvent `json:"events"`
			}{Total: f.Total(), Events: f.Events()})
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(FormatEvents(f.Events(), 0)))
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		spans, dropped := t.Spans()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Dropped uint64 `json:"dropped"`
			Spans   []Span `json:"spans"`
		}{Dropped: dropped, Spans: spans})
	})
	mux.HandleFunc("/spans/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(t.SummaryTable()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for Handler(r, t) on addr in a background
// goroutine, returning the bound address (useful with ":0") or an error
// if the listener cannot be opened.
func Serve(addr string, r *Registry, t *Tracer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(r, t)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// SnapshotJSON renders the registry snapshot as indented JSON — what
// the -metrics CLI flags dump on exit.
func SnapshotJSON(r *Registry) []byte {
	if r == nil {
		r = Default
	}
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return append(data, '\n')
}
