package obs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// lintPrometheus is a tiny parser for the Prometheus text format: every
// non-comment line must be `name[{le="..."}] value`, every series must
// follow a # TYPE for its family, histogram buckets must be cumulative
// and end with +Inf equal to _count. It returns the number of samples.
// CI's exposition smoke leg runs it over a live scrape via
// TestPromLintFile.
func lintPrometheus(text string) (int, error) {
	typed := map[string]string{}
	samples := 0
	type histState struct {
		prev    int64
		inf     int64
		hasInf  bool
		count   int64
		hasCnt  bool
		started bool
	}
	hists := map[string]*histState{}
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return true
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) >= 4 && parts[1] == "TYPE" {
				if !validName(parts[2]) {
					return 0, fmt.Errorf("line %d: bad metric name %q", ln+1, parts[2])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return 0, fmt.Errorf("line %d: no value separator: %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			return 0, fmt.Errorf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name, label := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return 0, fmt.Errorf("line %d: unterminated labels: %q", ln+1, series)
			}
			name, label = series[:i], series[i+1:len(series)-1]
		}
		if !validName(name) {
			return 0, fmt.Errorf("line %d: bad series name %q", ln+1, name)
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return 0, fmt.Errorf("line %d: series %q has no # TYPE", ln+1, name)
		}
		if typed[family] == "histogram" {
			h := hists[family]
			if h == nil {
				h = &histState{}
				hists[family] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !strings.HasPrefix(label, `le="`) || !strings.HasSuffix(label, `"`) {
					return 0, fmt.Errorf("line %d: bucket without le label: %q", ln+1, line)
				}
				v, err := strconv.ParseInt(valStr, 10, 64)
				if err != nil {
					return 0, fmt.Errorf("line %d: non-integer bucket count: %v", ln+1, err)
				}
				if label == `le="+Inf"` {
					h.inf, h.hasInf = v, true
				} else {
					if h.started && v < h.prev {
						return 0, fmt.Errorf("line %d: non-cumulative buckets in %s", ln+1, family)
					}
					h.prev, h.started = v, true
				}
			case strings.HasSuffix(name, "_count"):
				v, _ := strconv.ParseInt(valStr, 10, 64)
				h.count, h.hasCnt = v, true
			}
		}
		samples++
	}
	for fam, h := range hists {
		if !h.hasInf {
			return 0, fmt.Errorf("histogram %s missing +Inf bucket", fam)
		}
		if h.hasCnt && h.inf != h.count {
			return 0, fmt.Errorf("histogram %s: +Inf bucket %d != count %d", fam, h.inf, h.count)
		}
		if h.started && h.prev > h.inf {
			return 0, fmt.Errorf("histogram %s: finite bucket above +Inf", fam)
		}
	}
	return samples, nil
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("maintain.txn_type.>T.count").Add(7)
	r.Counter("wal.fsync.count").Add(3)
	r.Gauge("maintain.shard.skew").Set(1.25)
	r.GaugeFunc("runtime.test.pull", func() float64 { return 42 })
	h := r.Histogram("wal.fsync.ns")
	for _, v := range []int64{0, 1, 3, 900, 70000} {
		h.Observe(v)
	}
	text := string(PrometheusText(r))

	for _, want := range []string{
		"# TYPE maintain_txn_type__T_count counter",
		"maintain_txn_type__T_count 7",
		"maintain_shard_skew 1.25",
		"runtime_test_pull 42",
		"# TYPE wal_fsync_ns histogram",
		`wal_fsync_ns_bucket{le="+Inf"} 5`,
		"wal_fsync_ns_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	n, err := lintPrometheus(text)
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
	if n < 8 {
		t.Fatalf("lint saw only %d samples:\n%s", n, text)
	}

	// Rendering is deterministic.
	if again := string(PrometheusText(r)); again != text {
		t.Fatal("exposition not deterministic")
	}
}

func TestPromLintRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_type_line 1",
		"# TYPE x counter\nx notanumber",
		"# TYPE 9bad counter\n9bad 1",
		"# TYPE h histogram\nh_bucket{le=\"3\"} 5\nh_bucket{le=\"7\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5",
	} {
		if _, err := lintPrometheus(bad); err == nil {
			t.Fatalf("lint accepted %q", bad)
		}
	}
}

// TestPromLintFile lints an externally captured exposition (the CI smoke
// leg curls /metrics in Prometheus format and points PROM_LINT_FILE at
// the result). Skips when the env var is unset.
func TestPromLintFile(t *testing.T) {
	path := os.Getenv("PROM_LINT_FILE")
	if path == "" {
		t.Skip("PROM_LINT_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := lintPrometheus(string(data))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if n == 0 {
		t.Fatalf("%s: no samples", path)
	}
	t.Logf("%s: %d samples ok", path, n)
}
