package obs

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestFlightRecordAndDecode(t *testing.T) {
	f := NewFlight(64)
	f.Record(EvWindowOpen, 0, 1, 64, 99)
	f.Record(EvShardRoute, 3, 1, 40, 0)
	f.Record(EvFsyncStart, 0, 7, 128, 0)
	f.Record(EvFsyncDone, 0, 7, 128, 0)

	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Type != EvWindowOpen || evs[0].A != 1 || evs[0].B != 64 || evs[0].C != 99 {
		t.Fatalf("bad first event: %+v", evs[0])
	}
	if evs[1].Shard != 3 {
		t.Fatalf("shard lost: %+v", evs[1])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %v then %v", evs[i-1], evs[i])
		}
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("timestamps regress: %v then %v", evs[i-1], evs[i])
		}
	}

	// Dump → decode must roundtrip.
	evs2, _, err := DecodeFlight(f.Dump())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs2) != len(evs) {
		t.Fatalf("roundtrip lost events: %d vs %d", len(evs2), len(evs))
	}
	for i := range evs {
		if evs[i] != evs2[i] {
			t.Fatalf("event %d changed in roundtrip: %+v vs %+v", i, evs[i], evs2[i])
		}
	}
}

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(64) // min size
	const total = 200
	for i := uint64(1); i <= total; i++ {
		f.Record(EvWindowOpen, 0, i, 0, 0)
	}
	if f.Total() != total {
		t.Fatalf("total %d, want %d", f.Total(), total)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d events, want 64", len(evs))
	}
	// The retained window is exactly the newest 64, in order.
	for i, e := range evs {
		want := uint64(total - 64 + i + 1)
		if e.Seq != want || e.A != want {
			t.Fatalf("slot %d: seq %d a %d, want %d", i, e.Seq, e.A, want)
		}
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(1024)
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Record(EvShardRoute, uint16(g), uint64(i), 0, 0)
				if i%16 == 0 {
					f.Events() // readers race writers by design
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Total() != goroutines*each {
		t.Fatalf("total %d, want %d", f.Total(), goroutines*each)
	}
	evs := f.Events()
	if len(evs) != 1024 {
		t.Fatalf("ring holds %d, want 1024", len(evs))
	}
}

func TestFlightRecordNoAllocs(t *testing.T) {
	f := NewFlight(256)
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(EvFsyncStart, 0, 1, 2, 3)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestFlightDisabled(t *testing.T) {
	f := NewFlight(64)
	f.SetEnabled(false)
	f.Record(EvWindowOpen, 0, 1, 0, 0)
	if f.Total() != 0 {
		t.Fatal("disabled recorder stored an event")
	}
	f.SetEnabled(true)
	f.Record(EvWindowOpen, 0, 1, 0, 0)
	if f.Total() != 1 {
		t.Fatal("re-enabled recorder dropped an event")
	}
	// Nil recorder is a no-op, not a panic.
	var nilF *FlightRecorder
	nilF.Record(EvWindowOpen, 0, 1, 0, 0)
	nilF.SetEnabled(true)
	if nilF.Events() != nil || nilF.Dump() != nil || nilF.Total() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

func TestFlightFileBacking(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.bin")
	f, err := OpenFlightFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	f.Record(EvCheckpoint, 0, 42, 0, 0)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, _, err := DecodeFlight(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EvCheckpoint || evs[0].A != 42 {
		t.Fatalf("file image wrong: %+v", evs)
	}
}

func TestSetFlightSwap(t *testing.T) {
	repl := NewFlight(64)
	old := SetFlight(repl)
	defer SetFlight(old)
	Flight().Record(EvGCPause, 0, 123, 0, 0)
	if repl.Total() != 1 {
		t.Fatal("swap did not route records to the new recorder")
	}
	if got := SetFlight(old); got != repl {
		t.Fatal("SetFlight did not return the previous recorder")
	}
	SetFlight(old)
	if _, _, err := DecodeFlight([]byte("not a flight image, way too short to matter much")); err == nil {
		t.Fatal("garbage image decoded without error")
	}
}
