package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("same name must return the same handle")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	r.GaugeFunc("a.pull", func() float64 { return 7 })

	s := r.Snapshot()
	if s.Counters["a.count"] != 5 || s.Gauges["a.gauge"] != 2.5 || s.Gauges["a.pull"] != 7 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}

	// Nil handles are safe no-ops everywhere.
	var nc *Counter
	nc.Inc()
	nc.Add(3)
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	var nr *Registry
	nr.Counter("x").Inc()
	nr.Snapshot()
}

// TestHistogramBucketBoundaries pins the power-of-two bucket layout:
// bucket b holds [2^(b-1), 2^b), so upper bounds run 0, 1, 3, 7, 15...
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1 << 20, 21},
		{1<<62 - 1, 62}, {1 << 62, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}

	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Sum != 0+1+2+3+4+7+8+100 {
		t.Fatalf("sum = %d, want 125", s.Sum)
	}
	// Cumulative counts at each power-of-two upper bound.
	want := map[uint64]int64{0: 1, 1: 2, 3: 4, 7: 6, 15: 7, 31: 7, 63: 7, 127: 8}
	for _, b := range s.Buckets {
		if w, ok := want[b.Le]; ok && b.Count != w {
			t.Errorf("bucket le=%d count = %d, want %d", b.Le, b.Count, w)
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Le != 127 || last.Count != 8 {
		t.Errorf("last bucket = %+v, want le=127 count=8", last)
	}

	if q := s.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(1.0); q != 127 {
		t.Errorf("p100 = %d, want 127", q)
	}
}

// TestConcurrentIncrements checks that counters and histograms lose no
// updates under contention (run with -race for the memory-model half).
func TestConcurrentIncrements(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	r := NewRegistry()
	c := r.Counter("conc.count")
	h := r.Histogram("conc.hist")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 1000))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*perWorker)
	}
	var wantSum int64
	for i := 0; i < perWorker; i++ {
		wantSum += int64(i % 1000)
	}
	if s.Sum != wantSum*workers {
		t.Fatalf("hist sum = %d, want %d", s.Sum, wantSum*workers)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("h").Observe(5)
	one := SnapshotJSON(r)
	two := SnapshotJSON(r)
	if string(one) != string(two) {
		t.Fatalf("snapshot JSON unstable:\n%s\nvs\n%s", one, two)
	}
	var s Snapshot
	if err := json.Unmarshal(one, &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["a"] != 1 || s.Counters["b"] != 2 {
		t.Fatalf("roundtrip mismatch: %+v", s)
	}
}
