package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Runtime bridge: pull-style gauges over runtime/metrics (heap bytes,
// goroutines, GC cycles) plus a GC-pause histogram fed from the
// runtime's exact per-cycle pause log. The ROADMAP's GC-ceiling item
// needs pause attribution against the window timeline, so every
// collected pause also lands in the flight recorder (EvGCPause) where
// it interleaves with window open/fence events.

// gcPauseHist receives one observation per completed GC cycle.
var gcPauseHist = H("runtime.gc.pause.ns")

func init() {
	// runtime/metrics samples are cheap to read but allocate the sample
	// slice; GaugeFuncs only run at snapshot time, never on hot paths.
	Default.GaugeFunc("runtime.goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	Default.GaugeFunc("runtime.heap.bytes", func() float64 {
		s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
		metrics.Read(s)
		if s[0].Value.Kind() == metrics.KindUint64 {
			return float64(s[0].Value.Uint64())
		}
		return 0
	})
	Default.GaugeFunc("runtime.gc.cycles", func() float64 {
		s := []metrics.Sample{{Name: "/gc/cycles/total:gc-cycles"}}
		metrics.Read(s)
		if s[0].Value.Kind() == metrics.KindUint64 {
			return float64(s[0].Value.Uint64())
		}
		return 0
	})
	// Cumulative heap bytes allocated: the dashboard divides interval
	// deltas by transactions to show bytes/txn live (the quantity the
	// schema-v7 long-stream bench row and -bytes-ceiling gate on).
	Default.GaugeFunc("runtime.heap.allocs.bytes", func() float64 {
		s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
		metrics.Read(s)
		if s[0].Value.Kind() == metrics.KindUint64 {
			return float64(s[0].Value.Uint64())
		}
		return 0
	})
}

var gcWatch struct {
	mu        sync.Mutex
	lastNumGC uint32
	started   atomic.Bool
	stop      chan struct{}
}

// PollGCNow collects GC pauses completed since the last poll into the
// runtime.gc.pause.ns histogram and the flight recorder. Benchmarks
// call it right before snapshotting so the tail of a run is not lost to
// the watcher's cadence; it is also the body of the EnsureGCWatch loop.
func PollGCNow() {
	gcWatch.mu.Lock()
	defer gcWatch.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	last := gcWatch.lastNumGC
	if ms.NumGC == last {
		return
	}
	// PauseNs is a ring of the 256 most recent pauses; cycle i's pause
	// sits at (i+255)%256. If more than 256 cycles elapsed between
	// polls, the overwritten ones are simply not replayed.
	from := last
	if ms.NumGC > from+256 {
		from = ms.NumGC - 256
	}
	f := Flight()
	for i := from; i < ms.NumGC; i++ {
		p := ms.PauseNs[(i+255)%256]
		gcPauseHist.Observe(int64(p))
		f.Record(EvGCPause, 0, p, uint64(i+1), 0)
	}
	gcWatch.lastNumGC = ms.NumGC
}

// EnsureGCWatch starts (once per process) a background goroutine that
// polls for completed GC cycles every interval (<= 0 means 50ms).
// Subsequent calls are no-ops regardless of interval.
func EnsureGCWatch(interval time.Duration) {
	if !gcWatch.started.CompareAndSwap(false, true) {
		return
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	gcWatch.stop = make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				PollGCNow()
			case <-gcWatch.stop:
				return
			}
		}
	}()
}
