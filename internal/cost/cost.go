// Package cost defines the monotonic cost-model interface of the paper's
// Section 3.4 ("our technique and results are applicable for any
// monotonic cost model") and its reference instance, the page-I/O model
// of Section 3.6.
package cost

import "math"

// Model prices the primitive physical operations that view maintenance
// performs. Monotonicity (evaluating an expression costs at least as much
// as evaluating any of its subexpressions) is assumed by the optimizer;
// every composite cost here is a sum of non-negative primitive costs, so
// any Model with non-negative outputs is monotonic.
type Model interface {
	// Lookup is the cost of one indexed point read returning rows tuples.
	Lookup(rows float64) float64
	// Scan is the cost of reading rows tuples without an index.
	Scan(rows float64) float64
	// Update is the cost of applying one batch of changes to a stored
	// relation: mods in-place modifications, ins insertions, dels
	// deletions, with nIdx hash indexes of which dirtyIdx must be
	// rewritten (indexed columns changed).
	Update(mods, ins, dels float64, nIdx, dirtyIdx int) float64
}

// PageIO is the cost model of Section 3.6:
//
//   - hash indexes, no overflow pages, no clustering, nothing
//     memory-resident;
//   - an indexed lookup reads one index page plus one relation page per
//     tuple returned;
//   - an unindexed read touches one page per tuple scanned;
//   - a batch update reads one index page per index (plus one write per
//     dirty index), reads one page per modified/deleted tuple and writes
//     one page per modified/inserted tuple.
//
// These conventions reproduce the paper's worked numbers exactly: the
// 10-employee department read costs 11, a single Dept lookup costs 2,
// maintaining SumOfSals under an Emp modification costs 3, maintaining
// the join view under a Dept modification costs 21.
type PageIO struct{}

// Lookup implements Model.
func (PageIO) Lookup(rows float64) float64 { return 1 + math.Max(0, rows) }

// Scan implements Model.
func (PageIO) Scan(rows float64) float64 { return math.Max(0, rows) }

// Update implements Model.
func (PageIO) Update(mods, ins, dels float64, nIdx, dirtyIdx int) float64 {
	if mods <= 0 && ins <= 0 && dels <= 0 {
		return 0
	}
	idx := float64(nIdx) + float64(dirtyIdx)
	reads := mods + dels
	writes := mods + ins
	return idx + reads + writes
}

// Uniform is a trivial alternative model charging one unit per tuple
// touched and nothing for index pages. It exists to keep the Model
// interface honest in tests (the optimizer must work under any monotonic
// model, per the paper).
type Uniform struct{}

// Lookup implements Model.
func (Uniform) Lookup(rows float64) float64 { return math.Max(0, rows) }

// Scan implements Model.
func (Uniform) Scan(rows float64) float64 { return math.Max(0, rows) }

// Update implements Model.
func (Uniform) Update(mods, ins, dels float64, nIdx, dirtyIdx int) float64 {
	return math.Max(0, mods+ins+dels)
}
