package cost

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestPageIOPaperNumbers pins the §3.6 arithmetic: the worked numbers of
// the paper's cost study fall directly out of the model.
func TestPageIOPaperNumbers(t *testing.T) {
	m := PageIO{}
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		// Indexed read of a 10-employee department: 1 index page + 10.
		{"dept group lookup", m.Lookup(10), 11},
		// Single Dept tuple by key: 1 + 1.
		{"dept tuple lookup", m.Lookup(1), 2},
		// Modify one tuple of a 1-index view: 1 + 1 read + 1 write.
		{"N3 under >Emp", m.Update(1, 0, 0, 1, 0), 3},
		// Modify ten tuples: 1 + 10 reads + 10 writes.
		{"N4 under >Dept", m.Update(10, 0, 0, 1, 0), 21},
		// Insert one tuple: index read+write... the write goes through
		// dirtyIdx; with one dirty index: 1 + 1 + 1 page write.
		{"single insert", m.Update(0, 1, 0, 1, 1), 3},
		// Nothing to do costs nothing.
		{"empty batch", m.Update(0, 0, 0, 1, 1), 0},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

// TestModelsAreNonNegative is the monotonicity precondition: all
// primitive costs are non-negative for non-negative inputs.
func TestModelsAreNonNegative(t *testing.T) {
	models := []Model{PageIO{}, Uniform{}}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := 0; i < 3; i++ {
				args[i] = reflect.ValueOf(float64(r.Intn(1000)))
			}
			args[3] = reflect.ValueOf(r.Intn(4))
			args[4] = reflect.ValueOf(r.Intn(3))
		},
	}
	prop := func(a, b, c float64, nIdx, dirty int) bool {
		for _, m := range models {
			if m.Lookup(a) < 0 || m.Scan(a) < 0 {
				return false
			}
			if m.Update(a, b, c, nIdx, dirty) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestLookupMonotoneInRows: more rows never cost less.
func TestLookupMonotoneInRows(t *testing.T) {
	for _, m := range []Model{PageIO{}, Uniform{}} {
		prev := -1.0
		for rows := 0.0; rows <= 100; rows++ {
			c := m.Lookup(rows)
			if c < prev {
				t.Fatalf("%T.Lookup not monotone at %g", m, rows)
			}
			prev = c
		}
	}
}

func TestNegativeInputsClamp(t *testing.T) {
	m := PageIO{}
	if m.Lookup(-5) != 1 {
		t.Errorf("Lookup(-5) = %g, want 1 (index page only)", m.Lookup(-5))
	}
	if m.Scan(-5) != 0 {
		t.Errorf("Scan(-5) = %g, want 0", m.Scan(-5))
	}
}
