package corpus_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/exec"
)

func TestPaperConfigStatistics(t *testing.T) {
	db := corpus.NewDatabase(corpus.PaperConfig())
	dept := db.Store.MustGet("Dept")
	emp := db.Store.MustGet("Emp")
	if dept.Card() != 1000 {
		t.Errorf("departments = %d", dept.Card())
	}
	if emp.Card() != 10000 {
		t.Errorf("employees = %d", emp.Card())
	}
	// "a uniform distribution of employees to departments": fan-out 10.
	st := emp.Def.Stats
	if got := st.Fanout("DName"); got != 10 {
		t.Errorf("Fanout(DName) = %g, want 10", got)
	}
	if dept.Def.Stats.DistinctOf("DName") != 1000 {
		t.Error("DName should be unique in Dept")
	}
	adepts := db.Store.MustGet("ADepts")
	if adepts.Card() != 20 {
		t.Errorf("ADepts = %d, want 20 (1 in 50)", adepts.Card())
	}
}

func TestBudgetsKeepViewEmpty(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 10, EmpsPerDept: 7})
	res, err := exec.NewFree(db.Store).Eval(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 0 {
		t.Errorf("ProblemDept should start empty (constraint rarely violated), got %d", res.Card())
	}
}

func TestWorkloadDeltasAgainstCurrentState(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 3, EmpsPerDept: 2})
	d, err := db.EmpSalaryDelta(1, 0, 555)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 || !d.Changes[0].IsModify() {
		t.Fatalf("delta = %v", d.Changes)
	}
	if d.Changes[0].Old[2].AsInt() != corpus.BaseSalary {
		t.Error("old side should carry the current salary")
	}
	// Apply, then a second delta must see the new state.
	db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
	d2, err := db.EmpSalaryDelta(1, 0, 777)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Changes[0].Old[2].AsInt() != 555 {
		t.Errorf("second delta old salary = %v, want 555", d2.Changes[0].Old[2])
	}
	if _, err := db.EmpSalaryDelta(99, 0, 1); err == nil {
		t.Error("missing employee should error")
	}
}

func TestFigure5DatabaseShape(t *testing.T) {
	cfg := corpus.DefaultFigure5Config()
	db := corpus.Figure5Database(cfg)
	if db.Store.MustGet("T").Card() != cfg.Items {
		t.Error("T should have one row per item")
	}
	if db.Store.MustGet("R").Card() != cfg.Items*cfg.RPerItem {
		t.Error("R cardinality wrong")
	}
	if !db.Store.MustGet("T").Def.HasKey([]string{"Item"}) {
		t.Error("Item must be a key of T")
	}
	if db.Store.MustGet("R").Def.HasKey([]string{"Item"}) {
		t.Error("Item must NOT be a key of R (Figure 5's condition)")
	}
	res, err := exec.NewFree(db.Store).Eval(db.Figure5View(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != cfg.Items {
		t.Errorf("revenue groups = %d, want %d", res.Card(), cfg.Items)
	}
}
