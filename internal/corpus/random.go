package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/delta"
	"repro/internal/expr"
	"repro/internal/txn"
	"repro/internal/value"
)

// RandomView builds a random view over the corporate schema: a join
// subset of {Emp, Dept, ADepts} on DName, optional selection, optional
// aggregation, optional projection. Every generated view is valid by
// construction, so randomized property tests (maintenance soundness,
// optimizer equivalence) can draw freely from it.
func RandomView(rng *rand.Rand, db *Database) algebra.Node {
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	dept := algebra.Scan(db.Catalog.MustGet("Dept"))
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))

	var tree algebra.Node
	switch rng.Intn(4) {
	case 0:
		tree = emp
	case 1:
		tree = algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}}, emp, dept)
	case 2:
		tree = algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "ADepts.DName"}}, emp, adepts)
	default:
		inner := algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}}, emp, dept)
		tree = algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "ADepts.DName"}}, inner, adepts)
	}
	if rng.Intn(2) == 0 {
		tree = algebra.NewSelect(
			expr.Compare(expr.GT, expr.C("Emp.Salary"), expr.IntLit(int64(rng.Intn(150)))),
			tree)
	}
	switch rng.Intn(3) {
	case 0:
		// SUM+COUNT aggregate by department.
		group := []string{"Emp.DName"}
		if tree.Schema().Has("Dept.Budget") && rng.Intn(2) == 0 {
			group = append(group, "Dept.Budget")
		}
		tree = algebra.NewAggregate(group,
			[]algebra.AggSpec{
				{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "S"},
				{Func: algebra.Count, As: "N"},
			}, tree)
		if rng.Intn(2) == 0 {
			tree = algebra.NewSelect(expr.Compare(expr.GT, expr.C("S"), expr.IntLit(0)), tree)
		}
	case 1:
		// Projection to department names (bag), optionally distinct.
		tree = algebra.NewProject(
			[]algebra.ProjectItem{{E: expr.C("Emp.DName")}}, tree)
		if rng.Intn(2) == 0 {
			tree = algebra.NewDistinct(tree)
		}
	}
	// A view must be a derived relation, not a bare base scan.
	if tree.Kind() == algebra.KindRel {
		tree = algebra.NewSelect(
			expr.Compare(expr.GE, expr.C("Emp.Salary"), expr.IntLit(0)), tree)
	}
	return tree
}

// RandomTxn builds a random single-relation transaction against the
// current database state, with its concrete delta. Returns nil when the
// intended victim row is gone.
func RandomTxn(rng *rand.Rand, db *Database, cfg Config, seq int) (*txn.Type, map[string]*delta.Delta) {
	switch rng.Intn(6) {
	case 0: // salary modify
		d, err := db.EmpSalaryDelta(rng.Intn(cfg.Departments), rng.Intn(cfg.EmpsPerDept), int64(50+rng.Intn(300)))
		if err != nil {
			return nil, nil
		}
		return &txn.Type{Name: ">Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}}, map[string]*delta.Delta{"Emp": d}
	case 1: // budget modify
		d, err := db.DeptBudgetDelta(rng.Intn(cfg.Departments), int64(500+rng.Intn(3000)))
		if err != nil {
			return nil, nil
		}
		return &txn.Type{Name: ">Dept", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}}, map[string]*delta.Delta{"Dept": d}
	case 2: // hire (sometimes into a brand-new department)
		dept := DeptName(rng.Intn(cfg.Departments))
		if rng.Intn(4) == 0 {
			dept = fmt.Sprintf("dnew%d", seq)
		}
		d := db.EmpInsertDelta(fmt.Sprintf("hire%d", seq), dept, int64(60+rng.Intn(200)))
		return &txn.Type{Name: "+Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Insert, Size: 1}}}, map[string]*delta.Delta{"Emp": d}
	case 3: // fire
		d, err := db.EmpDeleteDelta(rng.Intn(cfg.Departments), rng.Intn(cfg.EmpsPerDept))
		if err != nil {
			return nil, nil
		}
		return &txn.Type{Name: "-Emp", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Delete, Size: 1}}}, map[string]*delta.Delta{"Emp": d}
	case 4: // reclassify a department as type A
		// DName is a declared key of ADepts; the engine's key-based
		// optimizations (CoversGroups, aggregate pushdown) trust declared
		// keys, so the workload must not violate them — skip departments
		// already classified.
		name := DeptName(rng.Intn(cfg.Departments))
		rel := db.Store.MustGet("ADepts")
		was := rel.Resident
		rel.Resident = true
		existing := rel.Lookup([]string{"DName"}, value.Tuple{value.NewString(name)})
		rel.Resident = was
		if len(existing) > 0 {
			return nil, nil
		}
		d := db.ADeptsInsertDelta(name)
		return &txn.Type{Name: "+ADepts", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "ADepts", Kind: txn.Insert, Size: 1}}}, map[string]*delta.Delta{"ADepts": d}
	default: // move an employee to another department (join-key change!)
		i, j := rng.Intn(cfg.Departments), rng.Intn(cfg.EmpsPerDept)
		rel := db.Store.MustGet("Emp")
		was := rel.Resident
		rel.Resident = true
		rows := rel.Lookup([]string{"EName"}, value.Tuple{value.NewString(EmpName(i, j))})
		rel.Resident = was
		if len(rows) == 0 {
			return nil, nil
		}
		old := rows[0].Tuple.Clone()
		newT := old.Clone()
		newT[1] = value.NewString(DeptName(rng.Intn(cfg.Departments)))
		if newT.Equal(old) {
			return nil, nil
		}
		d := delta.New(rel.Def.Schema)
		d.Modify(old, newT, 1)
		return &txn.Type{Name: ">EmpDept", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"DName"}}}}, map[string]*delta.Delta{"Emp": d}
	}
}

// RandomWorkload draws a random weighted transaction-type mix over the
// corporate schema — the cost-only side of RandomTxn, for optimizer
// property tests where no concrete deltas are applied.
func RandomWorkload(rng *rand.Rand) []*txn.Type {
	pool := []*txn.Type{
		{Name: ">Emp", Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}},
		{Name: ">Dept", Updates: []txn.RelUpdate{
			{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}},
		{Name: "+Emp", Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Insert, Size: 1}}},
		{Name: "-Emp", Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Delete, Size: 1}}},
		{Name: "+ADepts", Updates: []txn.RelUpdate{
			{Rel: "ADepts", Kind: txn.Insert, Size: 1}}},
		{Name: ">EmpDept", Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"DName"}}}},
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	n := 1 + rng.Intn(len(pool))
	out := make([]*txn.Type, 0, n)
	weights := []float64{0.1, 0.5, 1, 2, 10}
	for _, t := range pool[:n] {
		out = append(out, &txn.Type{
			Name:    t.Name,
			Weight:  weights[rng.Intn(len(weights))],
			Updates: t.Updates,
		})
	}
	return out
}
