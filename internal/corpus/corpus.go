// Package corpus provides the paper's running scenarios as reusable
// fixtures: the corporate schema (Dept, Emp, ADepts), deterministic data
// generators matching Section 3.6's statistics (1000 departments, 10000
// employees, uniform 10 employees per department), and the algebra trees
// for the views ProblemDept (Example 1.1), SumOfSals, and ADeptsStatus
// (Example 3.1), plus the articulation-point view of Figure 5.
package corpus

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// Config sizes a corporate database instance.
type Config struct {
	Departments  int // number of Dept tuples
	EmpsPerDept  int // employees per department (uniform)
	ADeptsEveryN int // every Nth department is of type A (0 = no ADepts rows)
}

// PaperConfig is the instance of Section 3.6: 1000 departments, 10
// employees each, and (for Example 3.1) 1-in-50 departments of type A.
func PaperConfig() Config {
	return Config{Departments: 1000, EmpsPerDept: 10, ADeptsEveryN: 50}
}

// DeptDef returns the catalog definition of Dept(DName, MName, Budget)
// with key DName and a hash index on DName.
func DeptDef() *catalog.TableDef {
	return &catalog.TableDef{
		Name: "Dept",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "Dept", Name: "DName", Type: value.String},
			catalog.Column{Qualifier: "Dept", Name: "MName", Type: value.String},
			catalog.Column{Qualifier: "Dept", Name: "Budget", Type: value.Int},
		),
		Keys:    [][]string{{"DName"}},
		Indexes: []catalog.IndexDef{{Name: "dept_dname", Columns: []string{"DName"}}},
	}
}

// EmpDef returns the catalog definition of Emp(EName, DName, Salary) with
// key EName and a hash index on DName.
func EmpDef() *catalog.TableDef {
	return &catalog.TableDef{
		Name: "Emp",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "Emp", Name: "EName", Type: value.String},
			catalog.Column{Qualifier: "Emp", Name: "DName", Type: value.String},
			catalog.Column{Qualifier: "Emp", Name: "Salary", Type: value.Int},
		),
		Keys: [][]string{{"EName"}},
		Indexes: []catalog.IndexDef{
			{Name: "emp_dname", Columns: []string{"DName"}},
			{Name: "emp_ename", Columns: []string{"EName"}},
		},
	}
}

// ADeptsDef returns the catalog definition of ADepts(DName) with key
// DName and a hash index on DName.
func ADeptsDef() *catalog.TableDef {
	return &catalog.TableDef{
		Name: "ADepts",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "ADepts", Name: "DName", Type: value.String},
		),
		Keys:    [][]string{{"DName"}},
		Indexes: []catalog.IndexDef{{Name: "adepts_dname", Columns: []string{"DName"}}},
	}
}

// DeptName returns the name of department i (0-based).
func DeptName(i int) string { return fmt.Sprintf("d%04d", i) }

// EmpName returns the name of employee j of department i.
func EmpName(i, j int) string { return fmt.Sprintf("e%04d_%02d", i, j) }

// BaseSalary is the salary every generated employee starts with.
const BaseSalary = 100

// BudgetFor returns department i's budget: comfortably above the salary
// sum so the ProblemDept view (and the DeptConstraint assertion) starts
// empty, as the paper assumes ("the integrity constraint is rarely
// violated").
func BudgetFor(cfg Config, i int) int64 {
	return int64(cfg.EmpsPerDept*BaseSalary) + 500
}

// Database wires a catalog and a store populated per cfg.
type Database struct {
	Config  Config
	Catalog *catalog.Catalog
	Store   *storage.Store
}

// NewDatabase builds and populates a corporate database instance.
// Statistics are refreshed after loading.
func NewDatabase(cfg Config) *Database {
	cat := catalog.New()
	st := storage.NewStore()
	defs := []*catalog.TableDef{DeptDef(), EmpDef(), ADeptsDef()}
	for _, def := range defs {
		if err := cat.Add(def); err != nil {
			panic(err)
		}
		if _, err := st.Create(def); err != nil {
			panic(err)
		}
	}
	dept := st.MustGet("Dept")
	emp := st.MustGet("Emp")
	adepts := st.MustGet("ADepts")
	for i := 0; i < cfg.Departments; i++ {
		dept.LoadTuples([]value.Tuple{{
			value.NewString(DeptName(i)),
			value.NewString("m" + DeptName(i)),
			value.NewInt(BudgetFor(cfg, i)),
		}})
		for j := 0; j < cfg.EmpsPerDept; j++ {
			emp.LoadTuples([]value.Tuple{{
				value.NewString(EmpName(i, j)),
				value.NewString(DeptName(i)),
				value.NewInt(BaseSalary),
			}})
		}
		if cfg.ADeptsEveryN > 0 && i%cfg.ADeptsEveryN == 0 {
			adepts.LoadTuples([]value.Tuple{{value.NewString(DeptName(i))}})
		}
	}
	dept.RefreshStats()
	emp.RefreshStats()
	adepts.RefreshStats()
	return &Database{Config: cfg, Catalog: cat, Store: st}
}

// ProblemDept returns the algebra tree of Example 1.1 in the shape of the
// right tree of Figure 1 (aggregate above the join):
//
//	Select[SumSal > Budget](
//	  Aggregate[SUM(Salary) AS SumSal BY Dept.DName, Dept.Budget](
//	    Join[Emp.DName = Dept.DName](Emp, Dept)))
//
// The projection to DName alone is applied by callers that need the exact
// SQL output; the maintenance machinery works on this core.
func (db *Database) ProblemDept() algebra.Node {
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	dept := algebra.Scan(db.Catalog.MustGet("Dept"))
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		emp, dept,
	)
	agg := algebra.NewAggregate(
		[]string{"Dept.DName", "Dept.Budget"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "SumSal"}},
		join,
	)
	return algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("SumSal"), expr.C("Dept.Budget")),
		agg,
	)
}

// SumOfSals returns the auxiliary view of Example 1.1:
//
//	Aggregate[SUM(Salary) AS SumSal BY Emp.DName](Emp)
func (db *Database) SumOfSals() algebra.Node {
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	return algebra.NewAggregate(
		[]string{"Emp.DName"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "SumSal"}},
		emp,
	)
}

// ProblemDeptAlt returns the left tree of Figure 1 (aggregate pushed to
// Emp, then joined with Dept):
//
//	Select[SumSal > Budget](
//	  Join[Emp.DName = Dept.DName](SumOfSals, Dept))
func (db *Database) ProblemDeptAlt() algebra.Node {
	dept := algebra.Scan(db.Catalog.MustGet("Dept"))
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		db.SumOfSals(), dept,
	)
	return algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("SumSal"), expr.C("Dept.Budget")),
		join,
	)
}

// ADeptsStatus returns the view of Example 3.1:
//
//	Aggregate[SUM(Salary) BY Dept.DName, Dept.Budget](
//	  Join[Emp.DName = ADepts.DName](
//	    Join[Dept.DName = Emp.DName](Dept, Emp), ADepts))
func (db *Database) ADeptsStatus() algebra.Node {
	dept := algebra.Scan(db.Catalog.MustGet("Dept"))
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))
	inner := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Dept.DName", Right: "Emp.DName"}},
		dept, emp,
	)
	outer := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "ADepts.DName"}},
		inner, adepts,
	)
	return algebra.NewAggregate(
		[]string{"Dept.DName", "Dept.Budget"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "SumSal"}},
		outer,
	)
}
