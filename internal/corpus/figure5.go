package corpus

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// Figure5Config sizes the R/S/T sales schema of the paper's Figure 5.
type Figure5Config struct {
	Items    int // distinct items
	RPerItem int // R tuples per item (Item is NOT a key of R)
	SPerItem int // S tuples per item
}

// DefaultFigure5Config is a laptop-scale instance.
func DefaultFigure5Config() Figure5Config {
	return Figure5Config{Items: 100, RPerItem: 4, SPerItem: 5}
}

// Figure5Database builds the schema of Figure 5: R(RName, Item),
// S(Item, Quantity), T(Item, Price). Item is a key of T only — which is
// exactly why the aggregation can be pushed neither up nor down past R,
// making the aggregate's equivalence node a natural articulation point.
func Figure5Database(cfg Figure5Config) *Database {
	cat := catalog.New()
	st := storage.NewStore()
	defs := []*catalog.TableDef{
		{
			Name: "R",
			Schema: catalog.NewSchema(
				catalog.Column{Qualifier: "R", Name: "RName", Type: value.String},
				catalog.Column{Qualifier: "R", Name: "Item", Type: value.String},
			),
			Keys:    [][]string{{"RName"}},
			Indexes: []catalog.IndexDef{{Name: "r_item", Columns: []string{"Item"}}},
		},
		{
			Name: "S",
			Schema: catalog.NewSchema(
				catalog.Column{Qualifier: "S", Name: "SName", Type: value.String},
				catalog.Column{Qualifier: "S", Name: "Item", Type: value.String},
				catalog.Column{Qualifier: "S", Name: "Quantity", Type: value.Int},
			),
			Keys:    [][]string{{"SName"}},
			Indexes: []catalog.IndexDef{{Name: "s_item", Columns: []string{"Item"}}},
		},
		{
			Name: "T",
			Schema: catalog.NewSchema(
				catalog.Column{Qualifier: "T", Name: "Item", Type: value.String},
				catalog.Column{Qualifier: "T", Name: "Price", Type: value.Int},
			),
			Keys:    [][]string{{"Item"}},
			Indexes: []catalog.IndexDef{{Name: "t_item", Columns: []string{"Item"}}},
		},
	}
	for _, def := range defs {
		if err := cat.Add(def); err != nil {
			panic(err)
		}
		if _, err := st.Create(def); err != nil {
			panic(err)
		}
	}
	r, s, tt := st.MustGet("R"), st.MustGet("S"), st.MustGet("T")
	for i := 0; i < cfg.Items; i++ {
		item := fmt.Sprintf("item%03d", i)
		tt.LoadTuples([]value.Tuple{{value.NewString(item), value.NewInt(int64(10 + i%7))}})
		for j := 0; j < cfg.RPerItem; j++ {
			r.LoadTuples([]value.Tuple{{
				value.NewString(fmt.Sprintf("r%03d_%d", i, j)),
				value.NewString(item),
			}})
		}
		for j := 0; j < cfg.SPerItem; j++ {
			s.LoadTuples([]value.Tuple{{
				value.NewString(fmt.Sprintf("s%03d_%d", i, j)),
				value.NewString(item),
				value.NewInt(int64(1 + (i+j)%5)),
			}})
		}
	}
	r.RefreshStats()
	s.RefreshStats()
	tt.RefreshStats()
	return &Database{Catalog: cat, Store: st}
}

// Figure5View returns the expression of Figure 5 with a selection on top
// (an assertion-style threshold, so the aggregate's parent equivalence
// node sits strictly inside the DAG):
//
//	Select[Revenue > threshold](
//	  Aggregate[SUM(S.Quantity*T.Price) AS Revenue BY T.Item](
//	    Join[S.Item = T.Item](Join[R.Item = S.Item](R, S), T)))
//
// The aggregation cannot be pushed below the T join (its argument needs
// both S.Quantity and T.Price) and Item is not a key of R, so the
// aggregate's parent equivalence node is an articulation node.
func (db *Database) Figure5View(threshold int64) algebra.Node {
	r := algebra.Scan(db.Catalog.MustGet("R"))
	s := algebra.Scan(db.Catalog.MustGet("S"))
	t := algebra.Scan(db.Catalog.MustGet("T"))
	rs := algebra.NewJoin([]algebra.JoinCond{{Left: "R.Item", Right: "S.Item"}}, r, s)
	rst := algebra.NewJoin([]algebra.JoinCond{{Left: "S.Item", Right: "T.Item"}}, rs, t)
	agg := algebra.NewAggregate(
		[]string{"T.Item"},
		[]algebra.AggSpec{{
			Func: algebra.Sum,
			Arg:  expr.Arith{Op: expr.Times, L: expr.C("S.Quantity"), R: expr.C("T.Price")},
			As:   "Revenue",
		}},
		rst,
	)
	return algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("Revenue"), expr.IntLit(threshold)), agg)
}
