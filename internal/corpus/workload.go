package corpus

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/value"
)

// currentTuple reads a stored tuple by key columns without charging I/O.
func (db *Database) currentTuple(rel string, cols []string, key value.Tuple) (value.Tuple, error) {
	r := db.Store.MustGet(rel)
	was := r.Resident
	r.Resident = true
	rows := r.Lookup(cols, key)
	r.Resident = was
	if len(rows) == 0 {
		return nil, fmt.Errorf("corpus: no %s tuple for %v", rel, key)
	}
	return rows[0].Tuple.Clone(), nil
}

// EmpSalaryDelta builds the >Emp transaction instance: modify the salary
// of employee j of department i to newSalary, against the current state.
func (db *Database) EmpSalaryDelta(i, j int, newSalary int64) (*delta.Delta, error) {
	old, err := db.currentTuple("Emp", []string{"EName"},
		value.Tuple{value.NewString(EmpName(i, j))})
	if err != nil {
		return nil, err
	}
	newT := old.Clone()
	newT[2] = value.NewInt(newSalary)
	d := delta.New(db.Store.MustGet("Emp").Def.Schema)
	d.Modify(old, newT, 1)
	return d, nil
}

// DeptBudgetDelta builds the >Dept transaction instance: modify the
// budget of department i to newBudget.
func (db *Database) DeptBudgetDelta(i int, newBudget int64) (*delta.Delta, error) {
	old, err := db.currentTuple("Dept", []string{"DName"},
		value.Tuple{value.NewString(DeptName(i))})
	if err != nil {
		return nil, err
	}
	newT := old.Clone()
	newT[2] = value.NewInt(newBudget)
	d := delta.New(db.Store.MustGet("Dept").Def.Schema)
	d.Modify(old, newT, 1)
	return d, nil
}

// EmpInsertDelta builds an employee insertion.
func (db *Database) EmpInsertDelta(name, dept string, salary int64) *delta.Delta {
	d := delta.New(db.Store.MustGet("Emp").Def.Schema)
	d.Insert(value.Tuple{
		value.NewString(name), value.NewString(dept), value.NewInt(salary),
	}, 1)
	return d
}

// EmpDeleteDelta builds an employee deletion against the current state.
func (db *Database) EmpDeleteDelta(i, j int) (*delta.Delta, error) {
	old, err := db.currentTuple("Emp", []string{"EName"},
		value.Tuple{value.NewString(EmpName(i, j))})
	if err != nil {
		return nil, err
	}
	d := delta.New(db.Store.MustGet("Emp").Def.Schema)
	d.Delete(old, 1)
	return d, nil
}

// ADeptsInsertDelta builds an ADepts insertion.
func (db *Database) ADeptsInsertDelta(dept string) *delta.Delta {
	d := delta.New(db.Store.MustGet("ADepts").Def.Schema)
	d.Insert(value.Tuple{value.NewString(dept)}, 1)
	return d
}
