package value

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Arena bump-allocates tuples and byte scratch for one maintenance
// window. Reset rewinds it without freeing, so a steady-state window
// reuses the blocks grown by earlier windows and the allocator is only
// entered while the working set is still expanding.
//
// Ownership rule ("no tuple escapes its window"): anything handed out by
// an Arena is valid only until the next Reset. Data that must outlive
// the window — stored relation state, sidecar entries, anything keyed
// into a long-lived map — must be cloned out first (storage does this on
// first insert). The methods are nil-receiver safe and fall back to
// plain make, so code paths that run without a window arena (per-txn
// Apply, tests, oracles) need no branches.
//
// Arenas are not safe for concurrent use; the per-worker apply path
// gives each worker its own.
type Arena struct {
	blocks [][]Value
	bi     int // current block index
	off    int // next free slot in blocks[bi]

	bblocks [][]byte
	bbi     int
	boff    int

	// Blocks past these marks were allocated since the last Reset:
	// serving from them counts as grown, before them as reused.
	markV int
	markB int

	reused uint64 // bytes served from pre-existing blocks
	grown  uint64 // bytes served from blocks allocated this window
}

const (
	arenaBlockVals  = 4096      // Values per tuple block
	arenaBlockBytes = 64 * 1024 // bytes per scratch block
)

// Size is the in-memory footprint of one Value, exported for slab
// byte accounting in storage.
const Size = unsafe.Sizeof(Value{})

var valueSize = uint64(Size)

// NewTuple returns a zeroed n-column tuple from the arena (or from the
// heap when a is nil).
func (a *Arena) NewTuple(n int) Tuple {
	if a == nil {
		return make(Tuple, n)
	}
	s := a.vals(n)
	clear(s)
	return Tuple(s)
}

// CloneTuple copies t into the arena and returns the copy.
func (a *Arena) CloneTuple(t Tuple) Tuple {
	if a == nil {
		return t.Clone()
	}
	s := a.vals(len(t))
	copy(s, t)
	return Tuple(s)
}

// ConcatTuples returns l++r built in the arena — the join output shape.
func (a *Arena) ConcatTuples(l, r Tuple) Tuple {
	if a == nil {
		out := make(Tuple, 0, len(l)+len(r))
		return append(append(out, l...), r...)
	}
	s := a.vals(len(l) + len(r))
	copy(s, l)
	copy(s[len(l):], r)
	return Tuple(s)
}

func (a *Arena) vals(n int) []Value {
	for {
		if a.bi < len(a.blocks) {
			blk := a.blocks[a.bi]
			if a.off+n <= len(blk) {
				s := blk[a.off : a.off+n : a.off+n]
				a.off += n
				if a.bi < a.markV {
					a.reused += uint64(n) * valueSize
				} else {
					a.grown += uint64(n) * valueSize
				}
				return s
			}
			a.bi++
			a.off = 0
			continue
		}
		size := arenaBlockVals
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]Value, size))
	}
}

// Bytes returns a zero-length byte slice with capacity at least n whose
// appends (up to n) stay inside the arena. The slice's capacity is
// clipped so overflowing appends reallocate on the heap instead of
// clobbering a neighbor.
func (a *Arena) Bytes(n int) []byte {
	if a == nil {
		return make([]byte, 0, n)
	}
	for {
		if a.bbi < len(a.bblocks) {
			blk := a.bblocks[a.bbi]
			if a.boff+n <= len(blk) {
				s := blk[a.boff : a.boff : a.boff+n]
				a.boff += n
				if a.bbi < a.markB {
					a.reused += uint64(n)
				} else {
					a.grown += uint64(n)
				}
				return s
			}
			a.bbi++
			a.boff = 0
			continue
		}
		size := arenaBlockBytes
		if n > size {
			size = n
		}
		a.bblocks = append(a.bblocks, make([]byte, size))
	}
}

// AppendBytes copies b into the arena and returns the stable copy.
func (a *Arena) AppendBytes(b []byte) []byte {
	if a == nil {
		return append([]byte(nil), b...)
	}
	s := a.Bytes(len(b))
	return append(s, b...)
}

// Reset rewinds the arena to empty, keeping every block for reuse.
// Everything previously handed out is invalidated.
//
// Under EnableEpochChecks the blocks are retired instead of rewound:
// their address ranges are recorded in the global retired set and fresh
// blocks are allocated for the next window, so a tuple that escaped its
// window keeps pointing into memory CheckEpoch can recognize as dead.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	if epochChecks.Load() {
		retireBlocks(a.blocks)
		a.blocks = nil
		a.bblocks = nil
	}
	a.bi, a.off = 0, 0
	a.bbi, a.boff = 0, 0
	a.markV = len(a.blocks)
	a.markB = len(a.bblocks)
}

// Epoch checking (debug builds only): the arena ownership rule — "no
// tuple escapes its window" (anything an Arena hands out dies at the
// next Reset) — is normally enforced by review and the differential
// recycling tests. With checks enabled, every Reset retires its tuple
// blocks into a process-wide set of dead address ranges, and long-lived
// sinks (relation storage, the WAL collector) call CheckEpoch on each
// tuple they are handed: a tuple whose backing array lies in a retired
// range escaped an earlier window, and the check panics with both
// epochs. The gate is one atomic load, but retiring blocks defeats
// block reuse, so this stays off outside tests.
var (
	epochChecks atomic.Bool
	retiredMu   sync.Mutex
	retired     []retiredRange
	epochNow    atomic.Uint64 // bumped per retire batch ~ one per window
)

type retiredRange struct {
	lo, hi uintptr
	epoch  uint64
}

// EnableEpochChecks turns the debug epoch check on or off. Enabling
// starts with an empty retired set; disabling clears it so retained
// ranges cannot leak across tests.
func EnableEpochChecks(on bool) {
	retiredMu.Lock()
	retired = nil
	epochNow.Store(0)
	retiredMu.Unlock()
	epochChecks.Store(on)
}

// EpochChecksEnabled reports whether the debug check is armed; callers
// use it to gate CheckEpoch off the hot path.
func EpochChecksEnabled() bool { return epochChecks.Load() }

func retireBlocks(blocks [][]Value) {
	if len(blocks) == 0 {
		return
	}
	retiredMu.Lock()
	epoch := epochNow.Add(1)
	for _, blk := range blocks {
		if len(blk) == 0 {
			continue
		}
		lo := uintptr(unsafe.Pointer(&blk[0]))
		retired = append(retired, retiredRange{
			lo:    lo,
			hi:    lo + uintptr(len(blk))*uintptr(valueSize),
			epoch: epoch,
		})
	}
	retiredMu.Unlock()
}

// CheckEpoch panics if t's backing array lies inside an arena block
// retired by an earlier window's Reset — i.e. the tuple escaped its
// window. No-op (beyond one atomic load) when checks are disabled or
// for heap-allocated tuples.
func CheckEpoch(t Tuple) {
	if !epochChecks.Load() || len(t) == 0 {
		return
	}
	p := uintptr(unsafe.Pointer(&t[0]))
	retiredMu.Lock()
	for i := range retired {
		if p >= retired[i].lo && p < retired[i].hi {
			epoch := retired[i].epoch
			now := epochNow.Load()
			retiredMu.Unlock()
			panic(fmt.Sprintf(
				"value: tuple %v escaped its window: backing array retired in epoch %d (current epoch %d)",
				t, epoch, now))
		}
	}
	retiredMu.Unlock()
}

// Stats returns cumulative bytes served from retained blocks (reused)
// and from blocks newly allocated in their window (grown). A healthy
// steady state shows reused growing and grown flat.
func (a *Arena) Stats() (reused, grown uint64) {
	if a == nil {
		return 0, 0
	}
	return a.reused, a.grown
}
