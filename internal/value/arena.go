package value

import "unsafe"

// Arena bump-allocates tuples and byte scratch for one maintenance
// window. Reset rewinds it without freeing, so a steady-state window
// reuses the blocks grown by earlier windows and the allocator is only
// entered while the working set is still expanding.
//
// Ownership rule ("no tuple escapes its window"): anything handed out by
// an Arena is valid only until the next Reset. Data that must outlive
// the window — stored relation state, sidecar entries, anything keyed
// into a long-lived map — must be cloned out first (storage does this on
// first insert). The methods are nil-receiver safe and fall back to
// plain make, so code paths that run without a window arena (per-txn
// Apply, tests, oracles) need no branches.
//
// Arenas are not safe for concurrent use; the per-worker apply path
// gives each worker its own.
type Arena struct {
	blocks [][]Value
	bi     int // current block index
	off    int // next free slot in blocks[bi]

	bblocks [][]byte
	bbi     int
	boff    int

	// Blocks past these marks were allocated since the last Reset:
	// serving from them counts as grown, before them as reused.
	markV int
	markB int

	reused uint64 // bytes served from pre-existing blocks
	grown  uint64 // bytes served from blocks allocated this window
}

const (
	arenaBlockVals  = 4096      // Values per tuple block
	arenaBlockBytes = 64 * 1024 // bytes per scratch block
)

var valueSize = uint64(unsafe.Sizeof(Value{}))

// NewTuple returns a zeroed n-column tuple from the arena (or from the
// heap when a is nil).
func (a *Arena) NewTuple(n int) Tuple {
	if a == nil {
		return make(Tuple, n)
	}
	s := a.vals(n)
	clear(s)
	return Tuple(s)
}

// CloneTuple copies t into the arena and returns the copy.
func (a *Arena) CloneTuple(t Tuple) Tuple {
	if a == nil {
		return t.Clone()
	}
	s := a.vals(len(t))
	copy(s, t)
	return Tuple(s)
}

// ConcatTuples returns l++r built in the arena — the join output shape.
func (a *Arena) ConcatTuples(l, r Tuple) Tuple {
	if a == nil {
		out := make(Tuple, 0, len(l)+len(r))
		return append(append(out, l...), r...)
	}
	s := a.vals(len(l) + len(r))
	copy(s, l)
	copy(s[len(l):], r)
	return Tuple(s)
}

func (a *Arena) vals(n int) []Value {
	for {
		if a.bi < len(a.blocks) {
			blk := a.blocks[a.bi]
			if a.off+n <= len(blk) {
				s := blk[a.off : a.off+n : a.off+n]
				a.off += n
				if a.bi < a.markV {
					a.reused += uint64(n) * valueSize
				} else {
					a.grown += uint64(n) * valueSize
				}
				return s
			}
			a.bi++
			a.off = 0
			continue
		}
		size := arenaBlockVals
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]Value, size))
	}
}

// Bytes returns a zero-length byte slice with capacity at least n whose
// appends (up to n) stay inside the arena. The slice's capacity is
// clipped so overflowing appends reallocate on the heap instead of
// clobbering a neighbor.
func (a *Arena) Bytes(n int) []byte {
	if a == nil {
		return make([]byte, 0, n)
	}
	for {
		if a.bbi < len(a.bblocks) {
			blk := a.bblocks[a.bbi]
			if a.boff+n <= len(blk) {
				s := blk[a.boff : a.boff : a.boff+n]
				a.boff += n
				if a.bbi < a.markB {
					a.reused += uint64(n)
				} else {
					a.grown += uint64(n)
				}
				return s
			}
			a.bbi++
			a.boff = 0
			continue
		}
		size := arenaBlockBytes
		if n > size {
			size = n
		}
		a.bblocks = append(a.bblocks, make([]byte, size))
	}
}

// AppendBytes copies b into the arena and returns the stable copy.
func (a *Arena) AppendBytes(b []byte) []byte {
	if a == nil {
		return append([]byte(nil), b...)
	}
	s := a.Bytes(len(b))
	return append(s, b...)
}

// Reset rewinds the arena to empty, keeping every block for reuse.
// Everything previously handed out is invalidated.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.bi, a.off = 0, 0
	a.bbi, a.boff = 0, 0
	a.markV = len(a.blocks)
	a.markB = len(a.bblocks)
}

// Stats returns cumulative bytes served from retained blocks (reused)
// and from blocks newly allocated in their window (grown). A healthy
// steady state shows reused growing and grown flat.
func (a *Arena) Stats() (reused, grown uint64) {
	if a == nil {
		return 0, 0
	}
	return a.reused, a.grown
}
