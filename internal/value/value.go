// Package value defines the scalar value and tuple model shared by every
// layer of the system: the storage engine, the query executor, the delta
// propagation machinery and the SQL front end.
//
// Values are small comparable structs so they can be used directly as map
// keys (hash-index buckets, group-by keys). Tuples are slices of values
// with an explicit stable encoding for use as composite keys.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

// The supported scalar kinds. Null is its own kind, as in SQL.
const (
	Null Kind = iota
	Int
	Float
	String
	Bool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a scalar database value. The zero Value is NULL.
//
// Value is comparable (usable as a map key); only the field matching Kind
// is meaningful.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{Kind: Int, I: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{Kind: Float, F: f} }

// NewString returns a String value.
func NewString(s string) Value { return Value{Kind: String, S: s} }

// NewBool returns a Bool value.
func NewBool(b bool) Value { return Value{Kind: Bool, B: b} }

// NewNull returns the NULL value.
func NewNull() Value { return Value{} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == Null }

// AsFloat returns the numeric value of v as a float64.
// It is 0 for non-numeric values.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case Int:
		return float64(v.I)
	case Float:
		return v.F
	default:
		return 0
	}
}

// AsInt returns the numeric value of v as an int64 (truncating floats).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case Int:
		return v.I
	case Float:
		return int64(v.F)
	default:
		return 0
	}
}

// Truth reports whether v is a true boolean. NULL and non-booleans are
// false, mirroring SQL's treatment of unknown in WHERE clauses.
func (v Value) Truth() bool { return v.Kind == Bool && v.B }

// String renders the value for humans (and for canonical labels).
func (v Value) String() string {
	switch v.Kind {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return "'" + v.S + "'"
	case Bool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// numericKinds reports whether both values are numeric (Int or Float).
func numericKinds(a, b Value) bool {
	return (a.Kind == Int || a.Kind == Float) && (b.Kind == Int || b.Kind == Float)
}

// Compare orders two values: -1 if a < b, 0 if equal, +1 if a > b.
// NULL sorts before everything; cross-kind numeric comparison is by
// float value; otherwise kinds order values (NULL < numbers < strings <
// bools), which gives a total order adequate for sorting and grouping.
func Compare(a, b Value) int {
	if a.Kind == Null || b.Kind == Null {
		switch {
		case a.Kind == Null && b.Kind == Null:
			return 0
		case a.Kind == Null:
			return -1
		default:
			return 1
		}
	}
	if numericKinds(a, b) {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case String:
		return strings.Compare(a.S, b.S)
	case Bool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports whether two values compare equal (numeric cross-kind
// equality included; NULL equals NULL for grouping purposes).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns a+b with numeric promotion (Int+Int=Int, otherwise Float).
// Any NULL operand yields NULL.
func Add(a, b Value) Value { return arith(a, b, '+') }

// Sub returns a-b with numeric promotion.
func Sub(a, b Value) Value { return arith(a, b, '-') }

// Mul returns a*b with numeric promotion.
func Mul(a, b Value) Value { return arith(a, b, '*') }

// Div returns a/b as Float; division by zero yields NULL.
func Div(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return NewNull()
	}
	if b.AsFloat() == 0 {
		return NewNull()
	}
	return NewFloat(a.AsFloat() / b.AsFloat())
}

func arith(a, b Value, op byte) Value {
	if a.IsNull() || b.IsNull() {
		return NewNull()
	}
	if a.Kind == Int && b.Kind == Int {
		switch op {
		case '+':
			return NewInt(a.I + b.I)
		case '-':
			return NewInt(a.I - b.I)
		case '*':
			return NewInt(a.I * b.I)
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case '+':
		return NewFloat(af + bf)
	case '-':
		return NewFloat(af - bf)
	case '*':
		return NewFloat(af * bf)
	}
	return NewNull()
}
