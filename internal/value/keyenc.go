package value

import (
	"encoding/binary"
	"math"
)

// AppendKey appends the stable key encoding of t to dst and returns the
// extended slice. The encoding is byte-identical to Tuple.Key, so the two
// forms can be mixed freely as map keys.
func AppendKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = appendValue(dst, v)
	}
	return dst
}

// AppendProjectedKey appends the key encoding of t restricted to the
// column positions pos, without materializing the projected tuple. It is
// the allocation-free form of t.Project(pos).Key().
func AppendProjectedKey(dst []byte, t Tuple, pos []int) []byte {
	for _, j := range pos {
		dst = appendValue(dst, t[j])
	}
	return dst
}

func appendValue(dst []byte, v Value) []byte {
	var buf [8]byte
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case Int:
		binary.BigEndian.PutUint64(buf[:], uint64(v.I))
		dst = append(dst, buf[:]...)
	case Float:
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.F))
		dst = append(dst, buf[:]...)
	case String:
		binary.BigEndian.PutUint64(buf[:], uint64(len(v.S)))
		dst = append(dst, buf[:]...)
		dst = append(dst, v.S...)
	case Bool:
		if v.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return append(dst, 0xFF)
}

// KeyEncoder builds tuple keys into one reused buffer, so that hashing a
// stream of tuples (hash joins, group-by, sidecar maintenance, delta
// normalization) allocates only when a key is actually retained — a map
// lookup via string(enc.Key(t)) is allocation-free.
//
// The returned slice aliases the encoder's buffer and is invalidated by
// the next call; convert to string (or copy) before keeping it.
type KeyEncoder struct {
	buf []byte
}

// Key returns the key encoding of t in the reused buffer.
func (e *KeyEncoder) Key(t Tuple) []byte {
	e.buf = AppendKey(e.buf[:0], t)
	return e.buf
}

// ProjectedKey returns the key encoding of t restricted to pos in the
// reused buffer.
func (e *KeyEncoder) ProjectedKey(t Tuple, pos []int) []byte {
	e.buf = AppendProjectedKey(e.buf[:0], t, pos)
	return e.buf
}
