package value

import (
	"testing"
)

func encTuples() []Tuple {
	return []Tuple{
		nil,
		{},
		{NewInt(0)},
		{NewInt(-1), NewInt(1)},
		{NewFloat(3.5), NewFloat(-0.0)},
		{NewString(""), NewString("a"), NewString("ab\xffc")},
		{NewBool(true), NewBool(false)},
		{NewNull(), NewInt(7), NewString("x"), NewFloat(1e-9), NewBool(true)},
	}
}

// TestAppendKeyMatchesTupleKey pins the encoder to the canonical Tuple.Key
// encoding byte for byte: keys from either form must collide exactly.
func TestAppendKeyMatchesTupleKey(t *testing.T) {
	for _, tup := range encTuples() {
		want := tup.Key()
		if got := string(AppendKey(nil, tup)); got != want {
			t.Errorf("AppendKey(%v) = %q, want %q", tup, got, want)
		}
	}
}

// TestProjectedKeyMatchesProjectKey verifies the projection form against
// the allocate-then-encode path on every subset of positions.
func TestProjectedKeyMatchesProjectKey(t *testing.T) {
	tup := Tuple{NewInt(1), NewString("dept"), NewFloat(2.5), NewBool(false)}
	var enc KeyEncoder
	for _, pos := range [][]int{{}, {0}, {3, 1}, {0, 1, 2, 3}, {2, 2}} {
		want := tup.Project(pos).Key()
		if got := string(enc.ProjectedKey(tup, pos)); got != want {
			t.Errorf("ProjectedKey(%v, %v) = %q, want %q", tup, pos, got, want)
		}
	}
}

// TestKeyEncoderReuse confirms the buffer is reused across calls and
// distinct tuples never alias to the same bytes.
func TestKeyEncoderReuse(t *testing.T) {
	var enc KeyEncoder
	a := Tuple{NewString("long-enough-to-allocate"), NewInt(1)}
	b := Tuple{NewInt(2)}
	ka := string(enc.Key(a))
	kb := string(enc.Key(b))
	if ka == kb {
		t.Fatal("distinct tuples encoded identically")
	}
	if ka != a.Key() || kb != b.Key() {
		t.Fatal("reused buffer corrupted an encoding")
	}
}

// TestKeyInjective spot-checks that adjacent values do not collide across
// field boundaries (the 0xFF terminator plus length prefix rule).
func TestKeyInjective(t *testing.T) {
	pairs := [][2]Tuple{
		{{NewString("ab"), NewString("c")}, {NewString("a"), NewString("bc")}},
		{{NewString("a")}, {NewString("a"), NewString("")}},
		{{NewInt(1)}, {NewFloat(1)}},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("tuples %v and %v collide", p[0], p[1])
		}
	}
}

func BenchmarkTupleKey(b *testing.B) {
	tup := Tuple{NewString("e017_03"), NewString("d017"), NewInt(120)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tup.Key()
	}
}

func BenchmarkKeyEncoder(b *testing.B) {
	tup := Tuple{NewString("e017_03"), NewString("d017"), NewInt(120)}
	m := map[string]int{tup.Key(): 1}
	var enc KeyEncoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m[string(enc.Key(tup))] != 1 {
			b.Fatal("lookup failed")
		}
	}
}
