package value

import (
	"bytes"
	"testing"
)

func TestArenaNilFallback(t *testing.T) {
	var a *Arena
	tu := a.NewTuple(3)
	if len(tu) != 3 {
		t.Fatalf("NewTuple len = %d", len(tu))
	}
	src := Tuple{NewInt(1), NewString("x")}
	c := a.CloneTuple(src)
	c[0] = NewInt(9)
	if src[0].I != 1 {
		t.Fatal("nil-arena CloneTuple aliased source")
	}
	b := a.AppendBytes([]byte("hello"))
	if string(b) != "hello" {
		t.Fatalf("AppendBytes = %q", b)
	}
	a.Reset() // must not panic
	if r, g := a.Stats(); r != 0 || g != 0 {
		t.Fatalf("nil Stats = %d,%d", r, g)
	}
}

func TestArenaTuplesIndependent(t *testing.T) {
	var a Arena
	var tuples []Tuple
	for i := 0; i < 1000; i++ {
		tu := a.NewTuple(1 + i%7)
		for j := range tu {
			tu[j] = NewInt(int64(i*100 + j))
		}
		tuples = append(tuples, tu)
	}
	for i, tu := range tuples {
		for j := range tu {
			if tu[j].I != int64(i*100+j) {
				t.Fatalf("tuple %d col %d clobbered: %v", i, j, tu[j])
			}
		}
	}
	// Appending to one arena tuple must not bleed into its neighbor.
	t0 := tuples[0]
	_ = append(t0, NewInt(-1))
	if tuples[1][0].I != 100 {
		t.Fatal("append to arena tuple overwrote neighbor (cap not clipped)")
	}
}

func TestArenaZeroedAfterReuse(t *testing.T) {
	var a Arena
	tu := a.NewTuple(4)
	for j := range tu {
		tu[j] = NewString("dirty")
	}
	a.Reset()
	tu2 := a.NewTuple(4)
	for j := range tu2 {
		if tu2[j].Kind != Null || tu2[j].S != "" {
			t.Fatalf("reused tuple slot %d not zeroed: %+v", j, tu2[j])
		}
	}
}

func TestArenaResetReuse(t *testing.T) {
	var a Arena
	// First window grows.
	for i := 0; i < 3*arenaBlockVals/4; i++ {
		a.NewTuple(4)
	}
	_, grown1 := a.Stats()
	if grown1 == 0 {
		t.Fatal("first window reported zero growth")
	}
	a.Reset()
	// Steady-state windows of the same size must be pure reuse.
	for w := 0; w < 5; w++ {
		for i := 0; i < 3*arenaBlockVals/4; i++ {
			a.NewTuple(4)
		}
		a.Reset()
	}
	reused, grown2 := a.Stats()
	if grown2 != grown1 {
		t.Fatalf("steady-state windows grew: %d -> %d", grown1, grown2)
	}
	if reused == 0 {
		t.Fatal("steady-state windows reported zero reuse")
	}
}

func TestArenaOversizeAlloc(t *testing.T) {
	var a Arena
	big := a.NewTuple(arenaBlockVals * 3)
	if len(big) != arenaBlockVals*3 {
		t.Fatalf("oversize tuple len = %d", len(big))
	}
	small := a.NewTuple(2)
	small[0] = NewInt(7)
	if big[0].Kind != Null {
		t.Fatal("small alloc clobbered oversize block")
	}
	bb := a.AppendBytes(bytes.Repeat([]byte{0xAB}, arenaBlockBytes*2))
	if len(bb) != arenaBlockBytes*2 {
		t.Fatalf("oversize bytes len = %d", len(bb))
	}
}

func TestArenaBytesNoAlias(t *testing.T) {
	var a Arena
	b1 := a.AppendBytes([]byte("first-key"))
	b2 := a.AppendBytes([]byte("second-key"))
	if string(b1) != "first-key" || string(b2) != "second-key" {
		t.Fatalf("arena bytes corrupted: %q %q", b1, b2)
	}
	// Appending past b1's clipped cap must not touch b2.
	_ = append(b1, []byte("XXXXXXXXXXXXXXXX")...)
	if string(b2) != "second-key" {
		t.Fatal("append past Bytes cap clobbered neighbor")
	}
}
