package value

import (
	"strings"
)

// Tuple is an ordered list of values, positionally aligned with a schema.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have the same length and pairwise
// equal values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !Equal(t[i], o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	default:
		return 0
	}
}

// Project returns the tuple restricted to the given column positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Key returns a stable byte-exact string encoding of the tuple, suitable
// as a map key for hashing, grouping and duplicate detection. Numeric
// values that compare equal encode identically (ints are widened to the
// float encoding only when they carry a fractional-free float peer is not
// knowable here, so ints and floats encode distinctly by design: mixed
// int/float grouping keys are normalized by the executor before hashing).
func (t Tuple) Key() string {
	return string(AppendKey(make([]byte, 0, 16*len(t)), t))
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
