package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewNull(), NewInt(0), -1},
		{NewInt(0), NewNull(), 1},
		{NewNull(), NewNull(), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// genValue produces an arbitrary Value for property tests.
func genValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return NewNull()
	case 1:
		return NewInt(int64(r.Intn(21) - 10))
	case 2:
		return NewFloat(float64(r.Intn(21)-10) / 2)
	case 3:
		return NewString(string(rune('a' + r.Intn(4))))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(genValue(r))
			args[1] = reflect.ValueOf(genValue(r))
			args[2] = reflect.ValueOf(genValue(r))
		},
	}
	// Antisymmetry and transitivity of the order.
	prop := func(a, b, c Value) bool {
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		if Compare(a, a) != 0 {
			return false
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(NewInt(2), NewInt(3)); got != NewInt(5) {
		t.Errorf("2+3 = %v", got)
	}
	if got := Add(NewInt(2), NewFloat(0.5)); got != NewFloat(2.5) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := Sub(NewInt(2), NewInt(3)); got != NewInt(-1) {
		t.Errorf("2-3 = %v", got)
	}
	if got := Mul(NewInt(4), NewInt(3)); got != NewInt(12) {
		t.Errorf("4*3 = %v", got)
	}
	if got := Div(NewInt(3), NewInt(2)); got != NewFloat(1.5) {
		t.Errorf("3/2 = %v", got)
	}
	if got := Div(NewInt(3), NewInt(0)); !got.IsNull() {
		t.Errorf("3/0 = %v, want NULL", got)
	}
	if got := Add(NewNull(), NewInt(1)); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  NewNull(),
		"42":    NewInt(42),
		"1.5":   NewFloat(1.5),
		"'hi'":  NewString("hi"),
		"TRUE":  NewBool(true),
		"FALSE": NewBool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestTruth(t *testing.T) {
	if !NewBool(true).Truth() {
		t.Error("TRUE should be truthy")
	}
	for _, v := range []Value{NewBool(false), NewNull(), NewInt(1), NewString("t")} {
		if v.Truth() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func genTuple(r *rand.Rand) Tuple {
	n := r.Intn(4)
	t := make(Tuple, n)
	for i := range t {
		t[i] = genValue(r)
	}
	return t
}

func TestTupleKeyAgreesWithEqual(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 4000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(genTuple(r))
			args[1] = reflect.ValueOf(genTuple(r))
		},
	}
	// Key equality must coincide with tuple equality for same-kind
	// tuples; for mixed numeric kinds Key intentionally distinguishes
	// (the executor normalizes), so restrict the check to exact equality.
	prop := func(a, b Tuple) bool {
		if a.Key() == b.Key() {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestTupleCompareLexicographic(t *testing.T) {
	a := Tuple{NewInt(1), NewString("b")}
	b := Tuple{NewInt(1), NewString("c")}
	if a.Compare(b) >= 0 {
		t.Error("(1,b) should sort before (1,c)")
	}
	short := Tuple{NewInt(1)}
	if short.Compare(a) >= 0 {
		t.Error("prefix should sort before longer tuple")
	}
	if a.Compare(a) != 0 {
		t.Error("tuple should equal itself")
	}
}

func TestTupleProjectAndClone(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x"), NewFloat(2.5)}
	p := a.Project([]int{2, 0})
	want := Tuple{NewFloat(2.5), NewInt(1)}
	if !p.Equal(want) {
		t.Errorf("Project = %v, want %v", p, want)
	}
	c := a.Clone()
	c[0] = NewInt(9)
	if a[0] != NewInt(1) {
		t.Error("Clone must not alias the original")
	}
}

func TestTupleKeyInjectiveOnStrings(t *testing.T) {
	// Adjacent strings must not collide through the length-prefixed
	// encoding: ("ab","c") vs ("a","bc").
	a := Tuple{NewString("ab"), NewString("c")}
	b := Tuple{NewString("a"), NewString("bc")}
	if a.Key() == b.Key() {
		t.Error("string boundary collision in Tuple.Key")
	}
}

// TestArithmeticLaws: quick-check algebraic laws of the numeric model
// (commutativity, associativity on ints, identity, NULL absorption).
func TestArithmeticLaws(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 3000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(NewInt(int64(r.Intn(201) - 100)))
			}
		},
	}
	prop := func(a, b, c Value) bool {
		if Add(a, b) != Add(b, a) || Mul(a, b) != Mul(b, a) {
			return false
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Add(a, NewInt(0)) != a || Mul(a, NewInt(1)) != a {
			return false
		}
		if !Add(a, NewNull()).IsNull() || !Mul(NewNull(), b).IsNull() ||
			!Sub(a, NewNull()).IsNull() || !Div(NewNull(), b).IsNull() {
			return false
		}
		// Sub is the inverse of Add.
		if Sub(Add(a, b), b) != a {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestCompareConsistentWithArithmetic: a < b implies a+c < b+c.
func TestCompareConsistentWithArithmetic(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(NewInt(int64(r.Intn(201) - 100)))
			}
		},
	}
	prop := func(a, b, c Value) bool {
		return Compare(a, b) == Compare(Add(a, c), Add(b, c))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
