package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt reports a byte string that is not a valid value encoding.
// Decoders wrap it so callers can errors.Is-match corruption regardless
// of which layer detected it.
var ErrCorrupt = errors.New("value: corrupt encoding")

// DecodeValue decodes one value from the front of b — the exact inverse
// of the key encoding appendValue produces (kind byte, fixed-width or
// length-prefixed payload, 0xFF terminator) — and returns the remaining
// bytes. The same bytes the engine hashes as map keys are therefore the
// WAL's on-disk tuple format; no second serialization exists.
//
// DecodeValue is corruption-robust: any truncated, over-long or
// malformed input returns ErrCorrupt (never a panic, never an invented
// value), which is what lets the log scanner treat a failed decode as
// the torn tail of a crashed write.
func DecodeValue(b []byte) (Value, []byte, error) {
	if len(b) < 2 {
		return Value{}, nil, fmt.Errorf("%w: truncated value", ErrCorrupt)
	}
	kind := Kind(b[0])
	rest := b[1:]
	var v Value
	switch kind {
	case Null:
		v = Value{Kind: Null}
	case Int:
		if len(rest) < 8 {
			return Value{}, nil, fmt.Errorf("%w: truncated int", ErrCorrupt)
		}
		v = NewInt(int64(binary.BigEndian.Uint64(rest)))
		rest = rest[8:]
	case Float:
		if len(rest) < 8 {
			return Value{}, nil, fmt.Errorf("%w: truncated float", ErrCorrupt)
		}
		v = NewFloat(math.Float64frombits(binary.BigEndian.Uint64(rest)))
		rest = rest[8:]
	case String:
		if len(rest) < 8 {
			return Value{}, nil, fmt.Errorf("%w: truncated string length", ErrCorrupt)
		}
		n := binary.BigEndian.Uint64(rest)
		rest = rest[8:]
		// Bound by the remaining bytes before allocating: a corrupt
		// length must fail cleanly, not attempt a huge allocation.
		if n > uint64(len(rest)) {
			return Value{}, nil, fmt.Errorf("%w: string length %d exceeds input", ErrCorrupt, n)
		}
		v = NewString(string(rest[:n]))
		rest = rest[n:]
	case Bool:
		if len(rest) < 1 {
			return Value{}, nil, fmt.Errorf("%w: truncated bool", ErrCorrupt)
		}
		switch rest[0] {
		case 0:
			v = NewBool(false)
		case 1:
			v = NewBool(true)
		default:
			return Value{}, nil, fmt.Errorf("%w: bool byte %d", ErrCorrupt, rest[0])
		}
		rest = rest[1:]
	default:
		return Value{}, nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, b[0])
	}
	if len(rest) < 1 || rest[0] != 0xFF {
		return Value{}, nil, fmt.Errorf("%w: missing terminator", ErrCorrupt)
	}
	return v, rest[1:], nil
}
