package catalog

import (
	"testing"

	"repro/internal/value"
)

func deptSchema() *Schema {
	return NewSchema(
		Column{Qualifier: "Dept", Name: "DName", Type: value.String},
		Column{Qualifier: "Dept", Name: "MName", Type: value.String},
		Column{Qualifier: "Dept", Name: "Budget", Type: value.Int},
	)
}

func TestResolveQualifiedAndBare(t *testing.T) {
	s := deptSchema()
	if i, err := s.Resolve("Dept.Budget"); err != nil || i != 2 {
		t.Errorf("Resolve(Dept.Budget) = %d, %v", i, err)
	}
	if i, err := s.Resolve("Budget"); err != nil || i != 2 {
		t.Errorf("Resolve(Budget) = %d, %v", i, err)
	}
	if _, err := s.Resolve("Nope"); err == nil {
		t.Error("Resolve(Nope) should fail")
	}
}

func TestResolveAmbiguous(t *testing.T) {
	s := NewSchema(
		Column{Qualifier: "Emp", Name: "DName", Type: value.String},
		Column{Qualifier: "Dept", Name: "DName", Type: value.String},
	)
	if _, err := s.Resolve("DName"); err == nil {
		t.Error("bare DName should be ambiguous")
	}
	if i, err := s.Resolve("Emp.DName"); err != nil || i != 0 {
		t.Errorf("Resolve(Emp.DName) = %d, %v", i, err)
	}
	if i, err := s.Resolve("Dept.DName"); err != nil || i != 1 {
		t.Errorf("Resolve(Dept.DName) = %d, %v", i, err)
	}
}

func TestConcatKeepsOrder(t *testing.T) {
	a := NewSchema(Column{Qualifier: "A", Name: "x"})
	b := NewSchema(Column{Qualifier: "B", Name: "y"})
	c := a.Concat(b)
	if c.Len() != 2 || c.Cols[0].QName() != "A.x" || c.Cols[1].QName() != "B.y" {
		t.Errorf("Concat = %s", c)
	}
	// Concat must not alias the inputs.
	c.Cols[0].Name = "z"
	if a.Cols[0].Name != "x" {
		t.Error("Concat aliased its input")
	}
}

func TestHasKey(t *testing.T) {
	def := &TableDef{
		Name:   "Dept",
		Schema: deptSchema(),
		Keys:   [][]string{{"DName"}},
	}
	if !def.HasKey([]string{"DName"}) {
		t.Error("DName should be a key")
	}
	if !def.HasKey([]string{"Dept.DName", "Budget"}) {
		t.Error("supersets of a key are keys")
	}
	if def.HasKey([]string{"Budget"}) {
		t.Error("Budget is not a key")
	}
	if def.HasKey(nil) {
		t.Error("empty set is never a key")
	}
}

func TestIndexOn(t *testing.T) {
	def := &TableDef{
		Name:    "Dept",
		Schema:  deptSchema(),
		Indexes: []IndexDef{{Name: "ix", Columns: []string{"DName"}}},
	}
	if !def.IndexOn([]string{"DName"}) {
		t.Error("index on DName should be found")
	}
	if !def.IndexOn([]string{"Dept.DName"}) {
		t.Error("qualified lookup should match bare index column")
	}
	if def.IndexOn([]string{"Budget"}) {
		t.Error("no index on Budget")
	}
}

func TestStats(t *testing.T) {
	s := Stats{Card: 10000, Distinct: map[string]float64{"DName": 1000}}
	if got := s.Fanout("DName"); got != 10 {
		t.Errorf("Fanout(DName) = %g, want 10", got)
	}
	if got := s.DistinctOf("EName"); got != 10000 {
		t.Errorf("DistinctOf(unknown) = %g, want Card", got)
	}
	empty := Stats{}
	if got := empty.DistinctOf("x"); got != 1 {
		t.Errorf("DistinctOf on empty stats = %g, want 1", got)
	}
}

func TestCatalogAddGetDrop(t *testing.T) {
	c := New()
	def := &TableDef{Name: "Dept", Schema: deptSchema()}
	if err := c.Add(def); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(def); err == nil {
		t.Error("duplicate Add should fail")
	}
	if got, ok := c.Get("Dept"); !ok || got != def {
		t.Error("Get(Dept) failed")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "Dept" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("Dept")
	if _, ok := c.Get("Dept"); ok {
		t.Error("Dept should be dropped")
	}
	if len(c.Names()) != 0 {
		t.Error("Names should be empty after drop")
	}
}
