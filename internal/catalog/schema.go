// Package catalog holds schemas, keys, index declarations and statistics
// for base relations and derived views. It is the shared vocabulary of the
// algebra, the storage engine, the executor and the cost model.
package catalog

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Column is a named, typed attribute. Name is the bare column name;
// Qualifier is the relation or view alias it came from ("" for computed
// columns that belong to no base relation).
type Column struct {
	Qualifier string
	Name      string
	Type      value.Kind
}

// QName returns the qualified name "Qualifier.Name" (or just Name when
// unqualified).
func (c Column) QName() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Resolve finds the position of a column by name. The name may be
// qualified ("Dept.DName") or bare ("DName"). A bare name that matches
// more than one column is ambiguous and returns an error; an exact
// qualified match is never ambiguous.
func (s *Schema) Resolve(name string) (int, error) {
	qualified := false
	bare := name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		qualified = true
		q, n := name[:i], name[i+1:]
		bare = n
		for j, c := range s.Cols {
			if c.Qualifier == q && c.Name == n {
				return j, nil
			}
		}
		// Fall through: a qualified name may still refer to a view
		// column stored without a qualifier (e.g. a renamed aggregate
		// output); but it must never match a column that carries a
		// *different* qualifier.
	}
	found := -1
	for j, c := range s.Cols {
		if c.Name != bare {
			continue
		}
		if qualified && c.Qualifier != "" {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("catalog: ambiguous column %q", name)
		}
		found = j
	}
	if found < 0 {
		return 0, fmt.Errorf("catalog: unknown column %q in schema %s", name, s)
	}
	return found, nil
}

// MustResolve is Resolve that panics on error; for internal call sites
// where the column set has already been validated.
func (s *Schema) MustResolve(name string) int {
	i, err := s.Resolve(name)
	if err != nil {
		panic(err)
	}
	return i
}

// Has reports whether the schema can resolve name unambiguously.
func (s *Schema) Has(name string) bool {
	_, err := s.Resolve(name)
	return err == nil
}

// Concat returns a new schema with o's columns appended (join output).
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(o.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, o.Cols...)
	return &Schema{Cols: cols}
}

// ColumnNames returns the qualified names of all columns, in order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.QName()
	}
	return out
}

// String renders the schema as (a, b, ...).
func (s *Schema) String() string {
	return "(" + strings.Join(s.ColumnNames(), ", ") + ")"
}
