package catalog

import (
	"fmt"
	"sort"
)

// Stats carries the statistics the cost model and delta-size estimator
// need about a stored relation or view. All figures are estimates; the
// storage engine refreshes them after bulk loads.
type Stats struct {
	// Card is the number of tuples.
	Card float64
	// Distinct maps a bare column name to its number of distinct values.
	// Missing entries default to Card (i.e., assume unique).
	Distinct map[string]float64
}

// DistinctOf returns the distinct-value count for a column, defaulting to
// the relation cardinality (and at least 1).
func (s Stats) DistinctOf(col string) float64 {
	if s.Distinct != nil {
		if d, ok := s.Distinct[col]; ok && d > 0 {
			return d
		}
	}
	if s.Card < 1 {
		return 1
	}
	return s.Card
}

// Fanout returns the expected number of tuples sharing one value of col:
// Card / Distinct(col), at least 1 when the relation is non-empty.
func (s Stats) Fanout(col string) float64 {
	d := s.DistinctOf(col)
	if d <= 0 {
		return 0
	}
	f := s.Card / d
	if f < 1 && s.Card >= 1 {
		return 1
	}
	return f
}

// IndexDef declares a hash index on one or more columns of a relation.
// The paper's examples use single-column hash indexes on DName.
type IndexDef struct {
	Name    string
	Columns []string
}

// TableDef is the catalog entry for a base relation or a materialized
// view's backing store.
type TableDef struct {
	Name    string
	Schema  *Schema
	Keys    [][]string // candidate keys, each a set of bare column names
	Indexes []IndexDef
	Stats   Stats
}

// HasKey reports whether cols (bare names) is a superset of some declared
// candidate key — i.e., whether cols functionally determines the tuple.
func (t *TableDef) HasKey(cols []string) bool {
	set := map[string]bool{}
	for _, c := range cols {
		set[bare(c)] = true
	}
	for _, key := range t.Keys {
		all := true
		for _, k := range key {
			if !set[k] {
				all = false
				break
			}
		}
		if all && len(key) > 0 {
			return true
		}
	}
	return false
}

// IndexOn reports whether the relation has a hash index whose columns are
// exactly cols (order-insensitive, bare names).
func (t *TableDef) IndexOn(cols []string) bool {
	want := normalize(cols)
	for _, ix := range t.Indexes {
		if equalStringSets(normalize(ix.Columns), want) {
			return true
		}
	}
	return false
}

func bare(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

func normalize(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = bare(c)
	}
	sort.Strings(out)
	return out
}

func equalStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Catalog is the collection of table definitions known to a database.
type Catalog struct {
	tables map[string]*TableDef
	order  []string
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*TableDef{}}
}

// Add registers a table definition. It is an error to register the same
// name twice.
func (c *Catalog) Add(def *TableDef) error {
	if _, ok := c.tables[def.Name]; ok {
		return fmt.Errorf("catalog: relation %q already exists", def.Name)
	}
	c.tables[def.Name] = def
	c.order = append(c.order, def.Name)
	return nil
}

// Drop removes a table definition.
func (c *Catalog) Drop(name string) {
	if _, ok := c.tables[name]; !ok {
		return
	}
	delete(c.tables, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Get looks up a table definition.
func (c *Catalog) Get(name string) (*TableDef, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// MustGet looks up a table definition, panicking if absent.
func (c *Catalog) MustGet(name string) *TableDef {
	t, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown relation %q", name))
	}
	return t
}

// Names returns the registered relation names in registration order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}
