// Package algebra defines the logical relational algebra the whole system
// operates on: base-relation scans, selection, projection, equijoin,
// grouping/aggregation, duplicate elimination, and bag union/difference.
//
// Nodes are immutable trees. Every node has a canonical Label used as the
// identity of its result set during initial expression-DAG construction,
// and an OpLabel (operator signature without children) used to deduplicate
// operation nodes inside the memo.
package algebra

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/value"
)

// Kind identifies the operator of a node.
type Kind uint8

// Operator kinds.
const (
	KindRel Kind = iota
	KindSelect
	KindProject
	KindJoin
	KindAggregate
	KindDistinct
	KindUnion
	KindDiff
)

// String returns the operator name.
func (k Kind) String() string {
	switch k {
	case KindRel:
		return "Rel"
	case KindSelect:
		return "Select"
	case KindProject:
		return "Project"
	case KindJoin:
		return "Join"
	case KindAggregate:
		return "Aggregate"
	case KindDistinct:
		return "Distinct"
	case KindUnion:
		return "Union"
	case KindDiff:
		return "Diff"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is a logical algebra operator tree.
type Node interface {
	// Kind identifies the operator.
	Kind() Kind
	// Schema is the output schema of the node.
	Schema() *catalog.Schema
	// Children returns the input subtrees (empty for leaves).
	Children() []Node
	// WithChildren returns a copy of the node with the inputs replaced.
	// len(children) must match.
	WithChildren(children []Node) Node
	// Label is the canonical full-expression string (includes children).
	Label() string
	// OpLabel is the operator signature excluding children; two nodes
	// with equal OpLabels and pairwise-equivalent children compute
	// equivalent results.
	OpLabel() string
}

// TypeOf infers the value kind of a scalar expression under a schema.
func TypeOf(e expr.Expr, s *catalog.Schema) value.Kind {
	switch t := e.(type) {
	case expr.Col:
		if i, err := s.Resolve(t.Name); err == nil {
			return s.Cols[i].Type
		}
		return value.Null
	case expr.Lit:
		return t.V.Kind
	case expr.Arith:
		l, r := TypeOf(t.L, s), TypeOf(t.R, s)
		if t.Op == expr.Over || l == value.Float || r == value.Float {
			return value.Float
		}
		return value.Int
	case expr.Cmp, expr.And, expr.Or, expr.Not:
		return value.Bool
	default:
		return value.Null
	}
}
