package algebra

import (
	"sort"
	"strings"
)

// BaseRelations returns the sorted, deduplicated names of the base
// relations appearing under n.
func BaseRelations(n Node) []string {
	set := map[string]bool{}
	var walk func(Node)
	walk = func(m Node) {
		if r, ok := m.(*Rel); ok {
			set[r.Def.Name] = true
			return
		}
		for _, c := range m.Children() {
			walk(c)
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two trees are structurally identical (same
// canonical label).
func Equal(a, b Node) bool { return a.Label() == b.Label() }

// CountNodes returns the number of operator nodes in the tree, leaves
// included.
func CountNodes(n Node) int {
	total := 1
	for _, c := range n.Children() {
		total += CountNodes(c)
	}
	return total
}

// Render draws the tree as indented ASCII, one operator per line, in the
// style of the paper's figures (Figures 1, 3 and 5).
func Render(n Node) string {
	var b strings.Builder
	var walk func(m Node, prefix string, last bool, root bool)
	walk = func(m Node, prefix string, last, root bool) {
		label := m.OpLabel()
		if r, ok := m.(*Rel); ok {
			label = r.Def.Name
		}
		if root {
			b.WriteString(label + "\n")
		} else {
			connector := "├── "
			if last {
				connector = "└── "
			}
			b.WriteString(prefix + connector + label + "\n")
		}
		children := m.Children()
		for i, c := range children {
			childPrefix := prefix
			if !root {
				if last {
					childPrefix += "    "
				} else {
					childPrefix += "│   "
				}
			}
			walk(c, childPrefix, i == len(children)-1, false)
		}
	}
	walk(n, "", true, true)
	return b.String()
}
