package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/value"
)

// Rel is a base-relation leaf.
type Rel struct {
	Def *catalog.TableDef
}

// Scan returns a leaf over the given table definition.
func Scan(def *catalog.TableDef) *Rel { return &Rel{Def: def} }

// Kind implements Node.
func (r *Rel) Kind() Kind { return KindRel }

// Schema implements Node.
func (r *Rel) Schema() *catalog.Schema { return r.Def.Schema }

// Children implements Node.
func (r *Rel) Children() []Node { return nil }

// WithChildren implements Node.
func (r *Rel) WithChildren(children []Node) Node {
	if len(children) != 0 {
		panic("algebra: Rel takes no children")
	}
	return r
}

// Label implements Node.
func (r *Rel) Label() string { return r.Def.Name }

// OpLabel implements Node.
func (r *Rel) OpLabel() string { return "Rel[" + r.Def.Name + "]" }

// Select filters its input by a predicate.
type Select struct {
	Pred  expr.Expr
	Input Node
}

// NewSelect builds a selection.
func NewSelect(pred expr.Expr, in Node) *Select { return &Select{Pred: pred, Input: in} }

// Kind implements Node.
func (s *Select) Kind() Kind { return KindSelect }

// Schema implements Node.
func (s *Select) Schema() *catalog.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Input} }

// WithChildren implements Node.
func (s *Select) WithChildren(children []Node) Node {
	return &Select{Pred: s.Pred, Input: one(children)}
}

// Label implements Node.
func (s *Select) Label() string {
	return fmt.Sprintf("Select[%s](%s)", s.Pred, s.Input.Label())
}

// OpLabel implements Node.
func (s *Select) OpLabel() string { return fmt.Sprintf("Select[%s]", s.Pred) }

// ProjectItem is one output column of a projection: an expression and its
// output name. When As is empty and E is a bare column reference the
// original column (name and qualifier) is kept.
type ProjectItem struct {
	E  expr.Expr
	As string
}

// String renders the item as "expr" or "expr AS name".
func (p ProjectItem) String() string {
	if p.As == "" {
		return p.E.String()
	}
	return fmt.Sprintf("%s AS %s", p.E, p.As)
}

// Project computes a list of output columns from its input.
type Project struct {
	Items []ProjectItem
	Input Node

	schema *catalog.Schema
}

// NewProject builds a projection.
func NewProject(items []ProjectItem, in Node) *Project {
	return &Project{Items: items, Input: in}
}

// Kind implements Node.
func (p *Project) Kind() Kind { return KindProject }

// Schema implements Node.
func (p *Project) Schema() *catalog.Schema {
	if p.schema == nil {
		in := p.Input.Schema()
		cols := make([]catalog.Column, len(p.Items))
		for i, it := range p.Items {
			if c, ok := it.E.(expr.Col); ok && it.As == "" {
				if j, err := in.Resolve(c.Name); err == nil {
					cols[i] = in.Cols[j]
					continue
				}
			}
			name := it.As
			if name == "" {
				name = it.E.String()
			}
			cols[i] = catalog.Column{Name: name, Type: TypeOf(it.E, in)}
		}
		p.schema = catalog.NewSchema(cols...)
	}
	return p.schema
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// WithChildren implements Node.
func (p *Project) WithChildren(children []Node) Node {
	return &Project{Items: p.Items, Input: one(children)}
}

// Label implements Node.
func (p *Project) Label() string {
	return fmt.Sprintf("%s(%s)", p.OpLabel(), p.Input.Label())
}

// OpLabel implements Node.
func (p *Project) OpLabel() string {
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.String()
	}
	return fmt.Sprintf("Project[%s]", strings.Join(parts, ", "))
}

// JoinCond is one equality column pair of an equijoin: Left names a column
// of the left input, Right of the right input.
type JoinCond struct {
	Left, Right string
}

// String renders the equality condition.
func (jc JoinCond) String() string { return jc.Left + "=" + jc.Right }

// Join is a bag equijoin on one or more column pairs, with an optional
// residual predicate evaluated over the concatenated schema.
type Join struct {
	On       []JoinCond
	Residual expr.Expr // nil when absent
	L, R     Node

	schema *catalog.Schema
}

// NewJoin builds an equijoin.
func NewJoin(on []JoinCond, l, r Node) *Join { return &Join{On: on, L: l, R: r} }

// Kind implements Node.
func (j *Join) Kind() Kind { return KindJoin }

// Schema implements Node.
func (j *Join) Schema() *catalog.Schema {
	if j.schema == nil {
		j.schema = j.L.Schema().Concat(j.R.Schema())
	}
	return j.schema
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// WithChildren implements Node.
func (j *Join) WithChildren(children []Node) Node {
	l, r := two(children)
	return &Join{On: j.On, Residual: j.Residual, L: l, R: r}
}

// Label implements Node.
func (j *Join) Label() string {
	return fmt.Sprintf("%s(%s, %s)", j.OpLabel(), j.L.Label(), j.R.Label())
}

// OpLabel implements Node.
func (j *Join) OpLabel() string {
	conds := make([]string, len(j.On))
	for i, c := range j.On {
		conds[i] = c.String()
	}
	sort.Strings(conds)
	s := fmt.Sprintf("Join[%s]", strings.Join(conds, " AND "))
	if j.Residual != nil {
		s += fmt.Sprintf("[%s]", j.Residual)
	}
	return s
}

// LeftCols returns the left-side join columns.
func (j *Join) LeftCols() []string {
	out := make([]string, len(j.On))
	for i, c := range j.On {
		out[i] = c.Left
	}
	return out
}

// RightCols returns the right-side join columns.
func (j *Join) RightCols() []string {
	out := make([]string, len(j.On))
	for i, c := range j.On {
		out[i] = c.Right
	}
	return out
}

// AggFunc is an aggregate function name.
type AggFunc string

// Aggregate functions.
const (
	Sum   AggFunc = "SUM"
	Count AggFunc = "COUNT"
	Avg   AggFunc = "AVG"
	Min   AggFunc = "MIN"
	Max   AggFunc = "MAX"
)

// AggSpec is one aggregate output: FUNC(Arg) AS As. Arg is nil for
// COUNT(*).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
	As   string
}

// String renders the aggregate as FUNC(arg) AS name.
func (a AggSpec) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.As)
}

// Aggregate groups its input by GroupBy columns and computes the Aggs.
// Output schema is the group columns (originals) followed by one column
// per aggregate.
type Aggregate struct {
	GroupBy []string
	Aggs    []AggSpec
	Input   Node

	schema *catalog.Schema
}

// NewAggregate builds a grouping/aggregation.
func NewAggregate(groupBy []string, aggs []AggSpec, in Node) *Aggregate {
	return &Aggregate{GroupBy: groupBy, Aggs: aggs, Input: in}
}

// Kind implements Node.
func (a *Aggregate) Kind() Kind { return KindAggregate }

// Schema implements Node.
func (a *Aggregate) Schema() *catalog.Schema {
	if a.schema == nil {
		in := a.Input.Schema()
		cols := make([]catalog.Column, 0, len(a.GroupBy)+len(a.Aggs))
		for _, g := range a.GroupBy {
			cols = append(cols, in.Cols[in.MustResolve(g)])
		}
		for _, ag := range a.Aggs {
			t := value.Float
			switch ag.Func {
			case Count:
				t = value.Int
			case Sum, Min, Max:
				if ag.Arg != nil {
					t = TypeOf(ag.Arg, in)
				}
			}
			cols = append(cols, catalog.Column{Name: ag.As, Type: t})
		}
		a.schema = catalog.NewSchema(cols...)
	}
	return a.schema
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// WithChildren implements Node.
func (a *Aggregate) WithChildren(children []Node) Node {
	return &Aggregate{GroupBy: a.GroupBy, Aggs: a.Aggs, Input: one(children)}
}

// Label implements Node.
func (a *Aggregate) Label() string {
	return fmt.Sprintf("%s(%s)", a.OpLabel(), a.Input.Label())
}

// OpLabel implements Node.
func (a *Aggregate) OpLabel() string {
	aggs := make([]string, len(a.Aggs))
	for i, ag := range a.Aggs {
		aggs[i] = ag.String()
	}
	return fmt.Sprintf("Aggregate[%s BY %s]",
		strings.Join(aggs, ", "), strings.Join(a.GroupBy, ", "))
}

// Distinct eliminates duplicates (bag → set).
type Distinct struct {
	Input Node
}

// NewDistinct builds a duplicate elimination.
func NewDistinct(in Node) *Distinct { return &Distinct{Input: in} }

// Kind implements Node.
func (d *Distinct) Kind() Kind { return KindDistinct }

// Schema implements Node.
func (d *Distinct) Schema() *catalog.Schema { return d.Input.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// WithChildren implements Node.
func (d *Distinct) WithChildren(children []Node) Node {
	return &Distinct{Input: one(children)}
}

// Label implements Node.
func (d *Distinct) Label() string { return fmt.Sprintf("Distinct(%s)", d.Input.Label()) }

// OpLabel implements Node.
func (d *Distinct) OpLabel() string { return "Distinct" }

// Union is bag union (counts add).
type Union struct{ L, R Node }

// NewUnion builds a bag union.
func NewUnion(l, r Node) *Union { return &Union{L: l, R: r} }

// Kind implements Node.
func (u *Union) Kind() Kind { return KindUnion }

// Schema implements Node.
func (u *Union) Schema() *catalog.Schema { return u.L.Schema() }

// Children implements Node.
func (u *Union) Children() []Node { return []Node{u.L, u.R} }

// WithChildren implements Node.
func (u *Union) WithChildren(children []Node) Node {
	l, r := two(children)
	return &Union{L: l, R: r}
}

// Label implements Node.
func (u *Union) Label() string {
	return fmt.Sprintf("Union(%s, %s)", u.L.Label(), u.R.Label())
}

// OpLabel implements Node.
func (u *Union) OpLabel() string { return "Union" }

// Diff is bag difference (counts subtract, floored at zero).
type Diff struct{ L, R Node }

// NewDiff builds a bag difference.
func NewDiff(l, r Node) *Diff { return &Diff{L: l, R: r} }

// Kind implements Node.
func (d *Diff) Kind() Kind { return KindDiff }

// Schema implements Node.
func (d *Diff) Schema() *catalog.Schema { return d.L.Schema() }

// Children implements Node.
func (d *Diff) Children() []Node { return []Node{d.L, d.R} }

// WithChildren implements Node.
func (d *Diff) WithChildren(children []Node) Node {
	l, r := two(children)
	return &Diff{L: l, R: r}
}

// Label implements Node.
func (d *Diff) Label() string {
	return fmt.Sprintf("Diff(%s, %s)", d.L.Label(), d.R.Label())
}

// OpLabel implements Node.
func (d *Diff) OpLabel() string { return "Diff" }

func one(children []Node) Node {
	if len(children) != 1 {
		panic(fmt.Sprintf("algebra: want 1 child, got %d", len(children)))
	}
	return children[0]
}

func two(children []Node) (Node, Node) {
	if len(children) != 2 {
		panic(fmt.Sprintf("algebra: want 2 children, got %d", len(children)))
	}
	return children[0], children[1]
}
