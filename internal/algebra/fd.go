package algebra

import "repro/internal/expr"

// ColEquiv tracks equality-equivalence classes of column names, harvested
// from equijoin conditions and column=column selection conjuncts. It is
// the lightweight functional-dependency reasoning behind the paper's
// key-based optimizations ("The conditions under which keys can be used
// to reduce the set of needed queries").
type ColEquiv struct{ parent map[string]string }

// NewColEquiv returns an empty equivalence relation.
func NewColEquiv() *ColEquiv { return &ColEquiv{parent: map[string]string{}} }

func (u *ColEquiv) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

// Union records that columns a and b are equal.
func (u *ColEquiv) Union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// Same reports whether a and b are known equal.
func (u *ColEquiv) Same(a, b string) bool { return a == b || u.find(a) == u.find(b) }

// SameAsAny reports whether col is known equal to any of cols.
func (u *ColEquiv) SameAsAny(col string, cols []string) bool {
	for _, c := range cols {
		if u.Same(col, c) {
			return true
		}
	}
	return false
}

// Collect harvests column equalities from an expression tree into u.
func (u *ColEquiv) Collect(n Node) {
	switch t := n.(type) {
	case *Join:
		for _, c := range t.On {
			u.Union(c.Left, c.Right)
		}
	case *Select:
		for _, c := range expr.Conjuncts(t.Pred) {
			if cmp, ok := c.(expr.Cmp); ok && cmp.Op == expr.EQ {
				lc, lok := cmp.L.(expr.Col)
				rc, rok := cmp.R.(expr.Col)
				if lok && rok {
					u.Union(lc.Name, rc.Name)
				}
			}
		}
	}
	for _, c := range n.Children() {
		u.Collect(c)
	}
}
