package algebra

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/value"
)

func deptDef() *catalog.TableDef {
	return &catalog.TableDef{
		Name: "Dept",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "Dept", Name: "DName", Type: value.String},
			catalog.Column{Qualifier: "Dept", Name: "Budget", Type: value.Int},
		),
		Keys: [][]string{{"DName"}},
	}
}

func empDef() *catalog.TableDef {
	return &catalog.TableDef{
		Name: "Emp",
		Schema: catalog.NewSchema(
			catalog.Column{Qualifier: "Emp", Name: "EName", Type: value.String},
			catalog.Column{Qualifier: "Emp", Name: "DName", Type: value.String},
			catalog.Column{Qualifier: "Emp", Name: "Salary", Type: value.Int},
		),
		Keys: [][]string{{"EName"}},
	}
}

func problemDept() Node {
	join := NewJoin(
		[]JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		Scan(empDef()), Scan(deptDef()),
	)
	agg := NewAggregate(
		[]string{"Dept.DName", "Dept.Budget"},
		[]AggSpec{{Func: Sum, Arg: expr.C("Emp.Salary"), As: "SumSal"}},
		join,
	)
	return NewSelect(expr.Compare(expr.GT, expr.C("SumSal"), expr.C("Dept.Budget")), agg)
}

func TestSchemaDerivation(t *testing.T) {
	v := problemDept()
	s := v.Schema()
	want := []string{"Dept.DName", "Dept.Budget", "SumSal"}
	got := s.ColumnNames()
	if len(got) != len(want) {
		t.Fatalf("schema = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("col %d = %q, want %q", i, got[i], want[i])
		}
	}
	if s.Cols[2].Type != value.Int {
		t.Errorf("SUM(Salary) type = %v, want INT", s.Cols[2].Type)
	}
}

func TestJoinSchemaConcat(t *testing.T) {
	j := NewJoin([]JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		Scan(empDef()), Scan(deptDef()))
	if j.Schema().Len() != 5 {
		t.Errorf("join width = %d, want 5", j.Schema().Len())
	}
	if got := j.LeftCols(); len(got) != 1 || got[0] != "Emp.DName" {
		t.Errorf("LeftCols = %v", got)
	}
	if got := j.RightCols(); len(got) != 1 || got[0] != "Dept.DName" {
		t.Errorf("RightCols = %v", got)
	}
}

func TestProjectSchema(t *testing.T) {
	p := NewProject([]ProjectItem{
		{E: expr.C("Emp.DName")},
		{E: expr.Arith{Op: expr.Times, L: expr.C("Emp.Salary"), R: expr.IntLit(2)}, As: "Double"},
	}, Scan(empDef()))
	s := p.Schema()
	if s.Cols[0].QName() != "Emp.DName" {
		t.Errorf("pass-through column lost provenance: %v", s.Cols[0])
	}
	if s.Cols[1].Name != "Double" || s.Cols[1].Type != value.Int {
		t.Errorf("computed column = %+v", s.Cols[1])
	}
}

func TestLabelsAreCanonicalAndDistinct(t *testing.T) {
	v1 := problemDept()
	v2 := problemDept()
	if v1.Label() != v2.Label() {
		t.Error("identical trees must have identical labels")
	}
	join := NewJoin([]JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		Scan(empDef()), Scan(deptDef()))
	other := NewJoin([]JoinCond{{Left: "Emp.EName", Right: "Dept.DName"}},
		Scan(empDef()), Scan(deptDef()))
	if join.Label() == other.Label() {
		t.Error("different join conditions must label differently")
	}
}

func TestOpLabelExcludesChildren(t *testing.T) {
	j1 := NewJoin([]JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		Scan(empDef()), Scan(deptDef()))
	j2 := NewJoin([]JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		Scan(empDef()), NewSelect(expr.Compare(expr.GT, expr.C("Dept.Budget"), expr.IntLit(0)), Scan(deptDef())))
	if j1.OpLabel() != j2.OpLabel() {
		t.Error("OpLabel must not depend on children")
	}
	if j1.Label() == j2.Label() {
		t.Error("Label must depend on children")
	}
}

func TestWithChildren(t *testing.T) {
	v := problemDept().(*Select)
	agg := v.Input.(*Aggregate)
	join := agg.Input.(*Join)
	newJoin := join.WithChildren([]Node{join.R, join.L}).(*Join)
	if newJoin.L != join.R || newJoin.R != join.L {
		t.Error("WithChildren should replace children")
	}
	// Original untouched.
	if join.L.(*Rel).Def.Name != "Emp" {
		t.Error("WithChildren must not mutate the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithChildren with wrong arity should panic")
		}
	}()
	v.WithChildren(nil)
}

func TestBaseRelations(t *testing.T) {
	got := BaseRelations(problemDept())
	if len(got) != 2 || got[0] != "Dept" || got[1] != "Emp" {
		t.Errorf("BaseRelations = %v", got)
	}
}

func TestCountNodes(t *testing.T) {
	if got := CountNodes(problemDept()); got != 5 {
		t.Errorf("CountNodes = %d, want 5", got)
	}
}

func TestRender(t *testing.T) {
	out := Render(problemDept())
	for _, want := range []string{"Select[", "Aggregate[", "Join[", "Emp", "Dept"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("Render should have 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestEqualByLabel(t *testing.T) {
	if !Equal(problemDept(), problemDept()) {
		t.Error("structurally identical trees should be Equal")
	}
	if Equal(problemDept(), Scan(empDef())) {
		t.Error("different trees should not be Equal")
	}
}

func TestTypeOf(t *testing.T) {
	s := empDef().Schema
	cases := []struct {
		e    expr.Expr
		want value.Kind
	}{
		{expr.C("Salary"), value.Int},
		{expr.C("EName"), value.String},
		{expr.IntLit(1), value.Int},
		{expr.FloatLit(1.5), value.Float},
		{expr.Arith{Op: expr.Plus, L: expr.C("Salary"), R: expr.IntLit(1)}, value.Int},
		{expr.Arith{Op: expr.Over, L: expr.C("Salary"), R: expr.IntLit(2)}, value.Float},
		{expr.Compare(expr.GT, expr.C("Salary"), expr.IntLit(0)), value.Bool},
	}
	for _, c := range cases {
		if got := TypeOf(c.e, s); got != c.want {
			t.Errorf("TypeOf(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestDistinctUnionDiffSchemas(t *testing.T) {
	e := Scan(empDef())
	if NewDistinct(e).Schema() != e.Schema() {
		t.Error("Distinct schema should pass through")
	}
	u := NewUnion(e, e)
	if u.Schema() != e.Schema() {
		t.Error("Union schema should come from the left input")
	}
	d := NewDiff(e, e)
	if d.Schema() != e.Schema() {
		t.Error("Diff schema should come from the left input")
	}
	if u.OpLabel() != "Union" || d.OpLabel() != "Diff" {
		t.Error("unexpected op labels")
	}
}

func TestColEquiv(t *testing.T) {
	u := NewColEquiv()
	u.Union("a", "b")
	u.Union("b", "c")
	if !u.Same("a", "c") || u.Same("a", "d") {
		t.Error("union-find closure wrong")
	}
	if !u.SameAsAny("c", []string{"x", "a"}) || u.SameAsAny("d", []string{"x"}) {
		t.Error("SameAsAny wrong")
	}
	// Collect from a tree with join conds and an equality selection.
	join := NewJoin([]JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		Scan(empDef()), Scan(deptDef()))
	sel := NewSelect(expr.Compare(expr.EQ, expr.C("Emp.EName"), expr.C("Emp.DName")), join)
	v := NewColEquiv()
	v.Collect(sel)
	if !v.Same("Emp.DName", "Dept.DName") {
		t.Error("join condition not collected")
	}
	if !v.Same("Emp.EName", "Dept.DName") {
		t.Error("selection equality not closed with join condition")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindRel: "Rel", KindSelect: "Select", KindProject: "Project",
		KindJoin: "Join", KindAggregate: "Aggregate", KindDistinct: "Distinct",
		KindUnion: "Union", KindDiff: "Diff",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestWithChildrenAllOperators(t *testing.T) {
	emp := Scan(empDef())
	dept := Scan(deptDef())
	nodes := []Node{
		NewSelect(expr.Compare(expr.GT, expr.C("Emp.Salary"), expr.IntLit(0)), emp),
		NewProject([]ProjectItem{{E: expr.C("Emp.DName")}}, emp),
		NewAggregate([]string{"Emp.DName"}, []AggSpec{{Func: Count, As: "n"}}, emp),
		NewDistinct(emp),
	}
	for _, n := range nodes {
		replaced := n.WithChildren([]Node{dept})
		if replaced.Children()[0] != Node(dept) {
			t.Errorf("%T did not replace its child", n)
		}
		if n.Children()[0] != Node(emp) {
			t.Errorf("%T mutated the receiver", n)
		}
		if n.Kind() != replaced.Kind() {
			t.Errorf("%T changed kind", n)
		}
	}
	u := NewUnion(emp, emp)
	ur := u.WithChildren([]Node{dept, emp}).(*Union)
	if ur.L != Node(dept) || ur.R != Node(emp) {
		t.Error("Union.WithChildren wrong")
	}
	d := NewDiff(emp, emp)
	dr := d.WithChildren([]Node{emp, dept}).(*Diff)
	if dr.R != Node(dept) {
		t.Error("Diff.WithChildren wrong")
	}
	if u.Label() == d.Label() {
		t.Error("Union and Diff must label differently")
	}
	rel := Scan(empDef())
	defer func() {
		if recover() == nil {
			t.Error("Rel.WithChildren with children should panic")
		}
	}()
	rel.WithChildren([]Node{dept})
}

func TestProjectItemAndAggSpecStrings(t *testing.T) {
	pi := ProjectItem{E: expr.C("a"), As: "b"}
	if pi.String() != "a AS b" {
		t.Errorf("ProjectItem = %q", pi.String())
	}
	pi2 := ProjectItem{E: expr.C("a")}
	if pi2.String() != "a" {
		t.Errorf("ProjectItem no-as = %q", pi2.String())
	}
	as := AggSpec{Func: Count, As: "n"}
	if as.String() != "COUNT(*) AS n" {
		t.Errorf("AggSpec = %q", as.String())
	}
}
