package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parse parses a semicolon-separated script into statements.
func Parse(input string) ([]Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.at(tkEOF, "") {
		if p.at(tkSymbol, ";") {
			p.next()
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.at(tkSymbol, ";") {
			p.next()
		}
	}
	return out, nil
}

// ParseOne parses exactly one statement.
func ParseOne(input string) (Statement, error) {
	stmts, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	if !p.at(k, text) {
		return token{}, fmt.Errorf("sql: at %d: expected %q, found %q", p.cur().pos, text, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tkIdent {
		return "", fmt.Errorf("sql: at %d: expected identifier, found %q", p.cur().pos, p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tkKeyword, "CREATE"):
		return p.create()
	case p.at(tkKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(tkKeyword, "INSERT"):
		return p.insert()
	case p.at(tkKeyword, "DELETE"):
		return p.delete()
	case p.at(tkKeyword, "UPDATE"):
		return p.update()
	default:
		return nil, fmt.Errorf("sql: at %d: unexpected %q", p.cur().pos, p.cur().text)
	}
}

func (p *parser) create() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.accept(tkKeyword, "TABLE"):
		return p.createTable()
	case p.accept(tkKeyword, "INDEX"):
		return p.createIndex()
	case p.accept(tkKeyword, "VIEW"):
		return p.createView()
	case p.accept(tkKeyword, "ASSERTION"):
		return p.createAssertion()
	default:
		return nil, fmt.Errorf("sql: at %d: CREATE %q unsupported", p.cur().pos, p.cur().text)
	}
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.accept(tkKeyword, "PRIMARY") {
			if _, err := p.expect(tkKeyword, "KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, err := p.columnType()
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: col, Type: kind}
			if p.accept(tkKeyword, "PRIMARY") {
				if _, err := p.expect(tkKeyword, "KEY"); err != nil {
					return nil, err
				}
				def.PrimaryKey = true
			}
			ct.Columns = append(ct.Columns, def)
		}
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) columnType() (value.Kind, error) {
	t := p.cur()
	if t.kind != tkKeyword {
		return value.Null, fmt.Errorf("sql: at %d: expected type, found %q", t.pos, t.text)
	}
	p.next()
	switch t.text {
	case "INT", "INTEGER":
		return value.Int, nil
	case "FLOAT", "REAL", "DOUBLE":
		return value.Float, nil
	case "VARCHAR", "CHAR", "TEXT":
		// Optional length: VARCHAR(30).
		if p.accept(tkSymbol, "(") {
			if p.cur().kind != tkNumber {
				return value.Null, fmt.Errorf("sql: at %d: expected length", p.cur().pos)
			}
			p.next()
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return value.Null, err
			}
		}
		return value.String, nil
	case "BOOLEAN", "BOOL":
		return value.Bool, nil
	default:
		return value.Null, fmt.Errorf("sql: at %d: unknown type %q", t.pos, t.text)
	}
}

func (p *parser) parenIdentList() ([]string, error) {
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) createIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parenIdentList()
	if err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols}, nil
}

func (p *parser) createView() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cv := &CreateView{Name: name}
	if p.at(tkSymbol, "(") {
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		cv.Columns = cols
	}
	if _, err := p.expect(tkKeyword, "AS"); err != nil {
		return nil, err
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	cv.Select = sel
	return cv, nil
}

func (p *parser) createAssertion() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "CHECK"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "NOT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateAssertion{Name: name, Select: sel}, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	s.Distinct = p.accept(tkKeyword, "DISTINCT")
	for {
		if p.accept(tkSymbol, "*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.scalar()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tkKeyword, "AS") {
				as, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.As = as
			} else if p.cur().kind == tkIdent {
				item.As = p.next().text
			}
			s.Items = append(s.Items, item)
		}
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name, Alias: name}
		if p.cur().kind == tkIdent {
			ref.Alias = p.next().text
		}
		s.From = append(s.From, ref)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "WHERE") {
		w, err := p.scalar()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	groupBy := false
	if p.accept(tkKeyword, "GROUPBY") {
		groupBy = true
	} else if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		groupBy = true
	}
	if groupBy {
		for {
			name, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, ColRef{Name: name})
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "HAVING") {
		h, err := p.scalar()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	// Compound select: UNION ALL / EXCEPT ALL.
	switch {
	case p.accept(tkKeyword, "UNION"):
		if _, err := p.expect(tkKeyword, "ALL"); err != nil {
			return nil, fmt.Errorf("sql: only UNION ALL (bag union) is supported: %w", err)
		}
		next, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.Op, s.Next = "UNION ALL", next
	case p.accept(tkKeyword, "EXCEPT"):
		if _, err := p.expect(tkKeyword, "ALL"); err != nil {
			return nil, fmt.Errorf("sql: only EXCEPT ALL (bag difference) is supported: %w", err)
		}
		next, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.Op, s.Next = "EXCEPT ALL", next
	}
	return s, nil
}

// qualifiedName parses ident[.ident].
func (p *parser) qualifiedName() (string, error) {
	id, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.accept(tkSymbol, ".") {
		id2, err := p.ident()
		if err != nil {
			return "", err
		}
		return id + "." + id2, nil
	}
	return id, nil
}

func (p *parser) insert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []value.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) literal() (value.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tkNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("sql: at %d: %v", t.pos, err)
			}
			return value.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("sql: at %d: %v", t.pos, err)
		}
		return value.NewInt(i), nil
	case t.kind == tkString:
		p.next()
		return value.NewString(t.text), nil
	case t.kind == tkKeyword && t.text == "TRUE":
		p.next()
		return value.NewBool(true), nil
	case t.kind == tkKeyword && t.text == "FALSE":
		p.next()
		return value.NewBool(false), nil
	case t.kind == tkKeyword && t.text == "NULL":
		p.next()
		return value.NewNull(), nil
	case t.kind == tkSymbol && t.text == "-":
		p.next()
		v, err := p.literal()
		if err != nil {
			return value.Value{}, err
		}
		switch v.Kind {
		case value.Int:
			return value.NewInt(-v.I), nil
		case value.Float:
			return value.NewFloat(-v.F), nil
		}
		return value.Value{}, fmt.Errorf("sql: at %d: cannot negate %v", t.pos, v)
	default:
		return value.Value{}, fmt.Errorf("sql: at %d: expected literal, found %q", t.pos, t.text)
	}
}

func (p *parser) delete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.accept(tkKeyword, "WHERE") {
		w, err := p.scalar()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *parser) update() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.scalar()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, SetClause{Column: col, Expr: e})
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "WHERE") {
		w, err := p.scalar()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

// scalar parses expressions with precedence: OR < AND < NOT < comparison
// < additive < multiplicative < primary.
func (p *parser) scalar() (Scalar, error) { return p.orExpr() }

func (p *parser) orExpr() (Scalar, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Scalar, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Scalar, error) {
	if p.accept(tkKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Scalar, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.accept(tkSymbol, op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Scalar, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: "+", L: l, R: r}
		case p.accept(tkSymbol, "-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Scalar, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "*"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: "*", L: l, R: r}
		case p.accept(tkSymbol, "/"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) primary() (Scalar, error) {
	t := p.cur()
	switch {
	case t.kind == tkSymbol && t.text == "(":
		p.next()
		e, err := p.scalar()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkKeyword && (t.text == "SUM" || t.text == "COUNT" ||
		t.text == "AVG" || t.text == "MIN" || t.text == "MAX"):
		p.next()
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		if t.text == "COUNT" && p.accept(tkSymbol, "*") {
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return AggExpr{Func: "COUNT"}, nil
		}
		arg, err := p.scalar()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return AggExpr{Func: t.text, Arg: arg}, nil
	case t.kind == tkIdent:
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return ColRef{Name: name}, nil
	default:
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return Literal{V: v}, nil
	}
}
