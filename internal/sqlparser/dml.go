package sqlparser

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/storage"
	"repro/internal/value"
)

// InsertDelta converts INSERT INTO ... VALUES into a differential against
// the table's schema.
func InsertDelta(def *catalog.TableDef, ins *Insert) (*delta.Delta, error) {
	d := delta.New(def.Schema)
	for _, row := range ins.Rows {
		if len(row) != def.Schema.Len() {
			return nil, fmt.Errorf("sql: INSERT %s: %d values for %d columns",
				ins.Table, len(row), def.Schema.Len())
		}
		d.Insert(value.Tuple(row).Clone(), 1)
	}
	return d, nil
}

// DeleteDelta evaluates DELETE's WHERE against the current (pre-update)
// contents, uncharged, and returns the deletions.
func DeleteDelta(tr *Translator, rel *storage.Relation, del *Delete) (*delta.Delta, error) {
	d := delta.New(rel.Def.Schema)
	match, err := compileWhere(tr, rel, del.Where)
	if err != nil {
		return nil, err
	}
	for _, row := range rel.ScanFree() {
		if match(row.Tuple) {
			d.Delete(row.Tuple.Clone(), row.Count)
		}
	}
	return d, nil
}

// UpdateDelta evaluates UPDATE's WHERE and SET against the current
// contents, uncharged, and returns paired modifications.
func UpdateDelta(tr *Translator, rel *storage.Relation, upd *Update) (*delta.Delta, error) {
	d := delta.New(rel.Def.Schema)
	match, err := compileWhere(tr, rel, upd.Where)
	if err != nil {
		return nil, err
	}
	type setter struct {
		pos int
		f   func(value.Tuple) value.Value
	}
	setters := make([]setter, len(upd.Set))
	for i, sc := range upd.Set {
		pos, err := rel.Def.Schema.Resolve(sc.Column)
		if err != nil {
			return nil, err
		}
		e, err := tr.scalarExpr(sc.Expr, false)
		if err != nil {
			return nil, err
		}
		f, err := e.Compile(rel.Def.Schema)
		if err != nil {
			return nil, err
		}
		setters[i] = setter{pos: pos, f: f}
	}
	for _, row := range rel.ScanFree() {
		if !match(row.Tuple) {
			continue
		}
		newT := row.Tuple.Clone()
		for _, s := range setters {
			newT[s.pos] = s.f(row.Tuple)
		}
		d.Modify(row.Tuple.Clone(), newT, row.Count)
	}
	return d, nil
}

// ModifiedColumns returns the bare column names an UPDATE changes.
func ModifiedColumns(upd *Update) []string {
	out := make([]string, len(upd.Set))
	for i, sc := range upd.Set {
		out[i] = sc.Column
	}
	return out
}

func compileWhere(tr *Translator, rel *storage.Relation, where Scalar) (func(value.Tuple) bool, error) {
	if where == nil {
		return func(value.Tuple) bool { return true }, nil
	}
	e, err := tr.scalarExpr(where, false)
	if err != nil {
		return nil, err
	}
	f, err := e.Compile(rel.Def.Schema)
	if err != nil {
		return nil, err
	}
	return func(t value.Tuple) bool { return f(t).Truth() }, nil
}
