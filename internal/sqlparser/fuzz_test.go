package sqlparser

import "testing"

// FuzzParseSQL checks the parse → print → reparse round trip: whatever
// the parser accepts, the printer must render back to SQL the parser
// accepts again, and the second print must equal the first (the printer
// is a fixed point, so no information is lost or invented between
// passes).
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"CREATE TABLE Emp (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT)",
		"CREATE TABLE Dept (DName VARCHAR(20), Budget INT, PRIMARY KEY (DName))",
		"CREATE INDEX EmpDName ON Emp (DName)",
		"CREATE VIEW SumOfSals (DName, SalSum) AS SELECT DName, SUM(Salary) FROM Emp GROUP BY DName",
		"CREATE VIEW ProblemDept AS SELECT e.DName FROM Emp e, Dept d WHERE e.DName = d.DName AND e.Salary > 100",
		"CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS (SELECT DName FROM SumOfSals WHERE SalSum > 100))",
		"SELECT DISTINCT DName AS n, COUNT(*) FROM Emp WHERE NOT Salary <= 10 GROUP BY DName HAVING SUM(Salary) > 0",
		"SELECT * FROM Emp UNION ALL SELECT * FROM Emp EXCEPT ALL SELECT * FROM Emp",
		"SELECT Salary + 1 * 2 - 3 / 4 FROM Emp WHERE TRUE OR FALSE AND NULL = ' quo''ted '",
		"INSERT INTO Emp VALUES ('a', 'b', 100), ('c', 'd', -2.5)",
		"DELETE FROM Emp WHERE Salary < 0",
		"UPDATE Emp SET Salary = Salary * 2, DName = 'x' WHERE EName = 'e'; SELECT * FROM Emp",
		"SELECT a FROM t GROUPBY a",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := Parse(input)
		if err != nil || len(stmts) == 0 {
			t.Skip()
		}
		printed := Format(stmts)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed SQL does not reparse: %v\ninput:   %q\nprinted: %q", err, input, printed)
		}
		reprinted := Format(again)
		if reprinted != printed {
			t.Fatalf("print is not a fixed point:\ninput:  %q\nfirst:  %q\nsecond: %q", input, printed, reprinted)
		}
	})
}
