package sqlparser

import "repro/internal/value"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column of CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       value.Kind
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (cols... [, PRIMARY KEY (cols)]).
type CreateTable struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
}

func (*CreateTable) stmt() {}

// CreateIndex is CREATE INDEX name ON table (cols).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

func (*CreateIndex) stmt() {}

// CreateView is CREATE VIEW name [(cols)] AS select.
type CreateView struct {
	Name    string
	Columns []string
	Select  *SelectStmt
}

func (*CreateView) stmt() {}

// CreateAssertion is CREATE ASSERTION name CHECK (NOT EXISTS (select)).
type CreateAssertion struct {
	Name   string
	Select *SelectStmt
}

func (*CreateAssertion) stmt() {}

// SelectItem is one output of a SELECT list.
type SelectItem struct {
	Expr Scalar
	As   string
	Star bool // SELECT *
}

// TableRef is one FROM entry: a table or view name with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// SelectStmt is a SELECT block, optionally combined with further blocks
// by UNION ALL / EXCEPT ALL (bag union and difference).
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Scalar // nil when absent
	GroupBy  []ColRef
	Having   Scalar // nil when absent

	// Compound tail: this block combined with Next by Op.
	Op   string      // "", "UNION ALL", "EXCEPT ALL"
	Next *SelectStmt // nil when Op is ""
}

func (*SelectStmt) stmt() {}

// Insert is INSERT INTO table VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]value.Value
}

func (*Insert) stmt() {}

// Delete is DELETE FROM table [WHERE pred].
type Delete struct {
	Table string
	Where Scalar
}

func (*Delete) stmt() {}

// Update is UPDATE table SET col=expr,... [WHERE pred].
type Update struct {
	Table string
	Set   []SetClause
	Where Scalar
}

func (*Update) stmt() {}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Expr   Scalar
}

// Scalar is a parsed scalar expression (pre-resolution).
type Scalar interface{ scalar() }

// ColRef references a possibly qualified column.
type ColRef struct{ Name string }

func (ColRef) scalar() {}

// Literal is a constant.
type Literal struct{ V value.Value }

func (Literal) scalar() {}

// BinExpr is a binary operation: comparison, arithmetic, AND, OR.
type BinExpr struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "AND", "OR"
	L, R Scalar
}

func (BinExpr) scalar() {}

// NotExpr is logical negation.
type NotExpr struct{ E Scalar }

func (NotExpr) scalar() {}

// AggExpr is FUNC(arg) or COUNT(*).
type AggExpr struct {
	Func string // SUM, COUNT, AVG, MIN, MAX
	Arg  Scalar // nil for COUNT(*)
}

func (AggExpr) scalar() {}
