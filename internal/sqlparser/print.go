package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Format renders statements back to parseable SQL. The output is
// canonical, not source-faithful: expressions are fully parenthesized,
// keywords are upper-cased and implicit aliases become explicit AS
// clauses. The printer is a fixed point under reparsing —
// Format(Parse(Format(Parse(x)))) == Format(Parse(x)) — which is the
// property the FuzzParseSQL round-trip checks.
func Format(stmts []Statement) string {
	parts := make([]string, len(stmts))
	for i, s := range stmts {
		parts[i] = FormatStatement(s)
	}
	return strings.Join(parts, ";\n")
}

// FormatStatement renders one statement (no trailing semicolon).
func FormatStatement(s Statement) string {
	switch s := s.(type) {
	case *CreateTable:
		var defs []string
		for _, c := range s.Columns {
			d := c.Name + " " + typeName(c.Type)
			if c.PrimaryKey {
				d += " PRIMARY KEY"
			}
			defs = append(defs, d)
		}
		if len(s.PrimaryKey) > 0 {
			defs = append(defs, "PRIMARY KEY ("+strings.Join(s.PrimaryKey, ", ")+")")
		}
		return "CREATE TABLE " + s.Name + " (" + strings.Join(defs, ", ") + ")"
	case *CreateIndex:
		return "CREATE INDEX " + s.Name + " ON " + s.Table +
			" (" + strings.Join(s.Columns, ", ") + ")"
	case *CreateView:
		out := "CREATE VIEW " + s.Name
		if len(s.Columns) > 0 {
			out += " (" + strings.Join(s.Columns, ", ") + ")"
		}
		return out + " AS " + formatSelect(s.Select)
	case *CreateAssertion:
		return "CREATE ASSERTION " + s.Name +
			" CHECK (NOT EXISTS (" + formatSelect(s.Select) + "))"
	case *SelectStmt:
		return formatSelect(s)
	case *Insert:
		rows := make([]string, len(s.Rows))
		for i, row := range s.Rows {
			vals := make([]string, len(row))
			for j, v := range row {
				vals[j] = litString(v)
			}
			rows[i] = "(" + strings.Join(vals, ", ") + ")"
		}
		return "INSERT INTO " + s.Table + " VALUES " + strings.Join(rows, ", ")
	case *Delete:
		out := "DELETE FROM " + s.Table
		if s.Where != nil {
			out += " WHERE " + formatScalar(s.Where)
		}
		return out
	case *Update:
		sets := make([]string, len(s.Set))
		for i, sc := range s.Set {
			sets[i] = sc.Column + " = " + formatScalar(sc.Expr)
		}
		out := "UPDATE " + s.Table + " SET " + strings.Join(sets, ", ")
		if s.Where != nil {
			out += " WHERE " + formatScalar(s.Where)
		}
		return out
	default:
		panic(fmt.Sprintf("sqlparser: Format: unknown statement %T", s))
	}
}

func formatSelect(s *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(formatScalar(it.Expr))
		if it.As != "" {
			b.WriteString(" AS " + it.As)
		}
	}
	b.WriteString(" FROM ")
	for i, ref := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ref.Name)
		if ref.Alias != "" && ref.Alias != ref.Name {
			b.WriteString(" " + ref.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + formatScalar(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + formatScalar(s.Having))
	}
	if s.Op != "" && s.Next != nil {
		b.WriteString(" " + s.Op + " " + formatSelect(s.Next))
	}
	return b.String()
}

// formatScalar fully parenthesizes binary expressions, so the printed
// form reparses to the identical tree regardless of precedence.
func formatScalar(e Scalar) string {
	switch e := e.(type) {
	case ColRef:
		return e.Name
	case Literal:
		return litString(e.V)
	case BinExpr:
		return "(" + formatScalar(e.L) + " " + e.Op + " " + formatScalar(e.R) + ")"
	case NotExpr:
		return "NOT " + formatScalar(e.E)
	case AggExpr:
		if e.Arg == nil {
			return e.Func + "(*)"
		}
		return e.Func + "(" + formatScalar(e.Arg) + ")"
	default:
		panic(fmt.Sprintf("sqlparser: Format: unknown scalar %T", e))
	}
}

// litString renders a literal in lexer-compatible form: floats avoid the
// exponent notation the lexer does not read, strings double embedded
// quotes.
func litString(v value.Value) string {
	switch v.Kind {
	case value.Null:
		return "NULL"
	case value.Int:
		return strconv.FormatInt(v.I, 10)
	case value.Float:
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	case value.String:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case value.Bool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		panic(fmt.Sprintf("sqlparser: Format: unknown literal kind %v", v.Kind))
	}
}

func typeName(k value.Kind) string {
	switch k {
	case value.Int:
		return "INT"
	case value.Float:
		return "FLOAT"
	case value.String:
		return "VARCHAR"
	case value.Bool:
		return "BOOLEAN"
	default:
		panic(fmt.Sprintf("sqlparser: Format: unknown column type %v", k))
	}
}
