// Package sqlparser is the SQL subset front end: CREATE TABLE / INDEX /
// VIEW / ASSERTION, SELECT-FROM-WHERE-GROUP BY-HAVING blocks, and
// INSERT/DELETE/UPDATE statements. Views and assertions translate to the
// logical algebra of internal/algebra; DML statements translate to
// differentials for the maintenance engine.
//
// The subset covers everything the paper writes in SQL: the views
// ProblemDept, SumOfSals and ADeptsStatus, and the assertion
// DeptConstraint (CREATE ASSERTION ... CHECK (NOT EXISTS (...))).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkSymbol  // ( ) , ; * . =  < > <= >= <> + - /
	tkKeyword // normalized upper-case SQL keyword
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "VIEW": true, "INDEX": true,
	"ASSERTION": true, "CHECK": true, "NOT": true, "EXISTS": true,
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "GROUPBY": true, "HAVING": true, "AS": true,
	"AND": true, "OR": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DELETE": true, "UPDATE": true, "SET": true, "ON": true,
	"PRIMARY": true, "KEY": true, "INT": true, "INTEGER": true,
	"FLOAT": true, "REAL": true, "DOUBLE": true, "VARCHAR": true,
	"CHAR": true, "TEXT": true, "BOOLEAN": true, "BOOL": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"TRUE": true, "FALSE": true, "NULL": true, "UNION": true, "ALL": true,
	"EXCEPT": true,
}

// lex splits input into tokens. Errors carry byte positions.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string at %d", i)
			}
			out = append(out, token{tkString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			out = append(out, token{tkNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				out = append(out, token{tkKeyword, up, i})
			} else {
				out = append(out, token{tkIdent, word, i})
			}
			i = j
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				out = append(out, token{tkSymbol, input[i : i+2], i})
				i += 2
			} else {
				out = append(out, token{tkSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				out = append(out, token{tkSymbol, ">=", i})
				i += 2
			} else {
				out = append(out, token{tkSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				out = append(out, token{tkSymbol, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at %d", i)
			}
		case strings.IndexByte("(),;*.=+-/", c) >= 0:
			out = append(out, token{tkSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{tkEOF, "", n})
	return out, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
