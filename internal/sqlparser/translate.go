package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
)

// Translator resolves SELECT blocks into logical algebra against a
// catalog. Previously defined views can be referenced in FROM through the
// Views map (their definitions are inlined, so the expression DAG sees
// the full tree).
type Translator struct {
	Cat   *catalog.Catalog
	Views map[string]algebra.Node
}

// NewTranslator returns a translator over the catalog.
func NewTranslator(cat *catalog.Catalog) *Translator {
	return &Translator{Cat: cat, Views: map[string]algebra.Node{}}
}

// TranslateView translates CREATE VIEW, applying the optional output
// column renames, and registers the view for later FROM references.
func (tr *Translator) TranslateView(cv *CreateView) (algebra.Node, error) {
	n, err := tr.TranslateSelect(cv.Select)
	if err != nil {
		return nil, fmt.Errorf("sql: view %s: %w", cv.Name, err)
	}
	if len(cv.Columns) > 0 {
		s := n.Schema()
		if len(cv.Columns) != s.Len() {
			return nil, fmt.Errorf("sql: view %s declares %d columns, select produces %d",
				cv.Name, len(cv.Columns), s.Len())
		}
		items := make([]algebra.ProjectItem, len(cv.Columns))
		renamed := false
		for i, want := range cv.Columns {
			have := s.Cols[i]
			items[i] = algebra.ProjectItem{E: expr.C(have.QName()), As: want}
			if have.Name != want {
				renamed = true
			}
		}
		if renamed {
			n = algebra.NewProject(items, n)
		}
	}
	tr.Views[cv.Name] = n
	return n, nil
}

// TranslateAssertion translates CREATE ASSERTION ... CHECK (NOT EXISTS
// (select)) into the view that must remain empty.
func (tr *Translator) TranslateAssertion(ca *CreateAssertion) (algebra.Node, error) {
	n, err := tr.TranslateSelect(ca.Select)
	if err != nil {
		return nil, fmt.Errorf("sql: assertion %s: %w", ca.Name, err)
	}
	return n, nil
}

// TranslateSelect resolves a SELECT block (and any UNION ALL / EXCEPT
// ALL tail): FROM relations joined on the equality conjuncts of WHERE (no
// cross products), residual WHERE conjuncts as selections, GROUP
// BY/HAVING as aggregation plus a post-selection, DISTINCT as duplicate
// elimination, and the select list as the final projection.
func (tr *Translator) TranslateSelect(s *SelectStmt) (algebra.Node, error) {
	left, err := tr.translateBlock(s)
	if err != nil {
		return nil, err
	}
	if s.Op == "" {
		return left, nil
	}
	right, err := tr.TranslateSelect(s.Next)
	if err != nil {
		return nil, err
	}
	ls, rs := left.Schema(), right.Schema()
	if ls.Len() != rs.Len() {
		return nil, fmt.Errorf("sql: %s arms have %d and %d columns", s.Op, ls.Len(), rs.Len())
	}
	switch s.Op {
	case "UNION ALL":
		return algebra.NewUnion(left, right), nil
	case "EXCEPT ALL":
		return algebra.NewDiff(left, right), nil
	default:
		return nil, fmt.Errorf("sql: unknown compound operator %q", s.Op)
	}
}

// translateBlock resolves one SELECT block, ignoring any compound tail.
func (tr *Translator) translateBlock(s *SelectStmt) (algebra.Node, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("sql: FROM is required")
	}
	inputs := make([]algebra.Node, len(s.From))
	for i, ref := range s.From {
		if ref.Alias != ref.Name {
			return nil, fmt.Errorf("sql: table aliases are not supported (%s %s)", ref.Name, ref.Alias)
		}
		if v, ok := tr.Views[ref.Name]; ok {
			inputs[i] = v
			continue
		}
		def, ok := tr.Cat.Get(ref.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown relation %q", ref.Name)
		}
		inputs[i] = algebra.Scan(def)
	}

	// Split WHERE into equijoin conditions and residual selections.
	var joinConds []joinCond
	var residuals []expr.Expr
	if s.Where != nil {
		for _, c := range conjuncts(s.Where) {
			if jc, ok := tr.asJoinCond(c, inputs); ok {
				joinConds = append(joinConds, jc)
				continue
			}
			e, err := tr.scalarExpr(c, false)
			if err != nil {
				return nil, err
			}
			residuals = append(residuals, e)
		}
	}

	tree, err := joinInputs(inputs, joinConds)
	if err != nil {
		return nil, err
	}
	if len(residuals) > 0 {
		tree = algebra.NewSelect(expr.AndOf(residuals...), tree)
	}

	// Aggregation.
	aggNames := map[string]string{} // canonical AggExpr -> output name
	var aggSpecs []algebra.AggSpec
	collect := func(e Scalar, preferred string) error {
		return walkAggs(e, func(a AggExpr) error {
			key := aggKey(a)
			if _, ok := aggNames[key]; ok {
				return nil
			}
			name := preferred
			if name == "" || nameTaken(aggSpecs, name) {
				name = genAggName(a, len(aggSpecs))
			}
			var arg expr.Expr
			if a.Arg != nil {
				var err error
				arg, err = tr.scalarExpr(a.Arg, false)
				if err != nil {
					return err
				}
			}
			aggNames[key] = name
			aggSpecs = append(aggSpecs, algebra.AggSpec{
				Func: algebra.AggFunc(a.Func), Arg: arg, As: name,
			})
			return nil
		})
	}
	for _, it := range s.Items {
		if it.Star {
			continue
		}
		if err := collect(it.Expr, it.As); err != nil {
			return nil, err
		}
	}
	if s.Having != nil {
		if err := collect(s.Having, ""); err != nil {
			return nil, err
		}
	}

	grouped := len(s.GroupBy) > 0 || len(aggSpecs) > 0
	if grouped {
		groupBy := make([]string, len(s.GroupBy))
		treeSchema := tree.Schema()
		for i, g := range s.GroupBy {
			j, err := treeSchema.Resolve(g.Name)
			if err != nil {
				return nil, err
			}
			groupBy[i] = treeSchema.Cols[j].QName()
		}
		tree = algebra.NewAggregate(groupBy, aggSpecs, tree)
		if s.Having != nil {
			h, err := tr.havingExpr(s.Having, aggNames)
			if err != nil {
				return nil, err
			}
			tree = algebra.NewSelect(h, tree)
		}
	} else if s.Having != nil {
		return nil, fmt.Errorf("sql: HAVING without aggregation")
	}

	// Final projection (skipped for SELECT *).
	star := false
	for _, it := range s.Items {
		if it.Star {
			star = true
		}
	}
	if !star {
		items := make([]algebra.ProjectItem, 0, len(s.Items))
		outSchema := tree.Schema()
		for _, it := range s.Items {
			if a, ok := it.Expr.(AggExpr); ok {
				items = append(items, algebra.ProjectItem{E: expr.C(aggNames[aggKey(a)])})
				continue
			}
			e, err := tr.scalarExpr(it.Expr, false)
			if err != nil {
				return nil, err
			}
			items = append(items, algebra.ProjectItem{E: e, As: it.As})
		}
		if !identityProjection(items, outSchema) {
			tree = algebra.NewProject(items, tree)
		}
	}
	if s.Distinct {
		tree = algebra.NewDistinct(tree)
	}
	return tree, nil
}

type joinCond struct {
	left, right string
	li, ri      int // input indexes
}

// asJoinCond recognizes col = col conjuncts whose sides resolve in two
// different FROM inputs.
func (tr *Translator) asJoinCond(c Scalar, inputs []algebra.Node) (joinCond, bool) {
	b, ok := c.(BinExpr)
	if !ok || b.Op != "=" {
		return joinCond{}, false
	}
	lc, lok := b.L.(ColRef)
	rc, rok := b.R.(ColRef)
	if !lok || !rok {
		return joinCond{}, false
	}
	li, ri := -1, -1
	for i, in := range inputs {
		if in.Schema().Has(lc.Name) {
			li = i
		}
		if in.Schema().Has(rc.Name) {
			ri = i
		}
	}
	if li < 0 || ri < 0 || li == ri {
		return joinCond{}, false
	}
	return joinCond{left: lc.Name, right: rc.Name, li: li, ri: ri}, true
}

// joinInputs connects the FROM inputs with the join conditions, greedily
// attaching any input connected to the current tree. Cross products are
// rejected.
func joinInputs(inputs []algebra.Node, conds []joinCond) (algebra.Node, error) {
	if len(inputs) == 1 {
		if len(conds) > 0 {
			return nil, fmt.Errorf("sql: join condition over a single relation")
		}
		return inputs[0], nil
	}
	attached := map[int]bool{0: true}
	tree := inputs[0]
	used := make([]bool, len(conds))
	for len(attached) < len(inputs) {
		progressed := false
		for next := range inputs {
			if attached[next] {
				continue
			}
			var on []algebra.JoinCond
			for k, c := range conds {
				if used[k] {
					continue
				}
				switch {
				case attached[c.li] && c.ri == next:
					on = append(on, algebra.JoinCond{Left: c.left, Right: c.right})
					used[k] = true
				case attached[c.ri] && c.li == next:
					on = append(on, algebra.JoinCond{Left: c.right, Right: c.left})
					used[k] = true
				}
			}
			if len(on) == 0 {
				continue
			}
			tree = algebra.NewJoin(on, tree, inputs[next])
			attached[next] = true
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("sql: FROM relations are not connected by join conditions (cross products unsupported)")
		}
	}
	// Leftover conditions between already-attached inputs become
	// residual selections on the join tree.
	var residual []expr.Expr
	for k, c := range conds {
		if !used[k] {
			residual = append(residual, expr.Compare(expr.EQ, expr.C(c.left), expr.C(c.right)))
		}
	}
	if len(residual) > 0 {
		return algebra.NewSelect(expr.AndOf(residual...), tree), nil
	}
	return tree, nil
}

// scalarExpr converts a parsed scalar into an algebra expression.
// Aggregates are rejected unless allowAgg (they are lifted separately).
func (tr *Translator) scalarExpr(s Scalar, allowAgg bool) (expr.Expr, error) {
	switch t := s.(type) {
	case ColRef:
		return expr.C(t.Name), nil
	case Literal:
		return expr.Lit{V: t.V}, nil
	case NotExpr:
		e, err := tr.scalarExpr(t.E, allowAgg)
		if err != nil {
			return nil, err
		}
		return expr.Not{E: e}, nil
	case AggExpr:
		return nil, fmt.Errorf("sql: aggregate %s used outside SELECT/HAVING", t.Func)
	case BinExpr:
		l, err := tr.scalarExpr(t.L, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := tr.scalarExpr(t.R, allowAgg)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "AND":
			return expr.AndOf(l, r), nil
		case "OR":
			return expr.Or{L: l, R: r}, nil
		case "=", "<>", "<", "<=", ">", ">=":
			return expr.Compare(expr.CmpOp(t.Op), l, r), nil
		case "+":
			return expr.Arith{Op: expr.Plus, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Minus, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Times, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Over, L: l, R: r}, nil
		}
		return nil, fmt.Errorf("sql: unknown operator %q", t.Op)
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", s)
	}
}

// havingExpr converts a HAVING predicate, replacing aggregates with
// references to their lifted output columns.
func (tr *Translator) havingExpr(s Scalar, aggNames map[string]string) (expr.Expr, error) {
	switch t := s.(type) {
	case AggExpr:
		name, ok := aggNames[aggKey(t)]
		if !ok {
			return nil, fmt.Errorf("sql: unlifted aggregate in HAVING")
		}
		return expr.C(name), nil
	case BinExpr:
		l, err := tr.havingExpr(t.L, aggNames)
		if err != nil {
			return nil, err
		}
		r, err := tr.havingExpr(t.R, aggNames)
		if err != nil {
			return nil, err
		}
		return tr.scalarFromParts(t.Op, l, r)
	case NotExpr:
		e, err := tr.havingExpr(t.E, aggNames)
		if err != nil {
			return nil, err
		}
		return expr.Not{E: e}, nil
	default:
		return tr.scalarExpr(s, false)
	}
}

func (tr *Translator) scalarFromParts(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "AND":
		return expr.AndOf(l, r), nil
	case "OR":
		return expr.Or{L: l, R: r}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return expr.Compare(expr.CmpOp(op), l, r), nil
	case "+":
		return expr.Arith{Op: expr.Plus, L: l, R: r}, nil
	case "-":
		return expr.Arith{Op: expr.Minus, L: l, R: r}, nil
	case "*":
		return expr.Arith{Op: expr.Times, L: l, R: r}, nil
	case "/":
		return expr.Arith{Op: expr.Over, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", op)
	}
}

func conjuncts(s Scalar) []Scalar {
	if b, ok := s.(BinExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Scalar{s}
}

// walkAggs visits every aggregate expression in s.
func walkAggs(s Scalar, f func(AggExpr) error) error {
	switch t := s.(type) {
	case AggExpr:
		return f(t)
	case BinExpr:
		if err := walkAggs(t.L, f); err != nil {
			return err
		}
		return walkAggs(t.R, f)
	case NotExpr:
		return walkAggs(t.E, f)
	default:
		return nil
	}
}

func aggKey(a AggExpr) string {
	if a.Arg == nil {
		return a.Func + "(*)"
	}
	return fmt.Sprintf("%s(%v)", a.Func, a.Arg)
}

func nameTaken(specs []algebra.AggSpec, name string) bool {
	for _, s := range specs {
		if s.As == name {
			return true
		}
	}
	return false
}

func genAggName(a AggExpr, i int) string {
	base := strings.ToLower(a.Func)
	if c, ok := a.Arg.(ColRef); ok {
		parts := strings.Split(c.Name, ".")
		base += "_" + strings.ToLower(parts[len(parts)-1])
	} else if i > 0 {
		base = fmt.Sprintf("%s_%d", base, i)
	}
	return base
}

// identityProjection reports whether the items reproduce the schema
// exactly (same columns, same order, no renames).
func identityProjection(items []algebra.ProjectItem, s *catalog.Schema) bool {
	if len(items) != s.Len() {
		return false
	}
	for i, it := range items {
		c, ok := it.E.(expr.Col)
		if !ok || it.As != "" {
			return false
		}
		j, err := s.Resolve(c.Name)
		if err != nil || j != i {
			return false
		}
	}
	return true
}

// TableDefFrom builds a catalog definition from CREATE TABLE.
func TableDefFrom(ct *CreateTable) *catalog.TableDef {
	cols := make([]catalog.Column, len(ct.Columns))
	var keys [][]string
	for i, c := range ct.Columns {
		cols[i] = catalog.Column{Qualifier: ct.Name, Name: c.Name, Type: c.Type}
		if c.PrimaryKey {
			keys = append(keys, []string{c.Name})
		}
	}
	if len(ct.PrimaryKey) > 0 {
		keys = append(keys, ct.PrimaryKey)
	}
	return &catalog.TableDef{
		Name:   ct.Name,
		Schema: catalog.NewSchema(cols...),
		Keys:   keys,
	}
}
