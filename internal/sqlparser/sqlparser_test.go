package sqlparser_test

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// paperSchemaSQL is the corporate schema written in the SQL subset.
const paperSchemaSQL = `
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname ON Emp (DName);
`

// problemDeptSQL is the paper's Example 1.1 view, verbatim modulo
// whitespace.
const problemDeptSQL = `
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget
`

const sumOfSalsSQL = `
CREATE VIEW SumOfSals (DName, SalSum) AS
SELECT DName, SUM(Salary)
FROM Emp
GROUP BY DName
`

const assertionSQL = `
CREATE ASSERTION DeptConstraint CHECK
  (NOT EXISTS (SELECT * FROM ProblemDept))
`

func TestParsePaperSchema(t *testing.T) {
	stmts, err := sqlparser.Parse(paperSchemaSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("parsed %d statements, want 4", len(stmts))
	}
	ct, ok := stmts[0].(*sqlparser.CreateTable)
	if !ok {
		t.Fatalf("statement 0 is %T", stmts[0])
	}
	if ct.Name != "Dept" || len(ct.Columns) != 3 {
		t.Errorf("Dept parse = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey {
		t.Error("DName should be primary key")
	}
	def := sqlparser.TableDefFrom(ct)
	if !def.HasKey([]string{"DName"}) {
		t.Error("translated def should key on DName")
	}
	if def.Schema.Cols[2].Type != value.Int {
		t.Error("Budget should be INT")
	}
	ci, ok := stmts[2].(*sqlparser.CreateIndex)
	if !ok || ci.Table != "Dept" || ci.Columns[0] != "DName" {
		t.Errorf("index parse = %+v", stmts[2])
	}
}

// translatorOverCorpus builds a translator aligned with the corpus
// catalog (same schema the paper uses).
func translatorOverCorpus(db *corpus.Database) *sqlparser.Translator {
	return sqlparser.NewTranslator(db.Catalog)
}

// TestProblemDeptTranslationEvaluatesLikeCorpus parses the paper's SQL
// and checks the translated algebra computes the same answer as the
// hand-built corpus tree.
func TestProblemDeptTranslationEvaluatesLikeCorpus(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 5, EmpsPerDept: 3})
	// Create a violation so the view is non-empty.
	rel := db.Store.MustGet("Emp")
	old := value.Tuple{
		value.NewString(corpus.EmpName(1, 0)),
		value.NewString(corpus.DeptName(1)),
		value.NewInt(corpus.BaseSalary),
	}
	newT := old.Clone()
	newT[2] = value.NewInt(99_999)
	rel.ApplyBatch([]storage.Mutation{{Old: old, New: newT}})

	stmt, err := sqlparser.ParseOne(problemDeptSQL)
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*sqlparser.CreateView)
	tr := translatorOverCorpus(db)
	tree, err := tr.TranslateView(cv)
	if err != nil {
		t.Fatal(err)
	}

	ev := exec.NewFree(db.Store)
	got, err := ev.Eval(tree)
	if err != nil {
		t.Fatalf("eval translated: %v\n%s", err, algebra.Render(tree))
	}
	want, err := ev.Eval(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != want.Card() || got.Card() != 1 {
		t.Fatalf("translated card = %d, corpus card = %d, want 1", got.Card(), want.Card())
	}
	if got.Rows[0].Tuple[0].S != corpus.DeptName(1) {
		t.Errorf("translated view found %q", got.Rows[0].Tuple[0].S)
	}
	// Output schema honors the view column list.
	if got.Schema.Len() != 1 || got.Schema.Cols[0].Name != "DName" {
		t.Errorf("view schema = %s, want (DName)", got.Schema)
	}
}

func TestSumOfSalsTranslation(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 4, EmpsPerDept: 2})
	stmt, err := sqlparser.ParseOne(sumOfSalsSQL)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := translatorOverCorpus(db).TranslateView(stmt.(*sqlparser.CreateView))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.NewFree(db.Store).Eval(tree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 4 {
		t.Fatalf("SumOfSals card = %d", res.Card())
	}
	if res.Schema.Cols[1].Name != "SalSum" {
		t.Errorf("renamed column = %q, want SalSum", res.Schema.Cols[1].Name)
	}
	for _, row := range res.Rows {
		if row.Tuple[1].AsInt() != 2*corpus.BaseSalary {
			t.Errorf("sum = %v", row.Tuple[1])
		}
	}
}

func TestAssertionTranslation(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 3, EmpsPerDept: 2})
	tr := translatorOverCorpus(db)
	pd, err := sqlparser.ParseOne(problemDeptSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TranslateView(pd.(*sqlparser.CreateView)); err != nil {
		t.Fatal(err)
	}
	as, err := sqlparser.ParseOne(assertionSQL)
	if err != nil {
		t.Fatal(err)
	}
	ca, ok := as.(*sqlparser.CreateAssertion)
	if !ok || ca.Name != "DeptConstraint" {
		t.Fatalf("assertion parse = %+v", as)
	}
	tree, err := tr.TranslateAssertion(ca)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.NewFree(db.Store).Eval(tree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != 0 {
		t.Errorf("assertion view should start empty, has %d rows", res.Card())
	}
}

// TestADeptsStatusSQL: Example 3.1's three-way join with aggregation.
func TestADeptsStatusSQL(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 6, EmpsPerDept: 2, ADeptsEveryN: 2})
	sql := `
CREATE VIEW ADeptsStatus (DName, Budget, SumSal) AS
SELECT Dept.DName, Budget, SUM(Salary)
FROM Emp, Dept, ADepts
WHERE Dept.DName = Emp.DName AND Emp.DName = ADepts.DName
GROUP BY Dept.DName, Budget`
	stmt, err := sqlparser.ParseOne(sql)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := translatorOverCorpus(db).TranslateView(stmt.(*sqlparser.CreateView))
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.NewFree(db.Store).Eval(tree)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.NewFree(db.Store).Eval(db.ADeptsStatus())
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != want.Card() || got.Card() != 3 {
		t.Fatalf("translated %d rows, corpus %d, want 3", got.Card(), want.Card())
	}
}

func TestInsertDeleteUpdateDeltas(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 2, EmpsPerDept: 2})
	tr := translatorOverCorpus(db)

	stmt, err := sqlparser.ParseOne(`INSERT INTO Emp VALUES ('x', 'd0000', 500), ('y', 'd0001', 600)`)
	if err != nil {
		t.Fatal(err)
	}
	def, _ := db.Catalog.Get("Emp")
	d, err := sqlparser.InsertDelta(def, stmt.(*sqlparser.Insert))
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 || !d.Changes[0].IsInsert() {
		t.Fatalf("insert delta = %v", d.Changes)
	}

	rel := db.Store.MustGet("Emp")
	stmt, err = sqlparser.ParseOne(`DELETE FROM Emp WHERE DName = 'd0000'`)
	if err != nil {
		t.Fatal(err)
	}
	d, err = sqlparser.DeleteDelta(tr, rel, stmt.(*sqlparser.Delete))
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Fatalf("delete delta = %v", d.Changes)
	}

	stmt, err = sqlparser.ParseOne(`UPDATE Emp SET Salary = Salary + 50 WHERE EName = 'e0001_00'`)
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*sqlparser.Update)
	d, err = sqlparser.UpdateDelta(tr, rel, upd)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 || !d.Changes[0].IsModify() {
		t.Fatalf("update delta = %v", d.Changes)
	}
	if got := d.Changes[0].New[2].AsInt(); got != corpus.BaseSalary+50 {
		t.Errorf("new salary = %d", got)
	}
	if cols := sqlparser.ModifiedColumns(upd); len(cols) != 1 || cols[0] != "Salary" {
		t.Errorf("modified columns = %v", cols)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT x FROM`,
		`CREATE TABLE t (x BANANA)`,
		`SELECT x FROM a WHERE`,
		`INSERT INTO t VALUES (1,`,
		`CREATE VIEW v AS SELECT 'unterminated FROM t`,
		`DROP TABLE t`,
	}
	for _, sql := range bad {
		if _, err := sqlparser.Parse(sql); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 2, EmpsPerDept: 2})
	tr := translatorOverCorpus(db)
	bad := []string{
		`SELECT x FROM Nope`,
		`SELECT EName FROM Emp, Dept`, // cross product
		`SELECT EName FROM Emp HAVING SUM(Salary) > 1`,
		`SELECT Missing FROM Emp`,
	}
	for _, sql := range bad {
		stmt, err := sqlparser.ParseOne(sql)
		if err != nil {
			continue // some fail at parse, fine
		}
		sel, ok := stmt.(*sqlparser.SelectStmt)
		if !ok {
			continue
		}
		tree, err := tr.TranslateSelect(sel)
		if err != nil {
			continue
		}
		// Column resolution errors can surface at evaluation.
		if _, err := exec.NewFree(db.Store).Eval(tree); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestCommentsAndCaseInsensitivity(t *testing.T) {
	sql := `
-- the paper's view, lower-cased keywords
create view V as
select DName, count(*) as n from Emp group by DName having count(*) > 0
`
	stmt, err := sqlparser.ParseOne(sql)
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*sqlparser.CreateView)
	if cv.Name != "V" || len(cv.Select.GroupBy) != 1 {
		t.Errorf("parse = %+v", cv)
	}
	if !strings.EqualFold(cv.Select.Items[1].As, "n") {
		t.Errorf("alias = %q", cv.Select.Items[1].As)
	}
}

// TestUnionExceptSQL: UNION ALL and EXCEPT ALL compound selects.
func TestUnionExceptSQL(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 4, EmpsPerDept: 2, ADeptsEveryN: 2})
	tr := translatorOverCorpus(db)

	stmt, err := sqlparser.ParseOne(`
SELECT DName FROM Emp
UNION ALL
SELECT DName FROM ADepts`)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := tr.TranslateSelect(stmt.(*sqlparser.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.NewFree(db.Store).Eval(tree)
	if err != nil {
		t.Fatal(err)
	}
	// 8 employee names (bag) + 2 ADepts names.
	if res.Total() != 10 {
		t.Errorf("union total = %d, want 10", res.Total())
	}

	stmt, err = sqlparser.ParseOne(`
SELECT DName FROM Emp
EXCEPT ALL
SELECT DName FROM ADepts`)
	if err != nil {
		t.Fatal(err)
	}
	tree, err = tr.TranslateSelect(stmt.(*sqlparser.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	res, err = exec.NewFree(db.Store).Eval(tree)
	if err != nil {
		t.Fatal(err)
	}
	// d0 and d2 lose one copy each: 8 - 2 = 6.
	if res.Total() != 6 {
		t.Errorf("except total = %d, want 6", res.Total())
	}

	// Plain UNION (set semantics) is rejected with a helpful error.
	if _, err := sqlparser.ParseOne(`SELECT DName FROM Emp UNION SELECT DName FROM ADepts`); err == nil {
		t.Error("plain UNION should be rejected (only UNION ALL)")
	}
	// Arity mismatch is caught at translation.
	stmt, err = sqlparser.ParseOne(`SELECT DName, Salary FROM Emp UNION ALL SELECT DName FROM ADepts`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TranslateSelect(stmt.(*sqlparser.SelectStmt)); err == nil {
		t.Error("arity mismatch should be rejected")
	}
}
