package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wal"
)

var (
	obsWindows     = obs.C("server.hub.windows")
	obsQueueDepth  = obs.G("server.hub.queue")
	obsSubscribers = obs.G("server.sse.subscribers")
	obsDropped     = obs.C("server.sse.dropped")
	obsEvents      = obs.C("server.sse.events")
	obsFeedErrs    = obs.C("server.feed.errors")
)

func errf(format string, args ...any) error { return fmt.Errorf("server: "+format, args...) }

// subCount backs the subscribers gauge (obs gauges are set-only).
var subCount atomic.Int64

func subGauge(d int64) { obsSubscribers.Set(float64(subCount.Add(d))) }

// Change is one cloned view change: tuples owned by the hub, count
// normalized to >= 1 exactly like the wire codec (delta.AppendChange),
// so live events and log-replayed events encode identically.
type Change struct {
	Old   value.Tuple
	New   value.Tuple
	Count int64
}

// ViewSource declares one view the hub serves: its public name, row
// schema, the equivalence-node ID its deltas arrive under, and the
// backing relation the seed snapshot is taken from.
type ViewSource struct {
	Name   string
	Schema *catalog.Schema
	EqID   int
	Rel    *storage.Relation
}

// HubConfig configures NewHub.
type HubConfig struct {
	Views []ViewSource
	// Feed, when set, journals every window for changefeed resume.
	// Without it, reconnecting subscribers can only join live.
	Feed *wal.FeedLog
	// Retain bounds the per-view epoch ring (default 64).
	Retain int
	// SubscriberBuffer is the per-subscriber ring capacity (default
	// 256). A subscriber that falls further behind is disconnected —
	// the resume path through the feed log is the real buffer.
	SubscriberBuffer int
}

// ownedWindow is one window after the hook's synchronous deep-clone:
// everything it references survives the maintainer's arena reset.
type ownedWindow struct {
	windowSeq uint64
	lsn       uint64
	txns      int
	views     []ownedViewDelta
}

type ownedViewDelta struct {
	state   *viewState
	changes []Change
}

// Hub receives applied windows from the maintainer's window hook,
// journals them to the feed log, folds them into per-view epochs and
// fans per-view events out to SSE subscribers. One hub goroutine does
// the folding/fan-out so the writer's hook only pays for the clone and
// an enqueue.
type Hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []ownedWindow
	closed bool
	done   chan struct{}

	views map[string]*viewState // immutable after NewHub
	byEq  map[int]*viewState    // immutable after NewHub

	feed    *wal.FeedLog
	feedSeq uint64 // hub goroutine only (mirrors feed.LastSeq when set)

	retain int
	subCap int

	enc value.KeyEncoder // hub goroutine only
}

// NewHub builds the hub, seeds every view's epoch 0 from its backing
// relation, and starts the fold/fan-out goroutine. Seeding must happen
// while the maintainer is quiescent (no window in flight) — NewHub
// verifies that by re-reading each relation's fence counter around the
// snapshot and retrying if a window landed in between.
func NewHub(cfg HubConfig) (*Hub, error) {
	h := &Hub{
		views:  map[string]*viewState{},
		byEq:   map[int]*viewState{},
		feed:   cfg.Feed,
		retain: cfg.Retain,
		subCap: cfg.SubscriberBuffer,
		done:   make(chan struct{}),
	}
	if h.retain <= 0 {
		h.retain = 64
	}
	if h.subCap <= 0 {
		h.subCap = 256
	}
	h.cond = sync.NewCond(&h.mu)
	if h.feed != nil {
		h.feedSeq = h.feed.LastSeq()
	}
	for _, src := range cfg.Views {
		if src.Name == "" || src.Schema == nil || src.Rel == nil {
			return nil, errf("view source %q incomplete", src.Name)
		}
		if _, dup := h.views[src.Name]; dup {
			return nil, errf("duplicate view %q", src.Name)
		}
		vs := &viewState{name: src.Name, schema: src.Schema, eqID: src.EqID,
			rows: map[string]Row{}}
		for retry := 0; ; retry++ {
			v0 := src.Rel.Version()
			rows := src.Rel.Snapshot()
			if src.Rel.Version() == v0 {
				for _, r := range rows {
					vs.rows[string(h.enc.Key(r.Tuple))] = Row{Tuple: r.Tuple, Count: r.Count}
				}
				break
			}
			if retry > 100 {
				return nil, errf("view %q: cannot seed a stable snapshot (writer active)", src.Name)
			}
			clear(vs.rows)
		}
		ep := vs.snapshot(h.feedSeq, 0, &h.enc)
		vs.cur.Store(ep)
		vs.ring = append(vs.ring, ep)
		h.views[src.Name] = vs
		h.byEq[src.EqID] = vs
	}
	go h.run()
	return h, nil
}

// OnWindow is the maintain.WindowHook: it runs on the writer's window
// goroutine, so it does the minimum — deep-clone the served views'
// deltas (they die at the next arena reset) and enqueue. Windows that
// touch no served view produce no feed record and no epoch.
func (h *Hub) OnWindow(u maintain.WindowUpdate) {
	var vds []ownedViewDelta
	for eqID, vs := range h.byEq {
		d := u.Deltas[eqID]
		if d.Empty() {
			continue
		}
		changes := make([]Change, 0, len(d.Changes))
		for _, c := range d.Changes {
			oc := Change{Count: c.Count}
			if oc.Count <= 0 {
				oc.Count = 1
			}
			if c.Old != nil {
				oc.Old = c.Old.Clone()
			}
			if c.New != nil {
				oc.New = c.New.Clone()
			}
			changes = append(changes, oc)
		}
		vds = append(vds, ownedViewDelta{state: vs, changes: changes})
	}
	if len(vds) == 0 {
		return
	}
	sort.Slice(vds, func(i, j int) bool { return vds[i].state.name < vds[j].state.name })
	h.mu.Lock()
	if !h.closed {
		h.queue = append(h.queue, ownedWindow{
			windowSeq: u.Seq, lsn: u.LSN, txns: u.Txns, views: vds})
		obsQueueDepth.Set(float64(len(h.queue)))
		h.cond.Signal()
	}
	h.mu.Unlock()
}

// run is the hub goroutine: drain the queue, journal, fold, publish,
// fan out.
func (h *Hub) run() {
	defer close(h.done)
	for {
		h.mu.Lock()
		for len(h.queue) == 0 && !h.closed {
			h.cond.Wait()
		}
		if len(h.queue) == 0 && h.closed {
			h.mu.Unlock()
			return
		}
		w := h.queue[0]
		h.queue[0] = ownedWindow{}
		h.queue = h.queue[1:]
		if len(h.queue) == 0 {
			// Drop the drained backing array: a burst would otherwise
			// pin its high-water slice forever.
			h.queue = nil
		}
		obsQueueDepth.Set(float64(len(h.queue)))
		h.mu.Unlock()
		h.process(w)
	}
}

func (h *Hub) process(w ownedWindow) {
	obsWindows.Inc()
	// Journal first: the feed record must be on disk before any
	// subscriber can observe the event id, or a resume from that id
	// would miss it.
	if h.feed != nil {
		coalesced := make(delta.Coalesced, 0, len(w.views))
		for _, vd := range w.views {
			d := delta.New(vd.state.schema)
			for _, c := range vd.changes {
				d.Changes = append(d.Changes, delta.Change{Old: c.Old, New: c.New, Count: c.Count})
			}
			coalesced = append(coalesced, delta.RelDelta{Rel: vd.state.name, Delta: d})
		}
		seq, err := h.feed.Append(w.windowSeq, w.lsn, w.txns, coalesced)
		if err != nil {
			// A broken feed log stops resume, not serving: keep
			// assigning sequence numbers so snapshots and live
			// subscribers continue.
			obsFeedErrs.Inc()
			h.feedSeq++
		} else {
			h.feedSeq = seq
		}
	} else {
		h.feedSeq++
	}
	seq := h.feedSeq

	for _, vd := range w.views {
		vs := vd.state
		vs.fold(vd.changes, &h.enc)
		ep := vs.snapshot(seq, w.lsn, &h.enc)
		ev := Event{
			View: vs.name,
			Seq:  seq,
			Data: buildEventJSON(vs.name, seq, w.windowSeq, w.lsn, w.txns, vd.changes),
		}
		h.mu.Lock()
		vs.cur.Store(ep)
		vs.ring = append(vs.ring, ep)
		if len(vs.ring) > h.retain {
			n := copy(vs.ring, vs.ring[len(vs.ring)-h.retain:])
			for i := n; i < len(vs.ring); i++ {
				vs.ring[i] = nil
			}
			vs.ring = vs.ring[:n]
		}
		for i := 0; i < len(vs.subs); {
			sub := vs.subs[i]
			select {
			case sub.ch <- ev:
				obsEvents.Inc()
				i++
			default:
				// Backpressure policy: a subscriber that cannot keep a
				// ring of subCap events is cut loose — it reconnects
				// with Last-Event-ID and replays from the feed log,
				// which is the buffer that actually scales.
				obsDropped.Inc()
				sub.closeLocked()
				vs.subs = removeSub(vs.subs, i)
			}
		}
		h.mu.Unlock()
	}
}

// Event is one fanned-out changefeed entry: the precomputed SSE data
// payload, shared (read-only) across every subscriber of the view.
type Event struct {
	View string
	Seq  uint64
	Data []byte
}

// buildEventJSON renders the deterministic event payload. Both the live
// path and feed-log replay call it with counts normalized >= 1, so a
// resumed stream is byte-identical to an uninterrupted one.
func buildEventJSON(view string, seq, windowSeq, lsn uint64, txns int, changes []Change) []byte {
	b := make([]byte, 0, 64+32*len(changes))
	b = append(b, `{"view":`...)
	b = appendValueJSON(b, value.NewString(view))
	b = append(b, `,"seq":`...)
	b = appendUint(b, seq)
	b = append(b, `,"window_seq":`...)
	b = appendUint(b, windowSeq)
	b = append(b, `,"lsn":`...)
	b = appendUint(b, lsn)
	b = append(b, `,"txns":`...)
	b = appendUint(b, uint64(txns))
	b = append(b, `,"changes":[`...)
	for i, c := range changes {
		if i > 0 {
			b = append(b, ',')
		}
		switch {
		case c.Old == nil:
			b = append(b, `{"op":"insert","new":`...)
			b = appendTupleJSON(b, c.New)
		case c.New == nil:
			b = append(b, `{"op":"delete","old":`...)
			b = appendTupleJSON(b, c.Old)
		default:
			b = append(b, `{"op":"modify","old":`...)
			b = appendTupleJSON(b, c.Old)
			b = append(b, `,"new":`...)
			b = appendTupleJSON(b, c.New)
		}
		b = append(b, `,"count":`...)
		b = appendUint(b, uint64(c.Count))
		b = append(b, '}')
	}
	return append(b, `]}`...)
}

func appendUint(b []byte, n uint64) []byte {
	return fmt.Appendf(b, "%d", n)
}

func removeSub(subs []*subscriber, i int) []*subscriber {
	subs[i] = subs[len(subs)-1]
	subs[len(subs)-1] = nil
	return subs[:len(subs)-1]
}

// ViewNames returns the served view names, sorted.
func (h *Hub) ViewNames() []string {
	out := make([]string, 0, len(h.views))
	for n := range h.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schema returns the schema of a served view.
func (h *Hub) Schema(view string) (*catalog.Schema, bool) {
	vs, ok := h.views[view]
	if !ok {
		return nil, false
	}
	return vs.schema, true
}

// Current returns the newest published epoch of a view.
func (h *Hub) Current(view string) (*Epoch, bool) {
	vs, ok := h.views[view]
	if !ok {
		return nil, false
	}
	return vs.cur.Load(), true
}

// EpochAt returns the epoch that was current as of feed sequence seq:
// the newest retained epoch with Seq <= seq. Pinning one seq across
// several views therefore yields a mutually consistent multi-view read.
// evicted reports that the epoch existed but has left the retention
// ring (the HTTP layer turns it into 410 Gone).
func (h *Hub) EpochAt(view string, seq uint64) (ep *Epoch, evicted, ok bool) {
	vs, found := h.views[view]
	if !found {
		return nil, false, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := len(vs.ring) - 1; i >= 0; i-- {
		if vs.ring[i].Seq <= seq {
			return vs.ring[i], false, true
		}
	}
	return nil, true, true
}

// subscriber is one SSE client's live ring.
type subscriber struct {
	view   string
	ch     chan Event
	closed bool // guarded by the hub mutex
}

func (s *subscriber) closeLocked() {
	if !s.closed {
		s.closed = true
		close(s.ch)
		subGauge(-1)
	}
}

// Subscription is a live changefeed attachment. Events delivers in feed
// order; a closed channel means the hub cut the subscriber loose (shut
// down, or it fell behind its ring) and the client should reconnect
// with its last seen sequence.
type Subscription struct {
	hub *Hub
	sub *subscriber
	// Replayed holds the events recovered from the feed log for a
	// resume request, in order, all with Seq > the requested cursor.
	// Live events may overlap its tail; consumers dedupe by Seq.
	Replayed []Event
}

// Events is the live channel.
func (s *Subscription) Events() <-chan Event { return s.sub.ch }

// Close detaches the subscription.
func (s *Subscription) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	vs := h.views[s.sub.view]
	for i, sub := range vs.subs {
		if sub == s.sub {
			vs.subs = removeSub(vs.subs, i)
			break
		}
	}
	s.sub.closeLocked()
}

// Subscribe attaches a changefeed subscriber to a view. after is the
// resume cursor: 0 for "live from now", otherwise the last event id the
// client saw. The subscriber is registered BEFORE the feed log is read,
// so every event lands in the replay, the live ring, or both — never
// neither; the consumer drops live events with Seq <= the last replayed
// Seq.
func (h *Hub) Subscribe(view string, after uint64) (*Subscription, error) {
	vs, ok := h.views[view]
	if !ok {
		return nil, errf("unknown view %q", view)
	}
	sub := &subscriber{view: view, ch: make(chan Event, h.subCap)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errf("hub closed")
	}
	vs.subs = append(vs.subs, sub)
	subGauge(1)
	cur := h.feed != nil && after > 0
	h.mu.Unlock()

	s := &Subscription{hub: h, sub: sub}
	if cur {
		err := h.feed.Replay(after, h.schemaSource(), func(rec wal.FeedRecord) error {
			for _, rd := range rec.Views {
				if rd.Rel != view {
					continue
				}
				changes := make([]Change, 0, len(rd.Delta.Changes))
				for _, c := range rd.Delta.Changes {
					changes = append(changes, Change{Old: c.Old, New: c.New, Count: c.Count})
				}
				s.Replayed = append(s.Replayed, Event{
					View: view,
					Seq:  rec.Seq,
					Data: buildEventJSON(view, rec.Seq, rec.WindowSeq, rec.LSN, rec.Txns, changes),
				})
			}
			return nil
		})
		if err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// schemaSource resolves VIEW names for feed-log decoding.
func (h *Hub) schemaSource() delta.SchemaSource {
	return func(rel string) (*catalog.Schema, bool) {
		vs, ok := h.views[rel]
		if !ok {
			return nil, false
		}
		return vs.schema, true
	}
}

// Stats reports hub gauges for /status.
type Stats struct {
	Views       int    `json:"views"`
	FeedSeq     uint64 `json:"feed_seq"`
	Subscribers int    `json:"subscribers"`
	QueueDepth  int    `json:"queue_depth"`
}

// Stats snapshots the hub's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	subs := 0
	for _, vs := range h.views {
		subs += len(vs.subs)
	}
	return Stats{Views: len(h.views), FeedSeq: h.feedSeq,
		Subscribers: subs, QueueDepth: len(h.queue)}
}

// Close drains the queue, detaches every subscriber and stops the hub
// goroutine. The installed window hook becomes a no-op enqueue; callers
// should also remove it from the maintainer.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
	<-h.done
	h.mu.Lock()
	for _, vs := range h.views {
		for _, sub := range vs.subs {
			sub.closeLocked()
		}
		vs.subs = nil
	}
	h.mu.Unlock()
	if h.feed != nil {
		return h.feed.Close()
	}
	return nil
}
