package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotIsolation is the property test for the epoch read path:
// readers that pin an epoch k must see byte-identical view contents
// while windows k+1..k+n apply concurrently. It runs with slab
// recycling active (FreshAlloc=false, the default — the interaction
// most likely to bite, since view storage reuses freed tuple slots) and
// with it disabled, under the race detector when -race is on.
func TestSnapshotIsolation(t *testing.T) {
	for _, fresh := range []bool{false, true} {
		name := "slab-recycling"
		if fresh {
			name = "fresh-alloc"
		}
		t.Run(name, func(t *testing.T) {
			db, sys := buildSystem(t, 12, 4)
			db.Store.FreshAlloc = fresh
			_, client := startServing(t, sys)

			const (
				windows = 80
				readers = 4
			)
			var (
				wg         sync.WaitGroup
				writerDone atomic.Bool
				violations atomic.Int64
			)

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					type pin struct {
						epoch uint64
						body  string
					}
					var pins []pin
					for !writerDone.Load() || len(pins) == 0 {
						// Pin whatever is current now.
						code, body := get(t, client, "http://mv/view/ProblemDept")
						if code != 200 {
							t.Errorf("reader %d: current read = %d", r, code)
							return
						}
						var vr struct {
							Epoch uint64 `json:"epoch"`
						}
						if err := json.Unmarshal(body, &vr); err != nil {
							t.Errorf("reader %d: %v", r, err)
							return
						}
						pins = append(pins, pin{epoch: vr.Epoch, body: string(body)})
						if len(pins) > 8 {
							pins = pins[1:]
						}
						// Re-read every held pin: identical bytes or an
						// honest 410 once retention evicts it.
						for _, p := range pins {
							code, got := get(t, client,
								fmt.Sprintf("http://mv/view/ProblemDept?epoch=%d", p.epoch))
							switch code {
							case http.StatusOK:
								if string(got) != p.body {
									violations.Add(1)
									t.Errorf("reader %d: epoch %d mutated:\n  was %s\n  got %s",
										r, p.epoch, p.body, got)
								}
							case http.StatusGone:
								// evicted: acceptable, drop the pin next loop
							default:
								t.Errorf("reader %d: pinned read = %d %s", r, code, got)
							}
						}
					}
				}(r)
			}

			// Writer: churn the view (insert + delete transitions) for
			// `windows` windows while the readers hammer pinned epochs.
			for i := 0; i < windows; i++ {
				dept := i % 12
				sal := 9000
				if i%2 == 1 {
					sal = 100 // undo: deletes the dept from the view
				}
				stmt := fmt.Sprintf(`UPDATE Emp SET Salary = %d WHERE EName = 'e%03d_00'`, sal, dept)
				if _, err := sys.Execute(stmt); err != nil {
					t.Fatal(err)
				}
			}
			writerDone.Store(true)
			wg.Wait()

			if n := violations.Load(); n != 0 {
				t.Fatalf("%d snapshot-isolation violations", n)
			}

			// Convergence: after the writer quiesces the current epoch
			// must match the maintained view exactly.
			rows, err := sys.ViewRows("ProblemDept")
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for {
				_, body := get(t, client, "http://mv/view/ProblemDept")
				var vr struct {
					Total int `json:"total"`
				}
				if err := json.Unmarshal(body, &vr); err != nil {
					t.Fatal(err)
				}
				if vr.Total == len(rows) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("server never converged: view has %d rows, server %d", len(rows), vr.Total)
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}
