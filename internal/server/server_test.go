package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	mvmaint "repro"
	"repro/internal/server"
	"repro/internal/txn"
)

// buildSystem assembles a small corporate-schema system with the
// ProblemDept view maintained, returning it with the DB populated.
func buildSystem(t testing.TB, depts, emps int) (*mvmaint.DB, *mvmaint.System) {
	t.Helper()
	db := mvmaint.Open()
	db.MustExec(`
CREATE TABLE Dept (DName VARCHAR(20) PRIMARY KEY, MName VARCHAR(20), Budget INT);
CREATE TABLE Emp  (EName VARCHAR(20) PRIMARY KEY, DName VARCHAR(20), Salary INT);
CREATE INDEX dept_dname ON Dept (DName);
CREATE INDEX emp_dname  ON Emp (DName);
CREATE INDEX emp_ename  ON Emp (EName);
CREATE VIEW ProblemDept (DName) AS
SELECT Dept.DName
FROM Emp, Dept
WHERE Dept.DName = Emp.DName
GROUP BY Dept.DName, Budget
HAVING SUM(Salary) > Budget;
`)
	var b strings.Builder
	for i := 0; i < depts; i++ {
		fmt.Fprintf(&b, "INSERT INTO Dept VALUES ('d%03d', 'mgr%03d', 1500);\n", i, i)
		for j := 0; j < emps; j++ {
			fmt.Fprintf(&b, "INSERT INTO Emp VALUES ('e%03d_%02d', 'd%03d', 100);\n", i, j, i)
		}
	}
	db.MustExec(b.String())
	sys, err := db.Build([]string{"ProblemDept"}, mvmaint.Config{
		Workload: []*txn.Type{
			{Name: ">Emp", Weight: 1, Updates: []txn.RelUpdate{
				{Rel: "Emp", Kind: txn.Modify, Size: 1, Cols: []string{"Salary"}}}},
			{Name: ">Dept", Weight: 1, Updates: []txn.RelUpdate{
				{Rel: "Dept", Kind: txn.Modify, Size: 1, Cols: []string{"Budget"}}}},
		},
		Method: mvmaint.Exhaustive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, sys
}

// testServing bundles a Serving with its in-memory HTTP front end so a
// test can shut the whole stack down mid-run (restart scenarios).
type testServing struct {
	sv *mvmaint.Serving
	hs *http.Server
	ln *server.MemListener
}

func (ts *testServing) shutdown() {
	ts.hs.Close()
	ts.ln.Close()
	ts.sv.Close()
}

// startServingDir wires a Serving over an in-memory listener with the
// feed journal in feedDir, returning the stack and an HTTP client
// dialing it.
func startServingDir(t testing.TB, sys *mvmaint.System, feedDir string) (*testServing, *http.Client) {
	t.Helper()
	sv, err := sys.NewServing(mvmaint.ServeOptions{FeedDir: feedDir})
	if err != nil {
		t.Fatal(err)
	}
	ln := server.NewMemListener()
	hs := &http.Server{Handler: sv.Server}
	go hs.Serve(ln)
	ts := &testServing{sv: sv, hs: hs, ln: ln}
	t.Cleanup(ts.shutdown)
	return ts, ln.Client()
}

// startServing is startServingDir with a throwaway feed dir — the
// common case; resume paths are still exercised by default.
func startServing(t testing.TB, sys *mvmaint.System) (*mvmaint.Serving, *http.Client) {
	t.Helper()
	ts, client := startServingDir(t, sys, t.TempDir())
	return ts.sv, client
}

func get(t testing.TB, c *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServerEndToEnd(t *testing.T) {
	_, sys := buildSystem(t, 20, 5)
	_, client := startServing(t, sys)

	// /views lists the maintained view.
	code, body := get(t, client, "http://mv/views")
	if code != 200 || !strings.Contains(string(body), `"ProblemDept"`) {
		t.Fatalf("/views = %d %s", code, body)
	}

	// The view starts empty (no department overspends).
	code, body = get(t, client, "http://mv/view/ProblemDept")
	var vr struct {
		Epoch uint64            `json:"epoch"`
		Total int               `json:"total"`
		Rows  []json.RawMessage `json:"rows"`
	}
	if code != 200 {
		t.Fatalf("/view = %d %s", code, body)
	}
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Total != 0 {
		t.Fatalf("expected empty view, got %d rows", vr.Total)
	}

	// A transaction batch over POST /txn makes d003 overspend.
	req := `{"statements": ["UPDATE Emp SET Salary = 5000 WHERE EName = 'e003_00'"]}`
	resp, err := client.Post("http://mv/txn", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/txn = %d %s", resp.StatusCode, tbody)
	}
	var tr struct {
		Applied int    `json:"applied"`
		LSN     uint64 `json:"lsn"`
	}
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Applied != 1 {
		t.Fatalf("applied = %d, want 1", tr.Applied)
	}

	// The snapshot epoch advances and shows the new row; the hub is
	// asynchronous, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = get(t, client, "http://mv/view/ProblemDept")
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if vr.Total == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if vr.Total != 1 || !strings.Contains(string(body), `"d003"`) {
		t.Fatalf("after txn: /view = %s", body)
	}

	// Point query by key.
	code, body = get(t, client, "http://mv/view/ProblemDept?key=%5B%22d003%22%5D")
	if code != 200 || !strings.Contains(string(body), `"d003"`) {
		t.Fatalf("point query = %d %s", code, body)
	}
	code, body = get(t, client, "http://mv/view/ProblemDept?key=%5B%22d004%22%5D")
	if code != 200 || !strings.Contains(string(body), `"rows":[]`) {
		t.Fatalf("point miss = %d %s", code, body)
	}

	// Metrics: JSON by default, Prometheus under content negotiation.
	code, body = get(t, client, "http://mv/metrics")
	if code != 200 || body[0] != '{' {
		t.Fatalf("/metrics JSON = %d %.60s", code, body)
	}
	code, body = get(t, client, "http://mv/metrics?format=prom")
	if code != 200 || !strings.Contains(string(body), "server_hub_windows") {
		t.Fatalf("/metrics prom = %d %.200s", code, body)
	}

	// Status reports the hub.
	code, body = get(t, client, "http://mv/status")
	if code != 200 || !strings.Contains(string(body), `"views":1`) {
		t.Fatalf("/status = %d %s", code, body)
	}

	// Unknown view: 404. Bad epoch: 410 after retention (not triggered
	// here), bad key: 400.
	if code, _ = get(t, client, "http://mv/view/Nope"); code != 404 {
		t.Fatalf("unknown view = %d, want 404", code)
	}
	if code, _ = get(t, client, "http://mv/view/ProblemDept?key=notjson"); code != 400 {
		t.Fatalf("bad key = %d, want 400", code)
	}
}

// TestEpochPinning: a pinned epoch read returns the same bytes after
// later windows apply, and ?epoch pins across views consistently.
func TestEpochPinning(t *testing.T) {
	_, sys := buildSystem(t, 10, 4)
	_, client := startServing(t, sys)

	// Make d001 overspend, then pin that epoch.
	if _, err := sys.Execute(`UPDATE Emp SET Salary = 9000 WHERE EName = 'e001_00'`); err != nil {
		t.Fatal(err)
	}
	var pinned []byte
	var epoch uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, client, "http://mv/view/ProblemDept")
		var vr struct {
			Epoch uint64 `json:"epoch"`
			Total int    `json:"total"`
		}
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if vr.Total == 1 {
			pinned, epoch = body, vr.Epoch
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("view never showed the update: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Apply more windows that change the view.
	for i := 0; i < 5; i++ {
		stmt := fmt.Sprintf(`UPDATE Emp SET Salary = 9000 WHERE EName = 'e00%d_00'`, 2+i)
		if _, err := sys.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned epoch still reads byte-identical.
	for i := 0; i < 3; i++ {
		code, body := get(t, client, fmt.Sprintf("http://mv/view/ProblemDept?epoch=%d", epoch))
		if code != 200 {
			t.Fatalf("pinned read = %d %s", code, body)
		}
		if string(body) != string(pinned) {
			t.Fatalf("pinned epoch changed:\n  was %s\n  got %s", pinned, body)
		}
	}

	// An epoch far in the future resolves to the newest snapshot;
	// epoch 0 (pre-retention after enough windows) would be 410 — with
	// default retention both are still retained here.
	code, body := get(t, client, "http://mv/view/ProblemDept?epoch=999999")
	if code != 200 {
		t.Fatalf("future epoch = %d %s", code, body)
	}
}

// TestSSELive: a subscriber sees the windows a writer applies, with
// contiguous ids and well-formed frames.
func TestSSELive(t *testing.T) {
	_, sys := buildSystem(t, 10, 4)
	_, client := startServing(t, sys)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://mv/feed/ProblemDept", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	for i := 0; i < 3; i++ {
		stmt := fmt.Sprintf(`UPDATE Emp SET Salary = 9000 WHERE EName = 'e00%d_00'`, i)
		if _, err := sys.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}

	events := readSSE(t, resp.Body, 3)
	for i, ev := range events {
		if ev.id != uint64(i+1) {
			t.Fatalf("event %d has id %d", i, ev.id)
		}
		if !strings.Contains(ev.data, `"view":"ProblemDept"`) ||
			!strings.Contains(ev.data, `"op":"insert"`) {
			t.Fatalf("event %d data %s", i, ev.data)
		}
	}
}

type sseEvent struct {
	id   uint64
	data string
}

// readSSE consumes n events from an SSE stream.
func readSSE(t testing.TB, r io.Reader, n int) []sseEvent {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []sseEvent
	var cur sseEvent
	for len(out) < n && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.data != "":
			out = append(out, cur)
			cur = sseEvent{}
		}
	}
	if len(out) < n {
		t.Fatalf("stream ended after %d of %d events (scan err %v)", len(out), n, sc.Err())
	}
	return out
}
