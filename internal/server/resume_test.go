package server_test

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestChangefeedResume kills a subscriber mid-stream and reconnects it
// with Last-Event-ID: the spliced sequence (events before the kill +
// events after resume) must be gap-free and byte-identical to what a
// subscriber that never disconnected received. The feed journal in the
// Serving's temp dir is what makes the replay possible.
func TestChangefeedResume(t *testing.T) {
	_, sys := buildSystem(t, 12, 4)
	_, client := startServing(t, sys)

	const (
		firstLeg  = 4  // windows before the kill
		secondLeg = 8  // windows after the kill
		total     = firstLeg + secondLeg
	)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	subscribe := func(lastID string) *http.Response {
		req, err := http.NewRequestWithContext(ctx, "GET", "http://mv/feed/ProblemDept", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("subscribe = %d", resp.StatusCode)
		}
		return resp
	}

	// Witness subscriber: connected for the whole run.
	witness := subscribe("")
	defer witness.Body.Close()

	// Victim subscriber: will be killed after the first leg.
	victim := subscribe("")

	// Each write toggles d000 in or out of the view, so every window
	// carries a real change and therefore emits exactly one event.
	write := func(i int) {
		sal := 9000
		if i%2 == 1 {
			sal = 100
		}
		stmt := fmt.Sprintf(`UPDATE Emp SET Salary = %d WHERE EName = 'e000_00'`, sal)
		if _, err := sys.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < firstLeg; i++ {
		write(i)
	}

	victimEvents := readSSE(t, victim.Body, firstLeg)
	// Kill mid-stream: close the connection abruptly.
	victim.Body.Close()
	lastSeen := victimEvents[len(victimEvents)-1].id

	for i := firstLeg; i < total; i++ {
		write(i)
	}

	// Reconnect with Last-Event-ID; the journal replays the missed
	// windows before any live event.
	resumed := subscribe(fmt.Sprintf("%d", lastSeen))
	defer resumed.Body.Close()
	victimEvents = append(victimEvents, readSSE(t, resumed.Body, total-firstLeg)...)

	witnessEvents := readSSE(t, witness.Body, total)

	// Gap-free, duplicate-free ids on the spliced stream.
	if len(victimEvents) != total {
		t.Fatalf("spliced stream has %d events, want %d", len(victimEvents), total)
	}
	for i, ev := range victimEvents {
		if ev.id != uint64(i+1) {
			t.Fatalf("spliced stream event %d has id %d (gap or duplicate)", i, ev.id)
		}
	}

	// Byte-identical to the never-disconnected witness, including the
	// events the victim got live vs the witness's identical live copies
	// and the replayed middle leg.
	for i := range witnessEvents {
		if victimEvents[i].id != witnessEvents[i].id {
			t.Fatalf("event %d: spliced id %d vs witness id %d",
				i, victimEvents[i].id, witnessEvents[i].id)
		}
		if victimEvents[i].data != witnessEvents[i].data {
			t.Fatalf("event id %d differs between replay and live:\n  replay  %s\n  witness %s",
				victimEvents[i].id, victimEvents[i].data, witnessEvents[i].data)
		}
	}
}

// TestResumeAcrossRestart re-opens the Serving (fresh hub, same feed
// dir) and resumes a subscriber from an id issued by the previous
// incarnation — the journal, not hub memory, is the source of truth.
func TestResumeAcrossRestart(t *testing.T) {
	_, sys := buildSystem(t, 12, 4)
	feedDir := t.TempDir()

	start := func() (*testServing, *http.Client) {
		return startServingDir(t, sys, feedDir)
	}

	sv1, client1 := start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req, _ := http.NewRequestWithContext(ctx, "GET", "http://mv/feed/ProblemDept", nil)
	resp, err := client1.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stmt := fmt.Sprintf(`UPDATE Emp SET Salary = 9000 WHERE EName = 'e%03d_00'`, i)
		if _, err := sys.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	first := readSSE(t, resp.Body, 3)
	resp.Body.Close()
	sv1.shutdown()

	// Second incarnation over the same journal: feed seq continues.
	sv2, client2 := start()
	defer sv2.shutdown()
	for i := 3; i < 5; i++ {
		stmt := fmt.Sprintf(`UPDATE Emp SET Salary = 9000 WHERE EName = 'e%03d_00'`, i)
		if _, err := sys.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	req2, _ := http.NewRequestWithContext(ctx, "GET", "http://mv/feed/ProblemDept", nil)
	req2.Header.Set("Last-Event-ID", fmt.Sprintf("%d", first[len(first)-1].id))
	resp2, err := client2.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest := readSSE(t, resp2.Body, 2)
	for i, ev := range rest {
		if ev.id != uint64(4+i) {
			t.Fatalf("post-restart event %d has id %d, want %d", i, ev.id, 4+i)
		}
	}
}
