package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
)

var (
	obsHTTPReqs  = obs.C("server.http.requests")
	obsHTTPErrs  = obs.C("server.http.errors")
	obsReadNs    = obs.H("server.read.ns")
	obsTxnNs     = obs.H("server.txn.ns")
	obsTxnStmts  = obs.C("server.txn.statements")
	obsTxnReject = obs.C("server.txn.rolled_back")
)

// ExecResult is the outcome of one maintained statement, as reported by
// the Exec hook.
type ExecResult struct {
	LSN        uint64
	RolledBack bool
	Violations []string
}

// Config wires a Server. The Exec hook runs one DML statement through
// the owning system's maintained path; the server serializes calls to
// it (the maintenance pipeline is single-writer). Obs, when set, is
// mounted for /metrics, /spans and /debug/ (obs.Handler supplies it).
type Config struct {
	Hub  *Hub
	Exec func(stmt string) (ExecResult, error)
	Obs  http.Handler
}

// Server is the HTTP surface. Routes:
//
//	GET  /views                       served views + current epochs
//	GET  /view/{name}                 scan (limit/offset) or point (key=)
//	                                  reads; epoch= pins a snapshot
//	GET  /feed/{name}                 SSE changefeed (Last-Event-ID or
//	                                  after= resumes from the feed log)
//	POST /txn                         {"statements": [...]} batch
//	GET  /status                      hub stats
//	     /metrics /spans /debug/...   the obs handler
type Server struct {
	hub  *Hub
	exec func(stmt string) (ExecResult, error)
	mux  *http.ServeMux
}

// New builds the server and its routing table.
func New(cfg Config) *Server {
	s := &Server{hub: cfg.Hub, exec: cfg.Exec, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /views", s.handleViews)
	s.mux.HandleFunc("GET /view/{name}", s.handleView)
	s.mux.HandleFunc("GET /feed/{name}", s.handleFeed)
	s.mux.HandleFunc("POST /txn", s.handleTxn)
	s.mux.HandleFunc("GET /status", s.handleStatus)
	if cfg.Obs != nil {
		s.mux.Handle("/metrics", cfg.Obs)
		s.mux.Handle("/spans", cfg.Obs)
		s.mux.Handle("/spans/summary", cfg.Obs)
		s.mux.Handle("/debug/", cfg.Obs)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obsHTTPReqs.Inc()
	s.mux.ServeHTTP(w, r)
}

// Serve listens on addr and serves until the listener fails. It returns
// the bound address via the callback before blocking (useful with :0).
func (s *Server) Serve(addr string, bound func(string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if bound != nil {
		bound(ln.Addr().String())
	}
	srv := &http.Server{Handler: s}
	return srv.Serve(ln)
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	obsHTTPErrs.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleViews(w http.ResponseWriter, _ *http.Request) {
	type viewInfo struct {
		Name  string `json:"name"`
		Epoch uint64 `json:"epoch"`
		LSN   uint64 `json:"lsn"`
		Rows  int    `json:"rows"`
	}
	var out []viewInfo
	for _, name := range s.hub.ViewNames() {
		ep, _ := s.hub.Current(name)
		out = append(out, viewInfo{Name: name, Epoch: ep.Seq, LSN: ep.LSN, Rows: len(ep.Rows)})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Views []viewInfo `json:"views"`
	}{Views: out})
}

// handleView serves one view read from a pinned epoch. Query params:
//
//	epoch=N   read the snapshot as of feed sequence N (410 if evicted)
//	key=[..]  point lookup by full tuple (JSON array typed by schema)
//	limit=N   scan page size (default 1000), offset=N scan start
func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { obsReadNs.Observe(time.Since(t0).Nanoseconds()) }()
	name := r.PathValue("name")
	q := r.URL.Query()

	var ep *Epoch
	if es := q.Get("epoch"); es != "" {
		seq, err := strconv.ParseUint(es, 10, 64)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "bad epoch %q", es)
			return
		}
		got, evicted, ok := s.hub.EpochAt(name, seq)
		if !ok {
			httpErr(w, http.StatusNotFound, "unknown view %q", name)
			return
		}
		if evicted {
			httpErr(w, http.StatusGone, "epoch %d evicted from retention", seq)
			return
		}
		ep = got
	} else {
		got, ok := s.hub.Current(name)
		if !ok {
			httpErr(w, http.StatusNotFound, "unknown view %q", name)
			return
		}
		ep = got
	}

	rows := ep.Rows
	total := len(rows)
	if ks := q.Get("key"); ks != "" {
		schema, _ := s.hub.Schema(name)
		tuple, err := tupleFromJSON([]byte(ks), schema)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		var enc value.KeyEncoder
		if row, ok := ep.Lookup(enc.Key(tuple)); ok {
			rows = []Row{row}
		} else {
			rows = nil
		}
		total = len(rows)
	} else {
		offset, _ := strconv.Atoi(q.Get("offset"))
		limit := 1000
		if ls := q.Get("limit"); ls != "" {
			limit, _ = strconv.Atoi(ls)
		}
		if offset < 0 {
			offset = 0
		}
		if offset > len(rows) {
			offset = len(rows)
		}
		rows = rows[offset:]
		if limit >= 0 && limit < len(rows) {
			rows = rows[:limit]
		}
	}

	// Hand-rolled body: deterministic (same epoch -> same bytes), and no
	// per-row interface boxing on the 10k-client read path.
	b := make([]byte, 0, 64+48*len(rows))
	b = append(b, `{"view":`...)
	b = appendJSONString(b, name)
	b = fmt.Appendf(b, `,"epoch":%d,"lsn":%d,"total":%d,"rows":[`, ep.Seq, ep.LSN, total)
	for i, row := range rows {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"tuple":`...)
		b = appendTupleJSON(b, row.Tuple)
		b = fmt.Appendf(b, `,"count":%d}`, row.Count)
	}
	b = append(b, `]}`...)
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	if s.exec == nil {
		httpErr(w, http.StatusNotImplemented, "server is read-only (no exec hook)")
		return
	}
	t0 := time.Now()
	defer func() { obsTxnNs.Observe(time.Since(t0).Nanoseconds()) }()
	var req struct {
		Statements []string `json:"statements"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Statements) == 0 {
		httpErr(w, http.StatusBadRequest, "no statements")
		return
	}
	type resp struct {
		Applied    int      `json:"applied"`
		RolledBack int      `json:"rolled_back"`
		LSN        uint64   `json:"lsn"`
		Violations []string `json:"violations,omitempty"`
		Error      string   `json:"error,omitempty"`
	}
	var out resp
	for _, stmt := range req.Statements {
		res, err := s.exec(stmt)
		if err != nil {
			out.Error = err.Error()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(out)
			return
		}
		obsTxnStmts.Inc()
		out.Applied++
		if res.RolledBack {
			out.RolledBack++
			obsTxnReject.Inc()
		}
		if res.LSN > out.LSN {
			out.LSN = res.LSN
		}
		out.Violations = append(out.Violations, res.Violations...)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Hub Stats `json:"hub"`
	}{Hub: s.hub.Stats()})
}

// appendJSONString renders one JSON string with full escaping.
func appendJSONString(dst []byte, s string) []byte {
	b, _ := json.Marshal(s)
	return append(dst, b...)
}
