// Package server is the network surface of the maintenance engine: an
// HTTP/JSON server (stdlib only) that serves point and scan queries
// against epoch-pinned MVCC view snapshots, accepts transaction batches,
// and streams per-view changefeeds over SSE with resume-from-sequence
// backed by the changefeed log (wal.FeedLog).
//
// The design premise is that the maintainer's storage has NO read locks:
// slab recycling (DESIGN.md §14) frees readers were never promised.
// Readers therefore never touch maintainer storage. Instead the window
// hook (maintain.SetWindowHook) hands every applied window's per-view
// deltas to a Hub, which deep-clones them synchronously — inside the
// hook, before the next window's arena reset — and folds them, on its
// own goroutine, into per-view immutable Epochs published through an
// atomic pointer. A reader pins an Epoch with one atomic load and owns
// it forever; the writer never blocks on readers and readers never block
// on the writer.
package server

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/value"
)

// Row is one view row inside an Epoch: an owning tuple copy and its bag
// multiplicity.
type Row struct {
	Tuple value.Tuple
	Count int64
}

// Epoch is an immutable snapshot of one view as of a feed sequence
// number. Published epochs are never mutated: handlers serve from them
// without synchronization, and a client that pins Seq re-reads
// byte-identical contents for as long as the epoch is retained.
type Epoch struct {
	// Seq is the feed sequence number whose application produced this
	// epoch (0 for the seed snapshot taken before any window).
	Seq uint64
	// LSN is the WAL durability point covering the epoch (0 in-memory).
	LSN uint64
	// Rows is sorted by encoded tuple key, so scans paginate stably.
	Rows []Row
	// keys maps encoded tuple key -> index into Rows for point queries.
	keys map[string]int
}

// Lookup returns the row matching the encoded key, if any.
func (e *Epoch) Lookup(key []byte) (Row, bool) {
	i, ok := e.keys[string(key)]
	if !ok {
		return Row{}, false
	}
	return e.Rows[i], true
}

// viewState is one served view. The rows map and ring are owned by the
// hub goroutine; cur is the lock-free read path.
type viewState struct {
	name   string
	schema *catalog.Schema
	eqID   int

	rows map[string]Row // encoded key -> live row (hub goroutine only)
	cur  atomic.Pointer[Epoch]

	// ring retains recent epochs, oldest first, so a client can pin a
	// sequence number across several requests (hub goroutine appends
	// under the hub mutex; readers copy the slice header under it too).
	ring []*Epoch

	subs []*subscriber // guarded by the hub mutex
}

// fold applies one view delta to the live rows map. Counts are
// normalized to >= 1 by the cloning path, matching the wire codec.
func (vs *viewState) fold(changes []Change, enc *value.KeyEncoder) {
	for _, c := range changes {
		if c.Old != nil {
			k := string(enc.Key(c.Old))
			r := vs.rows[k]
			r.Count -= c.Count
			if r.Count <= 0 {
				delete(vs.rows, k)
			} else {
				vs.rows[k] = r
			}
		}
		if c.New != nil {
			k := string(enc.Key(c.New))
			r, ok := vs.rows[k]
			if !ok {
				r = Row{Tuple: c.New}
			}
			r.Count += c.Count
			vs.rows[k] = r
		}
	}
}

// snapshot builds a fresh immutable Epoch from the live rows map.
func (vs *viewState) snapshot(seq, lsn uint64, enc *value.KeyEncoder) *Epoch {
	ep := &Epoch{
		Seq:  seq,
		LSN:  lsn,
		Rows: make([]Row, 0, len(vs.rows)),
		keys: make(map[string]int, len(vs.rows)),
	}
	for _, r := range vs.rows {
		ep.Rows = append(ep.Rows, r)
	}
	sort.Slice(ep.Rows, func(i, j int) bool {
		return ep.Rows[i].Tuple.Compare(ep.Rows[j].Tuple) < 0
	})
	for i, r := range ep.Rows {
		ep.keys[string(enc.Key(r.Tuple))] = i
	}
	return ep
}

// appendValueJSON renders one scalar as JSON. Int stays integral (no
// float round-trip), strings go through encoding/json for escaping, and
// non-finite floats degrade to null (JSON has no NaN/Inf).
func appendValueJSON(dst []byte, v value.Value) []byte {
	switch v.Kind {
	case value.Int:
		return strconv.AppendInt(dst, v.I, 10)
	case value.Float:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return append(dst, "null"...)
		}
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case value.String:
		b, _ := json.Marshal(v.S)
		return append(dst, b...)
	case value.Bool:
		if v.B {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	default:
		return append(dst, "null"...)
	}
}

// appendTupleJSON renders a tuple as a JSON array.
func appendTupleJSON(dst []byte, t value.Tuple) []byte {
	dst = append(dst, '[')
	for i, v := range t {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendValueJSON(dst, v)
	}
	return append(dst, ']')
}

// tupleFromJSON decodes a JSON array into a tuple typed by the schema —
// the point-query key parser. JSON numbers land as Int or Float per the
// column kind, so clients can write [3] for an INT column.
func tupleFromJSON(data []byte, s *catalog.Schema) (value.Tuple, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, errf("key is not a JSON array: %v", err)
	}
	if len(raw) != s.Len() {
		return nil, errf("key has %d values, view has %d columns", len(raw), s.Len())
	}
	t := make(value.Tuple, len(raw))
	for i, r := range raw {
		col := s.Cols[i]
		if string(r) == "null" {
			t[i] = value.NewNull()
			continue
		}
		switch col.Type {
		case value.Int:
			var n int64
			if err := json.Unmarshal(r, &n); err != nil {
				return nil, errf("column %s wants INT: %v", col.Name, err)
			}
			t[i] = value.NewInt(n)
		case value.Float:
			var f float64
			if err := json.Unmarshal(r, &f); err != nil {
				return nil, errf("column %s wants FLOAT: %v", col.Name, err)
			}
			t[i] = value.NewFloat(f)
		case value.String:
			var str string
			if err := json.Unmarshal(r, &str); err != nil {
				return nil, errf("column %s wants VARCHAR: %v", col.Name, err)
			}
			t[i] = value.NewString(str)
		case value.Bool:
			var b bool
			if err := json.Unmarshal(r, &b); err != nil {
				return nil, errf("column %s wants BOOLEAN: %v", col.Name, err)
			}
			t[i] = value.NewBool(b)
		default:
			t[i] = value.NewNull()
		}
	}
	return t, nil
}
