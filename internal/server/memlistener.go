package server

import (
	"context"
	"net"
	"net/http"
	"sync"
)

// MemListener is an in-process net.Listener over synchronous pipes: the
// client-swarm benchmark drives 10k+ concurrent HTTP/SSE clients
// through it without consuming file descriptors or ports, which a
// one-CPU CI container cannot spare. Dial returns the client half of a
// fresh pipe whose server half Accept hands to the HTTP server.
type MemListener struct {
	mu     sync.Mutex
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

// NewMemListener returns a ready listener.
func NewMemListener() *MemListener {
	return &MemListener{ch: make(chan net.Conn), closed: make(chan struct{})}
}

// Accept implements net.Listener.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *MemListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// Addr implements net.Listener.
func (l *MemListener) Addr() net.Addr { return memAddr{} }

// Dial opens a client connection to the listener.
func (l *MemListener) Dial(ctx context.Context) (net.Conn, error) {
	client, srv := net.Pipe()
	select {
	case l.ch <- srv:
		return client, nil
	case <-l.closed:
		client.Close()
		srv.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		srv.Close()
		return nil, ctx.Err()
	}
}

// Client returns an http.Client that dials this listener. Connection
// pooling is disabled per-client by generous idle limits; the swarm
// relies on keep-alive so each simulated client holds exactly one pipe.
func (l *MemListener) Client() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				return l.Dial(ctx)
			},
			MaxIdleConns:        1,
			MaxIdleConnsPerHost: 1,
			DisableCompression:  true,
		},
	}
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }
