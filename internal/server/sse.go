package server

import (
	"net/http"
	"strconv"
	"time"
)

// sseKeepalive is the comment-ping interval that keeps idle streams
// from being reaped by intermediaries.
const sseKeepalive = 15 * time.Second

// handleFeed streams a view's changefeed as Server-Sent Events. The
// resume cursor comes from the Last-Event-ID header (standard EventSource
// reconnect) or an after= query parameter; events with feed sequence >
// cursor replay from the feed log before the live stream splices in.
// Event ids are feed sequence numbers, so a client detects its position
// solely from the protocol.
//
// Backpressure: each subscriber owns a bounded ring (HubConfig.
// SubscriberBuffer). A client that falls behind it is disconnected by
// the hub; on reconnect it replays the gap from the feed log. The
// stream ends with a "reset" comment in that case, so well-behaved
// clients reconnect immediately rather than waiting for TCP teardown.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseUint(v, 10, 64)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub, err := s.hub.Subscribe(name, after)
	if err != nil {
		httpErr(w, http.StatusNotFound, "%v", err)
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	var last uint64
	write := func(ev Event) bool {
		if ev.Seq <= last && last != 0 {
			// Replay/live overlap: the event already went out.
			return true
		}
		if _, err := w.Write(sseFrame(ev)); err != nil {
			return false
		}
		last = ev.Seq
		return true
	}
	for _, ev := range sub.Replayed {
		if !write(ev) {
			return
		}
	}
	flusher.Flush()

	keep := time.NewTicker(sseKeepalive)
	defer keep.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-keep.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case ev, open := <-sub.Events():
			if !open {
				// The hub cut us loose (overflow or shutdown): tell the
				// client to reconnect with its Last-Event-ID.
				w.Write([]byte(": reset\n\n"))
				flusher.Flush()
				return
			}
			if !write(ev) {
				return
			}
			// Drain whatever else is ready before flushing once.
			for {
				select {
				case ev, open := <-sub.Events():
					if !open {
						w.Write([]byte(": reset\n\n"))
						flusher.Flush()
						return
					}
					if !write(ev) {
						return
					}
					continue
				default:
				}
				break
			}
			flusher.Flush()
		}
	}
}

// sseFrame renders one event in SSE wire format:
//
//	id: <feed seq>
//	event: window
//	data: <json>
//	<blank>
//
// Data payloads are single-line JSON, so no data-splitting is needed.
func sseFrame(ev Event) []byte {
	b := make([]byte, 0, len(ev.Data)+48)
	b = append(b, "id: "...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, "\nevent: window\ndata: "...)
	b = append(b, ev.Data...)
	return append(b, "\n\n"...)
}
