package delta_test

import (
	"sort"
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// FuzzDeltaApply decodes the fuzz input as a transaction script over the
// Emp relation (inserts, deletes and modifies of live rows), propagates
// the resulting delta through the join → aggregate pipeline, and
// compares both stages against the full-recomputation oracle. Any input
// the decoder accepts must produce exactly the oracle's delta.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{0, 1, 0, 50})
	f.Add([]byte{1, 0, 0, 0, 2, 1, 1, 30})
	f.Add([]byte{2, 2, 1, 90, 0, 0, 0, 10, 1, 1, 1, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 0, 0, 0})
	// Merged-batch shapes: a hire immediately fired (annihilating +1/−1
	// pair), the same tuple inserted twice then deleted twice (same-key
	// insert+delete with multiplicity), and a modify bounced back to near
	// its original value — the windows batching must net out.
	f.Add([]byte{0, 1, 1, 40, 1, 6, 0, 0})
	f.Add([]byte{0, 0, 2, 10, 0, 0, 2, 10, 1, 6, 0, 0, 1, 6, 0, 0})
	f.Add([]byte{2, 0, 1, 60, 2, 0, 2, 60, 2, 0, 1, 60})
	// Merged batch with a shared subexpression: two modifies move distinct
	// rows into the same department at the same salary (their group-key
	// probes collapse to one shared query along the track), then a hire
	// lands in the dangling department — the coalesced window poses the
	// same σ[DName=k] subexpression from multiple changes.
	f.Add([]byte{2, 0, 1, 55, 2, 1, 1, 55, 0, 0, 3, 20})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 96 {
			data = data[:96]
		}
		db := corpus.NewDatabase(corpus.Config{Departments: 3, EmpsPerDept: 2})
		join := algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
			algebra.Scan(db.Catalog.MustGet("Emp")),
			algebra.Scan(db.Catalog.MustGet("Dept")),
		)
		agg := algebra.NewAggregate(
			[]string{"Dept.DName", "Dept.Budget"},
			[]algebra.AggSpec{
				{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "SumSal"},
				{Func: algebra.Count, As: "N"},
			},
			join,
		)
		ev := exec.NewFree(db.Store)
		beforeJoin, err := ev.Eval(join)
		if err != nil {
			t.Fatal(err)
		}
		beforeAgg, err := ev.Eval(agg)
		if err != nil {
			t.Fatal(err)
		}

		// live mirrors the Emp bag so the script only deletes/modifies
		// rows that exist (the engine maintains relations, not arbitrary
		// negative bags).
		empScan, err := ev.Eval(algebra.Scan(db.Catalog.MustGet("Emp")))
		if err != nil {
			t.Fatal(err)
		}
		live := map[string]storage.Row{}
		for _, r := range empScan.Rows {
			live[r.Tuple.Key()] = storage.Row{Tuple: r.Tuple.Clone(), Count: r.Count}
		}
		liveKeys := func() []string {
			out := make([]string, 0, len(live))
			for k := range live {
				out = append(out, k)
			}
			sort.Strings(out)
			return out
		}

		d := delta.New(join.L.Schema())
		// windows mirrors the script one change per "transaction", so the
		// batching pipeline's coalescing can be checked against the
		// sequential composition.
		var windows []map[string]*delta.Delta
		record := func() *delta.Delta {
			sub := delta.New(join.L.Schema())
			windows = append(windows, map[string]*delta.Delta{"Emp": sub})
			return sub
		}
		seq := 0
		for len(data) >= 4 {
			op, a, b, c := data[0], data[1], data[2], data[3]
			data = data[4:]
			switch op % 3 {
			case 0: // hire
				tup := value.Tuple{
					value.NewString(corpus.EmpName(int(a%3), 10+seq)),
					value.NewString(corpus.DeptName(int(b % 4))), // dept 3 dangles
					value.NewInt(int64(c)),
				}
				d.Insert(tup, 1)
				record().Insert(tup, 1)
				r := live[tup.Key()]
				live[tup.Key()] = storage.Row{Tuple: tup, Count: r.Count + 1}
			case 1: // fire a live row
				keys := liveKeys()
				if len(keys) == 0 {
					continue
				}
				victim := live[keys[int(a)%len(keys)]]
				d.Delete(victim.Tuple, 1)
				record().Delete(victim.Tuple, 1)
				if victim.Count <= 1 {
					delete(live, victim.Tuple.Key())
				} else {
					victim.Count--
					live[victim.Tuple.Key()] = victim
				}
			default: // change a live row's salary and maybe department
				keys := liveKeys()
				if len(keys) == 0 {
					continue
				}
				old := live[keys[int(a)%len(keys)]]
				newT := old.Tuple.Clone()
				newT[1] = value.NewString(corpus.DeptName(int(b % 4)))
				newT[2] = value.NewInt(int64(c))
				if newT.Equal(old.Tuple) {
					continue
				}
				d.Modify(old.Tuple, newT, 1)
				record().Modify(old.Tuple, newT, 1)
				if old.Count <= 1 {
					delete(live, old.Tuple.Key())
				} else {
					old.Count--
					live[old.Tuple.Key()] = old
				}
				r := live[newT.Key()]
				live[newT.Key()] = storage.Row{Tuple: newT, Count: r.Count + 1}
			}
			seq++
		}
		if d.Empty() {
			t.Skip()
		}

		// Coalescing the per-transaction windows must equal the composed
		// script delta (signed bag addition — this is what licenses the
		// batch pipeline to propagate once per window).
		merged := delta.Coalesce(windows)
		mergedEmp := merged.Get("Emp")
		if mergedEmp == nil {
			mergedEmp = delta.New(join.L.Schema())
		}
		if !sameDelta(mergedEmp, d.Normalize()) {
			t.Fatalf("coalesce diverges from composition\nscript: %v\ngot  %v\nwant %v",
				d.Changes, mergedEmp.Changes, d.Normalize().Changes)
		}

		joinDelta, err := delta.JoinSide(join, d, 0, storeProbe(db.Store.MustGet("Dept"), []string{"Dept.DName"}))
		if err != nil {
			t.Fatal(err)
		}
		oldGroup := func(gk value.Tuple) ([]storage.Row, error) {
			evq := exec.NewFree(db.Store)
			res, err := evq.EvalFiltered(join, []string{"Dept.DName"}, gk[:1])
			if err != nil {
				return nil, err
			}
			return res.Rows, nil
		}
		aggDelta, err := delta.AggregateFull(agg, joinDelta, oldGroup)
		if err != nil {
			t.Fatal(err)
		}

		db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
		afterJoin, err := ev.Eval(join)
		if err != nil {
			t.Fatal(err)
		}
		afterAgg, err := ev.Eval(agg)
		if err != nil {
			t.Fatal(err)
		}
		if want := resultDiff(join.Schema(), beforeJoin, afterJoin); !sameDelta(joinDelta, want) {
			t.Fatalf("join stage diverges from full recomputation\nscript: %v\ngot  %v\nwant %v",
				d.Changes, joinDelta.Normalize().Changes, want.Changes)
		}
		if want := resultDiff(agg.Schema(), beforeAgg, afterAgg); !sameDelta(aggDelta, want) {
			t.Fatalf("aggregate stage diverges from full recomputation\nscript: %v\ngot  %v\nwant %v",
				d.Changes, aggDelta.Normalize().Changes, want.Changes)
		}
	})
}
