package delta

// Coalesce merges a window of per-transaction update maps into one net
// delta per base relation, valid against the pre-batch state.
//
// Composition is signed bag addition: applying d1 then d2 to a relation
// leaves it in the same state as applying their concatenation, so the
// window's net effect is the tuple-wise sum of signed multiplicities.
// Normalize performs that sum, which is where annihilation happens — a
// tuple inserted by one transaction and deleted by a later one (or a
// modification undone downstream) vanishes before any propagation work
// is spent on it. Relations whose net delta is empty are omitted
// entirely, so a fully self-cancelling window costs nothing.
//
// The result contains only insertions and deletions: modification
// pairing does not survive tuple-wise netting (the old and new halves
// may cancel against other transactions independently).
func Coalesce(windows []map[string]*Delta) map[string]*Delta {
	concat := map[string]*Delta{}
	for _, updates := range windows {
		for rel, d := range updates {
			if d.Empty() {
				continue
			}
			acc, ok := concat[rel]
			if !ok {
				acc = New(d.Schema)
				concat[rel] = acc
			}
			acc.Changes = append(acc.Changes, d.Changes...)
		}
	}
	out := map[string]*Delta{}
	for rel, acc := range concat {
		if net := acc.Normalize(); !net.Empty() {
			out[rel] = net
		}
	}
	return out
}
