package delta

import (
	"sort"

	"repro/internal/obs"
)

// Registry mirrors of coalescing work: how many signed-row units
// entered a window, how many survived netting, and how many annihilated
// — the measured counterpart of the batching win the §3.6 arithmetic
// only estimates. Units are signed rows (|Count| per tuple side, so a
// modification is two: −old and +new), the currency Normalize nets in;
// counting raw Change entries would let out exceed in whenever a
// modification survives as a split delete+insert pair.
var (
	obsCoalesceWindows     = obs.C("delta.coalesce.windows")
	obsCoalesceChangesIn   = obs.C("delta.coalesce.changes_in")
	obsCoalesceChangesOut  = obs.C("delta.coalesce.changes_out")
	obsCoalesceAnnihilated = obs.C("delta.coalesce.annihilated")
)

// signedUnits is the netting currency of a delta: per change, |Count|
// for each non-nil tuple side. Netting can only cancel units, never
// mint them, so the metric in − out is always ≥ 0.
func signedUnits(d *Delta) int64 {
	var n int64
	for _, c := range d.Changes {
		k := c.Count
		if k < 0 {
			k = -k
		}
		if c.Old != nil {
			n += k
		}
		if c.New != nil {
			n += k
		}
	}
	return n
}

// RelDelta is one base relation's net delta within a coalesced window.
type RelDelta struct {
	Rel   string
	Delta *Delta
}

// Coalesced is a window's net effect: one entry per base relation with
// a non-empty net delta, sorted by relation name. The ordering is part
// of the contract — batch logs, metrics snapshots and downstream plan
// keys all iterate it, so it must be identical across runs.
type Coalesced []RelDelta

// Get returns the net delta for a relation (nil when the relation's
// window effect annihilated or the relation was untouched).
func (c Coalesced) Get(rel string) *Delta {
	for _, rd := range c {
		if rd.Rel == rel {
			return rd.Delta
		}
	}
	return nil
}

// Coalescer performs window coalescing with reusable scratch: the
// per-relation concatenation deltas, the normalizer's netting table,
// the per-relation normalized output deltas and the output slice all
// persist across windows (truncated, not freed), so a steady-state
// window coalesces with no heap allocation at all. The returned
// Coalesced — and every delta it points at — is therefore valid only
// until the next Coalesce call on the same Coalescer, matching the
// maintenance contract that a window's deltas die at the next window.
// Not safe for concurrent use; each maintainer owns one.
type Coalescer struct {
	nz     Normalizer
	concat map[string]*Delta
	norm   map[string]*Delta // recycled normalized outputs, one per relation
	out    Coalesced         // recycled output slice
}

// Coalesce merges a window of per-transaction update maps into one net
// delta per base relation, valid against the pre-batch state, sorted by
// relation name.
//
// Composition is signed bag addition: applying d1 then d2 to a relation
// leaves it in the same state as applying their concatenation, so the
// window's net effect is the tuple-wise sum of signed multiplicities.
// Normalize performs that sum, which is where annihilation happens — a
// tuple inserted by one transaction and deleted by a later one (or a
// modification undone downstream) vanishes before any propagation work
// is spent on it. Relations whose net delta is empty are omitted
// entirely, so a fully self-cancelling window costs nothing.
//
// The result contains only insertions and deletions: modification
// pairing does not survive tuple-wise netting (the old and new halves
// may cancel against other transactions independently).
func (co *Coalescer) Coalesce(windows []map[string]*Delta) Coalesced {
	obsCoalesceWindows.Inc()
	if co.concat == nil {
		co.concat = map[string]*Delta{}
	}
	for _, acc := range co.concat {
		acc.Changes = acc.Changes[:0]
	}
	var changesIn int64
	for _, updates := range windows {
		for rel, d := range updates {
			if d.Empty() {
				continue
			}
			changesIn += signedUnits(d)
			acc, ok := co.concat[rel]
			if !ok {
				acc = New(d.Schema)
				co.concat[rel] = acc
			}
			acc.Schema = d.Schema
			acc.Changes = append(acc.Changes, d.Changes...)
		}
	}
	if co.norm == nil {
		co.norm = map[string]*Delta{}
	}
	out := co.out[:0]
	var changesOut int64
	for rel, acc := range co.concat {
		if len(acc.Changes) == 0 {
			continue
		}
		dst, ok := co.norm[rel]
		if !ok {
			dst = New(acc.Schema)
			co.norm[rel] = dst
		}
		if net := co.nz.NormalizeInto(acc, dst); !net.Empty() {
			out = append(out, RelDelta{Rel: rel, Delta: net})
			changesOut += signedUnits(net)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	co.out = out
	obsCoalesceChangesIn.Add(changesIn)
	obsCoalesceChangesOut.Add(changesOut)
	obsCoalesceAnnihilated.Add(changesIn - changesOut)
	return out
}

// Coalesce is the one-shot form: a fresh Coalescer per call. Hot paths
// hold a Coalescer to reuse its scratch across windows.
func Coalesce(windows []map[string]*Delta) Coalesced {
	var co Coalescer
	return co.Coalesce(windows)
}
