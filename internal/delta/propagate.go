package delta

import (
	"repro/internal/algebra"
	"repro/internal/storage"
	"repro/internal/value"
)

// Probe answers a point query on a pre-update input: all rows whose key
// columns equal jk. The caller decides how the probe is served (index
// lookup on a materialized view, recursive evaluation, ...), which is
// where the paper's query costs arise.
type Probe func(jk value.Tuple) ([]storage.Row, error)

// CountProbe answers "what is the pre-update multiplicity of t".
type CountProbe func(t value.Tuple) (int64, error)

// Select propagates d through a selection: changes whose tuples fail the
// predicate are dropped or downgraded (a modification that crosses the
// predicate boundary becomes an insertion or deletion). One-shot form of
// CompileSelect + Apply.
func Select(sel *algebra.Select, d *Delta) (*Delta, error) {
	p, err := CompileSelect(sel, d.Schema)
	if err != nil {
		return nil, err
	}
	return p.Apply(d)
}

// Project propagates d through a projection. Modifications whose old and
// new tuples collapse to the same projected tuple are dropped. One-shot
// form of CompileProject + Apply.
func Project(p *algebra.Project, d *Delta) (*Delta, error) {
	pl, err := CompileProject(p, d.Schema)
	if err != nil {
		return nil, err
	}
	return pl.Apply(d)
}

// JoinSide propagates a delta arriving on one side of an equijoin.
// side 0 means d is against j.L, side 1 against j.R. probe returns the
// pre-update matching rows of the *other* side for a join-key value.
//
// A modification that preserves the join key stays a modification (paired
// with each matching row); one that moves the tuple across join keys
// becomes a deletion of the old matches plus an insertion of the new.
func JoinSide(j *algebra.Join, d *Delta, side int, probe Probe) (*Delta, error) {
	p, err := CompileJoinSide(j, side, d.Schema)
	if err != nil {
		return nil, err
	}
	return p.Apply(d, probe)
}

// JoinBoth combines the three terms of the bag-join differential when
// both inputs changed in the same transaction:
//
//	Δ(L⋈R) = ΔL⋈R_old ∪ L_old⋈ΔR ∪ ΔL⋈ΔR
//
// probeR and probeL answer against the pre-update states. The ΔL⋈ΔR term
// is computed in memory over signed rows (modifications expand to
// -old/+new), so re-pairing of modifications is not preserved across this
// term — the result is returned normalized.
func JoinBoth(j *algebra.Join, dl, dr *Delta, probeL, probeR Probe) (*Delta, error) {
	p, err := CompileJoin(j, dl.Schema, dr.Schema)
	if err != nil {
		return nil, err
	}
	return p.ApplyBoth(dl, dr, probeL, probeR)
}

// Distinct propagates d through duplicate elimination. countOf reports
// the pre-update bag multiplicity of a tuple in the child.
func Distinct(dis *algebra.Distinct, d *Delta, countOf CountProbe) (*Delta, error) {
	// Work on the normalized (signed) form: distinct output changes only
	// when a tuple's count crosses 0.
	net := d.Normalize()
	out := New(d.Schema)
	for _, c := range net.Changes {
		switch {
		case c.IsInsert():
			before, err := countOf(c.New)
			if err != nil {
				return nil, err
			}
			if before == 0 {
				out.Insert(c.New, 1)
			}
		case c.IsDelete():
			before, err := countOf(c.Old)
			if err != nil {
				return nil, err
			}
			if before-c.Count <= 0 && before > 0 {
				out.Delete(c.Old, 1)
			}
		}
	}
	return out, nil
}

// UnionSide propagates a delta through bag union: changes pass through
// unchanged (counts add across sides, so any change on one side is a
// change of the result).
func UnionSide(u *algebra.Union, d *Delta) *Delta {
	out := New(u.Schema())
	out.Changes = append(out.Changes, d.Changes...)
	return out
}

// DiffSide propagates a delta through bag difference L − R (counts floor
// at zero). side 0 means d is against L. countL and countR report
// pre-update multiplicities.
func DiffSide(diff *algebra.Diff, d *Delta, side int, countL, countR CountProbe) (*Delta, error) {
	net := d.Normalize()
	// Net signed change per tuple on the changed side.
	type affected struct {
		tuple value.Tuple
		delta int64
	}
	var all []affected
	for _, c := range net.Changes {
		n := c.Count
		if n == 0 {
			n = 1
		}
		switch {
		case c.IsInsert():
			all = append(all, affected{c.New, +n})
		case c.IsDelete():
			all = append(all, affected{c.Old, -n})
		}
	}
	out := New(diff.Schema())
	for _, a := range all {
		l, err := countL(a.tuple)
		if err != nil {
			return nil, err
		}
		r, err := countR(a.tuple)
		if err != nil {
			return nil, err
		}
		oldOut := maxInt64(0, l-r)
		var newOut int64
		if side == 0 {
			newOut = maxInt64(0, l+a.delta-r)
		} else {
			newOut = maxInt64(0, l-(r+a.delta))
		}
		switch {
		case newOut > oldOut:
			out.Insert(a.tuple, newOut-oldOut)
		case newOut < oldOut:
			out.Delete(a.tuple, oldOut-newOut)
		}
	}
	return out, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// GroupRowsFromDelta extracts, per group key, the OLD rows present in the
// delta itself. It serves as the oldGroup probe when the delta is known
// to cover entire groups (the paper's key-based optimization that makes
// query Q3d free: "the result propagated up along E5 and N4 contains all
// the tuples in the group").
func GroupRowsFromDelta(d *Delta, groupCols []string) (func(value.Tuple) ([]storage.Row, error), error) {
	pos := make([]int, len(groupCols))
	for i, c := range groupCols {
		j, err := d.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = j
	}
	byGroup := map[string][]storage.Row{}
	var enc value.KeyEncoder
	for _, c := range d.Changes {
		if c.Old == nil {
			continue
		}
		n := c.Count
		if n == 0 {
			n = 1
		}
		kb := enc.ProjectedKey(c.Old, pos)
		byGroup[string(kb)] = append(byGroup[string(kb)], storage.Row{Tuple: c.Old, Count: n})
	}
	return func(gk value.Tuple) ([]storage.Row, error) {
		return byGroup[string(enc.Key(gk))], nil
	}, nil
}

// projEqual reports whether two tuples agree on the given positions,
// without materializing the projections.
func projEqual(a, b value.Tuple, pos []int) bool {
	for _, j := range pos {
		if !value.Equal(a[j], b[j]) {
			return false
		}
	}
	return true
}
