package delta

import (
	"repro/internal/algebra"
	"repro/internal/storage"
	"repro/internal/value"
)

// Probe answers a point query on a pre-update input: all rows whose key
// columns equal jk. The caller decides how the probe is served (index
// lookup on a materialized view, recursive evaluation, ...), which is
// where the paper's query costs arise.
type Probe func(jk value.Tuple) ([]storage.Row, error)

// CountProbe answers "what is the pre-update multiplicity of t".
type CountProbe func(t value.Tuple) (int64, error)

// Select propagates d through a selection: changes whose tuples fail the
// predicate are dropped or downgraded (a modification that crosses the
// predicate boundary becomes an insertion or deletion).
func Select(sel *algebra.Select, d *Delta) (*Delta, error) {
	f, err := sel.Pred.Compile(d.Schema)
	if err != nil {
		return nil, err
	}
	out := New(d.Schema)
	for _, c := range d.Changes {
		oldIn := c.Old != nil && f(c.Old).Truth()
		newIn := c.New != nil && f(c.New).Truth()
		switch {
		case oldIn && newIn:
			out.Modify(c.Old, c.New, c.Count)
		case oldIn:
			out.Delete(c.Old, c.Count)
		case newIn:
			out.Insert(c.New, c.Count)
		}
	}
	return out, nil
}

// Project propagates d through a projection. Modifications whose old and
// new tuples collapse to the same projected tuple are dropped.
func Project(p *algebra.Project, d *Delta) (*Delta, error) {
	fs := make([]func(value.Tuple) value.Value, len(p.Items))
	for i, it := range p.Items {
		f, err := it.E.Compile(d.Schema)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	apply := func(t value.Tuple) value.Tuple {
		if t == nil {
			return nil
		}
		out := make(value.Tuple, len(fs))
		for i, f := range fs {
			out[i] = f(t)
		}
		return out
	}
	out := New(p.Schema())
	for _, c := range d.Changes {
		o, n := apply(c.Old), apply(c.New)
		switch {
		case o != nil && n != nil:
			out.Modify(o, n, c.Count)
		case o != nil:
			out.Delete(o, c.Count)
		case n != nil:
			out.Insert(n, c.Count)
		}
	}
	return out, nil
}

// JoinSide propagates a delta arriving on one side of an equijoin.
// side 0 means d is against j.L, side 1 against j.R. probe returns the
// pre-update matching rows of the *other* side for a join-key value.
//
// A modification that preserves the join key stays a modification (paired
// with each matching row); one that moves the tuple across join keys
// becomes a deletion of the old matches plus an insertion of the new.
func JoinSide(j *algebra.Join, d *Delta, side int, probe Probe) (*Delta, error) {
	var myCols []string
	if side == 0 {
		myCols = j.LeftCols()
	} else {
		myCols = j.RightCols()
	}
	pos := make([]int, len(myCols))
	for i, c := range myCols {
		k, err := d.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = k
	}
	outSchema := j.Schema()
	var residual func(value.Tuple) value.Value
	if j.Residual != nil {
		f, err := j.Residual.Compile(outSchema)
		if err != nil {
			return nil, err
		}
		residual = f
	}
	concat := func(mine, other value.Tuple) value.Tuple {
		t := make(value.Tuple, 0, len(mine)+len(other))
		if side == 0 {
			t = append(append(t, mine...), other...)
		} else {
			t = append(append(t, other...), mine...)
		}
		return t
	}
	keep := func(t value.Tuple) bool {
		return residual == nil || residual(t).Truth()
	}
	// Cache probes per join-key to mirror the one-query-per-key cost
	// model (and avoid re-reading). The cache key is encoded in place;
	// the projected key tuple is only materialized on a cache miss.
	cache := map[string][]storage.Row{}
	var enc value.KeyEncoder
	matches := func(t value.Tuple) ([]storage.Row, error) {
		kb := enc.ProjectedKey(t, pos)
		if rows, ok := cache[string(kb)]; ok {
			return rows, nil
		}
		k := string(kb)
		rows, err := probe(t.Project(pos))
		if err != nil {
			return nil, err
		}
		cache[k] = rows
		return rows, nil
	}
	out := New(outSchema)
	for _, c := range d.Changes {
		switch {
		case c.IsInsert():
			rows, err := matches(c.New)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if t := concat(c.New, r.Tuple); keep(t) {
					out.Insert(t, c.Count*r.Count)
				}
			}
		case c.IsDelete():
			rows, err := matches(c.Old)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if t := concat(c.Old, r.Tuple); keep(t) {
					out.Delete(t, c.Count*r.Count)
				}
			}
		default: // modify
			if projEqual(c.Old, c.New, pos) {
				rows, err := matches(c.Old)
				if err != nil {
					return nil, err
				}
				for _, r := range rows {
					ot, nt := concat(c.Old, r.Tuple), concat(c.New, r.Tuple)
					oin, nin := keep(ot), keep(nt)
					switch {
					case oin && nin:
						out.Modify(ot, nt, c.Count*r.Count)
					case oin:
						out.Delete(ot, c.Count*r.Count)
					case nin:
						out.Insert(nt, c.Count*r.Count)
					}
				}
			} else {
				oldRows, err := matches(c.Old)
				if err != nil {
					return nil, err
				}
				for _, r := range oldRows {
					if t := concat(c.Old, r.Tuple); keep(t) {
						out.Delete(t, c.Count*r.Count)
					}
				}
				newRows, err := matches(c.New)
				if err != nil {
					return nil, err
				}
				for _, r := range newRows {
					if t := concat(c.New, r.Tuple); keep(t) {
						out.Insert(t, c.Count*r.Count)
					}
				}
			}
		}
	}
	return out, nil
}

// JoinBoth combines the three terms of the bag-join differential when
// both inputs changed in the same transaction:
//
//	Δ(L⋈R) = ΔL⋈R_old ∪ L_old⋈ΔR ∪ ΔL⋈ΔR
//
// probeR and probeL answer against the pre-update states. The ΔL⋈ΔR term
// is computed in memory over signed rows (modifications expand to
// -old/+new), so re-pairing of modifications is not preserved across this
// term — the result is returned normalized.
func JoinBoth(j *algebra.Join, dl, dr *Delta, probeL, probeR Probe) (*Delta, error) {
	a, err := JoinSide(j, dl, 0, probeR)
	if err != nil {
		return nil, err
	}
	b, err := JoinSide(j, dr, 1, probeL)
	if err != nil {
		return nil, err
	}
	c, err := joinDeltaDelta(j, dl, dr)
	if err != nil {
		return nil, err
	}
	out := New(j.Schema())
	out.Changes = append(out.Changes, a.Changes...)
	out.Changes = append(out.Changes, b.Changes...)
	out.Changes = append(out.Changes, c.Changes...)
	return out.Normalize(), nil
}

// joinDeltaDelta computes the signed join ΔL⋈ΔR.
func joinDeltaDelta(j *algebra.Join, dl, dr *Delta) (*Delta, error) {
	lpos := make([]int, len(j.On))
	rpos := make([]int, len(j.On))
	for i, c := range j.On {
		li, err := dl.Schema.Resolve(c.Left)
		if err != nil {
			return nil, err
		}
		ri, err := dr.Schema.Resolve(c.Right)
		if err != nil {
			return nil, err
		}
		lpos[i], rpos[i] = li, ri
	}
	outSchema := j.Schema()
	var residual func(value.Tuple) value.Value
	if j.Residual != nil {
		f, err := j.Residual.Compile(outSchema)
		if err != nil {
			return nil, err
		}
		residual = f
	}
	build := map[string][]signedRow{}
	var enc value.KeyEncoder
	for _, sr := range dr.signedRows() {
		kb := enc.ProjectedKey(sr.tuple, rpos)
		build[string(kb)] = append(build[string(kb)], sr)
	}
	out := New(outSchema)
	for _, lsr := range dl.signedRows() {
		kb := enc.ProjectedKey(lsr.tuple, lpos)
		for _, rsr := range build[string(kb)] {
			t := make(value.Tuple, 0, len(lsr.tuple)+len(rsr.tuple))
			t = append(append(t, lsr.tuple...), rsr.tuple...)
			if residual != nil && !residual(t).Truth() {
				continue
			}
			n := lsr.count * rsr.count
			switch {
			case n > 0:
				out.Insert(t, n)
			case n < 0:
				out.Delete(t, -n)
			}
		}
	}
	return out, nil
}

// Distinct propagates d through duplicate elimination. countOf reports
// the pre-update bag multiplicity of a tuple in the child.
func Distinct(dis *algebra.Distinct, d *Delta, countOf CountProbe) (*Delta, error) {
	// Work on the normalized (signed) form: distinct output changes only
	// when a tuple's count crosses 0.
	net := d.Normalize()
	out := New(d.Schema)
	for _, c := range net.Changes {
		switch {
		case c.IsInsert():
			before, err := countOf(c.New)
			if err != nil {
				return nil, err
			}
			if before == 0 {
				out.Insert(c.New, 1)
			}
		case c.IsDelete():
			before, err := countOf(c.Old)
			if err != nil {
				return nil, err
			}
			if before-c.Count <= 0 && before > 0 {
				out.Delete(c.Old, 1)
			}
		}
	}
	return out, nil
}

// UnionSide propagates a delta through bag union: changes pass through
// unchanged (counts add across sides, so any change on one side is a
// change of the result).
func UnionSide(u *algebra.Union, d *Delta) *Delta {
	out := New(u.Schema())
	out.Changes = append(out.Changes, d.Changes...)
	return out
}

// DiffSide propagates a delta through bag difference L − R (counts floor
// at zero). side 0 means d is against L. countL and countR report
// pre-update multiplicities.
func DiffSide(diff *algebra.Diff, d *Delta, side int, countL, countR CountProbe) (*Delta, error) {
	net := d.Normalize()
	// Net signed change per tuple on the changed side.
	type affected struct {
		tuple value.Tuple
		delta int64
	}
	var all []affected
	for _, c := range net.Changes {
		n := c.Count
		if n == 0 {
			n = 1
		}
		switch {
		case c.IsInsert():
			all = append(all, affected{c.New, +n})
		case c.IsDelete():
			all = append(all, affected{c.Old, -n})
		}
	}
	out := New(diff.Schema())
	for _, a := range all {
		l, err := countL(a.tuple)
		if err != nil {
			return nil, err
		}
		r, err := countR(a.tuple)
		if err != nil {
			return nil, err
		}
		oldOut := maxInt64(0, l-r)
		var newOut int64
		if side == 0 {
			newOut = maxInt64(0, l+a.delta-r)
		} else {
			newOut = maxInt64(0, l-(r+a.delta))
		}
		switch {
		case newOut > oldOut:
			out.Insert(a.tuple, newOut-oldOut)
		case newOut < oldOut:
			out.Delete(a.tuple, oldOut-newOut)
		}
	}
	return out, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// GroupRowsFromDelta extracts, per group key, the OLD rows present in the
// delta itself. It serves as the oldGroup probe when the delta is known
// to cover entire groups (the paper's key-based optimization that makes
// query Q3d free: "the result propagated up along E5 and N4 contains all
// the tuples in the group").
func GroupRowsFromDelta(d *Delta, groupCols []string) (func(value.Tuple) ([]storage.Row, error), error) {
	pos := make([]int, len(groupCols))
	for i, c := range groupCols {
		j, err := d.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = j
	}
	byGroup := map[string][]storage.Row{}
	var enc value.KeyEncoder
	for _, c := range d.Changes {
		if c.Old == nil {
			continue
		}
		n := c.Count
		if n == 0 {
			n = 1
		}
		kb := enc.ProjectedKey(c.Old, pos)
		byGroup[string(kb)] = append(byGroup[string(kb)], storage.Row{Tuple: c.Old, Count: n})
	}
	return func(gk value.Tuple) ([]storage.Row, error) {
		return byGroup[string(enc.Key(gk))], nil
	}, nil
}

// projEqual reports whether two tuples agree on the given positions,
// without materializing the projections.
func projEqual(a, b value.Tuple, pos []int) bool {
	for _, j := range pos {
		if !value.Equal(a[j], b[j]) {
			return false
		}
	}
	return true
}

