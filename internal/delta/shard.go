package delta

import (
	"repro/internal/obs"
	"repro/internal/value"
)

// Registry mirrors of shard splitting: how many signed-row units were
// routed and how many modifications had to be torn into a cross-shard
// delete+insert pair because the old and new tuples hash to different
// shards (a join-key change that migrates the row).
var (
	obsShardSplitUnits = obs.C("delta.shard.split.units")
	obsShardSplitTorn  = obs.C("delta.shard.split.torn_modifies")
)

// RouteFunc maps one tuple of the named base relation to a shard in
// [0, n). It must be a pure function of the tuple bytes so that a tuple
// always lands on the same shard no matter which window carries it.
type RouteFunc func(rel string, t value.Tuple) int

// SplitDelta partitions d across n shards: every insert routes by its
// new tuple, every delete by its old tuple, and a modification stays a
// modification when both sides route to the same shard but tears into a
// delete on the old tuple's shard plus an insert on the new tuple's
// shard when the partition value itself changed. Change order within
// each shard preserves d's order, so two splits of equal deltas are
// byte-identical. Shards that receive nothing hold nil.
func SplitDelta(d *Delta, n int, route func(t value.Tuple) int) []*Delta {
	out := make([]*Delta, n)
	if d.Empty() {
		return out
	}
	at := func(i int) *Delta {
		if out[i] == nil {
			out[i] = New(d.Schema)
		}
		return out[i]
	}
	for _, c := range d.Changes {
		switch {
		case c.IsInsert():
			at(route(c.New)).Insert(c.New, c.Count)
		case c.IsDelete():
			at(route(c.Old)).Delete(c.Old, c.Count)
		default:
			so, sn := route(c.Old), route(c.New)
			if so == sn {
				at(so).Modify(c.Old, c.New, c.Count)
			} else {
				at(so).Delete(c.Old, c.Count)
				at(sn).Insert(c.New, c.Count)
				obsShardSplitTorn.Inc()
			}
		}
	}
	obsShardSplitUnits.Add(signedUnits(d))
	return out
}

// SplitUpdates partitions one transaction's per-relation updates across
// n shards via SplitDelta. The result has one updates map per shard;
// shards the transaction does not touch hold nil maps. Splitting before
// coalescing and coalescing after splitting commute: netting is per
// tuple key and every occurrence of a tuple routes to the same shard,
// so each shard's local Coalesce sees exactly the signed rows the
// global Coalesce would have assigned it.
func SplitUpdates(updates map[string]*Delta, n int, route RouteFunc) []map[string]*Delta {
	out := make([]map[string]*Delta, n)
	for rel, d := range updates {
		parts := SplitDelta(d, n, func(t value.Tuple) int { return route(rel, t) })
		for i, p := range parts {
			if p.Empty() {
				continue
			}
			if out[i] == nil {
				out[i] = map[string]*Delta{}
			}
			out[i][rel] = p
		}
	}
	return out
}

// SplitCoalesced partitions a coalesced window across n shards,
// preserving the sorted-by-relation ordering contract of Coalesced in
// every shard's slice. A coalesced window holds only inserts and
// deletes (Normalize split the modifications), so no change tears.
func SplitCoalesced(w Coalesced, n int, route RouteFunc) []Coalesced {
	out := make([]Coalesced, n)
	for _, rd := range w {
		parts := SplitDelta(rd.Delta, n, func(t value.Tuple) int { return route(rd.Rel, t) })
		for i, p := range parts {
			if p.Empty() {
				continue
			}
			out[i] = append(out[i], RelDelta{Rel: rd.Rel, Delta: p})
		}
	}
	return out
}
