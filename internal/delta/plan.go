package delta

import (
	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/value"
)

// Compiled propagation plans: the compile-once/apply-many split of the
// per-operator delta functions. Select/Project/JoinSide resolve column
// positions and compile predicates against the child schema every call;
// along a cached update track those are the same schema and the same
// expressions window after window, so the maintenance runtime compiles
// each step once per (view set, transaction type) and replays it with
// zero per-window schema resolution or predicate compilation. Plans own
// their scratch buffers (KeyEncoder, probe cache map), so one plan must
// not be applied concurrently — matching the single-threaded
// propagation pass that uses them.

// SelectPlan is a compiled Select propagation step.
type SelectPlan struct {
	sel  *algebra.Select
	pred func(value.Tuple) value.Value
}

// CompileSelect compiles sel's predicate against the child schema.
func CompileSelect(sel *algebra.Select, in *catalog.Schema) (*SelectPlan, error) {
	f, err := sel.Pred.Compile(in)
	if err != nil {
		return nil, err
	}
	return &SelectPlan{sel: sel, pred: f}, nil
}

// Apply propagates d through the compiled selection.
func (p *SelectPlan) Apply(d *Delta) (*Delta, error) {
	out := New(d.Schema)
	for _, c := range d.Changes {
		oldIn := c.Old != nil && p.pred(c.Old).Truth()
		newIn := c.New != nil && p.pred(c.New).Truth()
		switch {
		case oldIn && newIn:
			out.Modify(c.Old, c.New, c.Count)
		case oldIn:
			out.Delete(c.Old, c.Count)
		case newIn:
			out.Insert(c.New, c.Count)
		}
	}
	return out, nil
}

// ProjectPlan is a compiled Project propagation step.
type ProjectPlan struct {
	p   *algebra.Project
	fs  []func(value.Tuple) value.Value
	out *catalog.Schema
}

// CompileProject compiles p's items against the child schema.
func CompileProject(p *algebra.Project, in *catalog.Schema) (*ProjectPlan, error) {
	fs := make([]func(value.Tuple) value.Value, len(p.Items))
	for i, it := range p.Items {
		f, err := it.E.Compile(in)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return &ProjectPlan{p: p, fs: fs, out: p.Schema()}, nil
}

// Apply propagates d through the compiled projection.
func (p *ProjectPlan) Apply(d *Delta) (*Delta, error) {
	apply := func(t value.Tuple) value.Tuple {
		if t == nil {
			return nil
		}
		out := make(value.Tuple, len(p.fs))
		for i, f := range p.fs {
			out[i] = f(t)
		}
		return out
	}
	out := New(p.out)
	for _, c := range d.Changes {
		o, n := apply(c.Old), apply(c.New)
		switch {
		case o != nil && n != nil:
			out.Modify(o, n, c.Count)
		case o != nil:
			out.Delete(o, c.Count)
		case n != nil:
			out.Insert(n, c.Count)
		}
	}
	return out, nil
}

// JoinSidePlan is a compiled one-sided join propagation step: the join
// key positions in the delta-side schema and the compiled residual, plus
// a reusable per-window probe cache keyed by encoded join key.
type JoinSidePlan struct {
	j         *algebra.Join
	side      int
	pos       []int
	outSchema *catalog.Schema
	residual  func(value.Tuple) value.Value
	cache     map[string][]storage.Row
	enc       value.KeyEncoder
}

// CompileJoinSide compiles the side-`side` propagation of j (0 = delta
// arrives on j.L) against that side's child schema.
func CompileJoinSide(j *algebra.Join, side int, in *catalog.Schema) (*JoinSidePlan, error) {
	var myCols []string
	if side == 0 {
		myCols = j.LeftCols()
	} else {
		myCols = j.RightCols()
	}
	pos := make([]int, len(myCols))
	for i, c := range myCols {
		k, err := in.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = k
	}
	outSchema := j.Schema()
	p := &JoinSidePlan{j: j, side: side, pos: pos, outSchema: outSchema}
	if j.Residual != nil {
		f, err := j.Residual.Compile(outSchema)
		if err != nil {
			return nil, err
		}
		p.residual = f
	}
	return p, nil
}

// Apply propagates d (arriving on the plan's side) using probe for the
// other side's pre-update rows. The plan-level probe cache mirrors the
// one-query-per-key cost model within this call; it is cleared on entry,
// so stale pre-states never leak across windows.
func (p *JoinSidePlan) Apply(d *Delta, probe Probe) (*Delta, error) {
	if p.cache == nil {
		p.cache = map[string][]storage.Row{}
	} else {
		clear(p.cache)
	}
	concat := func(mine, other value.Tuple) value.Tuple {
		t := make(value.Tuple, 0, len(mine)+len(other))
		if p.side == 0 {
			t = append(append(t, mine...), other...)
		} else {
			t = append(append(t, other...), mine...)
		}
		return t
	}
	keep := func(t value.Tuple) bool {
		return p.residual == nil || p.residual(t).Truth()
	}
	matches := func(t value.Tuple) ([]storage.Row, error) {
		kb := p.enc.ProjectedKey(t, p.pos)
		if rows, ok := p.cache[string(kb)]; ok {
			return rows, nil
		}
		k := string(kb)
		rows, err := probe(t.Project(p.pos))
		if err != nil {
			return nil, err
		}
		p.cache[k] = rows
		return rows, nil
	}
	out := New(p.outSchema)
	for _, c := range d.Changes {
		switch {
		case c.IsInsert():
			rows, err := matches(c.New)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if t := concat(c.New, r.Tuple); keep(t) {
					out.Insert(t, c.Count*r.Count)
				}
			}
		case c.IsDelete():
			rows, err := matches(c.Old)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if t := concat(c.Old, r.Tuple); keep(t) {
					out.Delete(t, c.Count*r.Count)
				}
			}
		default: // modify
			if projEqual(c.Old, c.New, p.pos) {
				rows, err := matches(c.Old)
				if err != nil {
					return nil, err
				}
				for _, r := range rows {
					ot, nt := concat(c.Old, r.Tuple), concat(c.New, r.Tuple)
					oin, nin := keep(ot), keep(nt)
					switch {
					case oin && nin:
						out.Modify(ot, nt, c.Count*r.Count)
					case oin:
						out.Delete(ot, c.Count*r.Count)
					case nin:
						out.Insert(nt, c.Count*r.Count)
					}
				}
			} else {
				oldRows, err := matches(c.Old)
				if err != nil {
					return nil, err
				}
				for _, r := range oldRows {
					if t := concat(c.Old, r.Tuple); keep(t) {
						out.Delete(t, c.Count*r.Count)
					}
				}
				newRows, err := matches(c.New)
				if err != nil {
					return nil, err
				}
				for _, r := range newRows {
					if t := concat(c.New, r.Tuple); keep(t) {
						out.Insert(t, c.Count*r.Count)
					}
				}
			}
		}
	}
	return out, nil
}

// JoinPlan bundles the compiled pieces a join step can need: both side
// plans and the ΔL⋈ΔR positions for the both-sides-changed case.
type JoinPlan struct {
	j          *algebra.Join
	Left       *JoinSidePlan
	Right      *JoinSidePlan
	lpos, rpos []int
	outSchema  *catalog.Schema
	residual   func(value.Tuple) value.Value
	enc        value.KeyEncoder
}

// CompileJoin compiles both propagation directions of j against the
// children's schemas (lin for j.L, rin for j.R).
func CompileJoin(j *algebra.Join, lin, rin *catalog.Schema) (*JoinPlan, error) {
	left, err := CompileJoinSide(j, 0, lin)
	if err != nil {
		return nil, err
	}
	right, err := CompileJoinSide(j, 1, rin)
	if err != nil {
		return nil, err
	}
	lpos := make([]int, len(j.On))
	rpos := make([]int, len(j.On))
	for i, c := range j.On {
		li, err := lin.Resolve(c.Left)
		if err != nil {
			return nil, err
		}
		ri, err := rin.Resolve(c.Right)
		if err != nil {
			return nil, err
		}
		lpos[i], rpos[i] = li, ri
	}
	p := &JoinPlan{j: j, Left: left, Right: right, lpos: lpos, rpos: rpos, outSchema: j.Schema()}
	if j.Residual != nil {
		f, err := j.Residual.Compile(p.outSchema)
		if err != nil {
			return nil, err
		}
		p.residual = f
	}
	return p, nil
}

// ApplyBoth combines the three differential terms when both inputs
// changed (the compiled form of JoinBoth).
func (p *JoinPlan) ApplyBoth(dl, dr *Delta, probeL, probeR Probe) (*Delta, error) {
	a, err := p.Left.Apply(dl, probeR)
	if err != nil {
		return nil, err
	}
	b, err := p.Right.Apply(dr, probeL)
	if err != nil {
		return nil, err
	}
	c, err := p.applyDeltaDelta(dl, dr)
	if err != nil {
		return nil, err
	}
	out := New(p.outSchema)
	out.Changes = append(out.Changes, a.Changes...)
	out.Changes = append(out.Changes, b.Changes...)
	out.Changes = append(out.Changes, c.Changes...)
	return out.Normalize(), nil
}

// applyDeltaDelta computes the signed join ΔL⋈ΔR with precompiled
// positions.
func (p *JoinPlan) applyDeltaDelta(dl, dr *Delta) (*Delta, error) {
	rsigned := dr.signedRows()
	build := make(map[string][]signedRow, len(rsigned))
	for _, sr := range rsigned {
		kb := p.enc.ProjectedKey(sr.tuple, p.rpos)
		build[string(kb)] = append(build[string(kb)], sr)
	}
	out := New(p.outSchema)
	for _, lsr := range dl.signedRows() {
		kb := p.enc.ProjectedKey(lsr.tuple, p.lpos)
		for _, rsr := range build[string(kb)] {
			t := make(value.Tuple, 0, len(lsr.tuple)+len(rsr.tuple))
			t = append(append(t, lsr.tuple...), rsr.tuple...)
			if p.residual != nil && !p.residual(t).Truth() {
				continue
			}
			n := lsr.count * rsr.count
			switch {
			case n > 0:
				out.Insert(t, n)
			case n < 0:
				out.Delete(t, -n)
			}
		}
	}
	return out, nil
}

// AggregatePlan is the compiled static part of aggregate maintenance:
// group-by positions and aggregate argument accessors resolved against
// the child schema once.
type AggregatePlan struct {
	a      *algebra.Aggregate
	gpos   []int
	argFns []func(value.Tuple) value.Value
	out    *catalog.Schema
}

// CompileAggregate resolves a's group-by columns and compiles its
// aggregate arguments against the child schema.
func CompileAggregate(a *algebra.Aggregate, in *catalog.Schema) (*AggregatePlan, error) {
	gpos := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		j, err := in.Resolve(g)
		if err != nil {
			return nil, err
		}
		gpos[i] = j
	}
	argFns := make([]func(value.Tuple) value.Value, len(a.Aggs))
	for i, ag := range a.Aggs {
		if ag.Arg == nil {
			continue
		}
		f, err := ag.Arg.Compile(in)
		if err != nil {
			return nil, err
		}
		argFns[i] = f
	}
	return &AggregatePlan{a: a, gpos: gpos, argFns: argFns, out: a.Schema()}, nil
}
