package delta

import (
	"repro/internal/algebra"
	"repro/internal/bytemap"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// Compiled propagation plans: the compile-once/apply-many split of the
// per-operator delta functions. Select/Project/JoinSide resolve column
// positions and compile predicates against the child schema every call;
// along a cached update track those are the same schema and the same
// expressions window after window, so the maintenance runtime compiles
// each step once per (view set, transaction type) and replays it with
// zero per-window schema resolution or predicate compilation. Plans own
// their scratch buffers (KeyEncoder, probe cache, output delta), so one
// plan must not be applied concurrently — matching the single-threaded
// propagation pass that uses them.
//
// Allocation discipline: each plan reuses a single output Delta across
// Apply calls, and (when an arena is attached via SetArena) bump-
// allocates derived tuples from the caller's per-window arena. The
// returned *Delta and its tuples are therefore valid only until the
// plan's next Apply / the arena's next Reset — the "no tuple escapes
// its window" rule. Callers that need longer-lived results (one-shot
// helpers, tests) use plans without an arena and copy what they keep.

// reset prepares a plan-owned output delta for reuse.
func resetOut(d *Delta, s *catalog.Schema) *Delta {
	d.Schema = s
	d.Changes = d.Changes[:0]
	return d
}

// SelectPlan is a compiled Select propagation step.
type SelectPlan struct {
	sel  *algebra.Select
	pred func(value.Tuple) value.Value
	outD Delta
}

// CompileSelect compiles sel's predicate against the child schema.
func CompileSelect(sel *algebra.Select, in *catalog.Schema) (*SelectPlan, error) {
	f, err := expr.CompileFast(sel.Pred, in)
	if err != nil {
		return nil, err
	}
	return &SelectPlan{sel: sel, pred: f}, nil
}

// Apply propagates d through the compiled selection. The result is
// valid until the next Apply on this plan.
func (p *SelectPlan) Apply(d *Delta) (*Delta, error) {
	out := resetOut(&p.outD, d.Schema)
	for _, c := range d.Changes {
		oldIn := c.Old != nil && p.pred(c.Old).Truth()
		newIn := c.New != nil && p.pred(c.New).Truth()
		switch {
		case oldIn && newIn:
			out.Modify(c.Old, c.New, c.Count)
		case oldIn:
			out.Delete(c.Old, c.Count)
		case newIn:
			out.Insert(c.New, c.Count)
		}
	}
	return out, nil
}

// ProjectPlan is a compiled Project propagation step.
type ProjectPlan struct {
	p     *algebra.Project
	fs    []func(value.Tuple) value.Value
	out   *catalog.Schema
	arena *value.Arena
	outD  Delta
}

// CompileProject compiles p's items against the child schema.
func CompileProject(p *algebra.Project, in *catalog.Schema) (*ProjectPlan, error) {
	fs := make([]func(value.Tuple) value.Value, len(p.Items))
	for i, it := range p.Items {
		f, err := expr.CompileFast(it.E, in)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return &ProjectPlan{p: p, fs: fs, out: p.Schema()}, nil
}

// SetArena attaches a per-window arena for output tuples.
func (p *ProjectPlan) SetArena(a *value.Arena) { p.arena = a }

// Apply propagates d through the compiled projection. The result is
// valid until the next Apply on this plan (or arena reset).
func (p *ProjectPlan) Apply(d *Delta) (*Delta, error) {
	apply := func(t value.Tuple) value.Tuple {
		if t == nil {
			return nil
		}
		out := p.arena.NewTuple(len(p.fs))
		for i, f := range p.fs {
			out[i] = f(t)
		}
		return out
	}
	out := resetOut(&p.outD, p.out)
	for _, c := range d.Changes {
		o, n := apply(c.Old), apply(c.New)
		switch {
		case o != nil && n != nil:
			out.Modify(o, n, c.Count)
		case o != nil:
			out.Delete(o, c.Count)
		case n != nil:
			out.Insert(n, c.Count)
		}
	}
	return out, nil
}

// JoinSidePlan is a compiled one-sided join propagation step: the join
// key positions in the delta-side schema and the compiled residual, plus
// a reusable per-window probe cache keyed by encoded join key.
type JoinSidePlan struct {
	j         *algebra.Join
	side      int
	pos       []int
	outSchema *catalog.Schema
	residual  func(value.Tuple) value.Value
	cache     map[string][]storage.Row
	enc       value.KeyEncoder
	arena     *value.Arena
	outD      Delta
}

// CompileJoinSide compiles the side-`side` propagation of j (0 = delta
// arrives on j.L) against that side's child schema.
func CompileJoinSide(j *algebra.Join, side int, in *catalog.Schema) (*JoinSidePlan, error) {
	var myCols []string
	if side == 0 {
		myCols = j.LeftCols()
	} else {
		myCols = j.RightCols()
	}
	pos := make([]int, len(myCols))
	for i, c := range myCols {
		k, err := in.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = k
	}
	outSchema := j.Schema()
	p := &JoinSidePlan{j: j, side: side, pos: pos, outSchema: outSchema}
	if j.Residual != nil {
		f, err := expr.CompileFast(j.Residual, outSchema)
		if err != nil {
			return nil, err
		}
		p.residual = f
	}
	return p, nil
}

// SetArena attaches a per-window arena for concatenated output tuples.
func (p *JoinSidePlan) SetArena(a *value.Arena) { p.arena = a }

// Apply propagates d (arriving on the plan's side) using probe for the
// other side's pre-update rows. The plan-level probe cache mirrors the
// one-query-per-key cost model within this call; it is cleared on entry,
// so stale pre-states never leak across windows. The result is valid
// until the next Apply on this plan (or arena reset).
func (p *JoinSidePlan) Apply(d *Delta, probe Probe) (*Delta, error) {
	if p.cache == nil {
		p.cache = map[string][]storage.Row{}
	} else {
		clear(p.cache)
	}
	concat := func(mine, other value.Tuple) value.Tuple {
		if p.side == 0 {
			return p.arena.ConcatTuples(mine, other)
		}
		return p.arena.ConcatTuples(other, mine)
	}
	keep := func(t value.Tuple) bool {
		return p.residual == nil || p.residual(t).Truth()
	}
	matches := func(t value.Tuple) ([]storage.Row, error) {
		kb := p.enc.ProjectedKey(t, p.pos)
		if rows, ok := p.cache[string(kb)]; ok {
			return rows, nil
		}
		k := string(kb)
		rows, err := probe(t.Project(p.pos))
		if err != nil {
			return nil, err
		}
		p.cache[k] = rows
		return rows, nil
	}
	out := resetOut(&p.outD, p.outSchema)
	for _, c := range d.Changes {
		switch {
		case c.IsInsert():
			rows, err := matches(c.New)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if t := concat(c.New, r.Tuple); keep(t) {
					out.Insert(t, c.Count*r.Count)
				}
			}
		case c.IsDelete():
			rows, err := matches(c.Old)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if t := concat(c.Old, r.Tuple); keep(t) {
					out.Delete(t, c.Count*r.Count)
				}
			}
		default: // modify
			if projEqual(c.Old, c.New, p.pos) {
				rows, err := matches(c.Old)
				if err != nil {
					return nil, err
				}
				for _, r := range rows {
					ot, nt := concat(c.Old, r.Tuple), concat(c.New, r.Tuple)
					oin, nin := keep(ot), keep(nt)
					switch {
					case oin && nin:
						out.Modify(ot, nt, c.Count*r.Count)
					case oin:
						out.Delete(ot, c.Count*r.Count)
					case nin:
						out.Insert(nt, c.Count*r.Count)
					}
				}
			} else {
				oldRows, err := matches(c.Old)
				if err != nil {
					return nil, err
				}
				for _, r := range oldRows {
					if t := concat(c.Old, r.Tuple); keep(t) {
						out.Delete(t, c.Count*r.Count)
					}
				}
				newRows, err := matches(c.New)
				if err != nil {
					return nil, err
				}
				for _, r := range newRows {
					if t := concat(c.New, r.Tuple); keep(t) {
						out.Insert(t, c.Count*r.Count)
					}
				}
			}
		}
	}
	return out, nil
}

// JoinPlan bundles the compiled pieces a join step can need: both side
// plans and the ΔL⋈ΔR positions for the both-sides-changed case.
type JoinPlan struct {
	j          *algebra.Join
	Left       *JoinSidePlan
	Right      *JoinSidePlan
	lpos, rpos []int
	outSchema  *catalog.Schema
	residual   func(value.Tuple) value.Value
	enc        value.KeyEncoder
	arena      *value.Arena
	nz         Normalizer
	nzOut      Delta
	cat        Delta
	ddOut      Delta
	sbufL      []signedRow
	sbufR      []signedRow
	build      bytemap.Map[int32]
	buckets    [][]int32
	nb         int
}

// CompileJoin compiles both propagation directions of j against the
// children's schemas (lin for j.L, rin for j.R).
func CompileJoin(j *algebra.Join, lin, rin *catalog.Schema) (*JoinPlan, error) {
	left, err := CompileJoinSide(j, 0, lin)
	if err != nil {
		return nil, err
	}
	right, err := CompileJoinSide(j, 1, rin)
	if err != nil {
		return nil, err
	}
	lpos := make([]int, len(j.On))
	rpos := make([]int, len(j.On))
	for i, c := range j.On {
		li, err := lin.Resolve(c.Left)
		if err != nil {
			return nil, err
		}
		ri, err := rin.Resolve(c.Right)
		if err != nil {
			return nil, err
		}
		lpos[i], rpos[i] = li, ri
	}
	p := &JoinPlan{j: j, Left: left, Right: right, lpos: lpos, rpos: rpos, outSchema: j.Schema()}
	if j.Residual != nil {
		f, err := expr.CompileFast(j.Residual, p.outSchema)
		if err != nil {
			return nil, err
		}
		p.residual = f
	}
	return p, nil
}

// SetArena attaches a per-window arena to the join and both side plans.
func (p *JoinPlan) SetArena(a *value.Arena) {
	p.arena = a
	p.Left.SetArena(a)
	p.Right.SetArena(a)
}

// ApplyBoth combines the three differential terms when both inputs
// changed (the compiled form of JoinBoth). The result is valid until
// the next ApplyBoth on this plan (or arena reset).
func (p *JoinPlan) ApplyBoth(dl, dr *Delta, probeL, probeR Probe) (*Delta, error) {
	a, err := p.Left.Apply(dl, probeR)
	if err != nil {
		return nil, err
	}
	b, err := p.Right.Apply(dr, probeL)
	if err != nil {
		return nil, err
	}
	c, err := p.applyDeltaDelta(dl, dr)
	if err != nil {
		return nil, err
	}
	cat := resetOut(&p.cat, p.outSchema)
	cat.Changes = append(cat.Changes, a.Changes...)
	cat.Changes = append(cat.Changes, b.Changes...)
	cat.Changes = append(cat.Changes, c.Changes...)
	return p.nz.NormalizeInto(cat, &p.nzOut), nil
}

// applyDeltaDelta computes the signed join ΔL⋈ΔR with precompiled
// positions. The build side is hashed into plan-owned scratch (an
// open-addressed key table plus reusable bucket lists), so steady-state
// windows index ΔR without per-call map allocation.
func (p *JoinPlan) applyDeltaDelta(dl, dr *Delta) (*Delta, error) {
	p.sbufR = dr.appendSigned(p.sbufR[:0])
	p.build.Reset()
	for i := 0; i < p.nb; i++ {
		p.buckets[i] = p.buckets[i][:0]
	}
	p.nb = 0
	for i := range p.sbufR {
		kb := p.enc.ProjectedKey(p.sbufR[i].tuple, p.rpos)
		bid, _, existed := p.build.GetOrPut(kb, int32(p.nb))
		if !existed {
			if p.nb == len(p.buckets) {
				p.buckets = append(p.buckets, nil)
			}
			p.nb++
		}
		p.buckets[*bid] = append(p.buckets[*bid], int32(i))
	}
	out := resetOut(&p.ddOut, p.outSchema)
	p.sbufL = dl.appendSigned(p.sbufL[:0])
	for li := range p.sbufL {
		lsr := &p.sbufL[li]
		kb := p.enc.ProjectedKey(lsr.tuple, p.lpos)
		bid, ok := p.build.Get(kb)
		if !ok {
			continue
		}
		for _, ri := range p.buckets[bid] {
			rsr := &p.sbufR[ri]
			t := p.arena.ConcatTuples(lsr.tuple, rsr.tuple)
			if p.residual != nil && !p.residual(t).Truth() {
				continue
			}
			n := lsr.count * rsr.count
			switch {
			case n > 0:
				out.Insert(t, n)
			case n < 0:
				out.Delete(t, -n)
			}
		}
	}
	return out, nil
}

// AggregatePlan is the compiled static part of aggregate maintenance:
// group-by positions and aggregate argument accessors resolved against
// the child schema once, plus reusable per-window group scratch.
type AggregatePlan struct {
	a      *algebra.Aggregate
	gpos   []int
	argFns []func(value.Tuple) value.Value
	out    *catalog.Schema
	arena  *value.Arena
	groups bytemap.Map[int32]
	accs   []acc
	sbuf   []signedRow
	outD   Delta
	enc    value.KeyEncoder
}

// CompileAggregate resolves a's group-by columns and compiles its
// aggregate arguments against the child schema.
func CompileAggregate(a *algebra.Aggregate, in *catalog.Schema) (*AggregatePlan, error) {
	gpos := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		j, err := in.Resolve(g)
		if err != nil {
			return nil, err
		}
		gpos[i] = j
	}
	argFns := make([]func(value.Tuple) value.Value, len(a.Aggs))
	for i, ag := range a.Aggs {
		if ag.Arg == nil {
			continue
		}
		f, err := expr.CompileFast(ag.Arg, in)
		if err != nil {
			return nil, err
		}
		argFns[i] = f
	}
	return &AggregatePlan{a: a, gpos: gpos, argFns: argFns, out: a.Schema()}, nil
}

// SetArena attaches a per-window arena for group-key and output tuples.
func (p *AggregatePlan) SetArena(a *value.Arena) { p.arena = a }
