package delta

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

func codecSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Qualifier: "T", Name: "a"},
		catalog.Column{Qualifier: "T", Name: "b"},
	)
}

func TestTupleCodecRoundTrip(t *testing.T) {
	tuples := []value.Tuple{
		{value.NewInt(42), value.NewString("hello")},
		{value.NewInt(-7), value.NewString("")},
		{value.NewFloat(3.25), value.NewBool(true)},
		{value.NewBool(false), value.Value{Kind: value.Null}},
		{},
	}
	for _, tup := range tuples {
		enc := AppendTuple(nil, tup)
		got, rest, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("DecodeTuple(%v): %v", tup, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeTuple(%v): %d trailing bytes", tup, len(rest))
		}
		if len(got) != len(tup) {
			t.Fatalf("arity %d, want %d", len(got), len(tup))
		}
		if string(value.AppendKey(nil, got)) != string(value.AppendKey(nil, tup)) {
			t.Fatalf("round trip changed tuple: %v -> %v", tup, got)
		}
	}
}

func TestWindowCodecRoundTrip(t *testing.T) {
	s := codecSchema()
	d := New(s)
	d.Insert(value.Tuple{value.NewInt(1), value.NewString("x")}, 2)
	d.Delete(value.Tuple{value.NewInt(2), value.NewString("y")}, 1)
	d.Modify(
		value.Tuple{value.NewInt(3), value.NewString("z")},
		value.Tuple{value.NewInt(3), value.NewString("w")}, 1)
	w := Coalesced{{Rel: "T", Delta: d}}

	enc := AppendWindow(nil, w)
	schemas := func(rel string) (*catalog.Schema, bool) {
		if rel == "T" {
			return s, true
		}
		return nil, false
	}
	got, rest, err := DecodeWindow(enc, schemas)
	if err != nil {
		t.Fatalf("DecodeWindow: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got) != 1 || got[0].Rel != "T" {
		t.Fatalf("wrong window shape: %+v", got)
	}
	if len(got[0].Delta.Changes) != len(d.Changes) {
		t.Fatalf("change count %d, want %d", len(got[0].Delta.Changes), len(d.Changes))
	}
	// Semantic equality: the signed tuple counts must match exactly.
	want := d.TupleCounts()
	have := got[0].Delta.TupleCounts()
	if len(want) != len(have) {
		t.Fatalf("tuple count maps differ: %d vs %d keys", len(want), len(have))
	}
	for k, n := range want {
		if have[k] != n {
			t.Fatalf("key %x: count %d, want %d", k, have[k], n)
		}
	}
}

func TestCodecCorruptionIsClean(t *testing.T) {
	s := codecSchema()
	d := New(s)
	d.Insert(value.Tuple{value.NewInt(1), value.NewString("abc")}, 1)
	w := Coalesced{{Rel: "T", Delta: d}}
	enc := AppendWindow(nil, w)
	schemas := func(rel string) (*catalog.Schema, bool) { return s, rel == "T" }

	// Every truncation of a valid encoding must fail with ErrCorrupt —
	// never panic, never succeed with invented data.
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeWindow(enc[:cut], schemas); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		} else if !errors.Is(err, value.ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
	// Unknown relation name is corruption too.
	if _, _, err := DecodeWindow(enc, func(string) (*catalog.Schema, bool) { return nil, false }); err == nil {
		t.Fatal("unknown relation decoded successfully")
	}
	// A corrupt huge length must not drive a huge allocation: flip the
	// arity byte to something absurd and expect a clean error.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := DecodeWindow(bad, schemas); err != nil && !errors.Is(err, value.ErrCorrupt) {
		t.Fatalf("bit flip: error %v does not wrap ErrCorrupt", err)
	}
}
