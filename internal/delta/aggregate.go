package delta

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/value"
)

// OldAgg reports the pre-update state of one group of a materialized
// aggregate view: the stored output tuple, the group's live bag count in
// the child, and whether the group existed.
type OldAgg func(groupKey value.Tuple) (out value.Tuple, live int64, ok bool, err error)

// Decomposable reports whether the aggregate view can be maintained
// purely from its own stored values plus the child delta, with no query
// on the child: true when every aggregate is SUM or COUNT, or when the
// delta is insert-only and every aggregate is SUM/COUNT/MIN/MAX.
// (AVG and deletion-exposed MIN/MAX need the full group.)
func Decomposable(specs []algebra.AggSpec, d *Delta) bool {
	insertOnly := true
	for _, c := range d.Changes {
		if !c.IsInsert() {
			insertOnly = false
			break
		}
	}
	for _, s := range specs {
		switch s.Func {
		case algebra.Sum, algebra.Count:
		case algebra.Min, algebra.Max:
			if !insertOnly {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// AggregateIncremental maintains an aggregate from the materialized old
// values alone (the paper's SumOfSals trick: "adding to or subtracting
// from the previous aggregate values"). It requires Decomposable.
//
// It returns the output delta and the new live counts per group key
// (value.Tuple.Key() form), which the caller persists alongside the view
// to detect group emptiness.
func AggregateIncremental(a *algebra.Aggregate, d *Delta, oldAgg OldAgg) (*Delta, map[string]int64, error) {
	p, err := CompileAggregate(a, d.Schema)
	if err != nil {
		return nil, nil, err
	}
	return p.Incremental(d, oldAgg)
}

// Incremental is the compiled form of AggregateIncremental: the group-by
// positions and argument accessors come from the plan instead of being
// re-resolved per call. It requires Decomposable for this delta.
func (p *AggregatePlan) Incremental(d *Delta, oldAgg OldAgg) (*Delta, map[string]int64, error) {
	a, gpos, argFns := p.a, p.gpos, p.argFns
	if !Decomposable(a.Aggs, d) {
		return nil, nil, fmt.Errorf("delta: aggregate %s is not decomposable for this delta", a.OpLabel())
	}
	// Accumulate signed contributions per group.
	type acc struct {
		key    value.Tuple
		sums   []value.Value // signed sum contribution per agg (SUM)
		counts []int64       // signed count contribution per agg (COUNT)
		mins   []value.Value // inserts-only MIN/MAX candidates
		maxs   []value.Value
		live   int64 // signed bag-count change
	}
	groups := map[string]*acc{}
	var order []string
	get := func(k value.Tuple) *acc {
		ks := k.Key()
		g, ok := groups[ks]
		if !ok {
			g = &acc{
				key:    k,
				sums:   make([]value.Value, len(a.Aggs)),
				counts: make([]int64, len(a.Aggs)),
				mins:   make([]value.Value, len(a.Aggs)),
				maxs:   make([]value.Value, len(a.Aggs)),
			}
			for i := range g.sums {
				g.sums[i] = value.NewInt(0)
			}
			groups[ks] = g
			order = append(order, ks)
		}
		return g
	}
	contribute := func(t value.Tuple, n int64) {
		g := get(t.Project(gpos))
		g.live += n
		for i, ag := range a.Aggs {
			switch ag.Func {
			case algebra.Count:
				if ag.Arg == nil {
					g.counts[i] += n
				} else if !argFns[i](t).IsNull() {
					g.counts[i] += n
				}
			case algebra.Sum:
				v := argFns[i](t)
				if v.IsNull() {
					continue
				}
				for j := int64(0); j < abs64(n); j++ {
					if n > 0 {
						g.sums[i] = value.Add(g.sums[i], v)
					} else {
						g.sums[i] = value.Sub(g.sums[i], v)
					}
				}
			case algebra.Min:
				v := argFns[i](t)
				if v.IsNull() {
					continue
				}
				if g.mins[i].IsNull() || value.Compare(v, g.mins[i]) < 0 {
					g.mins[i] = v
				}
			case algebra.Max:
				v := argFns[i](t)
				if v.IsNull() {
					continue
				}
				if g.maxs[i].IsNull() || value.Compare(v, g.maxs[i]) > 0 {
					g.maxs[i] = v
				}
			}
		}
	}
	for _, sr := range d.signedRows() {
		contribute(sr.tuple, sr.count)
	}
	out := New(a.Schema())
	newLive := map[string]int64{}
	for _, ks := range order {
		g := groups[ks]
		oldTuple, oldLive, existed, err := oldAgg(g.key)
		if err != nil {
			return nil, nil, err
		}
		if !existed {
			oldLive = 0
		}
		live := oldLive + g.live
		if live < 0 {
			return nil, nil, fmt.Errorf("delta: group %v driven to negative live count %d", g.key, live)
		}
		newLive[ks] = live
		// Build the new output tuple from old + contributions.
		nAggStart := len(gpos)
		newTuple := make(value.Tuple, 0, nAggStart+len(a.Aggs))
		newTuple = append(newTuple, g.key...)
		for i, ag := range a.Aggs {
			var oldV value.Value
			if existed {
				oldV = oldTuple[nAggStart+i]
			}
			switch ag.Func {
			case algebra.Count:
				base := int64(0)
				if existed {
					base = oldV.AsInt()
				}
				newTuple = append(newTuple, value.NewInt(base+g.counts[i]))
			case algebra.Sum:
				if existed && !oldV.IsNull() {
					newTuple = append(newTuple, value.Add(oldV, g.sums[i]))
				} else {
					newTuple = append(newTuple, g.sums[i])
				}
			case algebra.Min:
				if existed && !oldV.IsNull() && (g.mins[i].IsNull() || value.Compare(oldV, g.mins[i]) < 0) {
					newTuple = append(newTuple, oldV)
				} else {
					newTuple = append(newTuple, g.mins[i])
				}
			case algebra.Max:
				if existed && !oldV.IsNull() && (g.maxs[i].IsNull() || value.Compare(oldV, g.maxs[i]) > 0) {
					newTuple = append(newTuple, oldV)
				} else {
					newTuple = append(newTuple, g.maxs[i])
				}
			}
		}
		switch {
		case !existed && live > 0:
			out.Insert(newTuple, 1)
		case existed && live == 0:
			out.Delete(oldTuple, 1)
		case existed && live > 0:
			out.Modify(oldTuple, newTuple, 1)
		}
	}
	return out, newLive, nil
}

// AggregateFull recomputes each affected group from its pre-update rows
// (supplied by oldGroup — a query on the child, or GroupRowsFromDelta
// when the delta covers whole groups) plus the delta.
func AggregateFull(a *algebra.Aggregate, d *Delta, oldGroup func(value.Tuple) ([]storage.Row, error)) (*Delta, error) {
	in := d.Schema
	gpos := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		j, err := in.Resolve(g)
		if err != nil {
			return nil, err
		}
		gpos[i] = j
	}
	keys, err := d.AffectedKeys(a.GroupBy)
	if err != nil {
		return nil, err
	}
	out := New(a.Schema())
	for _, gk := range keys {
		oldRows, err := oldGroup(gk)
		if err != nil {
			return nil, err
		}
		// Restrict the delta to this group.
		sub := New(in)
		for _, c := range d.Changes {
			oldIn := c.Old != nil && c.Old.Project(gpos).Equal(gk)
			newIn := c.New != nil && c.New.Project(gpos).Equal(gk)
			switch {
			case oldIn && newIn:
				sub.Changes = append(sub.Changes, c)
			case oldIn:
				sub.Delete(c.Old, c.Count)
			case newIn:
				sub.Insert(c.New, c.Count)
			}
		}
		newRows := ApplyTo(oldRows, sub)
		oldTuple, oldOK, err := aggregateGroup(a, in, gk, oldRows)
		if err != nil {
			return nil, err
		}
		newTuple, newOK, err := aggregateGroup(a, in, gk, newRows)
		if err != nil {
			return nil, err
		}
		switch {
		case oldOK && newOK:
			out.Modify(oldTuple, newTuple, 1)
		case oldOK:
			out.Delete(oldTuple, 1)
		case newOK:
			out.Insert(newTuple, 1)
		}
	}
	return out, nil
}

// aggregateGroup computes the output tuple for one group over the given
// child rows; ok is false when the group is empty.
func aggregateGroup(a *algebra.Aggregate, in *catalog.Schema, gk value.Tuple, rows []storage.Row) (value.Tuple, bool, error) {
	var total int64
	for _, r := range rows {
		total += r.Count
	}
	if total <= 0 {
		return nil, false, nil
	}
	out := make(value.Tuple, 0, len(gk)+len(a.Aggs))
	out = append(out, gk...)
	for _, ag := range a.Aggs {
		if ag.Arg == nil { // COUNT(*)
			out = append(out, value.NewInt(total))
			continue
		}
		f, err := ag.Arg.Compile(in)
		if err != nil {
			return nil, false, err
		}
		sum := value.NewInt(0)
		var count int64
		var minV, maxV value.Value
		for _, r := range rows {
			v := f(r.Tuple)
			if v.IsNull() {
				continue
			}
			for j := int64(0); j < r.Count; j++ {
				sum = value.Add(sum, v)
			}
			count += r.Count
			if minV.IsNull() || value.Compare(v, minV) < 0 {
				minV = v
			}
			if maxV.IsNull() || value.Compare(v, maxV) > 0 {
				maxV = v
			}
		}
		switch ag.Func {
		case algebra.Sum:
			if count == 0 {
				out = append(out, value.NewNull())
			} else {
				out = append(out, sum)
			}
		case algebra.Count:
			out = append(out, value.NewInt(count))
		case algebra.Avg:
			if count == 0 {
				out = append(out, value.NewNull())
			} else {
				out = append(out, value.NewFloat(sum.AsFloat()/float64(count)))
			}
		case algebra.Min:
			out = append(out, minV)
		case algebra.Max:
			out = append(out, maxV)
		default:
			return nil, false, fmt.Errorf("delta: unsupported aggregate %s", ag.Func)
		}
	}
	return out, true, nil
}

func abs64(n int64) int64 {
	if n < 0 {
		return -n
	}
	return n
}
