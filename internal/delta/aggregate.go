package delta

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// OldAgg reports the pre-update state of one group of a materialized
// aggregate view: the stored output tuple, the group's live bag count in
// the child, and whether the group existed.
type OldAgg func(groupKey value.Tuple) (out value.Tuple, live int64, ok bool, err error)

// Decomposable reports whether the aggregate view can be maintained
// purely from its own stored values plus the child delta, with no query
// on the child: true when every aggregate is SUM or COUNT, or when the
// delta is insert-only and every aggregate is SUM/COUNT/MIN/MAX.
// (AVG and deletion-exposed MIN/MAX need the full group.)
func Decomposable(specs []algebra.AggSpec, d *Delta) bool {
	insertOnly := true
	for _, c := range d.Changes {
		if !c.IsInsert() {
			insertOnly = false
			break
		}
	}
	for _, s := range specs {
		switch s.Func {
		case algebra.Sum, algebra.Count:
		case algebra.Min, algebra.Max:
			if !insertOnly {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// AggregateIncremental maintains an aggregate from the materialized old
// values alone (the paper's SumOfSals trick: "adding to or subtracting
// from the previous aggregate values"). It requires Decomposable.
//
// It returns the output delta and the new live counts per group key
// (value.Tuple.Key() form), which the caller persists alongside the view
// to detect group emptiness.
func AggregateIncremental(a *algebra.Aggregate, d *Delta, oldAgg OldAgg) (*Delta, map[string]int64, error) {
	p, err := CompileAggregate(a, d.Schema)
	if err != nil {
		return nil, nil, err
	}
	return p.Incremental(d, oldAgg)
}

// acc accumulates one group's signed contributions within a window.
// Entries live in the plan's reusable scratch slice; their inner slices
// are retained (truncated, not freed) across windows.
type acc struct {
	key    value.Tuple
	sums   []value.Value // signed sum contribution per agg (SUM)
	counts []int64       // signed count contribution per agg (COUNT)
	mins   []value.Value // inserts-only MIN/MAX candidates
	maxs   []value.Value
	live   int64 // signed bag-count change
}

// getAcc returns the accumulator for t's group, creating (or reusing a
// retained) one on first touch. Group keys are bump-allocated from the
// plan's arena; append order of p.accs is first-seen group order.
func (p *AggregatePlan) getAcc(t value.Tuple) *acc {
	kb := p.enc.ProjectedKey(t, p.gpos)
	idx, _, existed := p.groups.GetOrPut(kb, int32(len(p.accs)))
	if existed {
		return &p.accs[*idx]
	}
	if len(p.accs) < cap(p.accs) {
		p.accs = p.accs[:len(p.accs)+1]
	} else {
		p.accs = append(p.accs, acc{})
	}
	g := &p.accs[len(p.accs)-1]
	k := p.arena.NewTuple(len(p.gpos))
	for i, j := range p.gpos {
		k[i] = t[j]
	}
	g.key = k
	g.live = 0
	n := len(p.a.Aggs)
	if cap(g.sums) < n {
		g.sums = make([]value.Value, n)
		g.counts = make([]int64, n)
		g.mins = make([]value.Value, n)
		g.maxs = make([]value.Value, n)
	} else {
		g.sums = g.sums[:n]
		g.counts = g.counts[:n]
		g.mins = g.mins[:n]
		g.maxs = g.maxs[:n]
	}
	for i := 0; i < n; i++ {
		g.sums[i] = value.NewInt(0)
		g.counts[i] = 0
		g.mins[i] = value.NewNull()
		g.maxs[i] = value.NewNull()
	}
	return g
}

// Incremental is the compiled form of AggregateIncremental: the group-by
// positions and argument accessors come from the plan instead of being
// re-resolved per call, and the per-group accumulators live in plan
// scratch reused across windows. It requires Decomposable for this
// delta. The output delta is valid until the next Incremental on this
// plan (or arena reset); newLive is freshly allocated (it is persisted
// by the caller into the view's sidecar).
func (p *AggregatePlan) Incremental(d *Delta, oldAgg OldAgg) (*Delta, map[string]int64, error) {
	a, gpos, argFns := p.a, p.gpos, p.argFns
	if !Decomposable(a.Aggs, d) {
		return nil, nil, fmt.Errorf("delta: aggregate %s is not decomposable for this delta", a.OpLabel())
	}
	p.groups.Reset()
	p.accs = p.accs[:0]
	contribute := func(t value.Tuple, n int64) {
		g := p.getAcc(t)
		g.live += n
		for i, ag := range a.Aggs {
			switch ag.Func {
			case algebra.Count:
				if ag.Arg == nil {
					g.counts[i] += n
				} else if !argFns[i](t).IsNull() {
					g.counts[i] += n
				}
			case algebra.Sum:
				v := argFns[i](t)
				if v.IsNull() {
					continue
				}
				for j := int64(0); j < abs64(n); j++ {
					if n > 0 {
						g.sums[i] = value.Add(g.sums[i], v)
					} else {
						g.sums[i] = value.Sub(g.sums[i], v)
					}
				}
			case algebra.Min:
				v := argFns[i](t)
				if v.IsNull() {
					continue
				}
				if g.mins[i].IsNull() || value.Compare(v, g.mins[i]) < 0 {
					g.mins[i] = v
				}
			case algebra.Max:
				v := argFns[i](t)
				if v.IsNull() {
					continue
				}
				if g.maxs[i].IsNull() || value.Compare(v, g.maxs[i]) > 0 {
					g.maxs[i] = v
				}
			}
		}
	}
	p.sbuf = d.appendSigned(p.sbuf[:0])
	for _, sr := range p.sbuf {
		contribute(sr.tuple, sr.count)
	}
	out := resetOut(&p.outD, p.out)
	newLive := map[string]int64{}
	nAggStart := len(gpos)
	for gi := range p.accs {
		g := &p.accs[gi]
		oldTuple, oldLive, existed, err := oldAgg(g.key)
		if err != nil {
			return nil, nil, err
		}
		if !existed {
			oldLive = 0
		}
		live := oldLive + g.live
		if live < 0 {
			return nil, nil, fmt.Errorf("delta: group %v driven to negative live count %d", g.key, live)
		}
		newLive[string(p.enc.Key(g.key))] = live
		// Build the new output tuple from old + contributions.
		newTuple := p.arena.NewTuple(nAggStart + len(a.Aggs))
		copy(newTuple, g.key)
		for i, ag := range a.Aggs {
			var oldV value.Value
			if existed {
				oldV = oldTuple[nAggStart+i]
			}
			switch ag.Func {
			case algebra.Count:
				base := int64(0)
				if existed {
					base = oldV.AsInt()
				}
				newTuple[nAggStart+i] = value.NewInt(base + g.counts[i])
			case algebra.Sum:
				if existed && !oldV.IsNull() {
					newTuple[nAggStart+i] = value.Add(oldV, g.sums[i])
				} else {
					newTuple[nAggStart+i] = g.sums[i]
				}
			case algebra.Min:
				if existed && !oldV.IsNull() && (g.mins[i].IsNull() || value.Compare(oldV, g.mins[i]) < 0) {
					newTuple[nAggStart+i] = oldV
				} else {
					newTuple[nAggStart+i] = g.mins[i]
				}
			case algebra.Max:
				if existed && !oldV.IsNull() && (g.maxs[i].IsNull() || value.Compare(oldV, g.maxs[i]) > 0) {
					newTuple[nAggStart+i] = oldV
				} else {
					newTuple[nAggStart+i] = g.maxs[i]
				}
			}
		}
		switch {
		case !existed && live > 0:
			out.Insert(newTuple, 1)
		case existed && live == 0:
			out.Delete(oldTuple, 1)
		case existed && live > 0:
			out.Modify(oldTuple, newTuple, 1)
		}
	}
	return out, newLive, nil
}

// AggregateFull recomputes each affected group from its pre-update rows
// (supplied by oldGroup — a query on the child, or GroupRowsFromDelta
// when the delta covers whole groups) plus the delta.
func AggregateFull(a *algebra.Aggregate, d *Delta, oldGroup func(value.Tuple) ([]storage.Row, error)) (*Delta, error) {
	in := d.Schema
	gpos := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		j, err := in.Resolve(g)
		if err != nil {
			return nil, err
		}
		gpos[i] = j
	}
	keys, err := d.AffectedKeys(a.GroupBy)
	if err != nil {
		return nil, err
	}
	out := New(a.Schema())
	for _, gk := range keys {
		oldRows, err := oldGroup(gk)
		if err != nil {
			return nil, err
		}
		// Restrict the delta to this group.
		sub := New(in)
		for _, c := range d.Changes {
			oldIn := c.Old != nil && c.Old.Project(gpos).Equal(gk)
			newIn := c.New != nil && c.New.Project(gpos).Equal(gk)
			switch {
			case oldIn && newIn:
				sub.Changes = append(sub.Changes, c)
			case oldIn:
				sub.Delete(c.Old, c.Count)
			case newIn:
				sub.Insert(c.New, c.Count)
			}
		}
		newRows := ApplyTo(oldRows, sub)
		oldTuple, oldOK, err := aggregateGroup(a, in, gk, oldRows)
		if err != nil {
			return nil, err
		}
		newTuple, newOK, err := aggregateGroup(a, in, gk, newRows)
		if err != nil {
			return nil, err
		}
		switch {
		case oldOK && newOK:
			out.Modify(oldTuple, newTuple, 1)
		case oldOK:
			out.Delete(oldTuple, 1)
		case newOK:
			out.Insert(newTuple, 1)
		}
	}
	return out, nil
}

// aggregateGroup computes the output tuple for one group over the given
// child rows; ok is false when the group is empty.
func aggregateGroup(a *algebra.Aggregate, in *catalog.Schema, gk value.Tuple, rows []storage.Row) (value.Tuple, bool, error) {
	var total int64
	for _, r := range rows {
		total += r.Count
	}
	if total <= 0 {
		return nil, false, nil
	}
	out := make(value.Tuple, 0, len(gk)+len(a.Aggs))
	out = append(out, gk...)
	for _, ag := range a.Aggs {
		if ag.Arg == nil { // COUNT(*)
			out = append(out, value.NewInt(total))
			continue
		}
		f, err := expr.CompileFast(ag.Arg, in)
		if err != nil {
			return nil, false, err
		}
		sum := value.NewInt(0)
		var count int64
		var minV, maxV value.Value
		for _, r := range rows {
			v := f(r.Tuple)
			if v.IsNull() {
				continue
			}
			for j := int64(0); j < r.Count; j++ {
				sum = value.Add(sum, v)
			}
			count += r.Count
			if minV.IsNull() || value.Compare(v, minV) < 0 {
				minV = v
			}
			if maxV.IsNull() || value.Compare(v, maxV) > 0 {
				maxV = v
			}
		}
		switch ag.Func {
		case algebra.Sum:
			if count == 0 {
				out = append(out, value.NewNull())
			} else {
				out = append(out, sum)
			}
		case algebra.Count:
			out = append(out, value.NewInt(count))
		case algebra.Avg:
			if count == 0 {
				out = append(out, value.NewNull())
			} else {
				out = append(out, value.NewFloat(sum.AsFloat()/float64(count)))
			}
		case algebra.Min:
			out = append(out, minV)
		case algebra.Max:
			out = append(out, maxV)
		default:
			return nil, false, fmt.Errorf("delta: unsupported aggregate %s", ag.Func)
		}
	}
	return out, true, nil
}

func abs64(n int64) int64 {
	if n < 0 {
		return -n
	}
	return n
}
