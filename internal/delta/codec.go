// Codec: the binary encode/decode pair for tuples, changes, deltas and
// whole coalesced windows. The tuple bytes are exactly the engine's key
// encoding (value.AppendKey / value.KeyEncoder) prefixed with an arity
// uvarint, so the WAL frames the same bytes the maintenance hot paths
// already hash — one serialization format shared by the log, the
// checkpoint writer and the fuzz corpus, with value.DecodeValue as the
// single inverse.
//
// Every decoder is corruption-robust: truncated, over-long or malformed
// input returns an error wrapping value.ErrCorrupt and never panics or
// invents data, which is the contract the log scanner's torn-tail
// detection relies on.
package delta

import (
	"encoding/binary"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/value"
)

// Change tags in the wire format.
const (
	tagInsert = 0
	tagDelete = 1
	tagModify = 2
)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("delta: %w: %s", value.ErrCorrupt, fmt.Sprintf(format, args...))
}

// AppendTuple appends the wire encoding of t: arity uvarint followed by
// the key encoding of each value.
func AppendTuple(dst []byte, t value.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	return value.AppendKey(dst, t)
}

// DecodeTuple decodes one tuple from the front of b and returns the
// remaining bytes.
func DecodeTuple(b []byte) (value.Tuple, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, corrupt("bad tuple arity")
	}
	b = b[sz:]
	// Every encoded value takes at least two bytes (kind + terminator);
	// bound the arity before allocating.
	if n > uint64(len(b))/2 {
		return nil, nil, corrupt("tuple arity %d exceeds input", n)
	}
	t := make(value.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		v, rest, err := value.DecodeValue(b)
		if err != nil {
			return nil, nil, err
		}
		t = append(t, v)
		b = rest
	}
	return t, b, nil
}

// AppendChange appends the wire encoding of c: a shape tag, the bag
// multiplicity (zero means one, per the Change contract) and the tuple
// side(s) the shape carries.
func AppendChange(dst []byte, c Change) []byte {
	n := c.Count
	if n <= 0 {
		n = 1
	}
	switch {
	case c.IsInsert():
		dst = append(dst, tagInsert)
		dst = binary.AppendUvarint(dst, uint64(n))
		dst = AppendTuple(dst, c.New)
	case c.IsDelete():
		dst = append(dst, tagDelete)
		dst = binary.AppendUvarint(dst, uint64(n))
		dst = AppendTuple(dst, c.Old)
	default:
		dst = append(dst, tagModify)
		dst = binary.AppendUvarint(dst, uint64(n))
		dst = AppendTuple(dst, c.Old)
		dst = AppendTuple(dst, c.New)
	}
	return dst
}

// DecodeChange decodes one change, validating each tuple side against
// the expected arity.
func DecodeChange(b []byte, arity int) (Change, []byte, error) {
	if len(b) < 1 {
		return Change{}, nil, corrupt("truncated change tag")
	}
	tag := b[0]
	count, sz := binary.Uvarint(b[1:])
	if sz <= 0 || count == 0 || count > 1<<62 {
		return Change{}, nil, corrupt("bad change count")
	}
	b = b[1+sz:]
	side := func() (value.Tuple, error) {
		t, rest, err := DecodeTuple(b)
		if err != nil {
			return nil, err
		}
		if len(t) != arity {
			return nil, corrupt("tuple arity %d, schema wants %d", len(t), arity)
		}
		b = rest
		return t, nil
	}
	c := Change{Count: int64(count)}
	var err error
	switch tag {
	case tagInsert:
		c.New, err = side()
	case tagDelete:
		c.Old, err = side()
	case tagModify:
		if c.Old, err = side(); err == nil {
			c.New, err = side()
		}
	default:
		return Change{}, nil, corrupt("unknown change tag %d", tag)
	}
	if err != nil {
		return Change{}, nil, err
	}
	return c, b, nil
}

// AppendDelta appends the wire encoding of d (change count, then each
// change). The schema travels out of band: wire deltas are always scoped
// to a named base relation whose schema the decoder resolves.
func AppendDelta(dst []byte, d *Delta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.Changes)))
	for _, c := range d.Changes {
		dst = AppendChange(dst, c)
	}
	return dst
}

// DecodeDelta decodes one delta against the given schema.
func DecodeDelta(b []byte, s *catalog.Schema) (*Delta, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, corrupt("bad change count")
	}
	b = b[sz:]
	// A change takes at least three bytes (tag, count, empty tuple).
	if n > uint64(len(b))/3+1 {
		return nil, nil, corrupt("change count %d exceeds input", n)
	}
	d := New(s)
	arity := s.Len()
	for i := uint64(0); i < n; i++ {
		c, rest, err := DecodeChange(b, arity)
		if err != nil {
			return nil, nil, err
		}
		d.Changes = append(d.Changes, c)
		b = rest
	}
	return d, b, nil
}

// SchemaSource resolves a base relation's schema while decoding a
// window; the catalog is the usual implementation.
type SchemaSource func(rel string) (*catalog.Schema, bool)

// AppendWindow appends the wire encoding of a coalesced window: the
// relation count, then per relation its name and net delta. Coalesced
// is sorted by relation name, so the encoding is deterministic.
func AppendWindow(dst []byte, w Coalesced) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(w)))
	for _, rd := range w {
		dst = binary.AppendUvarint(dst, uint64(len(rd.Rel)))
		dst = append(dst, rd.Rel...)
		dst = AppendDelta(dst, rd.Delta)
	}
	return dst
}

// DecodeWindow decodes one window, resolving relation schemas through
// schemas. Unknown relations are corruption (the catalog a log is
// replayed against must cover every relation it was written against).
func DecodeWindow(b []byte, schemas SchemaSource) (Coalesced, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, corrupt("bad relation count")
	}
	b = b[sz:]
	if n > uint64(len(b))/2+1 {
		return nil, nil, corrupt("relation count %d exceeds input", n)
	}
	var out Coalesced
	for i := uint64(0); i < n; i++ {
		ln, sz := binary.Uvarint(b)
		if sz <= 0 || ln > uint64(len(b)-sz) {
			return nil, nil, corrupt("bad relation name length")
		}
		name := string(b[sz : sz+int(ln)])
		b = b[sz+int(ln):]
		s, ok := schemas(name)
		if !ok {
			return nil, nil, corrupt("unknown relation %q", name)
		}
		d, rest, err := DecodeDelta(b, s)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, RelDelta{Rel: name, Delta: d})
		b = rest
	}
	return out, b, nil
}
