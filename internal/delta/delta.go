// Package delta implements differential (incremental) computation over
// the logical algebra: given changes to an operator's inputs, it derives
// the changes to the operator's output, in the style of the counting
// algorithm and the paper's Section 2.2 ([GMS93]/[BLT86]-style).
//
// Deltas carry three change shapes — insertions, deletions and in-place
// modifications (paired old/new tuples). Modifications are first-class
// because the paper's cost arithmetic (read old + write new) and the
// aggregate add/subtract trick depend on keeping the pairing.
//
// Propagation through joins, distinct, difference and (non-covered)
// aggregation needs access to the *pre-update* state of other inputs;
// callers supply that state through probe callbacks, which is where the
// paper's "queries posed on equivalence nodes" happen. The delta package
// itself performs no I/O.
package delta

import (
	"fmt"

	"repro/internal/bytemap"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/value"
)

// Change is one element of a delta. Exactly one of the three shapes:
//
//   - insert: New set, Old nil
//   - delete: Old set, New nil
//   - modify: both set
//
// Count is the bag multiplicity (>= 1).
type Change struct {
	Old   value.Tuple
	New   value.Tuple
	Count int64
}

// IsInsert reports whether c is an insertion.
func (c Change) IsInsert() bool { return c.Old == nil && c.New != nil }

// IsDelete reports whether c is a deletion.
func (c Change) IsDelete() bool { return c.Old != nil && c.New == nil }

// IsModify reports whether c is a modification.
func (c Change) IsModify() bool { return c.Old != nil && c.New != nil }

// String renders the change as +t, -t or old→new.
func (c Change) String() string {
	n := c.Count
	if n == 0 {
		n = 1
	}
	switch {
	case c.IsInsert():
		return fmt.Sprintf("+%v×%d", c.New, n)
	case c.IsDelete():
		return fmt.Sprintf("-%v×%d", c.Old, n)
	default:
		return fmt.Sprintf("%v→%v×%d", c.Old, c.New, n)
	}
}

// Delta is a set of changes against a relation with the given schema.
type Delta struct {
	Schema  *catalog.Schema
	Changes []Change
}

// New returns an empty delta for the schema.
func New(s *catalog.Schema) *Delta { return &Delta{Schema: s} }

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool { return d == nil || len(d.Changes) == 0 }

// Insert appends an insertion.
func (d *Delta) Insert(t value.Tuple, count int64) {
	d.Changes = append(d.Changes, Change{New: t, Count: count})
}

// Delete appends a deletion.
func (d *Delta) Delete(t value.Tuple, count int64) {
	d.Changes = append(d.Changes, Change{Old: t, Count: count})
}

// Modify appends a modification, dropping no-ops.
func (d *Delta) Modify(old, new value.Tuple, count int64) {
	if old.Equal(new) {
		return
	}
	d.Changes = append(d.Changes, Change{Old: old, New: new, Count: count})
}

// Size returns the number of changes (the paper's |delta|, used for
// update-cost accounting).
func (d *Delta) Size() int {
	if d == nil {
		return 0
	}
	return len(d.Changes)
}

// AppendMutations appends the delta's changes to dst as storage
// mutations — the reusable-buffer form of ToMutations for callers that
// keep a per-window scratch slice.
func (d *Delta) AppendMutations(dst []storage.Mutation) []storage.Mutation {
	for _, c := range d.Changes {
		dst = append(dst, storage.Mutation{Old: c.Old, New: c.New, Count: c.Count})
	}
	return dst
}

// ToMutations converts the delta into storage mutations.
func (d *Delta) ToMutations() []storage.Mutation {
	return d.AppendMutations(make([]storage.Mutation, 0, len(d.Changes)))
}

// signedRow is a tuple with a signed multiplicity; mods expand to a
// -old/+new pair.
type signedRow struct {
	tuple value.Tuple
	count int64 // signed
}

// appendSigned appends d's signed-row expansion to dst — the
// reusable-buffer form of signedRows.
func (d *Delta) appendSigned(dst []signedRow) []signedRow {
	for _, c := range d.Changes {
		n := c.Count
		if n == 0 {
			n = 1
		}
		if c.Old != nil {
			dst = append(dst, signedRow{tuple: c.Old, count: -n})
		}
		if c.New != nil {
			dst = append(dst, signedRow{tuple: c.New, count: +n})
		}
	}
	return dst
}

func (d *Delta) signedRows() []signedRow {
	return d.appendSigned(nil)
}

// Normalizer nets deltas tuple-wise with reusable scratch (an
// open-addressed key table and a signed-row buffer), so steady-state
// windows normalize without heap allocation beyond the output delta.
// Not safe for concurrent use; owners are per-maintainer.
type Normalizer struct {
	net  bytemap.Map[int32]
	rows []signedRow
	sbuf []signedRow
	enc  value.KeyEncoder
}

// Normalize merges d's changes tuple-wise into net insertions and
// deletions, in first-seen tuple order — identical semantics to
// Delta.Normalize.
func (nz *Normalizer) Normalize(d *Delta) *Delta {
	return nz.NormalizeInto(d, New(d.Schema))
}

// NormalizeInto is Normalize with a caller-recycled output delta: out's
// changes are truncated and rebuilt in place, so a holder that feeds
// the same output delta back every window normalizes with no steady-
// state allocation. Returns out.
func (nz *Normalizer) NormalizeInto(d, out *Delta) *Delta {
	nz.net.Reset()
	nz.rows = nz.rows[:0]
	nz.sbuf = d.appendSigned(nz.sbuf[:0])
	for _, sr := range nz.sbuf {
		kb := nz.enc.Key(sr.tuple)
		p, _, existed := nz.net.GetOrPut(kb, int32(len(nz.rows)))
		if existed {
			nz.rows[*p].count += sr.count
		} else {
			nz.rows = append(nz.rows, sr)
		}
	}
	out.Schema = d.Schema
	out.Changes = out.Changes[:0]
	for i := range nz.rows {
		e := &nz.rows[i]
		switch {
		case e.count > 0:
			out.Insert(e.tuple, e.count)
		case e.count < 0:
			out.Delete(e.tuple, -e.count)
		}
	}
	return out
}

// Normalize merges changes tuple-wise into net insertions and deletions,
// re-pairing nothing: the result contains no modifications. Useful for
// comparing deltas in tests and for signed composition. Hot paths hold
// a Normalizer instead; this one-shot form allocates its scratch.
func (d *Delta) Normalize() *Delta {
	var nz Normalizer
	return nz.Normalize(d)
}

// AffectedKeys returns the distinct projections of all changed tuples
// (old and new sides) onto the given columns, in first-seen order. These
// are the probe keys for the queries posed during propagation.
func (d *Delta) AffectedKeys(cols []string) ([]value.Tuple, error) {
	pos := make([]int, len(cols))
	for i, c := range cols {
		j, err := d.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = j
	}
	seen := map[string]bool{}
	var out []value.Tuple
	var enc value.KeyEncoder
	add := func(t value.Tuple) {
		if t == nil {
			return
		}
		kb := enc.ProjectedKey(t, pos)
		if !seen[string(kb)] {
			seen[string(kb)] = true
			out = append(out, t.Project(pos))
		}
	}
	for _, c := range d.Changes {
		add(c.Old)
		add(c.New)
	}
	return out, nil
}

// GroupCounts returns the signed change in bag cardinality per group key
// (value.Tuple.Key() form) that the delta causes, grouping by the given
// columns. Used to maintain the live-count sidecars of materialized
// aggregate views.
func (d *Delta) GroupCounts(groupCols []string) (map[string]int64, error) {
	pos := make([]int, len(groupCols))
	for i, c := range groupCols {
		j, err := d.Schema.Resolve(c)
		if err != nil {
			return nil, err
		}
		pos[i] = j
	}
	out := map[string]int64{}
	var enc value.KeyEncoder
	for _, sr := range d.signedRows() {
		out[string(enc.ProjectedKey(sr.tuple, pos))] += sr.count
	}
	return out, nil
}

// TupleCounts returns the signed change in multiplicity per full tuple
// (for distinct-view sidecars).
func (d *Delta) TupleCounts() map[string]int64 {
	out := map[string]int64{}
	var enc value.KeyEncoder
	for _, sr := range d.signedRows() {
		out[string(enc.Key(sr.tuple))] += sr.count
	}
	return out
}

// ApplyTo applies the delta to a bag of rows (pre-update), returning the
// post-update bag. Used by the full-group aggregate path and as a test
// oracle.
func ApplyTo(rows []storage.Row, d *Delta) []storage.Row {
	net := map[string]*storage.Row{}
	var order []string
	var enc value.KeyEncoder
	add := func(t value.Tuple, n int64) {
		kb := enc.Key(t)
		if e, ok := net[string(kb)]; ok {
			e.Count += n
		} else {
			k := string(kb)
			net[k] = &storage.Row{Tuple: t, Count: n}
			order = append(order, k)
		}
	}
	for _, r := range rows {
		add(r.Tuple, r.Count)
	}
	for _, sr := range d.signedRows() {
		add(sr.tuple, sr.count)
	}
	var out []storage.Row
	for _, k := range order {
		if e := net[k]; e.Count > 0 {
			out = append(out, *e)
		}
	}
	return out
}
