package delta_test

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

func smallDB() *corpus.Database {
	return corpus.NewDatabase(corpus.Config{Departments: 4, EmpsPerDept: 3, ADeptsEveryN: 2})
}

func empTuple(i, j int, salary int64) value.Tuple {
	return value.Tuple{
		value.NewString(corpus.EmpName(i, j)),
		value.NewString(corpus.DeptName(i)),
		value.NewInt(salary),
	}
}

// resultDiff computes the signed difference after - before as a
// normalized delta (the oracle for propagation tests).
func resultDiff(schema *catalog.Schema, before, after *exec.Result) *delta.Delta {
	d := delta.New(schema)
	for _, r := range after.Rows {
		d.Insert(r.Tuple, r.Count)
	}
	for _, r := range before.Rows {
		d.Delete(r.Tuple, r.Count)
	}
	return d.Normalize()
}

func sameDelta(a, b *delta.Delta) bool {
	an, bn := a.Normalize(), b.Normalize()
	index := map[string]int64{}
	for _, c := range an.Changes {
		n := c.Count
		if c.IsDelete() {
			index[c.Old.Key()] -= n
		} else {
			index[c.New.Key()] += n
		}
	}
	for _, c := range bn.Changes {
		n := c.Count
		if c.IsDelete() {
			index[c.Old.Key()] += n
		} else {
			index[c.New.Key()] -= n
		}
	}
	for _, v := range index {
		if v != 0 {
			return false
		}
	}
	return true
}

// storeProbe builds a delta.Probe answering from the current (pre-update)
// contents of a stored relation, uncharged.
func storeProbe(rel *storage.Relation, cols []string) delta.Probe {
	return func(jk value.Tuple) ([]storage.Row, error) {
		was := rel.Resident
		rel.Resident = true
		rows := rel.Lookup(cols, jk)
		rel.Resident = was
		return rows, nil
	}
}

func TestSelectPropagation(t *testing.T) {
	db := smallDB()
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	sel := algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("Emp.Salary"), expr.IntLit(150)), emp)

	d := delta.New(emp.Schema())
	d.Insert(empTuple(0, 9, 200), 1)            // passes
	d.Insert(empTuple(0, 8, 100), 1)            // fails
	d.Delete(empTuple(1, 0, 100), 1)            // fails -> dropped
	d.Modify(empTuple(2, 0, 100), empTuple(2, 0, 300), 1) // crosses up -> insert
	d.Modify(empTuple(2, 1, 300), empTuple(2, 1, 100), 1) // crosses down -> delete
	d.Modify(empTuple(2, 2, 200), empTuple(2, 2, 300), 1) // stays in -> modify

	out, err := delta.Select(sel, d)
	if err != nil {
		t.Fatal(err)
	}
	var ins, del, mod int
	for _, c := range out.Changes {
		switch {
		case c.IsInsert():
			ins++
		case c.IsDelete():
			del++
		default:
			mod++
		}
	}
	if ins != 2 || del != 1 || mod != 1 {
		t.Errorf("select delta shapes = +%d -%d ~%d, want +2 -1 ~1 (%v)", ins, del, mod, out.Changes)
	}
}

func TestProjectPropagationDropsNoOps(t *testing.T) {
	db := smallDB()
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	proj := algebra.NewProject([]algebra.ProjectItem{{E: expr.C("Emp.DName")}}, emp)

	d := delta.New(emp.Schema())
	// Salary-only change: projection onto DName makes it a no-op.
	d.Modify(empTuple(0, 0, 100), empTuple(0, 0, 999), 1)
	out, err := delta.Project(proj, d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Empty() {
		t.Errorf("projection should drop salary-only change, got %v", out.Changes)
	}
}

func TestJoinSidePropagation(t *testing.T) {
	db := smallDB()
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	ev := exec.NewFree(db.Store)
	before, err := ev.Eval(join)
	if err != nil {
		t.Fatal(err)
	}

	d := delta.New(join.L.Schema())
	d.Insert(empTuple(0, 9, 500), 1)
	d.Delete(empTuple(1, 0, 100), 1)
	d.Modify(empTuple(2, 0, 100), empTuple(2, 0, 400), 1)

	probe := storeProbe(db.Store.MustGet("Dept"), []string{"Dept.DName"})
	got, err := delta.JoinSide(join, d, 0, probe)
	if err != nil {
		t.Fatal(err)
	}

	db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
	after, err := ev.Eval(join)
	if err != nil {
		t.Fatal(err)
	}
	want := resultDiff(join.Schema(), before, after)
	if !sameDelta(got, want) {
		t.Errorf("join delta mismatch:\ngot  %v\nwant %v", got.Normalize().Changes, want.Changes)
	}
}

// TestJoinSideKeyChange moves an employee between departments: the
// modification must become delete-old-matches + insert-new-matches.
func TestJoinSideKeyChange(t *testing.T) {
	db := smallDB()
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	ev := exec.NewFree(db.Store)
	before, _ := ev.Eval(join)

	old := empTuple(0, 0, 100)
	moved := old.Clone()
	moved[1] = value.NewString(corpus.DeptName(3))
	d := delta.New(join.L.Schema())
	d.Modify(old, moved, 1)

	got, err := delta.JoinSide(join, d, 0, storeProbe(db.Store.MustGet("Dept"), []string{"Dept.DName"}))
	if err != nil {
		t.Fatal(err)
	}
	hasMod := false
	for _, c := range got.Changes {
		if c.IsModify() {
			hasMod = true
		}
	}
	if hasMod {
		t.Error("key-changing modification must not stay a modification")
	}

	db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
	after, _ := ev.Eval(join)
	if !sameDelta(got, resultDiff(join.Schema(), before, after)) {
		t.Error("join delta with key change diverges from oracle")
	}
}

func TestJoinBothSides(t *testing.T) {
	db := smallDB()
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	ev := exec.NewFree(db.Store)
	before, _ := ev.Eval(join)

	dl := delta.New(join.L.Schema())
	dl.Insert(empTuple(0, 9, 500), 1)
	dl.Delete(empTuple(1, 1, 100), 1)

	deptSchema := join.R.Schema()
	oldDept := value.Tuple{
		value.NewString(corpus.DeptName(0)),
		value.NewString("m" + corpus.DeptName(0)),
		value.NewInt(corpus.BudgetFor(db.Config, 0)),
	}
	newDept := oldDept.Clone()
	newDept[2] = value.NewInt(42)
	dr := delta.New(deptSchema)
	dr.Modify(oldDept, newDept, 1)

	got, err := delta.JoinBoth(join, dl, dr,
		storeProbe(db.Store.MustGet("Emp"), []string{"Emp.DName"}),
		storeProbe(db.Store.MustGet("Dept"), []string{"Dept.DName"}))
	if err != nil {
		t.Fatal(err)
	}

	db.Store.MustGet("Emp").ApplyBatch(dl.ToMutations())
	db.Store.MustGet("Dept").ApplyBatch(dr.ToMutations())
	after, _ := ev.Eval(join)
	if !sameDelta(got, resultDiff(join.Schema(), before, after)) {
		t.Errorf("JoinBoth diverges from oracle:\ngot %v", got.Changes)
	}
}

func TestAggregateIncrementalSumTrick(t *testing.T) {
	db := smallDB()
	sum := db.SumOfSals().(*algebra.Aggregate)
	ev := exec.NewFree(db.Store)
	before, _ := ev.Eval(sum)

	// Build the old-aggregate probe from the materialized view contents.
	oldAgg := oldAggFromResult(before, len(sum.GroupBy), map[string]int64{
		// live counts: 3 employees per department
		value.Tuple{value.NewString(corpus.DeptName(0))}.Key(): 3,
		value.Tuple{value.NewString(corpus.DeptName(1))}.Key(): 3,
		value.Tuple{value.NewString(corpus.DeptName(2))}.Key(): 3,
		value.Tuple{value.NewString(corpus.DeptName(3))}.Key(): 3,
	})

	d := delta.New(sum.Input.Schema())
	d.Modify(empTuple(0, 0, 100), empTuple(0, 0, 250), 1) // +150 to d0
	d.Insert(empTuple(1, 9, 70), 1)                       // +70 to d1
	d.Delete(empTuple(2, 0, 100), 1)                      // -100 to d2

	got, live, err := delta.AggregateIncremental(sum, d, oldAgg)
	if err != nil {
		t.Fatal(err)
	}

	db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
	after, _ := ev.Eval(sum)
	if !sameDelta(got, resultDiff(sum.Schema(), before, after)) {
		t.Errorf("incremental aggregate diverges from oracle:\ngot %v", got.Changes)
	}
	k0 := value.Tuple{value.NewString(corpus.DeptName(1))}.Key()
	if live[k0] != 4 {
		t.Errorf("live count for d1 = %d, want 4", live[k0])
	}
}

// TestAggregateIncrementalGroupBirthAndDeath: inserting into a fresh
// group creates it; deleting a group's last members removes it.
func TestAggregateIncrementalGroupBirthAndDeath(t *testing.T) {
	db := smallDB()
	sum := db.SumOfSals().(*algebra.Aggregate)
	ev := exec.NewFree(db.Store)
	before, _ := ev.Eval(sum)
	liveInit := map[string]int64{}
	for i := 0; i < 4; i++ {
		liveInit[value.Tuple{value.NewString(corpus.DeptName(i))}.Key()] = 3
	}
	oldAgg := oldAggFromResult(before, len(sum.GroupBy), liveInit)

	d := delta.New(sum.Input.Schema())
	// New department d9 born.
	newEmp := value.Tuple{value.NewString("fresh"), value.NewString("d9"), value.NewInt(500)}
	d.Insert(newEmp, 1)
	// Department d3 dies.
	for j := 0; j < 3; j++ {
		d.Delete(empTuple(3, j, 100), 1)
	}

	got, live, err := delta.AggregateIncremental(sum, d, oldAgg)
	if err != nil {
		t.Fatal(err)
	}
	db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
	after, _ := ev.Eval(sum)
	if !sameDelta(got, resultDiff(sum.Schema(), before, after)) {
		t.Errorf("group birth/death diverges from oracle:\ngot %v", got.Changes)
	}
	if live[value.Tuple{value.NewString("d9")}.Key()] != 1 {
		t.Error("new group live count should be 1")
	}
	if live[value.Tuple{value.NewString(corpus.DeptName(3))}.Key()] != 0 {
		t.Error("dead group live count should be 0")
	}
}

// oldAggFromResult adapts a materialized aggregate Result into an delta.OldAgg.
func oldAggFromResult(res *exec.Result, nGroupCols int, live map[string]int64) delta.OldAgg {
	index := map[string]value.Tuple{}
	for _, r := range res.Rows {
		index[r.Tuple[:nGroupCols].Key()] = r.Tuple
	}
	return func(gk value.Tuple) (value.Tuple, int64, bool, error) {
		t, ok := index[gk.Key()]
		if !ok {
			return nil, 0, false, nil
		}
		return t, live[gk.Key()], true, nil
	}
}

func TestAggregateFullMatchesOracle(t *testing.T) {
	db := smallDB()
	// Aggregate with AVG and MIN — not decomposable under deletes.
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	agg := algebra.NewAggregate(
		[]string{"Emp.DName"},
		[]algebra.AggSpec{
			{Func: algebra.Avg, Arg: expr.C("Emp.Salary"), As: "AvgSal"},
			{Func: algebra.Min, Arg: expr.C("Emp.Salary"), As: "MinSal"},
			{Func: algebra.Count, As: "N"},
		},
		emp,
	)
	ev := exec.NewFree(db.Store)
	before, _ := ev.Eval(agg)

	d := delta.New(emp.Schema())
	d.Modify(empTuple(0, 0, 100), empTuple(0, 0, 50), 1) // lowers min, changes avg
	d.Delete(empTuple(1, 2, 100), 1)
	d.Insert(empTuple(2, 9, 10), 1)

	if delta.Decomposable(agg.Aggs, d) {
		t.Fatal("AVG/MIN under deletes must not be decomposable")
	}

	oldGroup := func(gk value.Tuple) ([]storage.Row, error) {
		rel := db.Store.MustGet("Emp")
		was := rel.Resident
		rel.Resident = true
		rows := rel.Lookup([]string{"DName"}, gk)
		rel.Resident = was
		return rows, nil
	}
	got, err := delta.AggregateFull(agg, d, oldGroup)
	if err != nil {
		t.Fatal(err)
	}
	db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
	after, _ := ev.Eval(agg)
	if !sameDelta(got, resultDiff(agg.Schema(), before, after)) {
		t.Errorf("full-group aggregate diverges from oracle:\ngot %v", got.Changes)
	}
}

// TestAggregateFullFromCoveredDelta exercises the key-based optimization
// (Q3d = 0): when the delta covers whole groups, the old group rows come
// from the delta itself and no query is posed.
func TestAggregateFullFromCoveredDelta(t *testing.T) {
	db := smallDB()
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	agg := algebra.NewAggregate(
		[]string{"Dept.DName", "Dept.Budget"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "SumSal"}},
		join,
	)
	ev := exec.NewFree(db.Store)
	beforeJoin, _ := ev.Eval(join)
	beforeAgg, _ := ev.Eval(agg)

	// A Dept budget change touches all join tuples of that department:
	// the join delta covers the whole group.
	oldDept := value.Tuple{
		value.NewString(corpus.DeptName(0)),
		value.NewString("m" + corpus.DeptName(0)),
		value.NewInt(corpus.BudgetFor(db.Config, 0)),
	}
	newDept := oldDept.Clone()
	newDept[2] = value.NewInt(77)
	dDept := delta.New(join.R.Schema())
	dDept.Modify(oldDept, newDept, 1)

	joinDelta, err := delta.JoinSide(join, dDept, 1, storeProbe(db.Store.MustGet("Emp"), []string{"Emp.DName"}))
	if err != nil {
		t.Fatal(err)
	}
	oldGroup, err := delta.GroupRowsFromDelta(joinDelta, agg.GroupBy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.AggregateFull(agg, joinDelta, oldGroup)
	if err != nil {
		t.Fatal(err)
	}

	db.Store.MustGet("Dept").ApplyBatch(dDept.ToMutations())
	afterAgg, _ := ev.Eval(agg)
	if !sameDelta(got, resultDiff(agg.Schema(), beforeAgg, afterAgg)) {
		t.Errorf("covered-delta aggregate diverges from oracle:\ngot %v\njoin delta %v (before join %d rows)",
			got.Changes, joinDelta.Changes, beforeJoin.Card())
	}
}

func TestDistinctPropagation(t *testing.T) {
	db := smallDB()
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	proj := algebra.NewProject([]algebra.ProjectItem{{E: expr.C("Emp.DName")}}, emp)
	dis := algebra.NewDistinct(proj)
	ev := exec.NewFree(db.Store)
	projRes, _ := ev.Eval(proj)
	counts := map[string]int64{}
	for _, r := range projRes.Rows {
		counts[r.Tuple.Key()] = r.Count
	}
	countOf := func(t value.Tuple) (int64, error) { return counts[t.Key()], nil }

	d := delta.New(proj.Schema())
	d.Insert(value.Tuple{value.NewString("d-new")}, 1)                 // fresh -> insert
	d.Insert(value.Tuple{value.NewString(corpus.DeptName(0))}, 1)      // existing -> no-op
	d.Delete(value.Tuple{value.NewString(corpus.DeptName(1))}, 1)      // 3-1=2 left -> no-op
	d.Delete(value.Tuple{value.NewString(corpus.DeptName(2))}, 3)      // all gone -> delete

	out, err := delta.Distinct(dis, d, countOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Changes) != 2 {
		t.Fatalf("distinct delta = %v, want 1 insert + 1 delete", out.Changes)
	}
}

func TestDiffPropagation(t *testing.T) {
	db := smallDB()
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	projL := algebra.NewProject([]algebra.ProjectItem{{E: expr.C("Emp.DName")}}, emp)
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))
	diff := algebra.NewDiff(projL, adepts)
	ev := exec.NewFree(db.Store)
	lRes, _ := ev.Eval(projL)
	rRes, _ := ev.Eval(adepts)
	before, _ := ev.Eval(diff)

	countFrom := func(res *exec.Result) delta.CountProbe {
		idx := map[string]int64{}
		for _, r := range res.Rows {
			idx[r.Tuple.Key()] = r.Count
		}
		return func(t value.Tuple) (int64, error) { return idx[t.Key()], nil }
	}

	d := delta.New(projL.Schema())
	d.Insert(value.Tuple{value.NewString(corpus.DeptName(0))}, 2)
	d.Delete(value.Tuple{value.NewString(corpus.DeptName(1))}, 1)

	got, err := delta.DiffSide(diff, d, 0, countFrom(lRes), countFrom(rRes))
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: recompute over updated left side.
	afterRows := delta.ApplyTo(lRes.Rows, d)
	afterL := &exec.Result{Schema: lRes.Schema, Rows: afterRows}
	after := diffOracle(afterL, rRes)
	want := resultDiff(diff.Schema(), before, after)
	if !sameDelta(got, want) {
		t.Errorf("diff delta mismatch:\ngot  %v\nwant %v", got.Normalize().Changes, want.Changes)
	}
}

func diffOracle(l, r *exec.Result) *exec.Result {
	idx := map[string]int64{}
	for _, row := range r.Rows {
		idx[row.Tuple.Key()] += row.Count
	}
	out := &exec.Result{Schema: l.Schema}
	for _, row := range l.Rows {
		n := row.Count - idx[row.Tuple.Key()]
		if n > 0 {
			out.Rows = append(out.Rows, storage.Row{Tuple: row.Tuple, Count: n})
		}
	}
	return out
}

func TestUnionSidePassthrough(t *testing.T) {
	db := smallDB()
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	u := algebra.NewUnion(emp, emp)
	d := delta.New(emp.Schema())
	d.Insert(empTuple(0, 9, 1), 1)
	out := delta.UnionSide(u, d)
	if len(out.Changes) != 1 || !out.Changes[0].IsInsert() {
		t.Errorf("union delta = %v", out.Changes)
	}
}

func TestNormalizeCancels(t *testing.T) {
	db := smallDB()
	s := algebra.Scan(db.Catalog.MustGet("Emp")).Schema()
	d := delta.New(s)
	tup := empTuple(0, 0, 100)
	d.Insert(tup, 2)
	d.Delete(tup, 2)
	if n := d.Normalize(); !n.Empty() {
		t.Errorf("insert+delete of same tuple should cancel, got %v", n.Changes)
	}
	d2 := delta.New(s)
	d2.Modify(tup, tup.Clone(), 1)
	if len(d2.Changes) != 0 {
		t.Error("no-op modify should be dropped at construction")
	}
}

func TestAffectedKeys(t *testing.T) {
	db := smallDB()
	s := algebra.Scan(db.Catalog.MustGet("Emp")).Schema()
	d := delta.New(s)
	d.Modify(empTuple(0, 0, 100), empTuple(0, 0, 200), 1)
	d.Insert(empTuple(1, 9, 100), 1)
	moved := empTuple(2, 0, 100)
	movedNew := moved.Clone()
	movedNew[1] = value.NewString(corpus.DeptName(3))
	d.Modify(moved, movedNew, 1)

	keys, err := d.AffectedKeys([]string{"Emp.DName"})
	if err != nil {
		t.Fatal(err)
	}
	// d0, d1, d2 (old side), d3 (new side)
	if len(keys) != 4 {
		t.Errorf("AffectedKeys = %v, want 4 distinct departments", keys)
	}
}

// TestRandomizedJoinAggPipeline drives random update batches through
// Join then Aggregate propagation and checks against full recomputation.
func TestRandomizedJoinAggPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		db := corpus.NewDatabase(corpus.Config{Departments: 3, EmpsPerDept: 2})
		join := algebra.NewJoin(
			[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
			algebra.Scan(db.Catalog.MustGet("Emp")),
			algebra.Scan(db.Catalog.MustGet("Dept")),
		)
		agg := algebra.NewAggregate(
			[]string{"Dept.DName", "Dept.Budget"},
			[]algebra.AggSpec{
				{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "SumSal"},
				{Func: algebra.Count, As: "N"},
			},
			join,
		)
		ev := exec.NewFree(db.Store)
		beforeAgg, _ := ev.Eval(agg)

		// Random employee-side delta.
		d := delta.New(join.L.Schema())
		for k := 0; k < 1+rng.Intn(3); k++ {
			i, j := rng.Intn(3), rng.Intn(2)
			switch rng.Intn(3) {
			case 0:
				d.Insert(value.Tuple{
					value.NewString(corpus.EmpName(i, 10+k)),
					value.NewString(corpus.DeptName(i)),
					value.NewInt(int64(10 * (k + 1))),
				}, 1)
			case 1:
				d.Delete(empTuple(i, j, corpus.BaseSalary), 1)
			default:
				d.Modify(empTuple(i, j, corpus.BaseSalary),
					empTuple(i, j, corpus.BaseSalary+int64(rng.Intn(50))), 1)
			}
		}

		joinDelta, err := delta.JoinSide(join, d, 0, storeProbe(db.Store.MustGet("Dept"), []string{"Dept.DName"}))
		if err != nil {
			t.Fatal(err)
		}
		oldGroup := func(gk value.Tuple) ([]storage.Row, error) {
			// Query the join for the group's pre-update rows: employees
			// of the department joined with the department tuple.
			evq := exec.NewFree(db.Store)
			res, err := evq.EvalFiltered(join, []string{"Dept.DName"}, gk[:1])
			if err != nil {
				return nil, err
			}
			return res.Rows, nil
		}
		aggDelta, err := delta.AggregateFull(agg, joinDelta, oldGroup)
		if err != nil {
			t.Fatal(err)
		}

		db.Store.MustGet("Emp").ApplyBatch(d.ToMutations())
		afterAgg, _ := ev.Eval(agg)
		want := resultDiff(agg.Schema(), beforeAgg, afterAgg)
		if !sameDelta(aggDelta, want) {
			t.Fatalf("trial %d: pipeline diverges from oracle\ndelta in: %v\ngot  %v\nwant %v",
				trial, d.Changes, aggDelta.Normalize().Changes, want.Changes)
		}
	}
}

// TestNormalizeProperties: Normalize is idempotent and ApplyTo is
// invariant under it (quick-check over random deltas).
func TestNormalizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := smallDB()
	schema := algebra.Scan(db.Catalog.MustGet("Emp")).Schema()
	for trial := 0; trial < 200; trial++ {
		d := delta.New(schema)
		for i := 0; i < rng.Intn(6); i++ {
			a := empTuple(rng.Intn(3), rng.Intn(3), int64(100*(1+rng.Intn(3))))
			b := empTuple(rng.Intn(3), rng.Intn(3), int64(100*(1+rng.Intn(3))))
			switch rng.Intn(3) {
			case 0:
				d.Insert(a, int64(1+rng.Intn(2)))
			case 1:
				d.Delete(a, int64(1+rng.Intn(2)))
			default:
				d.Modify(a, b, 1)
			}
		}
		n1 := d.Normalize()
		n2 := n1.Normalize()
		if !sameDelta(n1, n2) {
			t.Fatalf("Normalize not idempotent: %v vs %v", n1.Changes, n2.Changes)
		}
		// ApplyTo agrees on the raw and normalized forms for a random
		// starting bag.
		var rows []storage.Row
		for i := 0; i < 3; i++ {
			rows = append(rows, storage.Row{
				Tuple: empTuple(i, 0, 100), Count: int64(1 + rng.Intn(3)),
			})
		}
		after1 := delta.ApplyTo(rows, d)
		after2 := delta.ApplyTo(rows, n1)
		if !bagsEqual(after1, after2) {
			t.Fatalf("ApplyTo not invariant under Normalize:\nraw %v\nnorm %v", after1, after2)
		}
	}
}

func bagsEqual(a, b []storage.Row) bool {
	idx := map[string]int64{}
	for _, r := range a {
		idx[r.Tuple.Key()] += r.Count
	}
	for _, r := range b {
		idx[r.Tuple.Key()] -= r.Count
	}
	for _, n := range idx {
		if n != 0 {
			return false
		}
	}
	return true
}

// TestGroupAndTupleCounts: signed bookkeeping helpers.
func TestGroupAndTupleCounts(t *testing.T) {
	db := smallDB()
	schema := algebra.Scan(db.Catalog.MustGet("Emp")).Schema()
	d := delta.New(schema)
	d.Insert(empTuple(0, 9, 100), 2)
	d.Delete(empTuple(0, 0, 100), 1)
	d.Modify(empTuple(1, 0, 100), empTuple(1, 0, 200), 1)

	gc, err := d.GroupCounts([]string{"Emp.DName"})
	if err != nil {
		t.Fatal(err)
	}
	d0 := value.Tuple{value.NewString(corpus.DeptName(0))}.Key()
	d1 := value.Tuple{value.NewString(corpus.DeptName(1))}.Key()
	if gc[d0] != 1 { // +2 -1
		t.Errorf("d0 group delta = %d, want 1", gc[d0])
	}
	if gc[d1] != 0 { // modify: -1 +1
		t.Errorf("d1 group delta = %d, want 0", gc[d1])
	}

	tc := d.TupleCounts()
	if tc[empTuple(0, 9, 100).Key()] != 2 {
		t.Error("insert count wrong")
	}
	if tc[empTuple(1, 0, 100).Key()] != -1 || tc[empTuple(1, 0, 200).Key()] != 1 {
		t.Error("modify split wrong")
	}
}
