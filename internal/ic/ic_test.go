package ic_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/ic"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
)

func checkerFixture(t *testing.T, mode ic.Mode) (*corpus.Database, *ic.Checker) {
	t.Helper()
	db := corpus.NewDatabase(corpus.Config{Departments: 8, EmpsPerDept: 4})
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(d)
	if n3 := d.FindEq(db.SumOfSals()); n3 != nil {
		vs[n3.ID] = true
	}
	m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := ic.New(m, mode, ic.Assertion{Name: "DeptConstraint", View: d.Root})
	if err != nil {
		t.Fatal(err)
	}
	return db, checker
}

func TestCleanTransactionPasses(t *testing.T) {
	db, c := checkerFixture(t, ic.Reject)
	d, err := db.EmpSalaryDelta(0, 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute(txn.PaperTypes()[0], map[string]*delta.Delta{"Emp": d})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() || out.RolledBack {
		t.Errorf("clean transaction flagged: %+v", out.Violations)
	}
}

func TestViolationRejectedAndRolledBack(t *testing.T) {
	db, c := checkerFixture(t, ic.Reject)
	d, err := db.EmpSalaryDelta(3, 1, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute(txn.PaperTypes()[0], map[string]*delta.Delta{"Emp": d})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() || !out.RolledBack {
		t.Fatalf("violation not rejected: %+v", out)
	}
	if out.Violations[0].Assertion != "DeptConstraint" {
		t.Errorf("violation name = %q", out.Violations[0].Assertion)
	}
	// State must be as before: re-running a clean transaction passes and
	// the assertion view is empty.
	d, err = db.EmpSalaryDelta(3, 1, 110)
	if err != nil {
		t.Fatal(err)
	}
	out, err = c.Execute(txn.PaperTypes()[0], map[string]*delta.Delta{"Emp": d})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Errorf("post-rollback transaction flagged: %+v", out.Violations)
	}
}

func TestReportModeKeepsViolation(t *testing.T) {
	db, c := checkerFixture(t, ic.Report)
	d, err := db.EmpSalaryDelta(2, 2, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute(txn.PaperTypes()[0], map[string]*delta.Delta{"Emp": d})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() || out.RolledBack {
		t.Fatalf("report mode should flag but keep: %+v", out)
	}
	// The violation persists (deferred-style): a later unrelated
	// transaction still sees it.
	d2, err := db.DeptBudgetDelta(5, 99_999)
	if err != nil {
		t.Fatal(err)
	}
	out, err = c.Execute(txn.PaperTypes()[1], map[string]*delta.Delta{"Dept": d2})
	if err != nil {
		t.Fatal(err)
	}
	if out.OK() {
		t.Error("pre-existing violation should still be visible")
	}
}

func TestBudgetRaiseCuresViolation(t *testing.T) {
	db, c := checkerFixture(t, ic.Report)
	d, err := db.EmpSalaryDelta(1, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(txn.PaperTypes()[0], map[string]*delta.Delta{"Emp": d}); err != nil {
		t.Fatal(err)
	}
	// Raising the department's budget above the new sum cures it.
	d2, err := db.DeptBudgetDelta(1, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute(txn.PaperTypes()[1], map[string]*delta.Delta{"Dept": d2})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Errorf("budget raise should cure the violation: %+v", out.Violations)
	}
}

func TestAssertionMustBeMaterialized(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 2, EmpsPerDept: 2})
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	m, err := maintain.New(d, db.Store, cost.PageIO{}, tracks.RootSet(d))
	if err != nil {
		t.Fatal(err)
	}
	// A non-materialized node cannot back an assertion.
	var nonRoot *dag.EqNode
	for _, e := range d.NonLeafEqs() {
		if !d.IsRoot(e) {
			nonRoot = e
			break
		}
	}
	if _, err := ic.New(m, ic.Reject, ic.Assertion{Name: "bad", View: nonRoot}); err == nil {
		t.Error("assertion over unmaterialized view should be rejected")
	}
}
