// Package ic implements SQL-92 assertion (complex integrity constraint)
// checking on top of incremental view maintenance, per the paper's
// Sections 1 and 6: "These integrity constraints can be modeled as
// materialized views whose results are required to be empty", and
// "incrementally checking them may be quite costly unless additional
// views are materialized".
//
// A Checker owns a maintenance engine whose roots are the assertion
// views (plus any ordinary materialized views); after each transaction it
// inspects the assertion views and, in Reject mode, rolls the transaction
// back when any is non-empty.
package ic

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Assertion names a must-stay-empty view.
type Assertion struct {
	Name string
	View *dag.EqNode
}

// Mode selects what happens on violation.
type Mode int

// Violation-handling modes.
const (
	// Report applies the transaction and reports violations (deferred
	// constraint style).
	Report Mode = iota
	// Reject rolls the violating transaction back (immediate constraint
	// style).
	Reject
)

// Violation is one non-empty assertion after a transaction.
type Violation struct {
	Assertion string
	Rows      []storage.Row
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("assertion %s violated by %d tuple(s)", v.Assertion, len(v.Rows))
}

// Checker runs transactions under assertion checking.
type Checker struct {
	M          *maintain.Maintainer
	Assertions []Assertion
	Mode       Mode
}

// New builds a checker over an existing maintainer. Every assertion view
// must be materialized by the maintainer (it is a root of the DAG).
func New(m *maintain.Maintainer, mode Mode, assertions ...Assertion) (*Checker, error) {
	for _, a := range assertions {
		if _, ok := m.ViewRel(a.View); !ok {
			return nil, fmt.Errorf("ic: assertion %s view %s is not materialized", a.Name, a.View)
		}
	}
	return &Checker{M: m, Assertions: assertions, Mode: mode}, nil
}

// Outcome reports one checked transaction.
type Outcome struct {
	Report     *maintain.Report
	Violations []Violation
	RolledBack bool
}

// OK reports whether the transaction satisfied every assertion.
func (o *Outcome) OK() bool { return len(o.Violations) == 0 }

// Execute maintains all views under the transaction, then checks each
// assertion. The check itself is free: the assertion view is already
// materialized and its emptiness is known from its cardinality — this is
// precisely why assertion checking reduces to view maintenance.
func (c *Checker) Execute(t *txn.Type, updates map[string]*delta.Delta) (*Outcome, error) {
	// In Reject mode the apply is tentative until the verdict: suspend
	// the group committer so a violating transaction is never logged.
	// The mutation hook still stages its deltas, but the rollback's
	// inverse mutations are staged too, and the deferred commit below
	// coalesces both to nothing — no logged-but-rejected deltas.
	com := c.M.Committer
	deferred := com != nil && c.Mode == Reject
	if deferred {
		c.M.Committer = nil
		defer func() { c.M.Committer = com }()
	}
	rep, err := c.M.Apply(t, updates)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Report: rep}
	for _, a := range c.Assertions {
		rows := c.M.Contents(a.View)
		if len(rows) > 0 {
			// Contents rows alias view storage, which the rollback below
			// mutates (and storage recycles freed tuple slots on insert),
			// so the outcome keeps its own copies. Violations are the
			// exceptional path; the clone never runs on a clean window.
			owned := make([]storage.Row, len(rows))
			for i, row := range rows {
				owned[i] = storage.Row{Tuple: row.Tuple.Clone(), Count: row.Count}
			}
			out.Violations = append(out.Violations, Violation{Assertion: a.Name, Rows: owned})
		}
	}
	if c.Mode == Reject && !out.OK() {
		if err := c.M.Rollback(rep, updates); err != nil {
			return nil, fmt.Errorf("ic: rollback failed: %w", err)
		}
		out.RolledBack = true
	}
	if deferred {
		lsn, err := com.Commit(1)
		if err != nil {
			return nil, fmt.Errorf("ic: commit: %w", err)
		}
		rep.LSN = lsn
	}
	return out, nil
}
