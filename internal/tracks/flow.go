package tracks

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/txn"
)

// Flow is the estimated delta arriving at a node: expected numbers of
// modified, inserted and deleted tuples, the number of distinct source
// entities driving them (Keys — the probe-key count for queries), and the
// bare names of the columns a modification changes.
type Flow struct {
	Mods, Ins, Dels float64
	Keys            float64
	ModCols         []string
}

// Total returns the expected delta size (the paper's |delta|).
func (f Flow) Total() float64 { return f.Mods + f.Ins + f.Dels }

// Empty reports whether no change flows.
func (f Flow) Empty() bool { return f.Total() <= 0 }

func (f Flow) scale(sel float64) Flow {
	return Flow{
		Mods: f.Mods * sel, Ins: f.Ins * sel, Dels: f.Dels * sel,
		Keys: math.Min(f.Keys, f.Keys*sel+1), ModCols: f.ModCols,
	}
}

// modsTouch reports whether the modification columns intersect cols
// (bare-name comparison).
func (f Flow) modsTouch(cols []string) bool {
	for _, m := range f.ModCols {
		mb := bareOf(m)
		for _, c := range cols {
			if bareOf(c) == mb {
				return true
			}
		}
	}
	return false
}

// leafFlow builds the flow entering the DAG at an updated base relation.
func leafFlow(u txn.RelUpdate) Flow {
	f := Flow{Keys: u.Size}
	switch u.Kind {
	case txn.Insert:
		f.Ins = u.Size
	case txn.Delete:
		f.Dels = u.Size
	default:
		f.Mods = u.Size
		f.ModCols = append([]string{}, u.Cols...)
	}
	return f
}

// QueryCharge is one query posed on an equivalence node while propagating
// a delta (the paper's Q2Ld, Q2Re, ... of Example 3.2).
type QueryCharge struct {
	// Target is the equivalence node the query is posed on.
	Target *dag.EqNode
	// Bind are the equality columns the query binds.
	Bind []string
	// Keys is the expected number of distinct probe keys.
	Keys float64
	// Origin identifies the operation node and input that generated the
	// query (e.g. "E4.L").
	Origin string
	// Cost is the estimated cost, filled in by the coster.
	Cost float64
}

// opFlow derives the output flow of an operation node from its children's
// flows, and the queries the delta computation must pose. childFlows maps
// equivalence-node IDs to flows (absent = unaffected input).
//
// The returned Flow never depends on ctx.vs — the view set gates only
// which queries are posed. The branch-and-bound lower bound
// (Costing.WeightedUpdateLB) relies on this invariant: update charges at
// a node are a function of the track alone, so they carry unchanged to
// every superset's tracks.
func (c *Costing) opFlow(ctx *costCtx, e *dag.EqNode, op *dag.OpNode, childFlows map[int]Flow) (Flow, []QueryCharge) {
	switch t := op.Template.(type) {
	case *algebra.Select:
		f := childFlows[op.Children[0].ID]
		sel := Selectivity(t.Pred, c.Est.StatsOf(op.Children[0]))
		return f.scale(sel), nil

	case *algebra.Project:
		f := childFlows[op.Children[0].ID]
		// Remap modification columns through the projection: pass-through
		// columns keep their bare name; computed items that read a
		// modified column yield a modified output column.
		var mc []string
		for _, it := range t.Items {
			cols := expr.ColumnsOf(it.E)
			if !f.modsTouch(cols) {
				continue
			}
			name := it.As
			if name == "" {
				if col, ok := it.E.(expr.Col); ok {
					name = col.Name
				}
			}
			if name != "" {
				mc = append(mc, bareOf(name))
			}
		}
		out := f
		out.ModCols = mc
		return out, nil

	case *algebra.Join:
		return c.joinFlow(ctx, t, op, childFlows)

	case *algebra.Aggregate:
		return c.aggFlow(ctx, t, e, op, childFlows)

	case *algebra.Distinct:
		f := childFlows[op.Children[0].ID]
		if ctx.vs.Has(e) {
			// Multiplicity sidecar rides with the materialized view.
			return f, nil
		}
		if ctx.noQueries {
			return f, nil
		}
		child := op.Children[0]
		q := QueryCharge{
			Target: child,
			Bind:   child.Schema().ColumnNames(),
			Keys:   f.Total(),
			Origin: originOf(op, ""),
		}
		return f, []QueryCharge{q}

	case *algebra.Union:
		out := Flow{}
		for _, ch := range op.Children {
			if f, ok := childFlows[ch.ID]; ok {
				out = addFlows(out, f)
			}
		}
		return out, nil

	case *algebra.Diff:
		out := Flow{}
		var queries []QueryCharge
		for i, ch := range op.Children {
			f, ok := childFlows[ch.ID]
			if !ok {
				continue
			}
			out = addFlows(out, f)
			_ = i
		}
		// Count probes on both inputs for every changed tuple.
		if ctx.noQueries {
			return out, nil
		}
		for _, ch := range op.Children {
			queries = append(queries, QueryCharge{
				Target: ch,
				Bind:   ch.Schema().ColumnNames(),
				Keys:   out.Total(),
				Origin: originOf(op, ""),
			})
		}
		return out, queries

	default:
		// Rel leaves never appear as chosen ops.
		return Flow{}, nil
	}
}

func addFlows(a, b Flow) Flow {
	return Flow{
		Mods: a.Mods + b.Mods, Ins: a.Ins + b.Ins, Dels: a.Dels + b.Dels,
		Keys:    a.Keys + b.Keys,
		ModCols: append(append([]string{}, a.ModCols...), b.ModCols...),
	}
}

// joinFlow handles delta propagation sizing and query generation for an
// equijoin: a delta on one side multiplies by the other side's fanout and
// poses a semijoin query on it; deltas on both sides pose queries both
// ways (the ΔL⋈R ∪ L⋈ΔR ∪ ΔL⋈ΔR decomposition).
func (c *Costing) joinFlow(ctx *costCtx, j *algebra.Join, op *dag.OpNode, childFlows map[int]Flow) (Flow, []QueryCharge) {
	l, r := op.Children[0], op.Children[1]
	fl, lOK := childFlows[l.ID]
	fr, rOK := childFlows[r.ID]
	var out Flow
	var queries []QueryCharge
	side := func(f Flow, mine, other *dag.EqNode, myCols, otherCols []string, label string) Flow {
		ost := c.Est.StatsOf(other)
		fanout := math.Max(1, ost.Card/distinctOfCols(ost, otherCols))
		if !ctx.noQueries {
			queries = append(queries, QueryCharge{
				Target: other,
				Bind:   otherCols,
				Keys:   f.Keys,
				Origin: originOf(op, label),
			})
		}
		g := Flow{Keys: f.Keys, ModCols: f.ModCols}
		if f.modsTouch(myCols) {
			// The modification moves tuples across join keys: pairings
			// break into deletes of old matches plus inserts of new.
			g.Ins = (f.Ins + f.Mods) * fanout
			g.Dels = (f.Dels + f.Mods) * fanout
			g.ModCols = nil
		} else {
			g.Mods = f.Mods * fanout
			g.Ins = f.Ins * fanout
			g.Dels = f.Dels * fanout
		}
		return g
	}
	switch {
	case lOK && rOK:
		a := side(fl, l, r, j.LeftCols(), j.RightCols(), "R")
		b := side(fr, r, l, j.RightCols(), j.LeftCols(), "L")
		out = addFlows(a, b)
	case lOK:
		out = side(fl, l, r, j.LeftCols(), j.RightCols(), "R")
	case rOK:
		out = side(fr, r, l, j.RightCols(), j.LeftCols(), "L")
	}
	if j.Residual != nil {
		out = out.scale(1.0 / 3)
	}
	return out, queries
}

// aggFlow handles grouping/aggregation: the delta touches one group per
// distinct source entity; the group recomputation query on the child is
// skipped when the parent is materialized with decomposable aggregates
// (the SumOfSals add/subtract trick) or when the delta covers whole
// groups (the key-based rule that makes the paper's Q3d free).
func (c *Costing) aggFlow(ctx *costCtx, a *algebra.Aggregate, e *dag.EqNode, op *dag.OpNode, childFlows map[int]Flow) (Flow, []QueryCharge) {
	child := op.Children[0]
	f := childFlows[child.ID]
	groups := math.Min(math.Max(f.Keys, 1), f.Total())
	if f.Empty() {
		groups = 0
	}
	out := Flow{Keys: groups}
	if f.modsTouch(a.GroupBy) || f.Ins+f.Dels > 0 && f.Mods == 0 {
		// Group membership may change: births and deaths possible.
		// Conservatively estimate modifications of existing groups when
		// the flow is modification-driven, else inserts+deletes.
		if f.Mods > 0 {
			out.Ins, out.Dels = groups, groups
		} else if f.Ins > 0 && f.Dels > 0 {
			out.Ins, out.Dels = groups/2, groups/2
		} else if f.Ins > 0 {
			out.Mods = groups // inserts into existing groups change them
		} else {
			out.Mods = groups
		}
	} else {
		out.Mods = groups
	}
	for _, ag := range a.Aggs {
		out.ModCols = append(out.ModCols, bareOf(ag.As))
	}
	if ctx.noQueries {
		return out, nil
	}

	needQuery := true
	if ctx.vs.Has(e) && decomposableFlow(a.Aggs, f) {
		needQuery = false
	}
	if needQuery && c.coversGroups(ctx, a, child) {
		needQuery = false
	}
	if !needQuery || groups == 0 {
		return out, nil
	}
	q := QueryCharge{
		Target: child,
		Bind:   a.GroupBy,
		Keys:   groups,
		Origin: originOf(op, ""),
	}
	return out, []QueryCharge{q}
}

// decomposableFlow mirrors delta.Decomposable on estimated flows.
func decomposableFlow(specs []algebra.AggSpec, f Flow) bool {
	insertOnly := f.Mods == 0 && f.Dels == 0
	for _, s := range specs {
		switch s.Func {
		case algebra.Sum, algebra.Count:
		case algebra.Min, algebra.Max:
			if !insertOnly {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// coversGroups resolves the track context and delegates to CoversGroups.
func (c *Costing) coversGroups(ctx *costCtx, a *algebra.Aggregate, child *dag.EqNode) bool {
	childOp := ctx.trackChoice[child.ID]
	deltaSide := -1
	if childOp != nil {
		for i, ch := range childOp.Children {
			if _, ok := ctx.trackFlows[ch.ID]; ok {
				if deltaSide >= 0 {
					deltaSide = -2 // both sides changed: not covered
					break
				}
				deltaSide = i
			}
		}
	}
	return CoversGroups(c.D, a, child, childOp, deltaSide)
}

// CoversGroups implements the static form of the paper's key-based query
// elimination ("Since DName is a key for the Dept relation, the result
// propagated up along E5 and N4 contains all the tuples in the group.
// Thus no I/O is generated for Q3d"): the delta arriving at the aggregate
// covers every affected group entirely, so the old group contents come
// from the delta itself and no query on the child is needed.
//
// childOp is the operation node the child's delta was computed through
// (nil when the child is a leaf); deltaSide is the index of childOp's
// input the delta arrived from (negative when unknown or both). The same
// predicate drives both cost estimation and the runtime engine.
func CoversGroups(d *dag.DAG, a *algebra.Aggregate, child *dag.EqNode, childOp *dag.OpNode, deltaSide int) bool {
	// Case 1: the group-by columns contain a key of the child — every
	// group is a single tuple, trivially covered.
	if d.KeyedOn(child, a.GroupBy) {
		return true
	}
	// Case 2: the child delta came through a join whose delta side is
	// keyed on its join columns, and the grouping determines the join
	// key.
	if childOp == nil || deltaSide < 0 {
		return false
	}
	join, ok := childOp.Template.(*algebra.Join)
	if !ok {
		return false
	}
	deltaChild := childOp.Children[deltaSide]
	var sideCols []string
	if deltaSide == 0 {
		sideCols = join.LeftCols()
	} else {
		sideCols = join.RightCols()
	}
	if !d.KeyedOn(deltaChild, sideCols) {
		return false
	}
	uf := algebra.NewColEquiv()
	uf.Collect(d.RepTree(child))
	for _, jc := range sideCols {
		if !uf.SameAsAny(jc, a.GroupBy) {
			return false
		}
	}
	return true
}

func originOf(op *dag.OpNode, side string) string {
	if side == "" {
		return op.String()
	}
	return op.String() + "." + side
}
