package tracks_test

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// fixture bundles the expanded ProblemDept DAG over the paper's full-size
// instance with handles to the nodes of Figure 2: n3 is the SumOfSals
// aggregate (the paper's N3), n4 the Emp⋈Dept join (the paper's N4).
type fixture struct {
	db      *corpus.Database
	d       *dag.DAG
	cost    *tracks.Costing
	n3, n4  *dag.EqNode
	emp     *dag.EqNode
	dept    *dag.EqNode
	empT    *txn.Type
	deptT   *txn.Type
	empty   tracks.ViewSet
	setN3   tracks.ViewSet
	setN4   tracks.ViewSet
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := corpus.NewDatabase(corpus.PaperConfig())
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		t.Fatal(err)
	}
	f := &fixture{db: db, d: d, cost: tracks.NewCosting(d, cost.PageIO{})}
	f.n3 = d.FindEq(db.SumOfSals())
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	f.n4 = d.FindEq(join)
	if f.n3 == nil || f.n4 == nil {
		t.Fatalf("missing paper nodes in DAG:\n%s", d.Render())
	}
	for _, e := range d.Eqs() {
		switch e.BaseRel {
		case "Emp":
			f.emp = e
		case "Dept":
			f.dept = e
		}
	}
	types := txn.PaperTypes()
	f.empT, f.deptT = types[0], types[1]
	f.empty = tracks.NewViewSet(d.Root)
	f.setN3 = tracks.NewViewSet(d.Root, f.n3)
	f.setN4 = tracks.NewViewSet(d.Root, f.n4)
	return f
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// TestTable1QueryCosts reproduces the first cost table of Section 3.6:
// the page-I/O cost of each query of Example 3.2 under each view set.
func TestTable1QueryCosts(t *testing.T) {
	f := newFixture(t)
	one := 1.0
	cases := []struct {
		name   string
		target *dag.EqNode
		bind   []string
		want   map[string]float64 // view set key -> cost
	}{
		{"Q2Ld", f.n3, []string{"Emp.DName"},
			map[string]float64{"empty": 11, "N3": 2, "N4": 11}},
		{"Q2Re", f.dept, []string{"Dept.DName"},
			map[string]float64{"empty": 2, "N3": 2, "N4": 2}},
		{"Q3e", f.n4, []string{"Dept.DName", "Dept.Budget"},
			map[string]float64{"empty": 13, "N3": 13, "N4": 11}},
		{"Q4e", f.emp, []string{"Emp.DName"},
			map[string]float64{"empty": 11, "N3": 11, "N4": 11}},
		{"Q5Ld", f.emp, []string{"Emp.DName"},
			map[string]float64{"empty": 11, "N3": 11, "N4": 11}},
		{"Q5Re", f.dept, []string{"Dept.DName"},
			map[string]float64{"empty": 2, "N3": 2, "N4": 2}},
	}
	sets := map[string]tracks.ViewSet{"empty": f.empty, "N3": f.setN3, "N4": f.setN4}
	for _, c := range cases {
		for name, vs := range sets {
			got := f.cost.QueryCost(c.target, c.bind, one, vs)
			if !approx(got, c.want[name]) {
				t.Errorf("%s under %s = %g, want %g", c.name, name, got, c.want[name])
			}
		}
	}
}

// TestTable2MaintenanceCosts reproduces the second table: the cost of
// physically maintaining N3 and N4 under each transaction type (N3 under
// >Emp costs 3; N4 costs 3 under >Emp and 21 under >Dept; N3 under >Dept
// costs nothing because N3 does not depend on Dept).
func TestTable2MaintenanceCosts(t *testing.T) {
	f := newFixture(t)
	get := func(vs tracks.ViewSet, ty *txn.Type) float64 {
		best, _ := f.cost.CostViewSet(vs, ty)
		return best.UpdateCost
	}
	if got := get(f.setN3, f.empT); !approx(got, 3) {
		t.Errorf("maintain N3 under >Emp = %g, want 3", got)
	}
	if got := get(f.setN3, f.deptT); !approx(got, 0) {
		t.Errorf("maintain N3 under >Dept = %g, want 0", got)
	}
	if got := get(f.setN4, f.empT); !approx(got, 3) {
		t.Errorf("maintain N4 under >Emp = %g, want 3", got)
	}
	if got := get(f.setN4, f.deptT); !approx(got, 21) {
		t.Errorf("maintain N4 under >Dept = %g, want 21", got)
	}
}

// trackVia classifies a track by which operation computes the class below
// the root select: the paper's E3 path (aggregate over the join) or E2
// path (join of SumOfSals with Dept, reached through the realignment
// projection).
func trackVia(f *fixture, tc tracks.TrackCost) string {
	rootOp := f.d.Root.Ops[0]
	below := rootOp.Children[0]
	op := tc.Track.Choice[below.ID]
	if op == nil {
		return "?"
	}
	switch op.Template.(type) {
	case *algebra.Aggregate:
		return "E3"
	case *algebra.Project:
		return "E2"
	default:
		return "?"
	}
}

// TestTable3TrackQueryCosts reproduces the third table: total query cost
// along each update track. The E2 path is the paper's
// N1,E1,N2,E2,N3,E4,N5(6) tracks; the E3 path is N1,E1,N2,E3,N4,E5,N5(6).
// Q3d costs nothing on the E3 path under >Dept (key-based elimination).
func TestTable3TrackQueryCosts(t *testing.T) {
	f := newFixture(t)
	want := map[string]map[string]map[string]float64{
		">Emp": {
			"E2": {"empty": 13, "N3": 2, "N4": 13},
			"E3": {"empty": 15, "N3": 15, "N4": 13},
		},
		">Dept": {
			"E2": {"empty": 11, "N3": 2, "N4": 22},
			"E3": {"empty": 11, "N3": 11, "N4": 11},
		},
	}
	// Note the E2/>Dept/{N4} cell: a track must contain every marked node
	// (Definition 3.2), so under {N4} the E2 path additionally carries
	// N4's delta computation (Q5Ld, 11 I/Os) on top of Q2Ld (11 under
	// {N4}). The paper's table lists per-path query costs without that
	// obligation; the combined minimum (32 via the E3 track) agrees.
	sets := map[string]tracks.ViewSet{"empty": f.empty, "N3": f.setN3, "N4": f.setN4}
	for _, ty := range []*txn.Type{f.empT, f.deptT} {
		for setName, vs := range sets {
			_, all := f.cost.CostViewSet(vs, ty)
			if len(all) != 2 {
				t.Fatalf("%s under %s: %d tracks, want 2", ty.Name, setName, len(all))
			}
			for _, tc := range all {
				via := trackVia(f, tc)
				wantCost, ok := want[ty.Name][via][setName]
				if !ok {
					t.Fatalf("unclassified track %q for %s", via, ty.Name)
				}
				if !approx(tc.QueryCost, wantCost) {
					t.Errorf("%s track %s under %s: query cost = %g, want %g\n%s",
						ty.Name, via, setName, tc.QueryCost, wantCost,
						tracks.FormatQueries(tc.Queries))
				}
			}
		}
	}
}

// TestTable4CombinedCosts reproduces the fourth table and the paper's
// headline: per-transaction minimum total costs are 13/11 (no additional
// views), 5/2 (materialize N3 = SumOfSals), 16/32 (materialize N4); with
// equal weights the averages are 12, 3.5 and 24 page I/Os — a reduction
// "to about 30% of the cost" for strategy {N3}, and {N4} is always worse
// than doing nothing.
func TestTable4CombinedCosts(t *testing.T) {
	f := newFixture(t)
	type row struct{ emp, dept float64 }
	want := map[string]row{
		"empty": {13, 11},
		"N3":    {5, 2},
		"N4":    {16, 32},
	}
	sets := map[string]tracks.ViewSet{"empty": f.empty, "N3": f.setN3, "N4": f.setN4}
	for name, vs := range sets {
		bestE, _ := f.cost.CostViewSet(vs, f.empT)
		bestD, _ := f.cost.CostViewSet(vs, f.deptT)
		if !approx(bestE.Total(), want[name].emp) {
			t.Errorf("%s >Emp total = %g, want %g\nqueries:\n%s",
				name, bestE.Total(), want[name].emp, tracks.FormatQueries(bestE.Queries))
		}
		if !approx(bestD.Total(), want[name].dept) {
			t.Errorf("%s >Dept total = %g, want %g\nqueries:\n%s",
				name, bestD.Total(), want[name].dept, tracks.FormatQueries(bestD.Queries))
		}
	}
	// Weighted averages with equal weights.
	types := []*txn.Type{f.empT, f.deptT}
	wEmpty, _ := f.cost.WeightedCost(f.empty, types)
	wN3, _ := f.cost.WeightedCost(f.setN3, types)
	wN4, _ := f.cost.WeightedCost(f.setN4, types)
	if !approx(wEmpty, 12) || !approx(wN3, 3.5) || !approx(wN4, 24) {
		t.Errorf("weighted averages = %g/%g/%g, want 12/3.5/24", wEmpty, wN3, wN4)
	}
	if ratio := wN3 / wEmpty; math.Abs(ratio-0.29166666) > 0.01 {
		t.Errorf("headline ratio = %g, want ≈0.29 (\"about 30%%\")", ratio)
	}
}

// TestN4AlwaysWorse checks the paper's observation that a wrong choice of
// additional views ({N4}) is worse than materializing nothing, for any
// weighting of the two transaction types.
func TestN4AlwaysWorse(t *testing.T) {
	f := newFixture(t)
	for _, wEmp := range []float64{0.01, 0.5, 1, 2, 100} {
		types := []*txn.Type{
			{Name: ">Emp", Weight: wEmp, Updates: f.empT.Updates},
			{Name: ">Dept", Weight: 1, Updates: f.deptT.Updates},
		}
		we, _ := f.cost.WeightedCost(f.empty, types)
		w4, _ := f.cost.WeightedCost(f.setN4, types)
		w3, _ := f.cost.WeightedCost(f.setN3, types)
		if w4 <= we {
			t.Errorf("weight %g: {N4} (%g) should be worse than empty (%g)", wEmp, w4, we)
		}
		if w3 >= we {
			t.Errorf("weight %g: {N3} (%g) should beat empty (%g)", wEmp, w3, we)
		}
	}
}

// TestTrackEnumerationCounts: the ProblemDept DAG has exactly two update
// tracks per transaction type ("There are four paths we need to
// consider" — two per updated relation).
func TestTrackEnumerationCounts(t *testing.T) {
	f := newFixture(t)
	for _, ty := range []*txn.Type{f.empT, f.deptT} {
		trs := tracks.Enumerate(f.d, f.empty, ty.UpdatedRels())
		if len(trs) != 2 {
			t.Errorf("%s: %d tracks, want 2", ty.Name, len(trs))
			for _, tr := range trs {
				t.Logf("track: %s", tr)
			}
		}
	}
}

// TestUnaffectedTransactionIsFree: a transaction on a relation outside
// the view costs nothing.
func TestUnaffectedTransactionIsFree(t *testing.T) {
	f := newFixture(t)
	adepts := &txn.Type{
		Name: ">ADepts", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "ADepts", Kind: txn.Insert, Size: 1}},
	}
	best, all := f.cost.CostViewSet(f.setN3, adepts)
	if len(all) != 1 || best.Total() != 0 {
		t.Errorf("unaffected txn: %d tracks, total %g; want 1 empty track, 0", len(all), best.Total())
	}
}

// TestMQOMergesSharedQueries: under {N4} and >Emp, the E2-path track also
// maintains N4; the Dept probes from the two paths are identical and must
// be charged once.
func TestMQOMergesSharedQueries(t *testing.T) {
	f := newFixture(t)
	_, all := f.cost.CostViewSet(f.setN4, f.empT)
	for _, tc := range all {
		if trackVia(f, tc) != "E2" {
			continue
		}
		deptQueries := 0
		for _, q := range tc.Queries {
			if q.Target.BaseRel == "Dept" {
				deptQueries++
			}
		}
		if deptQueries != 1 {
			t.Errorf("E2 track under {N4}: %d Dept queries after MQO, want 1\n%s",
				deptQueries, tracks.FormatQueries(tc.Queries))
		}
		if !approx(tc.QueryCost, 13) {
			t.Errorf("E2 track query cost under {N4} = %g, want 13 (Q4e 11 + shared Dept probe 2)", tc.QueryCost)
		}
	}
}

// TestUniformModelStillPicksN3: the optimizer machinery is model-generic;
// under the Uniform model the relative ordering of the three paper view
// sets must still favor {N3} for the paper workload.
func TestUniformModelStillPicksN3(t *testing.T) {
	f := newFixture(t)
	c := tracks.NewCosting(f.d, cost.Uniform{})
	types := []*txn.Type{f.empT, f.deptT}
	we, _ := c.WeightedCost(f.empty, types)
	w3, _ := c.WeightedCost(f.setN3, types)
	if w3 >= we {
		t.Errorf("uniform model: {N3} (%g) should still beat empty (%g)", w3, we)
	}
}

// TestViewIndexCols: the single-index policy mirrors the paper's "single
// index on DName".
func TestViewIndexCols(t *testing.T) {
	f := newFixture(t)
	if got := f.cost.ViewIndexCols(f.n3); len(got) != 1 || got[0] != "DName" {
		t.Errorf("index cols of N3 = %v, want [DName]", got)
	}
	if got := f.cost.ViewIndexCols(f.n4); len(got) != 1 || got[0] != "DName" {
		t.Errorf("index cols of N4 = %v, want [DName]", got)
	}
}

// TestStatsEstimation sanity-checks derived statistics on the paper
// instance: the join has 10000 rows, the SumOfSals aggregate 1000 groups.
func TestStatsEstimation(t *testing.T) {
	f := newFixture(t)
	est := tracks.NewEstimator(f.d)
	if st := est.StatsOf(f.n4); !approx(st.Card, 10000) {
		t.Errorf("card(N4) = %g, want 10000", st.Card)
	}
	if st := est.StatsOf(f.n3); !approx(st.Card, 1000) {
		t.Errorf("card(N3) = %g, want 1000", st.Card)
	}
}
