// Package tracks implements the machinery of the paper's Section 3.3–3.4:
// enumeration of subdags and update tracks (Definitions 3.2/3.3), the
// queries posed along a track (Example 3.2), and the estimation of query
// and update costs for a view set under a transaction type, under any
// monotonic cost model.
//
// The same query-requirement logic (QueriesForTrack) drives both the cost
// estimator here and the runtime maintenance engine, so estimated and
// measured page I/O cannot drift apart structurally.
package tracks

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/dag"
	"repro/internal/expr"
)

// Estimator derives statistics for equivalence nodes from base-relation
// statistics, memoized per node.
type Estimator struct {
	D    *dag.DAG
	memo map[int]catalog.Stats
}

// NewEstimator returns an estimator over the DAG.
func NewEstimator(d *dag.DAG) *Estimator {
	return &Estimator{D: d, memo: map[int]catalog.Stats{}}
}

// StatsOf estimates the cardinality and per-column distinct counts of an
// equivalence node's result. Distinct maps hold both qualified and bare
// column names.
func (e *Estimator) StatsOf(n *dag.EqNode) catalog.Stats {
	if st, ok := e.memo[n.ID]; ok {
		return st
	}
	st := e.statsOfTree(e.D.RepTree(n))
	e.memo[n.ID] = st
	return st
}

func (e *Estimator) statsOfTree(n algebra.Node) catalog.Stats {
	switch t := n.(type) {
	case dag.Ref:
		return e.StatsOf(t.Eq)
	case *algebra.Rel:
		base := t.Def.Stats
		out := catalog.Stats{Card: base.Card, Distinct: map[string]float64{}}
		for _, c := range t.Def.Schema.Cols {
			d := base.DistinctOf(c.Name)
			out.Distinct[c.Name] = d
			out.Distinct[c.QName()] = d
		}
		return out
	case *algebra.Select:
		in := e.statsOfTree(t.Input)
		sel := Selectivity(t.Pred, in)
		out := scaleStats(in, sel)
		return out
	case *algebra.Project:
		in := e.statsOfTree(t.Input)
		out := catalog.Stats{Card: in.Card, Distinct: map[string]float64{}}
		for _, it := range t.Items {
			name := it.As
			if c, ok := it.E.(expr.Col); ok {
				d := distinctOf(in, c.Name)
				if name == "" {
					name = c.Name
				}
				out.Distinct[name] = d
				out.Distinct[bareOf(name)] = d
				if name != c.Name {
					out.Distinct[c.Name] = d
				}
				continue
			}
			if name != "" {
				out.Distinct[name] = math.Min(in.Card, math.Max(1, in.Card/3))
			}
		}
		return out
	case *algebra.Join:
		l := e.statsOfTree(t.L)
		r := e.statsOfTree(t.R)
		dl := distinctOfCols(l, t.LeftCols())
		dr := distinctOfCols(r, t.RightCols())
		denom := math.Max(dl, dr)
		card := l.Card * r.Card
		if denom > 0 {
			card = l.Card * r.Card / denom
		}
		out := catalog.Stats{Card: card, Distinct: map[string]float64{}}
		for k, v := range l.Distinct {
			out.Distinct[k] = math.Min(v, card)
		}
		for k, v := range r.Distinct {
			if _, dup := out.Distinct[k]; dup {
				// Bare-name collision across sides: drop the bare key,
				// qualified keys remain authoritative.
				delete(out.Distinct, k)
			}
			out.Distinct[k] = math.Min(v, card)
		}
		return out
	case *algebra.Aggregate:
		in := e.statsOfTree(t.Input)
		card := math.Min(in.Card, distinctOfCols(in, t.GroupBy))
		out := catalog.Stats{Card: card, Distinct: map[string]float64{}}
		for _, g := range t.GroupBy {
			d := math.Min(distinctOf(in, g), card)
			out.Distinct[g] = d
			out.Distinct[bareOf(g)] = d
		}
		for _, a := range t.Aggs {
			out.Distinct[a.As] = card
		}
		return out
	case *algebra.Distinct:
		in := e.statsOfTree(t.Input)
		return in // distinct cardinalities dominate; Card is an upper bound
	case *algebra.Union:
		l := e.statsOfTree(t.L)
		r := e.statsOfTree(t.R)
		out := catalog.Stats{Card: l.Card + r.Card, Distinct: map[string]float64{}}
		for k, v := range l.Distinct {
			out.Distinct[k] = v
		}
		for k, v := range r.Distinct {
			out.Distinct[k] = math.Max(out.Distinct[k], v)
		}
		return out
	case *algebra.Diff:
		return e.statsOfTree(t.L)
	default:
		return catalog.Stats{Card: 1}
	}
}

func scaleStats(in catalog.Stats, sel float64) catalog.Stats {
	out := catalog.Stats{Card: in.Card * sel, Distinct: map[string]float64{}}
	for k, v := range in.Distinct {
		out.Distinct[k] = math.Max(1, math.Min(v, out.Card))
	}
	return out
}

func bareOf(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// distinctOf looks up a column's distinct count, trying the exact name
// then the bare name, defaulting to Card.
func distinctOf(st catalog.Stats, col string) float64 {
	if st.Distinct != nil {
		if d, ok := st.Distinct[col]; ok && d > 0 {
			return d
		}
		if d, ok := st.Distinct[bareOf(col)]; ok && d > 0 {
			return d
		}
	}
	if st.Card < 1 {
		return 1
	}
	return st.Card
}

// distinctOfCols estimates the distinct count of a column combination as
// the capped product of the individual counts.
func distinctOfCols(st catalog.Stats, cols []string) float64 {
	if len(cols) == 0 {
		return 1
	}
	d := 1.0
	for _, c := range cols {
		d *= distinctOf(st, c)
		if d > st.Card && st.Card >= 1 {
			return st.Card
		}
	}
	return math.Max(1, d)
}

// Selectivity estimates the fraction of tuples satisfying a predicate:
// equality with a constant is 1/distinct, column=column equality is
// 1/max(distinct), anything else defaults to 1/3 per conjunct.
func Selectivity(p expr.Expr, st catalog.Stats) float64 {
	sel := 1.0
	for _, c := range expr.Conjuncts(p) {
		sel *= conjunctSelectivity(c, st)
	}
	return sel
}

func conjunctSelectivity(c expr.Expr, st catalog.Stats) float64 {
	cmp, ok := c.(expr.Cmp)
	if !ok {
		return 1.0 / 3
	}
	lc, lok := cmp.L.(expr.Col)
	rc, rok := cmp.R.(expr.Col)
	if cmp.Op == expr.EQ {
		switch {
		case lok && rok:
			return 1 / math.Max(1, math.Max(distinctOf(st, lc.Name), distinctOf(st, rc.Name)))
		case lok:
			return 1 / math.Max(1, distinctOf(st, lc.Name))
		case rok:
			return 1 / math.Max(1, distinctOf(st, rc.Name))
		}
	}
	return 1.0 / 3
}
