package tracks

import (
	"fmt"
	"hash/maphash"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/txn"
)

// Registry mirrors of the cost-cache traffic. The aggregate counters
// split the two cache layers (SetCost entries vs track bundles), which
// CacheStats folds together; the per-shard counters expose the SetCost
// cache's shard balance, the knob that decides whether the parallel
// search serializes on shard mutexes.
var (
	obsSetCostHits   = obs.C("tracks.setcost.hits")
	obsSetCostMisses = obs.C("tracks.setcost.misses")
	obsBundleHits    = obs.C("tracks.bundle.hits")
	obsBundleMisses  = obs.C("tracks.bundle.misses")

	obsShardHits   [cacheShards]*obs.Counter
	obsShardMisses [cacheShards]*obs.Counter
)

func init() {
	for i := range obsShardHits {
		obsShardHits[i] = obs.C(fmt.Sprintf("tracks.setcost.shard%02d.hits", i))
		obsShardMisses[i] = obs.C(fmt.Sprintf("tracks.setcost.shard%02d.misses", i))
	}
}

// SetCost is the cached pricing of one (view set, transaction type) pair:
// the best update track by total cost, plus the cheapest update-only cost
// over all tracks. The latter is the branch-and-bound lower bound: delta
// flows do not depend on the view set, so for any superset V' ⊇ V every
// V'-track restricts to a V-track whose update charges at V's marked
// nodes are identical, making min-over-tracks update cost a monotone
// lower bound on C(V', t).
type SetCost struct {
	Best TrackCost
	// MinUpdate is the minimum update-only cost over all enumerated
	// tracks (0 when the transaction affects no marked node).
	MinUpdate float64
	// Truncated records that track enumeration hit MaxTracks or the
	// assignment budget; MinUpdate is then unsound as a lower bound and
	// callers must not prune with it.
	Truncated bool
	// Tracks is the number of tracks enumerated.
	Tracks int
}

// cacheShards is the fixed shard count of the cost cache. Power of two so
// the shard index is a mask.
const cacheShards = 64

type costShard struct {
	mu sync.Mutex
	m  map[string]SetCost
}

// costCache is a sharded, append-only memo of SetCost entries keyed by
// (canonical view-set key, transaction-type name). It is safe for
// concurrent use: entries are immutable once stored, and a racing
// recompute stores an identical value (all inputs are deterministic).
type costCache struct {
	seed   maphash.Seed
	shards [cacheShards]costShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newCostCache() *costCache {
	c := &costCache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]SetCost)
	}
	return c
}

func (c *costCache) shardIndex(key string) int {
	return int(maphash.String(c.seed, key) & (cacheShards - 1))
}

func (c *costCache) get(key string) (SetCost, bool) {
	i := c.shardIndex(key)
	s := &c.shards[i]
	s.mu.Lock()
	sc, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		obsSetCostHits.Inc()
		obsShardHits[i].Inc()
	} else {
		c.misses.Add(1)
		obsSetCostMisses.Inc()
		obsShardMisses[i].Inc()
	}
	return sc, ok
}

func (c *costCache) put(key string, sc SetCost) {
	s := &c.shards[c.shardIndex(key)]
	s.mu.Lock()
	s.m[key] = sc
	s.mu.Unlock()
}

// cacheKey builds the canonical (view set, transaction type) cache key
// without fmt overhead: sorted member IDs, then the type name.
func cacheKey(vs ViewSet, t *txn.Type) string {
	ids := vs.IDs()
	b := make([]byte, 0, len(ids)*4+len(t.Name)+1)
	for _, id := range ids {
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, ',')
	}
	b = append(b, '|')
	b = append(b, t.Name...)
	return string(b)
}

// CacheStats reports the shared cost cache's hit/miss counters since the
// Costing was built.
func (c *Costing) CacheStats() (hits, misses uint64) {
	return c.cache.hits.Load(), c.cache.misses.Load()
}

// BestCost prices a view set for one transaction type through the shared
// cache: the cheapest track (the paper's C(V, T_i)) plus the update-only
// lower bound used by the parallel branch-and-bound search. Identical
// (set, type) pairs are priced once across the whole search.
func (c *Costing) BestCost(vs ViewSet, t *txn.Type) SetCost {
	return c.bestCost(newCostCtx(vs), t)
}

func (c *Costing) bestCost(ctx *costCtx, t *txn.Type) SetCost {
	key := cacheKey(ctx.vs, t)
	if sc, ok := c.cache.get(key); ok {
		return sc
	}
	best, _, minUpd, trunc, n := c.costViewSet(ctx, t, false)
	sc := SetCost{Best: best, MinUpdate: minUpd, Truncated: trunc, Tracks: n}
	c.cache.put(key, sc)
	return sc
}

// WeightedUpdateLB is the weighted update-only lower bound for a partial
// view set: any superset costs at least this much per transaction, so the
// branch-and-bound search can prune a subtree whose bound exceeds the
// incumbent. Transaction types whose track enumeration truncated
// contribute zero (the bound degrades, never lies).
func (c *Costing) WeightedUpdateLB(vs ViewSet, types []*txn.Type) float64 {
	var num, den float64
	for _, t := range types {
		b := c.bundleFor(vs, t)
		den += t.Weight
		if !b.truncated {
			num += b.minUpdate(c, vs) * t.Weight
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
