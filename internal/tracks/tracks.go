package tracks

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dag"
)

// ViewSet is the set of materialized equivalence nodes (by ID). It always
// contains the root; base-relation leaves are implicitly materialized.
type ViewSet map[int]bool

// RootSet returns the view set containing exactly the DAG's roots (every
// top-level view is always materialized).
func RootSet(d *dag.DAG) ViewSet {
	vs := ViewSet{}
	for _, r := range d.Roots {
		vs[r.ID] = true
	}
	return vs
}

// NewViewSet builds a view set from nodes.
func NewViewSet(nodes ...*dag.EqNode) ViewSet {
	vs := ViewSet{}
	for _, n := range nodes {
		vs[n.ID] = true
	}
	return vs
}

// Has reports whether the node is materialized.
func (vs ViewSet) Has(e *dag.EqNode) bool { return e.IsLeaf() || vs[e.ID] }

// Clone copies the set.
func (vs ViewSet) Clone() ViewSet {
	out := make(ViewSet, len(vs))
	for k, v := range vs {
		out[k] = v
	}
	return out
}

// IDs returns the sorted member IDs.
func (vs ViewSet) IDs() []int {
	out := make([]int, 0, len(vs))
	for id, ok := range vs {
		if ok {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Key is a canonical string form for map keys and reports.
func (vs ViewSet) Key() string {
	ids := vs.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("N%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Track is one minimal way of propagating a transaction type's updates up
// the DAG to every affected marked node (Definition 3.3): a choice of one
// operation node per affected equivalence node on the propagation paths.
type Track struct {
	// Choice maps an affected equivalence node ID to the operation node
	// used to compute its delta.
	Choice map[int]*dag.OpNode
	// Order lists the affected equivalence nodes bottom-up (children
	// before parents), leaves excluded.
	Order []*dag.EqNode
	// Leaves are the updated base-relation nodes feeding the track.
	Leaves []*dag.EqNode
}

// Key is a canonical signature of the track (for deduplication and
// reports): the chosen op IDs in node order.
func (t *Track) Key() string {
	ids := make([]int, 0, len(t.Choice))
	for id := range t.Choice {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("N%d:E%d", id, t.Choice[id].ID)
	}
	return strings.Join(parts, " ")
}

// String renders the track as the paper does (e.g. "N1,E1,N2,E2,N3,E4,N5"
// style path lists), here as the bottom-up node/op chain.
func (t *Track) String() string {
	var parts []string
	for _, e := range t.Order {
		parts = append(parts, fmt.Sprintf("%s←E%d", e, t.Choice[e.ID].ID))
	}
	return strings.Join(parts, " ")
}

// MaxTracks bounds track enumeration per (view set, transaction type).
// Rich DAGs (every parenthesization of a long join chain) can represent
// combinatorially many tracks; beyond this bound the enumeration returns
// the first MaxTracks found, making the search over tracks heuristic in
// exactly the spirit of the paper's Section 5 approximate costing. The
// paper's own examples have 1–4 tracks.
const MaxTracks = 1024

// maxAssignments bounds the choice-assignment DFS inside Enumerate:
// dense memos map exponentially many assignments onto few distinct
// tracks, so the walk itself needs a budget independent of MaxTracks.
const maxAssignments = 20000

// Enumerate lists every update track that propagates updates of the given
// base relations to all affected marked nodes (up to MaxTracks). Marked
// nodes unaffected by the update need no propagation and do not constrain
// the track. When no marked node is affected the single empty track is
// returned.
func Enumerate(d *dag.DAG, vs ViewSet, updated []string) []*Track {
	var roots []*dag.EqNode
	for _, e := range d.NonLeafEqs() {
		if vs[e.ID] && d.Affected(e, updated) {
			roots = append(roots, e)
		}
	}
	if len(roots) == 0 {
		return []*Track{{Choice: map[int]*dag.OpNode{}}}
	}
	var out []*Track
	seen := map[string]bool{}
	budget := maxAssignments

	choice := map[int]*dag.OpNode{}
	var assign func(pending []*dag.EqNode)
	assign = func(pending []*dag.EqNode) {
		if len(out) >= MaxTracks || budget <= 0 {
			return
		}
		budget--
		// Find the first pending node needing a choice.
		for len(pending) > 0 {
			e := pending[0]
			pending = pending[1:]
			if e.IsLeaf() || choice[e.ID] != nil || !d.Affected(e, updated) {
				continue
			}
			// Candidate ops: those with at least one affected child.
			for _, op := range e.Ops {
				ok := false
				for _, c := range op.Children {
					if d.Affected(c, updated) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
				// Guard against choice cycles: an op whose affected child
				// subtree leads back to e is skipped (can arise from
				// identity-ish rewrites).
				if leadsBack(d, op, e, choice, updated) {
					continue
				}
				choice[e.ID] = op
				next := append([]*dag.EqNode{}, pending...)
				for _, c := range op.Children {
					if d.Affected(c, updated) {
						next = append(next, c)
					}
				}
				assign(next)
				delete(choice, e.ID)
			}
			return
		}
		// All choices made: snapshot the track.
		tr := buildTrack(d, roots, choice, updated)
		if !seen[tr.Key()] {
			seen[tr.Key()] = true
			out = append(out, tr)
		}
	}
	assign(append([]*dag.EqNode{}, roots...))
	return out
}

// leadsBack reports whether selecting op for target would recurse into
// target again through affected, not-yet-chosen nodes.
func leadsBack(d *dag.DAG, op *dag.OpNode, target *dag.EqNode, choice map[int]*dag.OpNode, updated []string) bool {
	visited := map[int]bool{}
	var walk func(e *dag.EqNode) bool
	walk = func(e *dag.EqNode) bool {
		if e == target {
			return true
		}
		if visited[e.ID] || e.IsLeaf() || !d.Affected(e, updated) {
			return false
		}
		visited[e.ID] = true
		if chosen := choice[e.ID]; chosen != nil {
			for _, c := range chosen.Children {
				if walk(c) {
					return true
				}
			}
			return false
		}
		// Not chosen yet: any op could be picked later; conservative
		// check across all ops.
		for _, o := range e.Ops {
			for _, c := range o.Children {
				if walk(c) {
					return true
				}
			}
		}
		return false
	}
	for _, c := range op.Children {
		if walk(c) {
			return true
		}
	}
	return false
}

// buildTrack assembles the reachable choice closure bottom-up.
func buildTrack(d *dag.DAG, roots []*dag.EqNode, choice map[int]*dag.OpNode, updated []string) *Track {
	tr := &Track{Choice: map[int]*dag.OpNode{}}
	visited := map[int]bool{}
	var leaves []*dag.EqNode
	var walk func(e *dag.EqNode)
	walk = func(e *dag.EqNode) {
		if visited[e.ID] {
			return
		}
		visited[e.ID] = true
		if e.IsLeaf() {
			leaves = append(leaves, e)
			return
		}
		op := choice[e.ID]
		if op == nil {
			return
		}
		tr.Choice[e.ID] = op
		for _, c := range op.Children {
			if d.Affected(c, updated) {
				walk(c)
			}
		}
		tr.Order = append(tr.Order, e) // post-order: children first
	}
	for _, r := range roots {
		walk(r)
	}
	tr.Leaves = leaves
	return tr
}
