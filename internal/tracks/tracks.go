package tracks

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dag"
)

// ViewSet is the set of materialized equivalence nodes (by ID). It always
// contains the root; base-relation leaves are implicitly materialized.
type ViewSet map[int]bool

// RootSet returns the view set containing exactly the DAG's roots (every
// top-level view is always materialized).
func RootSet(d *dag.DAG) ViewSet {
	vs := ViewSet{}
	for _, r := range d.Roots {
		vs[r.ID] = true
	}
	return vs
}

// NewViewSet builds a view set from nodes.
func NewViewSet(nodes ...*dag.EqNode) ViewSet {
	vs := ViewSet{}
	for _, n := range nodes {
		vs[n.ID] = true
	}
	return vs
}

// Has reports whether the node is materialized.
func (vs ViewSet) Has(e *dag.EqNode) bool { return e.IsLeaf() || vs[e.ID] }

// Clone copies the set.
func (vs ViewSet) Clone() ViewSet {
	out := make(ViewSet, len(vs))
	for k, v := range vs {
		out[k] = v
	}
	return out
}

// IDs returns the sorted member IDs.
func (vs ViewSet) IDs() []int {
	out := make([]int, 0, len(vs))
	for id, ok := range vs {
		if ok {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Key is a canonical string form for map keys and reports.
func (vs ViewSet) Key() string {
	ids := vs.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("N%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Track is one minimal way of propagating a transaction type's updates up
// the DAG to every affected marked node (Definition 3.3): a choice of one
// operation node per affected equivalence node on the propagation paths.
type Track struct {
	// Choice maps an affected equivalence node ID to the operation node
	// used to compute its delta.
	Choice map[int]*dag.OpNode
	// Order lists the affected equivalence nodes bottom-up (children
	// before parents), leaves excluded.
	Order []*dag.EqNode
	// Leaves are the updated base-relation nodes feeding the track.
	Leaves []*dag.EqNode
}

// Key is a canonical signature of the track (for deduplication and
// reports): the chosen op IDs in node order. Built without fmt — it runs
// once per enumerated assignment, inside the search's hottest loop.
func (t *Track) Key() string {
	ids := make([]int, 0, len(t.Choice))
	for id := range t.Choice {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b := make([]byte, 0, len(ids)*8)
	for i, id := range ids {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, 'N')
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, ':', 'E')
		b = strconv.AppendInt(b, int64(t.Choice[id].ID), 10)
	}
	return string(b)
}

// String renders the track as the paper does (e.g. "N1,E1,N2,E2,N3,E4,N5"
// style path lists), here as the bottom-up node/op chain.
func (t *Track) String() string {
	var parts []string
	for _, e := range t.Order {
		parts = append(parts, fmt.Sprintf("%s←E%d", e, t.Choice[e.ID].ID))
	}
	return strings.Join(parts, " ")
}

// MaxTracks bounds track enumeration per (view set, transaction type).
// Rich DAGs (every parenthesization of a long join chain) can represent
// combinatorially many tracks; beyond this bound the enumeration returns
// the first MaxTracks found, making the search over tracks heuristic in
// exactly the spirit of the paper's Section 5 approximate costing. The
// paper's own examples have 1–4 tracks.
const MaxTracks = 1024

// maxAssignments bounds the choice-assignment DFS inside Enumerate:
// dense memos map exponentially many assignments onto few distinct
// tracks, so the walk itself needs a budget independent of MaxTracks.
const maxAssignments = 20000

// Enumerate lists every update track that propagates updates of the given
// base relations to all affected marked nodes (up to MaxTracks). Marked
// nodes unaffected by the update need no propagation and do not constrain
// the track. When no marked node is affected the single empty track is
// returned.
func Enumerate(d *dag.DAG, vs ViewSet, updated []string) []*Track {
	trs, _ := EnumerateTracks(d, vs, updated)
	return trs
}

// EnumerateTracks is Enumerate plus a truncation report: truncated is
// true when the walk hit MaxTracks or the assignment budget, i.e. the
// returned tracks may not be exhaustive. Cost bounds derived from the
// track list (minimum update-only cost) are only sound when the list is
// complete, so the branch-and-bound search disables pruning for truncated
// enumerations.
func EnumerateTracks(d *dag.DAG, vs ViewSet, updated []string) (tracks []*Track, truncated bool) {
	aff := affectedMap(d, updated)
	var roots []*dag.EqNode
	for _, e := range d.NonLeafEqs() {
		if vs[e.ID] && aff[e.ID] {
			roots = append(roots, e)
		}
	}
	return enumerateFromRoots(d, roots, aff)
}

// affectedMap precomputes which equivalence nodes an update to the given
// base relations can reach: the enumeration walk consults this set on
// every step, and the per-call string comparison of DAG.Affected is too
// slow for its inner loop.
func affectedMap(d *dag.DAG, updated []string) map[int]bool {
	m := make(map[int]bool, len(d.Eqs()))
	for _, e := range d.Eqs() {
		if d.Affected(e, updated) {
			m[e.ID] = true
		}
	}
	return m
}

// enumerateFromRoots is the enumeration core. The view set enters only
// through the root list (its marked affected nodes): the per-node choice
// space and the cycle guard depend on affectedness alone, so two view
// sets with the same affected marked nodes have the same tracks. The
// costing bundle cache (bundle.go) keys on exactly this.
func enumerateFromRoots(d *dag.DAG, roots []*dag.EqNode, aff map[int]bool) (tracks []*Track, truncated bool) {
	if len(roots) == 0 {
		return []*Track{{Choice: map[int]*dag.OpNode{}}}, false
	}
	var out []*Track
	seen := map[string]bool{}
	budget := maxAssignments

	// Equivalence node IDs are assigned densely (dag.newEq), so the walk
	// state lives in ID-indexed slices: the in-progress choice assignment
	// and an epoch-stamped visited scratch shared by leadsBack/buildTrack
	// (bumping the epoch resets it without clearing — these run on every
	// assignment step, where per-call maps dominated the enumeration).
	maxID := 0
	for _, e := range d.Eqs() {
		if e.ID > maxID {
			maxID = e.ID
		}
	}
	st := &enumState{
		choice:  make([]*dag.OpNode, maxID+1),
		visited: make([]int, maxID+1),
		aff:     aff,
	}
	// queue[head:] is the pending node list. The recursion shares one
	// backing slice — each branch saves (len, head) and restores them on
	// backtrack — visiting nodes in exactly the order a copied per-branch
	// list would, without the per-step allocations.
	queue := append([]*dag.EqNode{}, roots...)
	head := 0
	var assign func()
	assign = func() {
		if len(out) >= MaxTracks || budget <= 0 {
			return
		}
		budget--
		// Find the first pending node needing a choice.
		for head < len(queue) {
			e := queue[head]
			head++
			if e.IsLeaf() || st.choice[e.ID] != nil || !aff[e.ID] {
				continue
			}
			// Candidate ops: those with at least one affected child.
			for _, op := range e.Ops {
				ok := false
				for _, c := range op.Children {
					if aff[c.ID] {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
				// Guard against choice cycles: an op whose affected child
				// subtree leads back to e is skipped (can arise from
				// identity-ish rewrites).
				if st.leadsBack(op, e) {
					continue
				}
				st.choice[e.ID] = op
				qlen, hsave := len(queue), head
				for _, c := range op.Children {
					if aff[c.ID] {
						queue = append(queue, c)
					}
				}
				assign()
				queue, head = queue[:qlen], hsave
				st.choice[e.ID] = nil
			}
			return
		}
		// All choices made: snapshot the track.
		tr := st.buildTrack(roots)
		if !seen[tr.Key()] {
			seen[tr.Key()] = true
			out = append(out, tr)
		}
	}
	assign()
	// Conservative: an exactly-full result also reports truncation, which
	// only disables an optimization (pruning), never correctness.
	return out, len(out) >= MaxTracks || budget <= 0
}

// enumState is the slice-backed walk state of one enumerateFromRoots
// call: the partial choice assignment, the affectedness set, and a
// generation-counted visited scratch.
type enumState struct {
	choice  []*dag.OpNode
	visited []int
	epoch   int
	aff     map[int]bool
}

// leadsBack reports whether selecting op for target would recurse into
// target again through affected, not-yet-chosen nodes.
func (st *enumState) leadsBack(op *dag.OpNode, target *dag.EqNode) bool {
	st.epoch++
	var walk func(e *dag.EqNode) bool
	walk = func(e *dag.EqNode) bool {
		if e == target {
			return true
		}
		if st.visited[e.ID] == st.epoch || e.IsLeaf() || !st.aff[e.ID] {
			return false
		}
		st.visited[e.ID] = st.epoch
		if chosen := st.choice[e.ID]; chosen != nil {
			for _, c := range chosen.Children {
				if walk(c) {
					return true
				}
			}
			return false
		}
		// Not chosen yet: any op could be picked later; conservative
		// check across all ops.
		for _, o := range e.Ops {
			for _, c := range o.Children {
				if walk(c) {
					return true
				}
			}
		}
		return false
	}
	for _, c := range op.Children {
		if walk(c) {
			return true
		}
	}
	return false
}

// buildTrack assembles the reachable choice closure bottom-up.
func (st *enumState) buildTrack(roots []*dag.EqNode) *Track {
	st.epoch++
	tr := &Track{Choice: map[int]*dag.OpNode{}}
	var leaves []*dag.EqNode
	var walk func(e *dag.EqNode)
	walk = func(e *dag.EqNode) {
		if st.visited[e.ID] == st.epoch {
			return
		}
		st.visited[e.ID] = st.epoch
		if e.IsLeaf() {
			leaves = append(leaves, e)
			return
		}
		op := st.choice[e.ID]
		if op == nil {
			return
		}
		tr.Choice[e.ID] = op
		for _, c := range op.Children {
			if st.aff[c.ID] {
				walk(c)
			}
		}
		tr.Order = append(tr.Order, e) // post-order: children first
	}
	for _, r := range roots {
		walk(r)
	}
	tr.Leaves = leaves
	return tr
}
