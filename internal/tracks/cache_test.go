package tracks_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// allViewSets enumerates every subset of the non-root, non-leaf nodes of
// the fixture DAG (the full lattice the optimizer searches).
func allViewSets(f *fixture) []tracks.ViewSet {
	var cands []int
	for _, e := range f.d.NonLeafEqs() {
		if !f.d.IsRoot(e) {
			cands = append(cands, e.ID)
		}
	}
	var out []tracks.ViewSet
	for mask := 0; mask < 1<<len(cands); mask++ {
		vs := tracks.RootSet(f.d)
		for i, id := range cands {
			if mask&(1<<i) != 0 {
				vs[id] = true
			}
		}
		out = append(out, vs)
	}
	return out
}

// TestCacheNoStaleEntries interleaves cost queries across every view set
// in the lattice, twice, and checks each answer against a fresh
// uncached Costing: a stale or cross-set entry would surface as a
// mismatch on the second pass.
func TestCacheNoStaleEntries(t *testing.T) {
	f := newFixture(t)
	sets := allViewSets(f)
	types := txn.PaperTypes()

	golden := map[string]tracks.SetCost{}
	for _, vs := range sets {
		for _, ty := range types {
			fresh := tracks.NewCosting(f.d, cost.PageIO{})
			golden[vs.Key()+"|"+ty.Name] = fresh.BestCost(vs, ty)
		}
	}

	shared := tracks.NewCosting(f.d, cost.PageIO{})
	var passHits, passMisses [2]uint64
	for pass := 0; pass < 2; pass++ {
		for _, vs := range sets {
			for _, ty := range types {
				want := golden[vs.Key()+"|"+ty.Name]
				got := shared.BestCost(vs, ty)
				if got.Best.Total() != want.Best.Total() ||
					got.MinUpdate != want.MinUpdate ||
					got.Truncated != want.Truncated ||
					got.Tracks != want.Tracks {
					t.Fatalf("pass %d, set %s, txn %s: cached %+v, fresh %+v",
						pass, vs.Key(), ty.Name, got, want)
				}
			}
		}
		passHits[pass], passMisses[pass] = shared.CacheStats()
	}
	n := uint64(len(sets) * len(types))
	// Pass 1: every (set, type) pair misses the set-cost cache once and
	// performs exactly one track-bundle lookup (hit or miss), 2n lookups
	// in total.
	if passHits[0]+passMisses[0] != 2*n {
		t.Fatalf("pass 1 cache stats hits=%d misses=%d, want %d lookups total",
			passHits[0], passMisses[0], 2*n)
	}
	// Pass 2: one pure hit per pair and not a single new miss — a repeat
	// pricing never rebuilds anything.
	if passMisses[1] != passMisses[0] || passHits[1] != passHits[0]+n {
		t.Fatalf("pass 2 cache stats hits=%d misses=%d, want hits=%d misses=%d (one hit per key, no new misses)",
			passHits[1], passMisses[1], passHits[0]+n, passMisses[0])
	}
}

// TestCacheConcurrentStress hammers one shared Costing from many
// goroutines over random interleavings of view sets and transaction
// types; run under -race it proves the costing layer is safe for the
// parallel search's concurrent use, and every concurrent answer must
// equal the sequential golden value.
func TestCacheConcurrentStress(t *testing.T) {
	f := newFixture(t)
	sets := allViewSets(f)
	types := txn.PaperTypes()

	golden := map[string]tracks.SetCost{}
	goldenW := map[string]float64{}
	goldenLB := map[string]float64{}
	pre := tracks.NewCosting(f.d, cost.PageIO{})
	for _, vs := range sets {
		for _, ty := range types {
			golden[vs.Key()+"|"+ty.Name] = pre.BestCost(vs, ty)
		}
		w, _ := pre.WeightedCost(vs, types)
		goldenW[vs.Key()] = w
		goldenLB[vs.Key()] = pre.WeightedUpdateLB(vs, types)
	}

	shared := tracks.NewCosting(f.d, cost.PageIO{})
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				vs := sets[rng.Intn(len(sets))]
				switch rng.Intn(3) {
				case 0:
					ty := types[rng.Intn(len(types))]
					got := shared.BestCost(vs, ty)
					want := golden[vs.Key()+"|"+ty.Name]
					if got.Best.Total() != want.Best.Total() || got.MinUpdate != want.MinUpdate {
						errs <- fmt.Errorf("worker %d: BestCost(%s, %s) = %+v, want %+v",
							w, vs.Key(), ty.Name, got, want)
						return
					}
				case 1:
					got, _ := shared.WeightedCost(vs, types)
					if got != goldenW[vs.Key()] {
						errs <- fmt.Errorf("worker %d: WeightedCost(%s) = %g, want %g",
							w, vs.Key(), got, goldenW[vs.Key()])
						return
					}
				default:
					got := shared.WeightedUpdateLB(vs, types)
					if got != goldenLB[vs.Key()] {
						errs <- fmt.Errorf("worker %d: WeightedUpdateLB(%s) = %g, want %g",
							w, vs.Key(), got, goldenLB[vs.Key()])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
