package tracks_test

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/rules"
	"repro/internal/tracks"
)

func TestViewSetHelpers(t *testing.T) {
	f := newFixture(t)
	vs := tracks.NewViewSet(f.d.Root, f.n3)
	if !vs.Has(f.d.Root) || !vs.Has(f.n3) || vs.Has(f.n4) {
		t.Error("membership wrong")
	}
	// Leaves are implicitly materialized.
	if !vs.Has(f.emp) {
		t.Error("leaves count as materialized")
	}
	clone := vs.Clone()
	clone[f.n4.ID] = true
	if vs[f.n4.ID] {
		t.Error("Clone must not alias")
	}
	key := vs.Key()
	if !strings.HasPrefix(key, "{N") || !strings.HasSuffix(key, "}") {
		t.Errorf("Key format: %q", key)
	}
	ids := vs.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("IDs must be sorted")
		}
	}
	rs := tracks.RootSet(f.d)
	if len(rs) != 1 || !rs[f.d.Root.ID] {
		t.Errorf("RootSet = %v", rs)
	}
}

func TestTrackStringAndKey(t *testing.T) {
	f := newFixture(t)
	trs := tracks.Enumerate(f.d, f.empty, []string{"Emp"})
	if len(trs) != 2 {
		t.Fatalf("tracks = %d", len(trs))
	}
	if trs[0].Key() == trs[1].Key() {
		t.Error("distinct tracks must have distinct keys")
	}
	s := trs[0].String()
	if !strings.Contains(s, "N") || !strings.Contains(s, "E") {
		t.Errorf("Track.String = %q", s)
	}
	// Order is bottom-up: the root appears last.
	last := trs[0].Order[len(trs[0].Order)-1]
	if last != f.d.Root {
		t.Errorf("root should be last in Order, got %s", last)
	}
}

func TestFormatQueries(t *testing.T) {
	f := newFixture(t)
	best, _ := f.cost.CostViewSet(f.empty, f.empT)
	out := tracks.FormatQueries(best.Queries)
	if !strings.Contains(out, "bind(") || !strings.Contains(out, "cost=") {
		t.Errorf("FormatQueries:\n%s", out)
	}
}

func TestMQOKeepsDistinctQueries(t *testing.T) {
	f := newFixture(t)
	qs := []tracks.QueryCharge{
		{Target: f.emp, Bind: []string{"Emp.DName"}, Keys: 1, Origin: "a"},
		{Target: f.emp, Bind: []string{"Emp.DName"}, Keys: 3, Origin: "b"},
		{Target: f.dept, Bind: []string{"Dept.DName"}, Keys: 1, Origin: "c"},
	}
	merged := tracks.MQO(qs)
	if len(merged) != 2 {
		t.Fatalf("MQO kept %d queries, want 2", len(merged))
	}
	if merged[0].Keys != 3 {
		t.Errorf("merged keys = %g, want max(1,3)=3", merged[0].Keys)
	}
	if !strings.Contains(merged[0].Origin, "a") || !strings.Contains(merged[0].Origin, "b") {
		t.Errorf("merged origin = %q", merged[0].Origin)
	}
}

func TestSelectivityBranches(t *testing.T) {
	st := catalog.Stats{Card: 100, Distinct: map[string]float64{"a": 10, "b": 50}}
	cases := []struct {
		e    expr.Expr
		want float64
	}{
		{expr.Compare(expr.EQ, expr.C("a"), expr.IntLit(1)), 0.1},
		{expr.Compare(expr.EQ, expr.IntLit(1), expr.C("a")), 0.1},
		{expr.Compare(expr.EQ, expr.C("a"), expr.C("b")), 1.0 / 50},
		{expr.Compare(expr.GT, expr.C("a"), expr.IntLit(1)), 1.0 / 3},
		{expr.AndOf(
			expr.Compare(expr.EQ, expr.C("a"), expr.IntLit(1)),
			expr.Compare(expr.GT, expr.C("b"), expr.IntLit(2))), 0.1 / 3},
		{expr.Not{E: expr.Compare(expr.EQ, expr.C("a"), expr.IntLit(1))}, 1.0 / 3},
	}
	for _, c := range cases {
		if got := tracks.Selectivity(c.e, st); !approx(got, c.want) {
			t.Errorf("Selectivity(%s) = %g, want %g", c.e, got, c.want)
		}
	}
}

// TestEstimatorSetOps covers Union/Diff/Distinct/Project estimation.
func TestEstimatorSetOps(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 5, EmpsPerDept: 4, ADeptsEveryN: 2})
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))
	names := algebra.NewProject([]algebra.ProjectItem{{E: expr.C("Emp.DName"), As: "DName"}}, emp)
	aNames := algebra.NewProject([]algebra.ProjectItem{{E: expr.C("ADepts.DName"), As: "DName"}}, adepts)
	view := algebra.NewDistinct(algebra.NewUnion(names, aNames))
	d, err := dag.FromTree(view)
	if err != nil {
		t.Fatal(err)
	}
	est := tracks.NewEstimator(d)
	st := est.StatsOf(d.Root)
	// Union card = 20 + 3; distinct keeps it as an upper bound.
	if st.Card < 5 || st.Card > 23 {
		t.Errorf("estimated card = %g", st.Card)
	}

	diff := algebra.NewDiff(names, aNames)
	d2, err := dag.FromTree(diff)
	if err != nil {
		t.Fatal(err)
	}
	st2 := tracks.NewEstimator(d2).StatsOf(d2.Root)
	if !approx(st2.Card, 20) {
		t.Errorf("diff card = %g, want left card 20", st2.Card)
	}
}

// TestQueryCostFallbacks covers the scan fallback (no usable index) and
// the eval fallback (filter not pushable).
func TestQueryCostFallbacks(t *testing.T) {
	db := corpus.NewDatabase(corpus.Config{Departments: 5, EmpsPerDept: 4})
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	// Aggregate keyed on a computed value: binding on the agg output
	// cannot push.
	agg := algebra.NewAggregate(
		[]string{"Emp.DName"},
		[]algebra.AggSpec{{Func: algebra.Sum, Arg: expr.C("Emp.Salary"), As: "S"}},
		emp,
	)
	d, err := dag.FromTree(algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("S"), expr.IntLit(0)), agg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 100); err != nil {
		t.Fatal(err)
	}
	c := tracks.NewCosting(d, cost.PageIO{})
	aggEq := d.FindEq(agg)
	if aggEq == nil {
		t.Fatal("agg eq missing")
	}
	vs := tracks.RootSet(d)
	// Binding on the aggregate column: no push possible; falls back to
	// full evaluation (scan of Emp = 20 tuples).
	got := c.QueryCost(aggEq, []string{"S"}, 1, vs)
	if got <= 0 {
		t.Errorf("fallback cost = %g, want > 0", got)
	}
	// Binding on Salary (no index): leaf lookup degrades to a scan.
	leaf := d.FindEq(emp)
	scanCost := c.QueryCost(leaf, []string{"Emp.Salary"}, 1, vs)
	if !approx(scanCost, 20) {
		t.Errorf("unindexed bind should scan: %g, want 20", scanCost)
	}
}

func TestEnumerateRespectsMaxTracks(t *testing.T) {
	// A synthetic DAG cannot easily exceed MaxTracks here; instead check
	// the invariant that Enumerate always returns at least one track for
	// an affected view set and exactly one empty track otherwise.
	f := newFixture(t)
	trs := tracks.Enumerate(f.d, f.empty, []string{"Emp"})
	if len(trs) == 0 || len(trs) > tracks.MaxTracks {
		t.Errorf("tracks = %d", len(trs))
	}
	trs = tracks.Enumerate(f.d, f.empty, []string{"ADepts"})
	if len(trs) != 1 || len(trs[0].Choice) != 0 {
		t.Errorf("unaffected enumeration = %v", trs)
	}
}

func TestDistinctOfColsCaps(t *testing.T) {
	// Composite distinct estimates cap at the cardinality.
	db := corpus.NewDatabase(corpus.Config{Departments: 3, EmpsPerDept: 3})
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	est := tracks.NewEstimator(d)
	st := est.StatsOf(d.Root)
	if st.Card < 0 {
		t.Error("negative cardinality")
	}
}
