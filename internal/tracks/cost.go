package tracks

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/txn"
)

// Costing estimates query and update costs for view sets under a cost
// model (the inner loops of Algorithm OptimalViewSet, Figure 4).
type Costing struct {
	D     *dag.DAG
	Est   *Estimator
	Model cost.Model
	// CountRootUpdate includes the root view's own update cost in
	// maintenance costs. The paper's Section 3.6 excludes it ("We do not
	// count the cost of updating the database relations, or the
	// top-level view"), so the default is false.
	CountRootUpdate bool

	// Transient per-track state consulted by coversGroups.
	trackChoice map[int]*dag.OpNode
	trackFlows  map[int]Flow

	// Per-view-set memoization of query and evaluation costs: the same
	// point query is priced across many tracks and view-set candidates,
	// and the recursion over operation alternatives is exponential
	// without it.
	memoVS string
	qmemo  map[string]float64
	ememo  map[int]float64
}

// ensureMemo resets the cost memos when the view set changes.
func (c *Costing) ensureMemo(vs ViewSet) {
	k := vs.Key()
	if k != c.memoVS || c.qmemo == nil {
		c.memoVS = k
		c.qmemo = map[string]float64{}
		c.ememo = map[int]float64{}
	}
}

// NewCosting returns a coster over the DAG with the given model.
func NewCosting(d *dag.DAG, m cost.Model) *Costing {
	return &Costing{D: d, Est: NewEstimator(d), Model: m}
}

// TrackCost is the costed outcome of propagating one transaction type
// along one update track.
type TrackCost struct {
	Track      *Track
	Queries    []QueryCharge
	QueryCost  float64
	UpdateCost float64
	// Flows records the estimated delta at each affected node.
	Flows map[int]Flow
}

// Total is the paper's q_j + m_j.
func (tc TrackCost) Total() float64 { return tc.QueryCost + tc.UpdateCost }

// CostTrack prices one track for one transaction type under a view set:
// the multi-query-optimized cost of the queries posed along the track
// plus the cost of applying deltas to every affected materialized view.
func (c *Costing) CostTrack(tr *Track, vs ViewSet, t *txn.Type) TrackCost {
	flows := map[int]Flow{}
	// Seed the flows at updated base relations.
	for _, e := range c.D.Eqs() {
		if !e.IsLeaf() {
			continue
		}
		if u, ok := t.UpdateOf(e.BaseRel); ok {
			flows[e.ID] = leafFlow(u)
		}
	}
	c.trackChoice = tr.Choice
	c.trackFlows = flows
	defer func() { c.trackChoice, c.trackFlows = nil, nil }()

	var queries []QueryCharge
	for _, e := range tr.Order {
		op := tr.Choice[e.ID]
		f, qs := c.opFlow(e, op, flows, vs)
		flows[e.ID] = f
		queries = append(queries, qs...)
	}
	queries = MQO(queries)
	var qcost float64
	for i := range queries {
		queries[i].Cost = c.QueryCost(queries[i].Target, queries[i].Bind, queries[i].Keys, vs)
		qcost += queries[i].Cost
	}
	var ucost float64
	for _, e := range tr.Order {
		if !vs[e.ID] {
			continue
		}
		if c.D.IsRoot(e) && !c.CountRootUpdate {
			continue
		}
		f := flows[e.ID]
		dirty := 0
		if f.modsTouch(c.ViewIndexCols(e)) {
			dirty = 1
		}
		ucost += c.Model.Update(f.Mods, f.Ins, f.Dels, 1, dirty)
	}
	return TrackCost{Track: tr, Queries: queries, QueryCost: qcost, UpdateCost: ucost, Flows: flows}
}

// CostViewSet prices a view set for a transaction type: the cheapest
// update track (the paper's C(V, T_i)), along with every candidate track
// for reporting.
func (c *Costing) CostViewSet(vs ViewSet, t *txn.Type) (TrackCost, []TrackCost) {
	trs := Enumerate(c.D, vs, t.UpdatedRels())
	all := make([]TrackCost, 0, len(trs))
	best := TrackCost{QueryCost: math.Inf(1)}
	for _, tr := range trs {
		tc := c.CostTrack(tr, vs, t)
		all = append(all, tc)
		if tc.Total() < best.Total() {
			best = tc
		}
	}
	return best, all
}

// WeightedCost prices a view set across all transaction types:
// Σ C(V,T_i)·f_i / Σ f_i.
func (c *Costing) WeightedCost(vs ViewSet, types []*txn.Type) (float64, map[string]TrackCost) {
	per := map[string]TrackCost{}
	var num, den float64
	for _, t := range types {
		best, _ := c.CostViewSet(vs, t)
		per[t.Name] = best
		num += best.Total() * t.Weight
		den += t.Weight
	}
	if den == 0 {
		return 0, per
	}
	return num / den, per
}

// MQO merges identical queries posed along one track (the simplest form
// of the multi-query optimization the paper applies across a track's
// query set): two queries on the same target with the same binding
// columns share one evaluation.
func MQO(queries []QueryCharge) []QueryCharge {
	type key struct {
		id   int
		bind string
	}
	index := map[key]int{}
	var out []QueryCharge
	for _, q := range queries {
		k := key{q.Target.ID, strings.Join(q.Bind, ",")}
		if i, ok := index[k]; ok {
			if q.Keys > out[i].Keys {
				out[i].Keys = q.Keys
			}
			out[i].Origin += "+" + q.Origin
			continue
		}
		index[k] = len(out)
		out = append(out, q)
	}
	return out
}

// QueryCost estimates the cost of answering a point query bound on the
// given columns against an equivalence node, for keys distinct probe
// values, in the presence of the materialized views vs (the paper's
// "determining the cost of evaluating a query Q on an equivalence node
// ... in the presence of the materialized views", per Chaudhuri et al.).
func (c *Costing) QueryCost(e *dag.EqNode, bind []string, keys float64, vs ViewSet) float64 {
	if keys <= 0 {
		return 0
	}
	c.ensureMemo(vs)
	mk := fmt.Sprintf("%d|%s|%g", e.ID, strings.Join(bind, ","), keys)
	if v, ok := c.qmemo[mk]; ok {
		return v
	}
	v := c.queryCost(e, bind, keys, vs, map[int]bool{})
	c.qmemo[mk] = v
	return v
}

func (c *Costing) queryCost(e *dag.EqNode, bind []string, keys float64, vs ViewSet, visiting map[int]bool) float64 {
	if vs.Has(e) {
		return c.lookupCost(e, bind, keys)
	}
	if visiting[e.ID] {
		return math.Inf(1)
	}
	visiting[e.ID] = true
	defer delete(visiting, e.ID)
	best := math.Inf(1)
	for _, op := range e.Ops {
		if c2 := c.opQueryCost(op, bind, keys, vs, visiting); c2 < best {
			best = c2
		}
	}
	if math.IsInf(best, 1) {
		// No pushable plan: evaluate the expression once and filter.
		return c.EvalCost(e, vs)
	}
	return best
}

// lookupCost prices probing a stored relation or materialized view.
func (c *Costing) lookupCost(e *dag.EqNode, bind []string, keys float64) float64 {
	st := c.Est.StatsOf(e)
	ix := c.indexSubset(e, bind)
	if ix == nil {
		return keys * c.Model.Scan(st.Card)
	}
	rows := math.Max(1, st.Card/distinctOfCols(st, ix))
	return keys * c.Model.Lookup(rows)
}

func (c *Costing) opQueryCost(op *dag.OpNode, bind []string, keys float64, vs ViewSet, visiting map[int]bool) float64 {
	switch t := op.Template.(type) {
	case *algebra.Select:
		return c.queryCost(op.Children[0], bind, keys, vs, visiting)
	case *algebra.Project:
		// Pass-through columns only.
		childBind := make([]string, len(bind))
		out := t.Schema()
		for i, b := range bind {
			j, err := out.Resolve(b)
			if err != nil {
				return math.Inf(1)
			}
			cc, isCol := t.Items[j].E.(expr.Col)
			if !isCol {
				return math.Inf(1)
			}
			childBind[i] = cc.Name
		}
		return c.queryCost(op.Children[0], childBind, keys, vs, visiting)
	case *algebra.Join:
		return c.joinQueryCost(t, op, bind, keys, vs, visiting)
	case *algebra.Aggregate:
		out := t.Schema()
		childBind := make([]string, len(bind))
		for i, b := range bind {
			j, err := out.Resolve(b)
			if err != nil || j >= len(t.GroupBy) {
				return math.Inf(1)
			}
			childBind[i] = t.GroupBy[j]
		}
		return c.queryCost(op.Children[0], childBind, keys, vs, visiting)
	case *algebra.Distinct:
		return c.queryCost(op.Children[0], bind, keys, vs, visiting)
	case *algebra.Union, *algebra.Diff:
		a := c.queryCost(op.Children[0], bind, keys, vs, visiting)
		b := c.queryCost(op.Children[1], bind, keys, vs, visiting)
		return a + b
	default:
		return math.Inf(1)
	}
}

func (c *Costing) joinQueryCost(j *algebra.Join, op *dag.OpNode, bind []string, keys float64, vs ViewSet, visiting map[int]bool) float64 {
	l, r := op.Children[0], op.Children[1]
	ls, rs := l.Schema(), r.Schema()
	var lbind, rbind []string
	for _, b := range bind {
		switch {
		case ls.Has(b):
			lbind = append(lbind, b)
		case rs.Has(b):
			rbind = append(rbind, b)
		default:
			return math.Inf(1)
		}
	}
	// Transfer join-column binds across the equality.
	for _, b := range lbind {
		for _, cond := range j.On {
			if sameSchemaCol(ls, cond.Left, b) && !containsStr(rbind, cond.Right) {
				rbind = append(rbind, cond.Right)
			}
		}
	}
	for _, b := range rbind {
		for _, cond := range j.On {
			if sameSchemaCol(rs, cond.Right, b) && !containsStr(lbind, cond.Left) {
				lbind = append(lbind, cond.Left)
			}
		}
	}
	switch {
	case len(lbind) > 0 && len(rbind) > 0:
		return c.queryCost(l, lbind, keys, vs, visiting) +
			c.queryCost(r, rbind, keys, vs, visiting)
	case len(lbind) > 0:
		drive := c.queryCost(l, lbind, keys, vs, visiting)
		lst := c.Est.StatsOf(l)
		bound := math.Max(1, lst.Card/distinctOfCols(lst, lbind))
		return drive + c.queryCost(r, j.RightCols(), keys*bound, vs, visiting)
	case len(rbind) > 0:
		drive := c.queryCost(r, rbind, keys, vs, visiting)
		rst := c.Est.StatsOf(r)
		bound := math.Max(1, rst.Card/distinctOfCols(rst, rbind))
		return drive + c.queryCost(l, j.LeftCols(), keys*bound, vs, visiting)
	default:
		return math.Inf(1)
	}
}

func sameSchemaCol(s *catalog.Schema, a, b string) bool {
	ia, ea := s.Resolve(a)
	ib, eb := s.Resolve(b)
	return ea == nil && eb == nil && ia == ib
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// EvalCost estimates fully evaluating an equivalence node (used as the
// fallback when no filtered plan exists, and by the single-tree
// heuristic's query-optimality check).
func (c *Costing) EvalCost(e *dag.EqNode, vs ViewSet) float64 {
	c.ensureMemo(vs)
	if v, ok := c.ememo[e.ID]; ok {
		return v
	}
	v := c.evalCost(e, vs, map[int]bool{})
	c.ememo[e.ID] = v
	return v
}

func (c *Costing) evalCost(e *dag.EqNode, vs ViewSet, visiting map[int]bool) float64 {
	if vs.Has(e) {
		return c.Model.Scan(c.Est.StatsOf(e).Card)
	}
	if visiting[e.ID] {
		return math.Inf(1)
	}
	visiting[e.ID] = true
	defer delete(visiting, e.ID)
	best := math.Inf(1)
	for _, op := range e.Ops {
		var sum float64
		for _, ch := range op.Children {
			sum += c.evalCost(ch, vs, visiting)
		}
		if sum < best {
			best = sum
		}
	}
	if math.IsInf(best, 1) {
		return c.Model.Scan(c.Est.StatsOf(e).Card)
	}
	return best
}

// ViewIndexCols returns the (bare) columns the single hash index of a
// materialized view is built on, mirroring the paper's "assuming that
// each of the materializations has a single index on DName": the first
// grouping column for aggregates, the first join column for joins, the
// child's choice through selections/projections/distinct, the first
// declared index for base relations.
func (c *Costing) ViewIndexCols(e *dag.EqNode) []string {
	return viewIndexCols(c.D, e, map[int]bool{})
}

// ViewIndexCols is the package-level form used by the maintenance runtime
// so the physical index matches the costed one.
func ViewIndexCols(d *dag.DAG, e *dag.EqNode) []string {
	return viewIndexCols(d, e, map[int]bool{})
}

func viewIndexCols(d *dag.DAG, e *dag.EqNode, seen map[int]bool) []string {
	if seen[e.ID] {
		return nil
	}
	seen[e.ID] = true
	if e.IsLeaf() {
		if rel, ok := e.Expr.(*algebra.Rel); ok && len(rel.Def.Indexes) > 0 {
			return bareAll(rel.Def.Indexes[0].Columns)
		}
		return nil
	}
	op := e.Ops[0]
	switch t := op.Template.(type) {
	case *algebra.Aggregate:
		if len(t.GroupBy) > 0 {
			return bareAll(t.GroupBy[:1])
		}
	case *algebra.Join:
		if len(t.On) > 0 {
			return bareAll([]string{t.On[0].Left})
		}
	case *algebra.Select, *algebra.Distinct:
		return viewIndexCols(d, op.Children[0], seen)
	case *algebra.Project:
		cols := viewIndexCols(d, op.Children[0], seen)
		for _, col := range cols {
			if !schemaHasBare(e.Schema(), col) {
				return nil
			}
		}
		return cols
	}
	return nil
}

func schemaHasBare(s *catalog.Schema, bare string) bool {
	for _, c := range s.Cols {
		if c.Name == bare {
			return true
		}
	}
	return false
}

func bareAll(cols []string) []string {
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		b := bareOf(c)
		if !containsStr(out, b) {
			out = append(out, b)
		}
	}
	return out
}

// indexSubset returns the indexed columns usable for a bind, or nil.
// A hash index is usable when its columns are a subset of the bind
// columns (probe with the indexed part, filter the rest for free).
func (c *Costing) indexSubset(e *dag.EqNode, bind []string) []string {
	bareBind := bareAll(bind)
	isSubset := func(cols []string) bool {
		for _, col := range cols {
			if !containsStr(bareBind, bareOf(col)) {
				return false
			}
		}
		return len(cols) > 0
	}
	if e.IsLeaf() {
		if rel, ok := e.Expr.(*algebra.Rel); ok {
			// Prefer the most selective usable index (largest column set).
			var best []string
			for _, ix := range rel.Def.Indexes {
				if isSubset(bareAll(ix.Columns)) {
					if len(ix.Columns) > len(best) {
						best = bareAll(ix.Columns)
					}
				}
			}
			return best
		}
		return nil
	}
	ix := c.ViewIndexCols(e)
	if isSubset(ix) {
		return ix
	}
	return nil
}

// FormatQueries renders query charges for reports, sorted by origin.
func FormatQueries(qs []QueryCharge) string {
	sorted := append([]QueryCharge{}, qs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Origin < sorted[j].Origin })
	var b strings.Builder
	for _, q := range sorted {
		fmt.Fprintf(&b, "  on %s bind(%s) keys=%g cost=%g  [%s]\n",
			q.Target, strings.Join(q.Bind, ","), q.Keys, q.Cost, q.Origin)
	}
	return b.String()
}
