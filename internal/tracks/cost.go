package tracks

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/txn"
)

// Costing estimates query and update costs for view sets under a cost
// model (the inner loops of Algorithm OptimalViewSet, Figure 4).
//
// A Costing is safe for concurrent use: all per-track and per-view-set
// state lives in a costCtx threaded through the internal recursion, every
// lazy structure it reads (DAG base-relation sets, estimator statistics,
// algebra schemas) is pre-warmed at construction, and cross-call results
// are shared through the sharded cost cache (cache.go).
type Costing struct {
	D     *dag.DAG
	Est   *Estimator
	Model cost.Model
	// CountRootUpdate includes the root view's own update cost in
	// maintenance costs. The paper's Section 3.6 excludes it ("We do not
	// count the cost of updating the database relations, or the
	// top-level view"), so the default is false.
	CountRootUpdate bool

	cache *costCache
	// bundles caches the view-set-independent half of pricing (tracks,
	// flows, update charges) per (affected-root set, transaction type);
	// see bundle.go. Entries are immutable once stored.
	bundles sync.Map
	// affected memoizes the affected-node set per transaction type name.
	affected sync.Map
	// seeds memoizes each transaction type's leaf delta flows.
	seeds sync.Map
}

// costCtx carries the per-call state of one costing pass: the view set
// being priced, the transient track context consulted by coversGroups,
// and the query/evaluation memos (the same point query is priced across
// many tracks, and the recursion over operation alternatives is
// exponential without them). Each top-level call builds its own ctx, so
// concurrent searches never share mutable state.
type costCtx struct {
	vs          ViewSet
	trackChoice map[int]*dag.OpNode
	trackFlows  map[int]Flow
	qmemo       map[string]float64
	ememo       map[int]float64
	// noQueries suppresses QueryCharge construction in opFlow. The
	// bundle builder sets it while propagating flows: it discards the
	// queries, and their provenance strings are the single most
	// expensive part of flow propagation.
	noQueries bool
}

func newCostCtx(vs ViewSet) *costCtx {
	return &costCtx{vs: vs, qmemo: map[string]float64{}, ememo: map[int]float64{}}
}

// NewCosting returns a coster over the DAG with the given model. It
// pre-warms every lazily cached structure the costing recursion reads
// (node schemas, base-relation sets, estimator statistics) so that a
// built Costing performs no shared writes outside its cache.
func NewCosting(d *dag.DAG, m cost.Model) *Costing {
	c := &Costing{D: d, Est: NewEstimator(d), Model: m, cache: newCostCache()}
	for _, e := range d.Eqs() {
		e.Schema()
		d.BaseRelsOf(e)
		c.Est.StatsOf(e)
	}
	for _, op := range d.Ops() {
		op.Template.Schema()
	}
	return c
}

// TrackCost is the costed outcome of propagating one transaction type
// along one update track.
type TrackCost struct {
	Track      *Track
	Queries    []QueryCharge
	QueryCost  float64
	UpdateCost float64
	// Flows records the estimated delta at each affected node.
	Flows map[int]Flow
}

// Total is the paper's q_j + m_j.
func (tc TrackCost) Total() float64 { return tc.QueryCost + tc.UpdateCost }

// SharedQueries counts the queries along the track that the multi-query
// optimization merges away: posed by more than one consumer but priced
// (and, in the runtime's window memo, evaluated) only once.
func (tc TrackCost) SharedQueries() int { return len(tc.Queries) - len(MQO(tc.Queries)) }

// CostTrack prices one track for one transaction type under a view set:
// the multi-query-optimized cost of the queries posed along the track
// plus the cost of applying deltas to every affected materialized view.
func (c *Costing) CostTrack(tr *Track, vs ViewSet, t *txn.Type) TrackCost {
	return c.costTrack(newCostCtx(vs), tr, t)
}

func (c *Costing) costTrack(ctx *costCtx, tr *Track, t *txn.Type) TrackCost {
	flows := map[int]Flow{}
	// Seed the flows at updated base relations.
	for _, e := range c.D.Eqs() {
		if !e.IsLeaf() {
			continue
		}
		if u, ok := t.UpdateOf(e.BaseRel); ok {
			flows[e.ID] = leafFlow(u)
		}
	}
	ctx.trackChoice = tr.Choice
	ctx.trackFlows = flows
	defer func() { ctx.trackChoice, ctx.trackFlows = nil, nil }()

	var queries []QueryCharge
	for _, e := range tr.Order {
		op := tr.Choice[e.ID]
		f, qs := c.opFlow(ctx, e, op, flows)
		flows[e.ID] = f
		queries = append(queries, qs...)
	}
	queries = MQO(queries)
	var qcost float64
	for i := range queries {
		queries[i].Cost = c.queryCostMemo(ctx, queries[i].Target, queries[i].Bind, queries[i].Keys)
		qcost += queries[i].Cost
	}
	ucost := c.trackUpdateCost(ctx, tr, flows)
	return TrackCost{Track: tr, Queries: queries, QueryCost: qcost, UpdateCost: ucost, Flows: flows}
}

// trackUpdateCost sums the cost of applying the track's deltas to the
// materialized nodes it passes through. This is the monotone part of a
// track's cost: it depends only on the delta flows (which are independent
// of the view set), so over supersets it only gains terms.
func (c *Costing) trackUpdateCost(ctx *costCtx, tr *Track, flows map[int]Flow) float64 {
	var ucost float64
	for _, e := range tr.Order {
		if !ctx.vs[e.ID] {
			continue
		}
		if c.D.IsRoot(e) && !c.CountRootUpdate {
			continue
		}
		f := flows[e.ID]
		dirty := 0
		if f.modsTouch(c.ViewIndexCols(e)) {
			dirty = 1
		}
		ucost += c.Model.Update(f.Mods, f.Ins, f.Dels, 1, dirty)
	}
	return ucost
}

// CostViewSet prices a view set for a transaction type: the cheapest
// update track (the paper's C(V, T_i)), along with every candidate track
// for reporting.
func (c *Costing) CostViewSet(vs ViewSet, t *txn.Type) (TrackCost, []TrackCost) {
	best, all, _, _, _ := c.costViewSet(newCostCtx(vs), t, true)
	return best, all
}

func (c *Costing) costViewSet(ctx *costCtx, t *txn.Type, keepAll bool) (best TrackCost, all []TrackCost, minUpdate float64, truncated bool, n int) {
	b := c.bundleFor(ctx.vs, t)
	best = TrackCost{QueryCost: math.Inf(1)}
	minUpdate = math.Inf(1)
	if keepAll {
		all = make([]TrackCost, 0, len(b.tracks))
	}
	for i, tr := range b.tracks {
		tc := c.costTrackQueries(ctx, b, i, tr)
		if keepAll {
			all = append(all, tc)
		}
		if tc.Total() < best.Total() {
			best = tc
		}
		if tc.UpdateCost < minUpdate {
			minUpdate = tc.UpdateCost
		}
	}
	if math.IsInf(minUpdate, 1) {
		minUpdate = 0
	}
	return best, all, minUpdate, b.truncated, len(b.tracks)
}

// costTrackQueries prices one bundled track for the current view set:
// only the view-set-dependent parts (query generation and pricing) run
// here; the delta flows and update charges come precomputed from the
// bundle, and the update cost sums the same charges in the same order as
// trackUpdateCost, so bound and full pricing agree bit for bit.
func (c *Costing) costTrackQueries(ctx *costCtx, b *trackBundle, i int, tr *Track) TrackCost {
	flows := b.flows[i]
	ctx.trackChoice = tr.Choice
	ctx.trackFlows = flows
	defer func() { ctx.trackChoice, ctx.trackFlows = nil, nil }()
	var queries []QueryCharge
	for _, e := range tr.Order {
		_, qs := c.opFlow(ctx, e, tr.Choice[e.ID], flows)
		queries = append(queries, qs...)
	}
	queries = MQO(queries)
	var qcost float64
	for j := range queries {
		queries[j].Cost = c.queryCostMemo(ctx, queries[j].Target, queries[j].Bind, queries[j].Keys)
		qcost += queries[j].Cost
	}
	return TrackCost{Track: tr, Queries: queries, QueryCost: qcost, UpdateCost: b.updateCost(c, i, ctx.vs), Flows: flows}
}

// WeightedCost prices a view set across all transaction types:
// Σ C(V,T_i)·f_i / Σ f_i. Per-type results flow through the shared cost
// cache, so repeated evaluations of the same set are free.
func (c *Costing) WeightedCost(vs ViewSet, types []*txn.Type) (float64, map[string]TrackCost) {
	ctx := newCostCtx(vs)
	per := map[string]TrackCost{}
	var num, den float64
	for _, t := range types {
		sc := c.bestCost(ctx, t)
		per[t.Name] = sc.Best
		num += sc.Best.Total() * t.Weight
		den += t.Weight
	}
	if den == 0 {
		return 0, per
	}
	return num / den, per
}

// MQO merges identical queries posed along one track (the simplest form
// of the multi-query optimization the paper applies across a track's
// query set): two queries on the same target with the same binding
// columns share one evaluation.
func MQO(queries []QueryCharge) []QueryCharge {
	type key struct {
		id   int
		bind string
	}
	index := map[key]int{}
	var out []QueryCharge
	for _, q := range queries {
		k := key{q.Target.ID, strings.Join(q.Bind, ",")}
		if i, ok := index[k]; ok {
			if q.Keys > out[i].Keys {
				out[i].Keys = q.Keys
			}
			out[i].Origin += "+" + q.Origin
			continue
		}
		index[k] = len(out)
		out = append(out, q)
	}
	return out
}

// QueryCost estimates the cost of answering a point query bound on the
// given columns against an equivalence node, for keys distinct probe
// values, in the presence of the materialized views vs (the paper's
// "determining the cost of evaluating a query Q on an equivalence node
// ... in the presence of the materialized views", per Chaudhuri et al.).
func (c *Costing) QueryCost(e *dag.EqNode, bind []string, keys float64, vs ViewSet) float64 {
	return c.queryCostMemo(newCostCtx(vs), e, bind, keys)
}

func (c *Costing) queryCostMemo(ctx *costCtx, e *dag.EqNode, bind []string, keys float64) float64 {
	if keys <= 0 {
		return 0
	}
	mk := fmt.Sprintf("%d|%s|%g", e.ID, strings.Join(bind, ","), keys)
	if v, ok := ctx.qmemo[mk]; ok {
		return v
	}
	v := c.queryCost(ctx, e, bind, keys, map[int]bool{})
	ctx.qmemo[mk] = v
	return v
}

func (c *Costing) queryCost(ctx *costCtx, e *dag.EqNode, bind []string, keys float64, visiting map[int]bool) float64 {
	if ctx.vs.Has(e) {
		return c.lookupCost(e, bind, keys)
	}
	if visiting[e.ID] {
		return math.Inf(1)
	}
	visiting[e.ID] = true
	defer delete(visiting, e.ID)
	best := math.Inf(1)
	for _, op := range e.Ops {
		if c2 := c.opQueryCost(ctx, op, bind, keys, visiting); c2 < best {
			best = c2
		}
	}
	if math.IsInf(best, 1) {
		// No pushable plan: evaluate the expression once and filter.
		return c.evalCostMemo(ctx, e)
	}
	return best
}

// lookupCost prices probing a stored relation or materialized view.
func (c *Costing) lookupCost(e *dag.EqNode, bind []string, keys float64) float64 {
	st := c.Est.StatsOf(e)
	ix := c.indexSubset(e, bind)
	if ix == nil {
		return keys * c.Model.Scan(st.Card)
	}
	rows := math.Max(1, st.Card/distinctOfCols(st, ix))
	return keys * c.Model.Lookup(rows)
}

func (c *Costing) opQueryCost(ctx *costCtx, op *dag.OpNode, bind []string, keys float64, visiting map[int]bool) float64 {
	switch t := op.Template.(type) {
	case *algebra.Select:
		return c.queryCost(ctx, op.Children[0], bind, keys, visiting)
	case *algebra.Project:
		// Pass-through columns only.
		childBind := make([]string, len(bind))
		out := t.Schema()
		for i, b := range bind {
			j, err := out.Resolve(b)
			if err != nil {
				return math.Inf(1)
			}
			cc, isCol := t.Items[j].E.(expr.Col)
			if !isCol {
				return math.Inf(1)
			}
			childBind[i] = cc.Name
		}
		return c.queryCost(ctx, op.Children[0], childBind, keys, visiting)
	case *algebra.Join:
		return c.joinQueryCost(ctx, t, op, bind, keys, visiting)
	case *algebra.Aggregate:
		out := t.Schema()
		childBind := make([]string, len(bind))
		for i, b := range bind {
			j, err := out.Resolve(b)
			if err != nil || j >= len(t.GroupBy) {
				return math.Inf(1)
			}
			childBind[i] = t.GroupBy[j]
		}
		return c.queryCost(ctx, op.Children[0], childBind, keys, visiting)
	case *algebra.Distinct:
		return c.queryCost(ctx, op.Children[0], bind, keys, visiting)
	case *algebra.Union, *algebra.Diff:
		a := c.queryCost(ctx, op.Children[0], bind, keys, visiting)
		b := c.queryCost(ctx, op.Children[1], bind, keys, visiting)
		return a + b
	default:
		return math.Inf(1)
	}
}

func (c *Costing) joinQueryCost(ctx *costCtx, j *algebra.Join, op *dag.OpNode, bind []string, keys float64, visiting map[int]bool) float64 {
	l, r := op.Children[0], op.Children[1]
	ls, rs := l.Schema(), r.Schema()
	var lbind, rbind []string
	for _, b := range bind {
		switch {
		case ls.Has(b):
			lbind = append(lbind, b)
		case rs.Has(b):
			rbind = append(rbind, b)
		default:
			return math.Inf(1)
		}
	}
	// Transfer join-column binds across the equality.
	for _, b := range lbind {
		for _, cond := range j.On {
			if sameSchemaCol(ls, cond.Left, b) && !containsStr(rbind, cond.Right) {
				rbind = append(rbind, cond.Right)
			}
		}
	}
	for _, b := range rbind {
		for _, cond := range j.On {
			if sameSchemaCol(rs, cond.Right, b) && !containsStr(lbind, cond.Left) {
				lbind = append(lbind, cond.Left)
			}
		}
	}
	switch {
	case len(lbind) > 0 && len(rbind) > 0:
		return c.queryCost(ctx, l, lbind, keys, visiting) +
			c.queryCost(ctx, r, rbind, keys, visiting)
	case len(lbind) > 0:
		drive := c.queryCost(ctx, l, lbind, keys, visiting)
		lst := c.Est.StatsOf(l)
		bound := math.Max(1, lst.Card/distinctOfCols(lst, lbind))
		return drive + c.queryCost(ctx, r, j.RightCols(), keys*bound, visiting)
	case len(rbind) > 0:
		drive := c.queryCost(ctx, r, rbind, keys, visiting)
		rst := c.Est.StatsOf(r)
		bound := math.Max(1, rst.Card/distinctOfCols(rst, rbind))
		return drive + c.queryCost(ctx, l, j.LeftCols(), keys*bound, visiting)
	default:
		return math.Inf(1)
	}
}

func sameSchemaCol(s *catalog.Schema, a, b string) bool {
	ia, ea := s.Resolve(a)
	ib, eb := s.Resolve(b)
	return ea == nil && eb == nil && ia == ib
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// EvalCost estimates fully evaluating an equivalence node (used as the
// fallback when no filtered plan exists, and by the single-tree
// heuristic's query-optimality check).
func (c *Costing) EvalCost(e *dag.EqNode, vs ViewSet) float64 {
	return c.evalCostMemo(newCostCtx(vs), e)
}

func (c *Costing) evalCostMemo(ctx *costCtx, e *dag.EqNode) float64 {
	if v, ok := ctx.ememo[e.ID]; ok {
		return v
	}
	v := c.evalCost(ctx, e, map[int]bool{})
	ctx.ememo[e.ID] = v
	return v
}

func (c *Costing) evalCost(ctx *costCtx, e *dag.EqNode, visiting map[int]bool) float64 {
	if ctx.vs.Has(e) {
		return c.Model.Scan(c.Est.StatsOf(e).Card)
	}
	if visiting[e.ID] {
		return math.Inf(1)
	}
	visiting[e.ID] = true
	defer delete(visiting, e.ID)
	best := math.Inf(1)
	for _, op := range e.Ops {
		var sum float64
		for _, ch := range op.Children {
			sum += c.evalCost(ctx, ch, visiting)
		}
		if sum < best {
			best = sum
		}
	}
	if math.IsInf(best, 1) {
		return c.Model.Scan(c.Est.StatsOf(e).Card)
	}
	return best
}

// ViewIndexCols returns the (bare) columns the single hash index of a
// materialized view is built on, mirroring the paper's "assuming that
// each of the materializations has a single index on DName": the first
// grouping column for aggregates, the first join column for joins, the
// child's choice through selections/projections/distinct, the first
// declared index for base relations.
func (c *Costing) ViewIndexCols(e *dag.EqNode) []string {
	return viewIndexCols(c.D, e, map[int]bool{})
}

// ViewIndexCols is the package-level form used by the maintenance runtime
// so the physical index matches the costed one.
func ViewIndexCols(d *dag.DAG, e *dag.EqNode) []string {
	return viewIndexCols(d, e, map[int]bool{})
}

func viewIndexCols(d *dag.DAG, e *dag.EqNode, seen map[int]bool) []string {
	if seen[e.ID] {
		return nil
	}
	seen[e.ID] = true
	if e.IsLeaf() {
		if rel, ok := e.Expr.(*algebra.Rel); ok && len(rel.Def.Indexes) > 0 {
			return bareAll(rel.Def.Indexes[0].Columns)
		}
		return nil
	}
	op := e.Ops[0]
	switch t := op.Template.(type) {
	case *algebra.Aggregate:
		if len(t.GroupBy) > 0 {
			return bareAll(t.GroupBy[:1])
		}
	case *algebra.Join:
		if len(t.On) > 0 {
			return bareAll([]string{t.On[0].Left})
		}
	case *algebra.Select, *algebra.Distinct:
		return viewIndexCols(d, op.Children[0], seen)
	case *algebra.Project:
		cols := viewIndexCols(d, op.Children[0], seen)
		for _, col := range cols {
			if !schemaHasBare(e.Schema(), col) {
				return nil
			}
		}
		return cols
	}
	return nil
}

func schemaHasBare(s *catalog.Schema, bare string) bool {
	for _, c := range s.Cols {
		if c.Name == bare {
			return true
		}
	}
	return false
}

func bareAll(cols []string) []string {
	out := make([]string, 0, len(cols))
	for _, c := range cols {
		b := bareOf(c)
		if !containsStr(out, b) {
			out = append(out, b)
		}
	}
	return out
}

// indexSubset returns the indexed columns usable for a bind, or nil.
// A hash index is usable when its columns are a subset of the bind
// columns (probe with the indexed part, filter the rest for free).
func (c *Costing) indexSubset(e *dag.EqNode, bind []string) []string {
	bareBind := bareAll(bind)
	isSubset := func(cols []string) bool {
		for _, col := range cols {
			if !containsStr(bareBind, bareOf(col)) {
				return false
			}
		}
		return len(cols) > 0
	}
	if e.IsLeaf() {
		if rel, ok := e.Expr.(*algebra.Rel); ok {
			// Prefer the most selective usable index (largest column set).
			var best []string
			for _, ix := range rel.Def.Indexes {
				if isSubset(bareAll(ix.Columns)) {
					if len(ix.Columns) > len(best) {
						best = bareAll(ix.Columns)
					}
				}
			}
			return best
		}
		return nil
	}
	ix := c.ViewIndexCols(e)
	if isSubset(ix) {
		return ix
	}
	return nil
}

// FormatQueries renders query charges for reports, sorted by origin.
func FormatQueries(qs []QueryCharge) string {
	sorted := append([]QueryCharge{}, qs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Origin < sorted[j].Origin })
	var b strings.Builder
	for _, q := range sorted {
		fmt.Fprintf(&b, "  on %s bind(%s) keys=%g cost=%g  [%s]\n",
			q.Target, strings.Join(q.Bind, ","), q.Keys, q.Cost, q.Origin)
	}
	return b.String()
}
