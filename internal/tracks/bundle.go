package tracks

import (
	"math"
	"strconv"

	"repro/internal/dag"
	"repro/internal/txn"
)

// trackBundle is the view-set-independent half of pricing one transaction
// type: the update tracks reaching a given set of affected marked roots,
// each track's delta flows, and the update charge each affected node
// would incur if it were materialized. Track enumeration depends on the
// view set only through its affected marked nodes (enumerateFromRoots),
// and flows never depend on the view set at all (opFlow's invariant), so
// every view set with the same affected marked nodes shares one bundle.
// The branch-and-bound bound path then reduces to summing cached charges,
// and full pricing only recomputes the query side per view set.
//
// A bundle is immutable once published; callers must not mutate the flow
// maps it hands out (TrackCost.Flows aliases them).
type trackBundle struct {
	tracks    []*Track
	truncated bool
	// flows[i] holds track i's delta flow at every affected node,
	// updated leaves included.
	flows []map[int]Flow
	// charges[i][j] is the update charge at tracks[i].Order[j] when that
	// node is materialized.
	charges [][]float64
}

// bundleFor returns the bundle for the view set's affected marked roots,
// building and publishing it on first use. Lookups count toward the
// shared cache statistics: the bundle cache is where the track-costing
// work actually amortizes across the search.
func (c *Costing) bundleFor(vs ViewSet, t *txn.Type) *trackBundle {
	aff := c.affectedOf(t)
	var roots []*dag.EqNode
	for _, e := range c.D.NonLeafEqs() {
		if vs[e.ID] && aff[e.ID] {
			roots = append(roots, e)
		}
	}
	key := make([]byte, 0, len(roots)*4+len(t.Name)+1)
	for _, e := range roots {
		key = strconv.AppendInt(key, int64(e.ID), 10)
		key = append(key, ',')
	}
	key = append(key, '|')
	key = append(key, t.Name...)
	if v, ok := c.bundles.Load(string(key)); ok {
		c.cache.hits.Add(1)
		obsBundleHits.Inc()
		return v.(*trackBundle)
	}
	c.cache.misses.Add(1)
	obsBundleMisses.Inc()
	trs, trunc := enumerateFromRoots(c.D, roots, aff)
	b := &trackBundle{tracks: trs, truncated: trunc}
	ctx := newCostCtx(vs)
	seeds := c.seedsOf(t)
	for _, tr := range trs {
		flows := c.trackDeltaFlows(ctx, tr, seeds)
		ch := make([]float64, len(tr.Order))
		for j, e := range tr.Order {
			f := flows[e.ID]
			dirty := 0
			if f.modsTouch(c.ViewIndexCols(e)) {
				dirty = 1
			}
			ch[j] = c.Model.Update(f.Mods, f.Ins, f.Dels, 1, dirty)
		}
		b.flows = append(b.flows, flows)
		b.charges = append(b.charges, ch)
	}
	// A racing builder computes an identical bundle (all inputs are
	// deterministic); keep whichever published first.
	actual, _ := c.bundles.LoadOrStore(string(key), b)
	return actual.(*trackBundle)
}

// affectedOf memoizes affectedMap per transaction type, keyed by name
// (type definitions are immutable for a Costing's lifetime). The map is
// read-only once published, so concurrent searches share it safely.
func (c *Costing) affectedOf(t *txn.Type) map[int]bool {
	if v, ok := c.affected.Load(t.Name); ok {
		return v.(map[int]bool)
	}
	m := affectedMap(c.D, t.UpdatedRels())
	actual, _ := c.affected.LoadOrStore(t.Name, m)
	return actual.(map[int]bool)
}

// seedsOf memoizes the transaction type's leaf delta flows — the seeds of
// every flow propagation — keyed by name like affectedOf. Read-only once
// published (trackDeltaFlows copies before extending).
func (c *Costing) seedsOf(t *txn.Type) map[int]Flow {
	if v, ok := c.seeds.Load(t.Name); ok {
		return v.(map[int]Flow)
	}
	m := map[int]Flow{}
	for _, e := range c.D.Eqs() {
		if !e.IsLeaf() {
			continue
		}
		if u, ok := t.UpdateOf(e.BaseRel); ok {
			m[e.ID] = leafFlow(u)
		}
	}
	actual, _ := c.seeds.LoadOrStore(t.Name, m)
	return actual.(map[int]Flow)
}

// trackDeltaFlows propagates the transaction's delta along one track,
// starting from the seeded leaf flows and returning the flow at every
// affected node. The result is independent of ctx.vs (the view set gates
// only query generation); queries produced along the way are discarded
// here and rebuilt per view set.
func (c *Costing) trackDeltaFlows(ctx *costCtx, tr *Track, seeds map[int]Flow) map[int]Flow {
	flows := make(map[int]Flow, len(seeds)+len(tr.Order))
	for id, f := range seeds {
		flows[id] = f
	}
	ctx.noQueries = true
	defer func() { ctx.noQueries = false }()
	ctx.trackChoice = tr.Choice
	ctx.trackFlows = flows
	defer func() { ctx.trackChoice, ctx.trackFlows = nil, nil }()
	for _, e := range tr.Order {
		f, _ := c.opFlow(ctx, e, tr.Choice[e.ID], flows)
		flows[e.ID] = f
	}
	return flows
}

// updateCost sums track i's charges over the marked nodes of vs. It
// iterates Order in order and skips exactly the nodes trackUpdateCost
// skips, so the sum is bit-identical to a full costTrack's UpdateCost.
func (b *trackBundle) updateCost(c *Costing, i int, vs ViewSet) float64 {
	var sum float64
	for j, e := range b.tracks[i].Order {
		if !vs[e.ID] {
			continue
		}
		if c.D.IsRoot(e) && !c.CountRootUpdate {
			continue
		}
		sum += b.charges[i][j]
	}
	return sum
}

// minUpdate is the cheapest update-only cost over the bundle's tracks —
// the branch-and-bound lower bound for every superset of vs's marked
// affected nodes (0 when no track charges a marked node).
func (b *trackBundle) minUpdate(c *Costing, vs ViewSet) float64 {
	best := math.Inf(1)
	for i := range b.tracks {
		if u := b.updateCost(c, i, vs); u < best {
			best = u
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}
