package tracks_test

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// obsCacheCounters snapshots every registry counter the cost cache
// mirrors into, so a test can difference before/after values (the
// registry is process-global and other tests in this package also
// drive the cache).
type obsCacheCounters struct {
	setHits, setMisses       int64
	bundleHits, bundleMisses int64
	shardHits, shardMisses   [64]int64
}

func readObsCacheCounters() obsCacheCounters {
	var s obsCacheCounters
	s.setHits = obs.C("tracks.setcost.hits").Value()
	s.setMisses = obs.C("tracks.setcost.misses").Value()
	s.bundleHits = obs.C("tracks.bundle.hits").Value()
	s.bundleMisses = obs.C("tracks.bundle.misses").Value()
	for i := range s.shardHits {
		s.shardHits[i] = obs.C(fmt.Sprintf("tracks.setcost.shard%02d.hits", i)).Value()
		s.shardMisses[i] = obs.C(fmt.Sprintf("tracks.setcost.shard%02d.misses", i)).Value()
	}
	return s
}

// TestObsCacheCountersAddUp drives the shared cost cache over the
// Figure 5 lattice and pins the accounting identities between the
// registry mirrors and the cache's own statistics:
//
//  1. every BestCost call is exactly one SetCost lookup, so the obs
//     hit+miss delta equals the call count;
//  2. the per-shard counters partition the aggregate ones;
//  3. CacheStats (which folds the SetCost and bundle layers) equals the
//     sum of the two layers' obs deltas.
func TestObsCacheCountersAddUp(t *testing.T) {
	db := corpus.Figure5Database(corpus.Figure5Config{Items: 20, RPerItem: 2, SPerItem: 2})
	d, err := dag.FromTree(db.Figure5View(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		t.Fatal(err)
	}
	types := []*txn.Type{
		{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "S", Kind: txn.Insert, Size: 1}}},
	}

	var cands []*dag.EqNode
	for _, e := range d.NonLeafEqs() {
		if !d.IsRoot(e) {
			cands = append(cands, e)
		}
	}
	if len(cands) > 10 {
		cands = cands[:10]
	}

	c := tracks.NewCosting(d, cost.PageIO{})
	before := readObsCacheCounters()
	calls := 0
	// Two passes over the lattice: the first is all misses, the second
	// all hits — both directions of the identity get exercised.
	for pass := 0; pass < 2; pass++ {
		for mask := 0; mask < 1<<len(cands); mask++ {
			vs := tracks.RootSet(d)
			for i, e := range cands {
				if mask&(1<<i) != 0 {
					vs[e.ID] = true
				}
			}
			for _, ty := range types {
				c.BestCost(vs, ty)
				calls++
			}
		}
	}
	after := readObsCacheCounters()

	dSetHits := after.setHits - before.setHits
	dSetMisses := after.setMisses - before.setMisses
	dBundleHits := after.bundleHits - before.bundleHits
	dBundleMisses := after.bundleMisses - before.bundleMisses

	if dSetHits+dSetMisses != int64(calls) {
		t.Errorf("SetCost lookups: hits %d + misses %d != %d BestCost calls",
			dSetHits, dSetMisses, calls)
	}
	if dSetMisses <= 0 || dSetHits <= 0 {
		t.Errorf("expected both hits and misses, got hits=%d misses=%d", dSetHits, dSetMisses)
	}

	var sumShardHits, sumShardMisses int64
	for i := range after.shardHits {
		sumShardHits += after.shardHits[i] - before.shardHits[i]
		sumShardMisses += after.shardMisses[i] - before.shardMisses[i]
	}
	if sumShardHits != dSetHits || sumShardMisses != dSetMisses {
		t.Errorf("shard counters do not partition the aggregate: shards %d/%d, aggregate %d/%d",
			sumShardHits, sumShardMisses, dSetHits, dSetMisses)
	}

	// CacheStats folds both layers; the Costing is fresh, so its totals
	// are exactly the deltas our calls produced.
	hits, misses := c.CacheStats()
	if int64(hits) != dSetHits+dBundleHits || int64(misses) != dSetMisses+dBundleMisses {
		t.Errorf("CacheStats %d/%d != obs layers (set %d/%d + bundle %d/%d)",
			hits, misses, dSetHits, dSetMisses, dBundleHits, dBundleMisses)
	}
}
