package wal

import (
	"bytes"
	"testing"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/value"
)

// FuzzWALDecode drives the segment scanner, the window decoder and the
// checkpoint decoder with arbitrary bytes. The invariants are the
// recovery contract: a decoder returns a clean prefix of valid records
// — it never panics, never reads out of bounds, never invents a record
// past the first corruption, and re-scanning the valid prefix it
// reported yields exactly the same records.
func FuzzWALDecode(f *testing.F) {
	s := testSchema()

	// Seed: a healthy three-record segment.
	l3 := func() []byte {
		dir := f.TempDir()
		l, err := OpenLog(OSFS{}, dir, Options{})
		if err != nil {
			f.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			if _, err := l.CommitWindow(testWindow(s, i), 1); err != nil {
				f.Fatal(err)
			}
		}
		l.Close()
		names, _ := OSFS{}.ReadDir(dir)
		data, _ := OSFS{}.ReadFile(join(dir, names[0]))
		return data
	}()
	f.Add(l3)
	// Truncated tails at several cut points (torn records, torn header).
	for _, cut := range []int{len(l3) - 1, len(l3) - 7, len(l3) / 2, segHeaderLen + 3, segHeaderLen, 8, 0} {
		if cut >= 0 && cut <= len(l3) {
			f.Add(l3[:cut])
		}
	}
	// Corrupt CRC in the last record.
	crcFlip := append([]byte(nil), l3...)
	crcFlip[len(crcFlip)-1] ^= 0x40
	f.Add(crcFlip)
	// Torn multi-record write: valid prefix + garbage.
	f.Add(append(append([]byte(nil), l3...), 0xde, 0xad, 0x00, 0x01))
	// Bad header magic.
	badHdr := append([]byte(nil), l3...)
	badHdr[0] = 'X'
	f.Add(badHdr)
	// A checkpoint image, so the fuzzer explores that decoder too.
	ck := (&Checkpoint{LSN: 3, ViewSetKey: "{N1}", Meta: map[string]string{"k": "v"}}).encode()
	f.Add(ck)

	schemas := func(rel string) (*catalog.Schema, bool) {
		if rel == "T" {
			return s, true
		}
		return nil, false
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		hdrLSN, recs, valid, hdrOK := scanSegment(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid=%d out of [0,%d]", valid, len(data))
		}
		if !hdrOK {
			if valid != 0 || len(recs) != 0 {
				t.Fatalf("invalid header but valid=%d recs=%d", valid, len(recs))
			}
			return
		}
		// LSN continuity within the reported prefix: the scanner must
		// never invent out-of-sequence records.
		for i, r := range recs {
			if r.lsn != hdrLSN+uint64(i) {
				t.Fatalf("record %d has LSN %d, want %d", i, r.lsn, hdrLSN+uint64(i))
			}
		}
		// Prefix stability: scanning exactly the valid prefix the
		// scanner reported yields the same records again.
		h2, recs2, valid2, ok2 := scanSegment(data[:valid])
		if !ok2 || h2 != hdrLSN || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("rescan of valid prefix diverged: ok=%v h=%d valid=%d recs=%d",
				ok2, h2, valid2, len(recs2))
		}
		for i := range recs {
			if !bytes.Equal(recs[i].body, recs2[i].body) {
				t.Fatalf("record %d body diverged on rescan", i)
			}
		}
		// Window decode of surviving bodies must not panic; errors are
		// fine (the fuzzer may synthesize CRC-valid frames).
		for _, r := range recs {
			delta.DecodeWindow(r.body, schemas)
		}
	})
}

// FuzzWALDecodeRaw feeds arbitrary bytes straight into the lower-level
// decoders, which recovery trusts to fail cleanly on any input.
func FuzzWALDecodeRaw(f *testing.F) {
	s := testSchema()
	d := delta.New(s)
	d.Insert(value.Tuple{value.NewInt(9), value.NewString("seed")}, 1)
	f.Add(delta.AppendWindow(nil, delta.Coalesced{{Rel: "T", Delta: d}}))
	f.Add((&Checkpoint{LSN: 1, ViewSetKey: "{}", Meta: nil}).encode())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff})
	schemas := func(rel string) (*catalog.Schema, bool) {
		if rel == "T" {
			return s, true
		}
		return nil, false
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		delta.DecodeWindow(data, schemas)
		decodeCheckpoint(data)
		value.DecodeValue(data)
		delta.DecodeTuple(data)
	})
}
