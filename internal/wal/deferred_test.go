// Deferred-fence mode (Options.DeferredFence): window k's commit fence
// joins window k-1's fsync, so the log write runs under the next
// window's compute. These tests pin the two properties that make the
// relaxation safe: the log a deferred run produces is byte-identical to
// the default fence's (same records, same LSNs — only the fence timing
// moves), and crash recovery still converges to a committed prefix that
// covers every acknowledged window, overshooting by at most the two
// records that can be in flight.
package wal_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/delta"
	"repro/internal/wal"
)

// TestDeferredFenceLogEquivalence runs the same deterministic workload
// with the fence deferred and with the default fence, then compares the
// two logs record by record and the two maintained states bag by bag.
// No checkpoints, so pruning never hides a record.
func TestDeferredFenceLogEquivalence(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	const nWindows, batch = 10, 4

	type sys struct {
		fsys  *wal.FaultFS
		db    *corpus.Database
		acked []uint64
	}
	var systems [2]sys
	var maintainers [2]interface{}
	for i, deferred := range []bool{false, true} {
		fsys := wal.NewFaultFS(42)
		db, _, m := buildFig5(t, cfg, 1, nil)
		acked, err := runDurableOpts(db, m, fsys, crashDir, genWindows(db, cfg, nWindows, batch), 0,
			wal.Options{SegmentBytes: crashSegBytes, DeferredFence: deferred})
		if err != nil {
			t.Fatalf("deferred=%v: %v", deferred, err)
		}
		systems[i] = sys{fsys: fsys, db: db, acked: acked}
		maintainers[i] = m
	}

	// Ack semantics: the default fence acks window k at LSN k; the
	// deferred fence acks window k at window k-1's LSN.
	for i, lsn := range systems[0].acked {
		if lsn != uint64(i+1) {
			t.Fatalf("default fence acked window %d at LSN %d, want %d", i+1, lsn, i+1)
		}
	}
	for i, lsn := range systems[1].acked {
		if lsn != uint64(i) {
			t.Fatalf("deferred fence acked window %d at LSN %d, want %d (previous window)", i+1, lsn, i)
		}
	}

	// The logs must be record-identical: the deferral moves the fence,
	// not the contents.
	records := func(fsys *wal.FaultFS) []wal.Record {
		log, err := wal.OpenLog(fsys, crashDir, wal.Options{SegmentBytes: crashSegBytes})
		if err != nil {
			t.Fatal(err)
		}
		defer log.Close()
		schemas := func(rel string) (*catalog.Schema, bool) {
			td, ok := systems[0].db.Catalog.Get(rel)
			if !ok {
				return nil, false
			}
			return td.Schema, true
		}
		var out []wal.Record
		if err := log.Replay(0, schemas, func(rec wal.Record) error {
			out = append(out, rec)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	def, dfr := records(systems[0].fsys), records(systems[1].fsys)
	if len(def) != len(dfr) {
		t.Fatalf("record count %d (default) vs %d (deferred)", len(def), len(dfr))
	}
	for i := range def {
		if def[i].LSN != dfr[i].LSN || def[i].Txns != dfr[i].Txns {
			t.Fatalf("record %d header: (%d,%d) vs (%d,%d)", i, def[i].LSN, def[i].Txns, dfr[i].LSN, dfr[i].Txns)
		}
		a := delta.AppendWindow(nil, def[i].Window)
		b := delta.AppendWindow(nil, dfr[i].Window)
		if string(a) != string(b) {
			t.Fatalf("record %d window bodies differ", i)
		}
	}
}

// TestDeferredFenceCrashRecoveryEveryPoint is the crash matrix under the
// deferred fence: every mutating filesystem operation of a checkpointed
// deferred run is crashed in turn (torn tails, bit flips), and recovery
// must land within two records of the last acknowledged window — the
// relaxed contract Options.DeferredFence documents.
func TestDeferredFenceCrashRecoveryEveryPoint(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	const nWindows, batch, ckptEvery = 8, 4, 3
	opts := wal.Options{SegmentBytes: crashSegBytes, DeferredFence: true}

	ref := wal.NewFaultFS(1)
	db, _, m := buildFig5(t, cfg, 1, nil)
	acked, err := runDurableOpts(db, m, ref, crashDir, genWindows(db, cfg, nWindows, batch), ckptEvery, opts)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for i, lsn := range acked {
		if lsn != uint64(i) {
			t.Fatalf("window %d acked at LSN %d: deferred fence acks the previous window", i+1, lsn)
		}
	}
	total := ref.Ops()
	if total < nWindows*2 {
		t.Fatalf("suspiciously few fault points: %d", total)
	}
	t.Logf("%d fault-injection points", total)

	stride := 2
	if testing.Short() {
		stride = 7
	}
	for crashAt := 1; crashAt <= total; crashAt += stride {
		crashAt := crashAt
		t.Run(fmt.Sprintf("op%03d", crashAt), func(t *testing.T) {
			fsys := wal.NewFaultFS(uint64(crashAt)*2654435761 + 7)
			fsys.TornTail = true
			fsys.FlipBit = true
			fsys.SetCrashAfter(crashAt)
			t.Cleanup(func() { dumpOnFailure(t, fsys) })
			db, _, m := buildFig5(t, cfg, 1, nil)
			acked, err := runDurableOpts(db, m, fsys, crashDir, genWindows(db, cfg, nWindows, batch), ckptEvery, opts)
			if err == nil {
				t.Fatalf("crash scheduled at op %d never fired", crashAt)
			}
			if !errors.Is(err, wal.ErrCrashed) {
				t.Fatalf("crash surfaced as %v, want wal.ErrCrashed", err)
			}
			fsys.Reboot()
			verifyRecoveryN(t, fsys, crashDir, cfg, 1, nWindows, batch, acked, false, 2)
		})
	}
}
