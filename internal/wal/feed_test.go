package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/value"
)

func feedSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "K", Type: value.String},
		catalog.Column{Name: "V", Type: value.Int},
	)
}

func feedWindow(schema *catalog.Schema, i int) delta.Coalesced {
	d := delta.New(schema)
	d.Insert(value.Tuple{value.NewString("k"), value.NewInt(int64(i))}, 1)
	return delta.Coalesced{{Rel: "view_T", Delta: d}}
}

// TestFeedLogRoundTrip appends records across a reopen and replays them
// back, including rollback compensations (txns=0), which the segment
// format reserves as an invalid frame marker and the feed log must
// therefore bias around.
func TestFeedLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	schema := feedSchema()
	schemas := delta.SchemaSource(func(string) (*catalog.Schema, bool) { return schema, true })

	f, err := OpenFeedLog(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		txns := i
		if i == 2 {
			txns = 0 // a rollback compensation window
		}
		seq, err := f.Append(uint64(i), uint64(100+i), txns, feedWindow(schema, i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f, err = OpenFeedLog(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after reopen = %d, want 3", got)
	}
	if _, err := f.Append(4, 104, 2, feedWindow(schema, 4)); err != nil {
		t.Fatal(err)
	}

	var recs []FeedRecord
	if err := f.Replay(1, schemas, func(r FeedRecord) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replay after=1 returned %d records, want 3", len(recs))
	}
	wantTxns := []int{0, 3, 2}
	for i, r := range recs {
		if r.Seq != uint64(i+2) || r.WindowSeq != uint64(i+2) || r.LSN != uint64(102+i) {
			t.Fatalf("record %d = seq %d window %d lsn %d", i, r.Seq, r.WindowSeq, r.LSN)
		}
		if r.Txns != wantTxns[i] {
			t.Fatalf("record %d txns = %d, want %d", i, r.Txns, wantTxns[i])
		}
		if len(r.Views) != 1 || r.Views[0].Rel != "view_T" || len(r.Views[0].Delta.Changes) != 1 {
			t.Fatalf("record %d views = %+v", i, r.Views)
		}
	}
}

// TestFeedLogTornTail truncates the newest segment mid-frame (a crash
// while an un-fsynced append was in flight) and requires reopen to keep
// the valid prefix and continue the sequence from there.
func TestFeedLogTornTail(t *testing.T) {
	dir := t.TempDir()
	schema := feedSchema()
	schemas := delta.SchemaSource(func(string) (*catalog.Schema, bool) { return schema, true })

	f, err := OpenFeedLog(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := f.Append(uint64(i), uint64(i), 1, feedWindow(schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no feed segments in %s (%v)", dir, err)
	}
	seg := segs[len(segs)-1]
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the last frame: far enough back to destroy it, not far
	// enough to reach the second record.
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	f, err = OpenFeedLog(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.LastSeq(); got != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", got)
	}
	if _, err := f.Append(3, 3, 1, feedWindow(schema, 3)); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := f.Replay(0, schemas, func(r FeedRecord) error {
		seqs = append(seqs, r.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("replay after torn tail = %v, want [1 2 3]", seqs)
	}
}
