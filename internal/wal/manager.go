package wal

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
)

var (
	replayWindows  = obs.C("recovery.replay.windows")
	replayTxns     = obs.C("recovery.replay.txns")
	recomputeViews = obs.C("recovery.recompute.views")
)

// Pipelined-commit overlap accounting: total_ns is wall time each
// window's commit spent encoding/writing/fsyncing on its background
// goroutine; exposed_ns is the part the maintenance pipeline actually
// blocked on at the fence. overlap is the cumulative hidden fraction
// 1 − exposed/total — near 1.0 means the fsync fit entirely under
// propagation and view application.
var (
	obsCommitTotalNs   = obs.C("wal.commit.total_ns")
	obsCommitExposedNs = obs.C("wal.commit.exposed_ns")
	obsCommitOverlap   = obs.G("wal.commit.overlap")
)

// Manager wires the log into a running maintainer: it is the store's
// mutation hook (via a Collector) and the maintainer's Committer, and
// it writes checkpoints. One Manager per maintainer; commits are
// serialized by the maintenance pipeline's window barrier, so Manager
// itself takes no locks beyond the Collector's.
type Manager struct {
	fsys  FS
	dir   string
	opts  Options
	log   *Log
	col   *Collector
	m     *maintain.Maintainer
	cat   *catalog.Catalog
	store *storage.Store

	// Deferred-fence state (Options.DeferredFence). lastJob is the most
	// recently spawned commit; each new commit goroutine chains on its
	// predecessor's done channel, which serializes Log access and makes
	// the pre-assigned LSNs land in order. defSeq is the LSN assigned to
	// lastJob (the log's lastLSN once the chain drains). Both are only
	// touched under the maintenance pipeline's window barrier.
	lastJob *commitJob
	defSeq  uint64

	// coalescer is Commit's recycled window-netting scratch; Commit runs
	// under the window barrier (one window at a time per manager), and
	// its output is consumed synchronously by CommitWindow's encode.
	coalescer delta.Coalescer

	// Recovery statistics, populated by Resume.
	RecoveredLSN    uint64
	ReplayedWindows int
	ReplayedTxns    int
	RecomputedViews int
}

// Attach starts durability for a running, freshly built maintainer: it
// opens the log directory (which must not already hold durable state —
// use Recover for that), writes an initial checkpoint of the current
// base relations and views, and installs the mutation hook and group
// committer. cat must hold exactly the base relations; views are
// derived and never logged.
func Attach(m *maintain.Maintainer, cat *catalog.Catalog, fsys FS, dir string, opts Options) (*Manager, error) {
	if ok, err := HasState(fsys, dir); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("wal: %s already holds durable state; use Recover", dir)
	}
	log, err := OpenLog(fsys, dir, opts)
	if err != nil {
		return nil, err
	}
	mgr := &Manager{
		fsys:  fsys,
		dir:   dir,
		opts:  opts,
		log:   log,
		col:   NewCollector(cat),
		m:     m,
		cat:   cat,
		store: m.Store,
	}
	// The initial checkpoint is the recovery base for crashes that
	// happen before the first explicit checkpoint.
	if err := mgr.Checkpoint(nil); err != nil {
		return nil, err
	}
	mgr.install()
	return mgr, nil
}

func (g *Manager) install() {
	g.store.SetMutationHook(g.col.Hook)
	g.m.Committer = g
}

func (g *Manager) uninstall() {
	g.store.SetMutationHook(nil)
	if g.m.Committer == Committer(g) {
		g.m.Committer = nil
	}
}

// Committer is the maintain.Committer identity of a Manager.
type Committer = maintain.Committer

// Manager commits both ways: legacy drain-and-fsync (Commit) and
// pipelined (BeginWindow).
var _ maintain.WindowCommitter = (*Manager)(nil)

// LastLSN returns the LSN of the last committed window.
func (g *Manager) LastLSN() uint64 { return g.log.LastLSN() }

// Log exposes the underlying log (tests and tools).
func (g *Manager) Log() *Log { return g.log }

// commitJob is one in-flight deferred commit. Goroutines chain on the
// predecessor's done channel (FIFO), so the Log is only ever touched by
// the head of the chain.
type commitJob struct {
	done chan struct{}
	lsn  uint64
	err  error
}

// Sync drains the deferred commit chain: when it returns, every window
// handed to BeginWindow is durable. It reports the last durable LSN and
// the first commit error, if any. A no-op (current LSN) outside
// deferred-fence mode or with nothing in flight.
func (g *Manager) Sync() (uint64, error) {
	if g.lastJob == nil {
		return g.log.LastLSN(), nil
	}
	<-g.lastJob.done
	lsn, err := g.lastJob.lsn, g.lastJob.err
	g.lastJob = nil
	return lsn, err
}

// Commit implements maintain.Committer: it drains the deltas the
// mutation hook staged since the previous commit, coalesces them (an
// applied-then-rolled-back transaction annihilates and is never
// logged), and makes the window durable with one fsync. Empty windows
// write nothing and return the current durability point. In deferred-
// fence mode the in-flight chain is drained first, so an explicit
// Commit is always a full durability point.
func (g *Manager) Commit(txns int) (uint64, error) {
	// Parent the commit span to the window that staged the deltas:
	// Commit is called either on the window's goroutine or on a commit
	// goroutine the window spawned and joins before returning, so the
	// read is ordered with the window-start write.
	sp := obs.Trace.Start("wal.commit", g.m.WindowSpanID())
	defer sp.Finish()
	if lsn, err := g.Sync(); err != nil {
		return lsn, err
	}
	staged := g.col.Drain()
	w := g.coalescer.Coalesce([]map[string]*delta.Delta{staged})
	if len(w) == 0 {
		return g.log.LastLSN(), nil
	}
	return g.log.CommitWindow(w, txns)
}

// BeginWindow implements maintain.WindowCommitter: it starts making the
// window durable from its already-coalesced net base deltas on a
// background goroutine, so the encode/write/fsync runs under the
// window's propagation and view application instead of extending it.
// The collector is suspended for the duration — the window's base
// applies must not be staged again, or the next commit would log them
// twice — and re-armed when the returned wait fires.
//
// Durability contract: wait is the commit fence; the caller must block
// on it before acknowledging the window, so ack still implies durable.
// A crash after the background fsync but before the ack leaves the log
// one window ahead of the acknowledged state; recovery then lands on
// lastAcked+1, which the recovery contract allows (the window was fully
// intended and its record is self-consistent).
//
// In deferred-fence mode (Options.DeferredFence) the fence is relaxed
// by one window: wait joins the PREVIOUS window's commit, so this
// window's fsync runs under the NEXT window's coalesce and propagation.
// See Options.DeferredFence for the weakened ack contract.
func (g *Manager) BeginWindow(w delta.Coalesced, txns int) func() (uint64, error) {
	if g.opts.DeferredFence {
		return g.beginWindowDeferred(w, txns)
	}
	sp := obs.Trace.Start("wal.commit", g.m.WindowSpanID())
	g.col.Suspend()
	type result struct {
		lsn uint64
		err error
	}
	t0 := time.Now()
	done := make(chan result, 1)
	go func() {
		var r result
		if len(w) == 0 {
			r.lsn = g.log.LastLSN()
		} else {
			r.lsn, r.err = g.log.CommitWindow(w, txns)
		}
		done <- r
	}()
	return func() (uint64, error) {
		tw := time.Now()
		r := <-done
		end := time.Now()
		g.col.Resume()
		sp.Finish()
		total := end.Sub(t0).Nanoseconds()
		exposed := end.Sub(tw).Nanoseconds()
		obsCommitTotalNs.Add(total)
		obsCommitExposedNs.Add(exposed)
		if t, e := obsCommitTotalNs.Value(), obsCommitExposedNs.Value(); t > 0 {
			obsCommitOverlap.Set(1 - float64(e)/float64(t))
		}
		return r.lsn, r.err
	}
}

// beginWindowDeferred is BeginWindow under Options.DeferredFence.
// The window payload is encoded synchronously — its deltas alias the
// maintainer's window arena, which resets when the next window opens,
// so only the encoded bytes may outlive the call (~120 B/record on the
// paper workload; trivial next to the fsync it frees). The commit
// goroutine chains on its predecessor, keeping Log access serialized
// and LSNs in order; the returned wait joins the PREVIOUS window's
// commit and reports its LSN (0 before the first commit lands).
func (g *Manager) beginWindowDeferred(w delta.Coalesced, txns int) func() (uint64, error) {
	// The parent is captured NOW, under the window barrier: the chained
	// goroutine below outlives this window's body (it drains under the
	// next window), so it must carry its originating window's root span,
	// not whatever window is current when it finally runs.
	parent := g.m.WindowSpanID()
	sp := obs.Trace.Start("wal.commit", parent)
	g.col.Suspend()
	prev := g.lastJob
	var durable uint64
	if prev == nil {
		// Chain drained (first window, or a Commit/Checkpoint/Sync just
		// ran): the log tip is the durability point the fence reports.
		// Safe to read here — no commit goroutine is alive.
		durable = g.log.LastLSN()
		g.defSeq = durable
	}
	if len(w) > 0 {
		g.defSeq++
		job := &commitJob{done: make(chan struct{}), lsn: g.defSeq}
		payload := encodeWindowPayload(job.lsn, txns, w)
		go func() {
			if prev != nil {
				<-prev.done
				if prev.err != nil {
					// A broken chain stays broken: the log's tail shape is
					// unknown after a failed write, so later windows must
					// not land.
					job.err = prev.err
					close(job.done)
					return
				}
			}
			// The chained span covers only this window's own write+fsync
			// (queueing behind the predecessor is the chain's pipelining,
			// not this window's cost) and parents to the window that
			// staged the payload.
			csp := obs.Trace.Start("wal.commit.chained", parent)
			_, job.err = g.log.commitPreEncoded(payload, job.lsn)
			csp.Finish()
			close(job.done)
		}()
		g.lastJob = job
	}
	return func() (uint64, error) {
		g.col.Resume()
		sp.Finish()
		if prev == nil {
			return durable, nil
		}
		<-prev.done
		return prev.lsn, prev.err
	}
}

// Checkpoint durably snapshots the base relations and every
// materialized view (with its sidecar and expression fingerprint) as of
// the last committed LSN, then prunes log segments the snapshot covers.
// extra is merged over the manager's standing Options.Meta.
func (g *Manager) Checkpoint(extra map[string]string) error {
	sp := obs.Trace.Start("wal.checkpoint", 0)
	defer sp.Finish()
	// A checkpoint must cover every window handed to the committer, and
	// the snapshot below reads the log tip: drain the deferred chain.
	if _, err := g.Sync(); err != nil {
		return err
	}
	meta := map[string]string{}
	for k, v := range g.opts.Meta {
		meta[k] = v
	}
	for k, v := range extra {
		meta[k] = v
	}
	c := &Checkpoint{
		LSN:        g.log.LastLSN(),
		ViewSetKey: g.m.VS.Key(),
		Meta:       meta,
	}
	for _, name := range g.cat.Names() {
		r, ok := g.store.Get(name)
		if !ok {
			return fmt.Errorf("wal: checkpoint: unknown relation %q", name)
		}
		c.Rels = append(c.Rels, RelSnapshot{Name: name, Rows: r.Snapshot()})
	}
	for name, vs := range g.m.ViewStates() {
		c.Views = append(c.Views, ViewSnapshot{
			Name:        name,
			Fingerprint: vs.Fingerprint,
			Rows:        vs.Rows,
			Live:        vs.Live,
			Stale:       vs.Stale,
		})
	}
	sortViews(c.Views)
	if err := WriteCheckpoint(g.fsys, g.dir, c); err != nil {
		return err
	}
	obs.Flight().Record(obs.EvCheckpoint, 0, c.LSN, 0, 0)
	return g.log.Prune(c.LSN)
}

func sortViews(vs []ViewSnapshot) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Name < vs[j-1].Name; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// Close uninstalls the hook and committer and releases the log handle.
// The directory remains recoverable.
func (g *Manager) Close() error {
	g.uninstall()
	_, syncErr := g.Sync()
	if err := g.log.Close(); err != nil {
		return err
	}
	return syncErr
}

// HasState reports whether dir holds any durable state (segments or
// checkpoints).
func HasState(fsys FS, dir string) (bool, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if isNotExist(err) {
			return false, nil
		}
		return false, err
	}
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			return true, nil
		}
		if _, ok := parseCkptName(n); ok {
			return true, nil
		}
	}
	return false, nil
}

// ReadMeta returns the newest checkpoint's metadata without touching
// any other state — callers use it to rebuild the catalog (e.g. from
// persisted DDL) before starting recovery proper.
func ReadMeta(fsys FS, dir string) (map[string]string, error) {
	c, err := LatestCheckpoint(fsys, dir)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("wal: %s holds no checkpoint", dir)
	}
	return c.Meta, nil
}

// Recovery is the two-phase recovery handle: BeginRecovery restores the
// base relations from the newest checkpoint; the caller then rebuilds
// its DAG and view set against the restored bases and calls Resume with
// the new maintainer, which loads checkpointed views, replays the log
// tail through the incremental pipeline, and re-arms durability.
type Recovery struct {
	fsys  FS
	dir   string
	ckpt  *Checkpoint
	cat   *catalog.Catalog
	store *storage.Store

	recomputed int
}

// BeginRecovery opens the newest checkpoint in dir and restores every
// checkpointed base relation into store (which must already hold
// relations of the same names and schemas, typically rebuilt from DDL).
func BeginRecovery(cat *catalog.Catalog, store *storage.Store, fsys FS, dir string) (*Recovery, error) {
	ckpt, err := LatestCheckpoint(fsys, dir)
	if err != nil {
		return nil, err
	}
	if ckpt == nil {
		return nil, fmt.Errorf("wal: %s holds no checkpoint", dir)
	}
	for _, rs := range ckpt.Rels {
		r, ok := store.Get(rs.Name)
		if !ok {
			return nil, fmt.Errorf("wal: recovery: relation %q not in store", rs.Name)
		}
		r.Restore(rs.Rows)
		r.RefreshStats()
	}
	return &Recovery{fsys: fsys, dir: dir, ckpt: ckpt, cat: cat, store: store}, nil
}

// Meta returns the checkpoint's metadata.
func (r *Recovery) Meta() map[string]string { return r.ckpt.Meta }

// CheckpointLSN returns the LSN the restored snapshot is consistent as of.
func (r *Recovery) CheckpointLSN() uint64 { return r.ckpt.LSN }

// ViewSetKey returns the view-set key recorded in the checkpoint.
func (r *Recovery) ViewSetKey() string { return r.ckpt.ViewSetKey }

// RestoreOptions returns the maintain.RestoreOptions that seed view
// materialization from the checkpoint: pass it to maintain.NewRestored
// (or through the system builder). Views missing from the checkpoint or
// with stale fingerprints fall back to recomputation and are counted.
func (r *Recovery) RestoreOptions() maintain.RestoreOptions {
	byName := make(map[string]*ViewSnapshot, len(r.ckpt.Views))
	for i := range r.ckpt.Views {
		byName[r.ckpt.Views[i].Name] = &r.ckpt.Views[i]
	}
	return maintain.RestoreOptions{
		Source: func(name string) (*maintain.ViewState, bool) {
			v, ok := byName[name]
			if !ok {
				return nil, false
			}
			return &maintain.ViewState{
				Fingerprint: v.Fingerprint,
				Rows:        v.Rows,
				Live:        v.Live,
				Stale:       v.Stale,
			}, true
		},
		OnRecompute: func(name string) {
			r.recomputed++
			recomputeViews.Inc()
		},
	}
}

// Resume replays the committed log tail (records after the checkpoint
// LSN) through m.ApplyBatch — recovery IS incremental maintenance: each
// window's deltas propagate along the normal update tracks instead of
// views being recomputed — then installs the hook and committer and
// returns the re-armed Manager.
func (r *Recovery) Resume(m *maintain.Maintainer, opts Options) (*Manager, error) {
	sp := obs.Trace.Start("recovery.replay", 0)
	defer sp.Finish()
	log, err := OpenLog(r.fsys, r.dir, opts)
	if err != nil {
		return nil, err
	}
	if log.LastLSN() < r.ckpt.LSN {
		return nil, fmt.Errorf("wal: log tip %d behind checkpoint %d", log.LastLSN(), r.ckpt.LSN)
	}
	mgr := &Manager{
		fsys:            r.fsys,
		dir:             r.dir,
		opts:            opts,
		log:             log,
		col:             NewCollector(r.cat),
		m:               m,
		cat:             r.cat,
		store:           m.Store,
		RecomputedViews: r.recomputed,
	}
	// Replayed windows parent under the recovery span, so a recovery
	// trace is connected just like a live window trace.
	m.SetSpanParent(sp.ID())
	defer m.SetSpanParent(0)
	expect := r.ckpt.LSN
	err = log.Replay(r.ckpt.LSN, mgr.col.Schema, func(rec Record) error {
		if rec.LSN != expect+1 {
			return fmt.Errorf("wal: replay gap: got %d, want %d", rec.LSN, expect+1)
		}
		expect = rec.LSN
		updates := make(map[string]*delta.Delta, len(rec.Window))
		for _, rd := range rec.Window {
			updates[rd.Rel] = rd.Delta
		}
		if _, err := m.ApplyBatch([]txn.Transaction{{Updates: updates}}); err != nil {
			return fmt.Errorf("wal: replay record %d: %w", rec.LSN, err)
		}
		mgr.ReplayedWindows++
		mgr.ReplayedTxns += rec.Txns
		return nil
	})
	if err != nil {
		return nil, err
	}
	replayWindows.Add(int64(mgr.ReplayedWindows))
	replayTxns.Add(int64(mgr.ReplayedTxns))
	mgr.RecoveredLSN = log.LastLSN()
	obs.Flight().Record(obs.EvRecovery, 0, mgr.RecoveredLSN, uint64(mgr.ReplayedWindows), 0)
	mgr.install()
	return mgr, nil
}
