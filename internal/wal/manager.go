package wal

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
)

var (
	replayWindows  = obs.C("recovery.replay.windows")
	replayTxns     = obs.C("recovery.replay.txns")
	recomputeViews = obs.C("recovery.recompute.views")
)

// Manager wires the log into a running maintainer: it is the store's
// mutation hook (via a Collector) and the maintainer's Committer, and
// it writes checkpoints. One Manager per maintainer; commits are
// serialized by the maintenance pipeline's window barrier, so Manager
// itself takes no locks beyond the Collector's.
type Manager struct {
	fsys  FS
	dir   string
	opts  Options
	log   *Log
	col   *Collector
	m     *maintain.Maintainer
	cat   *catalog.Catalog
	store *storage.Store

	// Recovery statistics, populated by Resume.
	RecoveredLSN    uint64
	ReplayedWindows int
	ReplayedTxns    int
	RecomputedViews int
}

// Attach starts durability for a running, freshly built maintainer: it
// opens the log directory (which must not already hold durable state —
// use Recover for that), writes an initial checkpoint of the current
// base relations and views, and installs the mutation hook and group
// committer. cat must hold exactly the base relations; views are
// derived and never logged.
func Attach(m *maintain.Maintainer, cat *catalog.Catalog, fsys FS, dir string, opts Options) (*Manager, error) {
	if ok, err := HasState(fsys, dir); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("wal: %s already holds durable state; use Recover", dir)
	}
	log, err := OpenLog(fsys, dir, opts)
	if err != nil {
		return nil, err
	}
	mgr := &Manager{
		fsys:  fsys,
		dir:   dir,
		opts:  opts,
		log:   log,
		col:   NewCollector(cat),
		m:     m,
		cat:   cat,
		store: m.Store,
	}
	// The initial checkpoint is the recovery base for crashes that
	// happen before the first explicit checkpoint.
	if err := mgr.Checkpoint(nil); err != nil {
		return nil, err
	}
	mgr.install()
	return mgr, nil
}

func (g *Manager) install() {
	g.store.SetMutationHook(g.col.Hook)
	g.m.Committer = g
}

func (g *Manager) uninstall() {
	g.store.SetMutationHook(nil)
	if g.m.Committer == Committer(g) {
		g.m.Committer = nil
	}
}

// Committer is the maintain.Committer identity of a Manager.
type Committer = maintain.Committer

// LastLSN returns the LSN of the last committed window.
func (g *Manager) LastLSN() uint64 { return g.log.LastLSN() }

// Log exposes the underlying log (tests and tools).
func (g *Manager) Log() *Log { return g.log }

// Commit implements maintain.Committer: it drains the deltas the
// mutation hook staged since the previous commit, coalesces them (an
// applied-then-rolled-back transaction annihilates and is never
// logged), and makes the window durable with one fsync. Empty windows
// write nothing and return the current durability point.
func (g *Manager) Commit(txns int) (uint64, error) {
	sp := obs.Trace.Start("wal.commit", 0)
	defer sp.Finish()
	staged := g.col.Drain()
	w := delta.Coalesce([]map[string]*delta.Delta{staged})
	if len(w) == 0 {
		return g.log.LastLSN(), nil
	}
	return g.log.CommitWindow(w, txns)
}

// Checkpoint durably snapshots the base relations and every
// materialized view (with its sidecar and expression fingerprint) as of
// the last committed LSN, then prunes log segments the snapshot covers.
// extra is merged over the manager's standing Options.Meta.
func (g *Manager) Checkpoint(extra map[string]string) error {
	sp := obs.Trace.Start("wal.checkpoint", 0)
	defer sp.Finish()
	meta := map[string]string{}
	for k, v := range g.opts.Meta {
		meta[k] = v
	}
	for k, v := range extra {
		meta[k] = v
	}
	c := &Checkpoint{
		LSN:        g.log.LastLSN(),
		ViewSetKey: g.m.VS.Key(),
		Meta:       meta,
	}
	for _, name := range g.cat.Names() {
		r, ok := g.store.Get(name)
		if !ok {
			return fmt.Errorf("wal: checkpoint: unknown relation %q", name)
		}
		c.Rels = append(c.Rels, RelSnapshot{Name: name, Rows: r.Snapshot()})
	}
	for name, vs := range g.m.ViewStates() {
		c.Views = append(c.Views, ViewSnapshot{
			Name:        name,
			Fingerprint: vs.Fingerprint,
			Rows:        vs.Rows,
			Live:        vs.Live,
			Stale:       vs.Stale,
		})
	}
	sortViews(c.Views)
	if err := WriteCheckpoint(g.fsys, g.dir, c); err != nil {
		return err
	}
	return g.log.Prune(c.LSN)
}

func sortViews(vs []ViewSnapshot) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Name < vs[j-1].Name; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// Close uninstalls the hook and committer and releases the log handle.
// The directory remains recoverable.
func (g *Manager) Close() error {
	g.uninstall()
	return g.log.Close()
}

// HasState reports whether dir holds any durable state (segments or
// checkpoints).
func HasState(fsys FS, dir string) (bool, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if isNotExist(err) {
			return false, nil
		}
		return false, err
	}
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			return true, nil
		}
		if _, ok := parseCkptName(n); ok {
			return true, nil
		}
	}
	return false, nil
}

// ReadMeta returns the newest checkpoint's metadata without touching
// any other state — callers use it to rebuild the catalog (e.g. from
// persisted DDL) before starting recovery proper.
func ReadMeta(fsys FS, dir string) (map[string]string, error) {
	c, err := LatestCheckpoint(fsys, dir)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("wal: %s holds no checkpoint", dir)
	}
	return c.Meta, nil
}

// Recovery is the two-phase recovery handle: BeginRecovery restores the
// base relations from the newest checkpoint; the caller then rebuilds
// its DAG and view set against the restored bases and calls Resume with
// the new maintainer, which loads checkpointed views, replays the log
// tail through the incremental pipeline, and re-arms durability.
type Recovery struct {
	fsys  FS
	dir   string
	ckpt  *Checkpoint
	cat   *catalog.Catalog
	store *storage.Store

	recomputed int
}

// BeginRecovery opens the newest checkpoint in dir and restores every
// checkpointed base relation into store (which must already hold
// relations of the same names and schemas, typically rebuilt from DDL).
func BeginRecovery(cat *catalog.Catalog, store *storage.Store, fsys FS, dir string) (*Recovery, error) {
	ckpt, err := LatestCheckpoint(fsys, dir)
	if err != nil {
		return nil, err
	}
	if ckpt == nil {
		return nil, fmt.Errorf("wal: %s holds no checkpoint", dir)
	}
	for _, rs := range ckpt.Rels {
		r, ok := store.Get(rs.Name)
		if !ok {
			return nil, fmt.Errorf("wal: recovery: relation %q not in store", rs.Name)
		}
		r.Restore(rs.Rows)
		r.RefreshStats()
	}
	return &Recovery{fsys: fsys, dir: dir, ckpt: ckpt, cat: cat, store: store}, nil
}

// Meta returns the checkpoint's metadata.
func (r *Recovery) Meta() map[string]string { return r.ckpt.Meta }

// CheckpointLSN returns the LSN the restored snapshot is consistent as of.
func (r *Recovery) CheckpointLSN() uint64 { return r.ckpt.LSN }

// ViewSetKey returns the view-set key recorded in the checkpoint.
func (r *Recovery) ViewSetKey() string { return r.ckpt.ViewSetKey }

// RestoreOptions returns the maintain.RestoreOptions that seed view
// materialization from the checkpoint: pass it to maintain.NewRestored
// (or through the system builder). Views missing from the checkpoint or
// with stale fingerprints fall back to recomputation and are counted.
func (r *Recovery) RestoreOptions() maintain.RestoreOptions {
	byName := make(map[string]*ViewSnapshot, len(r.ckpt.Views))
	for i := range r.ckpt.Views {
		byName[r.ckpt.Views[i].Name] = &r.ckpt.Views[i]
	}
	return maintain.RestoreOptions{
		Source: func(name string) (*maintain.ViewState, bool) {
			v, ok := byName[name]
			if !ok {
				return nil, false
			}
			return &maintain.ViewState{
				Fingerprint: v.Fingerprint,
				Rows:        v.Rows,
				Live:        v.Live,
				Stale:       v.Stale,
			}, true
		},
		OnRecompute: func(name string) {
			r.recomputed++
			recomputeViews.Inc()
		},
	}
}

// Resume replays the committed log tail (records after the checkpoint
// LSN) through m.ApplyBatch — recovery IS incremental maintenance: each
// window's deltas propagate along the normal update tracks instead of
// views being recomputed — then installs the hook and committer and
// returns the re-armed Manager.
func (r *Recovery) Resume(m *maintain.Maintainer, opts Options) (*Manager, error) {
	sp := obs.Trace.Start("recovery.replay", 0)
	defer sp.Finish()
	log, err := OpenLog(r.fsys, r.dir, opts)
	if err != nil {
		return nil, err
	}
	if log.LastLSN() < r.ckpt.LSN {
		return nil, fmt.Errorf("wal: log tip %d behind checkpoint %d", log.LastLSN(), r.ckpt.LSN)
	}
	mgr := &Manager{
		fsys:            r.fsys,
		dir:             r.dir,
		opts:            opts,
		log:             log,
		col:             NewCollector(r.cat),
		m:               m,
		cat:             r.cat,
		store:           m.Store,
		RecomputedViews: r.recomputed,
	}
	expect := r.ckpt.LSN
	err = log.Replay(r.ckpt.LSN, mgr.col.Schema, func(rec Record) error {
		if rec.LSN != expect+1 {
			return fmt.Errorf("wal: replay gap: got %d, want %d", rec.LSN, expect+1)
		}
		expect = rec.LSN
		updates := make(map[string]*delta.Delta, len(rec.Window))
		for _, rd := range rec.Window {
			updates[rd.Rel] = rd.Delta
		}
		if _, err := m.ApplyBatch([]txn.Transaction{{Updates: updates}}); err != nil {
			return fmt.Errorf("wal: replay record %d: %w", rec.LSN, err)
		}
		mgr.ReplayedWindows++
		mgr.ReplayedTxns += rec.Txns
		return nil
	})
	if err != nil {
		return nil, err
	}
	replayWindows.Add(int64(mgr.ReplayedWindows))
	replayTxns.Add(int64(mgr.ReplayedTxns))
	mgr.RecoveredLSN = log.LastLSN()
	mgr.install()
	return mgr, nil
}
