//go:build linux

package wal

import (
	"os"
	"syscall"
)

// preallocate reserves size bytes of extents for f without changing its
// length (fallocate FALLOC_FL_KEEP_SIZE), so later appends land in
// already-allocated blocks and their fsync skips extent allocation.
// Failure is ignored: the filesystem may not support fallocate, and the
// log is correct (just slower) without the reservation.
func preallocate(f *os.File, size int64) {
	const fallocFlKeepSize = 0x01
	_ = syscall.Fallocate(int(f.Fd()), fallocFlKeepSize, 0, size)
}
