// Black-box post-mortem: a subprocess runs a durable workload with an
// mmap-backed flight recorder, is SIGKILLed mid-run, and the parent
// cross-checks the surviving flight image against the WAL the killed
// process left behind. The recorder's ordering contract (fsync-start
// before the record's bytes reach the filesystem, fsync-done only after
// fsync returns) pins the recovered LSN between the image's last done
// and last start events.
package wal_test

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/wal"
)

var flightKillCfg = corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}

// TestFlightKillHelper is the subprocess body: it only runs when
// re-exec'd by TestFlightKillDump with FLIGHT_KILL_HELPER=1.
func TestFlightKillHelper(t *testing.T) {
	if os.Getenv("FLIGHT_KILL_HELPER") != "1" {
		t.Skip("subprocess helper; driven by TestFlightKillDump")
	}
	dir := os.Getenv("FLIGHT_KILL_DIR")
	f, err := obs.OpenFlightFile(filepath.Join(dir, "flight.bin"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetFlight(f)
	db, _, m := buildFig5(t, flightKillCfg, 1, nil)
	if _, err := wal.Attach(m, db.Catalog, wal.OSFS{}, filepath.Join(dir, "wal"),
		wal.Options{SegmentBytes: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	// Enough windows that the parent's kill lands mid-run: each window
	// fsyncs, so this loop takes seconds.
	windows := genWindows(db, flightKillCfg, 4096, 8)
	for i, w := range windows {
		if _, err := m.ApplyBatch(w); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			fmt.Println("FLIGHT_HELPER_READY")
		}
	}
}

func TestFlightKillDump(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("kill-surviving flight file needs the linux mmap backing")
	}
	if os.Getenv("FLIGHT_KILL_HELPER") == "1" {
		t.Skip("inside helper")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestFlightKillHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "FLIGHT_KILL_HELPER=1", "FLIGHT_KILL_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(stdout)
	ready := make(chan error, 1)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if strings.Contains(line, "FLIGHT_HELPER_READY") {
				ready <- nil
				return
			}
			if err != nil {
				ready <- fmt.Errorf("helper exited before ready: %w", err)
				return
			}
		}
	}()
	select {
	case err := <-ready:
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("helper not ready within 60s")
	}
	go io.Copy(io.Discard, br) // keep the pipe drained until the kill
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	// The mmap'd image must decode despite the hard kill.
	data, err := os.ReadFile(filepath.Join(dir, "flight.bin"))
	if err != nil {
		t.Fatal(err)
	}
	evs, _, err := obs.DecodeFlight(data)
	if err != nil {
		t.Fatalf("flight image left by killed process does not decode: %v", err)
	}
	var maxStart, maxDone, windowsOpened uint64
	for _, e := range evs {
		switch e.Type {
		case obs.EvFsyncStart:
			if e.A > maxStart {
				maxStart = e.A
			}
		case obs.EvFsyncDone:
			if e.A > maxDone {
				maxDone = e.A
			}
		case obs.EvWindowOpen:
			windowsOpened++
		}
	}
	if windowsOpened == 0 || maxStart == 0 {
		t.Fatalf("flight image missing expected events: %d windows, maxStart %d (%d events)",
			windowsOpened, maxStart, len(evs))
	}

	// Recover the WAL the killed process left and pin its tip against
	// the black box: every fsync the recorder saw complete is durable,
	// and nothing can be durable whose write did not at least follow a
	// recorded start — except the one record that may have been written
	// between its write() and its start event landing (SIGKILL preserves
	// completed writes without any fsync), hence the +1.
	db2 := corpus.Figure5Database(flightKillCfg)
	rec, err := wal.BeginRecovery(db2.Catalog, db2.Store, wal.OSFS{}, filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	ro := rec.RestoreOptions()
	_, m2 := buildOn(t, db2, 1, &ro)
	mgr, err := rec.Resume(m2, wal.Options{SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	recovered := mgr.RecoveredLSN
	t.Logf("flight: %d events, %d windows opened, fsync start<=%d done<=%d; recovered LSN %d",
		len(evs), windowsOpened, maxStart, maxDone, recovered)
	if recovered < maxDone {
		t.Fatalf("recovered LSN %d behind last recorded fsync-done %d: durable commit lost", recovered, maxDone)
	}
	if recovered > maxStart+1 {
		t.Fatalf("recovered LSN %d ahead of last recorded fsync-start %d+1: flight recorder missed commits", recovered, maxStart)
	}
}
