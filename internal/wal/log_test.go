package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/storage"
	"repro/internal/value"
)

func testSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Qualifier: "T", Name: "k"},
		catalog.Column{Qualifier: "T", Name: "v"},
	)
}

func testSchemas(s *catalog.Schema) delta.SchemaSource {
	return func(rel string) (*catalog.Schema, bool) { return s, rel == "T" }
}

func testWindow(s *catalog.Schema, i int) delta.Coalesced {
	d := delta.New(s)
	d.Insert(value.Tuple{value.NewInt(int64(i)), value.NewString("row")}, 1)
	if i%2 == 0 {
		d.Delete(value.Tuple{value.NewInt(int64(i - 100)), value.NewString("old")}, 1)
	}
	return delta.Coalesced{{Rel: "T", Delta: d}}
}

func replayAll(t *testing.T, fsys FS, dir string, s *catalog.Schema, after uint64) []Record {
	t.Helper()
	l, err := OpenLog(fsys, dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var recs []Record
	if err := l.Replay(after, testSchemas(s), func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := testSchema()
	l, err := OpenLog(OSFS{}, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 1; i <= n; i++ {
		lsn, err := l.CommitWindow(testWindow(s, i), i)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn %d, want %d", lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, OSFS{}, dir, s, 0)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Txns != i+1 {
			t.Fatalf("record %d: LSN %d Txns %d", i, r.LSN, r.Txns)
		}
		if len(r.Window) != 1 || r.Window[0].Rel != "T" {
			t.Fatalf("record %d: bad window %+v", i, r.Window)
		}
	}
	// Replay(after) skips the prefix.
	if got := replayAll(t, OSFS{}, dir, s, 7); len(got) != 3 || got[0].LSN != 8 {
		t.Fatalf("after=7 replayed %d records", len(got))
	}
}

func TestLogRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	s := testSchema()
	// Tiny segments force a rotation every couple of records.
	l, err := OpenLog(OSFS{}, dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 1; i <= n; i++ {
		if _, err := l.CommitWindow(testWindow(s, i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(l.segs))
	}
	segsBefore := len(l.segs)
	if err := l.Prune(8); err != nil {
		t.Fatal(err)
	}
	if len(l.segs) >= segsBefore {
		t.Fatalf("prune removed nothing (%d segments)", len(l.segs))
	}
	l.Close()
	recs := replayAll(t, OSFS{}, dir, s, 8)
	if len(recs) != n-8 || recs[0].LSN != 9 {
		t.Fatalf("post-prune replay after 8: %d records, first %d", len(recs), recs[0].LSN)
	}
	// The log keeps accepting appends after reopen.
	l2, err := OpenLog(OSFS{}, dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastLSN() != n {
		t.Fatalf("reopened LastLSN %d, want %d", l2.LastLSN(), n)
	}
	if lsn, err := l2.CommitWindow(testWindow(s, 99), 1); err != nil || lsn != n+1 {
		t.Fatalf("append after reopen: lsn %d err %v", lsn, err)
	}
	l2.Close()
}

// TestLogTornTailTruncated corrupts the physical tail and checks the
// scanner recovers exactly the committed prefix.
func TestLogTornTailTruncated(t *testing.T) {
	s := testSchema()
	for _, tc := range []struct {
		name string
		muck func(path string, t *testing.T)
		want int // records surviving out of 5
	}{
		{"truncated-mid-record", func(p string, t *testing.T) {
			data, _ := os.ReadFile(p)
			os.WriteFile(p, data[:len(data)-3], 0o644)
		}, 4},
		{"garbage-appended", func(p string, t *testing.T) {
			f, _ := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
			f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
			f.Close()
		}, 5},
		{"crc-flip-last-record", func(p string, t *testing.T) {
			data, _ := os.ReadFile(p)
			data[len(data)-1] ^= 0x01
			os.WriteFile(p, data, 0o644)
		}, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := OpenLog(OSFS{}, dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 5; i++ {
				if _, err := l.CommitWindow(testWindow(s, i), 1); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			names, _ := OSFS{}.ReadDir(dir)
			if len(names) != 1 {
				t.Fatalf("expected 1 segment, got %v", names)
			}
			tc.muck(filepath.Join(dir, names[0]), t)
			recs := replayAll(t, OSFS{}, dir, s, 0)
			if len(recs) != tc.want {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.want)
			}
			for i, r := range recs {
				if r.LSN != uint64(i+1) {
					t.Fatalf("record %d has LSN %d", i, r.LSN)
				}
			}
			// The scanner truncated the tail, so a fresh writer appends
			// cleanly right after the committed prefix.
			l2, err := OpenLog(OSFS{}, dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if lsn, err := l2.CommitWindow(testWindow(s, 50), 1); err != nil || lsn != uint64(tc.want+1) {
				t.Fatalf("append after repair: lsn %d err %v", lsn, err)
			}
			l2.Close()
		})
	}
}

// TestLogTornSegmentHeader drops a segment whose header never became
// durable, plus everything after it.
func TestLogTornSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	s := testSchema()
	l, err := OpenLog(OSFS{}, dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := l.CommitWindow(testWindow(s, i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(l.segs))
	}
	lastSeg := l.segs[len(l.segs)-1]
	prevLast := lastSeg.firstLSN - 1
	l.Close()
	// Corrupt the last segment's header magic.
	p := filepath.Join(dir, lastSeg.name)
	data, _ := os.ReadFile(p)
	data[0] ^= 0xFF
	os.WriteFile(p, data, 0o644)

	l2, err := OpenLog(OSFS{}, dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastLSN() != prevLast {
		t.Fatalf("LastLSN %d, want %d", l2.LastLSN(), prevLast)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment not removed: %v", err)
	}
	l2.Close()
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := &Checkpoint{
		LSN:        7,
		ViewSetKey: "{N1,N2}",
		Meta:       map[string]string{"ddl": "CREATE TABLE T (k INT, v TEXT)"},
		Rels: []RelSnapshot{{
			Name: "T",
			Rows: []storage.Row{{Tuple: value.Tuple{value.NewInt(1), value.NewString("x")}, Count: 2}},
		}},
		Views: []ViewSnapshot{{
			Name:        "view_N3",
			Fingerprint: "agg(sum)",
			Rows:        []storage.Row{{Tuple: value.Tuple{value.NewString("g"), value.NewInt(10)}, Count: 1}},
			Live:        map[string]int64{"g1": 3},
			Stale:       []string{"g2"},
		}},
	}
	if err := WriteCheckpoint(OSFS{}, dir, c); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no checkpoint found")
	}
	if got.LSN != 7 || got.ViewSetKey != "{N1,N2}" || got.Meta["ddl"] == "" {
		t.Fatalf("header fields lost: %+v", got)
	}
	if len(got.Rels) != 1 || got.Rels[0].Name != "T" || len(got.Rels[0].Rows) != 1 || got.Rels[0].Rows[0].Count != 2 {
		t.Fatalf("rel snapshot lost: %+v", got.Rels)
	}
	v := got.Views[0]
	if v.Name != "view_N3" || v.Fingerprint != "agg(sum)" || v.Live["g1"] != 3 || len(v.Stale) != 1 {
		t.Fatalf("view snapshot lost: %+v", v)
	}
	// A newer checkpoint supersedes and removes the old one.
	c2 := &Checkpoint{LSN: 9, ViewSetKey: c.ViewSetKey, Meta: c.Meta}
	if err := WriteCheckpoint(OSFS{}, dir, c2); err != nil {
		t.Fatal(err)
	}
	names, _ := OSFS{}.ReadDir(dir)
	if len(names) != 1 {
		t.Fatalf("old checkpoint not cleaned up: %v", names)
	}
	got2, err := LatestCheckpoint(OSFS{}, dir)
	if err != nil || got2.LSN != 9 {
		t.Fatalf("latest: %+v err %v", got2, err)
	}
}
