package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Sharded durability layout under one root directory:
//
//	dir/shard-00/  per-shard wal.Manager state: segments + checkpoints
//	dir/shard-01/  ...
//	dir/coord/     coordinator log of raw records, one per window:
//	               body = uvarint shardCount | shardCount × uvarint LSN
//
// Commit protocol per window: every shard's own Manager fsyncs its
// sub-window into its segment first (in parallel, from the shard apply
// goroutines), then the coordinator appends one record holding the
// vector of shard LSNs and fsyncs it. A window is committed iff its
// coordinator record is durable; shard records beyond the last durable
// coordinator vector are uncommitted wreckage that recovery truncates
// (TruncateLogAfter) before replaying each shard — which is what makes
// replay land every shard on a mutually consistent cut.
const coordDirName = "coord"

func shardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

var coordCommits = obs.C("wal.coord.commits")

// ShardedManager coordinates one wal.Manager per shard plus the
// coordinator log. It implements maintain.Committer and is installed as
// the Sharded maintainer's Coordinator; the per-shard Managers are
// installed as each shard maintainer's Committer by Attach/Resume.
type ShardedManager struct {
	fsys FS
	dir  string
	opts Options

	s       *maintain.Sharded
	mgrs    []*Manager
	coord   *Log
	lastVec []uint64

	// Recovery statistics, populated by ShardedRecovery.Resume (sums
	// over shards; RecoveredLSN is the coordinator's).
	RecoveredLSN    uint64
	ReplayedWindows int
	ReplayedTxns    int
	RecomputedViews int
}

// AttachSharded starts durability for a freshly built Sharded
// maintainer: one Manager (segments + initial checkpoint) per shard
// under dir/shard-NN, a coordinator log under dir/coord, and the
// group-commit wiring on both levels.
func AttachSharded(s *maintain.Sharded, fsys FS, dir string, opts Options) (*ShardedManager, error) {
	coordDir := join(dir, coordDirName)
	if ok, err := HasState(fsys, coordDir); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("wal: %s already holds durable state; use BeginShardedRecovery", dir)
	}
	n := s.NumShards()
	sm := &ShardedManager{fsys: fsys, dir: dir, opts: opts, s: s, lastVec: make([]uint64, n)}
	for i := 0; i < n; i++ {
		m, cat := s.Shard(i)
		mgr, err := Attach(m, cat, fsys, join(dir, shardDirName(i)), opts)
		if err != nil {
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		sm.mgrs = append(sm.mgrs, mgr)
	}
	coord, err := OpenLog(fsys, coordDir, opts)
	if err != nil {
		return nil, err
	}
	sm.coord = coord
	s.Coordinator = sm
	return sm, nil
}

// Commit implements maintain.Committer as the window coordinator: it
// snapshots every shard's durable LSN (the shards already fsynced their
// sub-windows) and appends the vector as one raw coordinator record.
// A window that advanced no shard reuses the previous record.
func (sm *ShardedManager) Commit(txns int) (uint64, error) {
	// The coordinator commit runs on the sharded window's goroutine;
	// parenting to the window root ties the LSN-vector record into the
	// same trace as the per-shard fsyncs it fences.
	sp := obs.Trace.Start("wal.coord.commit", sm.s.WindowSpanID())
	defer sp.Finish()
	vec := make([]uint64, len(sm.mgrs))
	changed := false
	for i, mgr := range sm.mgrs {
		vec[i] = mgr.LastLSN()
		if vec[i] != sm.lastVec[i] {
			changed = true
		}
	}
	if !changed {
		return sm.coord.LastLSN(), nil
	}
	if txns < 1 {
		txns = 1
	}
	body := encodeVector(vec)
	lsn, err := sm.coord.AppendRaw(body, txns)
	if err != nil {
		return 0, err
	}
	sm.lastVec = vec
	coordCommits.Inc()
	return lsn, nil
}

func encodeVector(vec []uint64) []byte {
	body := binary.AppendUvarint(nil, uint64(len(vec)))
	for _, v := range vec {
		body = binary.AppendUvarint(body, v)
	}
	return body
}

func decodeVector(body []byte) ([]uint64, error) {
	n, sz := binary.Uvarint(body)
	if sz <= 0 || n > 1<<16 {
		return nil, fmt.Errorf("wal: coordinator record: bad shard count")
	}
	body = body[sz:]
	vec := make([]uint64, n)
	for i := range vec {
		v, sz := binary.Uvarint(body)
		if sz <= 0 {
			return nil, fmt.Errorf("wal: coordinator record: truncated vector")
		}
		vec[i] = v
		body = body[sz:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wal: coordinator record: %d trailing bytes", len(body))
	}
	return vec, nil
}

// LastLSN returns the coordinator's last committed window LSN.
func (sm *ShardedManager) LastLSN() uint64 { return sm.coord.LastLSN() }

// Shard returns shard i's Manager (tests and tools).
func (sm *ShardedManager) Shard(i int) *Manager { return sm.mgrs[i] }

// Checkpoint checkpoints every shard (each at its own durable LSN —
// always covered by the last coordinator vector, since checkpoints run
// between windows) and prunes the coordinator log down to its last
// record, the only one recovery reads.
func (sm *ShardedManager) Checkpoint(extra map[string]string) error {
	for i, mgr := range sm.mgrs {
		if err := mgr.Checkpoint(extra); err != nil {
			return fmt.Errorf("wal: shard %d checkpoint: %w", i, err)
		}
	}
	return sm.coord.Prune(sm.coord.LastLSN())
}

// Close releases every shard's hooks and log handles plus the
// coordinator's. The directory tree remains recoverable.
func (sm *ShardedManager) Close() error {
	var first error
	for _, mgr := range sm.mgrs {
		if err := mgr.Close(); err != nil && first == nil {
			first = err
		}
	}
	if sm.s != nil && sm.s.Coordinator == Committer(sm) {
		sm.s.Coordinator = nil
	}
	if err := sm.coord.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// HasShardedState reports whether dir holds sharded durable state.
func HasShardedState(fsys FS, dir string) (bool, error) {
	return HasState(fsys, join(dir, coordDirName))
}

// ShardTarget is one shard's recovery substrate: the catalog and store
// holding freshly rebuilt base relations (schemas only; contents are
// restored from the shard checkpoint).
type ShardTarget struct {
	Cat   *catalog.Catalog
	Store *storage.Store
}

// ShardedRecovery is the sharded two-phase recovery handle. The order
// matters and BeginShardedRecovery enforces it: read the last durable
// coordinator vector, truncate every shard log to its bound, then
// restore shard bases from their checkpoints. The caller rebuilds the
// per-shard maintainers (NewRestored with RestoreOptions(i)), assembles
// the Sharded, and calls Resume to replay each shard's tail and re-arm.
type ShardedRecovery struct {
	fsys FS
	dir  string
	opts Options

	coordLSN uint64
	bound    []uint64
	recs     []*Recovery
}

// BeginShardedRecovery opens dir's coordinator log (truncating any torn
// coordinator tail), decodes the last committed shard-LSN vector, cuts
// every shard log back to its bound, and restores each shard's base
// relations from its newest checkpoint into the matching target.
func BeginShardedRecovery(targets []ShardTarget, fsys FS, dir string, opts Options) (*ShardedRecovery, error) {
	coord, err := OpenLog(fsys, join(dir, coordDirName), opts)
	if err != nil {
		return nil, err
	}
	r := &ShardedRecovery{fsys: fsys, dir: dir, opts: opts, coordLSN: coord.LastLSN()}
	r.bound = make([]uint64, len(targets))
	err = coord.ReplayRaw(0, func(lsn uint64, txns int, body []byte) error {
		vec, err := decodeVector(body)
		if err != nil {
			return fmt.Errorf("record %d: %w", lsn, err)
		}
		if len(vec) != len(targets) {
			return fmt.Errorf("record %d: %d shards logged, %d targets", lsn, len(vec), len(targets))
		}
		r.bound = vec // the last record wins: it is the recovery bound
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := coord.Close(); err != nil {
		return nil, err
	}
	for i, tgt := range targets {
		shardDir := join(dir, shardDirName(i))
		if err := TruncateLogAfter(fsys, shardDir, r.bound[i]); err != nil {
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		rec, err := BeginRecovery(tgt.Cat, tgt.Store, fsys, shardDir)
		if err != nil {
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		r.recs = append(r.recs, rec)
	}
	return r, nil
}

// CoordLSN returns the coordinator's recovered LSN — the durability
// point the whole sharded system is consistent as of.
func (r *ShardedRecovery) CoordLSN() uint64 { return r.coordLSN }

// Bound returns shard i's committed-LSN bound from the coordinator.
func (r *ShardedRecovery) Bound(i int) uint64 { return r.bound[i] }

// Meta returns shard 0's checkpoint metadata (Options.Meta is written
// identically to every shard).
func (r *ShardedRecovery) Meta() map[string]string { return r.recs[0].Meta() }

// RestoreOptions returns shard i's view-restore source for
// maintain.NewRestored.
func (r *ShardedRecovery) RestoreOptions(i int) maintain.RestoreOptions {
	return r.recs[i].RestoreOptions()
}

// Resume replays every shard's committed log tail through its own
// maintainer (shard recovery IS shard-local incremental maintenance),
// verifies each shard landed exactly on its coordinator bound, rebuilds
// the merged spanning views, and re-arms the full commit wiring.
func (r *ShardedRecovery) Resume(s *maintain.Sharded) (*ShardedManager, error) {
	if s.NumShards() != len(r.recs) {
		return nil, fmt.Errorf("wal: resume: %d shards, %d recoveries", s.NumShards(), len(r.recs))
	}
	sm := &ShardedManager{
		fsys: r.fsys, dir: r.dir, opts: r.opts, s: s,
		lastVec:      append([]uint64{}, r.bound...),
		RecoveredLSN: r.coordLSN,
	}
	for i, rec := range r.recs {
		m, _ := s.Shard(i)
		mgr, err := rec.Resume(m, r.opts)
		if err != nil {
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		if mgr.LastLSN() != r.bound[i] {
			return nil, fmt.Errorf("wal: shard %d recovered to LSN %d, coordinator bound %d",
				i, mgr.LastLSN(), r.bound[i])
		}
		sm.ReplayedWindows += mgr.ReplayedWindows
		sm.ReplayedTxns += mgr.ReplayedTxns
		sm.RecomputedViews += mgr.RecomputedViews
		sm.mgrs = append(sm.mgrs, mgr)
	}
	s.RebuildMerged()
	coord, err := OpenLog(r.fsys, join(r.dir, coordDirName), r.opts)
	if err != nil {
		return nil, err
	}
	sm.coord = coord
	s.Coordinator = sm
	return sm, nil
}
