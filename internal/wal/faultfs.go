package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed is returned by every FaultFS operation between an injected
// crash and the next Reboot, modelling a machine that is down.
var ErrCrashed = errors.New("wal: injected crash")

// FaultFS is a deterministic in-memory filesystem with crash injection.
// It tracks, per file, which prefix of the bytes has been fsynced. An
// injected crash aborts the scheduled operation and discards a
// pseudo-random suffix of every file's unsynced bytes — optionally
// tearing the surviving unsynced prefix with a single flipped bit —
// exactly the failure surface a real kernel exposes: synced data is
// intact, unsynced data is anything at all.
//
// Crashes are scheduled by operation index (SetCrashAfter), so a test
// can enumerate every crash point of a workload: run once to completion,
// read Ops(), then replay with a crash at each index.
type FaultFS struct {
	mu    sync.Mutex
	files map[string]*faultFile
	dirs  map[string]bool

	ops     int   // mutating operations performed
	crashAt int   // crash on the Nth mutating op (1-based); 0 = never
	crashed bool  // down until Reboot
	seed    uint64

	// TornTail keeps a pseudo-random prefix of each file's unsynced
	// bytes at crash time instead of discarding them all.
	TornTail bool
	// FlipBit additionally corrupts one bit of the surviving unsynced
	// prefix (when TornTail kept any), modelling a torn sector write.
	FlipBit bool
}

type faultFile struct {
	data   []byte
	synced int // all of data[:synced] is durable
}

// NewFaultFS returns an empty fault-injecting filesystem whose crash
// behaviour is derived deterministically from seed.
func NewFaultFS(seed uint64) *FaultFS {
	return &FaultFS{
		files: map[string]*faultFile{},
		dirs:  map[string]bool{},
		seed:  seed,
	}
}

// SetCrashAfter schedules a crash on the nth mutating operation
// (1-based): that operation is aborted and the filesystem goes down.
// n <= 0 cancels any scheduled crash.
func (f *FaultFS) SetCrashAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// Ops returns the number of mutating operations performed so far; a
// completed run's count bounds the crash schedule for replays.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the filesystem is down.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reboot brings a crashed filesystem back up. The surviving state is
// whatever doCrash left behind.
func (f *FaultFS) Reboot() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
}

// step gates one mutating operation: it returns ErrCrashed if the
// filesystem is down, and injects the scheduled crash when this
// operation's index matches. Callers hold f.mu.
func (f *FaultFS) step() error {
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops == f.crashAt {
		f.doCrash()
		return ErrCrashed
	}
	return nil
}

// doCrash takes the filesystem down, discarding a deterministic
// pseudo-random suffix of every file's unsynced bytes. Callers hold f.mu.
func (f *FaultFS) doCrash() {
	f.crashed = true
	rng := f.seed ^ uint64(f.ops)*0x9e3779b97f4a7c15
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	// Deterministic iteration order so a given (seed, crash point) pair
	// always yields the same surviving state.
	names := make([]string, 0, len(f.files))
	for n := range f.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ff := f.files[n]
		unsynced := len(ff.data) - ff.synced
		if unsynced <= 0 {
			continue
		}
		keep := 0
		if f.TornTail {
			keep = int(next() % uint64(unsynced+1))
		}
		ff.data = ff.data[:ff.synced+keep]
		if f.FlipBit && keep > 0 && next()%2 == 0 {
			pos := ff.synced + int(next()%uint64(keep))
			ff.data[pos] ^= 1 << (next() % 8)
		}
	}
}

func (f *FaultFS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.dirs[filepath.Clean(dir)] = true
	return nil
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	dir = filepath.Clean(dir)
	var names []string
	for p := range f.files {
		if filepath.Dir(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	ff, ok := f.files[filepath.Clean(path)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	out := make([]byte, len(ff.data))
	copy(out, ff.data)
	return out, nil
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	path = filepath.Clean(path)
	if _, ok := f.files[path]; !ok {
		f.files[path] = &faultFile{}
	}
	return &faultHandle{fs: f, path: path}, nil
}

func (f *FaultFS) Truncate(path string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	ff, ok := f.files[filepath.Clean(path)]
	if !ok {
		return &os.PathError{Op: "truncate", Path: path, Err: os.ErrNotExist}
	}
	if int(size) < len(ff.data) {
		ff.data = ff.data[:size]
		if ff.synced > int(size) {
			ff.synced = int(size)
		}
	}
	return nil
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	oldPath, newPath = filepath.Clean(oldPath), filepath.Clean(newPath)
	ff, ok := f.files[oldPath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldPath, Err: os.ErrNotExist}
	}
	delete(f.files, oldPath)
	f.files[newPath] = ff
	return nil
}

func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	path = filepath.Clean(path)
	if _, ok := f.files[path]; !ok {
		if f.crashed {
			return ErrCrashed
		}
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	if err := f.step(); err != nil {
		return err
	}
	delete(f.files, path)
	return nil
}

// DumpTo writes the filesystem's current contents under dir on the real
// filesystem, for CI failure artifacts.
func (f *FaultFS) DumpTo(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for p, ff := range f.files {
		out := filepath.Join(dir, filepath.Base(p))
		if err := os.WriteFile(out, ff.data, 0o644); err != nil {
			return fmt.Errorf("wal: dump %s: %w", p, err)
		}
	}
	return nil
}

type faultHandle struct {
	fs   *FaultFS
	path string
}

func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		return 0, err
	}
	ff, ok := h.fs.files[h.path]
	if !ok {
		return 0, &os.PathError{Op: "write", Path: h.path, Err: os.ErrNotExist}
	}
	ff.data = append(ff.data, p...)
	return len(p), nil
}

func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		return err
	}
	ff, ok := h.fs.files[h.path]
	if !ok {
		return &os.PathError{Op: "sync", Path: h.path, Err: os.ErrNotExist}
	}
	ff.synced = len(ff.data)
	return nil
}

func (h *faultHandle) Close() error { return nil }
