// Sharded crash-recovery fault injection: the every-crash-point matrix
// of crash_test.go extended to sharded logs. A sharded Figure 5 system
// (one WAL segment tree per shard plus the coordinator log) runs on one
// FaultFS, is killed at each mutating filesystem operation — which lands
// inside shard segments, shard checkpoints, coordinator records and
// coordinator fsyncs alike — rebooted and recovered. The recovered
// coordinator LSN must cover every acknowledged window and overshoot by
// at most the record in flight, and the recovered full-state bag (union
// of shard bases + every view) must equal the committed-prefix oracle at
// every shard count.
package wal_test

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/wal"
)

const shardCrashDir = "swal"

// shardMatrixCounts returns the shard counts the sharded crash matrix
// enumerates, restricted to one count when SHARD_MATRIX is set (the CI
// shard-matrix job). Shard count 1 is covered by the unsharded suite.
func shardMatrixCounts(t testing.TB) []int {
	if v := os.Getenv("SHARD_MATRIX"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SHARD_MATRIX=%q", v)
		}
		return []int{n}
	}
	return []int{2, 4, 8}
}

// fig5Factory is the deterministic shard factory: every call rebuilds
// the identical Figure 5 database and expanded DAG.
func fig5Factory(cfg corpus.Figure5Config) func() (*maintain.ShardSetup, error) {
	return func() (*maintain.ShardSetup, error) {
		db := corpus.Figure5Database(cfg)
		d, err := dag.FromTree(db.Figure5View(0))
		if err != nil {
			return nil, err
		}
		if _, err := d.Expand(rules.Default(), 400); err != nil {
			return nil, err
		}
		return &maintain.ShardSetup{D: d, Cat: db.Catalog, Store: db.Store}, nil
	}
}

// fig5VS materializes every non-leaf node, like buildOn.
func fig5VS(d *dag.DAG) tracks.ViewSet {
	vs := tracks.RootSet(d)
	for _, e := range d.NonLeafEqs() {
		vs[e.ID] = true
	}
	return vs
}

// buildShardedFig5 builds the sharded Figure 5 system partitioned on
// Item — every join and the revenue aggregate key on Item, so all views
// are shard-local and the partitioning must hold at full width.
func buildShardedFig5(t testing.TB, cfg corpus.Figure5Config, shards, workers int) *maintain.Sharded {
	t.Helper()
	factory := fig5Factory(cfg)
	setup, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	s, err := maintain.NewSharded(factory, maintain.ShardedConfig{
		Shards:      shards,
		PartitionBy: "Item",
		VS:          fig5VS(setup.D),
		Workers:     workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != shards {
		t.Fatalf("wanted %d shards, got %s", shards, s.Part.Describe())
	}
	return s
}

// runDurableSharded attaches sharded durability and pushes the windows
// through, checkpointing every shard every ckptEvery windows. It returns
// the coordinator LSNs acknowledged before the first error.
func runDurableSharded(s *maintain.Sharded, fsys wal.FS, dir string, windows [][]txn.Transaction, ckptEvery int) ([]uint64, error) {
	sm, err := wal.AttachSharded(s, fsys, dir, wal.Options{SegmentBytes: crashSegBytes})
	if err != nil {
		return nil, err
	}
	var acked []uint64
	for i, w := range windows {
		rep, err := s.ApplyBatch(w)
		if err != nil {
			return acked, err
		}
		acked = append(acked, rep.LSN)
		if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
			if err := sm.Checkpoint(nil); err != nil {
				return acked, err
			}
		}
	}
	return acked, sm.Close()
}

// verifyShardedRecovery recovers the sharded system from fsys and
// asserts the sharded recovery contract: coordinator LSN within
// [lastAcked, lastAcked+1], full recovered state (union of shard bases
// plus every materialized view) equal to the committed-prefix oracle,
// and correct continued maintenance of the remaining workload.
func verifyShardedRecovery(t *testing.T, fsys *wal.FaultFS, dir string, cfg corpus.Figure5Config, n, workers, nWindows, batch int, acked []uint64) {
	t.Helper()
	factory := fig5Factory(cfg)
	setups := make([]*maintain.ShardSetup, n)
	targets := make([]wal.ShardTarget, n)
	for i := range targets {
		su, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		setups[i] = su
		targets[i] = wal.ShardTarget{Cat: su.Cat, Store: su.Store}
	}
	rec, err := wal.BeginShardedRecovery(targets, fsys, dir, wal.Options{SegmentBytes: crashSegBytes})
	if err != nil {
		// A crash inside AttachSharded can leave shards without their
		// initial checkpoint, or no coordinator directory at all;
		// acceptable only if no window was ever acknowledged.
		if len(acked) == 0 {
			t.Logf("nothing acknowledged, recovery declined: %v", err)
			return
		}
		t.Fatalf("BeginShardedRecovery: %v (after %d acked windows)", err, len(acked))
	}
	vs := fig5VS(setups[0].D)
	part := maintain.AnalyzePartitioning(setups[0].D, vs, "Item", n)
	if part.Effective != n {
		t.Fatalf("recovery-side analysis narrowed to %s", part.Describe())
	}
	ms := make([]*maintain.Maintainer, n)
	for i := range ms {
		m, err := maintain.NewRestored(setups[i].D, setups[i].Store, cost.PageIO{}, vs.Clone(), rec.RestoreOptions(i))
		if err != nil {
			t.Fatalf("shard %d NewRestored: %v", i, err)
		}
		m.Workers = workers
		ms[i] = m
	}
	s2, err := maintain.AssembleSharded(setups, ms, part)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := rec.Resume(s2)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer sm.Close()

	prefix := int(sm.RecoveredLSN)
	lastAcked := 0
	if len(acked) > 0 {
		lastAcked = int(acked[len(acked)-1])
	}
	if prefix < lastAcked || prefix > lastAcked+1 {
		t.Fatalf("recovered coordinator LSN %d outside [%d,%d]", prefix, lastAcked, lastAcked+1)
	}
	if prefix > nWindows {
		t.Fatalf("recovered LSN %d beyond the %d-window workload", prefix, nWindows)
	}

	// Oracle: an unsharded in-memory system applying exactly the
	// committed prefix of the same deterministic workload.
	odb, od, om := buildFig5(t, cfg, 1, nil)
	owins := genWindows(odb, cfg, nWindows, batch)
	for i := 0; i < prefix; i++ {
		if _, err := om.ApplyBatch(owins[i]); err != nil {
			t.Fatalf("oracle window %d: %v", i+1, err)
		}
	}
	diffSharded := func(stage string) {
		for _, name := range odb.Catalog.Names() {
			union := map[string]int64{}
			for i := 0; i < n; i++ {
				rel, ok := setups[i].Store.Get(name)
				if !ok {
					t.Fatalf("%s: shard %d lost relation %s", stage, i, name)
				}
				for k, v := range bag(rel.Snapshot()) {
					union[k] += v
					if union[k] == 0 {
						delete(union, k)
					}
				}
			}
			orel, _ := odb.Store.Get(name)
			if d := bagDiff("base "+name, union, bag(orel.Snapshot())); d != "" {
				dumpOnFailureNow(t, fsys)
				t.Fatalf("%s (prefix %d): %s", stage, prefix, d)
			}
		}
		for _, e := range od.NonLeafEqs() {
			if d := bagDiff(fmt.Sprintf("view %s", e), bag(s2.Contents(e)), bag(om.Contents(e))); d != "" {
				dumpOnFailureNow(t, fsys)
				t.Fatalf("%s (prefix %d): %s", stage, prefix, d)
			}
		}
	}
	diffSharded("recovered state != committed-prefix oracle")

	// The recovered sharded system keeps working: finish the workload on
	// both systems and compare again, then check drift against the
	// recompute oracle over the union of the shard bases.
	gdb := corpus.Figure5Database(cfg)
	rwins := genWindows(gdb, cfg, nWindows, batch)
	for i := prefix; i < nWindows; i++ {
		if _, err := s2.ApplyBatch(rwins[i]); err != nil {
			t.Fatalf("post-recovery window %d: %v", i+1, err)
		}
		if _, err := om.ApplyBatch(owins[i]); err != nil {
			t.Fatalf("oracle window %d: %v", i+1, err)
		}
	}
	diffSharded("post-recovery maintenance diverged")
	for _, e := range setups[0].D.NonLeafEqs() {
		drift, err := s2.Drift(e)
		if err != nil {
			t.Fatal(err)
		}
		if drift != "" {
			t.Fatalf("post-recovery drift at %s: %s", e, drift)
		}
	}
}

// TestShardedCrashRecoveryEveryPoint enumerates every mutating
// filesystem operation of a checkpointed sharded durable run — shard
// segment appends and fsyncs, shard checkpoints, coordinator records —
// and crashes at each one with torn tails and bit flips, at every shard
// count of the matrix. Denser shard counts use a stride: the op space
// grows linearly with shards while the fault surface per op class stays
// the same.
func TestShardedCrashRecoveryEveryPoint(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	const nWindows, batch, ckptEvery = 6, 4, 2
	workerCycle := []int{1, 2, 4, 8}
	for _, n := range shardMatrixCounts(t) {
		n := n
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			// Reference run without a crash: counts fault points and pins
			// the window↔coordinator-LSN mapping the oracle depends on.
			ref := wal.NewFaultFS(1)
			s := buildShardedFig5(t, cfg, n, 1)
			gdb := corpus.Figure5Database(cfg)
			acked, err := runDurableSharded(s, ref, shardCrashDir, genWindows(gdb, cfg, nWindows, batch), ckptEvery)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for i, lsn := range acked {
				if lsn != uint64(i+1) {
					t.Fatalf("window %d acked at coordinator LSN %d: must be 1:1", i+1, lsn)
				}
			}
			total := ref.Ops()
			if total < nWindows*(n+1) {
				t.Fatalf("suspiciously few fault points: %d", total)
			}
			t.Logf("%d fault-injection points", total)

			stride := 1
			if n > 2 {
				stride = 3
			}
			if testing.Short() {
				stride = 7
			}
			for crashAt := 1; crashAt <= total; crashAt += stride {
				crashAt := crashAt
				t.Run(fmt.Sprintf("op%04d", crashAt), func(t *testing.T) {
					workers := workerCycle[crashAt%len(workerCycle)]
					fsys := wal.NewFaultFS(uint64(crashAt)*2654435761 + uint64(n))
					fsys.TornTail = true
					fsys.FlipBit = true
					fsys.SetCrashAfter(crashAt)
					t.Cleanup(func() { dumpOnFailure(t, fsys) })
					s := buildShardedFig5(t, cfg, n, workers)
					wdb := corpus.Figure5Database(cfg)
					acked, err := runDurableSharded(s, fsys, shardCrashDir, genWindows(wdb, cfg, nWindows, batch), ckptEvery)
					if err == nil {
						t.Fatalf("crash scheduled at op %d never fired", crashAt)
					}
					if !errors.Is(err, wal.ErrCrashed) {
						t.Fatalf("crash surfaced as %v, want wal.ErrCrashed", err)
					}
					fsys.Reboot()
					verifyShardedRecovery(t, fsys, shardCrashDir, cfg, n, workers, nWindows, batch, acked)
				})
			}
		})
	}
}

// TestShardedRecoveryAfterCleanClose recovers a cleanly closed sharded
// system at each shard count: full replay to the final coordinator LSN,
// state identical to the full-run oracle.
func TestShardedRecoveryAfterCleanClose(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	const nWindows, batch = 5, 4
	for _, n := range shardMatrixCounts(t) {
		n := n
		t.Run(fmt.Sprintf("shards%d", n), func(t *testing.T) {
			fsys := wal.NewFaultFS(uint64(7 + n))
			t.Cleanup(func() { dumpOnFailure(t, fsys) })
			s := buildShardedFig5(t, cfg, n, 2)
			gdb := corpus.Figure5Database(cfg)
			acked, err := runDurableSharded(s, fsys, shardCrashDir, genWindows(gdb, cfg, nWindows, batch), 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(acked) != nWindows {
				t.Fatalf("acked %d of %d windows", len(acked), nWindows)
			}
			verifyShardedRecovery(t, fsys, shardCrashDir, cfg, n, 2, nWindows, batch, acked)
		})
	}
}
