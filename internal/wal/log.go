package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/delta"
	"repro/internal/obs"
)

// Segment layout:
//
//	header  = magic "MVWALSG1" | u64 firstLSN (BigEndian)     (16 bytes)
//	record  = u32 len (LE) | u32 crc32c (LE) | payload
//	payload = uvarint LSN | uvarint txnCount | window bytes
//
// LSNs are assigned per committed window (group commit: one record, one
// fsync per ApplyBatch window) and increase by exactly one from the
// segment's firstLSN, so the scanner can reject any record that is not
// the direct successor of the previous one. The committed prefix of the
// log is the longest run of records with valid frames, valid CRCs and
// contiguous LSNs; everything after the first violation is the torn
// tail of a crashed write and is truncated on open.
const (
	segMagic     = "MVWALSG1"
	segHeaderLen = 16
	frameOverhead = 8
	// maxRecordLen bounds a frame's declared payload length so a corrupt
	// length field cannot drive a huge allocation.
	maxRecordLen = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	fsyncNs   = obs.H("wal.fsync.ns")
	walBytes  = obs.C("wal.bytes")
	walRecs   = obs.C("wal.records")
)

// Options configures a log directory.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB). A record
	// larger than the threshold still gets a segment to itself.
	SegmentBytes int
	// Meta is opaque application metadata stored in every checkpoint
	// (the shell uses it to persist the DDL that rebuilds the catalog).
	Meta map[string]string
	// DeferredFence relaxes the Manager's commit fence by one window:
	// BeginWindow's wait joins the PREVIOUS window's commit instead of
	// its own, so window k's fsync overlaps window k+1's coalesce and
	// propagation (the paper's group-commit pipelining taken across
	// windows). Acknowledging window k then implies window k-1 is
	// durable; a crash can lose at most the last acknowledged window.
	// Commit, Checkpoint, Sync and Close drain the in-flight chain, so
	// every explicit durability point is unchanged. Off by default:
	// the default fence keeps ack ⇒ durable for the acked window.
	DeferredFence bool
}

func (o Options) segBytes() int {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return 4 << 20
}

// Record is one committed window as read back from the log.
type Record struct {
	LSN    uint64
	Txns   int
	Window delta.Coalesced
}

type segInfo struct {
	name     string
	firstLSN uint64
}

// Log is an open WAL directory. Not safe for concurrent use; the
// Manager serializes commits behind the maintenance pipeline's window
// barrier.
type Log struct {
	fsys    FS
	dir     string
	segBytes int

	lastLSN uint64
	segs    []segInfo

	cur     File
	curName string
	curSize int
	buf     []byte // payload scratch (uvarint header + encoded window)
	fbuf    []byte // frame scratch (length | crc | payload)

	// broken latches the first write error: a log that failed mid-frame
	// must not accept further commits, because the tail is now of
	// unknown shape.
	broken error
}

// OpenLog opens (creating if needed) the WAL directory, scans every
// segment, truncates the torn tail of a crashed write, and removes any
// segments after the first invalid point.
func OpenLog(fsys FS, dir string, opts Options) (*Log, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}
	l := &Log{fsys: fsys, dir: dir, segBytes: opts.segBytes()}
	var segNames []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segNames = append(segNames, n)
		}
	}
	// Fixed-width hex names sort in LSN order.
	valid := true
	for i, name := range segNames {
		if !valid {
			if err := fsys.Remove(join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: remove %s: %w", name, err)
			}
			continue
		}
		data, err := fsys.ReadFile(join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", name, err)
		}
		hdrLSN, recs, validLen, hdrOK := scanSegment(data)
		nameLSN, _ := parseSegName(name)
		if !hdrOK || hdrLSN != nameLSN || (i > 0 && hdrLSN != l.lastLSN+1) {
			// A segment whose header never became durable (or does not
			// follow its predecessor) is the wreckage of a crashed
			// rotation: drop it and everything after it.
			valid = false
			if err := fsys.Remove(join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: remove %s: %w", name, err)
			}
			continue
		}
		if i == 0 {
			l.lastLSN = hdrLSN - 1
		}
		if validLen < len(data) {
			if err := fsys.Truncate(join(dir, name), int64(validLen)); err != nil {
				return nil, fmt.Errorf("wal: truncate %s: %w", name, err)
			}
			// The torn record is gone; nothing after it can be valid.
			valid = false
		}
		l.segs = append(l.segs, segInfo{name: name, firstLSN: hdrLSN})
		l.lastLSN += uint64(len(recs))
		l.curName = name
		l.curSize = validLen
	}
	if len(l.segs) == 0 {
		// Fresh log: create and sync the first segment now, so the first
		// commit's fsync pays only for its record — not for the directory
		// entry, inode and initial extent allocation of a brand-new file.
		// A crash leaving a header-only segment is already a valid state
		// (OpenLog scans it to zero records and appends to it).
		if err := l.newSegment(l.lastLSN + 1); err != nil {
			return nil, err
		}
		if err := l.cur.Sync(); err != nil {
			return nil, fmt.Errorf("wal: sync new segment: %w", err)
		}
		// Leave the segment closed (curName marks it for the reopen path):
		// replay and recovery refuse a log with open writes.
		if err := l.cur.Close(); err != nil {
			return nil, fmt.Errorf("wal: close new segment: %w", err)
		}
		l.cur = nil
	}
	return l, nil
}

// LastLSN returns the LSN of the last committed window (0 if none).
func (l *Log) LastLSN() uint64 { return l.lastLSN }

// CommitWindow appends one coalesced window covering txns transactions
// and makes it durable with a single fsync. It returns the window's LSN.
func (l *Log) CommitWindow(w delta.Coalesced, txns int) (uint64, error) {
	if l.broken != nil {
		return 0, l.broken
	}
	lsn := l.lastLSN + 1
	l.buf = l.buf[:0]
	l.buf = binary.AppendUvarint(l.buf, lsn)
	l.buf = binary.AppendUvarint(l.buf, uint64(txns))
	l.buf = delta.AppendWindow(l.buf, w)
	return l.commitPayload(l.buf)
}

// AppendRaw appends one record whose body is opaque bytes (no window
// decode on replay) covering txns transactions, durable with a single
// fsync — the sharded coordinator's commit-record primitive. Raw
// records share the LSN sequence, framing and CRC of window records;
// only the body codec differs, so a log must hold one kind or the
// other (Replay rejects raw bodies as trailing bytes, ReplayRaw never
// decodes windows).
func (l *Log) AppendRaw(body []byte, txns int) (uint64, error) {
	if l.broken != nil {
		return 0, l.broken
	}
	lsn := l.lastLSN + 1
	l.buf = l.buf[:0]
	l.buf = binary.AppendUvarint(l.buf, lsn)
	l.buf = binary.AppendUvarint(l.buf, uint64(txns))
	l.buf = append(l.buf, body...)
	return l.commitPayload(l.buf)
}

// encodeWindowPayload encodes one window record payload (uvarint LSN |
// uvarint txns | encoded window) into a fresh buffer. The deferred-fence
// Manager encodes synchronously at window close — the window's deltas
// alias an arena that resets next window, so only these bytes survive —
// and commits the buffer later via commitPreEncoded.
func encodeWindowPayload(lsn uint64, txns int, w delta.Coalesced) []byte {
	buf := binary.AppendUvarint(nil, lsn)
	buf = binary.AppendUvarint(buf, uint64(txns))
	return delta.AppendWindow(buf, w)
}

// commitPreEncoded frames, writes and fsyncs a payload produced by
// encodeWindowPayload. The LSN was assigned when the payload was
// encoded; the deferred commit chain is FIFO, so it must equal the next
// LSN here — a mismatch means the chain was broken and the log cannot
// accept the record.
func (l *Log) commitPreEncoded(payload []byte, lsn uint64) (uint64, error) {
	if l.broken != nil {
		return 0, l.broken
	}
	if want := l.lastLSN + 1; lsn != want {
		l.broken = fmt.Errorf("wal: deferred commit out of order: lsn %d, want %d", lsn, want)
		return 0, l.broken
	}
	return l.commitPayload(payload)
}

// commitPayload frames, writes and fsyncs one already-encoded payload
// (uvarint LSN | uvarint txns | body) as the next record.
func (l *Log) commitPayload(payload []byte) (uint64, error) {
	lsn := l.lastLSN + 1
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("wal: window payload %d exceeds max record size", len(payload))
	}
	if cap(l.fbuf) < frameOverhead+len(payload) {
		l.fbuf = make([]byte, frameOverhead+len(payload))
	}
	frame := l.fbuf[:frameOverhead+len(payload)]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameOverhead:], payload)

	if err := l.ensureSegment(lsn, len(frame)); err != nil {
		l.broken = err
		return 0, err
	}
	// Flight-recorder ordering contract: the start event lands BEFORE
	// the record's bytes reach the filesystem and the done event only
	// after fsync returns, so in any post-mortem image
	// max(done LSNs) <= recovered LSN <= max(start LSNs) — the black box
	// and the log can be cross-checked against each other.
	obs.Flight().Record(obs.EvFsyncStart, 0, lsn, uint64(len(frame)), 0)
	if _, err := l.cur.Write(frame); err != nil {
		l.broken = fmt.Errorf("wal: write: %w", err)
		return 0, l.broken
	}
	start := time.Now()
	if err := l.cur.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: fsync: %w", err)
		return 0, l.broken
	}
	fsyncNs.Observe(time.Since(start).Nanoseconds())
	obs.Flight().Record(obs.EvFsyncDone, 0, lsn, uint64(len(frame)), 0)
	walBytes.Add(int64(len(frame)))
	walRecs.Inc()
	l.curSize += len(frame)
	l.lastLSN = lsn
	return lsn, nil
}

// ensureSegment makes l.cur an open segment with room for a frame of
// frameLen bytes, reopening the scanned tail segment after a restart or
// rotating to a fresh one on overflow. A frame larger than the rotation
// threshold still gets a segment to itself.
func (l *Log) ensureSegment(firstLSN uint64, frameLen int) error {
	full := func() bool {
		return l.curSize+frameLen > l.segBytes && l.curSize > segHeaderLen
	}
	if l.cur == nil && l.curName != "" && !full() {
		// Reopen the tail segment OpenLog scanned: append to it rather
		// than starting a fresh one, so a reboot loop does not leak a
		// segment per commit.
		f, err := l.fsys.OpenAppend(join(l.dir, l.curName))
		if err != nil {
			return fmt.Errorf("wal: reopen segment: %w", err)
		}
		l.cur = f
		return nil
	}
	if l.cur != nil && !full() {
		return nil
	}
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.cur = nil
	}
	return l.newSegment(firstLSN)
}

// newSegment creates the segment whose first record will be firstLSN,
// writes its header, and makes it the current segment. The header is
// not synced here; callers rely on the next record's fsync (or sync
// explicitly, as OpenLog's fresh-log pre-creation does).
func (l *Log) newSegment(firstLSN uint64) error {
	name := segName(firstLSN)
	f, err := l.fsys.OpenAppend(join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	binary.BigEndian.PutUint64(hdr[8:], firstLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.cur = f
	l.curName = name
	l.curSize = segHeaderLen
	l.segs = append(l.segs, segInfo{name: name, firstLSN: firstLSN})
	return nil
}

// Replay streams every committed window with LSN > after to fn, in LSN
// order, resolving base-relation schemas through schemas.
func (l *Log) Replay(after uint64, schemas delta.SchemaSource, fn func(Record) error) error {
	return l.ReplayRaw(after, func(lsn uint64, txns int, body []byte) error {
		w, rest, err := delta.DecodeWindow(body, schemas)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", lsn, err)
		}
		if len(rest) != 0 {
			return fmt.Errorf("wal: record %d: %d trailing bytes", lsn, len(rest))
		}
		return fn(Record{LSN: lsn, Txns: txns, Window: w})
	})
}

// ReplayRaw streams every committed record with LSN > after to fn, in
// LSN order, without decoding bodies — the reader for AppendRaw logs.
func (l *Log) ReplayRaw(after uint64, fn func(lsn uint64, txns int, body []byte) error) error {
	for _, seg := range l.segs {
		if seg.name == l.curName && l.cur != nil {
			return fmt.Errorf("wal: replay on a log with open writes")
		}
		data, err := l.fsys.ReadFile(join(l.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", seg.name, err)
		}
		_, recs, _, _ := scanSegment(data)
		for _, rec := range recs {
			if rec.lsn <= after {
				continue
			}
			if err := fn(rec.lsn, rec.txns, rec.body); err != nil {
				return err
			}
		}
	}
	return nil
}

// Prune removes every segment that only holds records with LSN <= upTo,
// i.e. records fully covered by a checkpoint. The last segment is always
// kept so the writer can continue appending to it.
func (l *Log) Prune(upTo uint64) error {
	for len(l.segs) > 1 && l.segs[1].firstLSN <= upTo+1 {
		if err := l.fsys.Remove(join(l.dir, l.segs[0].name)); err != nil {
			return fmt.Errorf("wal: prune %s: %w", l.segs[0].name, err)
		}
		l.segs = l.segs[1:]
	}
	return nil
}

// Close releases the current segment handle. The log stays readable.
func (l *Log) Close() error {
	if l.cur != nil {
		err := l.cur.Close()
		l.cur = nil
		if err != nil {
			return err
		}
	}
	return nil
}

type rawRec struct {
	lsn  uint64
	txns int
	body []byte
	end  int // byte offset just past this record's frame
}

// scanSegment parses a segment image, returning its header LSN, the
// records of the valid prefix, the byte length of that prefix, and
// whether the header itself was valid. It never panics on corrupt
// input; the first framing, CRC, payload or LSN-continuity violation
// ends the valid prefix.
func scanSegment(data []byte) (hdrLSN uint64, recs []rawRec, valid int, hdrOK bool) {
	if len(data) < segHeaderLen || string(data[:8]) != segMagic {
		return 0, nil, 0, false
	}
	hdrLSN = binary.BigEndian.Uint64(data[8:16])
	if hdrLSN == 0 {
		return 0, nil, 0, false
	}
	hdrOK = true
	valid = segHeaderLen
	next := hdrLSN
	for {
		rest := data[valid:]
		if len(rest) < frameOverhead {
			return
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n == 0 || n > maxRecordLen || uint64(n) > uint64(len(rest)-frameOverhead) {
			return
		}
		payload := rest[frameOverhead : frameOverhead+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			return
		}
		lsn, sz := binary.Uvarint(payload)
		if sz <= 0 || lsn != next {
			return
		}
		txns, sz2 := binary.Uvarint(payload[sz:])
		if sz2 <= 0 || txns == 0 || txns > 1<<32 {
			return
		}
		recs = append(recs, rawRec{lsn: lsn, txns: int(txns), body: payload[sz+sz2:],
			end: valid + frameOverhead + int(n)})
		valid += frameOverhead + int(n)
		next = lsn + 1
	}
}

// TruncateLogAfter durably discards every record with LSN > upTo from
// the closed log directory dir: whole segments whose records all lie
// beyond the bound are removed, the segment straddling it is truncated
// to the bound's byte offset, and any invalid wreckage is dropped the
// way OpenLog would. The sharded recovery path uses it to cut each
// shard's log back to the coordinator's committed LSN vector before
// replay, so a shard record that became durable without its coordinator
// commit record can never resurface.
func TruncateLogAfter(fsys FS, dir string, upTo uint64) error {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if isNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: readdir: %w", err)
	}
	var segNames []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segNames = append(segNames, n)
		}
	}
	sort.Strings(segNames) // fixed-width hex names sort in LSN order
	for _, name := range segNames {
		data, err := fsys.ReadFile(join(dir, name))
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", name, err)
		}
		hdrLSN, recs, _, hdrOK := scanSegment(data)
		if !hdrOK || hdrLSN > upTo {
			if err := fsys.Remove(join(dir, name)); err != nil {
				return fmt.Errorf("wal: remove %s: %w", name, err)
			}
			continue
		}
		cut := segHeaderLen
		for _, rec := range recs {
			if rec.lsn > upTo {
				break
			}
			cut = rec.end
		}
		if cut < len(data) {
			if err := fsys.Truncate(join(dir, name), int64(cut)); err != nil {
				return fmt.Errorf("wal: truncate %s: %w", name, err)
			}
		}
	}
	return nil
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstLSN)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
