package wal

import (
	"sync"

	"repro/internal/catalog"
	"repro/internal/delta"
	"repro/internal/storage"
	"repro/internal/value"
)

// Collector stages base-relation mutations between group commits. It is
// installed as the store's mutation hook; view relations (anything not
// in the catalog it was built from) are filtered out, so only base
// deltas reach the log. The maintenance worker pool applies view
// mutations concurrently, hence the mutex.
type Collector struct {
	mu      sync.Mutex
	schemas map[string]*catalog.Schema
	staged  map[string]*delta.Delta
	// spare is the map handed out by the previous Drain, recycled (keys
	// kept, change slices truncated) at the next Drain. The double
	// buffer gives drained deltas exactly one window of validity, which
	// covers the synchronous coalesce+encode every consumer performs.
	spare     map[string]*delta.Delta
	suspended bool
}

// NewCollector builds a collector recognizing exactly the base
// relations registered in cat at construction time.
func NewCollector(cat *catalog.Catalog) *Collector {
	schemas := map[string]*catalog.Schema{}
	for _, name := range cat.Names() {
		schemas[name] = cat.MustGet(name).Schema
	}
	return &Collector{schemas: schemas, staged: map[string]*delta.Delta{}}
}

// Schema resolves a base relation's schema; it is the SchemaSource used
// to decode windows written through this collector.
func (c *Collector) Schema(rel string) (*catalog.Schema, bool) {
	s, ok := c.schemas[rel]
	return s, ok
}

// Suspend makes Hook a no-op until Resume: during a pipelined window
// the commit record is built from the already-coalesced net deltas, and
// staging the same base applies again would log the window twice.
// Deltas already staged stay staged for the next drain.
func (c *Collector) Suspend() {
	c.mu.Lock()
	c.suspended = true
	c.mu.Unlock()
}

// Resume re-arms Hook staging after a pipelined window.
func (c *Collector) Resume() {
	c.mu.Lock()
	c.suspended = false
	c.mu.Unlock()
}

// Hook is the storage.MutationHook staging every base-relation batch.
func (c *Collector) Hook(r *storage.Relation, batch []storage.Mutation) {
	s, ok := c.schemas[r.Def.Name]
	if !ok {
		return // a view's backing relation; views are derived, not logged
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.suspended {
		return
	}
	d, ok := c.staged[r.Def.Name]
	if !ok {
		d = delta.New(s)
		c.staged[r.Def.Name] = d
	}
	if value.EpochChecksEnabled() {
		for _, m := range batch {
			value.CheckEpoch(m.Old)
			value.CheckEpoch(m.New)
		}
	}
	for _, m := range batch {
		count := m.Count
		if count == 0 {
			count = 1
		}
		switch {
		case m.IsInsert():
			d.Insert(m.New, count)
		case m.IsDelete():
			d.Delete(m.Old, count)
		case m.IsModify():
			d.Modify(m.Old, m.New, count)
		}
	}
}

// Drain returns the staged deltas and resets the stage. The caller
// coalesces them: a transaction applied and rolled back inside one
// window (ic Reject mode) annihilates to nothing and is never logged.
//
// The returned map is recycled: it is valid until the NEXT Drain, at
// which point its deltas are truncated in place for restaging. The
// map may contain relations whose deltas are empty this window
// (recycled keys); coalescing skips them.
func (c *Collector) Drain() map[string]*delta.Delta {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.staged
	next := c.spare
	if next == nil {
		next = map[string]*delta.Delta{}
	}
	for _, d := range next {
		d.Changes = d.Changes[:0]
	}
	c.staged = next
	c.spare = out
	return out
}
