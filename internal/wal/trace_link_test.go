// Window-causal trace connectivity: a sharded durable batch-64 run must
// produce spans that all link back to their window's root — shard
// pipelines run on their own goroutines, commit fsyncs run on committer
// goroutines, and the deferred fence chains commits under later windows,
// so any break in parent threading shows up here as an orphan.
package wal_test

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/wal"
)

// windowFamily names the spans that must be transitively parented to a
// maintain.window root. Spans outside the family (wal.checkpoint,
// recovery.replay) are legitimate roots of their own.
var windowFamily = map[string]bool{
	"maintain.batch":          true,
	"maintain.propagate":      true,
	"maintain.apply_base":     true,
	"maintain.apply_views":    true,
	"maintain.apply.worker":   true,
	"maintain.merge_spanning": true,
	"wal.commit":              true,
	"wal.commit.chained":      true,
	"wal.coord.commit":        true,
}

func TestWindowTraceConnected(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, deferred := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d,deferred=%v", shards, deferred), func(t *testing.T) {
				runWindowTraceConnected(t, shards, deferred)
			})
		}
	}
}

func runWindowTraceConnected(t *testing.T, shards int, deferred bool) {
	// Spans with IDs above the marker belong to this run; everything
	// older in the global ring is ignored.
	marker := obs.Trace.Start("test.marker", 0)
	markerID := marker.ID()
	marker.Finish()

	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	s := buildShardedFig5(t, cfg, shards, 2)
	db := corpus.Figure5Database(cfg)
	const nWindows, batch = 6, 64
	windows := genWindows(db, cfg, nWindows, batch)
	dir := t.TempDir()
	sm, err := wal.AttachSharded(s, wal.OSFS{}, dir,
		wal.Options{SegmentBytes: crashSegBytes, DeferredFence: deferred})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range windows {
		if _, err := s.ApplyBatch(w); err != nil {
			t.Fatal(err)
		}
	}
	// Close drains the deferred commit chain, so every chained span has
	// finished before the ring is read.
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}

	spans, dropped := obs.Trace.Spans()
	byID := map[uint64]obs.Span{}
	roots := 0
	for _, sp := range spans {
		if sp.ID <= markerID {
			continue
		}
		byID[sp.ID] = sp
		if sp.Name == "maintain.window" {
			roots++
		}
	}
	if roots != nWindows {
		t.Fatalf("got %d maintain.window roots, want %d (dropped=%d)", roots, nWindows, dropped)
	}

	counts := map[string]int{}
	for _, sp := range byID {
		if !windowFamily[sp.Name] {
			continue
		}
		counts[sp.Name]++
		if sp.Parent == 0 {
			t.Fatalf("orphan %s span %d: no parent", sp.Name, sp.ID)
		}
		cur := sp
		for hops := 0; cur.Parent != 0; hops++ {
			if hops > 32 {
				t.Fatalf("span %s %d: parent chain does not terminate", sp.Name, sp.ID)
			}
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s %d: parent %d missing from this run's spans", cur.Name, cur.ID, cur.Parent)
			}
			cur = p
		}
		if cur.Name != "maintain.window" {
			t.Fatalf("span %s %d roots at %q, want maintain.window", sp.Name, sp.ID, cur.Name)
		}
	}

	// The cross-goroutine paths must actually have been exercised.
	if counts["maintain.batch"] == 0 || counts["wal.commit"] == 0 {
		t.Fatalf("missing expected span families: %v", counts)
	}
	if deferred && counts["wal.commit.chained"] == 0 {
		t.Fatalf("deferred fence recorded no chained commit spans: %v", counts)
	}
	if shards > 1 && counts["wal.coord.commit"] == 0 {
		t.Fatalf("sharded run recorded no coordinator commit spans: %v", counts)
	}
}
