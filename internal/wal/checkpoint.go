package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/delta"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/value"
)

// Checkpoint file layout:
//
//	magic "MVWALCK1" | u32 bodyLen (LE) | u32 crc32c (LE) | body
//
// The body holds the LSN the snapshot is consistent as of, the view-set
// key (so recovery can detect that the checkpoint predates a view-set
// change), opaque metadata, every base relation's rows, and every
// materialized view's rows plus maintenance sidecar (aggregate group
// live-counts and stale-group marks). Tuples reuse the delta codec —
// arity uvarint + key encoding — so the checkpoint introduces no second
// serialization format either.
//
// Checkpoints are written to a temp name, synced, then renamed into
// place: a crash mid-write leaves the previous checkpoint intact.
const ckptMagic = "MVWALCK1"

var ckptBytes = obs.C("wal.checkpoint.bytes")

// RelSnapshot is one base relation's full contents.
type RelSnapshot struct {
	Name string
	Rows []storage.Row
}

// ViewSnapshot is one materialized view's contents plus the sidecar
// state the maintenance pipeline needs to resume incrementally.
type ViewSnapshot struct {
	Name        string
	Fingerprint string
	Rows        []storage.Row
	Live        map[string]int64
	Stale       []string
}

// Checkpoint is a consistent snapshot of base relations and marked
// views as of LSN: replaying records with LSN greater than Checkpoint.LSN
// on top of it reproduces the committed state.
type Checkpoint struct {
	LSN        uint64
	ViewSetKey string
	Meta       map[string]string
	Rels       []RelSnapshot
	Views      []ViewSnapshot
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, fmt.Errorf("wal: %w: bad string length", value.ErrCorrupt)
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func appendRows(dst []byte, rows []storage.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		dst = binary.AppendVarint(dst, r.Count)
		dst = delta.AppendTuple(dst, r.Tuple)
	}
	return dst
}

func decodeRows(b []byte) ([]storage.Row, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("wal: %w: bad row count", value.ErrCorrupt)
	}
	b = b[sz:]
	if n > uint64(len(b))/2+1 {
		return nil, nil, fmt.Errorf("wal: %w: row count %d exceeds input", value.ErrCorrupt, n)
	}
	rows := make([]storage.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		count, sz := binary.Varint(b)
		if sz <= 0 {
			return nil, nil, fmt.Errorf("wal: %w: bad row multiplicity", value.ErrCorrupt)
		}
		t, rest, err := delta.DecodeTuple(b[sz:])
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, storage.Row{Tuple: t, Count: count})
		b = rest
	}
	return rows, b, nil
}

func (c *Checkpoint) encode() []byte {
	body := binary.AppendUvarint(nil, c.LSN)
	body = appendString(body, c.ViewSetKey)
	keys := make([]string, 0, len(c.Meta))
	for k := range c.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	body = binary.AppendUvarint(body, uint64(len(keys)))
	for _, k := range keys {
		body = appendString(body, k)
		body = appendString(body, c.Meta[k])
	}
	body = binary.AppendUvarint(body, uint64(len(c.Rels)))
	for _, r := range c.Rels {
		body = appendString(body, r.Name)
		body = appendRows(body, r.Rows)
	}
	body = binary.AppendUvarint(body, uint64(len(c.Views)))
	for _, v := range c.Views {
		body = appendString(body, v.Name)
		body = appendString(body, v.Fingerprint)
		body = appendRows(body, v.Rows)
		lk := make([]string, 0, len(v.Live))
		for k := range v.Live {
			lk = append(lk, k)
		}
		sort.Strings(lk)
		body = binary.AppendUvarint(body, uint64(len(lk)))
		for _, k := range lk {
			body = appendString(body, k)
			body = binary.AppendVarint(body, v.Live[k])
		}
		body = binary.AppendUvarint(body, uint64(len(v.Stale)))
		for _, s := range v.Stale {
			body = appendString(body, s)
		}
	}

	out := make([]byte, 0, 16+len(body))
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
	return append(out, body...)
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	bad := func(what string) error {
		return fmt.Errorf("wal: %w: checkpoint %s", value.ErrCorrupt, what)
	}
	if len(data) < 16 || string(data[:8]) != ckptMagic {
		return nil, bad("header")
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	if uint64(n) != uint64(len(data)-16) {
		return nil, bad("length")
	}
	body := data[16:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[12:16]) {
		return nil, bad("crc")
	}
	c := &Checkpoint{Meta: map[string]string{}}
	var sz int
	c.LSN, sz = binary.Uvarint(body)
	if sz <= 0 {
		return nil, bad("lsn")
	}
	body = body[sz:]
	var err error
	if c.ViewSetKey, body, err = decodeString(body); err != nil {
		return nil, err
	}
	nMeta, sz := binary.Uvarint(body)
	if sz <= 0 || nMeta > uint64(len(body)) {
		return nil, bad("meta count")
	}
	body = body[sz:]
	for i := uint64(0); i < nMeta; i++ {
		var k, v string
		if k, body, err = decodeString(body); err != nil {
			return nil, err
		}
		if v, body, err = decodeString(body); err != nil {
			return nil, err
		}
		c.Meta[k] = v
	}
	nRels, sz := binary.Uvarint(body)
	if sz <= 0 || nRels > uint64(len(body)) {
		return nil, bad("relation count")
	}
	body = body[sz:]
	for i := uint64(0); i < nRels; i++ {
		var r RelSnapshot
		if r.Name, body, err = decodeString(body); err != nil {
			return nil, err
		}
		if r.Rows, body, err = decodeRows(body); err != nil {
			return nil, err
		}
		c.Rels = append(c.Rels, r)
	}
	nViews, sz := binary.Uvarint(body)
	if sz <= 0 || nViews > uint64(len(body)) {
		return nil, bad("view count")
	}
	body = body[sz:]
	for i := uint64(0); i < nViews; i++ {
		var v ViewSnapshot
		if v.Name, body, err = decodeString(body); err != nil {
			return nil, err
		}
		if v.Fingerprint, body, err = decodeString(body); err != nil {
			return nil, err
		}
		if v.Rows, body, err = decodeRows(body); err != nil {
			return nil, err
		}
		nLive, sz := binary.Uvarint(body)
		if sz <= 0 || nLive > uint64(len(body)) {
			return nil, bad("live count")
		}
		body = body[sz:]
		v.Live = make(map[string]int64, nLive)
		for j := uint64(0); j < nLive; j++ {
			var k string
			if k, body, err = decodeString(body); err != nil {
				return nil, err
			}
			cnt, sz := binary.Varint(body)
			if sz <= 0 {
				return nil, bad("live value")
			}
			body = body[sz:]
			v.Live[k] = cnt
		}
		nStale, sz := binary.Uvarint(body)
		if sz <= 0 || nStale > uint64(len(body)) {
			return nil, bad("stale count")
		}
		body = body[sz:]
		for j := uint64(0); j < nStale; j++ {
			var s string
			if s, body, err = decodeString(body); err != nil {
				return nil, err
			}
			v.Stale = append(v.Stale, s)
		}
		c.Views = append(c.Views, v)
	}
	if len(body) != 0 {
		return nil, bad("trailing bytes")
	}
	return c, nil
}

// WriteCheckpoint durably writes c into dir (temp file + fsync +
// rename) and removes any older checkpoint files on success.
func WriteCheckpoint(fsys FS, dir string, c *Checkpoint) error {
	data := c.encode()
	final := ckptName(c.LSN)
	tmp := final + ".tmp"
	// A stale temp file from a crashed checkpoint would otherwise be
	// appended to; drop it first.
	if err := fsys.Remove(join(dir, tmp)); err != nil && !isNotExist(err) {
		return fmt.Errorf("wal: checkpoint stale temp: %w", err)
	}
	f, err := fsys.OpenAppend(join(dir, tmp))
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := fsys.Rename(join(dir, tmp), join(dir, final)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	ckptBytes.Add(int64(len(data)))
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: checkpoint readdir: %w", err)
	}
	for _, n := range names {
		if n == final {
			continue
		}
		if _, ok := parseCkptName(n); ok || strings.HasSuffix(n, ".tmp") {
			if err := fsys.Remove(join(dir, n)); err != nil {
				return fmt.Errorf("wal: checkpoint cleanup: %w", err)
			}
		}
	}
	return nil
}

// LatestCheckpoint returns the newest valid checkpoint in dir, or
// (nil, nil) if none exists. Invalid checkpoint files (a crash between
// temp-write and rename cannot produce one, but disk corruption can)
// are skipped in favor of the next older one.
func LatestCheckpoint(fsys FS, dir string) (*Checkpoint, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}
	var ckpts []string
	for _, n := range names {
		if _, ok := parseCkptName(n); ok {
			ckpts = append(ckpts, n)
		}
	}
	for i := len(ckpts) - 1; i >= 0; i-- {
		data, err := fsys.ReadFile(join(dir, ckpts[i]))
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", ckpts[i], err)
		}
		c, err := decodeCheckpoint(data)
		if err != nil {
			continue
		}
		return c, nil
	}
	return nil, nil
}

func isNotExist(err error) bool {
	return errors.Is(err, os.ErrNotExist)
}

func ckptName(lsn uint64) string {
	return fmt.Sprintf("ckpt-%016x.ckpt", lsn)
}

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
