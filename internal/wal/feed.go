package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/delta"
	"repro/internal/obs"
)

// FeedLog is the changefeed journal: an append-only record of every
// maintenance window that changed at least one materialized view, keyed
// by a contiguous feed sequence number. A reconnecting SSE subscriber
// replays the records after its Last-Event-ID from here, then splices
// onto the live fan-out — the log is the resume buffer the per-client
// rings are too small to be.
//
// The on-disk format reuses the WAL's segment layout (header, CRC32C
// frames, contiguous sequence numbers, torn-tail truncation on open),
// so scanSegment is the single scanner for both logs. The frame's
// transaction-count slot carries txns+1: rollback compensations cover
// zero transactions, and the scanner treats a zero count as a torn
// record. The body is feed-specific:
//
//	body = uvarint windowSeq | uvarint walLSN | encoded window
//
// where the window's relation names are VIEW names resolved against the
// view schemas, not base relations.
//
// Unlike Log, the feed is written without fsync — it is derivable from
// the primary WAL, so a crash costs at worst a re-derivable suffix —
// and it supports concurrent readers while the writer appends: readers
// scan segment images and simply stop at the first incomplete frame,
// which the live fan-out covers.
type FeedLog struct {
	mu       sync.Mutex
	fsys     FS
	dir      string
	segBytes int

	lastSeq uint64
	segs    []segInfo
	cur     File
	curName string
	curSize int
	buf     []byte
	fbuf    []byte
	broken  error
}

var (
	feedBytes = obs.C("feed.bytes")
	feedRecs  = obs.C("feed.records")
)

// FeedRecord is one changefeed entry as read back from the log.
type FeedRecord struct {
	// Seq is the contiguous feed sequence number (the SSE event id).
	Seq uint64
	// WindowSeq is the maintainer's window sequence that produced the
	// entry; it can skip values the feed never saw (empty windows).
	WindowSeq uint64
	// LSN is the primary WAL durability point covering the window (0
	// for in-memory systems and rollback compensations).
	LSN uint64
	// Txns is the window's transaction count (0 for a compensation).
	Txns int
	// Views holds the per-view net deltas, sorted by view name.
	Views delta.Coalesced
}

// OpenFeedLog opens (creating if needed) a changefeed directory,
// scanning segments and truncating any torn tail exactly like OpenLog.
func OpenFeedLog(fsys FS, dir string, opts Options) (*FeedLog, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: feed mkdir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: feed readdir: %w", err)
	}
	f := &FeedLog{fsys: fsys, dir: dir, segBytes: opts.segBytes()}
	var segNames []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segNames = append(segNames, n)
		}
	}
	valid := true
	for i, name := range segNames {
		if !valid {
			if err := fsys.Remove(join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: feed remove %s: %w", name, err)
			}
			continue
		}
		data, err := fsys.ReadFile(join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: feed read %s: %w", name, err)
		}
		hdrSeq, recs, validLen, hdrOK := scanSegment(data)
		nameSeq, _ := parseSegName(name)
		if !hdrOK || hdrSeq != nameSeq || (i > 0 && hdrSeq != f.lastSeq+1) {
			valid = false
			if err := fsys.Remove(join(dir, name)); err != nil {
				return nil, fmt.Errorf("wal: feed remove %s: %w", name, err)
			}
			continue
		}
		if i == 0 {
			f.lastSeq = hdrSeq - 1
		}
		if validLen < len(data) {
			if err := fsys.Truncate(join(dir, name), int64(validLen)); err != nil {
				return nil, fmt.Errorf("wal: feed truncate %s: %w", name, err)
			}
			valid = false
		}
		f.segs = append(f.segs, segInfo{name: name, firstLSN: hdrSeq})
		f.lastSeq += uint64(len(recs))
		f.curName = name
		f.curSize = validLen
	}
	return f, nil
}

// LastSeq returns the sequence number of the last appended record (0 if
// none).
func (f *FeedLog) LastSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastSeq
}

// Append writes one changefeed record and returns its feed sequence
// number. views must be non-empty and sorted by view name; the caller
// (the server hub) owns serialization of appends, but Append is still
// mutex-guarded so readers can snapshot the segment list concurrently.
// No fsync: the feed trades a re-derivable crash suffix for not adding
// a second flush to every maintenance window.
func (f *FeedLog) Append(windowSeq, walLSN uint64, txns int, views delta.Coalesced) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken != nil {
		return 0, f.broken
	}
	seq := f.lastSeq + 1
	f.buf = f.buf[:0]
	f.buf = binary.AppendUvarint(f.buf, seq)
	f.buf = binary.AppendUvarint(f.buf, uint64(txns)+1)
	f.buf = binary.AppendUvarint(f.buf, windowSeq)
	f.buf = binary.AppendUvarint(f.buf, walLSN)
	f.buf = delta.AppendWindow(f.buf, views)
	payload := f.buf
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("wal: feed payload %d exceeds max record size", len(payload))
	}
	if cap(f.fbuf) < frameOverhead+len(payload) {
		f.fbuf = make([]byte, frameOverhead+len(payload))
	}
	frame := f.fbuf[:frameOverhead+len(payload)]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameOverhead:], payload)
	if err := f.ensureSegment(seq, len(frame)); err != nil {
		f.broken = err
		return 0, err
	}
	if _, err := f.cur.Write(frame); err != nil {
		f.broken = fmt.Errorf("wal: feed write: %w", err)
		return 0, f.broken
	}
	f.curSize += len(frame)
	f.lastSeq = seq
	feedBytes.Add(int64(len(frame)))
	feedRecs.Inc()
	return seq, nil
}

// ensureSegment mirrors Log.ensureSegment for the feed's writer state.
// Callers hold f.mu.
func (f *FeedLog) ensureSegment(firstSeq uint64, frameLen int) error {
	full := func() bool {
		return f.curSize+frameLen > f.segBytes && f.curSize > segHeaderLen
	}
	if f.cur == nil && f.curName != "" && !full() {
		h, err := f.fsys.OpenAppend(join(f.dir, f.curName))
		if err != nil {
			return fmt.Errorf("wal: feed reopen segment: %w", err)
		}
		f.cur = h
		return nil
	}
	if f.cur != nil && !full() {
		return nil
	}
	if f.cur != nil {
		if err := f.cur.Close(); err != nil {
			return fmt.Errorf("wal: feed close segment: %w", err)
		}
		f.cur = nil
	}
	name := segName(firstSeq)
	h, err := f.fsys.OpenAppend(join(f.dir, name))
	if err != nil {
		return fmt.Errorf("wal: feed create segment: %w", err)
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	binary.BigEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := h.Write(hdr); err != nil {
		h.Close()
		return fmt.Errorf("wal: feed write segment header: %w", err)
	}
	f.cur = h
	f.curName = name
	f.curSize = segHeaderLen
	f.segs = append(f.segs, segInfo{name: name, firstLSN: firstSeq})
	return nil
}

// Replay streams every record with Seq > after to fn, in sequence
// order, resolving VIEW schemas through schemas. Safe to call while the
// writer appends: a reader that races an in-flight frame sees a shorter
// valid prefix (the CRC or length check fails) and stops there — the
// caller's live splice covers whatever the scan missed.
func (f *FeedLog) Replay(after uint64, schemas delta.SchemaSource, fn func(FeedRecord) error) error {
	f.mu.Lock()
	segs := append([]segInfo(nil), f.segs...)
	f.mu.Unlock()
	for _, seg := range segs {
		data, err := f.fsys.ReadFile(join(f.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: feed read %s: %w", seg.name, err)
		}
		_, recs, _, _ := scanSegment(data)
		for _, rec := range recs {
			if rec.lsn <= after {
				continue
			}
			body := rec.body
			windowSeq, sz := binary.Uvarint(body)
			if sz <= 0 {
				return fmt.Errorf("wal: feed record %d: bad window seq", rec.lsn)
			}
			body = body[sz:]
			walLSN, sz := binary.Uvarint(body)
			if sz <= 0 {
				return fmt.Errorf("wal: feed record %d: bad wal lsn", rec.lsn)
			}
			views, rest, err := delta.DecodeWindow(body[sz:], schemas)
			if err != nil {
				return fmt.Errorf("wal: feed record %d: %w", rec.lsn, err)
			}
			if len(rest) != 0 {
				return fmt.Errorf("wal: feed record %d: %d trailing bytes", rec.lsn, len(rest))
			}
			if err := fn(FeedRecord{
				Seq:       rec.lsn,
				WindowSeq: windowSeq,
				LSN:       walLSN,
				Txns:      rec.txns - 1,
				Views:     views,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close releases the open segment handle, syncing it first so restarts
// resume from a clean tail in the common case.
func (f *FeedLog) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cur != nil {
		_ = f.cur.Sync()
		err := f.cur.Close()
		f.cur = nil
		if err != nil {
			return err
		}
	}
	return nil
}
