// Crash-recovery fault injection. Every test here runs a real maintained
// Figure 5 system on a FaultFS, kills it at a chosen mutating-operation
// index (torn tails and bit flips enabled), reboots, recovers, and checks
// the recovered state is byte-for-byte the committed prefix of the
// workload — the state an oracle system reaches by applying exactly that
// prefix in memory. Because recovery replays the log tail through the
// incremental maintenance pipeline, the tests also assert that no view
// fell back to recomputation while the checkpointed view set is current.
package wal_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

const (
	crashDir      = "wal"
	crashSegBytes = 4096 // tiny segments so every run crosses a rotation
)

// buildFig5 assembles a maintained Figure 5 system with every non-leaf
// equivalence node materialized (root plus intermediates, so recovery
// exercises several views per window). ro seeds views from a checkpoint.
func buildFig5(t testing.TB, cfg corpus.Figure5Config, workers int, ro *maintain.RestoreOptions) (*corpus.Database, *dag.DAG, *maintain.Maintainer) {
	t.Helper()
	db := corpus.Figure5Database(cfg)
	d, m := buildOn(t, db, workers, ro)
	return db, d, m
}

// buildOn expands the DAG and materializes the view set over an existing
// database — in recovery, over the base relations a checkpoint restored.
func buildOn(t testing.TB, db *corpus.Database, workers int, ro *maintain.RestoreOptions) (*dag.DAG, *maintain.Maintainer) {
	t.Helper()
	d, err := dag.FromTree(db.Figure5View(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(d)
	for _, e := range d.NonLeafEqs() {
		vs[e.ID] = true
	}
	var m *maintain.Maintainer
	if ro != nil {
		m, err = maintain.NewRestored(d, db.Store, cost.PageIO{}, vs, *ro)
	} else {
		m, err = maintain.New(d, db.Store, cost.PageIO{}, vs)
	}
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = workers
	return d, m
}

// fig5Gen deterministically generates the crash workload: 80% hot-item
// price modifications, 20% new-sale inserts. It never consults database
// state — only a sequence counter — so any prefix of its output can be
// regenerated independently for the oracle and the recovered system.
type fig5Gen struct {
	sSchema *catalog.Schema
	tSchema *catalog.Schema
	hot     []string
	price   map[string]int64
	seq     int
	modT    *txn.Type
	insS    *txn.Type
}

func genWindows(db *corpus.Database, cfg corpus.Figure5Config, nWindows, batch int) [][]txn.Transaction {
	g := &fig5Gen{
		sSchema: db.Catalog.MustGet("S").Schema,
		tSchema: db.Catalog.MustGet("T").Schema,
		price:   map[string]int64{},
		modT: &txn.Type{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		insS: &txn.Type{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "S", Kind: txn.Insert, Size: 1}}},
	}
	hotN := 8
	if hotN > cfg.Items {
		hotN = cfg.Items
	}
	for i := 0; i < hotN; i++ {
		item := fmt.Sprintf("item%03d", i)
		g.hot = append(g.hot, item)
		g.price[item] = int64(10 + i%7) // matches Figure5Database seeding
	}
	out := make([][]txn.Transaction, nWindows)
	for w := range out {
		out[w] = make([]txn.Transaction, batch)
		for i := range out[w] {
			out[w][i] = g.next()
		}
	}
	return out
}

func (g *fig5Gen) next() txn.Transaction {
	seq := g.seq
	g.seq++
	if seq%5 == 4 { // new sale
		item := g.hot[(seq*3)%len(g.hot)]
		d := delta.New(g.sSchema)
		d.Insert(value.Tuple{
			value.NewString(fmt.Sprintf("sx%06d", seq)),
			value.NewString(item),
			value.NewInt(int64(1 + seq%5)),
		}, 1)
		return txn.Transaction{Type: g.insS, Updates: map[string]*delta.Delta{"S": d}}
	}
	item := g.hot[seq%len(g.hot)]
	old := g.price[item]
	next := int64(10 + (seq*7+3)%97)
	if next == old {
		next++
	}
	g.price[item] = next
	d := delta.New(g.tSchema)
	d.Modify(
		value.Tuple{value.NewString(item), value.NewInt(old)},
		value.Tuple{value.NewString(item), value.NewInt(next)},
		1)
	return txn.Transaction{Type: g.modT, Updates: map[string]*delta.Delta{"T": d}}
}

// runDurable attaches durability and pushes the windows through the
// batched pipeline, checkpointing every ckptEvery windows. It returns
// the LSNs of the windows whose commit was acknowledged before the first
// error — the lower bound on what recovery must reproduce.
func runDurable(db *corpus.Database, m *maintain.Maintainer, fsys wal.FS, dir string, windows [][]txn.Transaction, ckptEvery int) ([]uint64, error) {
	return runDurableOpts(db, m, fsys, dir, windows, ckptEvery, wal.Options{SegmentBytes: crashSegBytes})
}

// runDurableOpts is runDurable with caller-chosen log options (the
// deferred-fence matrix flips Options.DeferredFence).
func runDurableOpts(db *corpus.Database, m *maintain.Maintainer, fsys wal.FS, dir string, windows [][]txn.Transaction, ckptEvery int, opts wal.Options) ([]uint64, error) {
	mgr, err := wal.Attach(m, db.Catalog, fsys, dir, opts)
	if err != nil {
		return nil, err
	}
	var acked []uint64
	for i, w := range windows {
		rep, err := m.ApplyBatch(w)
		if err != nil {
			return acked, err
		}
		acked = append(acked, rep.LSN)
		if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
			if err := mgr.Checkpoint(nil); err != nil {
				return acked, err
			}
		}
	}
	return acked, mgr.Close()
}

func bag(rows []storage.Row) map[string]int64 {
	out := map[string]int64{}
	for _, r := range rows {
		k := string(value.AppendKey(nil, r.Tuple))
		out[k] += r.Count
		if out[k] == 0 {
			delete(out, k)
		}
	}
	return out
}

func bagDiff(label string, a, b map[string]int64) string {
	for k, n := range a {
		if b[k] != n {
			return fmt.Sprintf("%s: key %x count %d vs %d", label, k, n, b[k])
		}
	}
	for k, n := range b {
		if a[k] != n {
			return fmt.Sprintf("%s: key %x count %d vs %d", label, k, a[k], n)
		}
	}
	return ""
}

// diffStates compares base relations and materialized views of two
// systems as signed bags; "" means identical.
func diffStates(cat *catalog.Catalog, ast *storage.Store, am *maintain.Maintainer, bst *storage.Store, bm *maintain.Maintainer) string {
	for _, name := range cat.Names() {
		ar, ok := ast.Get(name)
		if !ok {
			return fmt.Sprintf("relation %s missing", name)
		}
		br, ok := bst.Get(name)
		if !ok {
			return fmt.Sprintf("relation %s missing from oracle", name)
		}
		if d := bagDiff(name, bag(ar.Snapshot()), bag(br.Snapshot())); d != "" {
			return d
		}
	}
	avs, bvs := am.ViewStates(), bm.ViewStates()
	if len(avs) != len(bvs) {
		return fmt.Sprintf("view count %d vs %d", len(avs), len(bvs))
	}
	for name, a := range avs {
		b, ok := bvs[name]
		if !ok {
			return fmt.Sprintf("view %s missing from oracle", name)
		}
		if d := bagDiff("view "+name, bag(a.Rows), bag(b.Rows)); d != "" {
			return d
		}
	}
	return ""
}

// dumpOnFailure persists the surviving FaultFS contents under
// $WAL_FAILURE_DIR so CI can upload the exact image that failed.
func dumpOnFailure(t *testing.T, fsys *wal.FaultFS) {
	t.Helper()
	if !t.Failed() {
		return
	}
	dir := os.Getenv("WAL_FAILURE_DIR")
	if dir == "" {
		return
	}
	sub := filepath.Join(dir, strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()))
	if err := fsys.DumpTo(sub); err != nil {
		t.Logf("failed to dump WAL state: %v", err)
	} else {
		t.Logf("surviving WAL state dumped to %s", sub)
	}
	dumpFlight(t, sub)
}

// dumpFlight writes the flight recorder's current ring next to a failed
// test's WAL image: the black box says what the pipeline was doing
// (windows, routes, fsyncs, GC) around the failing fault point.
func dumpFlight(t *testing.T, sub string) {
	t.Helper()
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return
	}
	path := filepath.Join(sub, "flight.bin")
	if err := obs.Flight().DumpToFile(path); err != nil {
		t.Logf("failed to dump flight recorder: %v", err)
	} else {
		t.Logf("flight recorder dumped to %s", path)
	}
}

// verifyRecovery recovers from fsys and asserts the recovery contract:
//   - the recovered LSN covers every acknowledged commit and overshoots
//     by at most the one record that was in flight at crash time;
//   - base relations and every view equal the committed-prefix oracle;
//   - no view was recomputed (unless forceRecompute simulates a stale
//     checkpoint, in which case all of them were — and state still
//     converges);
//   - the recovered system keeps maintaining correctly: the rest of the
//     workload lands on identical state and zero drift.
func verifyRecovery(t *testing.T, fsys *wal.FaultFS, dir string, cfg corpus.Figure5Config, workers, nWindows, batch int, acked []uint64, forceRecompute bool) {
	t.Helper()
	verifyRecoveryN(t, fsys, dir, cfg, workers, nWindows, batch, acked, forceRecompute, 1)
}

// verifyRecoveryN is verifyRecovery with a caller-chosen bound on how
// far the recovered LSN may overshoot the last acknowledged commit: 1
// for the default fence (one record in flight at crash time), 2 for the
// deferred fence (the previous window's record may still be in flight
// while the current window's is already spawned).
func verifyRecoveryN(t *testing.T, fsys *wal.FaultFS, dir string, cfg corpus.Figure5Config, workers, nWindows, batch int, acked []uint64, forceRecompute bool, maxAhead int) {
	t.Helper()
	db2 := corpus.Figure5Database(cfg)
	rec, err := wal.BeginRecovery(db2.Catalog, db2.Store, fsys, dir)
	if err != nil {
		// A crash inside Attach's initial checkpoint can leave no durable
		// state at all; acceptable only if nothing was ever acknowledged.
		if len(acked) == 0 && strings.Contains(err.Error(), "no checkpoint") {
			return
		}
		t.Fatalf("BeginRecovery: %v (after %d acked windows)", err, len(acked))
	}
	ro := rec.RestoreOptions()
	if forceRecompute {
		ro.Source = func(string) (*maintain.ViewState, bool) { return nil, false }
	}
	d2, m2 := buildOn(t, db2, workers, &ro)
	mgr, err := rec.Resume(m2, wal.Options{SegmentBytes: crashSegBytes})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer mgr.Close()

	views := len(m2.ViewStates())
	if forceRecompute {
		if mgr.RecomputedViews != views {
			t.Fatalf("RecomputedViews = %d, want %d (source misses everything)", mgr.RecomputedViews, views)
		}
	} else if mgr.RecomputedViews != 0 {
		t.Fatalf("RecomputedViews = %d, want 0: checkpointed view set is current", mgr.RecomputedViews)
	}

	prefix := int(mgr.RecoveredLSN)
	lastAcked := 0
	if len(acked) > 0 {
		lastAcked = int(acked[len(acked)-1])
	}
	if prefix < lastAcked || prefix > lastAcked+maxAhead {
		t.Fatalf("recovered LSN %d outside [%d,%d]: durability regressed or invented a commit", prefix, lastAcked, lastAcked+maxAhead)
	}
	if prefix > nWindows {
		t.Fatalf("recovered LSN %d beyond the %d-window workload", prefix, nWindows)
	}

	// Oracle: a fresh in-memory system applying exactly the committed
	// prefix of the same deterministic workload.
	odb, _, om := buildFig5(t, cfg, 1, nil)
	owins := genWindows(odb, cfg, nWindows, batch)
	for i := 0; i < prefix; i++ {
		if _, err := om.ApplyBatch(owins[i]); err != nil {
			t.Fatalf("oracle window %d: %v", i+1, err)
		}
	}
	if diff := diffStates(db2.Catalog, db2.Store, m2, odb.Store, om); diff != "" {
		dumpOnFailureNow(t, fsys)
		t.Fatalf("recovered state != committed-prefix oracle (prefix %d): %s", prefix, diff)
	}

	// The recovered system keeps working: run the rest of the workload on
	// both systems, compare again, and check views against recomputation.
	rwins := genWindows(db2, cfg, nWindows, batch)
	for i := prefix; i < nWindows; i++ {
		if _, err := m2.ApplyBatch(rwins[i]); err != nil {
			t.Fatalf("post-recovery window %d: %v", i+1, err)
		}
		if _, err := om.ApplyBatch(owins[i]); err != nil {
			t.Fatalf("oracle window %d: %v", i+1, err)
		}
	}
	if diff := diffStates(db2.Catalog, db2.Store, m2, odb.Store, om); diff != "" {
		t.Fatalf("post-recovery maintenance diverged: %s", diff)
	}
	for _, e := range d2.NonLeafEqs() {
		drift, err := m2.Drift(e)
		if err != nil {
			t.Fatal(err)
		}
		if drift != "" {
			t.Fatalf("post-recovery drift at %s: %s", e, drift)
		}
	}
}

// dumpOnFailureNow dumps before t.Fatalf marks the test failed (the
// Cleanup-based dump only sees t.Failed() afterwards; both paths are
// kept so a dump happens exactly once per failing subtest).
func dumpOnFailureNow(t *testing.T, fsys *wal.FaultFS) {
	t.Helper()
	dir := os.Getenv("WAL_FAILURE_DIR")
	if dir == "" {
		return
	}
	sub := filepath.Join(dir, strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()))
	if err := fsys.DumpTo(sub); err == nil {
		t.Logf("surviving WAL state dumped to %s", sub)
	}
	dumpFlight(t, sub)
}

// TestCrashRecoveryEveryPoint enumerates every mutating filesystem
// operation of a checkpointed durable run and crashes at each one, with
// torn tails and bit flips, cycling the view-application worker count.
func TestCrashRecoveryEveryPoint(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	const nWindows, batch, ckptEvery = 8, 4, 3

	// Reference run without a crash: counts the fault points and pins the
	// window↔LSN mapping the prefix oracle depends on.
	ref := wal.NewFaultFS(1)
	db, _, m := buildFig5(t, cfg, 1, nil)
	acked, err := runDurable(db, m, ref, crashDir, genWindows(db, cfg, nWindows, batch), ckptEvery)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for i, lsn := range acked {
		if lsn != uint64(i+1) {
			t.Fatalf("window %d acked at LSN %d: windows and LSNs must be 1:1", i+1, lsn)
		}
	}
	total := ref.Ops()
	if total < nWindows*2 {
		t.Fatalf("suspiciously few fault points: %d", total)
	}
	t.Logf("%d fault-injection points", total)

	workerCycle := []int{1, 2, 4, 8}
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for crashAt := 1; crashAt <= total; crashAt += stride {
		crashAt := crashAt
		t.Run(fmt.Sprintf("op%03d", crashAt), func(t *testing.T) {
			workers := workerCycle[crashAt%len(workerCycle)]
			fsys := wal.NewFaultFS(uint64(crashAt)*2654435761 + 1)
			fsys.TornTail = true
			fsys.FlipBit = true
			fsys.SetCrashAfter(crashAt)
			t.Cleanup(func() { dumpOnFailure(t, fsys) })
			db, _, m := buildFig5(t, cfg, workers, nil)
			acked, err := runDurable(db, m, fsys, crashDir, genWindows(db, cfg, nWindows, batch), ckptEvery)
			if err == nil {
				t.Fatalf("crash scheduled at op %d never fired", crashAt)
			}
			if !errors.Is(err, wal.ErrCrashed) {
				t.Fatalf("crash surfaced as %v, want wal.ErrCrashed", err)
			}
			if !fsys.Crashed() {
				t.Fatal("filesystem not down after injected crash")
			}
			fsys.Reboot()
			verifyRecovery(t, fsys, crashDir, cfg, workers, nWindows, batch, acked, false)
		})
	}
}

// TestCrashRecoveryProperty samples random crash points of random-seeded
// schedules — the property-test companion to the exhaustive enumeration,
// covering the seed-dependent torn-tail/bit-flip surface.
func TestCrashRecoveryProperty(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 10, RPerItem: 2, SPerItem: 3}
	const nWindows, batch, ckptEvery = 6, 3, 2
	seeds := []uint64{11, 23, 47}
	if testing.Short() {
		seeds = seeds[:1]
	}
	workerCycle := []int{1, 2, 4, 8}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ref := wal.NewFaultFS(seed)
			db, _, m := buildFig5(t, cfg, 1, nil)
			if _, err := runDurable(db, m, ref, crashDir, genWindows(db, cfg, nWindows, batch), ckptEvery); err != nil {
				t.Fatalf("reference run: %v", err)
			}
			total := ref.Ops()
			rng := seed
			next := func() uint64 { // splitmix64
				rng += 0x9e3779b97f4a7c15
				z := rng
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			points := map[int]bool{}
			for _, p := range []int{1, 2, total / 4, total / 2, 3 * total / 4, total - 1, total} {
				if p >= 1 && p <= total {
					points[p] = true
				}
			}
			for i := 0; i < 4; i++ {
				points[1+int(next()%uint64(total))] = true
			}
			sorted := make([]int, 0, len(points))
			for p := range points {
				sorted = append(sorted, p)
			}
			sort.Ints(sorted)
			for _, crashAt := range sorted {
				crashAt := crashAt
				t.Run(fmt.Sprintf("op%03d", crashAt), func(t *testing.T) {
					workers := workerCycle[(crashAt+int(seed))%len(workerCycle)]
					fsys := wal.NewFaultFS(seed*1000003 + uint64(crashAt))
					fsys.TornTail = true
					fsys.FlipBit = true
					fsys.SetCrashAfter(crashAt)
					t.Cleanup(func() { dumpOnFailure(t, fsys) })
					db, _, m := buildFig5(t, cfg, workers, nil)
					acked, err := runDurable(db, m, fsys, crashDir, genWindows(db, cfg, nWindows, batch), ckptEvery)
					if err == nil {
						t.Fatalf("crash scheduled at op %d never fired", crashAt)
					}
					if !errors.Is(err, wal.ErrCrashed) {
						t.Fatalf("crash surfaced as %v, want wal.ErrCrashed", err)
					}
					fsys.Reboot()
					verifyRecovery(t, fsys, crashDir, cfg, workers, nWindows, batch, acked, false)
				})
			}
		})
	}
}

// TestRecoveryAfterCleanClose recovers a cleanly closed system: full
// replay, zero recomputed views, state identical to the full-run oracle.
func TestRecoveryAfterCleanClose(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	const nWindows, batch = 6, 4
	fsys := wal.NewFaultFS(5)
	t.Cleanup(func() { dumpOnFailure(t, fsys) })
	db, _, m := buildFig5(t, cfg, 2, nil)
	acked, err := runDurable(db, m, fsys, crashDir, genWindows(db, cfg, nWindows, batch), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(acked) != nWindows {
		t.Fatalf("acked %d of %d windows", len(acked), nWindows)
	}
	verifyRecovery(t, fsys, crashDir, cfg, 2, nWindows, batch, acked, false)
}

// TestRecoveryRecomputeFallback simulates a checkpoint that predates the
// current view set: every view misses the restore source, gets counted
// as recomputed, and the system still converges to the oracle.
func TestRecoveryRecomputeFallback(t *testing.T) {
	cfg := corpus.Figure5Config{Items: 12, RPerItem: 2, SPerItem: 2}
	const nWindows, batch = 6, 4
	fsys := wal.NewFaultFS(99)
	t.Cleanup(func() { dumpOnFailure(t, fsys) })
	db, _, m := buildFig5(t, cfg, 2, nil)
	acked, err := runDurable(db, m, fsys, crashDir, genWindows(db, cfg, nWindows, batch), 0)
	if err != nil {
		t.Fatal(err)
	}
	verifyRecovery(t, fsys, crashDir, cfg, 2, nWindows, batch, acked, true)
}
