// Package wal implements the durability subsystem: a segmented,
// CRC32C-framed write-ahead log of base-relation deltas with group
// commit aligned to the maintenance pipeline's batch windows, view
// checkpoints, and incremental crash recovery that replays only the log
// tail through the normal delta pipeline.
//
// The filesystem is abstracted behind FS so the fault-injection harness
// (FaultFS) can crash the log at any mutating operation and recovery
// can be proven to converge to the committed prefix in every schedule.
package wal

import (
	"os"
	"path/filepath"
	"sort"
)

// File is an append-only log file handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes all previously written bytes durable.
	Sync() error
	Close() error
}

// FS is the minimal filesystem surface the log needs. Paths are plain
// OS paths; ReadDir returns sorted base names.
type FS interface {
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	Truncate(path string, size int64) error
	Rename(oldPath, newPath string) error
	Remove(path string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// Best effort: reserve extents for the segment up front so each
	// commit's fsync pays only for its record, not for block allocation
	// in the filesystem journal — which is kernel CPU that a group
	// commit on a single core cannot overlap with the next window.
	preallocate(f, 4<<20)
	return f, nil
}

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

// join builds a path inside the WAL directory; kept here so FaultFS and
// the log agree on path construction.
func join(dir, name string) string { return filepath.Join(dir, name) }
