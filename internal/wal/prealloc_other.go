//go:build !linux

package wal

import "os"

// preallocate is a no-op where fallocate is unavailable; appends then
// allocate blocks as they always did.
func preallocate(*os.File, int64) {}
