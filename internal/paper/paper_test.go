package paper_test

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/paper"
)

func fixture(t *testing.T) *paper.Fixture {
	t.Helper()
	f, err := paper.NewFixture(corpus.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTablesRender(t *testing.T) {
	f := fixture(t)
	t1 := f.Table1()
	for _, want := range []string{"Q2Ld", "Q3e", "11", "13", "2"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := f.Table2()
	for _, want := range []string{"N3", "N4", "21", "3"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
	t3 := f.Table3()
	if !strings.Contains(t3, "via E2") || !strings.Contains(t3, "via E3") {
		t.Errorf("Table3 missing track labels:\n%s", t3)
	}
	t4 := f.Table4()
	for _, want := range []string{"3.5", "12", "24", "about 30%"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table4 missing %q:\n%s", want, t4)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	f := fixture(t)
	f1 := f.Figure1()
	if !strings.Contains(f1, "Aggregate[") || !strings.Contains(f1, "Join[") {
		t.Errorf("Figure1:\n%s", f1)
	}
	f2 := f.Figure2()
	if !strings.Contains(f2, "base relation") {
		t.Errorf("Figure2:\n%s", f2)
	}
}

func TestOptimumIsN3(t *testing.T) {
	f := fixture(t)
	res, err := f.Optimum()
	if err != nil {
		t.Fatal(err)
	}
	views := res.AdditionalViews(f.D)
	if len(views) != 1 || views[0] != f.N3 {
		t.Errorf("optimum = %v, want {N3}", views)
	}
}

func TestMeasuredParityAllMatch(t *testing.T) {
	rows, report, err := paper.MeasuredParity(corpus.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if float64(r.Measured) != r.Estimated {
			t.Errorf("%s %s: measured %d != estimated %g\n%s",
				r.Set, r.Txn, r.Measured, r.Estimated, report)
		}
	}
	// Spot-check the paper's numbers.
	want := map[string]float64{
		"{}/>Emp": 13, "{}/>Dept": 11,
		"{N3}/>Emp": 5, "{N3}/>Dept": 2,
		"{N4}/>Emp": 16, "{N4}/>Dept": 32,
	}
	for _, r := range rows {
		if w := want[r.Set+"/"+r.Txn]; r.Estimated != w {
			t.Errorf("%s %s = %g, want %g", r.Set, r.Txn, r.Estimated, w)
		}
	}
}

func TestFigure3Report(t *testing.T) {
	out, err := paper.Figure3(corpus.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"13", "2", "V1", "Dept Emp"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure5Report(t *testing.T) {
	rep, out, err := paper.Figure5(corpus.DefaultFigure5Config())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ArticulationNodes == 0 {
		t.Error("no articulation nodes found")
	}
	if rep.ShieldedBest != rep.ExhaustiveBest {
		t.Errorf("shielded %g != exhaustive %g\n%s", rep.ShieldedBest, rep.ExhaustiveBest, out)
	}
	if rep.ShieldedExplored >= rep.ExhaustiveExplored {
		t.Errorf("no search reduction: %d vs %d", rep.ShieldedExplored, rep.ExhaustiveExplored)
	}
}

func TestSweepFanoutShape(t *testing.T) {
	rows, _, err := paper.SweepFanout(100, []int{1, 2, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	// The advantage of {N3} grows with fan-out: ratio decreases.
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio > rows[i-1].Ratio+1e-9 {
			t.Errorf("ratio not monotone: %v", rows)
		}
	}
	last := rows[len(rows)-1]
	if last.Ratio > 0.2 {
		t.Errorf("at fan-out 50 the ratio should be far below 1, got %g", last.Ratio)
	}
}

func TestSweepWeightsAlwaysN3(t *testing.T) {
	rows, _, err := paper.SweepWeights(corpus.PaperConfig(), []float64{0.01, 1, 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Chosen != rows[0].Chosen {
			t.Errorf("chosen set should be weight-independent on the paper example: %v", rows)
		}
	}
}

func TestSweepOptimizersQuality(t *testing.T) {
	rows, _, err := paper.SweepOptimizers([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	best := map[int]float64{}
	for _, r := range rows {
		if r.Method == "exhaustive" {
			best[r.Chain] = r.Best
		}
	}
	for _, r := range rows {
		// Where exhaustive ran, nothing may beat it (it is exact), and
		// greedy must explore fewer sets.
		exh, ranExh := best[r.Chain]
		if !ranExh {
			continue
		}
		if r.Best < exh-1e-9 {
			t.Errorf("%s on chain %d beat exhaustive: %g < %g", r.Method, r.Chain, r.Best, exh)
		}
		if r.Method == "greedy" && r.Explored >= exploredOf(rows, r.Chain, "exhaustive") {
			t.Errorf("greedy explored %d >= exhaustive on chain %d", r.Explored, r.Chain)
		}
	}
}

func exploredOf(rows []paper.SweepOptimizersRow, chain int, method string) int {
	for _, r := range rows {
		if r.Chain == chain && r.Method == method {
			return r.Explored
		}
	}
	return 0
}

func TestMeasuredWorkload(t *testing.T) {
	cfg := corpus.Config{Departments: 20, EmpsPerDept: 5}
	with, err := paper.MeasuredWorkload(cfg, true, 20)
	if err != nil {
		t.Fatal(err)
	}
	without, err := paper.MeasuredWorkload(cfg, false, 20)
	if err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Errorf("maintaining SumOfSals should reduce total I/O: %d vs %d", with, without)
	}
}

// TestSweepBufferShape: I/O per transaction decreases monotonically (up
// to noise-free determinism, exactly) with buffer capacity, and a
// zero-capacity buffer reproduces the cold-model estimate on the uniform
// part of the stream.
func TestSweepBufferShape(t *testing.T) {
	cfg := corpus.Config{Departments: 50, EmpsPerDept: 5}
	rows, out, err := paper.SweepBuffer(cfg, []int{0, 16, 128, 1024}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PerTxn > rows[i-1].PerTxn+1e-9 {
			t.Errorf("I/O per txn not monotone in buffer capacity:\n%s", out)
		}
	}
	if rows[0].HitRate != 0 {
		t.Error("cold run should have no hits")
	}
	last := rows[len(rows)-1]
	if last.PerTxn >= rows[0].PerTxn {
		t.Errorf("large buffer should reduce I/O: %g vs %g", last.PerTxn, rows[0].PerTxn)
	}
	if last.HitRate <= 0.3 {
		t.Errorf("hot working set should hit often, got %.2f", last.HitRate)
	}
}

// TestSweepBatchAmortizes: same-department batches amortize (per-tuple
// I/O declines and the batch beats singletons), cross-department batches
// have nothing to share and stay linear.
func TestSweepBatchAmortizes(t *testing.T) {
	rows, out, err := paper.SweepBatch(corpus.Config{Departments: 100, EmpsPerDept: 50}, []int{1, 2, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PerTuple > rows[i-1].PerTuple+1e-9 {
			t.Errorf("per-tuple I/O not monotone:\n%s", out)
		}
	}
	for _, r := range rows {
		if r.SameDeptIO > r.SingletonsIO {
			t.Errorf("batch of %d (%d I/O) costs more than singletons (%d)\n%s",
				r.BatchSize, r.SameDeptIO, r.SingletonsIO, out)
		}
		if r.SameDeptIO > r.CrossDeptIO {
			t.Errorf("same-department batch should not cost more than cross-department\n%s", out)
		}
	}
	if rows[0].SameDeptIO != rows[0].SingletonsIO {
		t.Error("k=1 batch and singleton must agree")
	}
	last := rows[len(rows)-1]
	if last.PerTuple > 1 {
		t.Errorf("large same-department batch should amortize below 1 I/O per tuple, got %g", last.PerTuple)
	}
}
