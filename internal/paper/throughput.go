// Throughput harness: the measured transactions-per-second story for
// the batched maintenance pipeline, on the Figure 5 sales schema under
// a skewed update stream (hot-item price changes dominated by a small
// item set, with a trickle of new sales). Batching pays twice here:
// repeated modifications of the same hot tuple annihilate within a
// window before any propagation, and the track-prefix queries are posed
// once per window instead of once per transaction.
package paper

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// BenchSchemaVersion stamps BENCH_maintain.json rows so the bench
// trajectory stays machine-comparable across PRs: bump it whenever the
// row layout or the meaning of a measured column changes.
//
//	1: batch/workers/txns/txns_per_sec/page_io_per_txn
//	2: + apply_p50_ns/apply_p99_ns (maintain.apply.ns histogram window)
//	3: + optional durable/fsync_p99_ns/recovery_replay_txns_sec rows
//	     (write-ahead-logged runs; absent on in-memory rows)
//	4: + shards/cpus columns on sharded-pipeline rows (shards >= 1 ran
//	     through maintain.Sharded; absent/0 means the unsharded pipeline)
//	5: + allocs_per_txn/bytes_per_txn (heap allocation inside the timed
//	     window only — runtime.MemStats deltas around the measured run,
//	     excluding harness setup and oracle verification)
//	6: + gc_pause_p99_ns (GC stop-the-world pause tail inside the timed
//	     window, from the runtime.gc.pause.ns histogram) and
//	     obs_overhead_pct (throughput cost of the always-on tracer +
//	     flight recorder, measured by toggling both off; only on rows
//	     produced by MeasureObsOverhead)
//	7: + gc_cycles_per_10k_txns (completed GC cycles inside the timed
//	     window, normalized per 10k transactions — the cross-window
//	     recycling story measured where it lives) and the n=8192
//	     long-stream steady-state row
//	8: + client-swarm serving rows (MeasureServing): read_p99_ns
//	     (client-side snapshot-read latency tail), read_clients and
//	     sse_clients (swarm composition), no_reader_txns_per_sec (the
//	     same paced writer measured without readers — the denominator
//	     of the serving-overhead gate)
const BenchSchemaVersion = 8

// Throughput is a maintained Figure 5 system plus a deterministic
// hot-item workload generator. The generator never consults database
// state, so the same stream can be replayed per-transaction or in
// windows and must land on identical view contents.
type Throughput struct {
	db *corpus.Database
	m  *maintain.Maintainer
	d  *dag.DAG

	hot   []string         // hot item names (all T modifications hit these)
	price map[string]int64 // locally tracked current T.Price per item
	seq   int

	typeModT *txn.Type
	typeInsS *txn.Type

	// Reusable window machinery for the batched path: the transaction
	// slice and one generator slot per position, each owning its deltas,
	// update maps and tuple backing arrays. A slot's memory is rewritten
	// in place the next time its position recurs, which is safe under the
	// pipeline's ownership contract: transaction deltas (like the window
	// report) are dead once the next ApplyBatch begins, and everything
	// stored longer — relation state, WAL records — is cloned or encoded
	// before then.
	wbuf  []txn.Transaction
	slots []txnSlot
	idbuf []byte // sale-id scratch
}

// txnSlot is one reusable transaction generator position.
type txnSlot struct {
	dT, dS     *delta.Delta
	updT, updS map[string]*delta.Delta
	oldT, newT value.Tuple // hot-item modify tuples (2 cols)
	sT         value.Tuple // sale insert tuple (3 cols)
}

// NewThroughput builds the Figure 5 database, expands its DAG, marks
// every non-leaf equivalence node as materialized (root view plus all
// intermediate join/aggregate views, so the worker pool has independent
// views to fan out over) and returns a ready harness. workers bounds
// ApplyBatch's view-application goroutines.
func NewThroughput(cfg corpus.Figure5Config, workers int) (*Throughput, error) {
	db := corpus.Figure5Database(cfg)
	d, err := dag.FromTree(db.Figure5View(0))
	if err != nil {
		return nil, err
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		return nil, err
	}
	vs := tracks.RootSet(d)
	for _, e := range d.NonLeafEqs() {
		vs[e.ID] = true
	}
	m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
	if err != nil {
		return nil, err
	}
	m.Workers = workers

	hotN := 8
	if hotN > cfg.Items {
		hotN = cfg.Items
	}
	th := &Throughput{
		db:    db,
		m:     m,
		d:     d,
		price: map[string]int64{},
		typeModT: &txn.Type{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		typeInsS: &txn.Type{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "S", Kind: txn.Insert, Size: 1}}},
	}
	for i := 0; i < hotN; i++ {
		item := fmt.Sprintf("item%03d", i)
		th.hot = append(th.hot, item)
		th.price[item] = int64(10 + i%7) // matches Figure5Database seeding
	}
	return th, nil
}

// nextTxn deterministically draws the next transaction: 80% hot-item
// price modifications, 20% new-sale inserts.
func (th *Throughput) nextTxn() txn.Transaction {
	seq := th.seq
	th.seq++
	if seq%5 == 4 { // new sale
		sDef := th.db.Catalog.MustGet("S")
		item := th.hot[(seq*3)%len(th.hot)]
		d := delta.New(sDef.Schema)
		d.Insert(value.Tuple{
			value.NewString(fmt.Sprintf("sx%06d", seq)),
			value.NewString(item),
			value.NewInt(int64(1 + seq%5)),
		}, 1)
		return txn.Transaction{Type: th.typeInsS, Updates: map[string]*delta.Delta{"S": d}}
	}
	// Hot-item price change.
	tDef := th.db.Catalog.MustGet("T")
	item := th.hot[seq%len(th.hot)]
	old := th.price[item]
	next := int64(10 + (seq*7+3)%97)
	if next == old {
		next++
	}
	th.price[item] = next
	d := delta.New(tDef.Schema)
	d.Modify(
		value.Tuple{value.NewString(item), value.NewInt(old)},
		value.Tuple{value.NewString(item), value.NewInt(next)},
		1)
	return txn.Transaction{Type: th.typeModT, Updates: map[string]*delta.Delta{"T": d}}
}

// fillTxn writes the next transaction of the same deterministic stream
// into slot i of the reused window. It allocates only on a position's
// first use — plus the one string per new sale id that the stored
// relation genuinely retains — so the batched measurement loop adds no
// generator garbage to the timed window.
func (th *Throughput) fillTxn(t *txn.Transaction, i int) {
	seq := th.seq
	th.seq++
	s := &th.slots[i]
	if seq%5 == 4 { // new sale
		if s.dS == nil {
			s.dS = delta.New(th.db.Catalog.MustGet("S").Schema)
			s.updS = map[string]*delta.Delta{"S": s.dS}
			s.sT = make(value.Tuple, 3)
		}
		item := th.hot[(seq*3)%len(th.hot)]
		s.sT[0] = value.NewString(string(appendSaleID(th.idbuf[:0], seq)))
		s.sT[1] = value.NewString(item)
		s.sT[2] = value.NewInt(int64(1 + seq%5))
		s.dS.Changes = s.dS.Changes[:0]
		s.dS.Insert(s.sT, 1)
		t.Type, t.Updates = th.typeInsS, s.updS
		return
	}
	if s.dT == nil {
		s.dT = delta.New(th.db.Catalog.MustGet("T").Schema)
		s.updT = map[string]*delta.Delta{"T": s.dT}
		s.oldT = make(value.Tuple, 2)
		s.newT = make(value.Tuple, 2)
	}
	item := th.hot[seq%len(th.hot)]
	old := th.price[item]
	next := int64(10 + (seq*7+3)%97)
	if next == old {
		next++
	}
	th.price[item] = next
	s.oldT[0], s.oldT[1] = value.NewString(item), value.NewInt(old)
	s.newT[0], s.newT[1] = value.NewString(item), value.NewInt(next)
	s.dT.Changes = s.dT.Changes[:0]
	s.dT.Modify(s.oldT, s.newT, 1)
	t.Type, t.Updates = th.typeModT, s.updT
}

// appendSaleID renders the "sx%06d" sale id without fmt.
func appendSaleID(b []byte, seq int) []byte {
	b = append(b, "sx"...)
	var tmp [20]byte
	digits := strconv.AppendInt(tmp[:0], int64(seq), 10)
	for pad := 6 - len(digits); pad > 0; pad-- {
		b = append(b, '0')
	}
	return append(b, digits...)
}

// Run executes n transactions of the workload in windows of size batch
// (batch <= 1 takes the per-transaction Apply path — the baseline the
// pipeline is measured against) and returns the page I/Os charged.
func (th *Throughput) Run(n, batch int) (storage.IOCounter, error) {
	io0 := th.db.Store.IO.Snapshot()
	if batch <= 1 {
		for i := 0; i < n; i++ {
			t := th.nextTxn()
			if _, err := th.m.Apply(t.Type, t.Updates); err != nil {
				return storage.IOCounter{}, err
			}
		}
		return th.db.Store.IO.Snapshot().Sub(io0), nil
	}
	for done := 0; done < n; {
		size := batch
		if n-done < size {
			size = n - done
		}
		if cap(th.wbuf) < size {
			th.wbuf = make([]txn.Transaction, size)
			th.slots = make([]txnSlot, size)
		}
		window := th.wbuf[:size]
		for i := range window {
			th.fillTxn(&window[i], i)
		}
		if _, err := th.m.ApplyBatch(window); err != nil {
			return storage.IOCounter{}, err
		}
		done += size
	}
	return th.db.Store.IO.Snapshot().Sub(io0), nil
}

// Drift verifies every materialized view against full recomputation,
// returning a description of the first mismatch ("" when consistent).
func (th *Throughput) Drift() (string, error) {
	for _, e := range th.d.NonLeafEqs() {
		drift, err := th.m.Drift(e)
		if err != nil {
			return "", err
		}
		if drift != "" {
			return fmt.Sprintf("node %s: %s", e, drift), nil
		}
	}
	return "", nil
}

// ThroughputRow is one (batch size, workers) measurement.
type ThroughputRow struct {
	SchemaVersion int     `json:"schema_version"`
	Batch         int     `json:"batch"`
	Workers       int     `json:"workers"`
	Txns          int     `json:"txns"`
	TxnsPerSec    float64 `json:"txns_per_sec"`
	IOPerTxn      float64 `json:"page_io_per_txn"`
	// Apply-latency quantiles (nanoseconds per Apply/ApplyBatch call)
	// from the maintain.apply.ns histogram, restricted to this run's
	// window. Power-of-two bucket resolution.
	ApplyP50Ns uint64 `json:"apply_p50_ns"`
	ApplyP99Ns uint64 `json:"apply_p99_ns"`

	// Heap allocation charged to the timed window (schema v5): mallocs
	// and bytes per transaction from runtime.MemStats deltas taken
	// immediately around the measured run. Setup, statistics and the
	// post-run oracle verification are excluded; for durable and sharded
	// rows the committer/shard goroutines running inside the window are
	// included.
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	BytesPerTxn  float64 `json:"bytes_per_txn"`

	// GCPauseP99Ns (schema v6) is the stop-the-world pause tail the
	// collector imposed inside the timed window, from the
	// runtime.gc.pause.ns histogram delta. 0 when no cycle completed
	// during the window.
	GCPauseP99Ns uint64 `json:"gc_pause_p99_ns,omitempty"`
	// GCCyclesPer10kTxns (schema v7) is the number of completed GC
	// cycles inside the timed window per 10k transactions
	// (runtime.MemStats.NumGC delta). With cross-window recycling the
	// steady-state figure should approach zero; a regression here means
	// some per-window buffer went back to the heap.
	GCCyclesPer10kTxns float64 `json:"gc_cycles_per_10k_txns"`
	// ObsOverheadPct (schema v6) is the throughput cost of the always-on
	// instrumentation: 100*(off-on)/off where "off" disables the span
	// tracer and flight recorder. Only set on rows produced by
	// MeasureObsOverhead; negative values are measurement noise.
	ObsOverheadPct float64 `json:"obs_overhead_pct,omitempty"`

	// Durable rows ran with a write-ahead log attached (one fsync per
	// window); the extra columns report the commit-latency tail and the
	// log-replay rate of recovering the run's own tail.
	Durable               bool    `json:"durable,omitempty"`
	FsyncP99Ns            uint64  `json:"fsync_p99_ns,omitempty"`
	RecoveryReplayTxnsSec float64 `json:"recovery_replay_txns_sec,omitempty"`
	// MemBaselineTxnsPerSec (schema v5) is an in-memory run of the same
	// workload measured in the same process immediately before the
	// durable run, at the same n — the denominator of the durability
	// overhead. The in-memory grid rows can't serve as that baseline:
	// the durable row uses a longer stream (steady state for the
	// deferred commit chain), and the workload is non-stationary, so
	// only a same-n run is comparable.
	MemBaselineTxnsPerSec float64 `json:"mem_baseline_txns_per_sec,omitempty"`

	// Sharded rows ran through the maintain.Sharded pipeline at this
	// shard count (0 = unsharded pipeline; 1 = sharded path with one
	// shard, the sharding-overhead baseline). CPUs records the machine
	// the scaling was measured on — scaling claims are meaningless
	// without it.
	Shards int `json:"shards,omitempty"`
	CPUs   int `json:"cpus,omitempty"`

	// Client-swarm serving rows (schema v8, MeasureServing): the paced
	// writer ran while ReadClients pollers and SSEClients changefeed
	// subscribers consumed the same cores. ReadP99Ns is the client-side
	// snapshot-read latency tail over the in-memory transport;
	// NoReaderTxnsPerSec is the identical paced writer measured alone —
	// TxnsPerSec/NoReaderTxnsPerSec is the serving overhead the swarm
	// gate bounds.
	ReadP99Ns          uint64  `json:"read_p99_ns,omitempty"`
	ReadClients        int     `json:"read_clients,omitempty"`
	SSEClients         int     `json:"sse_clients,omitempty"`
	NoReaderTxnsPerSec float64 `json:"no_reader_txns_per_sec,omitempty"`
}

// MeasureThroughput runs n transactions for one (batch, workers)
// configuration on a fresh system, self-timed, and verifies the final
// views against the oracle.
func MeasureThroughput(cfg corpus.Figure5Config, n, batch, workers int) (ThroughputRow, error) {
	th, err := NewThroughput(cfg, workers)
	if err != nil {
		return ThroughputRow{}, err
	}
	applyHist := obs.H("maintain.apply.ns")
	gcHist := obs.H("runtime.gc.pause.ns")
	// Setup (materialization, statistics) leaves a heap of garbage whose
	// collection would otherwise be charged to the timed window; quiesce
	// the collector so the measurement covers maintenance work only.
	runtime.GC()
	runtime.GC()    // second cycle finishes the first's deferred sweep so the timed window pays no sweep-assist debt for setup garbage
	obs.PollGCNow() // flush setup-era pauses out of the window
	before := applyHist.Snapshot()
	gcBefore := gcHist.Snapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	io, err := th.Run(n, batch)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	obs.PollGCNow()
	if err != nil {
		return ThroughputRow{}, err
	}
	window := applyHist.Snapshot().Sub(before)
	gcWindow := gcHist.Snapshot().Sub(gcBefore)
	if drift, err := th.Drift(); err != nil {
		return ThroughputRow{}, err
	} else if drift != "" {
		return ThroughputRow{}, fmt.Errorf("throughput run drifted: %s", drift)
	}
	return ThroughputRow{
		SchemaVersion:      BenchSchemaVersion,
		Batch:              batch,
		Workers:            workers,
		Txns:               n,
		TxnsPerSec:         float64(n) / elapsed.Seconds(),
		IOPerTxn:           float64(io.Total()) / float64(n),
		ApplyP50Ns:         window.Quantile(0.50),
		ApplyP99Ns:         window.Quantile(0.99),
		AllocsPerTxn:       float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		BytesPerTxn:        float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
		GCPauseP99Ns:       gcWindow.Quantile(0.99),
		GCCyclesPer10kTxns: float64(ms1.NumGC-ms0.NumGC) * 10000 / float64(n),
	}, nil
}

// MeasureObsOverhead prices the always-on instrumentation: it measures
// the same (batch, workers) configuration with the span tracer and
// flight recorder enabled and disabled — best of trials each, to damp
// scheduler noise on small machines — and reports the enabled row with
// ObsOverheadPct filled in. The registry's counters stay live in both
// runs (they are load-bearing: the harness itself reads them); the
// toggles collapse exactly the paths the ISSUE's 5% budget covers.
func MeasureObsOverhead(cfg corpus.Figure5Config, n, batch, workers, trials int) (ThroughputRow, error) {
	if trials < 1 {
		trials = 1
	}
	measure := func(enabled bool) (ThroughputRow, error) {
		obs.Trace.SetEnabled(enabled)
		obs.Flight().SetEnabled(enabled)
		return MeasureThroughput(cfg, n, batch, workers)
	}
	defer func() {
		obs.Trace.SetEnabled(true)
		obs.Flight().SetEnabled(true)
	}()
	var on, off ThroughputRow
	// Interleave off/on trials so drift (thermal, page cache, competing
	// load) hits both arms equally.
	for i := 0; i < trials; i++ {
		o, err := measure(false)
		if err != nil {
			return ThroughputRow{}, err
		}
		e, err := measure(true)
		if err != nil {
			return ThroughputRow{}, err
		}
		if o.TxnsPerSec > off.TxnsPerSec {
			off = o
		}
		if e.TxnsPerSec > on.TxnsPerSec {
			on = e
		}
	}
	on.ObsOverheadPct = 100 * (off.TxnsPerSec - on.TxnsPerSec) / off.TxnsPerSec
	return on, nil
}

// MeasureThroughputDurable is MeasureThroughput with a write-ahead log
// attached: every window group-commits with one fsync into dir (which
// must not already hold durable state). After the timed run the log is
// closed and recovered, measuring the replay rate; the row fails if any
// view fell back to recomputation — the checkpointed view set is
// current, so recovery must be purely incremental.
func MeasureThroughputDurable(cfg corpus.Figure5Config, n, batch, workers int, fsys wal.FS, dir string) (ThroughputRow, error) {
	// Same-run in-memory baseline: a fresh system pushing the identical
	// transaction stream with no log attached, measured first so both
	// runs see the same machine state. This — not the in-memory grid
	// rows, which may use a different n on a non-stationary workload —
	// is the denominator for the durability overhead.
	mem, err := MeasureThroughput(cfg, n, batch, workers)
	if err != nil {
		return ThroughputRow{}, err
	}
	th, err := NewThroughput(cfg, workers)
	if err != nil {
		return ThroughputRow{}, err
	}
	// DeferredFence: window k's fsync runs under window k+1's compute
	// (the ISSUE's cross-window pipelining). The explicit Sync inside
	// the timed region below keeps the measurement honest — the clock
	// stops only once all n transactions are durable.
	mgr, err := wal.Attach(th.m, th.db.Catalog, fsys, dir, wal.Options{DeferredFence: true})
	if err != nil {
		return ThroughputRow{}, err
	}
	applyHist := obs.H("maintain.apply.ns")
	fsyncHist := obs.H("wal.fsync.ns")
	gcHist := obs.H("runtime.gc.pause.ns")
	runtime.GC()
	runtime.GC() // second cycle finishes the first's deferred sweep so the timed window pays no sweep-assist debt for setup garbage
	obs.PollGCNow()
	applyBefore := applyHist.Snapshot()
	fsyncBefore := fsyncHist.Snapshot()
	gcBefore := gcHist.Snapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	io, err := th.Run(n, batch)
	if err == nil {
		_, err = mgr.Sync() // drain the deferred commit chain before stopping the clock
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	obs.PollGCNow()
	if err != nil {
		return ThroughputRow{}, err
	}
	applyWindow := applyHist.Snapshot().Sub(applyBefore)
	fsyncWindow := fsyncHist.Snapshot().Sub(fsyncBefore)
	gcWindow := gcHist.Snapshot().Sub(gcBefore)
	if drift, err := th.Drift(); err != nil {
		return ThroughputRow{}, err
	} else if drift != "" {
		return ThroughputRow{}, fmt.Errorf("durable throughput run drifted: %s", drift)
	}
	if err := mgr.Close(); err != nil {
		return ThroughputRow{}, err
	}
	rs, err := MeasureRecovery(cfg, workers, fsys, dir, false)
	if err != nil {
		return ThroughputRow{}, err
	}
	if rs.Recomputed != 0 {
		return ThroughputRow{}, fmt.Errorf("recovery recomputed %d views; want 0 with a current view set", rs.Recomputed)
	}
	replayRate := 0.0
	if rs.Duration > 0 {
		replayRate = float64(rs.Txns) / rs.Duration.Seconds()
	}
	return ThroughputRow{
		SchemaVersion:         BenchSchemaVersion,
		Batch:                 batch,
		Workers:               workers,
		Txns:                  n,
		TxnsPerSec:            float64(n) / elapsed.Seconds(),
		IOPerTxn:              float64(io.Total()) / float64(n),
		ApplyP50Ns:            applyWindow.Quantile(0.50),
		ApplyP99Ns:            applyWindow.Quantile(0.99),
		AllocsPerTxn:          float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		BytesPerTxn:           float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
		GCPauseP99Ns:          gcWindow.Quantile(0.99),
		GCCyclesPer10kTxns:    float64(ms1.NumGC-ms0.NumGC) * 10000 / float64(n),
		Durable:               true,
		FsyncP99Ns:            fsyncWindow.Quantile(0.99),
		RecoveryReplayTxnsSec: replayRate,
		MemBaselineTxnsPerSec: mem.TxnsPerSec,
	}, nil
}

// RecoveryStats describes one measured crash recovery.
type RecoveryStats struct {
	Windows    int           // log records replayed
	Txns       int           // transactions those windows coalesced
	Recomputed int           // views that fell back to recomputation
	Duration   time.Duration // checkpoint restore + replay, end to end
}

// MeasureRecovery recovers the durable state in dir into a fresh Figure 5
// system and times it. forceRecompute simulates a stale checkpoint whose
// view set no longer matches: every view misses the restore source and is
// recomputed from the restored base relations instead.
func MeasureRecovery(cfg corpus.Figure5Config, workers int, fsys wal.FS, dir string, forceRecompute bool) (RecoveryStats, error) {
	db := corpus.Figure5Database(cfg)
	start := time.Now()
	rec, err := wal.BeginRecovery(db.Catalog, db.Store, fsys, dir)
	if err != nil {
		return RecoveryStats{}, err
	}
	ro := rec.RestoreOptions()
	if forceRecompute {
		onRecompute := ro.OnRecompute
		ro.Source = func(string) (*maintain.ViewState, bool) { return nil, false }
		ro.OnRecompute = onRecompute
	}
	d, err := dag.FromTree(db.Figure5View(0))
	if err != nil {
		return RecoveryStats{}, err
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		return RecoveryStats{}, err
	}
	vs := tracks.RootSet(d)
	for _, e := range d.NonLeafEqs() {
		vs[e.ID] = true
	}
	m, err := maintain.NewRestored(d, db.Store, cost.PageIO{}, vs, ro)
	if err != nil {
		return RecoveryStats{}, err
	}
	m.Workers = workers
	mgr, err := rec.Resume(m, wal.Options{})
	if err != nil {
		return RecoveryStats{}, err
	}
	elapsed := time.Since(start)
	defer mgr.Close()
	return RecoveryStats{
		Windows:    mgr.ReplayedWindows,
		Txns:       mgr.ReplayedTxns,
		Recomputed: mgr.RecomputedViews,
		Duration:   elapsed,
	}, nil
}

// DurableThroughputTable measures the durable batch sweep next to the
// in-memory baseline at the same batch sizes, plus a recovery comparison
// line: incremental replay versus the forced recompute-everything
// fallback on the last run's log. Each batch size logs into its own
// subdirectory of baseDir, which must be empty.
func DurableThroughputTable(cfg corpus.Figure5Config, n int, batches []int, workers int, baseDir string) ([]ThroughputRow, string, error) {
	var rows []ThroughputRow
	var b strings.Builder
	b.WriteString("Durable maintenance throughput (WAL group commit, one fsync per window)\n")
	fmt.Fprintf(&b, "%-8s %-8s %14s %14s %14s %16s %10s\n",
		"batch", "workers", "txns/sec", "in-mem t/s", "fsyncP99(µs)", "replay txns/sec", "vs in-mem")
	var lastDir string
	for _, bs := range batches {
		mem, err := MeasureThroughput(cfg, n, bs, workers)
		if err != nil {
			return nil, "", err
		}
		dir := filepath.Join(baseDir, fmt.Sprintf("batch%d", bs))
		row, err := MeasureThroughputDurable(cfg, n, bs, workers, wal.OSFS{}, dir)
		if err != nil {
			return nil, "", err
		}
		lastDir = dir
		rows = append(rows, mem, row)
		fmt.Fprintf(&b, "%-8d %-8d %14.0f %14.0f %14.1f %16.0f %9.0f%%\n",
			row.Batch, row.Workers, row.TxnsPerSec, mem.TxnsPerSec,
			float64(row.FsyncP99Ns)/1e3, row.RecoveryReplayTxnsSec,
			100*row.TxnsPerSec/mem.TxnsPerSec)
	}
	if lastDir != "" {
		inc, err := MeasureRecovery(cfg, workers, wal.OSFS{}, lastDir, false)
		if err != nil {
			return nil, "", err
		}
		full, err := MeasureRecovery(cfg, workers, wal.OSFS{}, lastDir, true)
		if err != nil {
			return nil, "", err
		}
		ratio := 1.0
		if inc.Duration > 0 {
			ratio = float64(full.Duration) / float64(inc.Duration)
		}
		fmt.Fprintf(&b,
			"recovery of batch-%d log: incremental %.2fms (%d windows, %d txns, 0 recomputed) vs recompute-fallback %.2fms (%d views recomputed) — %.1fx\n",
			batches[len(batches)-1], float64(inc.Duration.Microseconds())/1e3, inc.Windows, inc.Txns,
			float64(full.Duration.Microseconds())/1e3, full.Recomputed, ratio)
	}
	return rows, b.String(), nil
}

// ThroughputSharded is the sharded twin of Throughput: the same
// deterministic hot-item workload pushed through a maintain.Sharded
// pipeline partitioned on Item (every Figure 5 join and the revenue
// aggregate key on Item, so all views are shard-local).
type ThroughputSharded struct {
	s   *maintain.Sharded
	gen *Throughput // workload generator only; its db/m are unused here

	shards int
}

// NewThroughputSharded builds the sharded Figure 5 harness. workers
// bounds each shard's view-application goroutines; the shard pipelines
// themselves always run concurrently.
func NewThroughputSharded(cfg corpus.Figure5Config, shards, workers int) (*ThroughputSharded, error) {
	factory := func() (*maintain.ShardSetup, error) {
		db := corpus.Figure5Database(cfg)
		d, err := dag.FromTree(db.Figure5View(0))
		if err != nil {
			return nil, err
		}
		if _, err := d.Expand(rules.Default(), 400); err != nil {
			return nil, err
		}
		return &maintain.ShardSetup{D: d, Cat: db.Catalog, Store: db.Store}, nil
	}
	setup, err := factory()
	if err != nil {
		return nil, err
	}
	vs := tracks.RootSet(setup.D)
	for _, e := range setup.D.NonLeafEqs() {
		vs[e.ID] = true
	}
	s, err := maintain.NewSharded(factory, maintain.ShardedConfig{
		Shards:      shards,
		PartitionBy: "Item",
		VS:          vs,
		Workers:     workers,
	})
	if err != nil {
		return nil, err
	}
	if s.NumShards() != shards {
		return nil, fmt.Errorf("paper: %s", s.Part.Describe())
	}
	gen, err := NewThroughput(cfg, 1)
	if err != nil {
		return nil, err
	}
	return &ThroughputSharded{s: s, gen: gen, shards: shards}, nil
}

// Run executes n transactions in windows of size batch through the
// sharded pipeline and returns the page I/Os charged across all shards.
func (ts *ThroughputSharded) Run(n, batch int) (storage.IOCounter, error) {
	if batch < 1 {
		batch = 1
	}
	io0 := ts.s.IO()
	for done := 0; done < n; {
		size := batch
		if n-done < size {
			size = n - done
		}
		window := make([]txn.Transaction, size)
		for i := range window {
			window[i] = ts.gen.nextTxn()
		}
		if _, err := ts.s.ApplyBatch(window); err != nil {
			return storage.IOCounter{}, err
		}
		done += size
	}
	return ts.s.IO().Sub(io0), nil
}

// Drift verifies every materialized view of the sharded system against
// recomputation over the union of the shard bases.
func (ts *ThroughputSharded) Drift() (string, error) {
	for _, e := range ts.s.D.NonLeafEqs() {
		drift, err := ts.s.Drift(e)
		if err != nil {
			return "", err
		}
		if drift != "" {
			return fmt.Sprintf("node %s: %s", e, drift), nil
		}
	}
	return "", nil
}

// MeasureThroughputSharded runs n transactions at one (batch, shards)
// configuration through the sharded pipeline, self-timed and verified
// against the recompute oracle.
func MeasureThroughputSharded(cfg corpus.Figure5Config, n, batch, shards, workers int) (ThroughputRow, error) {
	ts, err := NewThroughputSharded(cfg, shards, workers)
	if err != nil {
		return ThroughputRow{}, err
	}
	gcHist := obs.H("runtime.gc.pause.ns")
	runtime.GC()
	runtime.GC() // second cycle finishes the first's deferred sweep so the timed window pays no sweep-assist debt for setup garbage
	obs.PollGCNow()
	gcBefore := gcHist.Snapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	io, err := ts.Run(n, batch)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	obs.PollGCNow()
	if err != nil {
		return ThroughputRow{}, err
	}
	gcWindow := gcHist.Snapshot().Sub(gcBefore)
	if drift, err := ts.Drift(); err != nil {
		return ThroughputRow{}, err
	} else if drift != "" {
		return ThroughputRow{}, fmt.Errorf("sharded throughput run drifted: %s", drift)
	}
	return ThroughputRow{
		SchemaVersion:      BenchSchemaVersion,
		Batch:              batch,
		Workers:            workers,
		Txns:               n,
		TxnsPerSec:         float64(n) / elapsed.Seconds(),
		IOPerTxn:           float64(io.Total()) / float64(n),
		AllocsPerTxn:       float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		BytesPerTxn:        float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
		GCPauseP99Ns:       gcWindow.Quantile(0.99),
		GCCyclesPer10kTxns: float64(ms1.NumGC-ms0.NumGC) * 10000 / float64(n),
		Shards:             shards,
		CPUs:               runtime.NumCPU(),
	}, nil
}

// ShardedThroughputTable measures the shard-count sweep at one batch
// size and renders the scaling table (speedup relative to the one-shard
// sharded pipeline, which carries the routing/merge overhead but no
// parallelism). The CPU count is printed because scaling beyond it is
// not measurable.
func ShardedThroughputTable(cfg corpus.Figure5Config, n, batch, workers int, shardCounts []int) ([]ThroughputRow, string, error) {
	var rows []ThroughputRow
	var base float64
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded maintenance throughput (batch %d, %d CPUs)\n", batch, runtime.NumCPU())
	fmt.Fprintf(&b, "%-8s %-8s %14s %14s %10s\n", "shards", "workers", "txns/sec", "pageIO/txn", "scaling")
	for _, sc := range shardCounts {
		row, err := MeasureThroughputSharded(cfg, n, batch, sc, workers)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, row)
		if base == 0 {
			base = row.TxnsPerSec
		}
		fmt.Fprintf(&b, "%-8d %-8d %14.0f %14.2f %9.2fx\n",
			row.Shards, row.Workers, row.TxnsPerSec, row.IOPerTxn, row.TxnsPerSec/base)
	}
	return rows, b.String(), nil
}

// ThroughputTable measures the batch-size × worker grid and renders the
// comparison (the README's reproduction artifact).
func ThroughputTable(cfg corpus.Figure5Config, n int, batches, workers []int) ([]ThroughputRow, string, error) {
	var rows []ThroughputRow
	var base float64
	var b strings.Builder
	b.WriteString("Batched maintenance throughput (Figure 5 schema, 80% hot-item >T, 20% +S)\n")
	fmt.Fprintf(&b, "%-8s %-8s %14s %14s %12s %12s %12s %10s\n",
		"batch", "workers", "txns/sec", "pageIO/txn", "p50(µs)", "p99(µs)", "allocs/txn", "speedup")
	for _, bs := range batches {
		for _, w := range workers {
			row, err := MeasureThroughput(cfg, n, bs, w)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, row)
			if base == 0 {
				base = row.TxnsPerSec
			}
			fmt.Fprintf(&b, "%-8d %-8d %14.0f %14.2f %12.1f %12.1f %12.1f %9.2fx\n",
				row.Batch, row.Workers, row.TxnsPerSec, row.IOPerTxn,
				float64(row.ApplyP50Ns)/1e3, float64(row.ApplyP99Ns)/1e3,
				row.AllocsPerTxn, row.TxnsPerSec/base)
		}
	}
	return rows, b.String(), nil
}
