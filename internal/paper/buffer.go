package paper

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// BufferRow is one point of the buffer-residency ablation.
type BufferRow struct {
	Capacity  int // pages; 0 = cold (the paper's assumption)
	TotalIO   int64
	PerTxn    float64
	HitRate   float64
	Estimated float64 // the cold-model estimate, for reference
}

// SweepBuffer is ablation A5: the paper's §3.6 assumes nothing is
// memory-resident ("none of the data is memory-resident initially"); this
// sweep attaches an LRU page buffer of growing capacity to the store and
// re-runs a skewed transaction stream (80% of updates hit 20% of
// departments) under the {N3} strategy, measuring how far reality departs
// from the cold-cache cost model. The optimizer's *choice* is unchanged —
// only the absolute I/O drops — which is why the paper can afford the
// cold assumption.
func SweepBuffer(cfg corpus.Config, capacities []int, nTxns int) ([]BufferRow, string, error) {
	var rows []BufferRow
	for _, capacity := range capacities {
		f, err := NewFixture(cfg)
		if err != nil {
			return nil, "", err
		}
		vs := tracks.RootSet(f.D)
		vs[f.N3.ID] = true
		est, _ := f.Cost.WeightedCost(vs, f.Types)
		f.DB.Store.Buffer = storage.NewBuffer(capacity)
		m, err := maintain.New(f.D, f.DB.Store, cost.PageIO{}, vs)
		if err != nil {
			return nil, "", err
		}
		hot := cfg.Departments / 5
		if hot == 0 {
			hot = 1
		}
		var total int64
		for i := 0; i < nTxns; i++ {
			dept := i % cfg.Departments
			if i%5 != 0 { // 80% of traffic on the hot 20%
				dept = i % hot
			}
			var ty *txn.Type
			var updates map[string]*delta.Delta
			if i%2 == 0 {
				d, err := f.DB.EmpSalaryDelta(dept, i%cfg.EmpsPerDept, int64(100+i%90))
				if err != nil {
					return nil, "", err
				}
				ty, updates = f.Types[0], map[string]*delta.Delta{"Emp": d}
			} else {
				d, err := f.DB.DeptBudgetDelta(dept, int64(4000+i))
				if err != nil {
					return nil, "", err
				}
				ty, updates = f.Types[1], map[string]*delta.Delta{"Dept": d}
			}
			rep, err := m.Apply(ty, updates)
			if err != nil {
				return nil, "", err
			}
			total += rep.PaperTotal()
		}
		row := BufferRow{
			Capacity:  capacity,
			TotalIO:   total,
			PerTxn:    float64(total) / float64(nTxns),
			Estimated: est,
		}
		if b := f.DB.Store.Buffer; b != nil && b.Hits+b.Misses > 0 {
			row.HitRate = float64(b.Hits) / float64(b.Hits+b.Misses)
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("Ablation A5: LRU buffer residency vs the cold-cache cost model\n")
	fmt.Fprintf(&b, "(skewed stream, {N3} strategy; cold-model estimate %.4g I/Os per txn)\n", rows[0].Estimated)
	fmt.Fprintf(&b, "%10s %10s %10s %8s\n", "buf pages", "total I/O", "I/O per txn", "hit rate")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %10d %10.3g %8.2f\n", r.Capacity, r.TotalIO, r.PerTxn, r.HitRate)
	}
	return rows, b.String(), nil
}
