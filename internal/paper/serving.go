package paper

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/maintain"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/txn"
)

// Swarm metrics. Read latency is measured client-side (full HTTP round
// trip over the in-memory pipe), which is the number a real client
// would see; server.read.ns remains the handler-only figure.
var (
	obsSwarmReadNs   = obs.H("paper.swarm.read.ns")
	obsSwarmReads    = obs.C("paper.swarm.reads")
	obsSwarmReadErrs = obs.C("paper.swarm.read.errors")
	obsSwarmEvents   = obs.C("paper.swarm.sse.events")
	obsSwarmResets   = obs.C("paper.swarm.sse.resets")
)

// SwarmOptions configures MeasureServing: a paced writer applying
// windows through the maintained pipeline while a swarm of read
// clients polls snapshots and holds SSE changefeeds open.
type SwarmOptions struct {
	Txns    int // total transactions through the writer
	Batch   int // window size (acceptance runs use 64)
	Workers int // ApplyBatch view-application goroutines

	Clients     int           // concurrent read clients (pollers + SSE)
	SSEFraction float64       // fraction of clients holding changefeeds (default 0.05)
	WindowRate  float64       // offered writer load, windows/second (default 50)
	PollInterval time.Duration // mean poller wake interval (default 2s, jittered)
}

func (o *SwarmOptions) defaults() {
	if o.SSEFraction <= 0 {
		o.SSEFraction = 0.05
	}
	if o.WindowRate <= 0 {
		o.WindowRate = 50
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
}

// runPaced is Run's batched path under offered load: windows are
// released at opts.WindowRate rather than flat out, which is the honest
// writer model for a serving measurement — the question is whether the
// writer keeps its schedule while readers consume the same cores, not
// how fast it goes with the machine to itself. A writer that falls
// behind does not sleep (it catches up), so achieved txns/sec below the
// offered rate is the overload signal the swarm gate trips on.
func (th *Throughput) runPaced(n, batch int, interval time.Duration) error {
	next := time.Now()
	for done := 0; done < n; {
		size := batch
		if n-done < size {
			size = n - done
		}
		if cap(th.wbuf) < size {
			th.wbuf = make([]txn.Transaction, size)
			th.slots = make([]txnSlot, size)
		}
		window := th.wbuf[:size]
		for i := range window {
			th.fillTxn(&window[i], i)
		}
		if _, err := th.m.ApplyBatch(window); err != nil {
			return err
		}
		done += size
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	return nil
}

// MeasureServing is the client-swarm benchmark: it measures the paced
// writer twice — alone, then under opts.Clients concurrent readers over
// an in-memory listener — and reports the loaded row with the no-reader
// baseline and the client-side read p99 attached. A fraction of the
// pollers double as isolation checkers (pin an epoch, re-read it later,
// demand byte-identity); any violation fails the measurement rather
// than skewing it.
func MeasureServing(cfg corpus.Figure5Config, opts SwarmOptions) (ThroughputRow, error) {
	opts.defaults()
	interval := time.Duration(float64(time.Second) / opts.WindowRate)

	// Arm 1: no readers, same pacing — the baseline denominator.
	base, err := NewThroughput(cfg, opts.Workers)
	if err != nil {
		return ThroughputRow{}, err
	}
	start := time.Now()
	if err := base.runPaced(opts.Txns, opts.Batch, interval); err != nil {
		return ThroughputRow{}, err
	}
	baseline := float64(opts.Txns) / time.Since(start).Seconds()

	// Arm 2: fresh harness with the serving stack attached.
	th, err := NewThroughput(cfg, opts.Workers)
	if err != nil {
		return ThroughputRow{}, err
	}
	root := th.d.Roots[0]
	rel, ok := th.m.ViewRel(root)
	if !ok {
		return ThroughputRow{}, fmt.Errorf("swarm: root view not materialized")
	}
	viewName := maintain.ViewName(root)
	hub, err := server.NewHub(server.HubConfig{Views: []server.ViewSource{{
		Name: viewName, Schema: rel.Def.Schema, EqID: root.ID, Rel: rel,
	}}})
	if err != nil {
		return ThroughputRow{}, err
	}
	th.m.SetWindowHook(hub.OnWindow)
	defer func() {
		th.m.SetWindowHook(nil)
		hub.Close()
	}()
	srv := server.New(server.Config{Hub: hub})
	ln := server.NewMemListener()
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		ln.Close()
	}()

	sseClients := int(float64(opts.Clients) * opts.SSEFraction)
	pollers := opts.Clients - sseClients

	ctx, cancel := context.WithCancel(context.Background())
	var (
		wg         sync.WaitGroup
		violations atomic.Int64
	)
	readBefore := obsSwarmReadNs.Snapshot()
	for i := 0; i < pollers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every 10th poller is an isolation checker.
			swarmPoller(ctx, ln, viewName, i, opts.PollInterval, i%10 == 0, &violations)
		}(i)
	}
	for i := 0; i < sseClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			swarmSubscriber(ctx, ln, viewName)
		}(i)
	}

	runtime.GC()
	start = time.Now()
	werr := th.runPaced(opts.Txns, opts.Batch, interval)
	elapsed := time.Since(start)
	cancel()
	wg.Wait()
	if werr != nil {
		return ThroughputRow{}, werr
	}
	if n := violations.Load(); n != 0 {
		return ThroughputRow{}, fmt.Errorf("swarm: %d snapshot-isolation violations", n)
	}
	if drift, err := th.Drift(); err != nil {
		return ThroughputRow{}, err
	} else if drift != "" {
		return ThroughputRow{}, fmt.Errorf("swarm run drifted: %s", drift)
	}

	readWindow := obsSwarmReadNs.Snapshot().Sub(readBefore)
	return ThroughputRow{
		SchemaVersion:      BenchSchemaVersion,
		Batch:              opts.Batch,
		Workers:            opts.Workers,
		Txns:               opts.Txns,
		TxnsPerSec:         float64(opts.Txns) / elapsed.Seconds(),
		NoReaderTxnsPerSec: baseline,
		ReadP99Ns:          readWindow.Quantile(0.99),
		ReadClients:        pollers,
		SSEClients:         sseClients,
		CPUs:               runtime.NumCPU(),
	}, nil
}

// ServingTable runs MeasureServing and renders the row as text next to
// its no-reader baseline.
func ServingTable(cfg corpus.Figure5Config, opts SwarmOptions) (ThroughputRow, string, error) {
	row, err := MeasureServing(cfg, opts)
	if err != nil {
		return ThroughputRow{}, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Client swarm (batch %d, %d workers, offered %.0f windows/s, %d CPUs)\n",
		row.Batch, row.Workers, opts.WindowRate, row.CPUs)
	fmt.Fprintf(&b, "  clients               %d pollers + %d SSE\n", row.ReadClients, row.SSEClients)
	fmt.Fprintf(&b, "  writer txns/s         %.0f (no readers: %.0f, ratio %.3f)\n",
		row.TxnsPerSec, row.NoReaderTxnsPerSec, row.TxnsPerSec/row.NoReaderTxnsPerSec)
	fmt.Fprintf(&b, "  read p99              %.3f ms (client-side)\n", float64(row.ReadP99Ns)/1e6)
	s := obs.Default.Snapshot()
	fmt.Fprintf(&b, "  reads served          %d (%d errors)\n",
		s.Counters["paper.swarm.reads"], s.Counters["paper.swarm.read.errors"])
	fmt.Fprintf(&b, "  sse events consumed   %d (%d resets, %d dropped server-side)\n",
		s.Counters["paper.swarm.sse.events"], s.Counters["paper.swarm.sse.resets"],
		s.Counters["server.sse.dropped"])
	return row, b.String(), nil
}

// swarmPoller is one read client: it wakes on a jittered interval
// (staggered by index so 10k clients don't thunder in phase) and GETs
// the current view snapshot. Checkers additionally keep the previous
// read pinned by epoch and demand byte-identity on re-read — the
// swarm's live snapshot-isolation probe.
func swarmPoller(ctx context.Context, ln *server.MemListener, view string, idx int,
	interval time.Duration, checker bool, violations *atomic.Int64) {
	client := ln.Client()
	defer client.CloseIdleConnections()
	rng := rand.New(rand.NewSource(int64(idx)*2654435761 + 1))
	url := "http://mv/view/" + view + "?limit=16"

	// Stagger the first wake across the full interval.
	if !sleepCtx(ctx, time.Duration(rng.Int63n(int64(interval)+1))) {
		return
	}
	var pinEpoch uint64
	var pinBody []byte
	for {
		t0 := time.Now()
		code, body, err := swarmGet(ctx, client, url)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			obsSwarmReadErrs.Inc()
		} else if code == http.StatusOK {
			obsSwarmReadNs.Observe(time.Since(t0).Nanoseconds())
			obsSwarmReads.Inc()
		}

		if checker && err == nil && code == http.StatusOK {
			if pinBody != nil {
				pcode, pbody, perr := swarmGet(ctx, client,
					fmt.Sprintf("%s&epoch=%d", url, pinEpoch))
				switch {
				case perr != nil:
					if ctx.Err() != nil {
						return
					}
					obsSwarmReadErrs.Inc()
				case pcode == http.StatusOK:
					if string(pbody) != string(pinBody) {
						violations.Add(1)
					}
				case pcode == http.StatusGone:
					// retention evicted the pin; re-pin below
				default:
					obsSwarmReadErrs.Inc()
				}
			}
			var vr struct {
				Epoch uint64 `json:"epoch"`
			}
			if json.Unmarshal(body, &vr) == nil {
				pinEpoch, pinBody = vr.Epoch, body
			}
		}

		// Jittered sleep: uniform over [interval/2, 3*interval/2).
		d := interval/2 + time.Duration(rng.Int63n(int64(interval)+1))
		if !sleepCtx(ctx, d) {
			return
		}
	}
}

// swarmSubscriber holds an SSE changefeed open and consumes it,
// reconnecting from scratch if the hub resets it for falling behind
// (the backpressure policy under test).
func swarmSubscriber(ctx context.Context, ln *server.MemListener, view string) {
	client := ln.Client()
	defer client.CloseIdleConnections()
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, "GET", "http://mv/feed/"+view, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				// Count data frames, not bytes: each event carries one
				// "\ndata:" marker.
				for i := 0; i+5 < n; i++ {
					if buf[i] == '\n' && string(buf[i+1:i+6]) == "data:" {
						obsSwarmEvents.Inc()
					}
				}
			}
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		if ctx.Err() == nil {
			obsSwarmResets.Inc()
		}
	}
}

// swarmGet is one GET with the request bound to ctx.
func swarmGet(ctx context.Context, c *http.Client, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// sleepCtx sleeps d or until ctx is done; false means ctx fired.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
