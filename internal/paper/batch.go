package paper

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// BatchRow is one point of the batch-size ablation.
type BatchRow struct {
	BatchSize int
	// SameDeptIO is one k-tuple transaction within a single department:
	// the probes share one key and the k child changes collapse onto one
	// aggregate group, so the whole batch approaches a constant cost.
	SameDeptIO int64
	PerTuple   float64
	// CrossDeptIO is one k-tuple transaction spread over k departments:
	// every tuple needs its own probe, group and index bucket, so the
	// cost is linear (no sharing to exploit).
	CrossDeptIO int64
	// SingletonsIO is the same-department updates run one transaction at
	// a time (the paper's per-transaction granularity).
	SingletonsIO int64
}

// SweepBatch is ablation A6: the paper's own cost arithmetic amortizes
// work over a batch (its 10-tuple >Dept modification costs 21 I/Os, not
// 10×3, because all ten tuples share one department). This sweep modifies
// k employees' salaries under the {N3} strategy in three ways — one
// same-department batch, one cross-department batch, and k singleton
// transactions — and measures each on the live engine.
func SweepBatch(cfg corpus.Config, sizes []int) ([]BatchRow, string, error) {
	var rows []BatchRow
	for _, k := range sizes {
		if k > cfg.Departments || k > cfg.EmpsPerDept {
			return nil, "", fmt.Errorf("paper: batch %d exceeds the instance (%d depts × %d emps)",
				k, cfg.Departments, cfg.EmpsPerDept)
		}
		same, err := runBatch(cfg, k, sameDeptBatch)
		if err != nil {
			return nil, "", err
		}
		cross, err := runBatch(cfg, k, crossDeptBatch)
		if err != nil {
			return nil, "", err
		}
		single, err := runBatch(cfg, k, singletons)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, BatchRow{
			BatchSize: k, SameDeptIO: same,
			PerTuple:     float64(same) / float64(k),
			CrossDeptIO:  cross,
			SingletonsIO: single,
		})
	}
	var b strings.Builder
	b.WriteString("Ablation A6: batching amortization ({N3} strategy, k salary changes)\n")
	fmt.Fprintf(&b, "%6s %14s %12s %14s %14s\n", "k", "same-dept I/O", "I/O per tup", "cross-dept I/O", "singletons I/O")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %14d %12.3g %14d %14d\n", r.BatchSize, r.SameDeptIO, r.PerTuple, r.CrossDeptIO, r.SingletonsIO)
	}
	return rows, b.String(), nil
}

// batch shapes for runBatch.
const (
	sameDeptBatch = iota
	crossDeptBatch
	singletons
)

func runBatch(cfg corpus.Config, k int, shape int) (int64, error) {
	f, err := NewFixture(cfg)
	if err != nil {
		return 0, err
	}
	vs := tracks.RootSet(f.D)
	vs[f.N3.ID] = true
	m, err := maintain.New(f.D, f.DB.Store, cost.PageIO{}, vs)
	if err != nil {
		return 0, err
	}
	ty := &txn.Type{
		Name: fmt.Sprintf(">Emp×%d", k), Weight: 1,
		Updates: []txn.RelUpdate{{
			Rel: "Emp", Kind: txn.Modify, Size: float64(k), Cols: []string{"Salary"},
		}},
	}
	schema := f.DB.Store.MustGet("Emp").Def.Schema
	change := func(dept, emp, i int) (value.Tuple, value.Tuple) {
		old := value.Tuple{
			value.NewString(corpus.EmpName(dept, emp)),
			value.NewString(corpus.DeptName(dept)),
			value.NewInt(corpus.BaseSalary),
		}
		newT := old.Clone()
		newT[2] = value.NewInt(int64(150 + i))
		return old, newT
	}
	var total int64
	switch shape {
	case sameDeptBatch, crossDeptBatch:
		d := delta.New(schema)
		for i := 0; i < k; i++ {
			var old, newT value.Tuple
			if shape == sameDeptBatch {
				old, newT = change(0, i, i)
			} else {
				old, newT = change(i, 0, i)
			}
			d.Modify(old, newT, 1)
		}
		rep, err := m.Apply(ty, map[string]*delta.Delta{"Emp": d})
		if err != nil {
			return 0, err
		}
		total = rep.PaperTotal()
	default: // singletons, same department
		single := txn.PaperTypes()[0]
		for i := 0; i < k; i++ {
			old, newT := change(0, i, i)
			d := delta.New(schema)
			d.Modify(old, newT, 1)
			rep, err := m.Apply(single, map[string]*delta.Delta{"Emp": d})
			if err != nil {
				return 0, err
			}
			total += rep.PaperTotal()
		}
	}
	return total, nil
}
