// Package paper regenerates every table and figure of the paper's
// evaluation: the four cost tables of Section 3.6 (estimated from the
// cost model and measured by running the storage engine), the expression
// trees and DAG of Figures 1–2, the query-optimization-vs-view-maintenance
// divergence of Figure 3/Example 3.1, and the articulation-node shielding
// of Figure 5. It also provides the ablation sweeps recorded in
// EXPERIMENTS.md.
//
// Each experiment returns a plain-text report; cmd/mvbench prints them
// and the root benchmarks re-run them under go test -bench.
package paper

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// Fixture is the expanded ProblemDept scenario with handles to the nodes
// of Figure 2.
type Fixture struct {
	DB     *corpus.Database
	D      *dag.DAG
	Cost   *tracks.Costing
	N3, N4 *dag.EqNode
	Emp    *dag.EqNode
	Dept   *dag.EqNode
	Types  []*txn.Type

	Empty, SetN3, SetN4 tracks.ViewSet
}

// NewFixture builds the scenario at the paper's scale (1000 departments,
// 10 employees each) or any other corpus configuration.
func NewFixture(cfg corpus.Config) (*Fixture, error) {
	db := corpus.NewDatabase(cfg)
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		return nil, err
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		return nil, err
	}
	f := &Fixture{DB: db, D: d, Cost: tracks.NewCosting(d, cost.PageIO{}), Types: txn.PaperTypes()}
	f.N3 = d.FindEq(db.SumOfSals())
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	f.N4 = d.FindEq(join)
	if f.N3 == nil || f.N4 == nil {
		return nil, fmt.Errorf("paper: N3/N4 missing from DAG")
	}
	for _, e := range d.Eqs() {
		switch e.BaseRel {
		case "Emp":
			f.Emp = e
		case "Dept":
			f.Dept = e
		}
	}
	f.Empty = tracks.RootSet(d)
	f.SetN3 = tracks.RootSet(d)
	f.SetN3[f.N3.ID] = true
	f.SetN4 = tracks.RootSet(d)
	f.SetN4[f.N4.ID] = true
	return f, nil
}

// sets returns the three §3.6 view sets in presentation order.
func (f *Fixture) sets() []struct {
	Name string
	VS   tracks.ViewSet
} {
	return []struct {
		Name string
		VS   tracks.ViewSet
	}{
		{"{}", f.Empty},
		{"{N3}", f.SetN3},
		{"{N4}", f.SetN4},
	}
}

// Table1 regenerates the first §3.6 table: per-query page-I/O costs of
// the Example 3.2 queries under each view set. Cells marked "-" in the
// paper (query not posed under that view set) are still priced here for
// completeness; the track tables show which are actually posed.
func (f *Fixture) Table1() string {
	type q struct {
		name   string
		target *dag.EqNode
		bind   []string
	}
	queries := []q{
		{"Q2Ld", f.N3, []string{"Emp.DName"}},
		{"Q2Re", f.Dept, []string{"Dept.DName"}},
		{"Q3e", f.N4, []string{"Dept.DName", "Dept.Budget"}},
		{"Q4e", f.Emp, []string{"Emp.DName"}},
		{"Q5Ld", f.Emp, []string{"Emp.DName"}},
		{"Q5Re", f.Dept, []string{"Dept.DName"}},
	}
	var b strings.Builder
	b.WriteString("Table 1 (§3.6): query costs in page I/Os\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %8s\n", "query", "{}", "{N3}", "{N4}")
	for _, query := range queries {
		fmt.Fprintf(&b, "%-6s", query.name)
		for _, set := range f.sets() {
			c := f.Cost.QueryCost(query.target, query.bind, 1, set.VS)
			fmt.Fprintf(&b, " %8.4g", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table2 regenerates the second §3.6 table: the cost of maintaining each
// additional view under each transaction type.
func (f *Fixture) Table2() string {
	var b strings.Builder
	b.WriteString("Table 2 (§3.6): view maintenance costs in page I/Os\n")
	fmt.Fprintf(&b, "%-14s %8s %8s\n", "view", ">Emp", ">Dept")
	rows := []struct {
		name string
		vs   tracks.ViewSet
	}{
		{"N3 (SumOfSals)", f.SetN3},
		{"N4 (Emp⋈Dept)", f.SetN4},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.name)
		for _, ty := range f.Types {
			best, _ := f.Cost.CostViewSet(r.vs, ty)
			fmt.Fprintf(&b, " %8.4g", best.UpdateCost)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TrackName classifies a track by the operation computing the class below
// the root selection, in the paper's labels: the E3 path aggregates over
// the Emp⋈Dept join; the E2 path joins SumOfSals with Dept.
func (f *Fixture) TrackName(tc tracks.TrackCost) string {
	rootOp := f.D.Root.Ops[0]
	below := rootOp.Children[0]
	op := tc.Track.Choice[below.ID]
	if op == nil {
		return "(none)"
	}
	switch op.Template.(type) {
	case *algebra.Aggregate:
		return "via E3 (aggregate over Emp⋈Dept)"
	case *algebra.Project:
		return "via E2 (SumOfSals ⋈ Dept)"
	default:
		return op.OpLabel()
	}
}

// Table3 regenerates the third §3.6 table: query cost per update track.
func (f *Fixture) Table3() string {
	var b strings.Builder
	b.WriteString("Table 3 (§3.6): per-track query costs in page I/Os\n")
	for _, ty := range f.Types {
		for _, set := range f.sets() {
			_, all := f.Cost.CostViewSet(set.VS, ty)
			for _, tc := range all {
				fmt.Fprintf(&b, "%-6s %-6s %-34s q=%-8.4g (+u=%.4g)\n",
					ty.Name, set.Name, f.TrackName(tc), tc.QueryCost, tc.UpdateCost)
			}
		}
	}
	return b.String()
}

// Table4 regenerates the fourth §3.6 table and the headline: combined
// minimum costs per transaction type, weighted averages, and the ~30%
// ratio for {N3}.
func (f *Fixture) Table4() string {
	var b strings.Builder
	b.WriteString("Table 4 (§3.6): combined minimum costs in page I/Os\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %10s\n", "set", ">Emp", ">Dept", "weighted")
	var weighted []float64
	for _, set := range f.sets() {
		fmt.Fprintf(&b, "%-6s", set.Name)
		for _, ty := range f.Types {
			best, _ := f.Cost.CostViewSet(set.VS, ty)
			fmt.Fprintf(&b, " %8.4g", best.Total())
		}
		w, _ := f.Cost.WeightedCost(set.VS, f.Types)
		weighted = append(weighted, w)
		fmt.Fprintf(&b, " %10.4g\n", w)
	}
	fmt.Fprintf(&b, "headline: {N3} averages %.4g vs %.4g for {} — %.1f%% of the baseline (paper: \"about 30%%\", ~3x)\n",
		weighted[1], weighted[0], 100*weighted[1]/weighted[0])
	return b.String()
}

// Figure1 renders the two expression trees of Figure 1, extracted from
// the expanded DAG.
func (f *Fixture) Figure1() string {
	var b strings.Builder
	b.WriteString("Figure 1: two expression trees for ProblemDept\n")
	trees := f.D.Trees(f.D.Root, 8)
	shown := 0
	for _, tr := range trees {
		if shown >= 2 {
			break
		}
		b.WriteString(algebra.Render(tr))
		b.WriteString("\n")
		shown++
	}
	return b.String()
}

// Figure2 renders the expression DAG of Figure 2.
func (f *Fixture) Figure2() string {
	return "Figure 2: expression DAG for ProblemDept\n" + f.D.Render()
}

// Optimum runs Algorithm OptimalViewSet over the fixture and reports the
// chosen set (the paper's bottom line for Example 1.1).
func (f *Fixture) Optimum() (*core.Result, error) {
	opt := core.New(f.D, cost.PageIO{}, f.Types)
	return opt.Exhaustive()
}
