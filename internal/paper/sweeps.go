package paper

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/rules"
	"repro/internal/txn"
	"repro/internal/value"
)

// SweepFanoutRow is one point of the employees-per-department ablation.
type SweepFanoutRow struct {
	EmpsPerDept          int
	CostEmpty, CostN3    float64
	Ratio                float64
	OptimalIncludesSumOfSals bool
}

// SweepFanout varies the employees-per-department fan-out d and reports
// where the {N3} strategy's advantage goes as groups shrink: the paper's
// gain comes from replacing a d-tuple group read with a single-tuple
// lookup, so the ratio approaches 1 as d → 1.
func SweepFanout(departments int, fanouts []int) ([]SweepFanoutRow, string, error) {
	var rows []SweepFanoutRow
	for _, d := range fanouts {
		f, err := NewFixture(corpus.Config{Departments: departments, EmpsPerDept: d})
		if err != nil {
			return nil, "", err
		}
		we, _ := f.Cost.WeightedCost(f.Empty, f.Types)
		w3, _ := f.Cost.WeightedCost(f.SetN3, f.Types)
		res, err := f.Optimum()
		if err != nil {
			return nil, "", err
		}
		includes := res.Best.Set[f.N3.ID]
		rows = append(rows, SweepFanoutRow{
			EmpsPerDept: d, CostEmpty: we, CostN3: w3,
			Ratio: w3 / we, OptimalIncludesSumOfSals: includes,
		})
	}
	var b strings.Builder
	b.WriteString("Ablation A1: employees-per-department sweep (weighted page I/Os per txn)\n")
	fmt.Fprintf(&b, "%8s %10s %10s %8s %s\n", "emps/dep", "{} cost", "{N3} cost", "ratio", "optimal includes N3")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10.4g %10.4g %8.3f %v\n",
			r.EmpsPerDept, r.CostEmpty, r.CostN3, r.Ratio, r.OptimalIncludesSumOfSals)
	}
	return rows, b.String(), nil
}

// SweepWeightsRow is one point of the transaction-weight ablation.
type SweepWeightsRow struct {
	EmpWeight float64
	Chosen    string
	Cost      float64
}

// SweepWeights varies the relative frequency of >Emp vs >Dept and reports
// the chosen view set (the paper observes {N3} wins independent of
// weights on its example).
func SweepWeights(cfg corpus.Config, empWeights []float64) ([]SweepWeightsRow, string, error) {
	var rows []SweepWeightsRow
	for _, w := range empWeights {
		f, err := NewFixture(cfg)
		if err != nil {
			return nil, "", err
		}
		types := []*txn.Type{
			{Name: ">Emp", Weight: w, Updates: f.Types[0].Updates},
			{Name: ">Dept", Weight: 1, Updates: f.Types[1].Updates},
		}
		opt := core.New(f.D, cost.PageIO{}, types)
		res, err := opt.Exhaustive()
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, SweepWeightsRow{
			EmpWeight: w, Chosen: res.Best.Set.Key(), Cost: res.Best.Weighted,
		})
	}
	var b strings.Builder
	b.WriteString("Ablation A2: transaction-weight sweep (f_Emp : f_Dept = w : 1)\n")
	fmt.Fprintf(&b, "%8s %-14s %10s\n", "w", "chosen set", "cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.4g %-14s %10.4g\n", r.EmpWeight, r.Chosen, r.Cost)
	}
	return rows, b.String(), nil
}

// SweepOptimizersRow is one point of the optimizer-scaling ablation.
type SweepOptimizersRow struct {
	Chain      int
	Candidates int
	Method     string
	Explored   int
	Best       float64
	Elapsed    time.Duration
}

// chainSchema builds a k-relation join chain R0 ⋈ R1 ⋈ ... ⋈ R(k-1) on
// shared keys, a workload updating each relation, and the expanded DAG —
// the growing search space for the optimizer-scaling ablation.
func chainSchema(k, rowsPer int) (*dag.DAG, []*txn.Type, error) {
	cat := catalog.New()
	st := corpusStoreForChain(cat, k, rowsPer)
	var tree algebra.Node
	for i := 0; i < k; i++ {
		def, _ := cat.Get(fmt.Sprintf("R%d", i))
		scan := algebra.Scan(def)
		if tree == nil {
			tree = scan
			continue
		}
		tree = algebra.NewJoin([]algebra.JoinCond{{
			Left:  fmt.Sprintf("R%d.K%d", i-1, i),
			Right: fmt.Sprintf("R%d.K%d", i, i),
		}}, tree, scan)
	}
	view := algebra.NewSelect(
		expr.Compare(expr.GT, expr.C("R0.V0"), expr.IntLit(-1)), tree)
	d, err := dag.FromTree(view)
	if err != nil {
		return nil, nil, err
	}
	if _, err := d.Expand(rules.Default(), 2000); err != nil {
		return nil, nil, err
	}
	var types []*txn.Type
	for i := 0; i < k; i++ {
		types = append(types, &txn.Type{
			Name: fmt.Sprintf(">R%d", i), Weight: 1,
			Updates: []txn.RelUpdate{{
				Rel: fmt.Sprintf("R%d", i), Kind: txn.Modify, Size: 1,
				Cols: []string{fmt.Sprintf("V%d", i)},
			}},
		})
	}
	_ = st
	return d, types, nil
}

// corpusStoreForChain registers the chain relations with statistics (the
// sweep only costs plans; data is not materialized).
func corpusStoreForChain(cat *catalog.Catalog, k, rowsPer int) struct{} {
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("R%d", i)
		cols := []catalog.Column{
			{Qualifier: name, Name: fmt.Sprintf("K%d", i), Type: value.Int},
			{Qualifier: name, Name: fmt.Sprintf("K%d", i+1), Type: value.Int},
			{Qualifier: name, Name: fmt.Sprintf("V%d", i), Type: value.Int},
		}
		def := &catalog.TableDef{
			Name:   name,
			Schema: catalog.NewSchema(cols...),
			Keys:   [][]string{{fmt.Sprintf("K%d", i)}},
			Indexes: []catalog.IndexDef{
				{Name: name + "_k", Columns: []string{fmt.Sprintf("K%d", i)}},
				{Name: name + "_k2", Columns: []string{fmt.Sprintf("K%d", i+1)}},
			},
			// Asymmetric cardinalities make plan quality differ across
			// methods (symmetric chains tie everywhere).
			Stats: catalog.Stats{
				Card: float64(rowsPer * (1 + i*3)),
				Distinct: map[string]float64{
					fmt.Sprintf("K%d", i):   float64(rowsPer * (1 + i*3)),
					fmt.Sprintf("K%d", i+1): float64(rowsPer) / 4,
					fmt.Sprintf("V%d", i):   float64(rowsPer) / 2,
				},
			},
		}
		if err := cat.Add(def); err != nil {
			panic(err)
		}
	}
	return struct{}{}
}

// SweepOptimizers compares exhaustive, shielded, greedy and single-tree
// search on growing join chains: view sets costed, wall time, and
// solution quality.
func SweepOptimizers(chains []int) ([]SweepOptimizersRow, string, error) {
	var rows []SweepOptimizersRow
	for _, k := range chains {
		d, types, err := chainSchema(k, 1000)
		if err != nil {
			return nil, "", err
		}
		opt := core.New(d, cost.PageIO{}, types)
		cands := len(d.NonLeafEqs()) - 1
		run := func(name string, f func() (*core.Result, error)) error {
			start := time.Now()
			res, err := f()
			if err != nil {
				return err
			}
			rows = append(rows, SweepOptimizersRow{
				Chain: k, Candidates: cands, Method: name,
				Explored: res.Explored, Best: res.Best.Weighted,
				Elapsed: time.Since(start),
			})
			return nil
		}
		// Exhaustive enumeration is the very thing Sections 4–5 exist to
		// avoid; cap it so the sweep itself stays tractable.
		if cands <= 8 {
			if err := run("exhaustive", opt.Exhaustive); err != nil {
				return nil, "", err
			}
		}
		if err := run("shielded", opt.Shielded); err != nil {
			return nil, "", err
		}
		if err := run("greedy", func() (*core.Result, error) { return opt.Greedy(), nil }); err != nil {
			return nil, "", err
		}
		if err := run("single-tree", opt.SingleTree); err != nil {
			return nil, "", err
		}
		if err := run("heuristic-marking", func() (*core.Result, error) { return opt.HeuristicMarking(), nil }); err != nil {
			return nil, "", err
		}
	}
	var b strings.Builder
	b.WriteString("Ablation A3: optimizer scaling on join chains\n")
	fmt.Fprintf(&b, "%6s %6s %-18s %9s %10s %12s\n",
		"chain", "cands", "method", "explored", "best", "elapsed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %6d %-18s %9d %10.4g %12s\n",
			r.Chain, r.Candidates, r.Method, r.Explored, r.Best, r.Elapsed.Round(time.Microsecond))
	}
	return rows, b.String(), nil
}
