package paper_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/paper"
)

// BenchmarkWindow64 is the steady-state probe behind the allocation
// work (DESIGN.md §12): one batch-64 window per op on a single
// long-lived harness, so -benchmem reports the per-window heap cost
// after directories, arenas and plan caches have warmed up — unlike
// BenchmarkMaintainThroughput, which rebuilds the harness per op and
// therefore mixes setup allocation into its numbers.
//
//	go test -run '^$' -bench Window64 -benchmem ./internal/paper/
func BenchmarkWindow64(b *testing.B) {
	th, err := paper.NewThroughput(corpus.DefaultFigure5Config(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Run(64, 64); err != nil {
			b.Fatal(err)
		}
	}
}
