package paper_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/paper"
)

func BenchmarkWindow64(b *testing.B) {
	th, err := paper.NewThroughput(corpus.DefaultFigure5Config(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Run(64, 64); err != nil {
			b.Fatal(err)
		}
	}
}
