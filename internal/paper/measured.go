package paper

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// MeasuredRow pairs an estimated cost with the page I/O actually counted
// by the storage engine while the maintenance runtime executed the same
// transaction.
type MeasuredRow struct {
	Set       string
	Txn       string
	Estimated float64
	Measured  int64
}

// MeasuredParity re-runs the §3.6 scenario on the live engine: for each
// view set and transaction type it executes a real transaction and counts
// actual page I/Os, then reports them beside the cost model's estimates.
// On the paper's instance the two agree exactly.
func MeasuredParity(cfg corpus.Config) ([]MeasuredRow, string, error) {
	var rows []MeasuredRow
	strategies := []struct {
		name  string
		extra func(*Fixture) []*dag.EqNode
	}{
		{"{}", func(f *Fixture) []*dag.EqNode { return nil }},
		{"{N3}", func(f *Fixture) []*dag.EqNode { return []*dag.EqNode{f.N3} }},
		{"{N4}", func(f *Fixture) []*dag.EqNode { return []*dag.EqNode{f.N4} }},
	}
	for _, strat := range strategies {
		// Fresh database per strategy so transactions see identical
		// states.
		f, err := NewFixture(cfg)
		if err != nil {
			return nil, "", err
		}
		vs := tracks.RootSet(f.D)
		for _, e := range strat.extra(f) {
			vs[e.ID] = true
		}
		m, err := maintain.New(f.D, f.DB.Store, cost.PageIO{}, vs)
		if err != nil {
			return nil, "", err
		}
		for _, ty := range f.Types {
			est, _ := f.Cost.CostViewSet(vs, ty)
			var updates map[string]*delta.Delta
			switch ty.Name {
			case ">Emp":
				d, err := f.DB.EmpSalaryDelta(1, 1, 333)
				if err != nil {
					return nil, "", err
				}
				updates = map[string]*delta.Delta{"Emp": d}
			case ">Dept":
				d, err := f.DB.DeptBudgetDelta(2, 98765)
				if err != nil {
					return nil, "", err
				}
				updates = map[string]*delta.Delta{"Dept": d}
			}
			rep, err := m.Apply(ty, updates)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, MeasuredRow{
				Set: strat.name, Txn: ty.Name,
				Estimated: est.Total(), Measured: rep.PaperTotal(),
			})
		}
	}
	var b strings.Builder
	b.WriteString("Measured parity (estimated vs engine-counted page I/Os):\n")
	fmt.Fprintf(&b, "%-6s %-6s %10s %10s %s\n", "set", "txn", "estimated", "measured", "match")
	for _, r := range rows {
		match := "OK"
		if float64(r.Measured) != r.Estimated {
			match = "MISMATCH"
		}
		fmt.Fprintf(&b, "%-6s %-6s %10.4g %10d %s\n", r.Set, r.Txn, r.Estimated, r.Measured, match)
	}
	return rows, b.String(), nil
}

// MeasuredWorkload runs n alternating >Emp/>Dept transactions under a
// strategy and returns the total paper-metric page I/Os (used by the
// throughput benchmarks).
func MeasuredWorkload(cfg corpus.Config, withN3 bool, n int) (int64, error) {
	f, err := NewFixture(cfg)
	if err != nil {
		return 0, err
	}
	vs := tracks.RootSet(f.D)
	if withN3 {
		vs[f.N3.ID] = true
	}
	m, err := maintain.New(f.D, f.DB.Store, cost.PageIO{}, vs)
	if err != nil {
		return 0, err
	}
	var total int64
	for i := 0; i < n; i++ {
		var ty *txn.Type
		var updates map[string]*delta.Delta
		if i%2 == 0 {
			d, err := f.DB.EmpSalaryDelta(i%cfg.Departments, i%cfg.EmpsPerDept, int64(100+i))
			if err != nil {
				return 0, err
			}
			ty, updates = f.Types[0], map[string]*delta.Delta{"Emp": d}
		} else {
			d, err := f.DB.DeptBudgetDelta(i%cfg.Departments, int64(5000+i))
			if err != nil {
				return 0, err
			}
			ty, updates = f.Types[1], map[string]*delta.Delta{"Dept": d}
		}
		rep, err := m.Apply(ty, updates)
		if err != nil {
			return 0, err
		}
		total += rep.PaperTotal()
	}
	return total, nil
}
