package paper

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/rules"
	"repro/internal/txn"
)

// Figure3 reproduces Example 3.1/Figure 3: for ADeptsStatus under updates
// only to ADepts, the query-optimal plan differs from the
// maintenance-optimal one, and the optimizer materializes a V1-shaped
// auxiliary view that never needs maintenance.
func Figure3(cfg corpus.Config) (string, error) {
	db := corpus.NewDatabase(cfg)
	d, err := dag.FromTree(db.ADeptsStatus())
	if err != nil {
		return "", err
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		return "", err
	}
	adeptsOnly := []*txn.Type{{
		Name: ">ADepts", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "ADepts", Kind: txn.Insert, Size: 1}},
	}}
	opt := core.New(d, cost.PageIO{}, adeptsOnly)
	res, err := opt.Exhaustive()
	if err != nil {
		return "", err
	}
	empty := opt.Evaluate()

	var b strings.Builder
	b.WriteString("Figure 3 / Example 3.1: ADeptsStatus under updates to ADepts only\n")
	fmt.Fprintf(&b, "no additional views: %.4g page I/Os per transaction\n", empty.Weighted)
	fmt.Fprintf(&b, "optimal view set %s: %.4g page I/Os per transaction\n",
		res.Best.Set.Key(), res.Best.Weighted)
	for _, v := range res.AdditionalViews(d) {
		rels := d.BaseRelsOf(v)
		fmt.Fprintf(&b, "  V1 = %s over %v (unaffected by ADepts updates: no maintenance cost)\n",
			d.RepTree(v).Label(), rels)
	}
	b.WriteString("the maintenance-optimal plan differs from the query-optimal plan, as the paper notes.\n")
	return b.String(), nil
}

// Figure5Report reproduces Figure 5 and Section 4.2: the aggregate's
// parent equivalence node is an articulation node, and the Shielded
// search finds the exhaustive optimum while costing fewer view sets.
type Figure5Report struct {
	ArticulationNodes  int
	ExhaustiveExplored int
	ShieldedExplored   int
	ExhaustiveBest     float64
	ShieldedBest       float64
}

// Figure5 runs the articulation-node experiment.
func Figure5(cfg corpus.Figure5Config) (*Figure5Report, string, error) {
	db := corpus.Figure5Database(cfg)
	d, err := dag.FromTree(db.Figure5View(1 << 40))
	if err != nil {
		return nil, "", err
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		return nil, "", err
	}
	opt := core.New(d, cost.PageIO{}, figure5Types())
	exh, err := opt.Exhaustive()
	if err != nil {
		return nil, "", err
	}
	sh, err := opt.Shielded()
	if err != nil {
		return nil, "", err
	}
	rep := &Figure5Report{
		ArticulationNodes:  len(d.ArticulationEqs()),
		ExhaustiveExplored: exh.Explored,
		ShieldedExplored:   sh.Explored,
		ExhaustiveBest:     exh.Best.Weighted,
		ShieldedBest:       sh.Best.Weighted,
	}
	var b strings.Builder
	b.WriteString("Figure 5 / §4.2: articulation-node shielding on the R/S/T sales schema\n")
	b.WriteString("view tree:\n")
	b.WriteString(indent(renderTree(db, d), "  "))
	fmt.Fprintf(&b, "articulation equivalence nodes: %d\n", rep.ArticulationNodes)
	fmt.Fprintf(&b, "exhaustive: %d view sets costed, optimum %.4g\n",
		rep.ExhaustiveExplored, rep.ExhaustiveBest)
	fmt.Fprintf(&b, "shielded:   %d view sets costed, optimum %.4g",
		rep.ShieldedExplored, rep.ShieldedBest)
	if rep.ShieldedBest == rep.ExhaustiveBest {
		b.WriteString("  (matches exhaustive)\n")
	} else {
		b.WriteString("  (MISMATCH)\n")
	}
	return rep, b.String(), nil
}

// figure5Types is the Figure 5 workload: modifications dominated by the
// T fact relation, with lighter S inserts and R renames.
func figure5Types() []*txn.Type {
	return []*txn.Type{
		{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "S", Kind: txn.Insert, Size: 1}}},
		{Name: ">R", Weight: 0.5, Updates: []txn.RelUpdate{
			{Rel: "R", Kind: txn.Modify, Size: 1, Cols: []string{"RName"}}}},
	}
}

// Figure5Optimizer builds the Figure 5 DAG and workload as a fresh
// optimizer, for search-strategy comparisons and benchmarks.
func Figure5Optimizer(cfg corpus.Figure5Config) (*core.Optimizer, error) {
	db := corpus.Figure5Database(cfg)
	d, err := dag.FromTree(db.Figure5View(1 << 40))
	if err != nil {
		return nil, err
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		return nil, err
	}
	return core.New(d, cost.PageIO{}, figure5Types()), nil
}

// ParallelSearch compares the parallel branch-and-bound search against
// the exhaustive one on the Figure 5 schema: same chosen view set, fewer
// view sets costed, shared-cache hit rate reported. Each search gets a
// fresh optimizer so the cache statistics belong to that search alone.
func ParallelSearch(cfg corpus.Figure5Config, workers int, seed int64) (string, error) {
	exhOpt, err := Figure5Optimizer(cfg)
	if err != nil {
		return "", err
	}
	exh, err := exhOpt.Exhaustive()
	if err != nil {
		return "", err
	}
	parOpt, err := Figure5Optimizer(cfg)
	if err != nil {
		return "", err
	}
	parOpt.Parallelism = workers
	parOpt.Seed = seed
	par, err := parOpt.Parallel()
	if err != nil {
		return "", err
	}
	hits, misses := parOpt.Cost.CacheStats()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	var b strings.Builder
	b.WriteString("Parallel branch-and-bound vs. exhaustive OptimalViewSet (Figure 5 schema)\n")
	fmt.Fprintf(&b, "exhaustive: %d view sets costed, optimum %s = %.4g\n",
		exh.Explored, exh.Best.Set.Key(), exh.Best.Weighted)
	fmt.Fprintf(&b, "parallel:   %d costed, %d pruned by the update-cost bound, optimum %s = %.4g",
		par.Explored, par.Pruned, par.Best.Set.Key(), par.Best.Weighted)
	if par.Best.Set.Key() == exh.Best.Set.Key() && par.Best.Weighted == exh.Best.Weighted {
		b.WriteString("  (matches exhaustive)\n")
	} else {
		b.WriteString("  (MISMATCH)\n")
	}
	fmt.Fprintf(&b, "track-cost cache: %d hits / %d misses (%.0f%% hit rate)\n",
		hits, misses, 100*rate)
	return b.String(), nil
}

func renderTree(db *corpus.Database, d *dag.DAG) string {
	return d.Render()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
