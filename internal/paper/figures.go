package paper

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/rules"
	"repro/internal/txn"
)

// Figure3 reproduces Example 3.1/Figure 3: for ADeptsStatus under updates
// only to ADepts, the query-optimal plan differs from the
// maintenance-optimal one, and the optimizer materializes a V1-shaped
// auxiliary view that never needs maintenance.
func Figure3(cfg corpus.Config) (string, error) {
	db := corpus.NewDatabase(cfg)
	d, err := dag.FromTree(db.ADeptsStatus())
	if err != nil {
		return "", err
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		return "", err
	}
	adeptsOnly := []*txn.Type{{
		Name: ">ADepts", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "ADepts", Kind: txn.Insert, Size: 1}},
	}}
	opt := core.New(d, cost.PageIO{}, adeptsOnly)
	res, err := opt.Exhaustive()
	if err != nil {
		return "", err
	}
	empty := opt.Evaluate()

	var b strings.Builder
	b.WriteString("Figure 3 / Example 3.1: ADeptsStatus under updates to ADepts only\n")
	fmt.Fprintf(&b, "no additional views: %.4g page I/Os per transaction\n", empty.Weighted)
	fmt.Fprintf(&b, "optimal view set %s: %.4g page I/Os per transaction\n",
		res.Best.Set.Key(), res.Best.Weighted)
	for _, v := range res.AdditionalViews(d) {
		rels := d.BaseRelsOf(v)
		fmt.Fprintf(&b, "  V1 = %s over %v (unaffected by ADepts updates: no maintenance cost)\n",
			d.RepTree(v).Label(), rels)
	}
	b.WriteString("the maintenance-optimal plan differs from the query-optimal plan, as the paper notes.\n")
	return b.String(), nil
}

// Figure5Report reproduces Figure 5 and Section 4.2: the aggregate's
// parent equivalence node is an articulation node, and the Shielded
// search finds the exhaustive optimum while costing fewer view sets.
type Figure5Report struct {
	ArticulationNodes  int
	ExhaustiveExplored int
	ShieldedExplored   int
	ExhaustiveBest     float64
	ShieldedBest       float64
}

// Figure5 runs the articulation-node experiment.
func Figure5(cfg corpus.Figure5Config) (*Figure5Report, string, error) {
	db := corpus.Figure5Database(cfg)
	d, err := dag.FromTree(db.Figure5View(1 << 40))
	if err != nil {
		return nil, "", err
	}
	if _, err := d.Expand(rules.Default(), 400); err != nil {
		return nil, "", err
	}
	types := []*txn.Type{
		{Name: ">T", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "T", Kind: txn.Modify, Size: 1, Cols: []string{"Price"}}}},
		{Name: "+S", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "S", Kind: txn.Insert, Size: 1}}},
		{Name: ">R", Weight: 0.5, Updates: []txn.RelUpdate{
			{Rel: "R", Kind: txn.Modify, Size: 1, Cols: []string{"RName"}}}},
	}
	opt := core.New(d, cost.PageIO{}, types)
	exh, err := opt.Exhaustive()
	if err != nil {
		return nil, "", err
	}
	sh, err := opt.Shielded()
	if err != nil {
		return nil, "", err
	}
	rep := &Figure5Report{
		ArticulationNodes:  len(d.ArticulationEqs()),
		ExhaustiveExplored: exh.Explored,
		ShieldedExplored:   sh.Explored,
		ExhaustiveBest:     exh.Best.Weighted,
		ShieldedBest:       sh.Best.Weighted,
	}
	var b strings.Builder
	b.WriteString("Figure 5 / §4.2: articulation-node shielding on the R/S/T sales schema\n")
	b.WriteString("view tree:\n")
	b.WriteString(indent(renderTree(db, d), "  "))
	fmt.Fprintf(&b, "articulation equivalence nodes: %d\n", rep.ArticulationNodes)
	fmt.Fprintf(&b, "exhaustive: %d view sets costed, optimum %.4g\n",
		rep.ExhaustiveExplored, rep.ExhaustiveBest)
	fmt.Fprintf(&b, "shielded:   %d view sets costed, optimum %.4g",
		rep.ShieldedExplored, rep.ShieldedBest)
	if rep.ShieldedBest == rep.ExhaustiveBest {
		b.WriteString("  (matches exhaustive)\n")
	} else {
		b.WriteString("  (MISMATCH)\n")
	}
	return rep, b.String(), nil
}

func renderTree(db *corpus.Database, d *dag.DAG) string {
	return d.Render()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
