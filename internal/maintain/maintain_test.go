package maintain_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// scenario bundles a paper-size database, the expanded DAG and the
// Figure 2 node handles.
type scenario struct {
	db     *corpus.Database
	d      *dag.DAG
	n3, n4 *dag.EqNode
}

func newScenario(t *testing.T, cfg corpus.Config) *scenario {
	t.Helper()
	db := corpus.NewDatabase(cfg)
	d, err := dag.FromTree(db.ProblemDept())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		t.Fatal(err)
	}
	s := &scenario{db: db, d: d}
	s.n3 = d.FindEq(db.SumOfSals())
	join := algebra.NewJoin(
		[]algebra.JoinCond{{Left: "Emp.DName", Right: "Dept.DName"}},
		algebra.Scan(db.Catalog.MustGet("Emp")),
		algebra.Scan(db.Catalog.MustGet("Dept")),
	)
	s.n4 = d.FindEq(join)
	if s.n3 == nil || s.n4 == nil {
		t.Fatal("missing N3/N4 in DAG")
	}
	return s
}

func (s *scenario) maintainer(t *testing.T, extra ...*dag.EqNode) *maintain.Maintainer {
	t.Helper()
	vs := tracks.RootSet(s.d)
	for _, e := range extra {
		vs[e.ID] = true
	}
	m, err := maintain.New(s.d, s.db.Store, cost.PageIO{}, vs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (s *scenario) empTxn(t *testing.T, i, j int, sal int64) (*txn.Type, map[string]*delta.Delta) {
	t.Helper()
	d, err := s.db.EmpSalaryDelta(i, j, sal)
	if err != nil {
		t.Fatal(err)
	}
	return txn.PaperTypes()[0], map[string]*delta.Delta{"Emp": d}
}

func (s *scenario) deptTxn(t *testing.T, i int, budget int64) (*txn.Type, map[string]*delta.Delta) {
	t.Helper()
	d, err := s.db.DeptBudgetDelta(i, budget)
	if err != nil {
		t.Fatal(err)
	}
	return txn.PaperTypes()[1], map[string]*delta.Delta{"Dept": d}
}

func (s *scenario) checkDrift(t *testing.T, m *maintain.Maintainer, nodes ...*dag.EqNode) {
	t.Helper()
	for _, e := range append([]*dag.EqNode{s.d.Root}, nodes...) {
		drift, err := m.Drift(e)
		if err != nil {
			t.Fatal(err)
		}
		if drift != "" {
			t.Fatalf("view %s drifted from recomputation: %s", e, drift)
		}
	}
}

// TestMeasuredIOMatchesPaperTables runs the actual maintenance engine on
// the full-size paper instance and checks that the *measured* page I/Os
// equal the paper's §3.6 combined table: 13/11 for no additional views,
// 5/2 for {N3}, 16/32 for {N4}.
func TestMeasuredIOMatchesPaperTables(t *testing.T) {
	cases := []struct {
		name            string
		extra           func(*scenario) []*dag.EqNode
		wantEmp, wantDept int64
	}{
		{"empty", func(s *scenario) []*dag.EqNode { return nil }, 13, 11},
		{"N3", func(s *scenario) []*dag.EqNode { return []*dag.EqNode{s.n3} }, 5, 2},
		{"N4", func(s *scenario) []*dag.EqNode { return []*dag.EqNode{s.n4} }, 16, 32},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newScenario(t, corpus.PaperConfig())
			extra := c.extra(s)
			m := s.maintainer(t, extra...)

			ty, up := s.empTxn(t, 3, 4, 250)
			rep, err := m.Apply(ty, up)
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.PaperTotal(); got != c.wantEmp {
				t.Errorf(">Emp measured = %d, want %d (query %v, view %v)",
					got, c.wantEmp, rep.QueryIO, rep.ViewIO)
			}
			s.checkDrift(t, m, extra...)

			ty, up = s.deptTxn(t, 7, 123456)
			rep, err = m.Apply(ty, up)
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.PaperTotal(); got != c.wantDept {
				t.Errorf(">Dept measured = %d, want %d (query %v, view %v)",
					got, c.wantDept, rep.QueryIO, rep.ViewIO)
			}
			s.checkDrift(t, m, extra...)
		})
	}
}

// TestLongTransactionSequenceStaysConsistent drives a mixed sequence of
// salary changes, budget changes, hires and departures through the {N3}
// strategy and checks the views never drift from full recomputation, and
// the assertion view flags exactly the overspent departments.
func TestLongTransactionSequenceStaysConsistent(t *testing.T) {
	s := newScenario(t, corpus.Config{Departments: 20, EmpsPerDept: 5})
	m := s.maintainer(t, s.n3)
	empT, deptT := txn.PaperTypes()[0], txn.PaperTypes()[1]
	hire := &txn.Type{Name: "+Emp", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Insert, Size: 1}}}
	fire := &txn.Type{Name: "-Emp", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Delete, Size: 1}}}

	apply := func(ty *txn.Type, d *delta.Delta, rel string) {
		t.Helper()
		if _, err := m.Apply(ty, map[string]*delta.Delta{rel: d}); err != nil {
			t.Fatal(err)
		}
		s.checkDrift(t, m, s.n3)
	}

	for step := 0; step < 30; step++ {
		switch step % 4 {
		case 0:
			d, err := s.db.EmpSalaryDelta(step%20, step%5, int64(100+37*step))
			if err != nil {
				t.Fatal(err)
			}
			apply(empT, d, "Emp")
		case 1:
			d, err := s.db.DeptBudgetDelta(step%20, int64(1000+step))
			if err != nil {
				t.Fatal(err)
			}
			apply(deptT, d, "Dept")
		case 2:
			apply(hire, s.db.EmpInsertDelta(
				"newbie"+corpus.EmpName(step, 0), corpus.DeptName(step%20), 90), "Emp")
		default:
			d, err := s.db.EmpDeleteDelta(step%20, (step+1)%5)
			if err != nil {
				t.Skip("employee already deleted in a previous round")
			}
			apply(fire, d, "Emp")
		}
	}
}

// TestViolationAppearsInRootView: pushing a department over budget makes
// the maintained ProblemDept view non-empty; restoring the salary empties
// it again.
func TestViolationAppearsInRootView(t *testing.T) {
	s := newScenario(t, corpus.Config{Departments: 5, EmpsPerDept: 3})
	m := s.maintainer(t, s.n3)
	empT := txn.PaperTypes()[0]

	d, err := s.db.EmpSalaryDelta(2, 0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(empT, map[string]*delta.Delta{"Emp": d}); err != nil {
		t.Fatal(err)
	}
	rows := m.Contents(s.d.Root)
	if len(rows) != 1 {
		t.Fatalf("ProblemDept rows = %d, want 1", len(rows))
	}
	if got := rows[0].Tuple[0].S; got != corpus.DeptName(2) {
		t.Errorf("violating department = %q", got)
	}
	s.checkDrift(t, m, s.n3)

	d, err = s.db.EmpSalaryDelta(2, 0, corpus.BaseSalary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(empT, map[string]*delta.Delta{"Emp": d}); err != nil {
		t.Fatal(err)
	}
	if rows := m.Contents(s.d.Root); len(rows) != 0 {
		t.Fatalf("ProblemDept should be empty again, has %d rows", len(rows))
	}
	s.checkDrift(t, m, s.n3)
}

// TestRollbackRestoresState: applying a transaction then rolling it back
// leaves views, sidecars and base relations as before.
func TestRollbackRestoresState(t *testing.T) {
	s := newScenario(t, corpus.Config{Departments: 5, EmpsPerDept: 3})
	m := s.maintainer(t, s.n3)
	empT := txn.PaperTypes()[0]

	d, err := s.db.EmpSalaryDelta(1, 1, 999_999)
	if err != nil {
		t.Fatal(err)
	}
	up := map[string]*delta.Delta{"Emp": d}
	rep, err := m.Apply(empT, up)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Contents(s.d.Root)) != 1 {
		t.Fatal("expected a violation before rollback")
	}
	if err := m.Rollback(rep, up); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Contents(s.d.Root)); got != 0 {
		t.Fatalf("root view has %d rows after rollback", got)
	}
	s.checkDrift(t, m, s.n3)

	// The rolled-back employee must have the original salary.
	rel := s.db.Store.MustGet("Emp")
	was := rel.Resident
	rel.Resident = true
	rows := rel.Lookup([]string{"EName"}, value.Tuple{value.NewString(corpus.EmpName(1, 1))})
	rel.Resident = was
	if len(rows) != 1 || rows[0].Tuple[2].AsInt() != corpus.BaseSalary {
		t.Errorf("employee not restored: %v", rows)
	}

	// Applying again after rollback still works and still maintains
	// consistency.
	d, err = s.db.EmpSalaryDelta(1, 1, 120)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(empT, map[string]*delta.Delta{"Emp": d}); err != nil {
		t.Fatal(err)
	}
	s.checkDrift(t, m, s.n3)
}

// TestGroupBirthAndDeathThroughEngine: hiring the first employee of a new
// department and firing a department's last employee keep the N3 view and
// sidecar correct.
func TestGroupBirthAndDeathThroughEngine(t *testing.T) {
	s := newScenario(t, corpus.Config{Departments: 3, EmpsPerDept: 1})
	m := s.maintainer(t, s.n3)
	hire := &txn.Type{Name: "+Emp", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Insert, Size: 1}}}
	fire := &txn.Type{Name: "-Emp", Weight: 1,
		Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Delete, Size: 1}}}

	// Hire into a brand-new department (no Dept row: the join view stays
	// empty but N3 gains a group).
	if _, err := m.Apply(hire, map[string]*delta.Delta{
		"Emp": s.db.EmpInsertDelta("solo", "d-new", 500),
	}); err != nil {
		t.Fatal(err)
	}
	s.checkDrift(t, m, s.n3)
	n3rel, _ := m.ViewRel(s.n3)
	if n3rel.Card() != 4 {
		t.Errorf("N3 card = %d, want 4 (3 departments + d-new)", n3rel.Card())
	}

	// Fire the only employee of department 0: its group must vanish.
	d, err := s.db.EmpDeleteDelta(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(fire, map[string]*delta.Delta{"Emp": d}); err != nil {
		t.Fatal(err)
	}
	s.checkDrift(t, m, s.n3)
	if n3rel.Card() != 3 {
		t.Errorf("N3 card = %d after death, want 3", n3rel.Card())
	}
}

// TestEstimatedVsMeasuredAgreeAcrossScales: the structural agreement
// between the cost model and the engine must hold across database sizes,
// not just the paper's 1000×10 instance.
func TestEstimatedVsMeasuredAgreeAcrossScales(t *testing.T) {
	for _, cfg := range []corpus.Config{
		{Departments: 10, EmpsPerDept: 3},
		{Departments: 50, EmpsPerDept: 20},
	} {
		s := newScenario(t, cfg)
		c := tracks.NewCosting(s.d, cost.PageIO{})
		vs := tracks.NewViewSet(s.d.Root, s.n3)
		m := s.maintainer(t, s.n3)

		ty, up := s.empTxn(t, 1, 1, 500)
		best, _ := c.CostViewSet(vs, ty)
		rep, err := m.Apply(ty, up)
		if err != nil {
			t.Fatal(err)
		}
		if float64(rep.PaperTotal()) != best.Total() {
			t.Errorf("cfg %+v: measured %d != estimated %g", cfg, rep.PaperTotal(), best.Total())
		}
		s.checkDrift(t, m, s.n3)
	}
}
