package maintain

import (
	"sort"
	"strconv"

	"repro/internal/algebra"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// trackPlan is a compiled update track for one (view set, transaction
// type) pair: the cost-chosen track plus, per affected node, the
// precompiled delta-propagation step (resolved column positions,
// compiled predicates and residuals, plan-owned probe-cache and key
// encoder buffers). The hot path replays steps with no schema
// resolution, no expression compilation and no per-window map churn.
//
// Plans live in Maintainer.plans keyed by the transaction type's
// canonical name (txn.MergedType gives batches a canonical name too, so
// a recurring window shape compiles once). Each plan records the view-set
// key it was compiled under; planFor recompiles when the view set has
// changed since. Plan-owned scratch buffers make a plan single-threaded,
// matching the propagation pass that uses it.
type trackPlan struct {
	track *tracks.Track
	// queries is the costed track's query list (tracks.TrackCost.Queries):
	// every point query the cost model expects this track to pose.
	queries []tracks.QueryCharge
	// shared counts the queries MQO merges away — posed by more than one
	// consumer along the track, answered once per window by the memo.
	shared int
	vsKey  string
	steps  map[int]*planStep
}

// planStep is the compiled propagation step of one equivalence node;
// exactly one field is set, matching the chosen operation's kind.
// Operators with no compile-time state (Distinct, Union, Diff) leave all
// fields nil and take the generic path.
type planStep struct {
	sel  *delta.SelectPlan
	proj *delta.ProjectPlan
	join *delta.JoinPlan
	agg  *delta.AggregatePlan
}

// setArena threads the maintainer's per-window arena into the plans
// that derive tuples (projection outputs, join concatenations,
// aggregate keys and output rows).
func (st *planStep) setArena(a *value.Arena) {
	if st.proj != nil {
		st.proj.SetArena(a)
	}
	if st.join != nil {
		st.join.SetArena(a)
	}
	if st.agg != nil {
		st.agg.SetArena(a)
	}
}

// viewSetKey canonicalizes a view set for plan invalidation.
func viewSetKey(vs tracks.ViewSet) string {
	ids := vs.IDs()
	sort.Ints(ids)
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, ',')
	}
	return string(b)
}

// planFor returns the compiled plan for t, compiling (or recompiling,
// when the view set changed) on first use.
func (m *Maintainer) planFor(t *txn.Type) (*trackPlan, error) {
	vsk := viewSetKey(m.VS)
	if p := m.plans[t.Name]; p != nil && p.vsKey == vsk {
		return p, nil
	}
	best, _ := m.Cost.CostViewSet(m.VS, t)
	tr := best.Track
	if tr == nil {
		tr = &tracks.Track{Choice: map[int]*dag.OpNode{}}
	}
	p := &trackPlan{
		track:   tr,
		queries: best.Queries,
		shared:  best.SharedQueries(),
		vsKey:   vsk,
		steps:   make(map[int]*planStep, len(tr.Order)),
	}
	for _, e := range tr.Order {
		st, err := compileStep(tr.Choice[e.ID])
		if err != nil {
			return nil, err
		}
		st.setArena(&m.arena)
		p.steps[e.ID] = st
	}
	m.plans[t.Name] = p
	return p, nil
}

// compileStep precompiles the delta propagation of one operation node
// against its children's schemas. Deltas flowing along a track carry
// their equivalence node's schema (the DAG's strict-equivalence
// invariant), so compile-time resolution against op.Children[i].Schema()
// matches what per-call compilation against d.Schema would produce.
func compileStep(op *dag.OpNode) (*planStep, error) {
	st := &planStep{}
	switch t := op.Template.(type) {
	case *algebra.Select:
		p, err := delta.CompileSelect(t, op.Children[0].Schema())
		if err != nil {
			return nil, err
		}
		st.sel = p
	case *algebra.Project:
		p, err := delta.CompileProject(t, op.Children[0].Schema())
		if err != nil {
			return nil, err
		}
		st.proj = p
	case *algebra.Join:
		p, err := delta.CompileJoin(t, op.Children[0].Schema(), op.Children[1].Schema())
		if err != nil {
			return nil, err
		}
		st.join = p
	case *algebra.Aggregate:
		p, err := delta.CompileAggregate(t, op.Children[0].Schema())
		if err != nil {
			return nil, err
		}
		st.agg = p
	}
	return st, nil
}
