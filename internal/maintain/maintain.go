// Package maintain is the runtime incremental-maintenance engine: it
// materializes a chosen view set into the storage engine and, for each
// transaction, computes deltas along the cost-chosen update track —
// posing exactly the queries the cost model predicted — and applies them,
// with real page-I/O accounting. Running it next to the estimator lets
// the benchmarks report measured page I/Os beside estimated ones.
package maintain

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// obsDeltaChanges records the cardinality of every delta computed along
// an update track (leaves excluded — they are the transaction's input,
// not propagation output). The distribution shows how deltas grow or
// shrink as they climb the track, the quantity the paper's per-node
// update charges are proportional to.
var obsDeltaChanges = obs.H("maintain.delta.changes")

// obsApplyNs records end-to-end apply latency per window (Apply and
// ApplyBatch), in nanoseconds — the histogram the benchmark rows report
// p50/p99 from.
var obsApplyNs = obs.H("maintain.apply.ns")

// Arena traffic counters: bytes served from blocks retained across
// windows (reused) versus blocks newly allocated within their window
// (grown). A healthy steady state shows reused climbing and grown flat
// — the window working set fits the retained blocks and the allocator
// is never entered.
var (
	obsArenaReused = obs.C("maintain.arena.reused_bytes")
	obsArenaGrown  = obs.C("maintain.arena.grown_bytes")
)

// obsSerialDegrade counts windows whose view-apply worker pool degraded
// to serial because the window's summed view-delta cardinality was too
// small to amortize worker handoff.
var obsSerialDegrade = obs.C("maintain.apply.serial_degrade")

// View is one materialized equivalence node with its backing store and
// (for aggregates and duplicate elimination) the live-count sidecar that
// detects group birth and death. The sidecar plays the role of the
// counting algorithm's hidden duplicate counts; it rides on the view's
// pages and is not charged separately.
type View struct {
	Eq  *dag.EqNode
	Rel *storage.Relation
	// aggOp is the aggregate operation under Eq whose child the live
	// counts refer to (nil when Eq has no aggregate alternative).
	aggOp *dag.OpNode
	// distinctOp likewise for duplicate elimination.
	distinctOp *dag.OpNode
	// live maps a group key (aggregates) or tuple key (distinct) to the
	// bag multiplicity in the relevant child expression.
	live map[string]int64
	// stale marks keys whose live count is unknown: the view's delta was
	// computed through an operation other than aggOp/distinctOp, so the
	// tracked child's delta never materialized. Stale groups force the
	// full-group (queried) maintenance path until resynced.
	stale map[string]bool
	// pending carries post-transaction live counts computed by
	// aggregateDelta (incremental or full-group), applied by
	// updateSidecar; it also clears staleness for those keys.
	pending map[string]int64
}

// Committer makes a maintenance window durable. The WAL's group commit
// implements it: Commit drains the deltas staged by the store's
// mutation hook, frames them as one record covering txns transactions,
// and fsyncs once, returning the window's LSN. A nil Committer means
// the engine runs in-memory, exactly as before.
type Committer interface {
	Commit(txns int) (uint64, error)
}

// WindowCommitter is an optional Committer upgrade for pipelined group
// commit. ApplyBatch knows a window's net base deltas as soon as it has
// coalesced them — before any propagation work — so a WindowCommitter
// starts encoding, writing and fsyncing the window record from that
// merged delta on a background goroutine while propagation, base apply
// and view apply proceed. The returned wait is the commit fence:
// ApplyBatch blocks on it before acknowledging, so ack still implies
// durable. A crash after the early fsync but before the ack recovers to
// one window past the last acknowledged state (lastAcked+1), which the
// recovery contract allows.
type WindowCommitter interface {
	Committer
	// BeginWindow starts making the window durable from its coalesced
	// net deltas. The implementation must suppress its mutation-hook
	// staging until wait is called (the window's base applies would
	// otherwise be logged twice).
	BeginWindow(w delta.Coalesced, txns int) (wait func() (uint64, error))
}

// WindowUpdate describes one successfully applied maintenance window
// (an ApplyBatch window, a single Apply transaction, or a rollback's
// compensation) as seen by a window hook.
//
// Ownership: Deltas is the window report's delta map — arena-backed and
// recycled, valid ONLY for the duration of the hook call. A hook that
// retains any tuple or change past its return must deep-clone it first;
// the next window's arena reset invalidates everything the map points
// at. The hook runs on the window's goroutine, so heavy work belongs on
// the consumer's side of a queue, after cloning.
type WindowUpdate struct {
	// Seq numbers applied windows on this maintainer, starting at 1.
	// Rollback compensations get their own sequence number: the feed of
	// updates is exactly the sequence of state transitions.
	Seq uint64
	// LSN is the durability point covering the window (0 in-memory, and
	// 0 on rollback compensations — the rollback's own commit is driven
	// by the checker after the hook fires).
	LSN uint64
	// Txns is the window's transaction count (0 for a compensation).
	Txns int
	// Deltas maps equivalence-node IDs to the net change applied at
	// that node this window. Empty (but non-nil) for windows that
	// coalesced to nothing.
	Deltas map[int]*delta.Delta
}

// WindowHook observes applied windows; see WindowUpdate for the
// ownership contract. Installed via SetWindowHook; the server's
// changefeed/snapshot hub is the intended consumer.
type WindowHook func(WindowUpdate)

// Maintainer owns a view set over a store and keeps it incrementally
// maintained.
type Maintainer struct {
	D     *dag.DAG
	Store *storage.Store
	Cost  *tracks.Costing
	VS    tracks.ViewSet

	// Committer, when set, is invoked once per applied window (after the
	// base relations are updated) to make the window durable. ApplyBatch
	// overlaps the commit fsync with view application.
	Committer Committer

	// Workers bounds the goroutines ApplyBatch uses to apply per-view
	// deltas to independent materialized views. Zero or one means
	// sequential; a store with an attached page buffer always runs
	// sequentially (buffered charging mutates shared LRU state).
	Workers int

	// SerialThreshold is the window view-delta cardinality (summed
	// changes across all views on the track) below which the worker pool
	// degrades to serial: tiny windows lose more to goroutine handoff
	// than they gain from overlap. Zero means the default (256).
	SerialThreshold int

	// DisableMQO turns off the per-window shared subplan memo (every
	// query goes back to storage). Test knob: the equivalence suite
	// compares memo-shared propagation against this per-query oracle.
	DisableMQO bool

	views map[int]*View
	plans map[string]*trackPlan
	trees map[int]algebra.Node // memoized query trees per eq node

	// Per-window scratch, reset (not freed) between windows. The arena
	// backs every tuple propagation derives, which is why a report's
	// Deltas (and Merged) are documented valid only until the next
	// Apply/ApplyBatch on this maintainer.
	arena     value.Arena
	coalescer delta.Coalescer
	winBuf    []map[string]*delta.Delta
	mutBuf    []storage.Mutation

	// Cross-window recycled report scratch (DESIGN.md §14): Apply and
	// ApplyBatch each return the same report object every window, reset
	// in place — the whole report (not just its Deltas) is valid only
	// until the next Apply/ApplyBatch on this maintainer.
	batchRep BatchReport
	txnRep   Report
	workBuf  []viewWork
	winMemo  windowMemo

	// Window-causal tracing state. Both fields follow the single-writer
	// rule: spanParent is set by the dispatching goroutine (a Sharded
	// window) before ApplyBatch runs, windowSpan at the top of each
	// window. Committers read windowSpan synchronously from inside the
	// window (BeginWindow/Commit are called on or joined by the window's
	// goroutine), so cross-goroutine commit spans can parent to the
	// window root without widening the Committer interface.
	spanParent uint64
	windowSpan uint64

	// typeStats caches per-transaction-type frequency/latency counter
	// handles by canonical type name, so the per-window accounting loop
	// allocates nothing in steady state.
	typeStats map[string]*typeStat

	// onWindow, when set, observes every applied window at its fence —
	// after the commit wait and view application, while the report's
	// deltas are still alive. winSeq numbers those windows; rollbackDel
	// is the compensation hook's recycled delta map.
	onWindow    WindowHook
	winSeq      uint64
	rollbackDel map[int]*delta.Delta

	pubArenaReused, pubArenaGrown uint64
}

// defaultSerialThreshold is the summed view-delta cardinality below
// which parallel view application degrades to serial.
const defaultSerialThreshold = 256

// obsTxns counts maintained transactions — the numerator of every
// txns/sec readout (mvtop polls it).
var obsTxns = obs.C("maintain.txns")

// typeStat is one transaction type's observed workload profile. These
// are the weights the paper's cost model takes as given (§2's f_i
// frequencies) and the ROADMAP's online re-optimizer consumes as
// measured: count is observed frequency, ns the maintenance time
// attributed to the type.
type typeStat struct {
	count *obs.Counter
	ns    *obs.Counter
}

// typeStatFor returns (registering on first use) the counters for one
// canonical transaction-type name.
func (m *Maintainer) typeStatFor(name string) *typeStat {
	if m.typeStats == nil {
		m.typeStats = map[string]*typeStat{}
	}
	st, ok := m.typeStats[name]
	if !ok {
		st = &typeStat{
			count: obs.C("maintain.txn_type." + name + ".count"),
			ns:    obs.C("maintain.txn_type." + name + ".ns"),
		}
		m.typeStats[name] = st
	}
	return st
}

// observeTxnTypes attributes a window's elapsed time across its
// transactions by type: each transaction counts once and carries an
// equal share of the window's wall time (per-txn attribution inside a
// coalesced window is not observable — the window is maintained as one
// unit). Zero allocations after the first window of each type.
func (m *Maintainer) observeTxnTypes(txns []txn.Transaction, elapsed int64) {
	if len(txns) == 0 {
		return
	}
	obsTxns.Add(int64(len(txns)))
	share := elapsed / int64(len(txns))
	var lastName string
	var st *typeStat
	for i := range txns {
		name := "untyped"
		if txns[i].Type != nil {
			name = txns[i].Type.Name
		}
		if st == nil || name != lastName {
			st = m.typeStatFor(name)
			lastName = name
		}
		st.count.Inc()
		st.ns.Add(share)
	}
}

// SetSpanParent sets the parent span ID for this maintainer's next
// windows (0 restores root). A Sharded window points every shard's
// pipeline at its window root before dispatch, so shard-goroutine spans
// link into one window trace.
func (m *Maintainer) SetSpanParent(id uint64) { m.spanParent = id }

// SetWindowHook installs (or, with nil, removes) the window hook: fn is
// called once per applied window — ApplyBatch window, single Apply
// transaction, or rollback compensation — at the window fence, after
// the commit wait and view application succeed. The WindowUpdate's
// delta map is valid only for the duration of the call; see the
// WindowUpdate ownership contract.
func (m *Maintainer) SetWindowHook(fn WindowHook) { m.onWindow = fn }

// fireWindowHook advances the window sequence and invokes the hook.
func (m *Maintainer) fireWindowHook(lsn uint64, txns int, deltas map[int]*delta.Delta) {
	if m.onWindow == nil {
		return
	}
	m.winSeq++
	m.onWindow(WindowUpdate{Seq: m.winSeq, LSN: lsn, Txns: txns, Deltas: deltas})
}

// WindowSpanID returns the current window's root span ID. Committers
// call this from BeginWindow/Commit — both happen-after the window
// opened and happen-before the next one does — to parent their commit
// spans (including deferred, cross-goroutine fsync chains) to the
// window that staged the deltas.
func (m *Maintainer) WindowSpanID() uint64 { return m.windowSpan }

// publishArenaStats pushes the arena's cumulative traffic into the obs
// registry as counter deltas.
func (m *Maintainer) publishArenaStats() {
	reused, grown := m.arena.Stats()
	if d := reused - m.pubArenaReused; d > 0 {
		obsArenaReused.Add(int64(d))
	}
	if d := grown - m.pubArenaGrown; d > 0 {
		obsArenaGrown.Add(int64(d))
	}
	m.pubArenaReused, m.pubArenaGrown = reused, grown
}

// ViewName is the storage name of a materialized equivalence node.
func ViewName(e *dag.EqNode) string { return fmt.Sprintf("view_N%d", e.ID) }

// New materializes the view set (initial materialization is not charged,
// matching the paper) and returns a ready maintainer.
func New(d *dag.DAG, st *storage.Store, model cost.Model, vs tracks.ViewSet) (*Maintainer, error) {
	return NewRestored(d, st, model, vs, RestoreOptions{})
}

// qualifyIndexCols maps bare index column names onto concrete schema
// columns (the first bare-name match): join-view schemas can carry the
// same bare name on both sides, whose values the equijoin makes equal, so
// any match indexes the same key.
func qualifyIndexCols(s *catalog.Schema, bare []string) []string {
	out := make([]string, 0, len(bare))
	for _, b := range bare {
		found := ""
		for _, c := range s.Cols {
			if c.Name == b {
				found = c.QName()
				break
			}
		}
		if found == "" {
			return nil
		}
		out = append(out, found)
	}
	return out
}

// initSidecar seeds live counts from the current child contents.
func (m *Maintainer) initSidecar(v *View, free *exec.Evaluator) error {
	if v.aggOp != nil {
		agg := v.aggOp.Template.(*algebra.Aggregate)
		child := v.aggOp.Children[0]
		res, err := free.Eval(m.D.RepTree(child))
		if err != nil {
			return err
		}
		pos := make([]int, len(agg.GroupBy))
		for i, g := range agg.GroupBy {
			j, err := res.Schema.Resolve(g)
			if err != nil {
				return err
			}
			pos[i] = j
		}
		var enc value.KeyEncoder
		for _, row := range res.Rows {
			v.live[string(enc.ProjectedKey(row.Tuple, pos))] += row.Count
		}
	}
	if v.distinctOp != nil {
		child := v.distinctOp.Children[0]
		res, err := free.Eval(m.D.RepTree(child))
		if err != nil {
			return err
		}
		var enc value.KeyEncoder
		for _, row := range res.Rows {
			v.live[string(enc.Key(row.Tuple))] += row.Count
		}
	}
	return nil
}

// ViewRel returns the backing relation of a materialized node.
func (m *Maintainer) ViewRel(e *dag.EqNode) (*storage.Relation, bool) {
	v, ok := m.views[e.ID]
	if !ok {
		return nil, false
	}
	return v.Rel, true
}

// Contents returns the current rows of a materialized node, uncharged.
func (m *Maintainer) Contents(e *dag.EqNode) []storage.Row {
	v, ok := m.views[e.ID]
	if !ok {
		return nil
	}
	return v.Rel.ScanFree()
}

// Report describes one maintained transaction, with page I/O split the
// way the paper accounts it: queries posed during delta computation,
// updates to the additional materialized views, updates to the top-level
// view(s), and updates to the base relations (the last two are excluded
// from the paper's §3.6 totals).
//
// Lifetime: Apply returns a recycled report — the same object, reset in
// place, every call — so the report and everything it points at are
// valid only until the next Apply/ApplyBatch on the maintainer.
type Report struct {
	Txn     string
	Track   *tracks.Track
	QueryIO storage.IOCounter
	ViewIO  storage.IOCounter
	RootIO  storage.IOCounter
	BaseIO  storage.IOCounter
	// Deltas holds the computed change at every affected node.
	Deltas map[int]*delta.Delta
	// LSN is the log sequence number as of which the transaction is
	// durable when a Committer is attached (0 otherwise).
	LSN uint64
}

// PaperTotal is the quantity §3.6 reports: query I/O plus additional-view
// maintenance I/O.
func (r *Report) PaperTotal() int64 { return r.QueryIO.Total() + r.ViewIO.Total() }

// Apply maintains the view set under one transaction: updates maps base
// relation names to their deltas. The deltas are computed against the
// pre-update state (queries see old contents), then applied to the views
// and finally to the base relations, as in the paper's differential
// formalism (R_old, V_old).
func (m *Maintainer) Apply(t *txn.Type, updates map[string]*delta.Delta) (*Report, error) {
	t0 := time.Now()
	wt := obs.StartWindow("maintain.apply", m.spanParent)
	m.windowSpan = wt.RootID()
	obs.Flight().Record(obs.EvWindowOpen, 0, wt.Seq(), 1, wt.RootID())
	defer func() {
		wt.Finish()
		elapsed := time.Since(t0).Nanoseconds()
		obsApplyNs.Observe(elapsed)
		if t != nil {
			m.typeStatFor(t.Name).count.Inc()
			m.typeStatFor(t.Name).ns.Add(elapsed)
		}
		obsTxns.Inc()
		m.publishArenaStats()
	}()
	// Rewind the window arena: tuples from the previous window (held by
	// its report) are invalidated here, per the window ownership rule.
	m.arena.Reset()
	plan, err := m.planFor(t)
	if err != nil {
		return nil, err
	}
	tr := plan.track
	rep := &m.txnRep
	*rep = Report{Txn: t.Name, Track: tr, Deltas: rep.Deltas}
	if rep.Deltas == nil {
		rep.Deltas = map[int]*delta.Delta{}
	} else {
		clear(rep.Deltas)
	}

	// Seed leaf deltas.
	for _, e := range m.D.Eqs() {
		if e.IsLeaf() {
			if du, ok := updates[e.BaseRel]; ok && !du.Empty() {
				rep.Deltas[e.ID] = du
			}
		}
	}

	// Compute deltas bottom-up along the track, charging queries. The
	// window memo shares answered queries (and repeated subtree
	// evaluations) across every step of this pass.
	prop := wt.Child("maintain.propagate")
	w := m.newWindowMemo()
	io0 := m.Store.IO.Snapshot()
	for _, e := range tr.Order {
		op := tr.Choice[e.ID]
		d, err := m.opDelta(e, op, rep.Deltas, tr, w, plan.steps[e.ID])
		if err != nil {
			prop.Finish()
			return nil, fmt.Errorf("maintain: %s at %s: %w", t.Name, e, err)
		}
		rep.Deltas[e.ID] = d
		obsDeltaChanges.Observe(int64(len(d.Changes)))
	}
	rep.QueryIO = m.Store.IO.Snapshot().Sub(io0)
	prop.Finish()

	// Apply deltas to materialized views (sidecars first need the child
	// deltas, which are all computed by now).
	for _, e := range tr.Order {
		v, ok := m.views[e.ID]
		if !ok {
			continue
		}
		if d := rep.Deltas[e.ID]; !d.Empty() {
			before := m.Store.IO.Snapshot()
			m.mutBuf = d.AppendMutations(m.mutBuf[:0])
			v.Rel.ApplyBatch(m.mutBuf)
			used := m.Store.IO.Snapshot().Sub(before)
			if m.D.IsRoot(e) {
				rep.RootIO = addIO(rep.RootIO, used)
			} else {
				rep.ViewIO = addIO(rep.ViewIO, used)
			}
		}
		// The sidecar tracks the CHILD's multiplicities, which can change
		// even when the view's own delta is empty (a duplicate's count
		// dropping from 2 to 1 leaves a distinct view untouched but must
		// still be recorded, or the eventual drop to 0 is missed).
		if err := m.updateSidecar(v, rep.Deltas, tr); err != nil {
			return nil, err
		}
	}

	// Finally apply the base relation updates.
	before := m.Store.IO.Snapshot()
	for rel, du := range updates {
		r, ok := m.Store.Get(rel)
		if !ok {
			return nil, fmt.Errorf("maintain: unknown relation %q", rel)
		}
		m.mutBuf = du.AppendMutations(m.mutBuf[:0])
		r.ApplyBatch(m.mutBuf)
	}
	rep.BaseIO = m.Store.IO.Snapshot().Sub(before)
	if m.Committer != nil {
		lsn, err := m.Committer.Commit(1)
		if err != nil {
			obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 1)
			return nil, fmt.Errorf("maintain: commit: %w", err)
		}
		rep.LSN = lsn
		obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 0)
	}
	m.fireWindowHook(rep.LSN, 1, rep.Deltas)
	return rep, nil
}

func addIO(a, b storage.IOCounter) storage.IOCounter {
	return storage.IOCounter{
		IndexReads:  a.IndexReads + b.IndexReads,
		IndexWrites: a.IndexWrites + b.IndexWrites,
		PageReads:   a.PageReads + b.PageReads,
		PageWrites:  a.PageWrites + b.PageWrites,
	}
}

// updateSidecar folds the transaction's effects into a view's live
// counts. Three cases, in precedence order:
//
//  1. aggregateDelta left pending post-update counts (it went through
//     aggOp): apply them and clear staleness.
//  2. the tracked child's delta is available (the track passed through
//     it for any reason): fold the signed group counts, skipping keys
//     already stale.
//  3. only the view's own delta exists (computed through another
//     operation alternative): the affected keys' liveness is now
//     unknown — mark them stale so future maintenance recomputes them.
func (m *Maintainer) updateSidecar(v *View, deltas map[int]*delta.Delta, tr *tracks.Track) error {
	switch {
	case v.aggOp != nil:
		agg := v.aggOp.Template.(*algebra.Aggregate)
		if len(v.pending) > 0 {
			for k, n := range v.pending {
				v.live[k] = n
				delete(v.stale, k)
			}
			v.pending = nil
			return nil
		}
		child := v.aggOp.Children[0]
		cd := deltas[child.ID]
		if !cd.Empty() {
			gc, err := cd.GroupCounts(agg.GroupBy)
			if err != nil {
				return err
			}
			for k, n := range gc {
				if !v.stale[k] {
					v.live[k] += n
				}
			}
			return nil
		}
		if own := deltas[v.Eq.ID]; !own.Empty() {
			markStaleGroups(v, own, len(agg.GroupBy))
		}
	case v.distinctOp != nil:
		child := v.distinctOp.Children[0]
		cd := deltas[child.ID]
		if !cd.Empty() {
			for k, n := range cd.TupleCounts() {
				if !v.stale[k] {
					v.live[k] += n
				}
			}
			return nil
		}
		if own := deltas[v.Eq.ID]; !own.Empty() {
			markStaleGroups(v, own, -1)
		}
	}
	return nil
}

// markStaleGroups invalidates the live counts of every key the view's own
// delta touches; nGroupCols < 0 means the whole tuple is the key.
func markStaleGroups(v *View, own *delta.Delta, nGroupCols int) {
	var enc value.KeyEncoder
	mark := func(t value.Tuple) {
		if t == nil {
			return
		}
		key := t
		if nGroupCols >= 0 && nGroupCols <= len(t) {
			key = t[:nGroupCols]
		}
		k := string(enc.Key(key))
		v.stale[k] = true
		delete(v.live, k)
	}
	for _, c := range own.Changes {
		mark(c.Old)
		mark(c.New)
	}
}

// Rollback applies the inverse of a report's deltas (views, sidecars and
// base relations), uncharged; used by assertion checking to reject a
// violating transaction.
func (m *Maintainer) Rollback(rep *Report, updates map[string]*delta.Delta) error {
	unchargedBatch := func(rel *storage.Relation, d *delta.Delta) {
		was := rel.Resident
		rel.Resident = true
		rel.ApplyBatch(inverse(d).ToMutations())
		rel.Resident = was
	}
	for rel, du := range updates {
		r, ok := m.Store.Get(rel)
		if !ok {
			return fmt.Errorf("maintain: unknown relation %q", rel)
		}
		unchargedBatch(r, du)
	}
	for id, d := range rep.Deltas {
		v, ok := m.views[id]
		if !ok || d.Empty() {
			continue
		}
		unchargedBatch(v.Rel, d)
		inv := inverse(d)
		switch {
		case v.aggOp != nil:
			agg := v.aggOp.Template.(*algebra.Aggregate)
			child := v.aggOp.Children[0]
			if cd := rep.Deltas[child.ID]; !cd.Empty() {
				gc, err := inverse(cd).GroupCounts(agg.GroupBy)
				if err != nil {
					return err
				}
				for k, n := range gc {
					v.live[k] += n
				}
			}
		case v.distinctOp != nil:
			child := v.distinctOp.Children[0]
			if cd := rep.Deltas[child.ID]; !cd.Empty() {
				for k, n := range inverse(cd).TupleCounts() {
					v.live[k] += n
				}
			}
		}
		_ = inv
	}
	// Announce the compensation as its own window: a hook that mirrored
	// the rejected transaction's deltas must mirror their inverse too,
	// or downstream state (server snapshots, changefeeds) keeps the
	// rolled-back change. The inverse deltas are freshly built above the
	// arena, so the usual call-scoped ownership applies unchanged.
	if m.onWindow != nil {
		if m.rollbackDel == nil {
			m.rollbackDel = map[int]*delta.Delta{}
		} else {
			clear(m.rollbackDel)
		}
		for id, d := range rep.Deltas {
			if !d.Empty() {
				m.rollbackDel[id] = inverse(d)
			}
		}
		m.fireWindowHook(0, 0, m.rollbackDel)
	}
	return nil
}

// inverse swaps insertions and deletions and reverses modifications.
func inverse(d *delta.Delta) *delta.Delta {
	out := delta.New(d.Schema)
	for _, c := range d.Changes {
		out.Changes = append(out.Changes, delta.Change{Old: c.New, New: c.Old, Count: c.Count})
	}
	return out
}

// Oracle recomputes a materialized node from scratch (uncharged) — the
// correctness baseline for tests.
func (m *Maintainer) Oracle(e *dag.EqNode) (*exec.Result, error) {
	return exec.NewFree(m.Store).Eval(m.D.RepTree(e))
}

// Drift compares a materialized view against full recomputation and
// returns a description of any mismatch ("" when consistent).
func (m *Maintainer) Drift(e *dag.EqNode) (string, error) {
	v, ok := m.views[e.ID]
	if !ok {
		return "", fmt.Errorf("maintain: %s is not materialized", e)
	}
	want, err := m.Oracle(e)
	if err != nil {
		return "", err
	}
	stored := map[string]int64{}
	var enc value.KeyEncoder
	v.Rel.Iterate(func(row storage.Row) bool {
		stored[string(enc.Key(row.Tuple))] += row.Count
		return true
	})
	for _, row := range want.Rows {
		stored[string(enc.Key(row.Tuple))] -= row.Count
	}
	for k, n := range stored {
		if n != 0 {
			return fmt.Sprintf("tuple %x off by %d", k, n), nil
		}
	}
	return "", nil
}
