package maintain

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tracks"
	"repro/internal/txn"
	"repro/internal/value"
)

// obsShardSkew is max/mean of the signed-change units routed per shard
// in the last window — 1.0 is a perfectly balanced window, Effective×
// means one shard got everything.
var obsShardSkew = obs.G("maintain.shard.skew")

// ShardSetup is one shard's fully built engine substrate: an expanded
// DAG, the catalog of base relations and the store holding them. A
// shard factory returns a fresh, fully populated setup per call; the
// DAG expansion must be deterministic so equivalence-node IDs align
// across shards (NewSharded verifies this by canonical label).
type ShardSetup struct {
	D     *dag.DAG
	Cat   *catalog.Catalog
	Store *storage.Store
}

// ShardedConfig configures NewSharded.
type ShardedConfig struct {
	// Shards is the requested shard count (>= 1). Analysis may fall
	// back to an effective count of 1 (see Partitioning.Reason).
	Shards int
	// PartitionBy is the bare partition column name; "" auto-chooses
	// via ChoosePartitionColumn.
	PartitionBy string
	// VS is the materialized view set, identical on every shard.
	// Required: the optimizer runs once globally, not per shard, so
	// shard-local statistics cannot diverge the view sets.
	VS tracks.ViewSet
	// Workers is each shard pipeline's view-apply worker count.
	Workers int
	// DisableMQO disables the shared-subplan memo per shard.
	DisableMQO bool
	// Model is the cost model (default the paper's page-I/O model).
	Model cost.Model
}

// shard is one shard-local pipeline with its observability handles.
type shard struct {
	setup   *ShardSetup
	m       *Maintainer
	applyNs *obs.Histogram
	routed  *obs.Counter
}

// mergedView is the merge-stage state of one spanning aggregate view:
// the combined rows keyed by encoded group key.
type mergedView struct {
	eq   *dag.EqNode
	part ViewPartition
	rows map[string]storage.Row
}

// Sharded is N shard-local maintenance pipelines behind one ApplyBatch:
// each window is split by the tuple router, the shard pipelines run in
// parallel (each owning its storage segment, plan cache and committer),
// and a merge stage recombines the few views whose aggregates span
// shards. Like Maintainer, Sharded is single-writer: one ApplyBatch at
// a time.
type Sharded struct {
	// D is the template DAG (shard 0's); all eq-node arguments to
	// Contents/Drift resolve by ID against every shard.
	D *dag.DAG
	// VS is the shared materialized view set.
	VS tracks.ViewSet
	// Part records the partition analysis, including any fallback.
	Part *Partitioning
	// Coordinator, when set, is invoked once per window after every
	// shard's own committer has made its segment durable; it is the
	// group-commit record that makes the window's shard LSN vector the
	// recovery bound.
	Coordinator Committer

	shards []*shard
	router *Router
	merged map[int]*mergedView

	// windowSpan is the current window's root span ID (single-writer:
	// set at the top of ApplyBatch). The Coordinator reads it from
	// inside the window to parent its LSN-vector commit span.
	windowSpan uint64

	// Cross-window recycled window scratch (DESIGN.md §14). Sharded is
	// single-writer, so the one report, the per-shard routing slices and
	// the merge stage's maps are reset in place each window; the
	// returned ShardedReport is valid only until the next ApplyBatch.
	rep      ShardedReport
	per      [][]txn.Transaction
	errs     []error
	affected map[string]value.Tuple
	partials []map[string]storage.Row
}

// WindowSpanID returns the current sharded window's root span ID for
// coordinator commit spans.
func (s *Sharded) WindowSpanID() uint64 { return s.windowSpan }

// ShardedReport describes one maintained window across all shards.
type ShardedReport struct {
	// Size is the transaction count of the window.
	Size int
	// LSN is the coordinator's commit LSN (0 without a Coordinator).
	LSN uint64
	// Shards holds each shard's BatchReport (nil for shards the window
	// did not touch).
	Shards []*BatchReport
	// Routed is the signed-change units routed to each shard.
	Routed []int64
	// Skew is max/mean of Routed over shards that exist (0 for empty
	// windows).
	Skew float64
}

// NewSharded builds a sharded maintainer: it calls factory once per
// effective shard, restricts each setup's base relations to the shard's
// partition, and materializes the shared view set on each shard. The
// partition analysis (and its possible fallback to one shard) is
// exposed as .Part.
func NewSharded(factory func() (*ShardSetup, error), cfg ShardedConfig) (*Sharded, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("maintain: NewSharded requires Shards >= 1, got %d", cfg.Shards)
	}
	if cfg.VS == nil {
		return nil, fmt.Errorf("maintain: NewSharded requires a view set")
	}
	model := cfg.Model
	if model == nil {
		model = cost.PageIO{}
	}
	template, err := factory()
	if err != nil {
		return nil, fmt.Errorf("maintain: shard factory: %w", err)
	}
	col := cfg.PartitionBy
	if col == "" {
		col = ChoosePartitionColumn(template.D, cfg.VS)
	}
	part := AnalyzePartitioning(template.D, cfg.VS, col, cfg.Shards)
	eff := part.Effective

	setups := make([]*ShardSetup, eff)
	setups[0] = template
	for i := 1; i < eff; i++ {
		s, err := factory()
		if err != nil {
			return nil, fmt.Errorf("maintain: shard %d factory: %w", i, err)
		}
		if err := sameDAG(template.D, s.D, cfg.VS); err != nil {
			return nil, fmt.Errorf("maintain: shard %d: %w", i, err)
		}
		setups[i] = s
	}

	router := part.NewRouter()
	if eff > 1 {
		for i, s := range setups {
			for _, name := range s.Cat.Names() {
				rel, ok := s.Store.Get(name)
				if !ok {
					return nil, fmt.Errorf("maintain: shard %d: relation %q not in store", i, name)
				}
				keep := i
				rel.RetainWhere(func(t value.Tuple, _ int64) bool {
					return router.Route(name, t) == keep
				})
				rel.RefreshStats()
			}
		}
	}

	ms := make([]*Maintainer, eff)
	for i, s := range setups {
		m, err := New(s.D, s.Store, model, cfg.VS.Clone())
		if err != nil {
			return nil, fmt.Errorf("maintain: shard %d: %w", i, err)
		}
		m.Workers = cfg.Workers
		m.DisableMQO = cfg.DisableMQO
		ms[i] = m
	}
	return AssembleSharded(setups, ms, part)
}

// AssembleSharded wires already-built shard maintainers (fresh from
// NewSharded, or individually recovered from per-shard checkpoints and
// logs) into a Sharded, rebuilding the merged state of every spanning
// view from the current shard contents.
func AssembleSharded(setups []*ShardSetup, ms []*Maintainer, part *Partitioning) (*Sharded, error) {
	if len(setups) != len(ms) || len(setups) == 0 {
		return nil, fmt.Errorf("maintain: AssembleSharded: %d setups, %d maintainers", len(setups), len(ms))
	}
	if part.Effective != len(ms) {
		return nil, fmt.Errorf("maintain: AssembleSharded: analysis wants %d effective shards, got %d", part.Effective, len(ms))
	}
	s := &Sharded{
		D:      setups[0].D,
		VS:     ms[0].VS,
		Part:   part,
		router: part.NewRouter(),
		merged: map[int]*mergedView{},
	}
	for i := range ms {
		s.shards = append(s.shards, &shard{
			setup:   setups[i],
			m:       ms[i],
			applyNs: obs.H(fmt.Sprintf("maintain.shard%02d.apply.ns", i)),
			routed:  obs.C(fmt.Sprintf("maintain.shard%02d.routed_units", i)),
		})
	}
	if len(ms) > 1 {
		for _, e := range s.D.NonLeafEqs() {
			vp, ok := part.Views[e.ID]
			if !ok || vp.Class != ShardSpanning {
				continue
			}
			s.merged[e.ID] = &mergedView{eq: e, part: vp}
		}
		s.RebuildMerged()
	}
	return s, nil
}

// sameDAG verifies two independently built DAGs agree on every
// materialized node: same ID, same canonical representative label. A
// mismatch means the factory is not deterministic, which would silently
// corrupt cross-shard unions.
func sameDAG(a, b *dag.DAG, vs tracks.ViewSet) error {
	byID := map[int]*dag.EqNode{}
	for _, e := range b.Eqs() {
		byID[e.ID] = e
	}
	for _, e := range a.NonLeafEqs() {
		if !vs[e.ID] {
			continue
		}
		o, ok := byID[e.ID]
		if !ok {
			return fmt.Errorf("non-deterministic shard factory: node %s missing", e)
		}
		if a.RepTree(e).Label() != b.RepTree(o).Label() {
			return fmt.Errorf("non-deterministic shard factory: node %s diverged:\n  %s\n  %s",
				e, a.RepTree(e).Label(), b.RepTree(o).Label())
		}
	}
	return nil
}

// NumShards returns the effective shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's maintainer and catalog (durability wiring).
func (s *Sharded) Shard(i int) (*Maintainer, *catalog.Catalog) {
	return s.shards[i].m, s.shards[i].setup.Cat
}

// Route exposes the tuple router (tests).
func (s *Sharded) Route(rel string, t value.Tuple) int {
	return s.router.Route(rel, t)
}

// ApplyBatch maintains one window: it splits every transaction's deltas
// by the tuple router, runs the shard pipelines in parallel (each
// coalesces, plans and applies its own sub-window, and drains its own
// committer), recombines spanning aggregates for the affected group
// keys, and finally asks the Coordinator to commit the window's shard
// LSN vector.
func (s *Sharded) ApplyBatch(txns []txn.Transaction) (*ShardedReport, error) {
	n := len(s.shards)
	wt := obs.StartWindow("maintain.window", 0)
	s.windowSpan = wt.RootID()
	obs.Flight().Record(obs.EvWindowOpen, 0, wt.Seq(), uint64(len(txns)), wt.RootID())
	defer wt.Finish()
	// Recycled window scratch: same report object every window, reset in
	// place (callers use it only until the next ApplyBatch).
	rep := &s.rep
	if rep.Shards == nil {
		rep.Shards = make([]*BatchReport, n)
		rep.Routed = make([]int64, n)
		s.per = make([][]txn.Transaction, n)
		s.errs = make([]error, n)
	}
	*rep = ShardedReport{Size: len(txns), Shards: rep.Shards, Routed: rep.Routed}
	for i := 0; i < n; i++ {
		rep.Shards[i] = nil
		rep.Routed[i] = 0
		s.per[i] = s.per[i][:0]
		s.errs[i] = nil
	}
	per := s.per
	if n == 1 {
		per[0] = append(per[0], txns...)
		for _, t := range txns {
			for _, d := range t.Updates {
				rep.Routed[0] += int64(d.Size())
			}
		}
	} else {
		for _, t := range txns {
			parts := delta.SplitUpdates(t.Updates, n, s.router.Route)
			for i, u := range parts {
				if len(u) == 0 {
					continue
				}
				per[i] = append(per[i], txn.Transaction{Type: t.Type, Updates: u})
				for _, d := range u {
					rep.Routed[i] += int64(d.Size())
				}
			}
		}
	}
	for i, sh := range s.shards {
		sh.routed.Add(rep.Routed[i])
		obs.Flight().Record(obs.EvShardRoute, uint16(i), wt.Seq(), uint64(rep.Routed[i]), 0)
	}
	rep.Skew = skew(rep.Routed)
	obsShardSkew.Set(rep.Skew)

	errs := s.errs
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(per[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			// Parent the shard pipeline's window (and everything under
			// it, including its committer's fsync chain) to this window's
			// root: the shard maintainer is owned by this goroutine for
			// the duration, so the set is race-free.
			s.shards[i].m.SetSpanParent(wt.RootID())
			rep.Shards[i], errs[i] = s.shards[i].m.ApplyBatch(per[i])
			s.shards[i].m.SetSpanParent(0)
			s.shards[i].applyNs.Observe(time.Since(start).Nanoseconds())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("maintain: shard %d: %w", i, err)
		}
	}
	msp := wt.Child("maintain.merge_spanning")
	err := s.mergeSpanning(rep)
	msp.Finish()
	if err != nil {
		return nil, err
	}
	if s.Coordinator != nil {
		lsn, err := s.Coordinator.Commit(len(txns))
		if err != nil {
			obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 1)
			return nil, err
		}
		rep.LSN = lsn
		obs.Flight().Record(obs.EvWindowFence, 0, wt.Seq(), lsn, 0)
	}
	return rep, nil
}

// skew is max/mean of the routed units (0 when nothing routed).
func skew(routed []int64) float64 {
	var max, sum int64
	for _, v := range routed {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(routed))
	return float64(max) / mean
}

// mergeSpanning recombines every spanning view's affected group keys
// from the shards' partial aggregates. Only groups named by a shard's
// view delta are touched, so the merge stage costs O(changed groups),
// not O(view).
func (s *Sharded) mergeSpanning(rep *ShardedReport) error {
	for eqID, mv := range s.merged {
		if s.affected == nil {
			s.affected = map[string]value.Tuple{}
		}
		affected := s.affected
		clear(affected)
		var enc value.KeyEncoder
		for _, br := range rep.Shards {
			if br == nil {
				continue
			}
			d := br.Deltas[eqID]
			if d.Empty() {
				continue
			}
			for _, c := range d.Changes {
				for _, t := range [2]value.Tuple{c.Old, c.New} {
					if t == nil {
						continue
					}
					g := t[:mv.part.NGroup]
					affected[string(enc.Key(g))] = g
				}
			}
		}
		if len(affected) == 0 {
			continue
		}
		// One uncharged zero-copy walk per shard fills the recycled
		// group→partial maps; each affected key is then recombined
		// across them. The partial rows alias shard storage, which is
		// safe: combineGroup clones before it accumulates.
		if s.partials == nil {
			s.partials = make([]map[string]storage.Row, len(s.shards))
		}
		for i, sh := range s.shards {
			if s.partials[i] == nil {
				s.partials[i] = map[string]storage.Row{}
			}
			clear(s.partials[i])
			groupIndexInto(s.partials[i], sh.m, mv.eq, mv.part.NGroup)
		}
		for key := range affected {
			combined, found := combineGroup(s.partials, key, mv.part)
			if found {
				s.mergedSet(mv, key, combined)
			} else {
				delete(mv.rows, key)
			}
		}
	}
	return nil
}

func (s *Sharded) mergedSet(mv *mergedView, key string, row storage.Row) {
	if mv.rows == nil {
		mv.rows = map[string]storage.Row{}
	}
	mv.rows[key] = row
}

// groupIndex indexes rows by the key encoding of their nGroup-column
// prefix.
func groupIndex(rows []storage.Row, nGroup int) map[string]storage.Row {
	out := make(map[string]storage.Row, len(rows))
	var enc value.KeyEncoder
	for _, r := range rows {
		out[string(enc.Key(r.Tuple[:nGroup]))] = r
	}
	return out
}

// groupIndexInto is groupIndex over a materialized node's live rows,
// filling a caller-recycled map via the relation's zero-copy iterator
// (no []Row materialization). The indexed rows alias relation storage
// and are valid only until the node's next mutation.
func groupIndexInto(out map[string]storage.Row, m *Maintainer, e *dag.EqNode, nGroup int) {
	v, ok := m.views[e.ID]
	if !ok {
		return
	}
	var enc value.KeyEncoder
	v.Rel.Iterate(func(r storage.Row) bool {
		out[string(enc.Key(r.Tuple[:nGroup]))] = r
		return true
	})
}

// combineGroup merges one group's per-shard partial aggregates: SUM and
// COUNT add, MIN and MAX compare. found is false when no shard holds
// the group (it died everywhere — e.g. an annihilation window deleted
// every member).
func combineGroup(partials []map[string]storage.Row, key string, vp ViewPartition) (storage.Row, bool) {
	var out storage.Row
	found := false
	for _, p := range partials {
		r, ok := p[key]
		if !ok {
			continue
		}
		if !found {
			out = storage.Row{Tuple: r.Tuple.Clone(), Count: 1}
			found = true
			continue
		}
		for j, ag := range vp.Aggs {
			pos := vp.NGroup + j
			out.Tuple[pos] = combineAgg(ag.Func, out.Tuple[pos], r.Tuple[pos])
		}
	}
	return out, found
}

func combineAgg(f algebra.AggFunc, a, b value.Value) value.Value {
	switch f {
	case algebra.Sum, algebra.Count:
		if a.Kind == value.Float || b.Kind == value.Float {
			af, bf := a.F, b.F
			if a.Kind == value.Int {
				af = float64(a.I)
			}
			if b.Kind == value.Int {
				bf = float64(b.I)
			}
			return value.NewFloat(af + bf)
		}
		return value.NewInt(a.I + b.I)
	case algebra.Min:
		if value.Compare(b, a) < 0 {
			return b
		}
		return a
	case algebra.Max:
		if value.Compare(b, a) > 0 {
			return b
		}
		return a
	default:
		return a
	}
}

// RebuildMerged recomputes every spanning view's merged state from the
// current shard contents (startup and post-recovery).
func (s *Sharded) RebuildMerged() {
	for _, mv := range s.merged {
		mv.rows = map[string]storage.Row{}
		partials := make([]map[string]storage.Row, len(s.shards))
		keys := map[string]bool{}
		for i, sh := range s.shards {
			partials[i] = groupIndex(sh.m.Contents(mv.eq), mv.part.NGroup)
			for k := range partials[i] {
				keys[k] = true
			}
		}
		for key := range keys {
			if combined, found := combineGroup(partials, key, mv.part); found {
				mv.rows[key] = combined
			}
		}
	}
}

// Contents returns the maintained global contents of a materialized
// node: the count-merged bag union of the shard views for local views,
// or the merge stage's combined rows for spanning aggregates. Rows are
// sorted by tuple, so equal states compare byte-identically at any
// shard count.
func (s *Sharded) Contents(e *dag.EqNode) []storage.Row {
	var rows []storage.Row
	if mv, ok := s.merged[e.ID]; ok {
		for _, r := range mv.rows {
			rows = append(rows, r)
		}
	} else {
		byKey := map[string]int{}
		var enc value.KeyEncoder
		for _, sh := range s.shards {
			for _, r := range sh.m.Contents(e) {
				k := string(enc.Key(r.Tuple))
				if j, ok := byKey[k]; ok {
					rows[j].Count += r.Count
				} else {
					byKey[k] = len(rows)
					rows = append(rows, storage.Row{Tuple: r.Tuple, Count: r.Count})
				}
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Tuple.Compare(rows[j].Tuple) < 0
	})
	return rows
}

// Violations returns the total multiplicity of a view's rows — the
// sharded form of the assertion-emptiness verdict (the paper's
// integrity constraints hold iff the assertion view is empty).
func (s *Sharded) Violations(e *dag.EqNode) int64 {
	var n int64
	for _, r := range s.Contents(e) {
		n += r.Count
	}
	return n
}

// IO returns the fold of every shard's I/O counters.
func (s *Sharded) IO() storage.IOCounter {
	var total storage.IOCounter
	for _, sh := range s.shards {
		c := sh.setup.Store.IO.Snapshot()
		total.AddCounter(c)
	}
	return total
}

// Drift compares a materialized node's sharded contents against full
// recomputation over the union of the shard bases — the shard-count-
// independent oracle ("" when consistent).
func (s *Sharded) Drift(e *dag.EqNode) (string, error) {
	oracle := storage.NewStore()
	cat0 := s.shards[0].setup.Cat
	for _, name := range cat0.Names() {
		def, ok := cat0.Get(name)
		if !ok {
			return "", fmt.Errorf("maintain: sharded drift: unknown relation %q", name)
		}
		rel, err := oracle.Create(def)
		if err != nil {
			return "", err
		}
		for _, sh := range s.shards {
			r, ok := sh.setup.Store.Get(name)
			if !ok {
				return "", fmt.Errorf("maintain: shard drift: relation %q missing", name)
			}
			rel.Load(r.ScanFree())
		}
	}
	want, err := exec.NewFree(oracle).Eval(s.D.RepTree(e))
	if err != nil {
		return "", err
	}
	diff := map[string]int64{}
	var enc value.KeyEncoder
	for _, row := range s.Contents(e) {
		diff[string(enc.Key(row.Tuple))] += row.Count
	}
	for _, row := range want.Rows {
		diff[string(enc.Key(row.Tuple))] -= row.Count
	}
	for k, v := range diff {
		if v != 0 {
			return fmt.Sprintf("tuple %x off by %d", k, v), nil
		}
	}
	return "", nil
}
