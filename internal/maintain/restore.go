package maintain

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/tracks"
)

// ViewState is a materialized view's checkpointed contents plus the
// maintenance sidecar (live counts and stale marks) needed to resume
// incremental maintenance without recomputation.
type ViewState struct {
	// Fingerprint identifies the view's defining expression; a restored
	// state is only trusted if it matches the current DAG's fingerprint
	// for the node.
	Fingerprint string
	Rows        []storage.Row
	Live        map[string]int64
	Stale       []string
}

// RestoreOptions lets NewRestored seed materialized views from
// checkpointed state instead of recomputing them.
type RestoreOptions struct {
	// Source resolves a view's checkpointed state by storage name. A nil
	// Source (the default) recomputes every view, as New always has.
	Source func(name string) (*ViewState, bool)
	// OnRecompute is called for each view that had to fall back to full
	// recomputation despite a Source being set — either the checkpoint
	// predates the view (view-set change) or its fingerprint no longer
	// matches the expression.
	OnRecompute func(name string)
}

// NewRestored materializes the view set like New, but consults
// opts.Source first: a view whose checkpointed state matches the DAG's
// current fingerprint is loaded directly, making recovery's view cost
// proportional to the log tail rather than the database size.
func NewRestored(d *dag.DAG, st *storage.Store, model cost.Model, vs tracks.ViewSet, opts RestoreOptions) (*Maintainer, error) {
	m := &Maintainer{
		D:     d,
		Store: st,
		Cost:  tracks.NewCosting(d, model),
		VS:    vs,
		views: map[int]*View{},
		plans: map[string]*trackPlan{},
		trees: map[int]algebra.Node{},
	}
	free := exec.NewFree(st)
	for _, e := range d.NonLeafEqs() {
		if !vs[e.ID] {
			continue
		}
		schema := catalog.NewSchema(append([]catalog.Column{}, e.Schema().Cols...)...)
		def := &catalog.TableDef{Name: ViewName(e), Schema: schema}
		if ix := qualifyIndexCols(schema, tracks.ViewIndexCols(d, e)); len(ix) > 0 {
			def.Indexes = []catalog.IndexDef{{Name: def.Name + "_ix", Columns: ix}}
		}
		rel, err := st.Create(def)
		if err != nil {
			return nil, err
		}
		v := &View{Eq: e, Rel: rel, live: map[string]int64{}, stale: map[string]bool{}}
		for _, op := range e.Ops {
			switch op.Kind() {
			case algebra.KindAggregate:
				if v.aggOp == nil {
					v.aggOp = op
				}
			case algebra.KindDistinct:
				if v.distinctOp == nil {
					v.distinctOp = op
				}
			}
		}
		restored := false
		if opts.Source != nil {
			if state, ok := opts.Source(def.Name); ok && state.Fingerprint == d.Fingerprint(e) {
				rel.Load(state.Rows)
				rel.RefreshStats()
				for k, n := range state.Live {
					v.live[k] = n
				}
				for _, k := range state.Stale {
					v.stale[k] = true
				}
				restored = true
			}
		}
		if !restored {
			if opts.Source != nil && opts.OnRecompute != nil {
				opts.OnRecompute(def.Name)
			}
			res, err := free.Eval(d.RepTree(e))
			if err != nil {
				return nil, fmt.Errorf("maintain: materializing %s: %w", e, err)
			}
			rel.Load(res.Rows)
			rel.RefreshStats()
			if err := m.initSidecar(v, free); err != nil {
				return nil, err
			}
		}
		m.views[e.ID] = v
	}
	return m, nil
}

// ViewStates snapshots every materialized view's contents and sidecar,
// keyed by storage name — what the checkpoint writer persists.
func (m *Maintainer) ViewStates() map[string]*ViewState {
	out := make(map[string]*ViewState, len(m.views))
	for _, v := range m.views {
		live := make(map[string]int64, len(v.live))
		for k, n := range v.live {
			live[k] = n
		}
		stale := make([]string, 0, len(v.stale))
		for k := range v.stale {
			stale = append(stale, k)
		}
		sort.Strings(stale)
		out[ViewName(v.Eq)] = &ViewState{
			Fingerprint: m.D.Fingerprint(v.Eq),
			Rows:        v.Rel.Snapshot(),
			Live:        live,
			Stale:       stale,
		}
	}
	return out
}
