package maintain_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/corpus"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/delta"
	"repro/internal/expr"
	"repro/internal/maintain"
	"repro/internal/rules"
	"repro/internal/tracks"
	"repro/internal/txn"
)

// diffView builds "department names with employees, minus the type-A
// departments" as a bag difference, plus a duplicate elimination root.
func diffView(db *corpus.Database) algebra.Node {
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))
	names := algebra.NewProject(
		[]algebra.ProjectItem{{E: expr.C("Emp.DName"), As: "DName"}}, emp)
	aNames := algebra.NewProject(
		[]algebra.ProjectItem{{E: expr.C("ADepts.DName"), As: "DName"}}, adepts)
	return algebra.NewDistinct(algebra.NewDiff(names, aNames))
}

// unionView builds the bag union of employee and type-A department names.
func unionView(db *corpus.Database) algebra.Node {
	emp := algebra.Scan(db.Catalog.MustGet("Emp"))
	adepts := algebra.Scan(db.Catalog.MustGet("ADepts"))
	names := algebra.NewProject(
		[]algebra.ProjectItem{{E: expr.C("Emp.DName"), As: "DName"}}, emp)
	aNames := algebra.NewProject(
		[]algebra.ProjectItem{{E: expr.C("ADepts.DName"), As: "DName"}}, adepts)
	return algebra.NewUnion(names, aNames)
}

func setOpsEngine(t *testing.T, view algebra.Node, db *corpus.Database, markAll bool) (*maintain.Maintainer, *dag.DAG) {
	t.Helper()
	d, err := dag.FromTree(view)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Expand(rules.Default(), 200); err != nil {
		t.Fatal(err)
	}
	vs := tracks.RootSet(d)
	if markAll {
		for _, e := range d.NonLeafEqs() {
			vs[e.ID] = true
		}
	}
	m, err := maintain.New(d, db.Store, cost.PageIO{}, vs)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestDiffDistinctThroughEngine(t *testing.T) {
	for _, markAll := range []bool{false, true} {
		db := corpus.NewDatabase(corpus.Config{Departments: 5, EmpsPerDept: 2, ADeptsEveryN: 2})
		m, d := setOpsEngine(t, diffView(db), db, markAll)

		hire := &txn.Type{Name: "+Emp", Weight: 1,
			Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Insert, Size: 1}}}
		fire := &txn.Type{Name: "-Emp", Weight: 1,
			Updates: []txn.RelUpdate{{Rel: "Emp", Kind: txn.Delete, Size: 1}}}
		classify := &txn.Type{Name: "+ADepts", Weight: 1,
			Updates: []txn.RelUpdate{{Rel: "ADepts", Kind: txn.Insert, Size: 1}}}

		steps := []struct {
			ty  *txn.Type
			rel string
			d   func() *delta.Delta
		}{
			{hire, "Emp", func() *delta.Delta {
				return db.EmpInsertDelta("h1", "d-new", 100)
			}},
			{classify, "ADepts", func() *delta.Delta {
				// d0001 is not type A initially (every 2nd starting at 0).
				return db.ADeptsInsertDelta(corpus.DeptName(1))
			}},
			{fire, "Emp", func() *delta.Delta {
				del, err := db.EmpDeleteDelta(3, 0)
				if err != nil {
					t.Fatal(err)
				}
				return del
			}},
			{fire, "Emp", func() *delta.Delta {
				del, err := db.EmpDeleteDelta(3, 1) // last employee of d3
				if err != nil {
					t.Fatal(err)
				}
				return del
			}},
		}
		for i, s := range steps {
			if _, err := m.Apply(s.ty, map[string]*delta.Delta{s.rel: s.d()}); err != nil {
				t.Fatalf("markAll=%v step %d: %v", markAll, i, err)
			}
			drift, err := m.Drift(d.Root)
			if err != nil {
				t.Fatal(err)
			}
			if drift != "" {
				t.Fatalf("markAll=%v step %d: diff view drifted: %s", markAll, i, drift)
			}
		}
	}
}

func TestUnionThroughEngine(t *testing.T) {
	for _, markAll := range []bool{false, true} {
		db := corpus.NewDatabase(corpus.Config{Departments: 4, EmpsPerDept: 2, ADeptsEveryN: 2})
		m, d := setOpsEngine(t, unionView(db), db, markAll)
		both := &txn.Type{Name: "both", Weight: 1, Updates: []txn.RelUpdate{
			{Rel: "Emp", Kind: txn.Insert, Size: 1},
			{Rel: "ADepts", Kind: txn.Insert, Size: 1},
		}}
		updates := map[string]*delta.Delta{
			"Emp":    db.EmpInsertDelta("u1", corpus.DeptName(1), 42),
			"ADepts": db.ADeptsInsertDelta(corpus.DeptName(3)),
		}
		if _, err := m.Apply(both, updates); err != nil {
			t.Fatalf("markAll=%v: %v", markAll, err)
		}
		drift, err := m.Drift(d.Root)
		if err != nil {
			t.Fatal(err)
		}
		if drift != "" {
			t.Fatalf("markAll=%v: union view drifted: %s", markAll, drift)
		}
	}
}
