package maintain_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/txn"
)

// TestStoreIOConcurrentResetAndRead pins the IOCounter concurrency
// contract: the store's shared counter may be snapshotted, totalled and
// Reset by a monitoring goroutine (a /metrics scrape, a periodic
// stats dump) while the batch pipeline — including its parallel view
// workers and their end-of-window fold — is charging it. Run under
// -race this is the regression test for the atomic fold in applyViews;
// the values a racing Reset produces are unspecified, so the test
// asserts only that maintenance itself stays correct and race-free.
func TestStoreIOConcurrentResetAndRead(t *testing.T) {
	mir := buildMirror(t, 1234)
	mir.m.Workers = 4

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			snap := mir.db.Store.IO.Snapshot()
			_ = snap.Total()
			if i%7 == 0 {
				mir.db.Store.IO.Reset()
			}
		}
	}()

	txnRng := rand.New(rand.NewSource(99))
	for w := 0; w < 8; w++ {
		var window []txn.Transaction
		for i := 0; i < 6; i++ {
			ty, updates := corpus.RandomTxn(txnRng, mir.db, mir.cfg, w*100+i)
			if ty == nil {
				continue
			}
			window = append(window, txn.Transaction{Type: ty, Updates: updates})
		}
		if _, err := mir.m.ApplyBatch(window); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	close(stop)
	wg.Wait()

	// A concurrent Reset scrambles accounting, never contents.
	if drift, err := mir.m.Drift(mir.checked[0]); err != nil {
		t.Fatal(err)
	} else if drift != "" {
		t.Fatalf("root view drifted: %s", drift)
	}
}
